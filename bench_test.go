// Package iotsid_test holds the benchmark harness: one benchmark per table
// and figure of the paper's evaluation (regeneration cost + correctness of
// the regenerated rows), the §VI system-overhead experiment on all three
// collection paths, and the ablation benches DESIGN.md calls out.
package iotsid_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"iotsid/internal/bridge"
	"iotsid/internal/core"
	"iotsid/internal/dataset"
	"iotsid/internal/epoch"
	"iotsid/internal/eval"
	"iotsid/internal/home"
	"iotsid/internal/instr"
	"iotsid/internal/miio"
	"iotsid/internal/mlearn"
	"iotsid/internal/mlearn/bayes"
	"iotsid/internal/mlearn/forest"
	"iotsid/internal/mlearn/knn"
	"iotsid/internal/mlearn/svm"
	"iotsid/internal/mlearn/tree"
	"iotsid/internal/obs"
	"iotsid/internal/sensor"
	"iotsid/internal/smartthings"
	"iotsid/internal/survey"
)

var (
	suiteOnce sync.Once
	suite     *eval.Suite
	suiteErr  error
)

func sharedSuite(b *testing.B) *eval.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = eval.NewSuite(eval.DefaultConfig())
	})
	if suiteErr != nil {
		b.Fatalf("suite: %v", suiteErr)
	}
	return suite
}

// --- Tables ---

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := eval.TableI(); len(rows) != 9 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkTableIII regenerates the questionnaire aggregation (population
// simulation + tally) per iteration.
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pop, err := survey.Simulate(survey.DefaultProfile(), 340, survey.ModeQuota,
			rand.New(rand.NewSource(2021)))
		if err != nil {
			b.Fatal(err)
		}
		res, err := survey.Aggregate(pop)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.SensitiveCategories()) != 7 {
			b.Fatalf("sensitive = %v", res.SensitiveCategories())
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := s.Fig4()
		if f.ControlWorsePct < 80 {
			b.Fatalf("fig4 = %+v", f)
		}
	}
}

// BenchmarkTableIV regenerates the corpus and samples it.
func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		corpus, err := dataset.Corpus(dataset.CorpusConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(corpus) != dataset.BaseCorpusSize {
			b.Fatal("bad corpus")
		}
	}
}

func BenchmarkTableV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := eval.TableV()
		if c.Accuracy == 0 {
			b.Fatal("bad table V")
		}
	}
}

// BenchmarkTableVI runs the paper's full headline pipeline per iteration:
// build all six datasets, 7:3 split, oversample, train, cross-validate,
// evaluate.
func BenchmarkTableVI(b *testing.B) {
	corpus, err := dataset.Corpus(dataset.CorpusConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fm, err := core.Train(corpus, dataset.BuildConfig{Seed: 42}, core.TrainConfig{Seed: 9})
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range fm.Models() {
			e, _ := fm.Entry(m)
			if e.Report.TestAccuracy < 0.85 {
				b.Fatalf("%s accuracy %v below the Table VI band", m, e.Report.TestAccuracy)
			}
		}
	}
}

// --- Figures ---

func BenchmarkFig5(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := s.Fig5()
		if len(pts) < 8 || pts[0].Users < pts[len(pts)-1].Users {
			b.Fatal("bad fig5")
		}
	}
}

// BenchmarkFig6 retrains the window model and extracts its feature weights
// per iteration.
func BenchmarkFig6(b *testing.B) {
	s := sharedSuite(b)
	d, err := s.DatasetFor(dataset.ModelWindow)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := core.TrainModel(dataset.ModelWindow, d, core.TrainConfig{Seed: 9})
		if err != nil {
			b.Fatal(err)
		}
		if e.Weights[0].Attr != "smoke" {
			b.Fatalf("top weight = %s", e.Weights[0].Attr)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := s.Fig7()
		total := 0
		for _, r := range rows {
			total += r.Strategies
		}
		if total != dataset.CameraWarnCount {
			b.Fatalf("total = %d", total)
		}
	}
}

// --- Inference fast path ---

// BenchmarkJudgeHot measures the steady-state zero-allocation judge path:
// pooled feature buffer + FeaturizeInto + compiled tree walk. The
// acceptance bar is 0 allocs/op.
func BenchmarkJudgeHot(b *testing.B) {
	s := sharedSuite(b)
	snap, err := dataset.LegalSceneSeeded(dataset.ModelWindow, 7)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the buffer pool so the benchmark sees steady state.
	if _, err := s.Memory.Judge(dataset.ModelWindow, snap); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Memory.Judge(dataset.ModelWindow, snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAuthorizeParallel drives the full framework path from many
// goroutines through a TTL-cached collector: the contended-gateway shape
// the sharded decision log and the snapshot cache exist for.
func BenchmarkAuthorizeParallel(b *testing.B) {
	s := sharedSuite(b)
	h, err := home.NewStandard(home.EnvConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	cached, err := core.NewCachedCollector(&core.SimCollector{Env: h.Env()}, time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	det, err := core.DefaultDetector()
	if err != nil {
		b.Fatal(err)
	}
	f, err := core.New(core.Config{Detector: det, Collector: cached, Memory: s.Memory})
	if err != nil {
		b.Fatal(err)
	}
	ins := make([]instr.Instruction, 8)
	for i := range ins {
		in, err := instr.BuiltinRegistry().Build("window.open", fmt.Sprintf("window-%d", i+1), instr.OriginUser, nil)
		if err != nil {
			b.Fatal(err)
		}
		ins[i] = in
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := f.Authorize(context.Background(), ins[i%len(ins)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkAuthorizeCachedBare is the uninstrumented twin of
// BenchmarkAuthorizeInstrumented — same cached legal-scene workload, no
// metrics registry. The delta between the two is the whole cost of the
// observability layer on the hot path (EXPERIMENTS.md records it).
func BenchmarkAuthorizeCachedBare(b *testing.B) {
	s := sharedSuite(b)
	snap, err := dataset.LegalSceneSeeded(dataset.ModelWindow, 7)
	if err != nil {
		b.Fatal(err)
	}
	cached, err := core.NewCachedCollector(
		core.CollectorFunc(func(ctx context.Context) (sensor.Snapshot, error) { return snap, nil }),
		time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	det, err := core.DefaultDetector()
	if err != nil {
		b.Fatal(err)
	}
	f, err := core.New(core.Config{Detector: det, Collector: cached, Memory: s.Memory})
	if err != nil {
		b.Fatal(err)
	}
	in, err := instr.BuiltinRegistry().Build("window.open", "window-1", instr.OriginUser, nil)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := f.Authorize(context.Background(), in); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := f.Authorize(context.Background(), in); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAuthorizeInstrumented drives the framework with a full metrics
// registry attached — decision counters, latency histogram, decision-log
// append/eviction counters, cache counters — over a cached legal scene. The
// acceptance bar is 0 allocs/op: instrumentation must not reintroduce
// allocations on the steady-state allow path (the race-free gate is
// TestAuthorizeSteadyStateAllocs in internal/core).
func BenchmarkAuthorizeInstrumented(b *testing.B) {
	s := sharedSuite(b)
	snap, err := dataset.LegalSceneSeeded(dataset.ModelWindow, 7)
	if err != nil {
		b.Fatal(err)
	}
	reg := obs.NewRegistry()
	cached, err := core.NewCachedCollector(
		core.CollectorFunc(func(ctx context.Context) (sensor.Snapshot, error) { return snap, nil }),
		time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	cached.Instrument(reg)
	det, err := core.DefaultDetector()
	if err != nil {
		b.Fatal(err)
	}
	f, err := core.New(core.Config{Detector: det, Collector: cached, Memory: s.Memory, Metrics: reg})
	if err != nil {
		b.Fatal(err)
	}
	ins := make([]instr.Instruction, 8)
	for i := range ins {
		in, err := instr.BuiltinRegistry().Build("window.open", fmt.Sprintf("window-%d", i+1), instr.OriginUser, nil)
		if err != nil {
			b.Fatal(err)
		}
		ins[i] = in
	}
	// Warm the cache, the feature-buffer pool and the reason table.
	if _, err := f.Authorize(context.Background(), ins[0]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			dec, err := f.Authorize(context.Background(), ins[i%len(ins)])
			if err != nil {
				b.Fatal(err)
			}
			if !dec.Allowed {
				b.Fatal("legal scene must be allowed")
			}
			i++
		}
	})
}

// BenchmarkAuthorizeEpoch is the event-driven twin of
// BenchmarkAuthorizeInstrumented: the same legal-scene workload and full
// metrics registry, but the context comes from an epoch store published by
// a (pre-benchmark) push instead of a TTL-cached poll — steady-state
// Authorize is a pointer read. Acceptance bars: 0 allocs/op, and within
// ~2× of BenchmarkOverheadJudge (EXPERIMENTS.md records the head-to-head
// vs the cached collector).
func BenchmarkAuthorizeEpoch(b *testing.B) {
	s := sharedSuite(b)
	snap, err := dataset.LegalSceneSeeded(dataset.ModelWindow, 7)
	if err != nil {
		b.Fatal(err)
	}
	reg := obs.NewRegistry()
	store, err := epoch.NewStore(epoch.Config{Metrics: reg},
		epoch.SourceConfig{Name: "sim", Required: true, FreshFor: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	if err := store.Push("sim", snap); err != nil {
		b.Fatal(err)
	}
	coll, err := core.NewEpochCollector(core.EpochCollectorConfig{}, store)
	if err != nil {
		b.Fatal(err)
	}
	det, err := core.DefaultDetector()
	if err != nil {
		b.Fatal(err)
	}
	f, err := core.New(core.Config{Detector: det, Collector: coll, Memory: s.Memory, Metrics: reg})
	if err != nil {
		b.Fatal(err)
	}
	ins := make([]instr.Instruction, 8)
	for i := range ins {
		in, err := instr.BuiltinRegistry().Build("window.open", fmt.Sprintf("window-%d", i+1), instr.OriginUser, nil)
		if err != nil {
			b.Fatal(err)
		}
		ins[i] = in
	}
	// Warm the feature-buffer pool and the reason table.
	if _, err := f.Authorize(context.Background(), ins[0]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			dec, err := f.Authorize(context.Background(), ins[i%len(ins)])
			if err != nil {
				b.Fatal(err)
			}
			if !dec.Allowed {
				b.Fatal("legal scene must be allowed")
			}
			i++
		}
	})
}

// BenchmarkEpochCollectDetailed isolates the event-driven collection step
// Authorize runs per decision: one atomic pointer load plus a per-source
// push-age check against the precomputed freshness budget.
func BenchmarkEpochCollectDetailed(b *testing.B) {
	snap, err := dataset.LegalSceneSeeded(dataset.ModelWindow, 7)
	if err != nil {
		b.Fatal(err)
	}
	store, err := epoch.NewStore(epoch.Config{},
		epoch.SourceConfig{Name: "sim", Required: true, FreshFor: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	if err := store.Push("sim", snap); err != nil {
		b.Fatal(err)
	}
	coll, err := core.NewEpochCollector(core.EpochCollectorConfig{}, store)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := coll.CollectDetailed(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAuthorizeBatch measures the collect-once batch path against the
// same instruction mix.
func BenchmarkAuthorizeBatch(b *testing.B) {
	s := sharedSuite(b)
	h, err := home.NewStandard(home.EnvConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	det, err := core.DefaultDetector()
	if err != nil {
		b.Fatal(err)
	}
	f, err := core.New(core.Config{Detector: det, Collector: &core.SimCollector{Env: h.Env()}, Memory: s.Memory})
	if err != nil {
		b.Fatal(err)
	}
	ins := make([]instr.Instruction, 16)
	for i := range ins {
		in, err := instr.BuiltinRegistry().Build("window.open", fmt.Sprintf("window-%d", i+1), instr.OriginUser, nil)
		if err != nil {
			b.Fatal(err)
		}
		ins[i] = in
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.AuthorizeBatch(context.Background(), ins); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §VI system-overhead experiment ---

// BenchmarkOverheadJudge measures the bare determiner: featurize + tree
// walk on a live snapshot.
func BenchmarkOverheadJudge(b *testing.B) {
	s := sharedSuite(b)
	snap, err := dataset.LegalSceneSeeded(dataset.ModelWindow, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Memory.Judge(dataset.ModelWindow, snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverheadAuthorizeSim measures the full framework path with an
// in-process collector.
func BenchmarkOverheadAuthorizeSim(b *testing.B) {
	s := sharedSuite(b)
	h, err := home.NewStandard(home.EnvConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	det, err := core.DefaultDetector()
	if err != nil {
		b.Fatal(err)
	}
	f, err := core.New(core.Config{Detector: det, Collector: &core.SimCollector{Env: h.Env()}, Memory: s.Memory})
	if err != nil {
		b.Fatal(err)
	}
	in, err := instr.BuiltinRegistry().Build("window.open", "window-1", instr.OriginUser, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Authorize(context.Background(), in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverheadAuthorizeMiio measures the full framework path when the
// context is collected over the encrypted UDP protocol.
func BenchmarkOverheadAuthorizeMiio(b *testing.B) {
	s := sharedSuite(b)
	h, err := home.NewStandard(home.EnvConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	token, err := miio.ParseToken("00112233445566778899aabbccddeeff")
	if err != nil {
		b.Fatal(err)
	}
	gw, err := miio.NewGateway(miio.GatewayConfig{DeviceID: 1, Token: token,
		Handler: bridge.NewXiaomiHandler(h, instr.BuiltinRegistry())})
	if err != nil {
		b.Fatal(err)
	}
	defer gw.Close()
	client, err := miio.Dial(gw.Addr().String(), token, miio.WithTimeout(2*time.Second))
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	det, err := core.DefaultDetector()
	if err != nil {
		b.Fatal(err)
	}
	f, err := core.New(core.Config{Detector: det, Collector: &core.MiioCollector{Client: client}, Memory: s.Memory})
	if err != nil {
		b.Fatal(err)
	}
	in, err := instr.BuiltinRegistry().Build("window.open", "window-1", instr.OriginUser, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Authorize(context.Background(), in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverheadAuthorizeSmartThings measures the REST collection path.
func BenchmarkOverheadAuthorizeSmartThings(b *testing.B) {
	s := sharedSuite(b)
	h, err := home.NewStandard(home.EnvConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := smartthings.NewServer(smartthings.ServerConfig{Token: "llat-bench",
		Backend: bridge.NewSTBackend(h, instr.BuiltinRegistry())})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client, err := smartthings.NewClient(srv.URL(), "llat-bench")
	if err != nil {
		b.Fatal(err)
	}
	det, err := core.DefaultDetector()
	if err != nil {
		b.Fatal(err)
	}
	f, err := core.New(core.Config{Detector: det, Collector: &core.STCollector{Client: client}, Memory: s.Memory})
	if err != nil {
		b.Fatal(err)
	}
	in, err := instr.BuiltinRegistry().Build("window.open", "window-1", instr.OriginUser, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Authorize(context.Background(), in); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ---

func benchClassifier(b *testing.B, factory func() mlearn.Classifier) {
	b.Helper()
	s := sharedSuite(b)
	d, err := s.DatasetFor(dataset.ModelWindow)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	train, test, err := d.SplitStratified(0.7, rng)
	if err != nil {
		b.Fatal(err)
	}
	balanced, err := mlearn.OversampleRandom(train, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := factory()
		if err := c.Fit(balanced); err != nil {
			b.Fatal(err)
		}
		if acc := mlearn.Evaluate(c, test).Accuracy(); acc < 0.5 {
			b.Fatalf("accuracy %v", acc)
		}
	}
}

func BenchmarkBaselineTree(b *testing.B) {
	benchClassifier(b, func() mlearn.Classifier { return tree.New(tree.Config{MinSamplesLeaf: 5}) })
}

func BenchmarkBaselineKNN(b *testing.B) {
	benchClassifier(b, func() mlearn.Classifier { return knn.New(5) })
}

func BenchmarkBaselineBayes(b *testing.B) {
	benchClassifier(b, func() mlearn.Classifier { return bayes.New() })
}

func BenchmarkBaselineSVM(b *testing.B) {
	benchClassifier(b, func() mlearn.Classifier { return svm.New(svm.Config{Seed: 9}) })
}

func benchCriterion(b *testing.B, crit tree.Criterion) {
	benchClassifier(b, func() mlearn.Classifier {
		return tree.New(tree.Config{Criterion: crit, MinSamplesLeaf: 5})
	})
}

func BenchmarkAblationCriterionGini(b *testing.B)      { benchCriterion(b, tree.Gini) }
func BenchmarkAblationCriterionEntropy(b *testing.B)   { benchCriterion(b, tree.Entropy) }
func BenchmarkAblationCriterionGainRatio(b *testing.B) { benchCriterion(b, tree.GainRatio) }

func benchSampling(b *testing.B, sampling core.Sampling) {
	s := sharedSuite(b)
	d, err := s.DatasetFor(dataset.ModelWindow)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := core.TrainModel(dataset.ModelWindow, d, core.TrainConfig{Seed: 9, Sampling: sampling})
		if err != nil {
			b.Fatal(err)
		}
		if e.Report.TestAccuracy < 0.5 {
			b.Fatal("degenerate model")
		}
	}
}

func BenchmarkAblationSamplingNone(b *testing.B)   { benchSampling(b, core.SampleNone) }
func BenchmarkAblationSamplingRandom(b *testing.B) { benchSampling(b, core.SampleRandomOversample) }
func BenchmarkAblationSamplingSMOTE(b *testing.B)  { benchSampling(b, core.SampleSMOTE) }

// BenchmarkExtensionForest trains the random-forest extension on the window
// model per iteration.
func BenchmarkExtensionForest(b *testing.B) {
	benchClassifier(b, func() mlearn.Classifier {
		return forest.New(forest.Config{Trees: 25, Seed: 9, Tree: tree.Config{MinSamplesLeaf: 3}})
	})
}

// BenchmarkExtensionPrevention runs the pre-execution vs post-hoc defence
// comparison per iteration.
func BenchmarkExtensionPrevention(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := s.PreventionComparison(100)
		if err != nil {
			b.Fatal(err)
		}
		if r.IDSDetected <= r.PVDetected {
			b.Fatalf("IDS %d must beat post-hoc %d", r.IDSDetected, r.PVDetected)
		}
	}
}

// BenchmarkExtensionCampaign runs a 10-round attack campaign per iteration.
func BenchmarkExtensionCampaign(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := s.Campaign(context.Background(), 10)
		if err != nil {
			b.Fatal(err)
		}
		if r.BlockRate() < 0.5 {
			b.Fatalf("block rate %v", r.BlockRate())
		}
	}
}

// --- Training parallelism ---

// BenchmarkTrainAll trains all six device models end to end per iteration:
// corpus-expanded dataset build, 7:3 split, oversampling, tree growth and
// k-fold cross-validation. Workers defaults to GOMAXPROCS, so running with
// `-cpu 1,4,8` measures the training fan-out's speedup directly; the
// determinism tests prove every worker count yields byte-identical
// memories.
func BenchmarkTrainAll(b *testing.B) {
	corpus, err := dataset.Corpus(dataset.CorpusConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fm, err := core.Train(corpus, dataset.BuildConfig{Seed: 42}, core.TrainConfig{Seed: 9})
		if err != nil {
			b.Fatal(err)
		}
		if len(fm.Models()) != 6 {
			b.Fatalf("trained %d models", len(fm.Models()))
		}
	}
}

// BenchmarkForestFit bags a 25-tree random forest on the window dataset per
// iteration — the per-tree bagging fan-out under `-cpu 1,4,8`.
func BenchmarkForestFit(b *testing.B) {
	s := sharedSuite(b)
	d, err := s.DatasetFor(dataset.ModelWindow)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	train, _, err := d.SplitStratified(0.7, rng)
	if err != nil {
		b.Fatal(err)
	}
	balanced, err := mlearn.OversampleRandom(train, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := forest.New(forest.Config{Trees: 25, Seed: 9, Tree: tree.Config{MinSamplesLeaf: 3}})
		if err := f.Fit(balanced); err != nil {
			b.Fatal(err)
		}
		if f.Size() != 25 {
			b.Fatalf("size %d", f.Size())
		}
	}
}

// BenchmarkBuildAll expands the corpus into all six model datasets per
// iteration — the per-model build fan-out under `-cpu 1,4,8`.
func BenchmarkBuildAll(b *testing.B) {
	corpus, err := dataset.Corpus(dataset.CorpusConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		all, err := dataset.BuildAll(corpus, dataset.BuildConfig{Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		if len(all) != 6 {
			b.Fatalf("built %d datasets", len(all))
		}
	}
}

// BenchmarkExtensionTransfer evaluates the trained memory against a fresh
// home per iteration.
func BenchmarkExtensionTransfer(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.Transfer([]int64{9999})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Accuracy < 0.8 {
				b.Fatalf("%s transfer accuracy %v", r.Model, r.Accuracy)
			}
		}
	}
}
