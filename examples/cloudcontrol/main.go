// Cloudcontrol drives the platform's second control path (Fig 1): the
// mobile app is away from home, so its instructions go to the IoT cloud,
// which authenticates the user, verifies device ownership, runs the IDS
// gate against the live sensor context, and only then forwards to the
// device. The example logs in, binds devices, and shows a burglary-context
// window.open bouncing at the cloud while a thermostat command sails
// through.
package main

import (
	"fmt"
	"os"

	"iotsid/internal/cloud"
	"iotsid/internal/core"
	"iotsid/internal/dataset"
	"iotsid/internal/home"
	"iotsid/internal/instr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cloudcontrol:", err)
		os.Exit(1)
	}
}

func run() error {
	h, err := home.NewStandard(home.EnvConfig{Seed: 8})
	if err != nil {
		return err
	}

	// Train the IDS once; the cloud uses its gate.
	fmt.Println("training feature memory...")
	detector, err := core.DefaultDetector()
	if err != nil {
		return err
	}
	corpus, err := dataset.Corpus(dataset.CorpusConfig{Seed: 1})
	if err != nil {
		return err
	}
	memory, err := core.Train(corpus, dataset.BuildConfig{Seed: 42}, core.TrainConfig{Seed: 9})
	if err != nil {
		return err
	}
	collector := &core.SimCollector{Env: h.Env()}
	framework, err := core.New(core.Config{Detector: detector, Collector: collector, Memory: memory})
	if err != nil {
		return err
	}

	srv, err := cloud.NewServer(cloud.Config{
		Users:    map[string]string{"alice": "correct-horse"},
		Registry: instr.BuiltinRegistry(),
		Forward:  h.Execute,
		Gate:     framework.Gate,
		Context:  collector.Collect,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	for _, id := range []string{"window-1", "aircon-1", "light-1"} {
		if err := srv.BindDevice(id, "alice"); err != nil {
			return err
		}
	}
	fmt.Printf("cloud up at %s\n\n", srv.URL())

	app, err := cloud.NewClient(srv.URL())
	if err != nil {
		return err
	}
	if err := app.Login("alice", "correct-horse"); err != nil {
		return err
	}
	devices, err := app.Devices()
	if err != nil {
		return err
	}
	fmt.Printf("logged in; bound devices: %v\n\n", devices)

	// Stage a burglary context and try to open the window remotely.
	attack, err := dataset.AttackSceneSeeded(dataset.ModelWindow, 5)
	if err != nil {
		return err
	}
	h.Env().Apply(attack)
	fmt.Println("remote window.open against a burglary context:")
	if err := app.Command("window.open", "window-1", nil); err != nil {
		fmt.Printf("  cloud refused: %v\n", err)
	} else {
		fmt.Println("  forwarded (unexpected!)")
	}

	// Back in a legal scene (hot afternoon, family home), the same
	// pipeline lets a thermostat adjustment through.
	legal, err := dataset.LegalSceneSeeded(dataset.ModelAircon, 6)
	if err != nil {
		return err
	}
	h.Env().Apply(legal)
	fmt.Println("remote thermostat.set_target 22°C in a legal scene:")
	if err := app.Command("thermostat.set_target", "aircon-1", map[string]any{"target": 22}); err != nil {
		fmt.Printf("  cloud refused: %v\n", err)
	} else {
		fmt.Println("  forwarded to the device")
	}

	// A stolen-session attempt on somebody else's device also bounces.
	fmt.Println("remote vacuum.start on an unbound device:")
	if err := app.Command("vacuum.start", "vacuum-1", nil); err != nil {
		fmt.Printf("  cloud refused: %v\n", err)
	}

	hist, err := app.History()
	if err != nil {
		return err
	}
	fmt.Println("\ncloud command history:")
	for _, e := range hist {
		fmt.Printf("  %-22s %-10s %s\n", e.Op+" @ "+e.DeviceID, e.Outcome, e.Detail)
	}
	return nil
}
