// Quickstart: train the context feature memory from the strategy corpus,
// then judge one sensitive instruction against a live sensor context.
package main

import (
	"context"
	"fmt"
	"os"

	"iotsid/internal/core"
	"iotsid/internal/dataset"
	"iotsid/internal/home"
	"iotsid/internal/instr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. The sensitive command detector comes from the questionnaire.
	detector, err := core.DefaultDetector()
	if err != nil {
		return err
	}
	fmt.Println("sensitive categories:", detector.SensitiveCategories())

	// 2. Train the feature memory: 804 strategies → per-model datasets →
	//    oversampled 7:3 training → one decision tree per device model.
	corpus, err := dataset.Corpus(dataset.CorpusConfig{Seed: 1})
	if err != nil {
		return err
	}
	memory, err := core.Train(corpus, dataset.BuildConfig{Seed: 42}, core.TrainConfig{Seed: 9})
	if err != nil {
		return err
	}
	for _, m := range memory.Models() {
		e, _ := memory.Entry(m)
		fmt.Printf("model %-18s test accuracy %.4f, FNR %.4f\n", m, e.Report.TestAccuracy, e.Report.FNR)
	}

	// 3. Assemble the framework over a simulated home.
	h, err := home.NewStandard(home.EnvConfig{Seed: 11})
	if err != nil {
		return err
	}
	framework, err := core.New(core.Config{
		Detector:  detector,
		Collector: &core.SimCollector{Env: h.Env()},
		Memory:    memory,
	})
	if err != nil {
		return err
	}

	// 4. Judge a sensitive instruction against the live context.
	open, err := instr.BuiltinRegistry().Build("window.open", "window-1", instr.OriginUser, nil)
	if err != nil {
		return err
	}
	decision, err := framework.Authorize(context.Background(), open)
	if err != nil {
		return err
	}
	fmt.Printf("\nwindow.open in the current context → allowed=%v\n  reason: %s\n",
		decision.Allowed, decision.Reason)
	return nil
}
