// Windowattack reproduces the paper's motivating attack (§III-A): malicious
// code forges the smoke sensor so the platform's "if fire, open the back
// window" automation fires while the burglar waits outside. With the IDS
// interceptor installed, the spoofed trigger is rejected; a genuine fire —
// whose correlates (air quality, occupancy, motion) are consistent — still
// opens the window.
package main

import (
	"fmt"
	"os"

	"iotsid/internal/automation"
	"iotsid/internal/core"
	"iotsid/internal/dataset"
	"iotsid/internal/home"
	"iotsid/internal/instr"
	"iotsid/internal/sensor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "windowattack:", err)
		os.Exit(1)
	}
}

func run() error {
	h, err := home.NewStandard(home.EnvConfig{Seed: 5})
	if err != nil {
		return err
	}
	detector, err := core.DefaultDetector()
	if err != nil {
		return err
	}
	corpus, err := dataset.Corpus(dataset.CorpusConfig{Seed: 1})
	if err != nil {
		return err
	}
	memory, err := core.Train(corpus, dataset.BuildConfig{Seed: 42}, core.TrainConfig{Seed: 9})
	if err != nil {
		return err
	}
	framework, err := core.New(core.Config{
		Detector:  detector,
		Collector: &core.SimCollector{Env: h.Env()},
		Memory:    memory,
	})
	if err != nil {
		return err
	}

	engine := automation.NewEngine(instr.BuiltinRegistry(), h.Execute)
	engine.SetInterceptor(framework.Interceptor())
	if err := engine.AddRuleText("fire vent", `WHEN smoke == TRUE THEN window.open @ window-1`); err != nil {
		return err
	}

	// --- Scene 1: the attack. Only the smoke boolean is forged. ---
	fmt.Println("scene 1: attacker spoofs the smoke sensor (clean air, empty home, night)")
	spoof := sensor.NewSnapshot(h.Env().Now())
	spoof.Set(sensor.FeatSmoke, sensor.Bool(true))
	spoof.Set(sensor.FeatGas, sensor.Bool(false))
	spoof.Set(sensor.FeatAirQuality, sensor.Number(28))
	spoof.Set(sensor.FeatMotion, sensor.Bool(false))
	spoof.Set(sensor.FeatOccupancy, sensor.Bool(false))
	spoof.Set(sensor.FeatVoiceCmd, sensor.Bool(false))
	spoof.Set(sensor.FeatDoorLock, sensor.Label(sensor.LockUnlocked))
	h.Env().Apply(spoof)
	report(framework, engine.Evaluate(h.Env().Snapshot()))
	fmt.Printf("  window open: %v\n\n", h.Env().Snapshot().Bool(sensor.FeatWindowOpen))

	// --- Scene 2: a genuine fire with consistent correlates. ---
	fmt.Println("scene 2: a genuine kitchen fire (smoke + bad air + people home)")
	clearSmoke := sensor.NewSnapshot(h.Env().Now())
	clearSmoke.Set(sensor.FeatSmoke, sensor.Bool(false))
	h.Env().Apply(clearSmoke)
	engine.Evaluate(h.Env().Snapshot()) // falling edge

	fire := sensor.NewSnapshot(h.Env().Now())
	fire.Set(sensor.FeatSmoke, sensor.Bool(true))
	fire.Set(sensor.FeatGas, sensor.Bool(false))
	fire.Set(sensor.FeatAirQuality, sensor.Number(215))
	fire.Set(sensor.FeatMotion, sensor.Bool(true))
	fire.Set(sensor.FeatOccupancy, sensor.Bool(true))
	fire.Set(sensor.FeatDoorLock, sensor.Label(sensor.LockLocked))
	h.Env().Apply(fire)
	report(framework, engine.Evaluate(h.Env().Snapshot()))
	fmt.Printf("  window open: %v\n", h.Env().Snapshot().Bool(sensor.FeatWindowOpen))
	return nil
}

func report(framework *core.Framework, events []automation.Event) {
	for _, ev := range events {
		verdict := "BLOCKED"
		if ev.Allowed {
			verdict = "ALLOWED"
		}
		fmt.Printf("  rule %q fired: %s @ %s → %s\n    %s\n", ev.Rule, ev.Op, ev.DeviceID, verdict, ev.Reason)
	}
	if len(events) == 0 {
		fmt.Println("  (no rule fired)")
	}
	// The determiner's decision path for the last judgment.
	if log := framework.Log(); len(log) > 0 {
		last := log[len(log)-1]
		if last.Decision.Explanation != "" {
			fmt.Printf("    decision path: %s\n", last.Decision.Explanation)
		}
	}
}
