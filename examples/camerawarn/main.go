// Camerawarn exercises the security-camera linkage of §V / Fig 7: the
// camera warner watches the home for a simulated week and pushes a user
// alert on every door/window opening, hazard-sensor trip and away-motion
// event, mirroring the warning categories of the paper's 319 camera
// strategies.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"iotsid/internal/core"
	"iotsid/internal/dataset"
	"iotsid/internal/home"
	"iotsid/internal/instr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "camerawarn:", err)
		os.Exit(1)
	}
}

func run() error {
	days := flag.Int("days", 7, "simulated days")
	seed := flag.Int64("seed", 3, "world seed")
	flag.Parse()

	h, err := home.NewStandard(home.EnvConfig{Seed: *seed})
	if err != nil {
		return err
	}
	cam, ok := h.Device(home.StandardDeviceIDs[instr.CatCamera])
	if !ok {
		return fmt.Errorf("no camera in the standard home")
	}
	warner := core.NewCameraWarner()

	steps := *days * 24 * 60
	for i := 0; i < steps; i++ {
		h.Env().Step(time.Minute)
		snap := h.Env().Snapshot()
		for _, w := range warner.Observe(snap) {
			// Push the alert through the camera device, as the linkage
			// strategies do.
			alert, err := instr.BuiltinRegistry().Build("camera.alert_user", cam.ID(),
				instr.OriginAutomation, map[string]any{"message": w.Message})
			if err != nil {
				return err
			}
			if err := h.Execute(alert); err != nil {
				return err
			}
		}
	}

	history := warner.History()
	fmt.Printf("simulated %d days: %d camera warnings pushed\n\n", *days, len(history))
	fmt.Println("warnings by trigger (compare Fig 7's category mix):")
	stats := warner.Stats()
	for _, trig := range []dataset.WarnTrigger{
		dataset.WarnDoorWindowOpened, dataset.WarnSmokeFire,
		dataset.WarnWaterLeak, dataset.WarnGas, dataset.WarnMotion,
	} {
		fmt.Printf("  %-22s %d\n", trig, stats[trig])
	}
	fmt.Println("\nlast five warnings:")
	tail := history
	if len(tail) > 5 {
		tail = tail[len(tail)-5:]
	}
	for _, w := range tail {
		fmt.Printf("  %s  %s\n", w.At.Format("Jan 2 15:04"), w)
	}
	camera, ok := cam.(*home.Camera)
	if ok {
		fmt.Printf("\ncamera device recorded %d alert pushes\n", len(camera.Alerts()))
	}
	return nil
}
