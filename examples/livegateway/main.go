// Livegateway drives the full network deployment: a simulated Xiaomi
// gateway on encrypted UDP and a SmartThings REST bridge, both backed by
// one home and gated by the IDS. The example then plays both roles — the
// multi-vendor collector pulling the sensor context over the wire, and an
// app issuing sensitive control instructions through each vendor path.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"iotsid/internal/bridge"
	"iotsid/internal/core"
	"iotsid/internal/dataset"
	"iotsid/internal/home"
	"iotsid/internal/instr"
	"iotsid/internal/miio"
	"iotsid/internal/resilience"
	"iotsid/internal/smartthings"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "livegateway:", err)
		os.Exit(1)
	}
}

func run() error {
	h, err := home.NewStandard(home.EnvConfig{Seed: 6})
	if err != nil {
		return err
	}
	registry := instr.BuiltinRegistry()

	// Vendor substrates.
	token, err := miio.ParseToken("a1b2c3d4e5f60718293a4b5c6d7e8f90")
	if err != nil {
		return err
	}
	xiaomi := bridge.NewXiaomiHandler(h, registry)
	gw, err := miio.NewGateway(miio.GatewayConfig{DeviceID: 0xBEEF, Token: token, Handler: xiaomi})
	if err != nil {
		return err
	}
	defer gw.Close()
	stBackend := bridge.NewSTBackend(h, registry)
	st, err := smartthings.NewServer(smartthings.ServerConfig{Token: "llat-demo", Backend: stBackend})
	if err != nil {
		return err
	}
	defer st.Close()
	fmt.Printf("gateway: udp %s  bridge: %s\n", gw.Addr(), st.URL())

	// Clients (the collector's view of the world).
	miioClient, err := miio.Dial(gw.Addr().String(), token, miio.WithTimeout(2*time.Second))
	if err != nil {
		return err
	}
	defer miioClient.Close()
	stClient, err := smartthings.NewClient(st.URL(), "llat-demo")
	if err != nil {
		return err
	}

	// The IDS collects over BOTH vendor paths: the Xiaomi feed is required
	// (fail closed without it), the SmartThings feed is optional with a
	// 30s bounded-staleness fallback, and both are guarded by retry
	// policies and circuit breakers feeding a health registry.
	health := resilience.NewRegistry()
	retry := resilience.Policy{MaxAttempts: 3, BaseDelay: 100 * time.Millisecond, Jitter: 0.2, Seed: 6}
	collector, err := core.NewMultiCollector(core.MultiConfig{Health: health},
		core.Source{
			Name: "miio", Required: true, Retry: &retry,
			Collector: &core.MiioCollector{Client: miioClient},
			Breaker:   resilience.NewBreaker(resilience.BreakerConfig{Name: "miio"}),
		},
		core.Source{
			Name: "smartthings", Staleness: 30 * time.Second, Retry: &retry,
			Collector: &core.STCollector{Client: stClient},
			Breaker:   resilience.NewBreaker(resilience.BreakerConfig{Name: "smartthings"}),
		},
	)
	if err != nil {
		return err
	}
	detector, err := core.DefaultDetector()
	if err != nil {
		return err
	}
	corpus, err := dataset.Corpus(dataset.CorpusConfig{Seed: 1})
	if err != nil {
		return err
	}
	fmt.Println("training feature memory...")
	memory, err := core.Train(corpus, dataset.BuildConfig{Seed: 42}, core.TrainConfig{Seed: 9})
	if err != nil {
		return err
	}
	framework, err := core.New(core.Config{Detector: detector, Collector: collector, Memory: memory})
	if err != nil {
		return err
	}
	xiaomi.SetGate(framework.Gate)
	stBackend.SetGate(framework.Gate)

	collectCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	snap, prov, err := collector.CollectDetailed(collectCtx)
	cancel()
	if err != nil {
		return err
	}
	fmt.Printf("collected %d features over the two vendor paths\n", len(snap.Values))
	for _, src := range prov {
		fmt.Printf("  source %-12s %s\n", src.Name, src.State)
	}
	fmt.Println()

	// Issue a sensitive instruction through each vendor path under the
	// current (benign daytime) context.
	fmt.Println("window.open via the encrypted Xiaomi path:")
	if _, err := miioClient.Call("execute", map[string]any{"op": "window.open", "device": "window-1"}); err != nil {
		fmt.Printf("  rejected: %v\n", err)
	} else {
		fmt.Println("  executed")
	}
	fmt.Println("curtain.open via the SmartThings REST path:")
	if _, err := stClient.CallService(context.Background(), "curtain", "open", map[string]any{"device_id": "curtain-1"}); err != nil {
		fmt.Printf("  rejected: %v\n", err)
	} else {
		fmt.Println("  executed")
	}

	// Now stage a burglary context and watch the same calls bounce.
	fmt.Println("\nstaging a burglary context (night, empty, unlocked, no hazard)...")
	attack, err := dataset.AttackSceneSeeded(dataset.ModelWindow, 99)
	if err != nil {
		return err
	}
	h.Env().Apply(attack)
	fmt.Println("window.open via the encrypted Xiaomi path:")
	if _, err := miioClient.Call("execute", map[string]any{"op": "window.open", "device": "window-1"}); err != nil {
		fmt.Printf("  rejected: %v\n", err)
	} else {
		fmt.Println("  executed")
	}
	fmt.Printf("\nIDS log: %d authorisations recorded\n", len(framework.Log()))
	return nil
}
