// Command datasetgen emits the automation-strategy corpus and the
// per-device-model machine-learning datasets.
//
// Usage:
//
//	datasetgen -out DIR [-seed N]
//
// Writes corpus.json plus one <model>.csv per evaluated device model.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"iotsid/internal/dataset"
	"iotsid/internal/mlearn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datasetgen:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "dataset-out", "output directory")
	corpusSeed := flag.Int64("seed", 1, "corpus seed")
	dataSeed := flag.Int64("data-seed", 42, "dataset seed")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	corpus, err := dataset.Corpus(dataset.CorpusConfig{Seed: *corpusSeed})
	if err != nil {
		return err
	}
	corpusPath := filepath.Join(*out, "corpus.json")
	f, err := os.Create(corpusPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(corpus); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d strategies)\n", corpusPath, len(corpus))

	all, err := dataset.BuildAll(corpus, dataset.BuildConfig{Seed: *dataSeed})
	if err != nil {
		return err
	}
	for _, m := range dataset.Models() {
		path := filepath.Join(*out, string(m)+".csv")
		if err := writeCSV(path, all[m]); err != nil {
			return err
		}
		counts := all[m].ClassCounts()
		fmt.Printf("wrote %s (%d rows, %d legal / %d attack)\n", path, all[m].Len(), counts[1], counts[0])
	}
	return nil
}

func writeCSV(path string, d *mlearn.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := make([]string, 0, d.Schema.Len()+1)
	for _, a := range d.Schema.Attrs {
		header = append(header, a.Name)
	}
	header = append(header, "label")
	if err := w.Write(header); err != nil {
		return err
	}
	for i, row := range d.X {
		rec := make([]string, 0, len(row)+1)
		for j, v := range row {
			a := d.Schema.Attrs[j]
			if a.Kind == mlearn.Categorical {
				rec = append(rec, a.Categories[int(v)])
			} else {
				rec = append(rec, strconv.FormatFloat(v, 'f', -1, 64))
			}
		}
		rec = append(rec, strconv.Itoa(d.Y[i]))
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
