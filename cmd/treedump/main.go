// Command treedump trains (or loads) the feature memory and writes each
// device model's decision tree as Graphviz dot plus its Fig 6-style feature
// weights — the interpretability view of what the context memory actually
// enforces.
//
// Usage:
//
//	treedump -out DIR [-load-memory FILE]
//	dot -Tpng DIR/window.dot -o window.png
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"iotsid/internal/core"
	"iotsid/internal/dataset"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "treedump:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "trees", "output directory")
	loadMemory := flag.String("load-memory", "", "load a trained feature memory instead of training")
	flag.Parse()

	var memory *core.FeatureMemory
	if *loadMemory != "" {
		f, err := os.Open(*loadMemory)
		if err != nil {
			return err
		}
		memory, err = core.Load(f)
		_ = f.Close()
		if err != nil {
			return err
		}
	} else {
		fmt.Println("training feature memory...")
		corpus, err := dataset.Corpus(dataset.CorpusConfig{Seed: 1})
		if err != nil {
			return err
		}
		memory, err = core.Train(corpus, dataset.BuildConfig{Seed: 42}, core.TrainConfig{Seed: 9})
		if err != nil {
			return err
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for _, m := range memory.Models() {
		entry, _ := memory.Entry(m)
		dot, err := entry.Tree.DOT(string(m))
		if err != nil {
			return fmt.Errorf("%s: %w", m, err)
		}
		path := filepath.Join(*out, string(m)+".dot")
		if err := os.WriteFile(path, []byte(dot), 0o644); err != nil {
			return err
		}
		fmt.Printf("%s (depth %d, %d nodes) -> %s\n", m, entry.Tree.Depth(), entry.Tree.NodeCount(), path)
		for _, w := range entry.Weights {
			if w.Weight > 0 {
				fmt.Printf("    %-18s %.4f\n", w.Attr, w.Weight)
			}
		}
	}
	return nil
}
