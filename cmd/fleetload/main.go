// Command fleetload is the closed-loop load generator for the multi-tenant
// fleet: it trains the IDS once, registers a configurable population of
// homes behind an in-process cloud, then drives seeded per-home instruction
// streams through POST /v1/fleet/authorize from concurrent closed-loop
// workers (each waits for its batch's response before sending the next).
//
// The run is deterministic: every home owns an exclusive RNG derived from
// -seed, sensitive instructions carry their (legal or attack) sensor scene
// inline, and the decision stream folds into a per-home FNV-64 digest
// combined in home order — the printed digest is bit-identical at any
// -workers, -shards, or -batch setting. Throughput and latency, of course,
// are not; those are what the knobs are for.
//
// With -spoof set, a deterministic hash-selected fraction of homes is
// armed with a per-home sensor-trust engine and pre-collapsed by a seeded
// replay plan (warmup pushes whose event times run backwards); every
// in-load context push from a spoofed home is itself a replay, so the
// engines stay collapsed for the whole run. Sensitive instructions from
// spoofed homes must all fail closed — the run errors if any is allowed
// (the unsafe_allows field of the report, which must be 0). Homes outside
// the spoofed fraction take exactly the trust-less path, so a -spoof 0
// run is byte-identical to one without the flag.
//
// With -chain set, a deterministic hash-selected fraction of homes
// (disjoint from the spoofed set) is armed with the per-home sequence
// judge and driven with its own seeded stream: a benign warm-up day, then
// a same-tick automation chain — three status reads and a sensitive tail
// sharing one timestamp, every scene individually tree-legal. The chain
// tails must all be sequence-rejected; the run errors if any is allowed
// (unsafe_chain_allows must be 0). A -chain 0 run is byte-identical to one
// without the flag.
//
// Usage:
//
//	fleetload [-homes 10000] [-shards 16] [-workers 4] [-server-workers 0]
//	          [-steps 5] [-batch 256] [-sensitive 0.7] [-attack 0.3]
//	          [-spoof 0] [-chain 0] [-seed 1] [-profile 127.0.0.1:0] [-out BENCH_fleet.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"iotsid/internal/cloud"
	"iotsid/internal/core"
	"iotsid/internal/dataset"
	"iotsid/internal/fleet"
	"iotsid/internal/instr"
	"iotsid/internal/obs"
	"iotsid/internal/sensor"
	"iotsid/internal/seq"
	"iotsid/internal/trust"

	"math/rand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fleetload:", err)
		os.Exit(1)
	}
}

// hashFrac maps a home ID to a uniform fraction in [0, 1) — a pure
// function of the ID, so the spoofed set is independent of worker, shard,
// and batch settings. FNV-64a alone avalanches poorly on short
// near-identical keys (sequential home IDs cluster within ~0.04 of each
// other), so a splitmix64 finalizer mixes the hash before the fraction.
func hashFrac(id string) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// modelOps maps each evaluated device model to one sensitive control op —
// the device mix every home draws from.
var modelOps = map[dataset.Model]struct{ op, device string }{
	dataset.ModelWindow:  {"window.open", "win-1"},
	dataset.ModelAircon:  {"aircon.on", "ac-1"},
	dataset.ModelLight:   {"light.on", "lamp-1"},
	dataset.ModelCurtain: {"curtain.open", "cur-1"},
	dataset.ModelTV:      {"tv.on", "tv-1"},
	dataset.ModelKitchen: {"cooker.start", "rc-1"},
}

type report struct {
	Homes         int     `json:"homes"`
	Shards        int     `json:"shards"`
	Workers       int     `json:"workers"`
	ServerWorkers int     `json:"server_workers"`
	Steps         int     `json:"steps"`
	Batch         int     `json:"batch"`
	Sensitive     float64 `json:"sensitive_ratio"`
	Attack        float64 `json:"attack_ratio"`
	Spoof         float64 `json:"spoof_ratio"`
	SpoofedHomes  int     `json:"spoofed_homes"`
	Chain         float64 `json:"chain_ratio"`
	ChainedHomes  int     `json:"chained_homes"`
	Seed          int64   `json:"seed"`
	GOMAXPROCS    int     `json:"gomaxprocs"`

	Decisions int `json:"decisions"`
	Allowed   int `json:"allowed"`
	Rejected  int `json:"rejected"`
	Requests  int `json:"requests"`
	// UnsafeAllows counts sensitive instructions allowed for spoofed
	// homes — the trust contract demands zero; the run errors otherwise.
	UnsafeAllows int `json:"unsafe_allows"`
	// LowTrustHomes is the fleet's end-of-run low-trust count; it must
	// equal spoofed_homes (every spoofed engine collapsed and stayed so).
	LowTrustHomes int `json:"low_trust_homes"`
	// ChainAttempts counts same-tick chain tails fired at sequence-armed
	// homes; ChainBlocked of them were sequence-rejected, and
	// UnsafeChainAllows slipped through (must be 0 — the run errors).
	// ChainFalseBlocks counts benign warm-up events from chained homes
	// wrongly rejected — the sequence judge's availability cost.
	ChainAttempts     int     `json:"chain_attempts"`
	ChainBlocked      int     `json:"chain_blocked"`
	UnsafeChainAllows int     `json:"unsafe_chain_allows"`
	ChainFalseBlocks  int     `json:"chain_false_blocks"`
	SeqAnomalies      uint64  `json:"seq_anomalies"`
	WallSeconds       float64 `json:"wall_seconds"`
	DecPerSec         float64 `json:"decisions_per_sec"`
	ReqPerSec         float64 `json:"requests_per_sec"`

	P50Ms  float64 `json:"latency_p50_ms"`
	P95Ms  float64 `json:"latency_p95_ms"`
	P99Ms  float64 `json:"latency_p99_ms"`
	MaxMs  float64 `json:"latency_max_ms"`
	Digest string  `json:"digest"`
}

func run() error {
	homes := flag.Int("homes", 10000, "home population")
	shards := flag.Int("shards", 16, "fleet shard count")
	workers := flag.Int("workers", 4, "closed-loop client workers")
	serverWorkers := flag.Int("server-workers", 0, "per-request shard fan-out on the server (0 = GOMAXPROCS)")
	steps := flag.Int("steps", 5, "instruction rounds per home")
	batch := flag.Int("batch", 256, "items per /v1/fleet/authorize request")
	sensitiveRatio := flag.Float64("sensitive", 0.7, "probability a step issues a sensitive control op (rest are status reads)")
	attackRatio := flag.Float64("attack", 0.3, "probability a sensitive op carries an attack scene instead of a legal one")
	spoofRatio := flag.Float64("spoof", 0, "fraction of homes armed with a trust engine and fed a seeded replay spoofing plan (0 = no trust layer at all)")
	chainRatio := flag.Float64("chain", 0, "fraction of homes armed with the sequence judge and attacked with a same-tick automation chain (0 = no sequence layer at all)")
	seed := flag.Int64("seed", 1, "load seed (same seed ⇒ same digest at any worker/shard/batch count)")
	profileAddr := flag.String("profile", "", "serve /metrics and /debug/pprof on this address during the run (empty = disabled)")
	outPath := flag.String("out", "", "write the JSON report to this file")
	flag.Parse()
	if *homes <= 0 || *steps <= 0 || *batch <= 0 || *workers <= 0 {
		return fmt.Errorf("-homes, -steps, -batch and -workers must be positive")
	}
	if *spoofRatio < 0 || *spoofRatio > 1 {
		return fmt.Errorf("-spoof must be in [0, 1]")
	}
	if *chainRatio < 0 || *chainRatio > 1 {
		return fmt.Errorf("-chain must be in [0, 1]")
	}

	metrics := obs.Default()

	fmt.Printf("training feature memory (corpus seed 1, build 42, train 9)...\n")
	corpus, err := dataset.Corpus(dataset.CorpusConfig{Seed: 1})
	if err != nil {
		return err
	}
	memory, err := core.Train(corpus, dataset.BuildConfig{Seed: 42}, core.TrainConfig{Seed: 9})
	if err != nil {
		return err
	}
	detector, err := core.DefaultDetector()
	if err != nil {
		return err
	}
	registry, err := fleet.NewModelRegistry(memory)
	if err != nil {
		return err
	}
	fl, err := fleet.New(fleet.Config{
		Detector: detector,
		Models:   registry,
		Shards:   *shards,
		Metrics:  metrics,
	})
	if err != nil {
		return err
	}
	// Spoofed- and chained-home selection is a pure hash of the home ID,
	// so both sets are identical at any worker/shard/batch setting; a zero
	// ratio arms nothing and leaves every home on the exact unarmed path.
	// The chained set is salted differently and excludes spoofed homes —
	// a collapsed trust engine fails everything closed, which would mask
	// what the chain run is measuring.
	var seqSet *seq.Set
	if *chainRatio > 0 {
		seqSet, err = seq.Train(seq.TrainConfig{Seed: *seed + 77, Models: []dataset.Model{dataset.ModelWindow}})
		if err != nil {
			return err
		}
	}
	spoofed := make([]bool, *homes)
	chained := make([]bool, *homes)
	spoofedCount, chainedCount := 0, 0
	ids := make([]string, *homes)
	for i := range ids {
		ids[i] = fmt.Sprintf("home-%06d", i)
		cfg := fleet.HomeConfig{ID: ids[i]}
		if *spoofRatio > 0 && hashFrac(ids[i]) < *spoofRatio {
			spoofed[i] = true
			spoofedCount++
			eng, err := trust.NewEngine(trust.Config{},
				trust.SourceConfig{Name: "push", Required: true})
			if err != nil {
				return err
			}
			cfg.Trust = eng
		} else if *chainRatio > 0 && hashFrac("seq|"+ids[i]) < *chainRatio {
			chained[i] = true
			chainedCount++
			cfg.Sequence = seqSet
		}
		if _, err := fl.AddHome(cfg); err != nil {
			return err
		}
	}
	fmt.Printf("fleet: %d homes across %d shards, %d shared compiled models\n",
		fl.HomeCount(), fl.ShardCount(), fl.Registry().Len())

	srv, err := cloud.NewServer(cloud.Config{
		Users:        map[string]string{"gateway": "loadtest"},
		Registry:     instr.BuiltinRegistry(),
		Forward:      func(in instr.Instruction) error { return nil },
		Fleet:        fl,
		FleetWorkers: *serverWorkers,
	})
	if err != nil {
		return err
	}
	defer func() { _ = srv.Close() }()
	// The fleet endpoints enforce home-to-account binding; every load home
	// belongs to the gateway account.
	for _, id := range ids {
		if err := srv.BindHome(id, "gateway"); err != nil {
			return err
		}
	}

	if spoofedCount > 0 {
		// The seeded spoofing plan: three warmup pushes per spoofed home
		// whose event times run backwards — the replay violations collapse
		// each engine below threshold before the load starts. The warmup
		// stamps sit an hour after the scenes' fixed event time, so every
		// in-load context push from a spoofed home is itself a replay and
		// the engine never recovers.
		warm, err := dataset.LegalSceneSeeded(dataset.ModelWindow, *seed+4242)
		if err != nil {
			return err
		}
		t0 := warm.At.Add(time.Hour)
		for i := range ids {
			if !spoofed[i] {
				continue
			}
			for k := 0; k < 3; k++ {
				snap := warm.Clone()
				snap.At = t0.Add(-time.Duration(k) * 5 * time.Second)
				if err := fl.PushContext(ids[i], snap); err != nil {
					return err
				}
			}
		}
		fmt.Printf("spoof: %d/%d homes armed, %d collapsed by the replay plan\n",
			spoofedCount, *homes, fl.LowTrustHomes())
	}

	if *profileAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ln, err := net.Listen("tcp", *profileAddr)
		if err != nil {
			return fmt.Errorf("profile listener: %w", err)
		}
		ps := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go func() { _ = ps.Serve(ln) }()
		defer func() { _ = ps.Close() }()
		fmt.Printf("profiling: http://%s/debug/pprof/ and /metrics\n", ln.Addr())
	}

	// Per-home exclusive state: RNG and decision digest. Worker w owns
	// homes with index i ≡ w (mod workers), so no per-home state is ever
	// shared across workers and the digest needs no locks.
	rngs := make([]*rand.Rand, *homes)
	digests := make([]uint64, *homes)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(*seed + 9973*int64(i)))
		digests[i] = 14695981039346656037 // FNV-64 offset basis
	}
	models := dataset.Models()

	// Chained homes run their own seeded stream instead of the random mix:
	// *steps-1 benign warm-up events, then the same-tick chain. Plans are
	// pure functions of the seed and home index, so they are independent
	// of worker, shard, and batch settings.
	plans := make([][]seq.TraceEvent, *homes)
	bursts := make([]seq.TraceEvent, *homes)
	if chainedCount > 0 {
		for i := range ids {
			if !chained[i] {
				continue
			}
			plan := seq.LegalTrace(rand.New(rand.NewSource(*seed+5741*int64(i))), *steps-1, 8, 13)
			plans[i] = plan
			base := seq.TraceEvent{At: time.Date(2021, 4, 1, 11, 0, 0, 0, time.UTC), Hour: 11, Voice: true, Occupied: true}
			if len(plan) > 0 {
				last := plan[len(plan)-1]
				base = seq.TraceEvent{At: last.At.Add(40 * time.Second), Hour: last.Hour, Voice: true, Occupied: last.Occupied}
			}
			bursts[i] = base
		}
		fmt.Printf("chain: %d/%d homes sequence-armed, one same-tick chain each\n", chainedCount, *homes)
	}

	type workerStats struct {
		latencies     []time.Duration
		requests      int
		decisions     int
		allowed       int
		rejected      int
		unsafe        int
		chainAttempts int
		chainBlocked  int
		unsafeChain   int
		chainFalse    int
		err           error
	}
	stats := make([]workerStats, *workers)

	fmt.Printf("load: %d steps × %d homes, %d workers, batch %d, %.0f%% sensitive / %.0f%% attack\n",
		*steps, *homes, *workers, *batch, *sensitiveRatio*100, *attackRatio*100)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &stats[w]
			c, err := cloud.NewClient(srv.URL())
			if err == nil {
				err = c.Login("gateway", "loadtest")
			}
			if err != nil {
				st.err = err
				return
			}
			items := make([]cloud.FleetBatchItem, 0, *batch)
			owners := make([]int, 0, *batch)   // home index per queued item
			attacks := make([]bool, 0, *batch) // true for chain tails
			flush := func() error {
				if len(items) == 0 {
					return nil
				}
				t0 := time.Now()
				results, err := c.FleetAuthorize(items)
				if err != nil {
					return err
				}
				st.latencies = append(st.latencies, time.Since(t0))
				st.requests++
				if len(results) != len(items) {
					return fmt.Errorf("batch returned %d results for %d items", len(results), len(items))
				}
				for k, res := range results {
					if res.Error != "" {
						return fmt.Errorf("item %d (%s): %s", k, items[k].Home, res.Error)
					}
					st.decisions++
					if res.Allowed {
						st.allowed++
					} else {
						st.rejected++
					}
					if res.Allowed && res.Sensitive && spoofed[owners[k]] {
						st.unsafe++
					}
					if attacks[k] {
						st.chainAttempts++
						if res.Allowed {
							st.unsafeChain++
						} else {
							st.chainBlocked++
						}
					} else if chained[owners[k]] && !res.Allowed {
						st.chainFalse++
					}
					// Fold (allowed, sensitive) into the owning home's
					// digest — FNV-64a over two tag bytes.
					i := owners[k]
					d := digests[i]
					b0, b1 := byte('d'), byte('n')
					if res.Allowed {
						b0 = 'a'
					}
					if res.Sensitive {
						b1 = 's'
					}
					d = (d ^ uint64(b0)) * 1099511628211
					d = (d ^ uint64(b1)) * 1099511628211
					digests[i] = d
				}
				items = items[:0]
				owners = owners[:0]
				attacks = attacks[:0]
				return nil
			}
			for s := 0; s < *steps; s++ {
				for i := w; i < *homes; i += *workers {
					if chained[i] {
						if s < *steps-1 {
							e := plans[i][s]
							op := "window.get_state"
							if e.Sensitive {
								op = "window.open"
							}
							snap := e.WindowScene()
							items = append(items, cloud.FleetItem(ids[i], op, "win-1", &snap))
							owners = append(owners, i)
							attacks = append(attacks, false)
						} else {
							// Final step: the same-tick chain, kept whole in
							// one request so the home's stream stays ordered.
							if len(items)+4 > *batch {
								if err := flush(); err != nil {
									st.err = err
									return
								}
							}
							for k := 0; k < 3; k++ {
								snap := bursts[i].WindowScene()
								items = append(items, cloud.FleetItem(ids[i], "window.get_state", "win-1", &snap))
								owners = append(owners, i)
								attacks = append(attacks, false)
							}
							tail := bursts[i]
							tail.Sensitive = true
							snap := tail.WindowScene()
							items = append(items, cloud.FleetItem(ids[i], "window.open", "win-1", &snap))
							owners = append(owners, i)
							attacks = append(attacks, true)
						}
						if len(items) >= *batch {
							if err := flush(); err != nil {
								st.err = err
								return
							}
						}
						continue
					}
					rng := rngs[i]
					if rng.Float64() < *sensitiveRatio {
						m := models[rng.Intn(len(models))]
						spec := modelOps[m]
						var snap sensor.Snapshot
						var err error
						if rng.Float64() < *attackRatio {
							snap, err = dataset.AttackScene(m, rng)
						} else {
							snap, err = dataset.LegalScene(m, rng)
						}
						if err != nil {
							st.err = err
							return
						}
						items = append(items, cloud.FleetItem(ids[i], spec.op, spec.device, &snap))
					} else {
						items = append(items, cloud.FleetItem(ids[i], "light.get_state", "lamp-1", nil))
					}
					owners = append(owners, i)
					attacks = append(attacks, false)
					if len(items) == *batch {
						if err := flush(); err != nil {
							st.err = err
							return
						}
					}
				}
				// Flush at step boundaries so each home's stream stays
				// ordered and the digest is schedule-independent.
				if err := flush(); err != nil {
					st.err = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	rep := report{
		Homes: *homes, Shards: *shards, Workers: *workers, ServerWorkers: *serverWorkers,
		Steps: *steps, Batch: *batch, Sensitive: *sensitiveRatio, Attack: *attackRatio,
		Spoof: *spoofRatio, SpoofedHomes: spoofedCount,
		Chain: *chainRatio, ChainedHomes: chainedCount,
		Seed: *seed, GOMAXPROCS: runtime.GOMAXPROCS(0),
		WallSeconds:   wall.Seconds(),
		LowTrustHomes: fl.LowTrustHomes(),
		SeqAnomalies:  fl.SeqAnomalies(),
	}
	var lats []time.Duration
	for w := range stats {
		if stats[w].err != nil {
			return fmt.Errorf("worker %d: %w", w, stats[w].err)
		}
		rep.Requests += stats[w].requests
		rep.Decisions += stats[w].decisions
		rep.Allowed += stats[w].allowed
		rep.Rejected += stats[w].rejected
		rep.UnsafeAllows += stats[w].unsafe
		rep.ChainAttempts += stats[w].chainAttempts
		rep.ChainBlocked += stats[w].chainBlocked
		rep.UnsafeChainAllows += stats[w].unsafeChain
		rep.ChainFalseBlocks += stats[w].chainFalse
		lats = append(lats, stats[w].latencies...)
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		k := int(p * float64(len(lats)-1))
		return float64(lats[k]) / float64(time.Millisecond)
	}
	rep.P50Ms, rep.P95Ms, rep.P99Ms = pct(0.50), pct(0.95), pct(0.99)
	if len(lats) > 0 {
		rep.MaxMs = float64(lats[len(lats)-1]) / float64(time.Millisecond)
	}
	rep.DecPerSec = float64(rep.Decisions) / wall.Seconds()
	rep.ReqPerSec = float64(rep.Requests) / wall.Seconds()

	// Combine the per-home digests in home-index order: the stream digest.
	h := fnv.New64a()
	var buf [8]byte
	for _, d := range digests {
		for b := 0; b < 8; b++ {
			buf[b] = byte(d >> (8 * b))
		}
		_, _ = h.Write(buf[:])
	}
	rep.Digest = fmt.Sprintf("%016x", h.Sum64())

	fmt.Printf("\n%-22s %12s\n", "metric", "value")
	fmt.Printf("%-22s %12d\n", "decisions", rep.Decisions)
	fmt.Printf("%-22s %12d\n", "  allowed", rep.Allowed)
	fmt.Printf("%-22s %12d\n", "  rejected", rep.Rejected)
	fmt.Printf("%-22s %12d\n", "requests", rep.Requests)
	fmt.Printf("%-22s %12.2f\n", "wall seconds", rep.WallSeconds)
	fmt.Printf("%-22s %12.0f\n", "decisions/sec", rep.DecPerSec)
	fmt.Printf("%-22s %12.0f\n", "requests/sec", rep.ReqPerSec)
	fmt.Printf("%-22s %12.2f\n", "latency p50 (ms)", rep.P50Ms)
	fmt.Printf("%-22s %12.2f\n", "latency p95 (ms)", rep.P95Ms)
	fmt.Printf("%-22s %12.2f\n", "latency p99 (ms)", rep.P99Ms)
	fmt.Printf("%-22s %12.2f\n", "latency max (ms)", rep.MaxMs)
	if spoofedCount > 0 {
		fmt.Printf("%-22s %12d\n", "spoofed homes", rep.SpoofedHomes)
		fmt.Printf("%-22s %12d\n", "low-trust homes", rep.LowTrustHomes)
		fmt.Printf("%-22s %12d\n", "unsafe allows", rep.UnsafeAllows)
	}
	if chainedCount > 0 {
		fmt.Printf("%-22s %12d\n", "chained homes", rep.ChainedHomes)
		fmt.Printf("%-22s %12d\n", "chains blocked", rep.ChainBlocked)
		fmt.Printf("%-22s %12d\n", "chain false blocks", rep.ChainFalseBlocks)
		fmt.Printf("%-22s %12d\n", "seq anomalies", rep.SeqAnomalies)
		fmt.Printf("%-22s %12d\n", "unsafe chain allows", rep.UnsafeChainAllows)
	}
	fmt.Printf("%-22s %12s\n", "digest", rep.Digest)

	if *outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", *outPath)
	}
	if rep.UnsafeAllows > 0 {
		return fmt.Errorf("%d sensitive instructions allowed for spoofed homes — the trust gate leaked", rep.UnsafeAllows)
	}
	if rep.UnsafeChainAllows > 0 {
		return fmt.Errorf("%d chain tails allowed for sequence-armed homes — the sequence gate leaked", rep.UnsafeChainAllows)
	}
	return nil
}
