// Command benchgen regenerates every table and figure of the paper's
// evaluation and prints them side by side with the paper's reported
// numbers.
//
// Usage:
//
//	benchgen [-seed N] [-ablations] [-workers N] [-csv DIR]
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"iotsid/internal/eval"
	"iotsid/internal/instr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 0, "override the evaluation seed (0 = paper defaults)")
	ablations := flag.Bool("ablations", false, "also run criterion/sampling/baseline ablations")
	csvDir := flag.String("csv", "", "also write table3/table6/fig6/fig7 as CSV into this directory")
	workers := flag.Int("workers", 0, "parallel workers for training and sweeps (0 = GOMAXPROCS); results are identical for every value")
	flag.Parse()

	cfg := eval.DefaultConfig()
	cfg.Workers = *workers
	if *seed != 0 {
		cfg.Seed = *seed
		cfg.CorpusSeed = *seed + 1
		cfg.DatasetSeed = *seed + 2
		cfg.TrainSeed = *seed + 3
	}
	fmt.Println("building evaluation suite (survey + corpus + six trained models)...")
	s, err := eval.NewSuite(cfg)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Println(eval.RenderTableI())
	fmt.Println("Table II — questionnaire form (curtains/blinds example)")
	for _, line := range eval.TableII(instr.CatCurtain) {
		fmt.Println("  " + line)
	}
	fmt.Println()
	fmt.Println(s.RenderTableIII())
	fmt.Println(s.RenderFig4())
	fmt.Println(s.RenderTableIV())
	fmt.Println(s.RenderFig5())
	fmt.Println(s.RenderFig6())
	tv := eval.TableV()
	fmt.Printf("Table V — metric equations on TP=%d TN=%d FP=%d FN=%d:\n", tv.Matrix.TP, tv.Matrix.TN, tv.Matrix.FP, tv.Matrix.FN)
	fmt.Printf("  accuracy=%.4f recall=%.4f precision=%.4f FPR=%.4f FNR=%.4f\n\n",
		tv.Accuracy, tv.Recall, tv.Precision, tv.FPR, tv.FNR)
	fmt.Println(s.RenderTableVI())
	fmt.Println(s.RenderFig7())

	if *csvDir != "" {
		if err := writeCSVs(s, *csvDir); err != nil {
			return err
		}
		fmt.Printf("CSV tables written to %s\n\n", *csvDir)
	}

	if *ablations {
		out, err := s.RenderBaselines()
		if err != nil {
			return err
		}
		fmt.Println(out)
		crit, err := s.CriterionAblation()
		if err != nil {
			return err
		}
		fmt.Println("Criterion ablation — test accuracy")
		for _, r := range crit {
			fmt.Printf("  %-20s %-12s %.4f (FNR %.4f)\n", r.Model, r.Criterion, r.TestAcc, r.FNR)
		}
		fmt.Println()
		samp, err := s.SamplingAblation()
		if err != nil {
			return err
		}
		fmt.Println("Sampling ablation — test accuracy / recall")
		for _, r := range samp {
			fmt.Printf("  %-20s %-18s acc=%.4f recall=%.4f\n", r.Model, r.Sampling, r.TestAcc, r.Recall)
		}
		fmt.Println()
		forestOut, err := s.RenderForestComparison()
		if err != nil {
			return err
		}
		fmt.Println(forestOut)
		prevOut, err := s.RenderPrevention(400)
		if err != nil {
			return err
		}
		fmt.Println(prevOut)
		transferOut, err := s.RenderTransfer([]int64{1001, 2002, 3003, 4004, 5005})
		if err != nil {
			return err
		}
		fmt.Println(transferOut)
		campaignOut, err := s.RenderCampaign(context.Background(), 60)
		if err != nil {
			return err
		}
		fmt.Println(campaignOut)
	}
	return nil
}

// writeCSVs exports the headline tables/figures as CSV files.
func writeCSVs(s *eval.Suite, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ff := func(x float64) string { return strconv.FormatFloat(x, 'f', 4, 64) }

	table3 := [][]string{{"category", "high_pct", "low_pct", "none_pct", "sensitive"}}
	for _, r := range s.TableIII() {
		table3 = append(table3, []string{r.Title, ff(r.HighPct), ff(r.LowPct), ff(r.NonePct),
			strconv.FormatBool(r.Sensitive)})
	}
	if err := writeCSV(filepath.Join(dir, "table3.csv"), table3); err != nil {
		return err
	}

	table6 := [][]string{{"model", "train_acc", "test_acc", "recall", "precision", "fpr", "fnr", "cv_mean_acc"}}
	for _, r := range s.TableVI() {
		table6 = append(table6, []string{r.Title, ff(r.TrainAcc), ff(r.TestAcc), ff(r.Recall),
			ff(r.Prec), ff(r.FPR), ff(r.FNR), ff(r.CVMean)})
	}
	if err := writeCSV(filepath.Join(dir, "table6.csv"), table6); err != nil {
		return err
	}

	weights, err := s.Fig6()
	if err != nil {
		return err
	}
	fig6 := [][]string{{"attribute", "weight"}}
	for _, w := range weights {
		fig6 = append(fig6, []string{w.Attr, ff(w.Weight)})
	}
	if err := writeCSV(filepath.Join(dir, "fig6.csv"), fig6); err != nil {
		return err
	}

	fig7 := [][]string{{"trigger", "strategies", "share_pct"}}
	for _, r := range s.Fig7() {
		fig7 = append(fig7, []string{r.Trigger.String(), strconv.Itoa(r.Strategies), ff(r.SharePct)})
	}
	return writeCSV(filepath.Join(dir, "fig7.csv"), fig7)
}

func writeCSV(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
