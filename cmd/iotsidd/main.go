// Command iotsidd runs the full intrusion-detection deployment: the home
// simulator, the Xiaomi-style encrypted UDP gateway, the SmartThings-style
// REST bridge, the trigger-action automation engine, and the trained IDS
// framework gating every sensitive instruction on all three paths.
//
// It then fast-forwards simulated time, injecting periodic sensor-spoofing
// attacks, and reports every interception and camera warning.
//
// Usage:
//
//	iotsidd [-hours 24] [-step 1m] [-seed 7] [-attack-every 4h]
//	        [-miio-addr 127.0.0.1:0] [-st-addr 127.0.0.1:0] [-token HEX32]
//	        [-aux-fault 0.2] [-aux-staleness 30s] [-collection poll|push]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"iotsid/internal/automation"
	"iotsid/internal/bridge"
	"iotsid/internal/core"
	"iotsid/internal/dataset"
	"iotsid/internal/epoch"
	"iotsid/internal/home"
	"iotsid/internal/instr"
	"iotsid/internal/miio"
	"iotsid/internal/obs"
	"iotsid/internal/resilience"
	"iotsid/internal/sensor"
	"iotsid/internal/smartthings"
	"iotsid/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iotsidd:", err)
		os.Exit(1)
	}
}

func run() error {
	hours := flag.Float64("hours", 24, "simulated hours to run")
	step := flag.Duration("step", time.Minute, "simulation step")
	seed := flag.Int64("seed", 7, "world seed")
	attackEvery := flag.Duration("attack-every", 4*time.Hour, "inject a spoofed-sensor attack at this simulated interval")
	miioAddr := flag.String("miio-addr", "127.0.0.1:0", "gateway UDP listen address")
	stAddr := flag.String("st-addr", "127.0.0.1:0", "REST bridge listen address")
	tokenHex := flag.String("token", "00112233445566778899aabbccddeeff", "gateway device token (32 hex chars)")
	auditPath := flag.String("audit", "", "write the audit trace as JSON lines to this file on exit")
	rulesPath := flag.String("rules", "", "load automation rules from this file instead of the builtin set")
	devmodeAddr := flag.String("devmode-addr", "127.0.0.1:0", "developer-mode event channel UDP address (empty = disabled)")
	saveMemory := flag.String("save-memory", "", "write the trained feature memory to this file")
	loadMemory := flag.String("load-memory", "", "load a previously trained feature memory instead of training")
	auxFault := flag.Float64("aux-fault", 0.2, "per-poll error probability of the optional aux sensor feed (0 disables chaos)")
	auxStaleness := flag.Duration("aux-staleness", 30*time.Second, "budget for serving the aux feed's last-good snapshot after a failed poll")
	collection := flag.String("collection", "poll", "sensor collection mode: poll (resilient multi-source polling) or push (event-driven epoch store)")
	metricsAddr := flag.String("metrics-addr", "", "serve GET /metrics (Prometheus text), /healthz and /debug/pprof on this address (empty = disabled)")
	dumpMetrics := flag.Bool("dump-metrics", false, "print the final metrics exposition to stdout on exit")
	flag.Parse()

	metrics := obs.Default()

	// World.
	h, err := home.NewStandard(home.EnvConfig{Seed: *seed})
	if err != nil {
		return err
	}
	registry := instr.BuiltinRegistry()

	// IDS: questionnaire-derived detector + corpus-trained feature memory.
	detector, err := core.DefaultDetector()
	if err != nil {
		return err
	}
	var memory *core.FeatureMemory
	if *loadMemory != "" {
		f, err := os.Open(*loadMemory)
		if err != nil {
			return err
		}
		memory, err = core.Load(f)
		_ = f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("loaded feature memory from %s (%d models)\n", *loadMemory, len(memory.Models()))
	} else {
		fmt.Println("training feature memory from the strategy corpus...")
		corpus, err := dataset.Corpus(dataset.CorpusConfig{Seed: 1})
		if err != nil {
			return err
		}
		memory, err = core.Train(corpus, dataset.BuildConfig{Seed: 42}, core.TrainConfig{Seed: 9})
		if err != nil {
			return err
		}
	}
	if *saveMemory != "" {
		f, err := os.Create(*saveMemory)
		if err != nil {
			return err
		}
		if err := memory.Save(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("feature memory written to %s\n", *saveMemory)
	}
	// Sensor context: two selectable collection paths.
	//
	// poll (default): a resilient two-source collector. The sim feed is the
	// required vendor gateway — if it cannot answer, sensitive instructions
	// fail closed. The aux feed is optional and chaos-wrapped, exercising
	// degraded mode (retry, breaker, bounded-stale fallback) in a live run.
	// It is declared first so the fresh required feed wins shared-feature
	// merges.
	//
	// push: an epoch store fed by the simulator's event stream (plus a
	// poll-to-push SmartThings adapter), so each Authorize is a pointer read
	// of the latest published view instead of a fan-out poll.
	health := resilience.NewRegistry()
	var (
		collector core.DetailedCollector
		auxChaos  *core.ChaosCollector
		store     *epoch.Store
	)
	switch *collection {
	case "poll":
		auxRetry := resilience.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, Seed: *seed}
		auxChaos = &core.ChaosCollector{Inner: &core.SimCollector{Env: h.Env()}, Plan: core.ChaosPlan(*seed, *auxFault, 0, 0)}
		collector, err = core.NewMultiCollector(
			core.MultiConfig{Health: health, Metrics: metrics},
			core.Source{
				Name:      "aux",
				Collector: auxChaos,
				Staleness: *auxStaleness,
				Retry:     &auxRetry,
				Breaker: resilience.NewBreaker(resilience.BreakerConfig{
					Name: "aux", FailureThreshold: 5, OpenTimeout: 2 * time.Second,
					OnStateChange: core.BreakerTransitionHook(metrics, "aux"),
				}),
			},
			core.Source{
				Name:      "sim",
				Collector: &core.SimCollector{Env: h.Env()},
				Required:  true,
				Breaker: resilience.NewBreaker(resilience.BreakerConfig{
					Name:          "sim",
					OnStateChange: core.BreakerTransitionHook(metrics, "sim"),
				}),
			},
		)
		if err != nil {
			return err
		}
	case "push":
		// The sim source is pushed every step; the SmartThings source is
		// refreshed by the poll-to-push adapter on the same cadence. Both get
		// a two-step freshness budget so one missed refresh degrades rather
		// than fails.
		store, err = epoch.NewStore(epoch.Config{Now: h.Env().Now, Metrics: metrics},
			epoch.SourceConfig{Name: "sim", Required: true, FreshFor: 2 * *step},
			epoch.SourceConfig{Name: "smartthings", FreshFor: 2 * *step})
		if err != nil {
			return err
		}
		collector, err = core.NewEpochCollector(core.EpochCollectorConfig{Now: h.Env().Now}, store)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -collection mode %q (want poll or push)", *collection)
	}
	framework, err := core.New(core.Config{
		Detector:  detector,
		Collector: collector,
		Memory:    memory,
		Metrics:   metrics,
	})
	if err != nil {
		return err
	}
	audit := trace.NewLog(8192)
	audit.Instrument(metrics)
	framework.SetAuditLog(audit)

	// Operator endpoints: Prometheus text at /metrics, liveness at
	// /healthz, pprof under /debug/pprof/.
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler())
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			status := http.StatusOK
			body := map[string]any{"status": "ok"}
			if !health.Healthy() {
				status = http.StatusServiceUnavailable
				body["status"] = "degraded"
			}
			body["sources"] = health.Snapshot()
			w.WriteHeader(status)
			_ = json.NewEncoder(w).Encode(body)
		})
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		msrv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go func() { _ = msrv.Serve(ln) }()
		defer msrv.Close()
		fmt.Printf("metrics on http://%s/metrics (pprof at /debug/pprof/)\n", ln.Addr())
	}

	// Vendor paths, both gated by the IDS.
	token, err := miio.ParseToken(*tokenHex)
	if err != nil {
		return err
	}
	xiaomi := bridge.NewXiaomiHandler(h, registry)
	xiaomi.SetGate(framework.Gate)
	gw, err := miio.NewGateway(miio.GatewayConfig{Addr: *miioAddr, DeviceID: 0x4d41, Token: token, Handler: xiaomi})
	if err != nil {
		return err
	}
	defer gw.Close()
	stBackend := bridge.NewSTBackend(h, registry)
	stBackend.SetGate(framework.Gate)
	st, err := smartthings.NewServer(smartthings.ServerConfig{Addr: *stAddr, Token: "llat-iotsidd", Backend: stBackend})
	if err != nil {
		return err
	}
	defer st.Close()
	fmt.Printf("miio gateway listening on %s (token %s)\n", gw.Addr(), token)
	fmt.Printf("smartthings bridge on %s (token llat-iotsidd)\n", st.URL())

	// Push mode: adapt the poll-only SmartThings bridge into the epoch store
	// by polling it over its real REST surface and pushing the decoded delta.
	var stPoller *bridge.STPoller
	if store != nil {
		stClient, err := smartthings.NewClient(st.URL(), "llat-iotsidd")
		if err != nil {
			return err
		}
		stPoller, err = bridge.NewSTPoller(stClient, store, "smartthings")
		if err != nil {
			return err
		}
	}

	// Developer-mode event channel: pushes every sensor change to
	// subscribers, as the vendor gateway's plaintext side channel does.
	var pump *bridge.EventPump
	var devmode *miio.DevMode
	if *devmodeAddr != "" {
		devmode, err = miio.NewDevMode(miio.DevModeConfig{Addr: *devmodeAddr})
		if err != nil {
			return err
		}
		defer devmode.Close()
		pump, err = bridge.NewEventPump(h.Env(), devmode)
		if err != nil {
			return err
		}
		fmt.Printf("devmode event channel on %s\n", devmode.Addr())
	}

	// Automation platform with the IDS interceptor.
	engine := automation.NewEngine(registry, h.Execute)
	engine.SetInterceptor(framework.Interceptor())
	if *rulesPath != "" {
		f, err := os.Open(*rulesPath)
		if err != nil {
			return err
		}
		n, err := automation.LoadRules(f, engine)
		_ = f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("loaded %d automation rules from %s\n", n, *rulesPath)
	} else {
		rules := []struct{ name, text string }{
			{"fire vent", `WHEN smoke == TRUE THEN window.open @ window-1`},
			{"gas vent", `WHEN combustible_gas == TRUE THEN window.open @ window-1`},
			{"evening lights", `WHEN occupancy == TRUE AND hour_of_day >= 18 THEN light.on @ light-1`},
			{"cool when hot", `WHEN temperature_in > 28 AND occupancy == TRUE THEN aircon.set_cool @ aircon-1`},
			{"morning curtains", `WHEN hour_of_day >= 7 AND hour_of_day < 8 AND occupancy == TRUE THEN curtain.open @ curtain-1`},
		}
		for _, r := range rules {
			if err := engine.AddRuleText(r.name, r.text); err != nil {
				return err
			}
		}
	}
	warner := core.NewCameraWarner()

	// Simulated run.
	steps := int(*hours * float64(time.Hour) / float64(*step))
	attackSteps := int(*attackEvery / *step)
	fmt.Printf("\nsimulating %v hours (%d steps of %v)\n\n", *hours, steps, *step)
	var blocked, allowed int
	var degradedSteps, staleServes, contextOutages int
	for i := 0; i < steps; i++ {
		h.Env().Step(*step)
		if store != nil {
			// Event delivery: the simulator pushes its post-step state and the
			// SmartThings adapter re-polls the bridge, each publishing a new
			// epoch for the collector's pointer-read hot path.
			if err := store.Push("sim", h.Env().Snapshot()); err != nil {
				return err
			}
			pctx, pcancel := context.WithTimeout(context.Background(), time.Second)
			_, perr := stPoller.Poll(pctx)
			pcancel()
			if perr != nil {
				return fmt.Errorf("smartthings poll-to-push: %w", perr)
			}
		}
		// Refresh the merged sensor context through the resilient collector —
		// the same collect a live cloud command would trigger — so the retry,
		// breaker and staleness machinery (and the health registry) run hot
		// for the whole simulation.
		cctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_, prov, cerr := collector.CollectDetailed(cctx)
		cancel()
		switch {
		case cerr != nil:
			contextOutages++
		case prov.Degraded():
			degradedSteps++
		}
		for _, s := range prov {
			if s.State == core.SourceStale {
				staleServes++
			}
		}
		if attackSteps > 0 && i > 0 && i%attackSteps == 0 {
			injectSpoof(h)
			fmt.Printf("%s  ATTACK injected: spoofed smoke sensor (clean air, empty home)\n",
				h.Env().Now().Format("Jan 2 15:04"))
		}
		snap := h.Env().Snapshot()
		if pump != nil {
			if _, err := pump.Tick(); err != nil {
				return err
			}
		}
		for _, ev := range engine.Evaluate(snap) {
			switch {
			case ev.Err != "":
				fmt.Printf("%s  rule %q error: %s\n", snap.At.Format("Jan 2 15:04"), ev.Rule, ev.Err)
			case ev.Allowed:
				allowed++
				fmt.Printf("%s  rule %q: %s @ %s ALLOWED (%s)\n",
					snap.At.Format("Jan 2 15:04"), ev.Rule, ev.Op, ev.DeviceID, ev.Reason)
			default:
				blocked++
				fmt.Printf("%s  rule %q: %s @ %s BLOCKED (%s)\n",
					snap.At.Format("Jan 2 15:04"), ev.Rule, ev.Op, ev.DeviceID, ev.Reason)
			}
		}
		for _, w := range warner.Observe(snap) {
			fmt.Printf("%s  camera warning: %s\n", snap.At.Format("Jan 2 15:04"), w)
		}
	}
	fmt.Printf("\nrun complete: %d automation firings allowed, %d blocked by the IDS\n", allowed, blocked)
	fmt.Printf("camera warnings by trigger: %v\n", warner.Stats())
	fmt.Printf("sensor context: %d/%d collects degraded (%d stale fallbacks, %d full outages)\n",
		degradedSteps, steps, staleServes, contextOutages)
	if auxChaos != nil {
		fmt.Printf("aux feed: %d poll attempts across %d collects — the surplus is faults absorbed by retry\n",
			auxChaos.Calls(), steps)
		fmt.Println("source health at shutdown:")
		for _, row := range health.Snapshot() {
			role := "optional"
			if row.Required {
				role = "required"
			}
			line := fmt.Sprintf("  %-4s %-8s state=%-8s", row.Name, role, row.State)
			if row.Breaker != "" {
				line += " breaker=" + row.Breaker
			}
			if row.LastError != "" {
				line += " last_error=" + row.LastError
			}
			fmt.Println(line)
		}
		if health.Healthy() {
			fmt.Println("  overall: healthy")
		} else {
			fmt.Println("  overall: DEGRADED — sensitive instructions fail closed")
		}
	}
	if store != nil {
		fmt.Printf("epoch store: %d epochs published across %d steps (2 sources per step)\n",
			store.View().Epoch, steps)
	}
	if devmode != nil {
		fmt.Printf("devmode subscribers at shutdown: %d\n", devmode.Subscribers())
	}
	fmt.Printf("audit trace: %d decisions recorded (%v)\n",
		audit.Len(), audit.CountByOutcome(trace.Query{Kind: trace.KindDecision}))
	if *auditPath != "" {
		f, err := os.Create(*auditPath)
		if err != nil {
			return err
		}
		if err := audit.Export(f, trace.Query{}); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("audit trace written to %s\n", *auditPath)
	}
	if dropped := audit.Dropped(); dropped > 0 {
		fmt.Printf("audit trace dropped %d oldest events (ring capacity reached)\n", dropped)
	}
	if *dumpMetrics {
		fmt.Println("\nfinal metrics exposition:")
		if err := metrics.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// injectSpoof forges the smoke boolean with every correlate inconsistent —
// the paper's §III-A attack.
func injectSpoof(h *home.Home) {
	spoof := sensor.NewSnapshot(h.Env().Now())
	spoof.Set(sensor.FeatSmoke, sensor.Bool(true))
	spoof.Set(sensor.FeatGas, sensor.Bool(false))
	spoof.Set(sensor.FeatAirQuality, sensor.Number(30))
	spoof.Set(sensor.FeatMotion, sensor.Bool(false))
	spoof.Set(sensor.FeatOccupancy, sensor.Bool(false))
	spoof.Set(sensor.FeatVoiceCmd, sensor.Bool(false))
	spoof.Set(sensor.FeatDoorLock, sensor.Label(sensor.LockUnlocked))
	h.Env().Apply(spoof)
}
