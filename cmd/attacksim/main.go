// Command attacksim runs a mixed attack campaign against a trained IDS
// deployment: six attack classes (one per evaluated device model), each
// staged in the home simulator and fired as a sensitive instruction,
// interleaved with legitimate commands from legal scenes.
//
// Usage:
//
//	attacksim [-rounds 100] [-seed 2021]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"iotsid/internal/eval"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attacksim:", err)
		os.Exit(1)
	}
}

func run() error {
	rounds := flag.Int("rounds", 100, "campaign rounds (each fires every attack class once)")
	seed := flag.Int64("seed", 0, "override the evaluation seed (0 = defaults)")
	flag.Parse()

	cfg := eval.DefaultConfig()
	if *seed != 0 {
		cfg.Seed = *seed
	}
	fmt.Println("training the IDS (survey + corpus + six models)...")
	s, err := eval.NewSuite(cfg)
	if err != nil {
		return err
	}
	out, err := s.RenderCampaign(context.Background(), *rounds)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Println(out)
	fmt.Println("note: tv_scare sits below the questionnaire's 50% high-threat bar")
	fmt.Println("(Table III), so the sensitive-command detector never escalates it —")
	fmt.Println("that row measures the framework's scope boundary, not a model miss.")
	return nil
}
