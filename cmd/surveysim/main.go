// Command surveysim runs the 340-user questionnaire simulation and prints
// Table III and the Fig 4 aggregates.
//
// Usage:
//
//	surveysim [-n 340] [-mode quota|sample] [-seed N]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"iotsid/internal/instr"
	"iotsid/internal/survey"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "surveysim:", err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", 340, "population size")
	mode := flag.String("mode", "quota", "quota (exact Table III) or sample (stochastic)")
	seed := flag.Int64("seed", 2021, "rng seed")
	flag.Parse()

	var m survey.Mode
	switch *mode {
	case "quota":
		m = survey.ModeQuota
	case "sample":
		m = survey.ModeSample
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	pop, err := survey.Simulate(survey.DefaultProfile(), *n, m, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	res, err := survey.Aggregate(pop)
	if err != nil {
		return err
	}
	fmt.Printf("questionnaire: %d users, %s mode\n\n", res.N, *mode)
	fmt.Printf("%-28s %8s %8s %8s  sensitive\n", "Equipment category", "High", "Low", "None")
	for _, c := range instr.Categories() {
		sh := res.Control[c]
		mark := ""
		if res.IsSensitive(c) {
			mark = "yes"
		}
		fmt.Printf("%-28s %7.2f%% %7.2f%% %7.2f%%  %s\n", c.Title(), sh.High, sh.Low, sh.None, mark)
	}
	fmt.Printf("\ncontrol rated above status threat: %.2f%% (paper: 85.29%%)\n", res.ControlWorsePct)
	fmt.Printf("device list coverage:              %.2f%% (paper: 91.18%%)\n", res.CoveredPct)
	fmt.Printf("sensitive categories: %v\n", res.SensitiveCategories())
	return nil
}
