// Command iotlint runs iotsid's repo-specific static analyzers (DESIGN
// §10) over go package patterns and reports invariant violations:
//
//	go run ./cmd/iotlint ./...
//
// Exit status: 0 clean, 1 findings, 2 operational error. Output is sorted
// by file/line/column/analyzer and byte-identical across runs, so both
// the text and -json forms diff cleanly in CI.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"iotsid/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable driver body.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("iotlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	dir := fs.String("dir", "", "directory to resolve package patterns from (default current)")
	list := fs.Bool("analyzers", false, "list the analyzer suite and exit")
	unusedAllows := fs.Bool("unused-allows", false, "also fail on //iot:allow comments that suppress nothing")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stderr, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	res, err := analysis.Run(analysis.Config{
		Dir:       *dir,
		Patterns:  fs.Args(),
		Allowlist: analysis.DefaultAllowlist(),
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	diags := res.Diagnostics
	if *unusedAllows {
		// The audit mode treats a stale suppression as a finding in its
		// own right: an //iot:allow no analyzer matches is either dead
		// documentation or a typo hiding a real hole.
		diags = append(append([]analysis.Diagnostic(nil), diags...), res.UnusedAllows...)
		analysis.SortDiagnostics(diags)
	}
	if *jsonOut {
		err = analysis.WriteJSON(stdout, diags)
	} else {
		err = analysis.WriteText(stdout, diags)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "iotlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
