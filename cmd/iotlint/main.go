// Command iotlint runs iotsid's repo-specific static analyzers (DESIGN
// §10) over go package patterns and reports invariant violations:
//
//	go run ./cmd/iotlint ./...
//
// Exit status: 0 clean, 1 findings, 2 operational error. Output is sorted
// by file/line/column/analyzer and byte-identical across runs, so both
// the text and -json forms diff cleanly in CI.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"iotsid/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable driver body.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("iotlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	dir := fs.String("dir", "", "directory to resolve package patterns from (default current)")
	list := fs.Bool("analyzers", false, "list the analyzer suite and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stderr, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	res, err := analysis.Run(analysis.Config{
		Dir:       *dir,
		Patterns:  fs.Args(),
		Allowlist: analysis.DefaultAllowlist(),
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *jsonOut {
		err = analysis.WriteJSON(stdout, res.Diagnostics)
	} else {
		err = analysis.WriteText(stdout, res.Diagnostics)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(res.Diagnostics) > 0 {
		fmt.Fprintf(stderr, "iotlint: %d finding(s)\n", len(res.Diagnostics))
		return 1
	}
	return 0
}
