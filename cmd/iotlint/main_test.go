package main

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"
)

const (
	fixtureDir = "../../internal/analysis/testdata/fixturemod"
	goldenPath = "../../internal/analysis/testdata/fixture.golden.json"
)

// update rewrites the golden file from the current driver output:
//
//	go test ./cmd/iotlint/ -run Golden -update
var update = flag.Bool("update", false, "rewrite the fixture golden JSON")

// TestDriverJSONGolden: findings over the fixture module exit 1 and the
// -json rendering is byte-identical to the committed golden file and
// across repeated runs.
func TestDriverJSONGolden(t *testing.T) {
	var out1, out2, errb bytes.Buffer
	if code := run([]string{"-dir", fixtureDir, "-json", "./..."}, &out1, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	if *update {
		if err := os.WriteFile(goldenPath, out1.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.Bytes(), golden) {
		t.Errorf("JSON drifted from golden:\n%s", out1.String())
	}
	if code := run([]string{"-dir", fixtureDir, "-json", "./..."}, &out2, &errb); code != 1 {
		t.Fatalf("second run exit = %d, want 1", code)
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Error("JSON output not byte-stable across runs")
	}
}

// TestDriverTextSorted: the human rendering is sorted by file/line and
// every seeded analyzer appears the expected number of times (hotalloc
// seeds two findings — a fmt call and a closure).
func TestDriverTextSorted(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", fixtureDir, "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("want 10 findings, got %d:\n%s", len(lines), out.String())
	}
	// The (file, line, col) ordering contract — numeric on line/col, so a
	// plain lexicographic sort of the rendered lines would get
	// hot.go:9 vs hot.go:15 wrong.
	want := []string{
		"internal/dataset/gen.go:7:38: nodeterm: time.Now in deterministic package fixture/internal/dataset: inject a clock instead",
		"internal/flow/flow.go:31:9: hotcall: hot path Lookup calls flow.buildIndex: not hotpath-clean (make allocates)",
		"internal/flow/flow.go:41:10: failclosed: degraded path in fail-closed Gate may return an allow decision (value is not provably deny)",
		"internal/flow/flow.go:55:2: cowpub: write to c after it was published via atomic.Pointer in Publish (mutate before Store)",
		"internal/flow/flow.go:61:22: metricreg: metric name \"fixture_requests\" does not match the iotsid_<subsystem>_<what> grammar (DESIGN §9)",
		"internal/hot/hot.go:9:36: hotalloc: fmt.Sprintf allocates in hot path Render",
		"internal/hot/hot.go:15:9: hotalloc: closure allocates in hot path Sum",
		"internal/svc/svc.go:18:20: sleepban: raw time.Sleep in fixture/internal/svc: use the resilience layer's injectable sleep",
		"internal/svc/svc.go:24:2: errcheck: unchecked error from touch: handle it or assign to _ deliberately",
		"internal/svc/svc.go:28:46: ctxrule: context.Background in library code: accept a ctx from the caller",
	}
	for i, l := range lines {
		if l != want[i] {
			t.Errorf("finding %d:\n got %s\nwant %s", i, l, want[i])
		}
	}
	for _, a := range []string{"nodeterm", "sleepban", "ctxrule", "errcheck", "hotcall", "failclosed", "cowpub", "metricreg"} {
		if n := strings.Count(out.String(), " "+a+": "); n != 1 {
			t.Errorf("analyzer %s: want exactly 1 finding in text output, got %d", a, n)
		}
	}
	if n := strings.Count(out.String(), " hotalloc: "); n != 2 {
		t.Errorf("analyzer hotalloc: want exactly 2 findings in text output, got %d", n)
	}
	if !strings.Contains(errb.String(), "10 finding(s)") {
		t.Errorf("stderr missing finding count: %s", errb.String())
	}
}

// TestDriverUnusedAllows: the audit mode adds the stale //iot:allow in
// svc.go as an eleventh finding; the default mode leaves it out.
func TestDriverUnusedAllows(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", fixtureDir, "-unused-allows", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n")
	if len(lines) != 11 {
		t.Fatalf("want 11 findings with -unused-allows, got %d:\n%s", len(lines), out.String())
	}
	var stale string
	for _, l := range lines {
		if strings.Contains(l, "unused //iot:allow") {
			stale = l
		}
	}
	wantStale := "internal/svc/svc.go:39:2: iotlint: unused //iot:allow sleepban: no sleepban finding on this line"
	if stale != wantStale {
		t.Errorf("stale-allow finding:\n got %s\nwant %s", stale, wantStale)
	}
	if !strings.Contains(errb.String(), "11 finding(s)") {
		t.Errorf("stderr missing finding count: %s", errb.String())
	}
}

// TestDriverCleanTree: a pattern with no findings exits 0 and prints
// nothing.
func TestDriverCleanTree(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", fixtureDir, "./cmd/..."}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run must print nothing, got %q", out.String())
	}
}

// TestDriverOperationalError: an unresolvable pattern is exit 2, distinct
// from findings.
func TestDriverOperationalError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", fixtureDir, "./no-such-dir/..."}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if errb.Len() == 0 {
		t.Error("operational error must explain itself on stderr")
	}
}

func TestDriverAnalyzerList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-analyzers"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, a := range []string{"nodeterm", "hotalloc", "sleepban", "ctxrule", "errcheck", "hotcall", "failclosed", "cowpub", "metricreg"} {
		if !strings.Contains(errb.String(), a) {
			t.Errorf("analyzer listing missing %s", a)
		}
	}
}

func TestDriverBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
