#!/bin/sh
# verify.sh — the tier-1 gate plus static analysis and the race detector.
# The decision log, snapshot cache and the par worker pool are concurrent
# hot-path code; -race is not optional here.
set -eux

go build ./...
go vet ./...
go test -race ./...

# Resilience gate: the retry/breaker/health machinery, the degraded-mode
# collector, the chaos harness and the fault-injection campaign are
# timing-sensitive concurrent code — run them focused under the race
# detector (also covered by the blanket -race run above; this keeps a
# fast, named signal when the resilience layer regresses).
go test -race -count=1 ./internal/resilience/
go test -race -count=1 -run 'MultiCollector|Chaos|FailsClosed|CachedCollector' ./internal/core/
go test -race -count=1 -run 'Fault' ./internal/eval/
go test -race -count=1 -run 'Call|Retry|Timeout|Permanent|Context' ./internal/miio/ ./internal/smartthings/
go test -race -count=1 -run 'Healthz|RetryAfter|ContextTimeout' ./internal/cloud/

# Deterministic-parallelism gate: the serial-vs-parallel golden-equality
# tests (Train, BuildAll, CrossValidate, forest.Fit, suite/campaign, the
# fault campaign, seeded retry jitter) must pass both under the default
# scheduler and pinned to a single P. If the GOMAXPROCS=1 run and the
# default run disagree, one of them fails these equality tests and the
# build breaks here. The 'Determinism' pattern matches the resilience
# layer's TestScheduleDeterminism, TestChaosPlanDeterminism and
# TestFaultCampaignDeterminism as well.
go test -count=1 -run 'Determinism|Memoized' ./internal/...
GOMAXPROCS=1 go test -count=1 -run 'Determinism|Memoized' ./internal/...
