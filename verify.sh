#!/bin/sh
# verify.sh — the tier-1 gate plus static analysis and the race detector.
# The decision log, snapshot cache and the par worker pool are concurrent
# hot-path code; -race is not optional here.
set -eux

go build ./...
go vet ./...
go test -race ./...

# Deterministic-parallelism gate: the serial-vs-parallel golden-equality
# tests (Train, BuildAll, CrossValidate, forest.Fit, suite/campaign) must
# pass both under the default scheduler and pinned to a single P. If the
# GOMAXPROCS=1 run and the default run disagree, one of them fails these
# equality tests and the build breaks here.
go test -count=1 -run 'Determinism|Memoized' ./internal/...
GOMAXPROCS=1 go test -count=1 -run 'Determinism|Memoized' ./internal/...
