#!/bin/sh
# verify.sh — the tier-1 gate plus static analysis and the race detector.
# The decision log, snapshot cache and the par worker pool are concurrent
# hot-path code; -race is not optional here.
set -eux

go build ./...
go vet ./...

# Formatting gate: the whole tree (fixtures included) must be gofmt-clean.
fmt_drift="$(gofmt -l .)"
if [ -n "$fmt_drift" ]; then
    printf 'gofmt gate: files need reformatting:\n%s\n' "$fmt_drift" >&2
    exit 1
fi

# Dependency-hygiene gate: the module is stdlib-only and its require block
# is empty by policy — any tidy drift means a dependency (or stale
# directive) snuck into go.mod.
if ! go mod tidy -diff; then
    echo 'go mod tidy gate: go.mod is not tidy — run "go mod tidy" and inspect the diff' >&2
    exit 1
fi

# Static-analysis gate: iotlint (cmd/iotlint, DESIGN.md sections 10 and
# 15) machine-enforces the repo invariants — no wall clock or global rand
# in deterministic packages, no allocation in or reachable from
# //iot:hotpath functions, fail-closed flow discipline in //iot:failclosed
# functions, copy-on-write around atomic.Pointer publication, metric-name
# grammar, no raw time.Sleep in internal/, context.Context discipline, no
# silently dropped errors. Findings exit non-zero; suppress only with
# "//iot:allow <analyzer> <reason>". -unused-allows keeps the suppression
# inventory honest: a marker no finding matches fails the gate too.
if ! go run ./cmd/iotlint -unused-allows ./...; then
    echo 'iotlint gate: invariant violation — fix it or add "//iot:allow <analyzer> <reason>" (stale allows fail too)' >&2
    exit 1
fi

# Analyzer-suite gate: the linter is load-bearing for every other gate, so
# its own fixtures (// want harness, fixture module, golden JSON, CFG and
# call-graph plumbing) run focused and uncached. Refresh the golden after
# intentional output changes with:
#   go test ./cmd/iotlint/ -run Golden -update
go test -count=1 ./internal/analysis/ ./cmd/iotlint/

go test -race ./...

# Resilience gate: the retry/breaker/health machinery, the degraded-mode
# collector, the chaos harness and the fault-injection campaign are
# timing-sensitive concurrent code — run them focused under the race
# detector (also covered by the blanket -race run above; this keeps a
# fast, named signal when the resilience layer regresses).
go test -race -count=1 ./internal/resilience/
go test -race -count=1 -run 'MultiCollector|Chaos|FailsClosed|CachedCollector' ./internal/core/
go test -race -count=1 -run 'Fault' ./internal/eval/
go test -race -count=1 -run 'Call|Retry|Timeout|Permanent|Context' ./internal/miio/ ./internal/smartthings/
go test -race -count=1 -run 'Healthz|RetryAfter|ContextTimeout' ./internal/cloud/

# Event-driven collection gate: the epoch store's writers and the
# pointer-read hot path are concurrent by construction — run the push-path
# suites focused under the race detector. The polled-vs-epoch decision
# equivalence and its worker-count independence run here too (and
# TestEpochCampaignDeterminism is picked up again by the Determinism gate
# below, serial and pinned to one P).
go test -race -count=1 ./internal/epoch/
go test -race -count=1 -run 'Epoch' ./internal/core/ ./internal/cloud/
go test -race -count=1 -run 'EventPump|DevModeFeed|STPoller' ./internal/bridge/
go test -count=1 -run 'EpochCampaign' ./internal/eval/

# Observability gate: the metrics registry is lock-free hot-path code wired
# into every subsystem — run its suite focused under the race detector
# (concurrent-hammer + golden-exposition tests), then smoke the fuzz targets
# that guard the Prometheus name/label encoding against hostile input.
go test -race -count=1 ./internal/obs/
go test -count=1 -run '^$' -fuzz '^FuzzMetricName$' -fuzztime 10s ./internal/obs/
go test -count=1 -run '^$' -fuzz '^FuzzLabelEscape$' -fuzztime 10s ./internal/obs/

# Fleet gate: the multi-tenant layer is sharded concurrent state shared by
# every tenant — run its whole suite (concurrent push/authorize hammer,
# shard-rebalance and worker-count determinism, COW registry swaps) and the
# cloud fleet endpoints focused under the race detector, then smoke the
# closed-loop load generator end to end: a small seeded run must complete
# and print its decision-stream digest.
go test -race -count=1 ./internal/fleet/
go test -race -count=1 -run 'Fleet' ./internal/cloud/
fleet_smoke="$(go run ./cmd/fleetload -homes 200 -steps 2 -workers 2 -batch 64 -seed 1)"
echo "$fleet_smoke" | grep -q 'digest' || { echo 'fleetload smoke: no digest in output' >&2; exit 1; }

# Sensor-trust gate: the trust engine is lock-free hot-path state observed
# from every push path — run its suite (property tests included) under the
# race detector, then the trust wiring in core, fleet and cloud, then the
# spoofing campaign (replay / slow-drift / stuck-at / spike must all land
# zero unsafe allows). The fuzz smokes guard the invariant evaluator and
# the Observe scoring path against hostile snapshots; the fleetload spoof
# smoke proves the fail-closed contract end to end over HTTP (the command
# itself errors on any unsafe allow).
go test -race -count=1 ./internal/trust/
go test -race -count=1 -run 'Trust' ./internal/core/ ./internal/fleet/ ./internal/cloud/
go test -count=1 -run 'Spoof' ./internal/eval/
go test -count=1 -run '^$' -fuzz '^FuzzInvariants$' -fuzztime 10s ./internal/trust/
go test -count=1 -run '^$' -fuzz '^FuzzObserve$' -fuzztime 10s ./internal/trust/
spoof_smoke="$(go run ./cmd/fleetload -homes 200 -steps 2 -workers 2 -batch 64 -seed 1 -spoof 0.2)"
echo "$spoof_smoke" | grep -q 'unsafe allows *0' || { echo 'fleetload spoof smoke: unsafe allows not zero' >&2; exit 1; }

# Sequence gate: the temporal axis judges instruction/state history through
# a per-home tracker mutated on every decision — run its package and the
# combined-verdict wiring in core, fleet and cloud under the race detector,
# then the sequence campaign (tree-only must allow the temporal attacks,
# tree+sequence must block them all at 100% clean availability). The fuzz
# smoke hardens ObserveJudge against hostile scenes (NaN hours, zero and
# backwards timestamps, unknown models); the fleetload chain smoke proves
# the same-tick chain fails closed end to end over HTTP (the command itself
# errors on any unsafe chain allow).
go test -race -count=1 ./internal/seq/
go test -race -count=1 -run 'Seq' ./internal/core/ ./internal/fleet/ ./internal/cloud/
go test -count=1 -run 'SeqCampaign' ./internal/eval/
go test -count=1 -run '^$' -fuzz '^FuzzSequenceObserve$' -fuzztime 10s ./internal/seq/
chain_smoke="$(go run ./cmd/fleetload -homes 200 -steps 3 -workers 2 -batch 64 -seed 1 -chain 0.2)"
echo "$chain_smoke" | grep -q 'unsafe chain allows *0' || { echo 'fleetload chain smoke: unsafe chain allows not zero' >&2; exit 1; }

# Coverage gate: no package may fall below its recorded floor
# (coverage_floors.txt; internal/obs carries a hard 90% minimum). The race
# detector is off here so the allocation-count gates run too.
# POSIX sh has no pipefail, so piping go test through tee would let a
# test failure vanish behind tee's exit 0 under set -e — capture the
# test's own status explicitly and fail on it before the floor check.
cov="$(mktemp)"
cov_status=0
go test -count=1 -cover ./internal/... >"$cov" 2>&1 || cov_status=$?
cat "$cov"
if [ "$cov_status" -ne 0 ]; then
    echo "coverage gate: go test failed (exit $cov_status)" >&2
    rm -f "$cov"
    exit "$cov_status"
fi
awk 'NR==FNR { if ($1 !~ /^#/ && NF >= 2) floor[$1]=$2; next }
     $1=="ok" && $4=="coverage:" && ($2 in floor) {
       pct=$5; sub(/%/, "", pct); seen[$2]=1
       if (pct+0 < floor[$2]+0) { printf "coverage regression: %s %s%% < floor %s%%\n", $2, pct, floor[$2]; bad=1 }
     }
     END { for (p in floor) if (!(p in seen)) { printf "coverage gate: no result for %s\n", p; bad=1 } exit bad }' \
    coverage_floors.txt "$cov"
rm -f "$cov"

# Deterministic-parallelism gate: the serial-vs-parallel golden-equality
# tests (Train, BuildAll, CrossValidate, forest.Fit, suite/campaign, the
# fault campaign, seeded retry jitter) must pass both under the default
# scheduler and pinned to a single P. If the GOMAXPROCS=1 run and the
# default run disagree, one of them fails these equality tests and the
# build breaks here. The 'Determinism' pattern matches the resilience
# layer's TestScheduleDeterminism, TestChaosPlanDeterminism and
# TestFaultCampaignDeterminism as well.
go test -count=1 -run 'Determinism|Memoized' ./internal/...
GOMAXPROCS=1 go test -count=1 -run 'Determinism|Memoized' ./internal/...
