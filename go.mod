module iotsid

go 1.22
