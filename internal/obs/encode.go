package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CheckName validates a metric or label name against the Prometheus data
// model: [a-zA-Z_:][a-zA-Z0-9_:]* (colons reserved for rules, but accepted).
func CheckName(name string) error {
	if name == "" {
		return fmt.Errorf("obs: empty metric or label name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return fmt.Errorf("obs: metric name %q starts with a digit", name)
			}
		default:
			return fmt.Errorf("obs: metric name %q has invalid byte %q at %d", name, c, i)
		}
	}
	return nil
}

// SanitizeName maps an arbitrary string onto a valid metric/label name:
// every invalid byte becomes '_', a leading digit gains a '_' prefix, and
// the empty string becomes "_". SanitizeName(SanitizeName(s)) ==
// SanitizeName(s) — the fuzz target holds it to that.
func SanitizeName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(s) + 1)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the text exposition format:
// backslash, double quote and newline become \\, \" and \n. Any other byte
// (including arbitrary UTF-8) passes through untouched.
func escapeLabelValue(v string) string {
	// Fast path: nothing to escape.
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// unescapeLabelValue inverts escapeLabelValue; the fuzz target asserts the
// round trip. A trailing lone backslash or unknown escape is returned
// verbatim (the encoder never emits one).
func unescapeLabelValue(v string) string {
	if !strings.Contains(v, `\`) {
		return v
	}
	var b strings.Builder
	b.Grow(len(v))
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c != '\\' || i == len(v)-1 {
			b.WriteByte(c)
			continue
		}
		i++
		switch v[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			b.WriteByte('\\')
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline only (quotes are
// legal in help text).
func escapeHelp(h string) string {
	if !strings.ContainsAny(h, "\\\n") {
		return h
	}
	var b strings.Builder
	b.Grow(len(h) + 8)
	for i := 0; i < len(h); i++ {
		switch c := h[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// renderLabels renders `k="v",k2="v2"` with escaped values. Label order is
// the family's declaration order, so equal value vectors always render
// identically — the series key and the exposition both rely on that.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// formatFloat renders a float the way the exposition format expects:
// shortest round-trippable decimal, +Inf spelled "+Inf".
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders every family in the Prometheus text exposition format
// (version 0.0.4). The output is byte-stable for a fixed registry state:
// families sort by name, series by their rendered label string, and
// histogram buckets follow the registered bound order.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.ordered {
			switch f.typ {
			case typeCounter:
				writeSample(bw, f.name, "", s.labels, "", strconv.FormatUint(s.c.Value(), 10))
			case typeGauge:
				writeSample(bw, f.name, "", s.labels, "", strconv.FormatInt(s.g.Value(), 10))
			case typeHistogram:
				writeHistogram(bw, f.name, s)
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one `name[suffix]{labels[,extra]} value` line.
func writeSample(w *bufio.Writer, name, suffix, labels, extra, value string) {
	w.WriteString(name)
	w.WriteString(suffix)
	if labels != "" || extra != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		if labels != "" && extra != "" {
			w.WriteByte(',')
		}
		w.WriteString(extra)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

// writeHistogram emits the cumulative bucket lines plus _sum and _count.
func writeHistogram(w *bufio.Writer, name string, s *series) {
	counts, inf := s.h.BucketCounts()
	var cum uint64
	for i, c := range counts {
		cum += c
		le := `le="` + formatFloat(s.h.bounds[i]) + `"`
		writeSample(w, name, "_bucket", s.labels, le, strconv.FormatUint(cum, 10))
	}
	cum += inf
	writeSample(w, name, "_bucket", s.labels, `le="+Inf"`, strconv.FormatUint(cum, 10))
	writeSample(w, name, "_sum", s.labels, "", formatFloat(s.h.Sum()))
	// _count mirrors the +Inf bucket (not the count atomic) so a scrape
	// racing concurrent observes still renders a self-consistent histogram.
	writeSample(w, name, "_count", s.labels, "", strconv.FormatUint(cum, 10))
}
