// Package obs is the dependency-free metrics layer of the deployment: a
// registry of monotonic counters, gauges and fixed-bucket histograms,
// optionally fanned out into labeled families, with a hand-rolled
// Prometheus text exposition (encode.go) and an HTTP handler (handler.go).
//
// The design contract is the same one the PR-1 inference fast path lives
// by: registration is rare and takes a lock; *increments are lock-free and
// allocation-free*. Every series a hot path touches is pre-registered at
// construction time and held as a direct pointer — there are no map
// lookups, label hashing or interface boxing between Framework.Authorize
// and the atomic add that counts it. All increment methods are nil-receiver
// safe, so uninstrumented components pay exactly one branch.
//
// Determinism: metrics never feed back into decisions, training or merged
// snapshots, so the serial-vs-parallel golden-equality suites are
// unaffected; the text encoding itself is byte-stable (families sorted by
// name, series by label value) and histogram tests inject a fixed clock at
// the call site, keeping the exposition reproducible too.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing series. The zero value is usable
// but unregistered; nil receivers are no-ops, so components can carry
// optional counters without guarding every increment site.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//iot:hotpath
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n. Counters are monotonic; negative deltas are a programmer
// error and are ignored.
//
//iot:hotpath
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous integer value (queue depths, busy workers,
// breaker states). Nil receivers are no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
//
//iot:hotpath
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative to decrease).
//
//iot:hotpath
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Buckets are cumulative upper
// bounds in ascending order (Prometheus "le" semantics); an implicit +Inf
// bucket catches the tail. Observe is lock-free: one atomic add for the
// bucket, one for the count, and a CAS loop folding the observation into
// the float sum. Nil receivers are no-ops.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // one per bound; +Inf tracked by count-sum of bounds
	count   atomic.Uint64
	inf     atomic.Uint64
	sumBits atomic.Uint64
}

// newHistogram validates and builds a histogram over the given bounds.
func newHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			return nil, fmt.Errorf("obs: histogram bounds must be strictly ascending (bound %d: %v after %v)",
				i, bounds[i], bounds[i-1])
		}
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	return &Histogram{bounds: own, buckets: make([]atomic.Uint64, len(own))}, nil
}

// Observe records one sample.
//
//iot:hotpath
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns how many samples were observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// BucketCounts returns the per-bound counts (not cumulative) plus the +Inf
// overflow, for tests and dumps.
func (h *Histogram) BucketCounts() ([]uint64, uint64) {
	if h == nil {
		return nil, 0
	}
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out, h.inf.Load()
}

// LatencyBuckets is the shared bucket layout for request latencies, in
// seconds: 1µs to 2.5s in a 1-2.5-5 progression — wide enough to straddle
// both the ~100ns compiled-tree walk rolled up into the first bucket and a
// network collector's worst case.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5,
}

// metricType discriminates families.
type metricType int

const (
	typeCounter metricType = iota + 1
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	}
	return fmt.Sprintf("type(%d)", int(t))
}

// series is one (family, label-values) cell.
type series struct {
	labels string // pre-rendered `k="v",k2="v2"`, "" for unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	bounds  []float64 // histogram families
	series  map[string]*series
	ordered []*series // registration order; encode sorts a copy
}

// Registry is a set of metric families. Registration methods are safe for
// concurrent use and idempotent: re-registering an identical family (and
// identical label values) returns the existing series, so package-level
// instrumentation and tests can share the default registry without
// coordination. A mismatched re-registration (same name, different type,
// help, labels or buckets) is a programmer error and panics.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-wide registry — the one cmd servers expose at
// /metrics and package-level instrumentation (internal/par) registers into.
func Default() *Registry {
	defaultOnce.Do(func() { defaultReg = NewRegistry() })
	return defaultReg
}

// family fetches or creates a family, enforcing schema consistency.
// Callers hold r.mu.
func (r *Registry) familyLocked(name, help string, typ metricType, labels []string, bounds []float64) *family {
	if err := CheckName(name); err != nil {
		panic(err)
	}
	for _, l := range labels {
		if err := CheckName(l); err != nil {
			panic(fmt.Errorf("obs: family %s: bad label: %w", name, err))
		}
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name: name, help: help, typ: typ,
			labels: append([]string(nil), labels...),
			series: make(map[string]*series),
		}
		if typ == typeHistogram {
			f.bounds = append([]float64(nil), bounds...)
		}
		r.families[name] = f
		return f
	}
	if f.typ != typ || f.help != help || !equalStrings(f.labels, labels) ||
		(typ == typeHistogram && !equalFloats(f.bounds, bounds)) {
		panic(fmt.Errorf("obs: family %s re-registered with a different schema", name))
	}
	return f
}

// seriesLocked fetches or creates the cell for one label-value vector.
func (f *family) seriesLocked(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Errorf("obs: family %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := renderLabels(f.labels, values)
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labels: key}
	switch f.typ {
	case typeCounter:
		s.c = &Counter{}
	case typeGauge:
		s.g = &Gauge{}
	case typeHistogram:
		h, err := newHistogram(f.bounds)
		if err != nil {
			panic(err)
		}
		s.h = h
	}
	f.series[key] = s
	f.ordered = append(f.ordered, s)
	return s
}

// NewCounter registers (or fetches) an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.familyLocked(name, help, typeCounter, nil, nil).seriesLocked(nil).c
}

// NewGauge registers (or fetches) an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.familyLocked(name, help, typeGauge, nil, nil).seriesLocked(nil).g
}

// NewHistogram registers (or fetches) an unlabeled fixed-bucket histogram.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if _, err := newHistogram(bounds); err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.familyLocked(name, help, typeHistogram, nil, bounds).seriesLocked(nil).h
}

// CounterVec is a labeled counter family. With resolves one label-value
// vector to its counter — a registration-time operation; hot paths hold the
// returned pointer, never the vec.
type CounterVec struct {
	r *Registry
	f *family
}

// NewCounterVec registers (or fetches) a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic(fmt.Errorf("obs: counter vec %s needs at least one label", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return &CounterVec{r: r, f: r.familyLocked(name, help, typeCounter, labels, nil)}
}

// With returns the counter for one label-value vector, creating it on first
// use.
func (v *CounterVec) With(values ...string) *Counter {
	v.r.mu.Lock()
	defer v.r.mu.Unlock()
	return v.f.seriesLocked(values).c
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct {
	r *Registry
	f *family
}

// NewGaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic(fmt.Errorf("obs: gauge vec %s needs at least one label", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return &GaugeVec{r: r, f: r.familyLocked(name, help, typeGauge, labels, nil)}
}

// With returns the gauge for one label-value vector, creating it on first
// use.
func (v *GaugeVec) With(values ...string) *Gauge {
	v.r.mu.Lock()
	defer v.r.mu.Unlock()
	return v.f.seriesLocked(values).g
}

// snapshotFamilies copies the family list for encoding, sorted by name,
// each with its series sorted by rendered labels — the byte-stability
// contract of the golden test.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		cp := &family{name: f.name, help: f.help, typ: f.typ, bounds: f.bounds}
		cp.ordered = append([]*series(nil), f.ordered...)
		sort.Slice(cp.ordered, func(i, j int) bool { return cp.ordered[i].labels < cp.ordered[j].labels })
		out = append(out, cp)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
