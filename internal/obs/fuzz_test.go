package obs

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzMetricName holds SanitizeName to its contract on arbitrary input:
// the output always passes CheckName, sanitizing is idempotent, and a name
// that was already valid passes through unchanged.
func FuzzMetricName(f *testing.F) {
	for _, seed := range []string{
		"", "a", "9", "iotsid_authz_decisions_total", "bad-name", "with space",
		"üñïçødé", "trailing_", "_leading", "colon:ok", "new\nline", "quote\"inside",
		"back\\slash", "mixed-1.2.3", "\x00\xff",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		got := SanitizeName(s)
		if err := CheckName(got); err != nil {
			t.Fatalf("SanitizeName(%q) = %q, still invalid: %v", s, got, err)
		}
		if again := SanitizeName(got); again != got {
			t.Fatalf("SanitizeName not idempotent: %q → %q → %q", s, got, again)
		}
		if CheckName(s) == nil && got != s {
			t.Fatalf("SanitizeName mangled already-valid %q into %q", s, got)
		}
	})
}

// FuzzLabelEscape feeds arbitrary bytes (quotes, newlines, invalid UTF-8)
// through the exposition encoder's label escaping and asserts the escape /
// unescape round trip, that the escaped form never leaks a raw newline or
// unescaped quote (which would corrupt the line-oriented format), and that
// a registry holding the value still renders line-by-line parseable text.
func FuzzLabelEscape(f *testing.F) {
	for _, seed := range []string{
		"", "plain", `say "hi"`, "line\nbreak", `trailing\`, `\\`, `\n`,
		"üñïçødé \"mixed\"\n\\", "\x00\x01\xfe\xff", `a="b",c="d"`, "\r\t",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		esc := escapeLabelValue(s)
		if strings.ContainsRune(esc, '\n') {
			t.Fatalf("escaped %q contains a raw newline: %q", s, esc)
		}
		for i := 0; i < len(esc); i++ {
			if esc[i] == '"' && (i == 0 || esc[i-1] != '\\' || !oddBackslashRun(esc, i)) {
				t.Fatalf("escaped %q contains an unescaped quote at %d: %q", s, i, esc)
			}
		}
		if back := unescapeLabelValue(esc); back != s {
			t.Fatalf("round trip broke: %q → %q → %q", s, esc, back)
		}
		// End to end: the rendered exposition stays one-sample-per-line and
		// scrape-parseable around the hostile value.
		r := NewRegistry()
		r.NewCounterVec("fuzz_total", "h", "v").With(s).Inc()
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
		if len(lines) != 3 { // HELP, TYPE, sample
			t.Fatalf("value %q broke line framing: %q", s, buf.String())
		}
		sample := lines[2]
		if !strings.HasPrefix(sample, `fuzz_total{v="`) || !strings.HasSuffix(sample, `"} 1`) {
			t.Fatalf("sample line malformed for %q: %q", s, sample)
		}
		inner := strings.TrimSuffix(strings.TrimPrefix(sample, `fuzz_total{v="`), `"} 1`)
		if got := unescapeLabelValue(inner); got != s {
			t.Fatalf("rendered label does not round trip: %q → %q", s, got)
		}
	})
}

// oddBackslashRun reports whether the backslash run ending just before
// index i has odd length — i.e. the byte at i is escaped.
func oddBackslashRun(s string, i int) bool {
	n := 0
	for j := i - 1; j >= 0 && s[j] == '\\'; j-- {
		n++
	}
	return n%2 == 1
}
