package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestGoldenExposition is the byte-stability contract: a fixed registry
// state must render this exact exposition, independent of registration
// order tricks (families sort by name, series by rendered labels).
func TestGoldenExposition(t *testing.T) {
	r := NewRegistry()
	// Register deliberately out of lexical order.
	g := r.NewGauge("test_pool_busy", "Busy workers.")
	g.Set(3)
	v := r.NewCounterVec("test_decisions_total", "Decisions by outcome.", "outcome", "sensitive")
	v.With("reject", "true").Add(2)
	v.With("allow", "false").Add(40)
	v.With("allow", "true").Inc()
	h := r.NewHistogram("test_latency_seconds", "Latency.", []float64{0.001, 0.01, 0.1})
	for _, s := range []float64{0.0005, 0.002, 0.002, 0.05, 7} {
		h.Observe(s)
	}
	esc := r.NewCounterVec("test_escapes_total", "Escaping: backslash \\ and\nnewline.", "path")
	esc.With("say \"hi\"\nback\\slash").Inc()

	const want = `# HELP test_decisions_total Decisions by outcome.
# TYPE test_decisions_total counter
test_decisions_total{outcome="allow",sensitive="false"} 40
test_decisions_total{outcome="allow",sensitive="true"} 1
test_decisions_total{outcome="reject",sensitive="true"} 2
# HELP test_escapes_total Escaping: backslash \\ and\nnewline.
# TYPE test_escapes_total counter
test_escapes_total{path="say \"hi\"\nback\\slash"} 1
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.001"} 1
test_latency_seconds_bucket{le="0.01"} 3
test_latency_seconds_bucket{le="0.1"} 4
test_latency_seconds_bucket{le="+Inf"} 5
test_latency_seconds_sum 7.0545
test_latency_seconds_count 5
# HELP test_pool_busy Busy workers.
# TYPE test_pool_busy gauge
# TYPE test_unhelped_total counter
test_unhelped_total 0
`
	r.NewCounter("test_unhelped_total", "") // no HELP line
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	// The gauge line sits between its TYPE line and the next family.
	wantFull := strings.Replace(want, "# TYPE test_pool_busy gauge\n",
		"# TYPE test_pool_busy gauge\ntest_pool_busy 3\n", 1)
	if got != wantFull {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, wantFull)
	}
	// Render twice: byte-identical.
	var buf2 bytes.Buffer
	if err := r.WriteText(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("two renders of the same state differ")
	}
}

// TestIdempotentRegistration proves the get-or-create contract: identical
// re-registration returns the same cells, so shared registries need no
// coordination.
func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("x_total", "help")
	b := r.NewCounter("x_total", "help")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	v1 := r.NewCounterVec("y_total", "h", "l")
	if v1.With("a") != v1.With("a") {
		t.Fatal("With returned a different cell for the same labels")
	}
	g1, g2 := r.NewGauge("g", ""), r.NewGauge("g", "")
	if g1 != g2 {
		t.Fatal("gauge re-registration returned a different cell")
	}
	h1 := r.NewHistogram("h", "", []float64{1, 2})
	h2 := r.NewHistogram("h", "", []float64{1, 2})
	if h1 != h2 {
		t.Fatal("histogram re-registration returned a different cell")
	}
	gv := r.NewGaugeVec("gv", "", "k")
	if gv.With("v") != gv.With("v") {
		t.Fatal("gauge vec With returned a different cell")
	}
}

// TestMismatchedRegistrationPanics: same name, different schema is a
// programmer error.
func TestMismatchedRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"type", func(r *Registry) { r.NewCounter("m", "h"); r.NewGauge("m", "h") }},
		{"help", func(r *Registry) { r.NewCounter("m", "h1"); r.NewCounter("m", "h2") }},
		{"labels", func(r *Registry) {
			r.NewCounterVec("m", "h", "a")
			r.NewCounterVec("m", "h", "b")
		}},
		{"buckets", func(r *Registry) {
			r.NewHistogram("m", "h", []float64{1})
			r.NewHistogram("m", "h", []float64{2})
		}},
		{"arity", func(r *Registry) { r.NewCounterVec("m", "h", "a").With("x", "y") }},
		{"bad name", func(r *Registry) { r.NewCounter("9bad", "h") }},
		{"bad label", func(r *Registry) { r.NewCounterVec("m", "h", "bad-label") }},
		{"empty name", func(r *Registry) { r.NewCounter("", "h") }},
		{"no labels", func(r *Registry) { r.NewCounterVec("m", "h") }},
		{"no gauge labels", func(r *Registry) { r.NewGaugeVec("m", "h") }},
		{"no bounds", func(r *Registry) { r.NewHistogram("m", "h", nil) }},
		{"descending bounds", func(r *Registry) { r.NewHistogram("m", "h", []float64{2, 1}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

// TestNilSafety: every increment/read method must be a no-op on a nil
// receiver — that is the entire wiring contract for optional
// instrumentation.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(1)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram state")
	}
	if b, inf := h.BucketCounts(); b != nil || inf != 0 {
		t.Fatal("nil histogram buckets")
	}
}

// TestConcurrentHammer drives counters, gauges and a histogram from 8
// goroutines; under -race this is the data-race gate, and the final state
// must be exact — atomics lose nothing.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("hammer_total", "")
	v := r.NewCounterVec("hammer_labeled_total", "", "worker")
	g := r.NewGauge("hammer_gauge", "")
	h := r.NewHistogram("hammer_hist", "", []float64{10, 100, 1000})

	const (
		workers = 8
		perW    = 5000
	)
	cells := make([]*Counter, workers)
	for w := 0; w < workers; w++ {
		cells[w] = v.With(string(rune('a' + w)))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				c.Inc()
				cells[w].Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i % 2000))
				if i%64 == 0 {
					// Concurrent scrapes must never tear.
					var buf bytes.Buffer
					if err := r.WriteText(&buf); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perW {
		t.Fatalf("counter %d, want %d", got, workers*perW)
	}
	for w := 0; w < workers; w++ {
		if got := cells[w].Value(); got != perW {
			t.Fatalf("cell %d: %d, want %d", w, got, perW)
		}
	}
	if g.Value() != 0 {
		t.Fatalf("gauge %d, want 0", g.Value())
	}
	if got := h.Count(); got != workers*perW {
		t.Fatalf("histogram count %d, want %d", got, workers*perW)
	}
	buckets, inf := h.BucketCounts()
	var total uint64
	for _, b := range buckets {
		total += b
	}
	if total+inf != workers*perW {
		t.Fatalf("bucket total %d, want %d", total+inf, workers*perW)
	}
	// Sum of i%2000 over perW values, times workers — float addition of
	// integers this small is exact in any order.
	var per float64
	for i := 0; i < perW; i++ {
		per += float64(i % 2000)
	}
	if got := h.Sum(); got != per*workers {
		t.Fatalf("histogram sum %v, want %v", got, per*workers)
	}
}

// TestDefaultRegistryIsSingleton: Default always hands back the same
// registry, so package-level instrumentation and servers agree.
func TestDefaultRegistryIsSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default returned different registries")
	}
}

// TestHistogramBoundsCopied: the caller's bounds slice is not aliased.
func TestHistogramBoundsCopied(t *testing.T) {
	bounds := []float64{1, 2, 3}
	r := NewRegistry()
	h := r.NewHistogram("copied", "", bounds)
	bounds[0] = 99
	h.Observe(1.5)
	counts, _ := h.BucketCounts()
	if counts[1] != 1 {
		t.Fatalf("observation landed in %v; bounds were aliased", counts)
	}
}

// TestAllocFreeIncrements is the in-process allocation gate for the hot
// increment paths — the reason the registry exists at all.
func TestAllocFreeIncrements(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	r := NewRegistry()
	c := r.NewCounter("alloc_total", "")
	g := r.NewGauge("alloc_gauge", "")
	h := r.NewHistogram("alloc_hist", "", LatencyBuckets)
	if a := testing.AllocsPerRun(500, func() { c.Inc(); c.Add(3) }); a != 0 {
		t.Errorf("Counter.Inc/Add allocates %.1f objects/op, want 0", a)
	}
	if a := testing.AllocsPerRun(500, func() { g.Set(7); g.Add(-1) }); a != 0 {
		t.Errorf("Gauge.Set/Add allocates %.1f objects/op, want 0", a)
	}
	if a := testing.AllocsPerRun(500, func() { h.Observe(0.0004) }); a != 0 {
		t.Errorf("Histogram.Observe allocates %.1f objects/op, want 0", a)
	}
}
