package obs

import "net/http"

// contentType is the text exposition content type scrapers negotiate.
const contentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the registry in the Prometheus text exposition format —
// mount it at GET /metrics. The handler is unauthenticated by convention
// (scrapers and load balancers expect that); nothing security-sensitive is
// exposed beyond aggregate counts.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", contentType)
		if req.Method == http.MethodHead {
			return
		}
		_ = r.WriteText(w)
	})
}
