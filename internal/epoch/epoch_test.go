package epoch

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"iotsid/internal/obs"
	"iotsid/internal/sensor"
)

// testClock is a manually advanced clock for deterministic age arithmetic.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTestClock() *testClock {
	return &testClock{now: time.Date(2021, 6, 1, 12, 0, 0, 0, time.UTC)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func delta(at time.Time, f sensor.Feature, v sensor.Value) sensor.Snapshot {
	d := sensor.NewSnapshot(at)
	d.Set(f, v)
	return d
}

func TestNewStoreValidation(t *testing.T) {
	cases := []struct {
		name    string
		sources []SourceConfig
	}{
		{"no sources", nil},
		{"empty name", []SourceConfig{{Name: ""}}},
		{"duplicate name", []SourceConfig{{Name: "sim"}, {Name: "sim"}}},
		{"staleness below fresh", []SourceConfig{{Name: "sim", FreshFor: time.Minute, Staleness: time.Second}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewStore(Config{}, tc.sources...); err == nil {
				t.Fatalf("NewStore(%v) accepted invalid config", tc.sources)
			}
		})
	}
}

func TestNewStoreDefaults(t *testing.T) {
	st, err := NewStore(Config{}, SourceConfig{Name: "sim"})
	if err != nil {
		t.Fatal(err)
	}
	srcs := st.Sources()
	if srcs[0].FreshFor != time.Minute {
		t.Fatalf("zero FreshFor not defaulted: got %v", srcs[0].FreshFor)
	}
	v := st.View()
	if v.Epoch != 0 || len(v.Snap.Values) != 0 || len(v.PushedAt) != 1 || !v.PushedAt[0].IsZero() {
		t.Fatalf("initial view not the empty epoch-0 view: %+v", v)
	}
}

func TestPushUnknownSource(t *testing.T) {
	st, err := NewStore(Config{}, SourceConfig{Name: "sim"})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Push("ghost", sensor.Snapshot{}); err == nil {
		t.Fatal("push from undeclared source accepted")
	}
}

// TestPushCopyOnWrite checks the core invariant: a publish never mutates a
// previously handed-out view.
func TestPushCopyOnWrite(t *testing.T) {
	clk := newTestClock()
	st, err := NewStore(Config{Now: clk.Now},
		SourceConfig{Name: "miio"}, SourceConfig{Name: "st"})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Push("miio", delta(clk.Now(), sensor.FeatMotion, sensor.Bool(true))); err != nil {
		t.Fatal(err)
	}
	v1 := st.View()
	if v1.Epoch != 1 {
		t.Fatalf("epoch after first push = %d, want 1", v1.Epoch)
	}
	clk.Advance(time.Second)
	if err := st.Push("st", delta(clk.Now(), sensor.FeatMotion, sensor.Bool(false))); err != nil {
		t.Fatal(err)
	}
	v2 := st.View()
	if v2.Epoch != 2 {
		t.Fatalf("epoch after second push = %d, want 2", v2.Epoch)
	}
	// The old view must still say motion=true; the new one false.
	if got, _ := v1.Snap.Get(sensor.FeatMotion); got != sensor.Bool(true) {
		t.Fatalf("published view mutated in place: v1 motion = %v", got)
	}
	if got, _ := v2.Snap.Get(sensor.FeatMotion); got != sensor.Bool(false) {
		t.Fatalf("v2 motion = %v, want false", got)
	}
	if !v1.PushedAt[1].IsZero() {
		t.Fatalf("v1 PushedAt for st retroactively set: %v", v1.PushedAt[1])
	}
	if v2.PushedAt[0] != v1.PushedAt[0] || v2.PushedAt[1] != clk.Now() {
		t.Fatalf("v2 PushedAt wrong: %v", v2.PushedAt)
	}
	if !v2.At.Equal(clk.Now()) || !v2.Snap.At.Equal(clk.Now()) {
		t.Fatalf("v2 At = %v / %v, want %v", v2.At, v2.Snap.At, clk.Now())
	}
}

// TestPushMergesAcrossSources: untouched features persist across publishes
// from other sources.
func TestPushMergesAcrossSources(t *testing.T) {
	clk := newTestClock()
	st, err := NewStore(Config{Now: clk.Now},
		SourceConfig{Name: "miio"}, SourceConfig{Name: "st"})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Push("miio", delta(clk.Now(), sensor.FeatMotion, sensor.Bool(true))); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if err := st.Push("st", delta(clk.Now(), sensor.FeatTempIndoor, sensor.Number(21))); err != nil {
		t.Fatal(err)
	}
	v := st.View()
	if !v.Snap.Bool(sensor.FeatMotion) {
		t.Fatal("miio's motion lost after st push")
	}
	if n, ok := v.Snap.Number(sensor.FeatTempIndoor); !ok || n != 21 {
		t.Fatalf("st's temperature missing: %v %v", n, ok)
	}
}

// TestPushOutOfOrderDropped: a delta older than the source's newest accepted
// event must not roll the context back.
func TestPushOutOfOrderDropped(t *testing.T) {
	clk := newTestClock()
	reg := obs.NewRegistry()
	st, err := NewStore(Config{Now: clk.Now, Metrics: reg}, SourceConfig{Name: "miio"})
	if err != nil {
		t.Fatal(err)
	}
	t2 := clk.Now()
	if err := st.Push("miio", delta(t2, sensor.FeatMotion, sensor.Bool(true))); err != nil {
		t.Fatal(err)
	}
	stale := delta(t2.Add(-time.Second), sensor.FeatMotion, sensor.Bool(false))
	if err := st.Push("miio", stale); err != nil {
		t.Fatal(err)
	}
	v := st.View()
	if v.Epoch != 1 {
		t.Fatalf("stale delta published: epoch %d", v.Epoch)
	}
	if !v.Snap.Bool(sensor.FeatMotion) {
		t.Fatal("stale delta rolled motion back")
	}
	expositionContains(t, reg, `iotsid_epoch_drops_total{source="miio",reason="out_of_order"} 1`)
	expositionContains(t, reg, `iotsid_epoch_drops_total{source="miio",reason="zero_value"} 0`)
	// Equal event times are accepted: two sensors can legitimately report in
	// the same tick of a simulated clock.
	if err := st.Push("miio", delta(t2, sensor.FeatMotion, sensor.Bool(false))); err != nil {
		t.Fatal(err)
	}
	if got := st.Epoch(); got != 2 {
		t.Fatalf("equal-time delta dropped: epoch %d", got)
	}
}

// TestPushZeroValueDropped: a delta smuggling an absent (JSON null) value
// must not shadow a real reading in the merged view — it is dropped and
// counted under its own reason label, distinguishable from replays.
func TestPushZeroValueDropped(t *testing.T) {
	clk := newTestClock()
	reg := obs.NewRegistry()
	st, err := NewStore(Config{Now: clk.Now, Metrics: reg}, SourceConfig{Name: "miio"})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Push("miio", delta(clk.Now(), sensor.FeatMotion, sensor.Bool(true))); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	null := delta(clk.Now(), sensor.FeatMotion, sensor.Value{})
	if err := st.Push("miio", null); err != nil {
		t.Fatal(err)
	}
	v := st.View()
	if v.Epoch != 1 {
		t.Fatalf("null-valued delta published: epoch %d", v.Epoch)
	}
	if !v.Snap.Bool(sensor.FeatMotion) {
		t.Fatal("null value shadowed the real reading")
	}
	expositionContains(t, reg, `iotsid_epoch_drops_total{source="miio",reason="zero_value"} 1`)
	expositionContains(t, reg, `iotsid_epoch_drops_total{source="miio",reason="out_of_order"} 0`)
}

// TestPushObserveHook: every push attempt — accepted, replayed or
// null-valued — reaches the Observe hook with the resolved event time.
func TestPushObserveHook(t *testing.T) {
	clk := newTestClock()
	type seen struct {
		source string
		n      int
		at     time.Time
	}
	var calls []seen
	cfg := Config{Now: clk.Now, Observe: func(source string, d sensor.Snapshot, at time.Time) {
		calls = append(calls, seen{source: source, n: len(d.Values), at: at})
	}}
	st, err := NewStore(cfg, SourceConfig{Name: "miio"})
	if err != nil {
		t.Fatal(err)
	}
	t1 := clk.Now()
	if err := st.Push("miio", delta(t1, sensor.FeatMotion, sensor.Bool(true))); err != nil {
		t.Fatal(err)
	}
	// A replayed delta is dropped from the view but still observed.
	if err := st.Push("miio", delta(t1.Add(-time.Minute), sensor.FeatMotion, sensor.Bool(false))); err != nil {
		t.Fatal(err)
	}
	// A zero-time heartbeat is observed with the store clock.
	clk.Advance(10 * time.Second)
	if err := st.Push("miio", sensor.Snapshot{}); err != nil {
		t.Fatal(err)
	}
	// An unknown source never reaches the hook.
	if err := st.Push("ghost", sensor.Snapshot{}); err == nil {
		t.Fatal("unknown source accepted")
	}
	if len(calls) != 3 {
		t.Fatalf("observe calls = %d, want 3", len(calls))
	}
	if calls[0].at != t1 || calls[0].n != 1 {
		t.Fatalf("accepted push observed as %+v", calls[0])
	}
	if calls[1].at != t1.Add(-time.Minute) {
		t.Fatalf("replayed push observed at %v", calls[1].at)
	}
	if calls[2].at != clk.Now() || calls[2].n != 0 {
		t.Fatalf("heartbeat observed as %+v", calls[2])
	}
}

// TestPushEmptyDeltaHeartbeat: an empty delta refreshes liveness without
// touching values.
func TestPushEmptyDeltaHeartbeat(t *testing.T) {
	clk := newTestClock()
	st, err := NewStore(Config{Now: clk.Now}, SourceConfig{Name: "miio"})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Push("miio", delta(clk.Now(), sensor.FeatMotion, sensor.Bool(true))); err != nil {
		t.Fatal(err)
	}
	clk.Advance(30 * time.Second)
	if err := st.Push("miio", sensor.Snapshot{}); err != nil {
		t.Fatal(err)
	}
	v := st.View()
	if v.Epoch != 2 {
		t.Fatalf("heartbeat not published: epoch %d", v.Epoch)
	}
	if !v.Snap.Bool(sensor.FeatMotion) {
		t.Fatal("heartbeat clobbered values")
	}
	if v.PushedAt[0] != clk.Now() {
		t.Fatalf("heartbeat did not refresh PushedAt: %v", v.PushedAt[0])
	}
}

// TestPushZeroTimeStamped: a delta with no event time is stamped with the
// store clock rather than treated as infinitely old.
func TestPushZeroTimeStamped(t *testing.T) {
	clk := newTestClock()
	st, err := NewStore(Config{Now: clk.Now}, SourceConfig{Name: "miio"})
	if err != nil {
		t.Fatal(err)
	}
	d := sensor.Snapshot{}
	d.Set(sensor.FeatMotion, sensor.Bool(true))
	if err := st.Push("miio", d); err != nil {
		t.Fatal(err)
	}
	v := st.View()
	if !v.At.Equal(clk.Now()) {
		t.Fatalf("zero-time delta not stamped with store clock: %v", v.At)
	}
}

func TestPushMetrics(t *testing.T) {
	clk := newTestClock()
	reg := obs.NewRegistry()
	st, err := NewStore(Config{Now: clk.Now, Metrics: reg},
		SourceConfig{Name: "miio"}, SourceConfig{Name: "st"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		clk.Advance(time.Second)
		if err := st.Push("miio", delta(clk.Now(), sensor.FeatMotion, sensor.Bool(i%2 == 0))); err != nil {
			t.Fatal(err)
		}
	}
	// One event-time push lagging the publish clock by 2s.
	if err := st.Push("st", delta(clk.Now().Add(-2*time.Second).Add(time.Hour), sensor.FeatTempIndoor, sensor.Number(20))); err != nil {
		t.Fatal(err)
	}
	expositionContains(t, reg, `iotsid_epoch_publishes_total{source="miio"} 3`)
	expositionContains(t, reg, `iotsid_epoch_publishes_total{source="st"} 1`)
	expositionContains(t, reg, `iotsid_epoch_current 4`)
	expositionContains(t, reg, `iotsid_epoch_publish_lag_seconds_count 4`)
}

// TestPushConcurrent hammers the store from several writers while a reader
// spins; run under -race this is the store's memory-model gate, and the
// epoch count must equal the number of accepted publishes exactly.
func TestPushConcurrent(t *testing.T) {
	st, err := NewStore(Config{},
		SourceConfig{Name: "a"}, SourceConfig{Name: "b"}, SourceConfig{Name: "c"})
	if err != nil {
		t.Fatal(err)
	}
	const perSource = 200
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // reader: epochs must never decrease
		defer readers.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			e := st.Epoch()
			if e < last {
				t.Error("epoch went backwards")
				return
			}
			last = e
		}
	}()
	var writers sync.WaitGroup
	for _, src := range []string{"a", "b", "c"} {
		writers.Add(1)
		go func(src string) {
			defer writers.Done()
			for i := 0; i < perSource; i++ {
				d := sensor.Snapshot{}
				d.Set(sensor.FeatPowerDraw, sensor.Number(float64(i)))
				if err := st.Push(src, d); err != nil {
					t.Error(err)
					return
				}
			}
		}(src)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if got := st.Epoch(); got != 3*perSource {
		t.Fatalf("epoch = %d, want %d", got, 3*perSource)
	}
}

func expositionContains(t *testing.T, reg *obs.Registry, line string) {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(line)) {
		t.Fatalf("exposition missing %q:\n%s", line, buf.String())
	}
}
