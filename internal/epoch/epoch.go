// Package epoch inverts sensor collection from poll to push: vendor
// sources push deltas into a copy-on-write snapshot that is published
// behind an atomic pointer with a monotonically increasing epoch. A
// decision point no longer pays a collector round trip — steady-state
// reads are one pointer dereference plus a per-source age check, while
// writers serialise on a mutex, merge the delta into a fresh immutable
// view and swap the pointer. All bookkeeping (counters, lag histogram,
// epoch gauge) lives on the write side so the read path stays
// allocation-free.
//
// Staleness is evaluated at read time against each source's last push:
// a source whose last push is older than its FreshFor budget is stale,
// and older than its Staleness budget is missing — the same
// fresh/stale/missing provenance vocabulary the poll-based degraded-mode
// collector uses, so the framework's fail-closed rules carry over
// unchanged (core.EpochCollector does the mapping).
package epoch

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"iotsid/internal/obs"
	"iotsid/internal/sensor"
)

// SourceConfig declares one pushing source and its freshness budgets.
type SourceConfig struct {
	// Name identifies the source in pushes and provenance.
	Name string
	// Required marks a source whose absence must fail sensitive
	// instructions closed (enforced by the reading collector, not the
	// store).
	Required bool
	// FreshFor is the push-cadence budget: a source whose last push is at
	// most this old counts fresh. Zero defaults to a minute.
	FreshFor time.Duration
	// Staleness is the absolute budget before the source counts missing;
	// between FreshFor and Staleness it is served stale. Zero disables the
	// stale band: past FreshFor the source goes straight to missing.
	Staleness time.Duration
}

// Config tunes a Store.
type Config struct {
	// Now is the publish clock stamping per-source push times; defaults to
	// time.Now. Readers difference their own clock against these stamps.
	Now func() time.Time
	// Metrics, when non-nil, instruments the write side: publishes and
	// drops per source, the current epoch, and the event-time lag of each
	// publish. Series are pre-registered per declared source; the read
	// path is never instrumented (it must stay allocation-free).
	Metrics *obs.Registry
	// Observe, when non-nil, receives every push attempt from a declared
	// source — accepted or dropped — with the resolved event time (the
	// store clock when the delta carried none). This is the trust
	// engine's tap: a replayed or null-valued delta is dropped from the
	// view but must still count against its source. Called under the
	// store's write lock, so observations arrive in publish order.
	Observe func(source string, delta sensor.Snapshot, at time.Time)
}

// View is one published immutable snapshot generation. Readers share it:
// the snapshot's value map and the PushedAt slice are frozen at publish
// time and must be treated as read-only.
type View struct {
	// Epoch increases by one per publish; 0 is the empty pre-push view.
	Epoch uint64
	// At is the newest event timestamp contributed by any push.
	At time.Time
	// Snap is the merged sensor context.
	Snap sensor.Snapshot
	// PushedAt records, per source in declaration order, the store-clock
	// time of that source's newest accepted push (zero = never pushed).
	PushedAt []time.Time
}

// Metric names the store owns (write side only).
const (
	metricPublishes = "iotsid_epoch_publishes_total"
	metricDrops     = "iotsid_epoch_drops_total"
	metricEpoch     = "iotsid_epoch_current"
	metricLag       = "iotsid_epoch_publish_lag_seconds"
)

// Drop reasons: the delta's event time ran backwards (a replay), or the
// delta carried an absent (JSON null) value for some feature.
const (
	dropOutOfOrder = "out_of_order"
	dropZeroValue  = "zero_value"
)

const (
	dropIdxOutOfOrder = iota
	dropIdxZeroValue
)

// storeMetrics holds the pre-registered write-side series.
type storeMetrics struct {
	publishes []*obs.Counter    // per source, declaration order
	drops     [][2]*obs.Counter // per source × drop reason
	epoch     *obs.Gauge
	lag       *obs.Histogram
}

// Store is the epoch-versioned snapshot store.
type Store struct {
	sources []SourceConfig
	byName  map[string]int
	now     func() time.Time
	observe func(source string, delta sensor.Snapshot, at time.Time)
	metrics *storeMetrics // nil = uninstrumented

	mu          sync.Mutex // serialises writers
	lastEventAt []time.Time
	cur         atomic.Pointer[View]
}

// NewStore validates the source declarations and publishes the empty
// epoch-0 view.
func NewStore(cfg Config, sources ...SourceConfig) (*Store, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("epoch: store needs at least one source")
	}
	byName := make(map[string]int, len(sources))
	for i := range sources {
		s := &sources[i]
		if s.Name == "" {
			return nil, fmt.Errorf("epoch: source %d has no name", i)
		}
		if _, dup := byName[s.Name]; dup {
			return nil, fmt.Errorf("epoch: duplicate source %q", s.Name)
		}
		if s.FreshFor <= 0 {
			s.FreshFor = time.Minute
		}
		if s.Staleness != 0 && s.Staleness < s.FreshFor {
			return nil, fmt.Errorf("epoch: source %q staleness %v below its fresh budget %v",
				s.Name, s.Staleness, s.FreshFor)
		}
		byName[s.Name] = i
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	st := &Store{
		sources:     sources,
		byName:      byName,
		now:         cfg.Now,
		observe:     cfg.Observe,
		lastEventAt: make([]time.Time, len(sources)),
	}
	if cfg.Metrics != nil {
		pubs := cfg.Metrics.NewCounterVec(metricPublishes,
			"Accepted delta publishes into the epoch snapshot store, per source.",
			"source")
		drops := cfg.Metrics.NewCounterVec(metricDrops,
			"Deltas dropped before publish, per source and reason (out_of_order: replayed event timestamp; zero_value: absent/null feature value).",
			"source", "reason")
		m := &storeMetrics{
			epoch: cfg.Metrics.NewGauge(metricEpoch,
				"Epoch of the currently published snapshot view."),
			lag: cfg.Metrics.NewHistogram(metricLag,
				"Publish-clock minus event-clock lag of each accepted delta, seconds.",
				obs.LatencyBuckets),
		}
		for _, s := range sources {
			m.publishes = append(m.publishes, pubs.With(s.Name))
			m.drops = append(m.drops, [2]*obs.Counter{
				drops.With(s.Name, dropOutOfOrder),
				drops.With(s.Name, dropZeroValue),
			})
		}
		st.metrics = m
	}
	st.cur.Store(&View{Epoch: 0, Snap: sensor.NewSnapshot(time.Time{}),
		PushedAt: make([]time.Time, len(sources))})
	return st, nil
}

// Sources returns a copy of the declared source configurations, in
// declaration order.
func (s *Store) Sources() []SourceConfig {
	out := make([]SourceConfig, len(s.sources))
	copy(out, s.sources)
	return out
}

// View returns the currently published snapshot view. The hot read path:
// one atomic pointer load, nothing else.
//
//iot:hotpath
func (s *Store) View() *View {
	return s.cur.Load()
}

// Epoch returns the current epoch number.
//
//iot:hotpath
func (s *Store) Epoch() uint64 {
	return s.cur.Load().Epoch
}

// Push merges a delta from the named source into a new view and publishes
// it. Delta semantics: the delta's values overwrite the published ones,
// untouched features persist, and the view timestamp is the max of the
// contributed event times. A delta stamped with a zero time is stamped
// with the store clock. Two delta classes are dropped (reported via the
// reason-labeled drop counter, not an error): an event time older than
// the source's newest accepted event (a byzantine source replaying
// history must not roll the context back), and a delta carrying an
// absent (JSON null) value for any feature (a null must not shadow a
// real reading in the merged view). An empty delta is a liveness
// heartbeat: it refreshes the source's push time without touching any
// value. Every attempt — accepted or dropped — reaches the Observe
// hook, so a trust engine sees exactly what the source tried to say.
func (s *Store) Push(source string, delta sensor.Snapshot) error {
	i, ok := s.byName[source]
	if !ok {
		return fmt.Errorf("epoch: unknown source %q", source)
	}
	now := s.now()
	at := delta.At
	if at.IsZero() {
		at = now
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.observe != nil {
		s.observe(source, delta, at)
	}
	if at.Before(s.lastEventAt[i]) {
		if s.metrics != nil {
			s.metrics.drops[i][dropIdxOutOfOrder].Inc()
		}
		return nil
	}
	for _, v := range delta.Values {
		if v.IsZero() {
			if s.metrics != nil {
				s.metrics.drops[i][dropIdxZeroValue].Inc()
			}
			return nil
		}
	}
	s.lastEventAt[i] = at
	cur := s.cur.Load()
	next := &View{
		Epoch:    cur.Epoch + 1,
		At:       cur.At,
		Snap:     cur.Snap.Merge(delta),
		PushedAt: make([]time.Time, len(cur.PushedAt)),
	}
	copy(next.PushedAt, cur.PushedAt)
	next.PushedAt[i] = now
	if at.After(next.At) {
		next.At = at
	}
	next.Snap.At = next.At
	s.cur.Store(next)
	if s.metrics != nil {
		s.metrics.publishes[i].Inc()
		s.metrics.epoch.Set(int64(next.Epoch))
		lag := now.Sub(at).Seconds()
		if lag < 0 {
			lag = 0
		}
		s.metrics.lag.Observe(lag)
	}
	return nil
}
