// Package par is the shared concurrency substrate of the train/eval stack:
// a bounded worker pool over an index space, with errgroup-style error
// propagation and ordered, index-addressed results.
//
// The package exists to make parallel training *deterministic*. Its contract
// with callers is the seed-derivation rule (DESIGN.md §Training
// parallelism): a unit function must depend only on its index and on state
// derived before the fan-out — any randomness comes from a per-unit
// generator seeded as rand.New(rand.NewSource(base + unitIndex)) computed up
// front, never from a generator shared across units. Under that rule the
// output of Do/Map is bit-identical for every worker count, so Workers is
// purely a throughput knob.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"iotsid/internal/obs"
)

// Pool utilization metrics, registered lazily on the process-default
// registry the first time a fan-out runs. They observe throughput only —
// nothing in Do/Map reads them, so the deterministic-output contract is
// untouched. Counts are accumulated per worker and flushed on exit to keep
// the unit loop free of shared-cacheline traffic.
var (
	metricsOnce sync.Once
	poolRuns    *obs.Counter
	poolTasks   *obs.Counter
	poolBusy    *obs.Gauge
)

func poolMetrics() (runs, tasks *obs.Counter, busy *obs.Gauge) {
	metricsOnce.Do(func() {
		reg := obs.Default()
		poolRuns = reg.NewCounter("iotsid_par_runs_total",
			"Worker-pool fan-outs started (Do/Map calls).")
		poolTasks = reg.NewCounter("iotsid_par_tasks_total",
			"Units executed across all worker-pool fan-outs.")
		poolBusy = reg.NewGauge("iotsid_par_workers_busy",
			"Worker goroutines currently executing pool units.")
	})
	return poolRuns, poolTasks, poolBusy
}

// Workers resolves a worker-count knob: n if positive, otherwise
// runtime.GOMAXPROCS(0). Configs throughout the repo carry a `Workers int`
// field whose zero value means "use every P the runtime gives us"; this is
// the single place that default is decided.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Do runs fn(i) for every i in [0, n) on at most workers goroutines
// (Workers-resolved, so workers <= 0 means GOMAXPROCS) and waits for all of
// them. Units must be independent of each other per the package contract.
//
// Error propagation is deterministic: Do returns the error of the
// lowest-failing index — exactly the error a serial loop would have
// returned, regardless of the order goroutines happen to run in. After a
// unit fails, units with higher indices that have not started yet are
// skipped (a serial loop would never have reached them); units with lower
// indices still run, so the minimal failing index is always discovered.
func Do(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	runs, tasks, busy := poolMetrics()
	runs.Inc()
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		busy.Add(1)
		done := uint64(0)
		defer func() {
			tasks.Add(done)
			busy.Add(-1)
		}()
		for i := 0; i < n; i++ {
			done++
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next      atomic.Int64
		minFailed atomic.Int64 // lowest failing index seen so far
		mu        sync.Mutex
		errIdx    = n // index whose error is held in err
		err       error
		wg        sync.WaitGroup
	)
	minFailed.Store(int64(n)) // sentinel: nothing failed
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			busy.Add(1)
			done := uint64(0)
			defer func() {
				tasks.Add(done)
				busy.Add(-1)
			}()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				// Skip units a serial loop would not have reached — but keep
				// running indices below the current minimum failure so the
				// serial-equivalent (lowest) error is always found.
				if i > minFailed.Load() {
					continue
				}
				done++
				if e := fn(int(i)); e != nil {
					mu.Lock()
					if int(i) < errIdx {
						errIdx, err = int(i), e
					}
					mu.Unlock()
					for {
						cur := minFailed.Load()
						if i >= cur || minFailed.CompareAndSwap(cur, i) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return err
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the results in index order — slot i holds fn(i)'s value. On error
// it returns the lowest-failing index's error and a nil slice.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Do(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
