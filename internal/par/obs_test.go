package par

import (
	"errors"
	"testing"

	"iotsid/internal/obs"
)

// poolCounters reads the pool metrics off the default registry
// (registration is idempotent, so this is also how the production series
// are addressed).
func poolCounters() (runs, tasks *obs.Counter, busy *obs.Gauge) {
	return poolMetrics()
}

// TestPoolMetricsCountRunsAndTasks: the default-registry series advance by
// exactly one run and n tasks per fan-out, for both the serial and the
// parallel shape, and the busy gauge settles back to zero. Deltas, not
// absolutes — other tests in the binary share the process registry.
func TestPoolMetricsCountRunsAndTasks(t *testing.T) {
	runs, tasks, busy := poolCounters()
	r0, t0 := runs.Value(), tasks.Value()
	if err := Do(17, 4, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := Do(5, 1, func(i int) error { return nil }); err != nil { // serial shape
		t.Fatal(err)
	}
	if _, err := Map(9, 3, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if got := runs.Value() - r0; got != 3 {
		t.Fatalf("runs delta %d, want 3", got)
	}
	if got := tasks.Value() - t0; got != 17+5+9 {
		t.Fatalf("tasks delta %d, want %d", got, 17+5+9)
	}
	if got := busy.Value(); got != 0 {
		t.Fatalf("busy gauge %d after all fan-outs drained, want 0", got)
	}
}

// TestPoolMetricsOnError: a failing fan-out still flushes its attempted
// task count and releases every worker.
func TestPoolMetricsOnError(t *testing.T) {
	runs, tasks, busy := poolCounters()
	r0, t0 := runs.Value(), tasks.Value()
	boom := errors.New("boom")
	if err := Do(8, 2, func(i int) error {
		if i == 3 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := runs.Value() - r0; got != 1 {
		t.Fatalf("runs delta %d, want 1", got)
	}
	// Attempted units: at least the failing index's serial prefix ran; the
	// exact count depends on scheduling, but it is bounded by n and the
	// counter must have moved.
	if got := tasks.Value() - t0; got == 0 || got > 8 {
		t.Fatalf("tasks delta %d, want 1..8", got)
	}
	if got := busy.Value(); got != 0 {
		t.Fatalf("busy gauge %d after failed fan-out, want 0", got)
	}
}

// TestPoolBusyGaugeTracksActiveWorkers: while units are blocked inside the
// pool, the busy gauge reports the worker count; it returns to zero after.
func TestPoolBusyGaugeTracksActiveWorkers(t *testing.T) {
	_, _, busy := poolCounters()
	const workers = 3
	hold := make(chan struct{})
	started := make(chan struct{}, workers)
	done := make(chan error, 1)
	go func() {
		done <- Do(workers, workers, func(i int) error {
			started <- struct{}{}
			<-hold
			return nil
		})
	}()
	for i := 0; i < workers; i++ {
		<-started
	}
	if got := busy.Value(); got != workers {
		close(hold)
		<-done
		t.Fatalf("busy gauge %d with %d blocked workers", got, workers)
	}
	close(hold)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := busy.Value(); got != 0 {
		t.Fatalf("busy gauge %d after drain, want 0", got)
	}
}
