package par

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefault(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestDoRunsEveryUnit(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		var hits [257]atomic.Int32
		err := Do(len(hits), workers, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Fatalf("workers=%d: unit %d ran %d times", workers, i, n)
			}
		}
	}
}

func TestDoEmptyAndSmall(t *testing.T) {
	if err := Do(0, 8, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("n=0: %v", err)
	}
	var ran atomic.Int32
	if err := Do(1, 8, func(int) error { ran.Add(1); return nil }); err != nil || ran.Load() != 1 {
		t.Errorf("n=1: err=%v ran=%d", err, ran.Load())
	}
}

// TestDoLowestIndexError proves error determinism: whatever the worker
// count and scheduling, the returned error is the one a serial loop would
// have produced — the lowest failing index's.
func TestDoLowestIndexError(t *testing.T) {
	fails := map[int]bool{5: true, 17: true, 63: true}
	for _, workers := range []int{1, 2, 8, 32} {
		for trial := 0; trial < 20; trial++ {
			err := Do(64, workers, func(i int) error {
				if fails[i] {
					return fmt.Errorf("unit %d", i)
				}
				return nil
			})
			if err == nil || err.Error() != "unit 5" {
				t.Fatalf("workers=%d trial=%d: err = %v, want unit 5", workers, trial, err)
			}
		}
	}
}

// TestDoSkipsAfterFailure checks that units above a failure can be skipped
// but every unit below the minimal failing index still runs (they would
// have run serially).
func TestDoSkipsAfterFailure(t *testing.T) {
	var hits [128]atomic.Int32
	err := Do(len(hits), 8, func(i int) error {
		hits[i].Add(1)
		if i == 40 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	for i := 0; i < 40; i++ {
		if hits[i].Load() != 1 {
			t.Fatalf("unit %d below the failure ran %d times, want 1", i, hits[i].Load())
		}
	}
	for i := range hits {
		if n := hits[i].Load(); n > 1 {
			t.Fatalf("unit %d ran %d times", i, n)
		}
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		out, err := Map(100, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapError(t *testing.T) {
	out, err := Map(10, 4, func(i int) (string, error) {
		if i >= 3 {
			return "", fmt.Errorf("unit %d", i)
		}
		return "ok", nil
	})
	if out != nil || err == nil || err.Error() != "unit 3" {
		t.Errorf("out=%v err=%v", out, err)
	}
}

// TestMapDeterministicSeeds is the package contract in miniature: units
// drawing from pre-derived per-index seeds produce identical output at any
// worker count.
func TestMapDeterministicSeeds(t *testing.T) {
	const base = int64(991)
	run := func(workers int) []float64 {
		out, err := Map(64, workers, func(i int) (float64, error) {
			rng := rand.New(rand.NewSource(base + int64(i)))
			sum := 0.0
			for k := 0; k < 100; k++ {
				sum += rng.Float64()
			}
			return sum, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d diverges at unit %d: %v != %v", workers, i, got[i], serial[i])
			}
		}
	}
}

// TestPoolRace hammers the pool from many concurrent Do calls with shared
// atomic state — the test verify.sh runs under -race to prove the pool
// itself is clean.
func TestPoolRace(t *testing.T) {
	var total atomic.Int64
	err := Do(8, 8, func(outer int) error {
		return Do(50, 4, func(i int) error {
			total.Add(int64(i))
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(8 * (50 * 49 / 2))
	if total.Load() != want {
		t.Errorf("total = %d, want %d", total.Load(), want)
	}
}
