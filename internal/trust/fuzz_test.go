package trust

import (
	"math"
	"testing"
	"time"

	"iotsid/internal/sensor"
)

// fuzzSnapshots decodes the shared fuzz argument tuple into an
// adversarial (previous, current) snapshot pair: two feature names the
// fuzzer may mutate into unknown or garbage strings, two numeric values
// it may drive to NaN/Inf, a boolean pair, and raw nanosecond
// timestamps (zero stays the zero time).
func fuzzSnapshots(fa, fb string, va, vb float64, ba, bb bool, atPrev, atCur int64) (sensor.Snapshot, sensor.Snapshot) {
	ts := func(n int64) time.Time {
		if n == 0 {
			return time.Time{}
		}
		return time.Unix(0, n)
	}
	prev := sensor.Snapshot{At: ts(atPrev)}
	prev.Set(sensor.Feature(fa), sensor.Number(va))
	prev.Set(sensor.Feature(fb), sensor.Bool(ba))
	prev.Set(sensor.FeatOccupancy, sensor.Bool(bb))
	cur := sensor.Snapshot{At: ts(atCur)}
	cur.Set(sensor.Feature(fa), sensor.Number(vb))
	cur.Set(sensor.Feature(fb), sensor.Bool(bb))
	cur.Set(sensor.FeatMotion, sensor.Bool(ba))
	cur.Set(sensor.FeatAirQuality, sensor.Value{}) // absent (null) value
	return prev, cur
}

// FuzzInvariants drives the invariant-table evaluator over adversarial
// snapshot pairs. The evaluator must be total (no panics on NaN/Inf,
// unknown features, absent values, zero timestamps), must pair every
// firing with a non-empty detail, and must be a pure function of its
// inputs.
func FuzzInvariants(f *testing.F) {
	f.Add("temperature_in", "motion", 22.5, -300.0, true, false, int64(0), int64(0))
	f.Add("air_quality", "occupancy", math.NaN(), math.Inf(1), false, true, int64(1_600_000_000), int64(1))
	f.Add("humidity", "not_a_feature", -5.0, 150.0, true, true, int64(-1), int64(0))
	f.Add("hour_of_day", "window_open", 23.9, 24.1, false, false, int64(0), int64(7))
	f.Fuzz(func(t *testing.T, fa, fb string, va, vb float64, ba, bb bool, atPrev, atCur int64) {
		prev, cur := fuzzSnapshots(fa, fb, va, vb, ba, bb, atPrev, atCur)
		table := append(DefaultInvariants(),
			Invariant{Name: "fuzz_step", Kind: MaxStep, Feature: sensor.Feature(fa), Limit: 1},
			Invariant{Name: "fuzz_range", Kind: Range, Feature: sensor.Feature(fa), Min: -1, Max: 1},
			Invariant{Name: "fuzz_contra", Kind: Contradiction, A: sensor.Feature(fb), B: sensor.FeatMotion},
		)
		for _, iv := range table {
			violated, detail := iv.Eval(prev, cur)
			if violated && detail == "" {
				t.Fatalf("invariant %s fired without detail", iv.Name)
			}
			if v2, d2 := iv.Eval(prev, cur); v2 != violated || d2 != detail {
				t.Fatalf("invariant %s not deterministic: (%v,%q) vs (%v,%q)", iv.Name, violated, detail, v2, d2)
			}
		}
	})
}

// FuzzObserve drives a whole engine over an adversarial two-observation
// stream: the score must stay a finite number in [0,1], the atomics must
// agree with the threshold, and two engines fed the same stream must
// land on bit-identical scores.
func FuzzObserve(f *testing.F) {
	f.Add("temperature_in", "motion", 22.5, math.NaN(), true, false, int64(0), int64(0))
	f.Add("air_quality", "ghost_feature", math.Inf(-1), -40.0, false, true, int64(2), int64(1))
	f.Add("power_draw", "occupancy", 1e308, -1e308, true, true, int64(1_600_000_000_000_000_000), int64(1_600_000_000_000_000_001))
	f.Fuzz(func(t *testing.T, fa, fb string, va, vb float64, ba, bb bool, atPrev, atCur int64) {
		prev, cur := fuzzSnapshots(fa, fb, va, vb, ba, bb, atPrev, atCur)
		run := func() float64 {
			e, err := NewEngine(Config{BaselineObs: 1}, SourceConfig{Name: "sim", Required: true})
			if err != nil {
				t.Fatal(err)
			}
			e.Observe("sim", prev, prev.At)
			e.Observe("sim", cur, cur.At)
			sc, _ := e.Score("sim")
			if math.IsNaN(sc) || sc < 0 || sc > 1 {
				t.Fatalf("score degenerated to %v", sc)
			}
			idx, _ := e.Index("sim")
			if e.TrustedIdx(idx) != (sc >= e.Threshold()) {
				t.Fatalf("trusted flag disagrees with score %v (threshold %v)", sc, e.Threshold())
			}
			return sc
		}
		a, b := run(), run()
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("same stream, different scores: %x vs %x", math.Float64bits(a), math.Float64bits(b))
		}
	})
}
