package trust

import (
	"fmt"
	"math"

	"iotsid/internal/sensor"
)

// InvariantKind selects the check an Invariant performs.
type InvariantKind int

// The three invariant shapes: a bound on how far a feature may move
// between consecutive observations, a closed range the feature must stay
// inside, and a two-feature contradiction (A=false while B=true cannot
// both be honest).
const (
	MaxStep InvariantKind = iota + 1
	Range
	Contradiction
)

// String implements fmt.Stringer.
func (k InvariantKind) String() string {
	switch k {
	case MaxStep:
		return "max_step"
	case Range:
		return "range"
	case Contradiction:
		return "contradiction"
	}
	return fmt.Sprintf("invariant(%d)", int(k))
}

// Invariant is one declarative physics-ish consistency rule. Rules are
// evaluated over (previous, current) observation pairs and must be
// total: absent features, non-numeric values, NaN/Inf and zero
// timestamps never panic — a rule that cannot apply simply does not
// fire, except that a Range rule treats a non-finite numeric value as
// out of range (no physical quantity is NaN).
type Invariant struct {
	// Name labels the rule in violations and metrics.
	Name string
	// Kind selects the check.
	Kind InvariantKind
	// Feature is the checked feature for MaxStep and Range rules.
	Feature sensor.Feature
	// Limit bounds |current − previous| for MaxStep rules.
	Limit float64
	// Min and Max close the allowed interval for Range rules.
	Min, Max float64
	// A and B are the contradiction pair: A=false while B=true violates.
	A, B sensor.Feature
}

// validate rejects structurally broken rules at engine construction.
func (iv Invariant) validate() error {
	if iv.Name == "" {
		return fmt.Errorf("invariant has no name")
	}
	switch iv.Kind {
	case MaxStep:
		if iv.Feature == "" {
			return fmt.Errorf("%s: max_step rule needs a feature", iv.Name)
		}
		if !(iv.Limit > 0) || math.IsInf(iv.Limit, 0) {
			return fmt.Errorf("%s: max_step limit %v must be a positive finite number", iv.Name, iv.Limit)
		}
	case Range:
		if iv.Feature == "" {
			return fmt.Errorf("%s: range rule needs a feature", iv.Name)
		}
		if math.IsNaN(iv.Min) || math.IsNaN(iv.Max) || iv.Min > iv.Max {
			return fmt.Errorf("%s: range [%v, %v] is empty or NaN", iv.Name, iv.Min, iv.Max)
		}
	case Contradiction:
		if iv.A == "" || iv.B == "" {
			return fmt.Errorf("%s: contradiction rule needs both features", iv.Name)
		}
	default:
		return fmt.Errorf("%s: unknown kind %d", iv.Name, int(iv.Kind))
	}
	return nil
}

// Eval checks the rule over one (previous, current) observation pair and
// reports whether it fired, with a human-readable detail. It is total
// over adversarial inputs: either snapshot may be the zero value, carry
// unknown features, absent values or non-finite numbers.
func (iv Invariant) Eval(prev, cur sensor.Snapshot) (bool, string) {
	switch iv.Kind {
	case MaxStep:
		pv, pok := numericFeature(prev, iv.Feature)
		cv, cok := numericFeature(cur, iv.Feature)
		if !pok || !cok {
			return false, ""
		}
		if step := math.Abs(cv - pv); step > iv.Limit {
			return true, fmt.Sprintf("%s: %s stepped %.4g, limit %.4g", iv.Name, iv.Feature, step, iv.Limit)
		}
	case Range:
		v, ok := cur.Values[iv.Feature]
		if !ok {
			return false, ""
		}
		num, isNum := v.Numeric()
		if !isNum {
			return false, ""
		}
		if math.IsNaN(num) || math.IsInf(num, 0) {
			return true, fmt.Sprintf("%s: %s non-finite value %v", iv.Name, iv.Feature, num)
		}
		if num < iv.Min || num > iv.Max {
			return true, fmt.Sprintf("%s: %s at %.4g outside [%.4g, %.4g]", iv.Name, iv.Feature, num, iv.Min, iv.Max)
		}
	case Contradiction:
		av, aok := boolFeature(cur, iv.A)
		bv, bok := boolFeature(cur, iv.B)
		if aok && bok && !av && bv {
			return true, fmt.Sprintf("%s: %s=false contradicts %s=true", iv.Name, iv.A, iv.B)
		}
	}
	return false, ""
}

// numericFeature extracts a finite numeric (or boolean-coerced) value.
func numericFeature(s sensor.Snapshot, f sensor.Feature) (float64, bool) {
	v, ok := s.Values[f]
	if !ok {
		return 0, false
	}
	num, isNum := v.Numeric()
	if !isNum || math.IsNaN(num) || math.IsInf(num, 0) {
		return 0, false
	}
	return num, true
}

// boolFeature extracts a present boolean value (no default-on-absent:
// an absent occupancy report must not read as "nobody home").
func boolFeature(s sensor.Snapshot, f sensor.Feature) (bool, bool) {
	v, ok := s.Values[f]
	if !ok {
		return false, false
	}
	return v.Bool()
}

// DefaultInvariants is the stock physics table for the shared feature
// vocabulary: step bounds tighter than any honest indoor dynamics, hard
// physical ranges, and the canonical occupancy/motion contradiction.
func DefaultInvariants() []Invariant {
	return []Invariant{
		{Name: "temp_step", Kind: MaxStep, Feature: sensor.FeatTempIndoor, Limit: 10},
		{Name: "temp_range", Kind: Range, Feature: sensor.FeatTempIndoor, Min: -40, Max: 60},
		{Name: "aqi_range", Kind: Range, Feature: sensor.FeatAirQuality, Min: 0, Max: 500},
		{Name: "humidity_range", Kind: Range, Feature: sensor.FeatHumidity, Min: 0, Max: 100},
		{Name: "hour_range", Kind: Range, Feature: sensor.FeatHour, Min: 0, Max: 24},
		{Name: "noise_range", Kind: Range, Feature: sensor.FeatNoise, Min: 0, Max: 194},
		{Name: "power_range", Kind: Range, Feature: sensor.FeatPowerDraw, Min: 0, Max: 100_000},
		{Name: "occupancy_motion", Kind: Contradiction, A: sensor.FeatOccupancy, B: sensor.FeatMotion},
	}
}
