package trust

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"iotsid/internal/obs"
	"iotsid/internal/sensor"
)

// t0 anchors every test stream on a fixed simulated clock.
var t0 = time.Date(2021, 6, 1, 12, 0, 0, 0, time.UTC)

// steady returns a believable indoor snapshot at step i of a 5s-cadence
// stream: small bounded jitter around fixed operating points, so a clean
// stream never violates the default fingerprint or invariant table.
func steady(i int) (sensor.Snapshot, time.Time) {
	at := t0.Add(time.Duration(i) * 5 * time.Second)
	s := sensor.NewSnapshot(at)
	s.Set(sensor.FeatTempIndoor, sensor.Number(22+0.3*math.Sin(float64(i))))
	s.Set(sensor.FeatAirQuality, sensor.Number(60+2*math.Cos(float64(i))))
	s.Set(sensor.FeatHumidity, sensor.Number(45+math.Sin(float64(i)/2)))
	s.Set(sensor.FeatMotion, sensor.Bool(i%3 == 0))
	s.Set(sensor.FeatOccupancy, sensor.Bool(true))
	return s, at
}

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := NewEngine(cfg, SourceConfig{Name: "sim", Required: true})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// warm feeds n clean observations.
func warm(e *Engine, n int) {
	for i := 0; i < n; i++ {
		s, at := steady(i)
		e.Observe("sim", s, at)
	}
}

func TestNewEngineValidation(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		sources []SourceConfig
	}{
		{"no sources", Config{}, nil},
		{"empty name", Config{}, []SourceConfig{{Name: ""}}},
		{"duplicate", Config{}, []SourceConfig{{Name: "a"}, {Name: "a"}}},
		{"bad threshold", Config{Threshold: 1.5}, []SourceConfig{{Name: "a"}}},
		{"bad decay", Config{Decay: 1}, []SourceConfig{{Name: "a"}}},
		{"bad recovery", Config{Recovery: 2}, []SourceConfig{{Name: "a"}}},
		{"bad cadence tol", Config{CadenceTolerance: 0.5}, []SourceConfig{{Name: "a"}}},
		{"bad step tol", Config{StepTolerance: 0.5}, []SourceConfig{{Name: "a"}}},
		{"bad drift tol", Config{DriftTolerance: 0.5}, []SourceConfig{{Name: "a"}}},
		{"bad invariant", Config{Invariants: []Invariant{{Name: "x", Kind: MaxStep}}}, []SourceConfig{{Name: "a"}}},
		{"nameless invariant", Config{Invariants: []Invariant{{Kind: Range, Feature: "f"}}}, []SourceConfig{{Name: "a"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewEngine(tc.cfg, tc.sources...); err == nil {
				t.Fatalf("NewEngine accepted invalid input")
			}
		})
	}
}

func TestCleanStreamStaysTrusted(t *testing.T) {
	e := newTestEngine(t, Config{})
	for i := 0; i < 64; i++ {
		s, at := steady(i)
		if v := e.Observe("sim", s, at); len(v) != 0 {
			t.Fatalf("clean observation %d violated: %+v", i, v)
		}
	}
	if sc, _ := e.Score("sim"); sc != 1 {
		t.Fatalf("clean stream score = %v, want 1", sc)
	}
	if !e.Trusted("sim") || e.LowTrustRequired() {
		t.Fatal("clean stream lost trust")
	}
}

func TestUnknownSourceIgnored(t *testing.T) {
	e := newTestEngine(t, Config{})
	s, at := steady(0)
	if v := e.Observe("ghost", s, at); v != nil {
		t.Fatalf("unknown source produced violations: %+v", v)
	}
	if _, ok := e.Score("ghost"); ok {
		t.Fatal("Score resolved an unknown source")
	}
	if e.Trusted("ghost") {
		t.Fatal("unknown source reported trusted")
	}
}

func TestReplayViolation(t *testing.T) {
	e := newTestEngine(t, Config{})
	warm(e, 4)
	s, _ := steady(4)
	v := e.Observe("sim", s, t0.Add(-time.Minute))
	if !hasRule(v, RuleReplay) {
		t.Fatalf("replayed timestamp not flagged: %+v", v)
	}
	if sc, _ := e.Score("sim"); sc >= 1 {
		t.Fatalf("replay did not decay score: %v", sc)
	}
}

func TestCadenceViolation(t *testing.T) {
	e := newTestEngine(t, Config{BaselineObs: 6, CadenceTolerance: 4})
	warm(e, 8)
	// 5s learned cadence; a 10-minute gap is a 120x ratio.
	s, _ := steady(8)
	v := e.Observe("sim", s, t0.Add(8*5*time.Second+10*time.Minute))
	if !hasRule(v, RuleCadence) {
		t.Fatalf("off-cadence report not flagged: %+v", v)
	}
}

func TestStepViolation(t *testing.T) {
	e := newTestEngine(t, Config{BaselineObs: 6})
	warm(e, 8)
	s, at := steady(8)
	s.Set(sensor.FeatAirQuality, sensor.Number(400)) // baseline jitters around 60±2
	v := e.Observe("sim", s, at)
	if !hasRule(v, RuleStep) {
		t.Fatalf("spike not flagged as step violation: %+v", v)
	}
}

func TestDriftViolation(t *testing.T) {
	e := newTestEngine(t, Config{BaselineObs: 6, StepTolerance: 100, DriftTolerance: 3})
	warm(e, 8)
	// Creep far out of the learned envelope in steps small enough to pass
	// the (deliberately loosened) step check: only drift can catch this.
	cur := 60.0
	var last []Violation
	for i := 8; i < 40; i++ {
		cur += 1.5
		s, at := steady(i)
		s.Set(sensor.FeatAirQuality, sensor.Number(cur))
		last = e.Observe("sim", s, at)
		if hasRule(last, RuleDrift) {
			return
		}
	}
	t.Fatalf("slow drift to %v never flagged; last violations %+v", cur, last)
}

func TestStuckViolation(t *testing.T) {
	e := newTestEngine(t, Config{StuckAfter: 4})
	s, _ := steady(0)
	var v []Violation
	for i := 0; i < 8; i++ {
		v = e.Observe("sim", s, t0.Add(time.Duration(i)*5*time.Second))
	}
	if !hasRule(v, RuleStuck) {
		t.Fatalf("frozen feed not flagged: %+v", v)
	}
}

func TestMalformedValues(t *testing.T) {
	e := newTestEngine(t, Config{})
	s, at := steady(0)
	s.Set(sensor.FeatTempIndoor, sensor.Number(math.NaN()))
	s.Set(sensor.FeatHumidity, sensor.Value{})
	v := e.Observe("sim", s, at)
	n := 0
	for _, viol := range v {
		if viol.Rule == RuleMalformed {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("NaN + null produced %d malformed violations, want 2: %+v", n, v)
	}
}

func TestInvariantViolationsDecayScore(t *testing.T) {
	e := newTestEngine(t, Config{Decay: 0.7})
	s, at := steady(0)
	s.Set(sensor.FeatAirQuality, sensor.Number(-5)) // aqi_range
	s.Set(sensor.FeatOccupancy, sensor.Bool(false))
	s.Set(sensor.FeatMotion, sensor.Bool(true)) // occupancy_motion
	v := e.Observe("sim", s, at)
	if !hasRule(v, "aqi_range") || !hasRule(v, "occupancy_motion") {
		t.Fatalf("invariant table missed violations: %+v", v)
	}
	want := 0.7 * 0.7
	if sc, _ := e.Score("sim"); math.Abs(sc-want) > 1e-12 {
		t.Fatalf("score after 2 violations = %v, want %v", sc, want)
	}
}

func TestThresholdCrossingFailsTrust(t *testing.T) {
	e := newTestEngine(t, Config{Threshold: 0.5, Decay: 0.7})
	bad, _ := steady(0)
	bad.Set(sensor.FeatAirQuality, sensor.Number(-1))
	for i := 0; i < 2; i++ {
		e.Observe("sim", bad, t0.Add(time.Duration(i)*5*time.Second))
	}
	// 0.7^2 = 0.49 < 0.5.
	if e.Trusted("sim") {
		t.Fatal("source still trusted below threshold")
	}
	if idx, _ := e.Index("sim"); e.TrustedIdx(idx) {
		t.Fatal("TrustedIdx disagrees with Trusted")
	}
	if !e.LowTrustRequired() {
		t.Fatal("LowTrustRequired missed the required low-trust source")
	}
	rep := e.Report()
	if len(rep) != 1 || !rep[0].LowTrust || rep[0].Violations != 2 || rep[0].Observations != 2 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRecoveryAfterCleanStream(t *testing.T) {
	e := newTestEngine(t, Config{BaselineObs: 4, Recovery: 0.2})
	warm(e, 6)
	bad, at := steady(6)
	bad.Set(sensor.FeatAirQuality, sensor.Number(-1))
	e.Observe("sim", bad, at)
	low, _ := e.Score("sim")
	for i := 7; i < 40; i++ {
		s, at := steady(i)
		e.Observe("sim", s, at)
	}
	high, _ := e.Score("sim")
	if high <= low {
		t.Fatalf("clean stream did not recover score: %v -> %v", low, high)
	}
	if high > 1 {
		t.Fatalf("score recovered past 1: %v", high)
	}
}

func TestLateFeatureOnlyLearns(t *testing.T) {
	e := newTestEngine(t, Config{BaselineObs: 4})
	warm(e, 6)
	// A feature first seen after the baseline froze has no envelope; it
	// must not fire step/drift on arrival or on its next wild move.
	s, at := steady(6)
	s.Set(sensor.FeatIlluminance, sensor.Number(500))
	if v := e.Observe("sim", s, at); len(v) != 0 {
		t.Fatalf("late feature arrival violated: %+v", v)
	}
	s2, at2 := steady(7)
	s2.Set(sensor.FeatIlluminance, sensor.Number(50_000))
	if v := e.Observe("sim", s2, at2); len(v) != 0 {
		t.Fatalf("late feature move violated: %+v", v)
	}
}

func TestZeroTimestampSkipsTimingChecks(t *testing.T) {
	e := newTestEngine(t, Config{})
	warm(e, 4)
	s, _ := steady(4)
	if v := e.Observe("sim", s, time.Time{}); hasRule(v, RuleReplay) || hasRule(v, RuleCadence) {
		t.Fatalf("zero timestamp ran timing checks: %+v", v)
	}
}

func TestMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	e, err := NewEngine(Config{Metrics: reg, Decay: 0.5}, SourceConfig{Name: "sim", Required: true})
	if err != nil {
		t.Fatal(err)
	}
	bad, at := steady(0)
	bad.Set(sensor.FeatAirQuality, sensor.Number(-1))
	e.Observe("sim", bad, at)
	expositionContains(t, reg, `iotsid_trust_violations_total{source="sim",rule="aqi_range"} 1`)
	expositionContains(t, reg, `iotsid_trust_score_permille{source="sim"} 500`)
}

// TestDeterministicTrajectory: two engines fed the same stream produce
// bit-identical score trajectories — the property the campaign's
// worker-count invariance rests on.
func TestDeterministicTrajectory(t *testing.T) {
	mk := func() *Engine { return newTestEngine(t, Config{BaselineObs: 4}) }
	a, b := mk(), mk()
	var trajA, trajB []uint64
	for i := 0; i < 64; i++ {
		s, at := steady(i)
		if i%7 == 3 {
			s.Set(sensor.FeatAirQuality, sensor.Number(-float64(i)))
		}
		a.Observe("sim", s, at)
		b.Observe("sim", s, at)
		sa, _ := a.Score("sim")
		sb, _ := b.Score("sim")
		trajA = append(trajA, math.Float64bits(sa))
		trajB = append(trajB, math.Float64bits(sb))
	}
	for i := range trajA {
		if trajA[i] != trajB[i] {
			t.Fatalf("trajectories diverge at step %d: %x vs %x", i, trajA[i], trajB[i])
		}
	}
}

// TestConcurrentObserveAndRead is the engine's -race gate: writers
// observing while readers spin on the atomic accessors.
func TestConcurrentObserveAndRead(t *testing.T) {
	e := newTestEngine(t, Config{})
	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					e.TrustedIdx(0)
					e.ScoreIdx(0)
					e.LowTrustRequired()
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				s, at := steady(i)
				e.Observe("sim", s, at)
				_ = e.Report()
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}

func hasRule(v []Violation, rule string) bool {
	for _, viol := range v {
		if viol.Rule == rule {
			return true
		}
	}
	return false
}

func expositionContains(t *testing.T, reg *obs.Registry, line string) {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), line) {
		t.Fatalf("exposition missing %q:\n%s", line, buf.String())
	}
}
