// Package trust scores sensor sources by how believable their behavior
// is. Freshness (the provenance layer) proves a source is *talking*;
// trust proves it is *telling the truth*: a compromised gateway can push
// perfectly fresh, perfectly typed snapshots that fabricate exactly the
// context an attacker needs, and no staleness budget will ever notice.
//
// The engine keeps one score per declared source, starting at 1 (fully
// trusted). Every observation — a poll result or a pushed delta — runs
// through two detector families:
//
//   - Behavioral fingerprints learned from the source's own first
//     BaselineObs observations: report cadence, per-feature step sizes
//     and value envelopes, and dwell (how long values sit bit-identical).
//     Replayed timestamps, impossible jumps, frozen feeds and slow drift
//     out of the learned envelope all violate the fingerprint.
//   - A declarative invariant table of physics-ish cross-checks
//     ("temperature cannot step >10°C between reports", "aqi cannot be
//     negative", "occupancy=false contradicts simultaneous motion").
//
// Each violation decays the score multiplicatively; clean observations
// recover it gradually. When a score crosses the configured threshold
// the source is untrusted: decision layers fail sensitive instructions
// closed and flag the source in provenance for everything else.
//
// Determinism: scoring is pure float64 arithmetic over the observation
// sequence — same stream, same trajectory, bit for bit, at any worker
// count. Observations serialise on one mutex; the hot read side
// (TrustedIdx, ScoreIdx) is lock-free atomic loads so authorization
// paths consult the engine without allocating.
package trust

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"iotsid/internal/obs"
	"iotsid/internal/sensor"
)

// Fingerprint rule names — the label vocabulary of the violation counter
// and the Rule field of reported violations. Invariant-table violations
// carry the invariant's own name instead.
const (
	RuleReplay    = "replay"    // event time ran backwards
	RuleCadence   = "cadence"   // report interval far off the learned cadence
	RuleStep      = "step"      // per-feature jump far beyond the learned step envelope
	RuleStuck     = "stuck"     // values bit-identical for too many consecutive reports
	RuleDrift     = "drift"     // value wandered out of the learned envelope
	RuleMalformed = "malformed" // NaN/Inf numeric or absent (null) value
)

// fingerprintRules lists every built-in rule, in evaluation order, for
// metric pre-registration.
var fingerprintRules = []string{RuleReplay, RuleCadence, RuleStep, RuleStuck, RuleDrift, RuleMalformed}

// Metric names the engine owns.
const (
	metricScore      = "iotsid_trust_score_permille"
	metricViolations = "iotsid_trust_violations_total"
)

// SourceConfig declares one scored source.
type SourceConfig struct {
	// Name identifies the source; it must match the name the collector or
	// store reports observations under.
	Name string
	// Required marks a source whose low trust must fail sensitive
	// instructions closed (enforced by the decision layers, not here).
	Required bool
}

// Config tunes an Engine. The zero value picks workable defaults.
type Config struct {
	// Threshold is the score below which a source counts untrusted
	// (default 0.5).
	Threshold float64
	// Decay multiplies the score once per violation (default 0.7); two
	// violations at the defaults cross the threshold.
	Decay float64
	// Recovery pulls a clean post-baseline observation's score toward 1
	// by this fraction of the remaining gap (default 0.1).
	Recovery float64
	// BaselineObs is how many observations seed the behavioral
	// fingerprint before cadence/step/drift/dwell checks arm (default 8).
	BaselineObs int
	// CadenceTolerance is the allowed report-interval ratio band around
	// the learned cadence, [1/tol, tol] (default 8).
	CadenceTolerance float64
	// StepTolerance scales the learned per-feature step envelope; a jump
	// beyond tol × the baseline envelope violates (default 4).
	StepTolerance float64
	// DriftTolerance scales the learned value envelope around the
	// baseline mean; a value beyond tol × the baseline spread violates
	// (default 4).
	DriftTolerance float64
	// StuckAfter is how many consecutive bit-identical observations count
	// as a frozen feed (default 8).
	StuckAfter int
	// DriftExempt lists features excluded from the drift envelope —
	// values that legitimately wander, like the fractional hour of day.
	// Nil defaults to {hour_of_day}; an empty non-nil slice exempts none.
	DriftExempt []sensor.Feature
	// Invariants is the cross-sensor consistency table; nil defaults to
	// DefaultInvariants(). An empty non-nil slice disables the table.
	Invariants []Invariant
	// Metrics, when non-nil, exports per-source score gauges (×1000) and
	// per-(source, rule) violation counters. Series are pre-registered so
	// the observation path never builds a label set.
	Metrics *obs.Registry
}

// Violation reports one failed check of one observation.
type Violation struct {
	Source string `json:"source"`
	Rule   string `json:"rule"`
	Detail string `json:"detail"`
}

// SourceTrust is one source's row in a trust report.
type SourceTrust struct {
	Name         string  `json:"name"`
	Required     bool    `json:"required"`
	Score        float64 `json:"score"`
	LowTrust     bool    `json:"low_trust"`
	Observations uint64  `json:"observations"`
	Violations   uint64  `json:"violations"`
}

// featState is the learned behavior of one feature of one source.
type featState struct {
	// Baseline accumulators (first BaselineObs observations).
	min, max, sum float64
	n             int
	maxStep       float64
	// last is the newest numeric value seen (valid when has).
	last float64
	has  bool
	// Frozen fingerprint, derived when the source's baseline completes.
	mean, spread, stepLimit float64
}

// sourceState holds one source's mutable trust state. Score and the
// low-trust flag are mirrored into atomics for the lock-free read side;
// everything else is guarded by the engine mutex.
type sourceState struct {
	name     string
	required bool

	score atomic.Uint64 // math.Float64bits of the score
	low   atomic.Uint32 // 1 when score < threshold

	obs        uint64
	violations uint64
	lastAt     time.Time
	lastVals   map[sensor.Feature]sensor.Value
	stuckRun   int
	// interval baseline: sum/count of deltas between timestamped
	// observations, frozen into meanInterval at baseline completion.
	intervalSum   float64
	intervalN     int
	meanInterval  float64
	feats         map[sensor.Feature]*featState
	baselineReady bool

	scoreGauge *obs.Gauge
	violCount  map[string]*obs.Counter // per rule, pre-registered
}

// Engine scores a fixed set of sources. Construct with NewEngine; the
// zero value is not usable.
type Engine struct {
	cfg        Config
	invariants []Invariant
	exempt     map[sensor.Feature]bool
	byName     map[string]int
	sources    []*sourceState

	mu sync.Mutex // serialises Observe
}

// NewEngine validates the configuration and builds an engine with every
// source at full trust.
func NewEngine(cfg Config, sources ...SourceConfig) (*Engine, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("trust: engine needs at least one source")
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.5
	}
	if cfg.Threshold <= 0 || cfg.Threshold >= 1 {
		return nil, fmt.Errorf("trust: threshold %v outside (0,1)", cfg.Threshold)
	}
	if cfg.Decay == 0 {
		cfg.Decay = 0.7
	}
	if cfg.Decay <= 0 || cfg.Decay >= 1 {
		return nil, fmt.Errorf("trust: decay %v outside (0,1)", cfg.Decay)
	}
	if cfg.Recovery == 0 {
		cfg.Recovery = 0.1
	}
	if cfg.Recovery < 0 || cfg.Recovery > 1 {
		return nil, fmt.Errorf("trust: recovery %v outside [0,1]", cfg.Recovery)
	}
	if cfg.BaselineObs <= 0 {
		cfg.BaselineObs = 8
	}
	if cfg.CadenceTolerance == 0 {
		cfg.CadenceTolerance = 8
	}
	if cfg.CadenceTolerance <= 1 {
		return nil, fmt.Errorf("trust: cadence tolerance %v must exceed 1", cfg.CadenceTolerance)
	}
	if cfg.StepTolerance == 0 {
		cfg.StepTolerance = 4
	}
	if cfg.StepTolerance <= 1 {
		return nil, fmt.Errorf("trust: step tolerance %v must exceed 1", cfg.StepTolerance)
	}
	if cfg.DriftTolerance == 0 {
		cfg.DriftTolerance = 4
	}
	if cfg.DriftTolerance <= 1 {
		return nil, fmt.Errorf("trust: drift tolerance %v must exceed 1", cfg.DriftTolerance)
	}
	if cfg.StuckAfter <= 0 {
		cfg.StuckAfter = 8
	}
	if cfg.DriftExempt == nil {
		cfg.DriftExempt = []sensor.Feature{sensor.FeatHour}
	}
	invariants := cfg.Invariants
	if invariants == nil {
		invariants = DefaultInvariants()
	}
	for i, iv := range invariants {
		if err := iv.validate(); err != nil {
			return nil, fmt.Errorf("trust: invariant %d: %w", i, err)
		}
	}
	e := &Engine{
		cfg:        cfg,
		invariants: invariants,
		exempt:     make(map[sensor.Feature]bool, len(cfg.DriftExempt)),
		byName:     make(map[string]int, len(sources)),
		sources:    make([]*sourceState, 0, len(sources)),
	}
	for _, f := range cfg.DriftExempt {
		e.exempt[f] = true
	}
	var scoreVec *obs.GaugeVec
	var violVec *obs.CounterVec
	if cfg.Metrics != nil {
		scoreVec = cfg.Metrics.NewGaugeVec(metricScore,
			"Per-source trust score scaled to 0..1000 (1000 = fully trusted).",
			"source")
		violVec = cfg.Metrics.NewCounterVec(metricViolations,
			"Trust violations per source and rule (behavioral fingerprint rules plus invariant names).",
			"source", "rule")
	}
	for i, sc := range sources {
		if sc.Name == "" {
			return nil, fmt.Errorf("trust: source %d has no name", i)
		}
		if _, dup := e.byName[sc.Name]; dup {
			return nil, fmt.Errorf("trust: duplicate source %q", sc.Name)
		}
		st := &sourceState{
			name:     sc.Name,
			required: sc.Required,
			feats:    make(map[sensor.Feature]*featState),
		}
		st.score.Store(math.Float64bits(1))
		if cfg.Metrics != nil {
			st.scoreGauge = scoreVec.With(sc.Name)
			st.scoreGauge.Set(1000)
			st.violCount = make(map[string]*obs.Counter, len(fingerprintRules)+len(invariants))
			for _, r := range fingerprintRules {
				st.violCount[r] = violVec.With(sc.Name, r)
			}
			for _, iv := range invariants {
				st.violCount[iv.Name] = violVec.With(sc.Name, iv.Name)
			}
		}
		e.byName[sc.Name] = i
		e.sources = append(e.sources, st)
	}
	return e, nil
}

// Len returns the number of declared sources.
func (e *Engine) Len() int { return len(e.sources) }

// Index resolves a source name to its engine index.
func (e *Engine) Index(name string) (int, bool) {
	i, ok := e.byName[name]
	return i, ok
}

// Sources lists the declared source names, in declaration order.
func (e *Engine) Sources() []string {
	out := make([]string, len(e.sources))
	for i, s := range e.sources {
		out[i] = s.name
	}
	return out
}

// Threshold returns the configured low-trust threshold.
func (e *Engine) Threshold() float64 { return e.cfg.Threshold }

// TrustedIdx reports whether source i's score is at or above the
// threshold. The hot read: one atomic load, no locks, no allocation.
//
//iot:hotpath
//iot:failclosed
func (e *Engine) TrustedIdx(i int) bool {
	return e.sources[i].low.Load() == 0
}

// ScoreIdx returns source i's current score.
//
//iot:hotpath
func (e *Engine) ScoreIdx(i int) float64 {
	return math.Float64frombits(e.sources[i].score.Load())
}

// Score returns the named source's score; ok is false for unknown names.
func (e *Engine) Score(name string) (float64, bool) {
	i, ok := e.byName[name]
	if !ok {
		return 0, false
	}
	return e.ScoreIdx(i), true
}

// Trusted reports whether the named source is at or above the threshold;
// unknown sources report false.
//
//iot:failclosed
func (e *Engine) Trusted(name string) bool {
	i, ok := e.byName[name]
	return ok && e.TrustedIdx(i)
}

// LowTrustRequired reports whether any required source is currently
// below the trust threshold — the health-degradation predicate.
//
//iot:failclosed
func (e *Engine) LowTrustRequired() bool {
	for _, s := range e.sources {
		if s.required && s.low.Load() != 0 {
			return true
		}
	}
	return false
}

// Report returns every source's trust row, in declaration order.
func (e *Engine) Report() []SourceTrust {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SourceTrust, len(e.sources))
	for i, s := range e.sources {
		out[i] = SourceTrust{
			Name:         s.name,
			Required:     s.required,
			Score:        math.Float64frombits(s.score.Load()),
			LowTrust:     s.low.Load() != 0,
			Observations: s.obs,
			Violations:   s.violations,
		}
	}
	return out
}

// Observe scores one observation from the named source: a poll result or
// a pushed delta, stamped with its event time (zero disables the timing
// checks for this observation). It returns the violations found, in a
// deterministic order; unknown sources are ignored and return nil.
//
// Observe serialises on the engine mutex; callers on decision paths
// should observe from their write side (collect bookkeeping, store
// publish) and keep reads on the atomic accessors.
func (e *Engine) Observe(source string, snap sensor.Snapshot, at time.Time) []Violation {
	i, ok := e.byName[source]
	if !ok {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.sources[i]

	var found []Violation
	report := func(rule, detail string) {
		found = append(found, Violation{Source: s.name, Rule: rule, Detail: detail})
		if c, ok := s.violCount[rule]; ok {
			c.Inc()
		}
	}

	// Timing fingerprint: replay first (active from the second
	// observation), then cadence once the baseline interval is learned.
	timed := !at.IsZero()
	if timed && !s.lastAt.IsZero() {
		if at.Before(s.lastAt) {
			report(RuleReplay, fmt.Sprintf("event time %s behind newest %s", at.Format(time.RFC3339Nano), s.lastAt.Format(time.RFC3339Nano)))
		} else if dt := at.Sub(s.lastAt).Seconds(); dt > 0 {
			if s.baselineReady && s.meanInterval > 0 {
				ratio := dt / s.meanInterval
				if ratio > e.cfg.CadenceTolerance || ratio < 1/e.cfg.CadenceTolerance {
					report(RuleCadence, fmt.Sprintf("interval %.3gs off learned cadence %.3gs", dt, s.meanInterval))
				}
			}
			if !s.baselineReady {
				s.intervalSum += dt
				s.intervalN++
			}
		}
	}

	// Per-feature value fingerprint, in sorted feature order so the
	// violation list and the score trajectory are scheduling-independent.
	feats := snap.Features()
	for _, f := range feats {
		v := snap.Values[f]
		if v.IsZero() {
			report(RuleMalformed, fmt.Sprintf("feature %s absent (null) value", f))
			continue
		}
		num, isNum := v.Numeric()
		if !isNum {
			continue
		}
		if math.IsNaN(num) || math.IsInf(num, 0) {
			report(RuleMalformed, fmt.Sprintf("feature %s non-finite value %v", f, num))
			continue
		}
		fs := s.feats[f]
		if fs == nil {
			fs = &featState{min: num, max: num}
			s.feats[f] = fs
		}
		if s.baselineReady && fs.n > 0 {
			// A feature must have contributed to the baseline to be
			// judged against it; late-appearing features only learn.
			if fs.has {
				if step := math.Abs(num - fs.last); step > fs.stepLimit {
					report(RuleStep, fmt.Sprintf("feature %s stepped %.4g, envelope %.4g", f, step, fs.stepLimit))
				}
			}
			if !e.exempt[f] {
				band := e.cfg.DriftTolerance * fs.spread
				if dev := math.Abs(num - fs.mean); dev > band {
					report(RuleDrift, fmt.Sprintf("feature %s at %.4g drifted %.4g from learned mean %.4g (band %.4g)", f, num, dev, fs.mean, band))
				}
			}
		}
		if !s.baselineReady {
			if fs.n == 0 {
				fs.min, fs.max = num, num
			} else {
				fs.min = math.Min(fs.min, num)
				fs.max = math.Max(fs.max, num)
			}
			if fs.has {
				fs.maxStep = math.Max(fs.maxStep, math.Abs(num-fs.last))
			}
			fs.sum += num
			fs.n++
		}
		fs.last = num
		fs.has = true
	}

	// Dwell fingerprint: a feed frozen bit-identical for too long is a
	// stuck-at spoof (or a dead cache — either way, not live physics).
	// Armed from the first observation: a source stuck from birth is
	// exactly as suspect as one that froze later.
	if len(snap.Values) > 0 && identicalValues(snap.Values, s.lastVals) {
		s.stuckRun++
		if s.stuckRun >= e.cfg.StuckAfter {
			report(RuleStuck, fmt.Sprintf("values bit-identical for %d consecutive reports", s.stuckRun+1))
		}
	} else {
		s.stuckRun = 0
	}

	// Cross-sensor invariant table, in declaration order.
	prev := sensor.Snapshot{Values: s.lastVals}
	for _, iv := range e.invariants {
		if violated, detail := iv.Eval(prev, snap); violated {
			report(iv.Name, detail)
		}
	}

	// Score update: every violation decays multiplicatively; a fully
	// clean post-baseline observation recovers a fraction of the gap.
	// Violations never increase the score, so a violating stream's
	// trajectory is monotone non-increasing.
	score := math.Float64frombits(s.score.Load())
	if len(found) > 0 {
		for range found {
			score *= e.cfg.Decay
		}
		s.violations += uint64(len(found))
	} else if s.baselineReady {
		score += e.cfg.Recovery * (1 - score)
	}
	if score < 0 {
		score = 0
	}
	if score > 1 {
		score = 1
	}
	s.score.Store(math.Float64bits(score))
	if score < e.cfg.Threshold {
		s.low.Store(1)
	} else {
		s.low.Store(0)
	}
	if s.scoreGauge != nil {
		s.scoreGauge.Set(int64(math.Round(score * 1000)))
	}

	// Advance the observation state.
	if timed && at.After(s.lastAt) {
		s.lastAt = at
	}
	if len(snap.Values) > 0 {
		vals := make(map[sensor.Feature]sensor.Value, len(snap.Values))
		for f, v := range snap.Values {
			vals[f] = v
		}
		s.lastVals = vals
	}
	s.obs++
	if !s.baselineReady && s.obs >= uint64(e.cfg.BaselineObs) {
		s.freezeBaseline(e.cfg.StepTolerance)
	}
	return found
}

// freezeBaseline derives the fingerprint envelopes from the accumulated
// baseline statistics; called once, under the engine mutex.
func (s *sourceState) freezeBaseline(stepTol float64) {
	if s.intervalN > 0 {
		s.meanInterval = s.intervalSum / float64(s.intervalN)
	}
	for _, fs := range s.feats {
		if fs.n == 0 {
			continue
		}
		fs.mean = fs.sum / float64(fs.n)
		fs.spread = fs.max - fs.min
		// Floors keep a flat baseline from arming hair-trigger envelopes:
		// a constant feature still tolerates jitter proportional to its
		// magnitude (or an absolute minimum for near-zero values).
		floor := math.Max(0.01*math.Abs(fs.mean), 0.05)
		if fs.spread < floor {
			fs.spread = floor
		}
		step := math.Max(fs.maxStep, fs.spread)
		fs.stepLimit = stepTol * step
	}
	s.baselineReady = true
}

// identicalValues reports whether two value maps carry exactly the same
// features with exactly equal values.
func identicalValues(a, b map[sensor.Feature]sensor.Value) bool {
	if len(a) != len(b) || b == nil {
		return false
	}
	for f, v := range a {
		if ov, ok := b[f]; !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}
