package trust

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"iotsid/internal/sensor"
)

// violating returns a snapshot guaranteed to break at least one range
// invariant, with seeded variety in which rule fires and what else rides
// along.
func violating(rng *rand.Rand, i int) (sensor.Snapshot, time.Time) {
	s, at := steady(i)
	switch rng.Intn(4) {
	case 0:
		s.Set(sensor.FeatAirQuality, sensor.Number(-1-rng.Float64()*100))
	case 1:
		s.Set(sensor.FeatHumidity, sensor.Number(101+rng.Float64()*50))
	case 2:
		s.Set(sensor.FeatTempIndoor, sensor.Number(200+rng.Float64()*100))
	default:
		s.Set(sensor.FeatOccupancy, sensor.Bool(false))
		s.Set(sensor.FeatMotion, sensor.Bool(true))
	}
	return s, at
}

// TestScoreMonotoneUnderViolations: as long as every observation
// violates, the score trajectory never increases — recovery must not
// leak into dirty observations. Property-checked over seeded streams.
func TestScoreMonotoneUnderViolations(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := newTestEngine(t, Config{BaselineObs: 2})
		prev := 1.0
		for i := 0; i < 64; i++ {
			s, at := violating(rng, i)
			v := e.Observe("sim", s, at)
			if len(v) == 0 {
				t.Fatalf("seed %d step %d: intended violation not detected", seed, i)
			}
			cur, _ := e.Score("sim")
			if cur > prev {
				t.Fatalf("seed %d step %d: score rose %v -> %v under violations", seed, i, prev, cur)
			}
			if cur < 0 || cur > 1 {
				t.Fatalf("seed %d step %d: score %v outside [0,1]", seed, i, cur)
			}
			prev = cur
		}
	}
}

// TestScoreRecoversUnderCleanStream: from any violated state, a clean
// stream monotonically climbs back above the threshold (and never past
// 1). The violations are replays — clean values with backwards
// timestamps — so the bad phase leaves no numeric discontinuity for the
// clean phase to trip over.
func TestScoreRecoversUnderCleanStream(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := newTestEngine(t, Config{BaselineObs: 2, Recovery: 0.1})
		warm(e, 4)
		nBad := 6 + rng.Intn(6)
		for i := 4; i < nBad; i++ {
			s, _ := steady(i)
			v := e.Observe("sim", s, t0.Add(-time.Duration(i+1)*5*time.Second))
			if !hasRule(v, RuleReplay) {
				t.Fatalf("seed %d: replay step %d not flagged: %+v", seed, i, v)
			}
		}
		low, _ := e.Score("sim")
		prev := low
		for i := nBad; i < nBad+200; i++ {
			s, at := steady(i)
			if v := e.Observe("sim", s, at); len(v) != 0 {
				t.Fatalf("seed %d: clean step %d violated: %+v", seed, i, v)
			}
			cur, _ := e.Score("sim")
			if cur < prev {
				t.Fatalf("seed %d step %d: score fell %v -> %v on clean stream", seed, i, prev, cur)
			}
			if cur > 1 {
				t.Fatalf("seed %d: score %v past 1", seed, cur)
			}
			prev = cur
		}
		final, _ := e.Score("sim")
		if final <= low || final < e.Threshold() {
			t.Fatalf("seed %d: clean stream recovered %v -> %v (threshold %v)", seed, low, final, e.Threshold())
		}
	}
}

// TestScoreFloorAtZero: even absurd violation counts keep the score a
// finite non-negative float (multiplicative decay underflows gracefully).
func TestScoreFloorAtZero(t *testing.T) {
	e := newTestEngine(t, Config{BaselineObs: 2})
	s, _ := steady(0)
	s.Set(sensor.FeatAirQuality, sensor.Number(-1))
	for i := 0; i < 20_000; i++ {
		e.Observe("sim", s, t0.Add(time.Duration(i)*time.Second))
	}
	sc, _ := e.Score("sim")
	if math.IsNaN(sc) || sc < 0 {
		t.Fatalf("score degenerated to %v", sc)
	}
}
