package seq

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"

	"iotsid/internal/dataset"
	"iotsid/internal/sensor"
)

// smallTrain is the shared test table: full default distribution, reduced
// volume so the suite stays fast.
func smallTrain(t *testing.T, workers int) *Set {
	t.Helper()
	set, err := Train(TrainConfig{Seed: 7, Sequences: 120, Events: 48, Workers: workers})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return set
}

// TestTrainDeterminism is the PR 2-pattern golden: training serially and
// with 8 workers must produce byte-identical serialized tables.
func TestTrainDeterminism(t *testing.T) {
	serial := smallTrain(t, 1)
	parallel := smallTrain(t, 8)
	if !bytes.Equal(serial.Serialize(), parallel.Serialize()) {
		t.Fatalf("serial and 8-worker training produced different tables")
	}
	// And a different seed must produce a different table — the golden is
	// not vacuous.
	other, err := Train(TrainConfig{Seed: 8, Sequences: 120, Events: 48})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if bytes.Equal(serial.Serialize(), other.Serialize()) {
		t.Fatalf("different seeds produced identical tables")
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(TrainConfig{Seed: 1, Events: 1, Sequences: 4}); err == nil {
		t.Fatalf("want error for single-event sequences")
	}
	if _, err := Train(TrainConfig{Seed: 1, Alpha: -1}); err == nil {
		t.Fatalf("want error for negative alpha")
	}
	if _, err := Train(TrainConfig{Seed: 1, Margin: -0.1}); err == nil {
		t.Fatalf("want error for negative margin")
	}
}

func TestSetModels(t *testing.T) {
	set := smallTrain(t, 0)
	if got, want := len(set.Models()), len(dataset.Models()); got != want {
		t.Fatalf("Models() = %d models, want %d", got, want)
	}
	if _, ok := set.Model(dataset.ModelWindow); !ok {
		t.Fatalf("window model missing from trained set")
	}
	if _, ok := set.Model(dataset.Model("nonsense")); ok {
		t.Fatalf("unknown model unexpectedly present")
	}
	win, _ := set.Model(dataset.ModelWindow)
	if win.Transitions() == 0 {
		t.Fatalf("window table has no transitions")
	}
}

func TestGapBucket(t *testing.T) {
	cases := []struct {
		sec  float64
		want int
	}{
		{0, GapInstant}, {4.9, GapInstant}, {-60, GapInstant}, {math.NaN(), GapInstant},
		{5, GapShort}, {119, GapShort},
		{120, GapMedium}, {1799, GapMedium},
		{1800, GapLong}, {math.Inf(1), GapLong},
	}
	for _, c := range cases {
		if got := GapBucket(c.sec); got != c.want {
			t.Errorf("GapBucket(%v) = %d, want %d", c.sec, got, c.want)
		}
	}
}

func TestEncodeExplicitTemporalFeatures(t *testing.T) {
	at := traceBase.Add(10 * time.Hour)
	snap := sensor.NewSnapshot(at)
	snap.Set(sensor.FeatHour, sensor.Number(10))
	snap.Set(sensor.FeatVoiceCmd, sensor.Bool(true))
	snap.Set(sensor.FeatOccupancy, sensor.Bool(true))

	derived := Encode(true, snap, 60, time.Hour)
	if got := int(derived>>gapShift) & 3; got != GapShort {
		t.Fatalf("derived gap bucket = %d, want %d", got, GapShort)
	}
	if derived&bitDwell == 0 {
		t.Fatalf("hour-long dwell should be established")
	}

	// Explicit features override the derived timeline.
	snap.Set(sensor.FeatInstrGap, sensor.Number(3600))
	snap.Set(sensor.FeatOccupancyDwell, sensor.Number(10))
	explicit := Encode(true, snap, 60, time.Hour)
	if got := int(explicit>>gapShift) & 3; got != GapLong {
		t.Fatalf("explicit gap bucket = %d, want %d", got, GapLong)
	}
	if explicit&bitDwell != 0 {
		t.Fatalf("10 s explicit dwell should not be established")
	}

	// NaN explicit values must stay inside the alphabet deterministically.
	snap.Set(sensor.FeatInstrGap, sensor.Number(math.NaN()))
	snap.Set(sensor.FeatOccupancyDwell, sensor.Number(math.NaN()))
	nan := Encode(true, snap, 60, time.Hour)
	if got := int(nan>>gapShift) & 3; got != GapInstant {
		t.Fatalf("NaN gap bucket = %d, want %d", got, GapInstant)
	}
	if nan&bitDwell != 0 {
		t.Fatalf("NaN dwell must not read as established")
	}
}

func TestSymbolString(t *testing.T) {
	s := bitSensitive | bitVoice | Symbol(2)<<hourShift | Symbol(GapShort)<<gapShift | bitDwell
	want := "sym(sens=1 voice=1 occ=0 hour=2 gap=1 dwell=1)"
	if got := s.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestLegalTraceShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	trace := LegalTrace(rng, 64, TraceHourLo, TraceHourHi)
	if len(trace) != 64 {
		t.Fatalf("trace length %d, want 64", len(trace))
	}
	sensitives := 0
	for i, e := range trace {
		if e.Hour < 0 || e.Hour >= 24 {
			t.Fatalf("event %d hour %v outside [0,24)", i, e.Hour)
		}
		if e.Sensitive {
			sensitives++
			if !e.Occupied || !e.Voice {
				t.Fatalf("event %d: sensitive while unoccupied or voiceless", i)
			}
		}
		if i > 0 {
			gap := e.At.Sub(trace[i-1].At)
			if gap < 30*time.Second {
				t.Fatalf("event %d gap %v below human pacing floor", i, gap)
			}
			if GapBucket(gap.Seconds()) == GapInstant {
				t.Fatalf("benign trace produced an instant gap")
			}
		}
	}
	if sensitives == 0 {
		t.Fatalf("trace has no sensitive events")
	}
	snap := trace[0].Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatalf("trace snapshot fails vocabulary validation: %v", err)
	}
}

// TestAdmitMatchesObserveJudge: the training fold (Admit) and the runtime
// admit path (ObserveJudge on benign traffic) must produce the same symbol
// stream — otherwise the trained table and the runtime judge silently
// diverge.
func TestAdmitMatchesObserveJudge(t *testing.T) {
	set := smallTrain(t, 0)
	rng := rand.New(rand.NewSource(11))
	trace := LegalTrace(rng, 40, TraceHourLo, TraceHourHi)

	var train Tracker
	trainSyms := make([]Symbol, 0, len(trace))
	for _, e := range trace {
		trainSyms = append(trainSyms, train.Admit(e.Sensitive, e.Snapshot(), e.At))
	}

	var run Tracker
	for i, e := range trace {
		v := set.ObserveJudge(&run, dataset.ModelWindow, e.Sensitive, true, e.Snapshot(), e.At)
		if v.Anomalous {
			t.Fatalf("benign event %d flagged anomalous (min LL %v)", i, v.MinLL)
		}
	}
	if run.Len() != train.Len() {
		t.Fatalf("runtime tracker admitted %d events, training fold %d", run.Len(), train.Len())
	}
	for i := 0; i < histCap && i < len(trainSyms); i++ {
		if run.hist[i] != train.hist[i] {
			t.Fatalf("ring slot %d diverged: runtime %v, training %v", i, run.hist[i], train.hist[i])
		}
	}
}

// TestHeldOutAvailability replays held-out benign days (seeds disjoint
// from training) through the judge: zero sensitive events may be flagged.
// This is the package-level availability guarantee the eval campaign's
// 100 % clean availability rests on.
func TestHeldOutAvailability(t *testing.T) {
	set := smallTrain(t, 0)
	flagged, fired := 0, 0
	for s := int64(0); s < 40; s++ {
		rng := rand.New(rand.NewSource(500_000 + s))
		var tr Tracker
		for _, e := range LegalTrace(rng, 48, TraceHourLo, TraceHourHi) {
			v := set.ObserveJudge(&tr, dataset.ModelWindow, e.Sensitive, true, e.Snapshot(), e.At)
			if e.Sensitive {
				fired++
				if v.Anomalous {
					flagged++
				}
			}
		}
	}
	if fired == 0 {
		t.Fatalf("no sensitive events fired")
	}
	if flagged != 0 {
		t.Fatalf("held-out benign traffic flagged %d/%d sensitive events", flagged, fired)
	}
}

// chainStep appends one benign same-tick filler via ObserveJudge (the
// automation-chain shape: non-sensitive events are observed, never
// sequence-blocked).
func TestChainAttackFlagged(t *testing.T) {
	set := smallTrain(t, 0)
	var tr Tracker
	rng := rand.New(rand.NewSource(21))
	trace := LegalTrace(rng, 20, TraceHourLo, TraceHourHi)
	for _, e := range trace {
		set.ObserveJudge(&tr, dataset.ModelWindow, e.Sensitive, true, e.Snapshot(), e.At)
	}
	last := trace[len(trace)-1]

	// The cascade: three same-tick benign fillers, then the sensitive
	// action, all sharing one trigger instant.
	burstAt := last.At.Add(45 * time.Second)
	burst := TraceEvent{At: burstAt, Hour: last.Hour, Voice: true, Occupied: true}
	for i := 0; i < 3; i++ {
		v := set.ObserveJudge(&tr, "", false, true, burst.Snapshot(), burstAt)
		if v.Anomalous || v.Judged {
			t.Fatalf("non-sensitive filler %d must be observed, not judged", i)
		}
	}
	before := tr.Len()
	v := set.ObserveJudge(&tr, dataset.ModelWindow, true, true, burst.Snapshot(), burstAt)
	if !v.Judged || !v.Anomalous {
		t.Fatalf("chain-final sensitive action not flagged: %+v", v)
	}
	if v.BadTransitions == 0 || v.MinLL >= 0 {
		t.Fatalf("verdict carries no evidence: %+v", v)
	}
	if tr.Len() != before {
		t.Fatalf("rejected event was appended to history")
	}
}

// TestReplayAttackFlagged: a re-stamped stale context whose hour-of-day
// bucket jumps backward is anomalous — and stays anomalous on repeat,
// because rejected events never enter the history.
func TestReplayAttackFlagged(t *testing.T) {
	set := smallTrain(t, 0)
	var tr Tracker
	rng := rand.New(rand.NewSource(33))
	trace := LegalTrace(rng, 16, 12, 18)
	for _, e := range trace {
		set.ObserveJudge(&tr, dataset.ModelWindow, e.Sensitive, true, e.Snapshot(), e.At)
	}
	last := trace[len(trace)-1]
	replayHour := ReplayHour(last.Hour)
	for k := 0; k < 4; k++ {
		at := last.At.Add(time.Duration(45+15*k) * time.Second)
		replay := TraceEvent{At: at, Hour: replayHour, Voice: true, Occupied: true}
		v := set.ObserveJudge(&tr, dataset.ModelWindow, true, true, replay.Snapshot(), at)
		if !v.Anomalous {
			t.Fatalf("replay fire %d not flagged (current hour %v, replayed %v)", k, last.Hour, replayHour)
		}
	}
}

func TestReplayHourAlwaysSeparable(t *testing.T) {
	for h := 0.0; h < 24; h += 0.5 {
		cur := sensor.TimeBucketIndex(h)
		tgt := sensor.TimeBucketIndex(ReplayHour(h))
		if tgt == cur {
			t.Fatalf("ReplayHour(%v) lands in the current bucket", h)
		}
		if tgt == (cur+1)%sensor.TimeBucketCount {
			t.Fatalf("ReplayHour(%v) lands forward-adjacent (trainable crossing)", h)
		}
		rh := ReplayHour(h)
		if rh < 6 || rh > 23.5 {
			t.Fatalf("ReplayHour(%v) = %v outside the voice-legal hour range", h, rh)
		}
	}
}

func TestColdStartAllows(t *testing.T) {
	set := smallTrain(t, 0)
	var tr Tracker
	e := TraceEvent{At: traceBase.Add(10 * time.Hour), Hour: 10, Voice: true, Occupied: true}
	v := set.ObserveJudge(&tr, dataset.ModelWindow, true, true, e.Snapshot(), e.At)
	if v.Judged || v.Anomalous {
		t.Fatalf("cold-start sensitive event must not be judged: %+v", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("cold-start event not admitted")
	}
}

func TestDisallowedAndUnknownModelPaths(t *testing.T) {
	set := smallTrain(t, 0)
	var tr Tracker
	e := TraceEvent{At: traceBase.Add(10 * time.Hour), Hour: 10, Voice: true, Occupied: true}
	// A tree-rejected instruction is neither judged nor admitted.
	if v := set.ObserveJudge(&tr, dataset.ModelWindow, true, false, e.Snapshot(), e.At); v.Judged || v.Anomalous {
		t.Fatalf("disallowed event judged: %+v", v)
	}
	if tr.Len() != 0 {
		t.Fatalf("disallowed event admitted")
	}
	// Sensitive but no trained table for the model: admitted, not judged.
	set.ObserveJudge(&tr, "", false, true, e.Snapshot(), e.At)
	if v := set.ObserveJudge(&tr, dataset.Model("mystery"), true, true, e.Snapshot(), e.At.Add(time.Minute)); v.Judged {
		t.Fatalf("unknown model judged: %+v", v)
	}
	if tr.Len() != 2 {
		t.Fatalf("unknown-model events not admitted, len=%d", tr.Len())
	}
}

func TestSerializeStable(t *testing.T) {
	set := smallTrain(t, 0)
	if !bytes.Equal(set.Serialize(), set.Serialize()) {
		t.Fatalf("Serialize is not stable")
	}
	if !bytes.HasPrefix(set.Serialize(), []byte("seq-table v1")) {
		t.Fatalf("serialized header missing")
	}
}

func TestLogLikelihoodOrdering(t *testing.T) {
	set := smallTrain(t, 0)
	win, _ := set.Model(dataset.ModelWindow)
	// Find a seen transition and verify it clears its row gate while an
	// unseen one in the same row falls below it.
	for r := 0; r < SymbolSpace; r++ {
		if win.rowTotal[r] == 0 {
			continue
		}
		var seen, unseen = -1, -1
		for c := 0; c < SymbolSpace; c++ {
			if win.counts[r*SymbolSpace+c] > 0 {
				seen = c
			} else {
				unseen = c
			}
		}
		if seen < 0 || unseen < 0 {
			continue
		}
		if win.anomalous(Symbol(r), Symbol(seen)) {
			t.Fatalf("seen transition (%d→%d) flagged anomalous", r, seen)
		}
		if !win.anomalous(Symbol(r), Symbol(unseen)) {
			t.Fatalf("unseen transition (%d→%d) not flagged", r, unseen)
		}
		if win.LogLikelihood(Symbol(r), Symbol(unseen)) >= win.LogLikelihood(Symbol(r), Symbol(seen)) {
			t.Fatalf("unseen transition scored above a seen one in the same row")
		}
		return
	}
	t.Fatalf("no populated row found")
}
