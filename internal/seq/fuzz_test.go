package seq

import (
	"bytes"
	"math"
	"testing"
	"time"

	"iotsid/internal/dataset"
	"iotsid/internal/sensor"
)

// FuzzSequenceObserve drives ObserveJudge over adversarial three-event
// streams: NaN/Inf hours and temporal features, out-of-order and zero
// timestamps, unknown device models, rejected events. The judge must be
// total (no panics), deterministic (two trackers fed the same stream land
// on bit-identical verdicts and history depth), and read-only with
// respect to the trained table (Serialize is byte-identical before and
// after any stream).
func FuzzSequenceObserve(f *testing.F) {
	f.Add(12.5, 30.0, 600.0, true, true, true, true, int64(1_000_000_000), int64(2_000_000_000), int64(3_000_000_000), int64(0))
	f.Add(math.NaN(), math.Inf(1), math.NaN(), false, true, true, false, int64(3), int64(2), int64(1), int64(7))
	f.Add(-24.0, -1.0, math.Inf(-1), true, false, false, true, int64(0), int64(0), int64(0), int64(-1))
	f.Add(1e308, -1e308, 0.0, true, true, true, true, int64(-5), int64(1_600_000_000_000_000_000), int64(5), int64(2))

	set, err := Train(TrainConfig{Seed: 11, Sequences: 24, Events: 24, Models: dataset.Models()[:1]})
	if err != nil {
		f.Fatal(err)
	}
	golden := set.Serialize()
	trained := dataset.Models()[0]

	f.Fuzz(func(t *testing.T, hour, gapRaw, dwellRaw float64, voice, occ, sensitive, allowed bool, at1, at2, at3, modelSel int64) {
		m := trained
		if modelSel%2 != 0 {
			m = dataset.Model("ghost_model") // no table: observed, never judged
		}
		ts := func(n int64) time.Time {
			if n == 0 {
				return time.Time{}
			}
			return time.Unix(0, n)
		}
		times := [3]time.Time{ts(at1), ts(at2), ts(at3)} // fuzzer-ordered: may run backwards
		mk := func(i int) sensor.Snapshot {
			snap := sensor.NewSnapshot(times[i])
			h := hour
			switch i {
			case 1:
				h = -h
			case 2:
				h *= 1e6
			}
			snap.Set(sensor.FeatHour, sensor.Number(h))
			snap.Set(sensor.FeatVoiceCmd, sensor.Bool(voice))
			if i != 1 { // event 1 omits occupancy entirely
				snap.Set(sensor.FeatOccupancy, sensor.Bool(occ != (i == 2)))
			}
			if i == 0 { // explicit temporal overrides on the first event
				snap.Set(sensor.FeatInstrGap, sensor.Number(gapRaw))
				snap.Set(sensor.FeatOccupancyDwell, sensor.Number(dwellRaw))
			}
			return snap
		}
		run := func() ([3]Verdict, uint64) {
			var tr Tracker
			var out [3]Verdict
			for i := 0; i < 3; i++ {
				out[i] = set.ObserveJudge(&tr, m, sensitive != (i == 1), allowed != (i == 2), mk(i), times[i])
			}
			return out, tr.Len()
		}
		a, alen := run()
		b, blen := run()
		if alen != blen {
			t.Fatalf("same stream, different history depth: %d vs %d", alen, blen)
		}
		for i := range a {
			if a[i].Judged != b[i].Judged || a[i].Anomalous != b[i].Anomalous ||
				a[i].BadTransitions != b[i].BadTransitions ||
				math.Float64bits(a[i].MinLL) != math.Float64bits(b[i].MinLL) {
				t.Fatalf("event %d: same stream, different verdicts: %+v vs %+v", i, a[i], b[i])
			}
			if a[i].Anomalous && !a[i].Judged {
				t.Fatalf("event %d anomalous without being judged: %+v", i, a[i])
			}
			if a[i].Judged && math.IsNaN(a[i].MinLL) {
				t.Fatalf("event %d: judged window scored NaN: %+v", i, a[i])
			}
		}
		if alen > 3 {
			t.Fatalf("tracker admitted %d events from a 3-event stream", alen)
		}
		if got := set.Serialize(); !bytes.Equal(got, golden) {
			t.Fatal("observation stream mutated the trained table")
		}
	})
}
