// Package seq is the temporal second detection axis (ROADMAP item 1): a
// deterministic per-device-model Markov model over discretized
// (instruction, context-bucket) events, in the spirit of 6thSense's
// Markov-chain detection over sensor-state sequences.
//
// Every judged event is discretized into an 8-bit Symbol — sensitivity,
// voice command, occupancy, time-of-day bucket, inter-instruction gap
// bucket and occupancy-dwell bucket — and a first-order transition table
// with Laplace smoothing scores how surprising the recent symbol
// transitions are. A sensitive instruction must pass BOTH the compiled
// context tree and this sequence judge (fail-closed combination): the
// static tree answers "is this context a legal scene", the sequence judge
// answers "did we arrive at this context the way legal traffic does".
// That closes the two holes static context cannot see — benign-looking
// automation chains that end in a sensitive action, and replayed stale
// contexts re-stamped fresh.
//
// Determinism contract: training fans out over internal/par with every
// unit's seed pre-derived from (base seed, unit index), partial counts
// merged in unit order — the serialized table is bit-identical at any
// worker count. Runtime judging is pure integer/float arithmetic over a
// fixed-size table: no wall clock, no global rand, no allocation.
package seq

import (
	"fmt"
	"math"
	"sync"
	"time"

	"iotsid/internal/dataset"
	"iotsid/internal/sensor"
)

// Symbol is one discretized (instruction, context-bucket) event.
//
// Bit layout:
//
//	bit 0    — instruction is sensitive
//	bit 1    — voice command present in the context
//	bit 2    — home occupied
//	bits 3-4 — time-of-day bucket (sensor.TimeBucketIndex)
//	bits 5-6 — inter-instruction gap bucket (GapBucket)
//	bit 7    — occupancy dwell established (state held ≥ DwellEstablished)
type Symbol uint8

// SymbolSpace is the alphabet size; transition tables are SymbolSpace².
const SymbolSpace = 256

// Symbol bit layout constants.
const (
	bitSensitive Symbol = 1 << 0
	bitVoice     Symbol = 1 << 1
	bitOccupied  Symbol = 1 << 2
	hourShift           = 3 // 2 bits
	gapShift            = 5 // 2 bits
	bitDwell     Symbol = 1 << 7
)

// Inter-instruction gap buckets. "Instant" (same-tick automation cascades)
// never occurs in human-paced legal traffic — it is the automation-chain
// signature the gap dimension exists to expose.
const (
	GapInstant = iota // < 5 s
	GapShort          // < 2 min
	GapMedium         // < 30 min
	GapLong           // ≥ 30 min (and the no-predecessor default)
)

// Gap bucket boundaries in seconds, and the dwell threshold separating a
// freshly flipped occupancy state from an established one.
const (
	gapInstantMax    = 5.0
	gapShortMax      = 120.0
	gapMediumMax     = 1800.0
	DwellEstablished = 5 * time.Minute
)

// GapBucket quantizes an inter-instruction gap (seconds) into its bucket.
// Negative gaps (out-of-order event times) are deliberately classed
// instant: time running backwards is at best a replayed stream. NaN lands
// in instant too — a malformed gap must map into the alphabet, never
// corrupt it.
//
//iot:hotpath
func GapBucket(seconds float64) int {
	switch {
	case seconds < gapInstantMax || seconds != seconds: // incl. NaN, negative
		return GapInstant
	case seconds < gapShortMax:
		return GapShort
	case seconds < gapMediumMax:
		return GapMedium
	default:
		return GapLong
	}
}

// Encode discretizes one observation. gapSeconds and dwell are the
// tracker-derived temporal features; a snapshot that carries the explicit
// temporal features (sensor.FeatInstrGap / sensor.FeatOccupancyDwell —
// a gateway pushing its own timeline) overrides the derived values.
//
//iot:hotpath
func Encode(sensitive bool, snap sensor.Snapshot, gapSeconds float64, dwell time.Duration) Symbol {
	var s Symbol
	if sensitive {
		s |= bitSensitive
	}
	if snap.Bool(sensor.FeatVoiceCmd) {
		s |= bitVoice
	}
	if snap.Bool(sensor.FeatOccupancy) {
		s |= bitOccupied
	}
	if hour, ok := snap.Number(sensor.FeatHour); ok {
		s |= Symbol(sensor.TimeBucketIndex(hour)) << hourShift
	}
	if g, ok := snap.Number(sensor.FeatInstrGap); ok {
		gapSeconds = g
	}
	s |= Symbol(GapBucket(gapSeconds)) << gapShift
	established := dwell >= DwellEstablished
	if d, ok := snap.Number(sensor.FeatOccupancyDwell); ok {
		established = !(d != d) && d >= DwellEstablished.Seconds()
	}
	if established {
		s |= bitDwell
	}
	return s
}

// coarseSpace is the backoff alphabet: the load-bearing symbol bits —
// sensitivity (1), time-of-day bucket (2) and an "instant gap" bit (1) —
// projected into 4 bits. Benign traffic's support over coarse
// transitions is tiny (same-or-forward-adjacent hour moves, never
// same-tick), so training covers it completely; the attack signatures
// (instant gap, backward or two-bucket hour jump) stay outside it at any
// training volume.
const coarseSpace = 16

// coarse projects a symbol onto the backoff alphabet.
//
//iot:hotpath
func coarse(s Symbol) int {
	instant := 0
	if (s>>gapShift)&3 == GapInstant {
		instant = 1
	}
	return int(s&bitSensitive) | int((s>>hourShift)&3)<<1 | instant<<3
}

// Model is one device model's first-order Markov transition table with
// Laplace smoothing, per-row log-likelihood gates, and coarse backoff.
//
// A transition seen in training is never anomalous (its smoothed score
// clears the row gate by construction). An unseen transition backs off to
// the coarse projection — Katz-style: full-resolution evidence when the
// table has it, the coarse table's verdict for the combinatorial tail.
// At the coarse level a transition is anomalous when its predecessor row
// was never observed or its smoothed log-likelihood falls below the
// row's gate (the lowest log-likelihood observed in training minus a
// fixed margin — within a row every unseen transition scores ≈ log 3
// below the rarest seen one at α = 0.5, so the margin separates
// robustly).
type Model struct {
	counts   []uint32 // SymbolSpace × SymbolSpace, row-major
	rowTotal [SymbolSpace]uint64
	rowGate  [SymbolSpace]float64 // NaN: row unseen in training

	coarseCounts [coarseSpace * coarseSpace]uint32
	coarseTotal  [coarseSpace]uint64
	coarseGate   [coarseSpace]float64

	alpha  float64
	margin float64
}

// newModel allocates an empty table.
func newModel(alpha, margin float64) *Model {
	m := &Model{
		counts: make([]uint32, SymbolSpace*SymbolSpace),
		alpha:  alpha,
		margin: margin,
	}
	for i := range m.rowGate {
		m.rowGate[i] = math.NaN()
	}
	for i := range m.coarseGate {
		m.coarseGate[i] = math.NaN()
	}
	return m
}

// add records one observed transition.
func (m *Model) add(from, to Symbol) {
	m.counts[int(from)*SymbolSpace+int(to)]++
	m.rowTotal[from]++
}

// finalize derives the coarse backoff table from the merged counts and
// computes the per-row gates at both resolutions.
func (m *Model) finalize() {
	for i := range m.coarseCounts {
		m.coarseCounts[i] = 0
	}
	for i := range m.coarseTotal {
		m.coarseTotal[i] = 0
	}
	for r := 0; r < SymbolSpace; r++ {
		for c := 0; c < SymbolSpace; c++ {
			if n := m.counts[r*SymbolSpace+c]; n > 0 {
				cf, ct := coarse(Symbol(r)), coarse(Symbol(c))
				m.coarseCounts[cf*coarseSpace+ct] += n
				m.coarseTotal[cf] += uint64(n)
			}
		}
	}
	for r := 0; r < SymbolSpace; r++ {
		if m.rowTotal[r] == 0 {
			m.rowGate[r] = math.NaN()
			continue
		}
		minLL := math.Inf(1)
		for c := 0; c < SymbolSpace; c++ {
			if n := m.counts[r*SymbolSpace+c]; n > 0 {
				if ll := m.logLikelihood(Symbol(r), Symbol(c)); ll < minLL {
					minLL = ll
				}
			}
		}
		m.rowGate[r] = minLL - m.margin
	}
	for r := 0; r < coarseSpace; r++ {
		if m.coarseTotal[r] == 0 {
			m.coarseGate[r] = math.NaN()
			continue
		}
		minLL := math.Inf(1)
		for c := 0; c < coarseSpace; c++ {
			if m.coarseCounts[r*coarseSpace+c] > 0 {
				if ll := m.coarseLL(r, c); ll < minLL {
					minLL = ll
				}
			}
		}
		m.coarseGate[r] = minLL - m.margin
	}
}

// logLikelihood is the Laplace-smoothed full-resolution transition
// log-probability.
//
//iot:hotpath
func (m *Model) logLikelihood(from, to Symbol) float64 {
	c := float64(m.counts[int(from)*SymbolSpace+int(to)])
	t := float64(m.rowTotal[from])
	return math.Log((c + m.alpha) / (t + m.alpha*SymbolSpace))
}

// coarseLL is the Laplace-smoothed backoff transition log-probability.
//
//iot:hotpath
func (m *Model) coarseLL(from, to int) float64 {
	c := float64(m.coarseCounts[from*coarseSpace+to])
	t := float64(m.coarseTotal[from])
	return math.Log((c + m.alpha) / (t + m.alpha*coarseSpace))
}

// LogLikelihood exposes the smoothed full-resolution score (reports,
// tests).
func (m *Model) LogLikelihood(from, to Symbol) float64 { return m.logLikelihood(from, to) }

// anomalous reports whether one transition falls outside the trained
// profile: seen at full resolution → benign; otherwise the coarse
// backoff decides.
//
//iot:hotpath
func (m *Model) anomalous(from, to Symbol) bool {
	if gate := m.rowGate[from]; gate == gate { // row seen at full resolution
		if m.logLikelihood(from, to) >= gate {
			return false // transition itself seen in training
		}
	}
	cf, ct := coarse(from), coarse(to)
	gate := m.coarseGate[cf]
	if gate != gate { // NaN: predecessor coarse state never seen
		return true
	}
	return m.coarseLL(cf, ct) < gate
}

// Transitions reports how many distinct transitions the model observed —
// a coverage statistic for reports and training sanity checks.
func (m *Model) Transitions() int {
	n := 0
	for _, c := range m.counts {
		if c > 0 {
			n++
		}
	}
	return n
}

// Set holds the trained per-device-model tables. It is immutable after
// training and safe for concurrent use by any number of trackers.
type Set struct {
	models map[dataset.Model]*Model
	alpha  float64
	margin float64
}

// Model returns one device model's table.
func (s *Set) Model(m dataset.Model) (*Model, bool) {
	mod, ok := s.models[m]
	return mod, ok
}

// Models lists the trained device models in dataset order.
func (s *Set) Models() []dataset.Model {
	out := make([]dataset.Model, 0, len(s.models))
	for _, m := range dataset.Models() {
		if _, ok := s.models[m]; ok {
			out = append(out, m)
		}
	}
	return out
}

// histCap bounds the per-home event history ring. The judge window only
// reaches judgeWindow symbols back, so a small fixed ring suffices; the
// append is a fixed array write, which is what keeps the steady-state
// authorize path allocation-free.
const histCap = 16

// judgeWindow is how many trailing symbols (including the new event) the
// sequence judge scores. Scoring a short window rather than only the
// newest transition catches chains whose poisoned step is the benign
// filler just before the sensitive action.
const judgeWindow = 4

// Tracker is one home's bounded event history: the symbol ring plus the
// state the temporal features derive from (last event time, occupancy
// dwell). The zero value is ready to use; all methods on Set lock it
// internally, so pushes and authorizes may race freely.
type Tracker struct {
	mu     sync.Mutex
	hist   [histCap]Symbol
	n      uint64 // total admitted events
	lastAt time.Time
	occ    bool
	occAt  time.Time
}

// Len reports how many events the tracker has admitted.
func (t *Tracker) Len() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Verdict is the sequence judge's output for one observation.
type Verdict struct {
	// Judged is true when a trained table existed for the instruction's
	// model and the history was deep enough to score at least one
	// transition.
	Judged bool
	// Anomalous is true when any transition in the judge window fell
	// outside the trained profile. The caller combines fail-closed: an
	// anomalous sensitive instruction is rejected even though the static
	// tree allowed it.
	Anomalous bool
	// BadTransitions counts the window transitions that scored anomalous.
	BadTransitions int
	// MinLL is the lowest transition log-likelihood in the window (0 when
	// nothing was scored).
	MinLL float64
}

// ObserveJudge is the single hot-path entry point: it discretizes the
// event, judges a sensitive instruction's recent transition window against
// model m's table, and — only when the event is admitted (allowed and not
// anomalous) — appends it to the history ring.
//
// Rejected events are never appended: a blocked instruction did not
// execute, and recording it would let an attacker normalize the very
// stream that convicted them (the second replay would be judged against a
// history already poisoned by the first).
//
// The tracker state update (gap, dwell) and the ring write are fixed-size
// operations under the tracker's mutex — no allocation, no map growth.
//
//iot:hotpath
//iot:failclosed
func (s *Set) ObserveJudge(tr *Tracker, m dataset.Model, sensitive, allowed bool, snap sensor.Snapshot, at time.Time) Verdict {
	if !allowed {
		return Verdict{}
	}
	tr.mu.Lock()

	// Derive the temporal features from the tracker's timeline.
	gapSeconds := math.Inf(1) // no predecessor: GapLong
	if tr.n > 0 {
		gapSeconds = at.Sub(tr.lastAt).Seconds()
	}
	occ := snap.Bool(sensor.FeatOccupancy)
	occAt := tr.occAt
	if tr.n == 0 || occ != tr.occ {
		occAt = at
	}
	dwell := at.Sub(occAt)

	sym := Encode(sensitive, snap, gapSeconds, dwell)

	var v Verdict
	if sensitive {
		if mod, ok := s.models[m]; ok {
			v = s.judgeLocked(tr, mod, sym)
		}
	}
	if !v.Anomalous { // commit on admit only: a rejected event leaves no trace
		tr.occ = occ
		tr.occAt = occAt
		tr.hist[tr.n%histCap] = sym
		tr.n++
		tr.lastAt = at
	}
	tr.mu.Unlock()
	return v
}

// judgeLocked scores the transition window ending in sym. Caller holds
// tr.mu.
//
//iot:hotpath
func (s *Set) judgeLocked(tr *Tracker, mod *Model, sym Symbol) Verdict {
	depth := tr.n
	if depth > judgeWindow-1 {
		depth = judgeWindow - 1
	}
	if depth == 0 {
		// Cold start: no history yet, nothing to score. The static tree
		// still stands alone here — the documented availability choice.
		return Verdict{}
	}
	v := Verdict{Judged: true, MinLL: math.Inf(1)}
	// Walk the last `depth` admitted symbols oldest-first, ending at sym.
	prev := tr.hist[(tr.n-depth)%histCap]
	for i := uint64(1); i <= depth; i++ {
		var cur Symbol
		if i == depth {
			cur = sym
		} else {
			cur = tr.hist[(tr.n-depth+i)%histCap]
		}
		if ll := mod.logLikelihood(prev, cur); ll < v.MinLL {
			v.MinLL = ll
		}
		if mod.anomalous(prev, cur) {
			v.BadTransitions++
		}
		prev = cur
	}
	v.Anomalous = v.BadTransitions > 0
	return v
}

// String renders a symbol for diagnostics.
func (s Symbol) String() string {
	return fmt.Sprintf("sym(sens=%d voice=%d occ=%d hour=%d gap=%d dwell=%d)",
		b2i(s&bitSensitive != 0), b2i(s&bitVoice != 0), b2i(s&bitOccupied != 0),
		int(s>>hourShift)&3, int(s>>gapShift)&3, b2i(s&bitDwell != 0))
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
