package seq

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"time"

	"iotsid/internal/dataset"
	"iotsid/internal/par"
	"iotsid/internal/sensor"
)

// traceBase anchors simulated benign days; only hour-of-day and the gaps
// between events matter to the symbols.
var traceBase = time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC)

// Default training-trace start-hour window. Benign days start in waking
// hours and advance from there; the hour feature then moves strictly
// forward, so a trained table contains only forward-adjacent time-bucket
// crossings — which is exactly what makes a replayed backward (or
// two-bucket) hour jump separable.
const (
	TraceHourLo = 8
	TraceHourHi = 18
)

// TraceEvent is one simulated benign home event: the instruction's
// sensitivity plus the context bits the sequence symbols discretize.
type TraceEvent struct {
	At        time.Time
	Hour      float64
	Voice     bool
	Occupied  bool
	Sensitive bool
}

// Snapshot renders the event's minimal sensor context, stamped with its
// event time.
func (e TraceEvent) Snapshot() sensor.Snapshot {
	snap := sensor.NewSnapshot(e.At)
	snap.Set(sensor.FeatHour, sensor.Number(e.Hour))
	snap.Set(sensor.FeatVoiceCmd, sensor.Bool(e.Voice))
	snap.Set(sensor.FeatOccupancy, sensor.Bool(e.Occupied))
	snap.Set(sensor.FeatMotion, sensor.Bool(true))
	return snap
}

// LegalTrace simulates one temporally coherent benign event stream of n
// events: human-paced gaps (never same-tick), an hour-of-day that advances
// with the gaps, mostly stable occupancy with occasional flips, sensitive
// instructions only while occupied and always voice-commanded (the legal
// "voice-commanded" activity family). The eval layer's clean campaign
// phases draw from this same generator, so benign runtime traffic and the
// trained profile share one distribution.
func LegalTrace(rng *rand.Rand, n int, startLo, startHi float64) []TraceEvent {
	hour := startLo + rng.Float64()*(startHi-startLo)
	at := traceBase.Add(time.Duration(hour * float64(time.Hour)))
	occupied := true
	out := make([]TraceEvent, 0, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			gap := sampleGap(rng)
			at = at.Add(gap)
			hour += gap.Hours()
			for hour >= 24 {
				hour -= 24
			}
		}
		if rng.Float64() < 0.06 {
			occupied = !occupied
		}
		sensitive := occupied && rng.Float64() < 0.35
		voice := sensitive || rng.Float64() < 0.3
		out = append(out, TraceEvent{At: at, Hour: hour, Voice: voice, Occupied: occupied, Sensitive: sensitive})
	}
	return out
}

// sampleGap draws a human-paced inter-instruction gap: short (30 s–2 min),
// medium (3–27 min) or long (35 min–2.6 h). The instant bucket (< 5 s) is
// deliberately unreachable — same-tick cascades are the automation-chain
// signature, not benign behavior.
func sampleGap(rng *rand.Rand) time.Duration {
	r := rng.Float64()
	switch {
	case r < 0.4:
		return time.Duration((30 + 90*rng.Float64()) * float64(time.Second))
	case r < 0.8:
		return time.Duration((180 + 1440*rng.Float64()) * float64(time.Second))
	default:
		return time.Duration((2100 + 7200*rng.Float64()) * float64(time.Second))
	}
}

// Admit discretizes and appends one event unconditionally — the training
// path's fold (no table to judge against yet). It derives the temporal
// features exactly like ObserveJudge's admit path, so the trained table
// and the runtime judge speak the same symbols.
func (t *Tracker) Admit(sensitive bool, snap sensor.Snapshot, at time.Time) Symbol {
	t.mu.Lock()
	gapSeconds := math.Inf(1)
	if t.n > 0 {
		gapSeconds = at.Sub(t.lastAt).Seconds()
	}
	occ := snap.Bool(sensor.FeatOccupancy)
	occAt := t.occAt
	if t.n == 0 || occ != t.occ {
		occAt = at
	}
	sym := Encode(sensitive, snap, gapSeconds, at.Sub(occAt))
	t.occ = occ
	t.occAt = occAt
	t.hist[t.n%histCap] = sym
	t.n++
	t.lastAt = at
	t.mu.Unlock()
	return sym
}

// WindowScene renders the event as a full window-model scene on the
// static tree's legal "voice-commanded airing" branch (no hazard, locked
// home, mid-range air quality): tree-legal whenever the event's hour sits
// inside the voice-legal range, and carrying exactly the hour, voice,
// occupancy and timestamp the sequence symbols discretize. The
// integration tests and the eval campaigns use it to drive the compiled
// tree and the sequence judge with one coherent stream.
func (e TraceEvent) WindowScene() sensor.Snapshot {
	snap := sensor.NewSnapshot(e.At)
	snap.Set(sensor.FeatSmoke, sensor.Bool(false))
	snap.Set(sensor.FeatGas, sensor.Bool(false))
	snap.Set(sensor.FeatVoiceCmd, sensor.Bool(e.Voice))
	snap.Set(sensor.FeatDoorLock, sensor.Label(sensor.LockLocked))
	snap.Set(sensor.FeatAirQuality, sensor.Number(95))
	snap.Set(sensor.FeatTempIndoor, sensor.Number(22))
	snap.Set(sensor.FeatWeather, sensor.Label(sensor.WeatherSunny))
	snap.Set(sensor.FeatMotion, sensor.Bool(true))
	snap.Set(sensor.FeatHour, sensor.Number(e.Hour))
	snap.Set(sensor.FeatOccupancy, sensor.Bool(e.Occupied))
	return snap
}

// replayHourByBucket maps the current time bucket to the stale hour a
// replay attack re-stamps. Each target is (a) neither the current bucket
// nor its forward-adjacent neighbour — benign days advance by human-paced
// gaps shorter than any bucket, so the only cross-bucket transitions a
// trained table contains are single forward crossings — and (b) inside
// the voice-legal hour range, so the static tree still admits the
// replayed scene. That combination is exactly what makes the stale_replay
// scenario tree-invisible but sequence-visible.
var replayHourByBucket = [sensor.TimeBucketCount]float64{
	15,   // night     → afternoon
	20.5, // morning   → evening
	9.5,  // afternoon → morning
	9.5,  // evening   → morning
}

// ReplayHour picks the replayed hour-of-day for a stale-context attack
// staged while the home's clock reads currentHour.
func ReplayHour(currentHour float64) float64 {
	return replayHourByBucket[sensor.TimeBucketIndex(currentHour)]
}

// TrainConfig parameterizes sequence-model training.
type TrainConfig struct {
	// Seed derives every training sequence's rng: unit u (a (model,
	// sequence) pair) is seeded Seed + 104729·u before the fan-out, so the
	// table is bit-identical at any worker count.
	Seed int64
	// Sequences is the number of simulated benign days per device model
	// (default 220).
	Sequences int
	// Events is the number of events per simulated day (default 56).
	Events int
	// Alpha is the Laplace smoothing pseudo-count (default 0.5).
	Alpha float64
	// Margin is subtracted from each row's minimum observed
	// log-likelihood to form its anomaly gate (default 0.25 — any seen
	// transition clears the gate, any unseen one in a populated row falls
	// ~log 3 below it).
	Margin float64
	// Workers bounds the training fan-out (0: GOMAXPROCS).
	Workers int
	// Models restricts training to a subset (default: all six).
	Models []dataset.Model
}

// withDefaults fills zero fields.
func (cfg TrainConfig) withDefaults() TrainConfig {
	if cfg.Sequences == 0 {
		cfg.Sequences = 220
	}
	if cfg.Events == 0 {
		cfg.Events = 56
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.5
	}
	if cfg.Margin == 0 {
		cfg.Margin = 0.25
	}
	if len(cfg.Models) == 0 {
		cfg.Models = dataset.Models()
	}
	return cfg
}

// Train fits one transition table per device model from simulated benign
// traces anchored on the corpus's legal-activity families. The fan-out
// follows the repo's seed-pre-derivation rule: unit seeds are fixed
// before any goroutine starts, partial transition lists land at their
// unit index and are merged in unit order — the result is bit-identical
// at any worker count (see TestTrainDeterminism's byte-equal golden).
func Train(cfg TrainConfig) (*Set, error) {
	cfg = cfg.withDefaults()
	if cfg.Sequences < 0 || cfg.Events < 2 {
		return nil, fmt.Errorf("seq: train needs >= 0 sequences of >= 2 events, got %d x %d", cfg.Sequences, cfg.Events)
	}
	if cfg.Alpha <= 0 || cfg.Margin < 0 {
		return nil, fmt.Errorf("seq: alpha must be positive and margin non-negative")
	}
	units := len(cfg.Models) * cfg.Sequences
	trans, err := par.Map(units, cfg.Workers, func(u int) ([]uint16, error) {
		rng := rand.New(rand.NewSource(cfg.Seed + 104729*int64(u)))
		return traceTransitions(LegalTrace(rng, cfg.Events, TraceHourLo, TraceHourHi)), nil
	})
	if err != nil {
		return nil, err
	}
	set := &Set{
		models: make(map[dataset.Model]*Model, len(cfg.Models)),
		alpha:  cfg.Alpha,
		margin: cfg.Margin,
	}
	for mi, m := range cfg.Models {
		mod := newModel(cfg.Alpha, cfg.Margin)
		for si := 0; si < cfg.Sequences; si++ {
			for _, pair := range trans[mi*cfg.Sequences+si] {
				mod.add(Symbol(pair>>8), Symbol(pair&0xff))
			}
		}
		mod.finalize()
		set.models[m] = mod
	}
	return set, nil
}

// traceTransitions folds a trace through a fresh tracker and returns its
// packed (from, to) transitions.
func traceTransitions(trace []TraceEvent) []uint16 {
	var tr Tracker
	out := make([]uint16, 0, len(trace)-1)
	prev, havePrev := Symbol(0), false
	for _, e := range trace {
		sym := tr.Admit(e.Sensitive, e.Snapshot(), e.At)
		if havePrev {
			out = append(out, uint16(prev)<<8|uint16(sym))
		}
		prev, havePrev = sym, true
	}
	return out
}

// Serialize renders the trained set in a canonical byte-stable text form
// — models in dataset order, transitions sorted row-major — so the
// determinism golden can compare serial and parallel training runs
// byte-for-byte.
func (s *Set) Serialize() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "seq-table v1 alpha=%g margin=%g\n", s.alpha, s.margin)
	for _, m := range s.Models() {
		mod := s.models[m]
		fmt.Fprintf(&b, "model %s transitions=%d\n", m, mod.Transitions())
		for idx, c := range mod.counts {
			if c > 0 {
				fmt.Fprintf(&b, "%d %d %d\n", idx/SymbolSpace, idx%SymbolSpace, c)
			}
		}
	}
	return b.Bytes()
}
