// Package dataset reproduces the paper's data pipeline (§IV-C): a corpus of
// 804 automation strategies in the style of IFTTT / vendor platforms
// (Table IV), per-strategy user counts with the heavy-tailed popularity of
// Fig 5, expansion of the corpus by popularity, context-violating attack
// injection for negative samples, and featurisation into per-device-model
// machine-learning datasets.
//
// The paper crawled its 804 strategies from vendor sites and web-automation
// platforms; that data is not public, so the corpus here is generated from
// parameterised strategy templates per device category — same scale, same
// trigger-action shape, same popularity skew.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"iotsid/internal/automation"
	"iotsid/internal/instr"
)

// BaseCorpusSize is the paper's count of original valid strategies.
const BaseCorpusSize = 804

// CameraWarnCount is the paper's count of camera-warning-related
// strategies (Fig 7).
const CameraWarnCount = 319

// WarnTrigger classifies what a camera-warning strategy reacts to (the Fig 7
// categories).
type WarnTrigger int

// Camera-warning trigger categories, Fig 7.
const (
	WarnNone WarnTrigger = iota // not a camera-warning strategy
	WarnDoorWindowOpened
	WarnSmokeFire
	WarnWaterLeak
	WarnGas
	WarnMotion
)

// String names the warning trigger.
func (w WarnTrigger) String() string {
	switch w {
	case WarnNone:
		return "none"
	case WarnDoorWindowOpened:
		return "door_window_opened"
	case WarnSmokeFire:
		return "smoke_fire"
	case WarnWaterLeak:
		return "water_leak"
	case WarnGas:
		return "combustible_gas"
	case WarnMotion:
		return "motion"
	default:
		return fmt.Sprintf("warn(%d)", int(w))
	}
}

// Strategy is one automation strategy of the corpus.
type Strategy struct {
	ID       int            `json:"id"`
	Name     string         `json:"name"`
	RuleText string         `json:"rule_text"` // automation-DSL source
	Category instr.Category `json:"category"`  // category of the actuated device
	Warn     WarnTrigger    `json:"warn"`      // non-zero for camera warnings
	Users    int            `json:"users"`     // Fig 5 popularity
}

// template is a parameterised strategy generator.
type template struct {
	name string
	cat  instr.Category
	warn WarnTrigger
	gen  func(r *rand.Rand) string
}

func u(r *rand.Rand, lo, hi int) int { return lo + r.Intn(hi-lo+1) }

// templates returns the per-category strategy generators. Rule text always
// parses under the builtin instruction registry (tested).
func templates() []template {
	return []template{
		// Lighting: the bread-and-butter automations of every platform.
		{name: "evening lights", cat: instr.CatLighting, gen: func(r *rand.Rand) string {
			return fmt.Sprintf("WHEN occupancy == TRUE AND hour_of_day >= %d THEN light.on @ light-1", u(r, 17, 20))
		}},
		{name: "motion light", cat: instr.CatLighting, gen: func(r *rand.Rand) string {
			return fmt.Sprintf("WHEN motion == TRUE AND illuminance < %d THEN light.on @ light-1", u(r, 80, 200))
		}},
		{name: "lights out at night", cat: instr.CatLighting, gen: func(r *rand.Rand) string {
			return fmt.Sprintf("WHEN hour_of_day >= %d AND motion == FALSE THEN light.off @ light-1", u(r, 22, 23))
		}},
		{name: "away lights off", cat: instr.CatLighting, gen: func(r *rand.Rand) string {
			return "WHEN occupancy == FALSE THEN light.off @ light-1"
		}},
		{name: "dawn dim", cat: instr.CatLighting, gen: func(r *rand.Rand) string {
			return fmt.Sprintf("WHEN hour_of_day >= %d AND hour_of_day < 8 AND motion == TRUE THEN light.set_brightness @ light-1 WITH brightness = %d", u(r, 5, 6), u(r, 10, 40))
		}},

		// Air conditioning / thermostat.
		{name: "cool when hot", cat: instr.CatAirConditioning, gen: func(r *rand.Rand) string {
			return fmt.Sprintf("WHEN temperature_in > %d AND occupancy == TRUE THEN aircon.set_cool @ aircon-1", u(r, 26, 30))
		}},
		{name: "heat when cold", cat: instr.CatAirConditioning, gen: func(r *rand.Rand) string {
			return fmt.Sprintf("WHEN temperature_in < %d AND occupancy == TRUE THEN aircon.set_heat @ aircon-1", u(r, 14, 18))
		}},
		{name: "pre-cool before arrival", cat: instr.CatAirConditioning, gen: func(r *rand.Rand) string {
			return fmt.Sprintf("WHEN hour_of_day >= %d AND temperature_in > %d THEN aircon.on @ aircon-1", u(r, 16, 18), u(r, 27, 30))
		}},
		{name: "AC off when away", cat: instr.CatAirConditioning, gen: func(r *rand.Rand) string {
			return "WHEN occupancy == FALSE THEN aircon.off @ aircon-1"
		}},
		{name: "AC off when window open", cat: instr.CatAirConditioning, gen: func(r *rand.Rand) string {
			return "WHEN window_open == TRUE THEN aircon.off @ aircon-1"
		}},

		// Curtains / blinds.
		{name: "morning open", cat: instr.CatCurtain, gen: func(r *rand.Rand) string {
			return fmt.Sprintf("WHEN hour_of_day >= %d AND occupancy == TRUE THEN curtain.open @ curtain-1", u(r, 6, 9))
		}},
		{name: "evening close", cat: instr.CatCurtain, gen: func(r *rand.Rand) string {
			return fmt.Sprintf("WHEN hour_of_day >= %d THEN curtain.close @ curtain-1", u(r, 18, 21))
		}},
		{name: "glare shield", cat: instr.CatCurtain, gen: func(r *rand.Rand) string {
			return fmt.Sprintf("WHEN illuminance > %d AND outdoor_weather == sunny THEN curtain.set_position @ curtain-1 WITH position = %d", u(r, 2000, 6000), u(r, 20, 60))
		}},

		// Windows.
		{name: "ventilate on smoke", cat: instr.CatWindowDoorLock, gen: func(r *rand.Rand) string {
			return "WHEN smoke == TRUE THEN window.open @ window-1"
		}},
		{name: "ventilate on gas", cat: instr.CatWindowDoorLock, gen: func(r *rand.Rand) string {
			return "WHEN combustible_gas == TRUE THEN window.open @ window-1"
		}},
		{name: "air the room", cat: instr.CatWindowDoorLock, gen: func(r *rand.Rand) string {
			return fmt.Sprintf("WHEN air_quality > %d AND occupancy == TRUE THEN window.open @ window-1", u(r, 120, 200))
		}},
		{name: "close on rain", cat: instr.CatWindowDoorLock, gen: func(r *rand.Rand) string {
			return "WHEN outdoor_weather == rain THEN window.close @ window-1"
		}},
		{name: "close at night", cat: instr.CatWindowDoorLock, gen: func(r *rand.Rand) string {
			return fmt.Sprintf("WHEN hour_of_day >= %d THEN window.close @ window-1", u(r, 21, 23))
		}},

		// Kitchen.
		{name: "morning rice", cat: instr.CatKitchen, gen: func(r *rand.Rand) string {
			return fmt.Sprintf("WHEN hour_of_day >= %d AND occupancy == TRUE THEN cooker.start @ cooker-1", u(r, 6, 8))
		}},
		{name: "dinner prep", cat: instr.CatKitchen, gen: func(r *rand.Rand) string {
			return fmt.Sprintf("WHEN hour_of_day >= %d AND motion == TRUE THEN oven.preheat @ cooker-1", u(r, 17, 19))
		}},
		{name: "stop cooking on smoke", cat: instr.CatKitchen, gen: func(r *rand.Rand) string {
			return "WHEN smoke == TRUE THEN cooker.stop @ cooker-1"
		}},

		// Entertainment.
		{name: "welcome home TV", cat: instr.CatEntertainment, gen: func(r *rand.Rand) string {
			return fmt.Sprintf("WHEN occupancy == TRUE AND hour_of_day >= %d THEN tv.on @ tv-1", u(r, 18, 20))
		}},
		{name: "TV off at bedtime", cat: instr.CatEntertainment, gen: func(r *rand.Rand) string {
			return fmt.Sprintf("WHEN hour_of_day >= %d THEN tv.off @ tv-1", u(r, 22, 23))
		}},
		{name: "quiet hours volume", cat: instr.CatEntertainment, gen: func(r *rand.Rand) string {
			return fmt.Sprintf("WHEN hour_of_day >= %d THEN tv.set_volume @ tv-1 WITH volume = %d", u(r, 21, 23), u(r, 5, 20))
		}},

		// Alarm hub.
		{name: "arm when away", cat: instr.CatAlarm, gen: func(r *rand.Rand) string {
			return "WHEN occupancy == FALSE THEN alarm.arm @ alarm-hub-1"
		}},
		{name: "siren on gas", cat: instr.CatAlarm, gen: func(r *rand.Rand) string {
			return "WHEN combustible_gas == TRUE THEN alarm.siren_on @ alarm-hub-1"
		}},

		// Vacuum.
		{name: "clean when away", cat: instr.CatVacuum, gen: func(r *rand.Rand) string {
			return fmt.Sprintf("WHEN occupancy == FALSE AND hour_of_day >= %d THEN vacuum.start @ vacuum-1", u(r, 9, 11))
		}},
		{name: "dock at night", cat: instr.CatVacuum, gen: func(r *rand.Rand) string {
			return "WHEN hour_of_day >= 21 THEN vacuum.dock @ vacuum-1"
		}},

		// Locks.
		{name: "lock at night", cat: instr.CatWindowDoorLock, gen: func(r *rand.Rand) string {
			return fmt.Sprintf("WHEN hour_of_day >= %d THEN lock.lock @ lock-1", u(r, 21, 23))
		}},
	}
}

// warnTemplates returns camera-warning strategy generators (Fig 7).
func warnTemplates() []template {
	alert := func(msg string, cond string) func(*rand.Rand) string {
		return func(*rand.Rand) string {
			return fmt.Sprintf(`WHEN %s THEN camera.alert_user @ camera-1 WITH message = "%s"`, cond, msg)
		}
	}
	return []template{
		{name: "warn: door opened", cat: instr.CatCamera, warn: WarnDoorWindowOpened,
			gen: alert("door opened", "door_open == TRUE")},
		{name: "warn: window opened", cat: instr.CatCamera, warn: WarnDoorWindowOpened,
			gen: alert("window opened", "window_open == TRUE")},
		{name: "warn: door opened while away", cat: instr.CatCamera, warn: WarnDoorWindowOpened,
			gen: alert("door opened while away", "door_open == TRUE AND occupancy == FALSE")},
		{name: "warn: smoke", cat: instr.CatCamera, warn: WarnSmokeFire,
			gen: alert("smoke detected", "smoke == TRUE")},
		{name: "warn: fire risk", cat: instr.CatCamera, warn: WarnSmokeFire,
			gen: alert("possible fire", "smoke == TRUE AND air_quality > 150")},
		{name: "warn: water leak", cat: instr.CatCamera, warn: WarnWaterLeak,
			gen: alert("water leak", "water_leak == TRUE")},
		{name: "warn: gas leak", cat: instr.CatCamera, warn: WarnGas,
			gen: alert("combustible gas", "combustible_gas == TRUE")},
		{name: "warn: motion while away", cat: instr.CatCamera, warn: WarnMotion,
			gen: alert("unexpected motion", "motion == TRUE AND occupancy == FALSE")},
	}
}

// warnMix fixes the Fig 7 composition of the 319 camera-warning strategies:
// door/window openings dominate, then smoke/fire, water, gas, motion.
var warnMix = map[WarnTrigger]int{
	WarnDoorWindowOpened: 141,
	WarnSmokeFire:        82,
	WarnWaterLeak:        44,
	WarnGas:              33,
	WarnMotion:           19,
}

// nonWarnMix fixes the category composition of the remaining 485
// strategies.
var nonWarnMix = map[instr.Category]int{
	instr.CatLighting:        121,
	instr.CatAirConditioning: 83,
	instr.CatCurtain:         68,
	instr.CatWindowDoorLock:  76,
	instr.CatKitchen:         52,
	instr.CatEntertainment:   45,
	instr.CatAlarm:           23,
	instr.CatVacuum:          17,
}

// Corpus generates the deterministic 804-strategy corpus. Popularity follows
// a Zipf law with exponent s over strategy rank (Fig 5), scaled so the most
// popular strategy has maxUsers users.
type CorpusConfig struct {
	Seed     int64
	ZipfS    float64 // default 1.08
	MaxUsers int     // default 52000
}

func (c CorpusConfig) withDefaults() CorpusConfig {
	if c.ZipfS == 0 {
		c.ZipfS = 1.08
	}
	if c.MaxUsers == 0 {
		c.MaxUsers = 52000
	}
	return c
}

// Corpus builds the strategy corpus: 319 camera-warning strategies in the
// Fig 7 mix plus 485 strategies across the other categories, 804 total.
func Corpus(cfg CorpusConfig) ([]Strategy, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	byWarn := make(map[WarnTrigger][]template)
	for _, t := range warnTemplates() {
		byWarn[t.warn] = append(byWarn[t.warn], t)
	}
	byCat := make(map[instr.Category][]template)
	for _, t := range templates() {
		byCat[t.cat] = append(byCat[t.cat], t)
	}

	var out []Strategy
	id := 1
	emit := func(t template) {
		out = append(out, Strategy{
			ID:       id,
			Name:     fmt.Sprintf("%s #%d", t.name, id),
			RuleText: t.gen(rng),
			Category: t.cat,
			Warn:     t.warn,
		})
		id++
	}
	for _, w := range []WarnTrigger{WarnDoorWindowOpened, WarnSmokeFire, WarnWaterLeak, WarnGas, WarnMotion} {
		ts := byWarn[w]
		for i := 0; i < warnMix[w]; i++ {
			emit(ts[i%len(ts)])
		}
	}
	for _, c := range instr.Categories() {
		n := nonWarnMix[c]
		if n == 0 {
			continue
		}
		ts := byCat[c]
		if len(ts) == 0 {
			return nil, fmt.Errorf("dataset: no templates for category %v", c)
		}
		for i := 0; i < n; i++ {
			emit(ts[i%len(ts)])
		}
	}
	if len(out) != BaseCorpusSize {
		return nil, fmt.Errorf("dataset: corpus size %d, want %d", len(out), BaseCorpusSize)
	}

	// Popularity: shuffle ranks so popularity is independent of category,
	// then assign Zipf user counts by rank.
	perm := rng.Perm(len(out))
	for rank, idx := range perm {
		users := float64(cfg.MaxUsers) / math.Pow(float64(rank+1), cfg.ZipfS)
		out[idx].Users = int(users)
		if out[idx].Users < 1 {
			out[idx].Users = 1
		}
	}

	// Every generated rule must parse — a corpus entry that the platform
	// cannot execute is a generator bug.
	parser := automation.NewParser(instr.BuiltinRegistry())
	for _, s := range out {
		if _, err := parser.ParseRule(s.Name, s.RuleText); err != nil {
			return nil, fmt.Errorf("dataset: strategy %d does not parse: %w", s.ID, err)
		}
	}
	return out, nil
}

// WarnStats tallies camera-warning strategies per trigger (Fig 7).
func WarnStats(corpus []Strategy) map[WarnTrigger]int {
	out := make(map[WarnTrigger]int)
	for _, s := range corpus {
		if s.Warn != WarnNone {
			out[s.Warn]++
		}
	}
	return out
}

// UserCounts returns the per-strategy user counts sorted descending — the
// Fig 5 popularity curve.
func UserCounts(corpus []Strategy) []int {
	out := make([]int, 0, len(corpus))
	for _, s := range corpus {
		out = append(out, s.Users)
	}
	// Insertion sort descending (corpus is small).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] < out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
