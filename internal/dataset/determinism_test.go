package dataset

import (
	"reflect"
	"testing"
)

// TestBuildAllDeterminism is the golden-equality gate for the parallel
// dataset builder: whatever the worker count, BuildAll must produce
// bit-identical datasets, because every model's generator is seeded from
// its index before the fan-out.
func TestBuildAllDeterminism(t *testing.T) {
	corpus, err := Corpus(CorpusConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := BuildAll(corpus, BuildConfig{Seed: 42, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		parallel, err := BuildAll(corpus, BuildConfig{Seed: 42, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: %d models, want %d", workers, len(parallel), len(serial))
		}
		for m, want := range serial {
			got := parallel[m]
			if got == nil {
				t.Fatalf("workers=%d: model %s missing", workers, m)
			}
			if !reflect.DeepEqual(got.Y, want.Y) {
				t.Errorf("workers=%d: %s labels diverge", workers, m)
			}
			if !reflect.DeepEqual(got.X, want.X) {
				t.Errorf("workers=%d: %s feature rows diverge", workers, m)
			}
			if !reflect.DeepEqual(got.Schema, want.Schema) {
				t.Errorf("workers=%d: %s schema diverges", workers, m)
			}
		}
	}
}
