package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"iotsid/internal/mlearn"
	"iotsid/internal/par"
	"iotsid/internal/sensor"
)

// BuildConfig tunes dataset construction for one device model.
type BuildConfig struct {
	Seed int64
	// Workers bounds BuildAll's per-model fan-out; 0 means GOMAXPROCS.
	// Each model's generator is seeded before the fan-out, so the built
	// datasets are identical for every worker count.
	Workers int
	// AttackRatio is the fraction of the built dataset that is negative
	// (attack) examples — kept deliberately small to reproduce the paper's
	// "vast disparity in the ratio of positive and negative samples"
	// before oversampling. Default 0.15.
	AttackRatio float64
	// MaxPerStrategy caps the examples one strategy contributes after
	// popularity expansion. Default 40.
	MaxPerStrategy int
	// PositiveOverride, when >0, fixes the positive count directly instead
	// of expanding the corpus (used by scaling benchmarks).
	PositiveOverride int
}

func (c BuildConfig) withDefaults() BuildConfig {
	if c.AttackRatio == 0 {
		c.AttackRatio = 0.15
	}
	if c.MaxPerStrategy == 0 {
		c.MaxPerStrategy = 40
	}
	return c
}

// Expansion returns how many training scenes one strategy contributes: the
// square root of its user count (each user's home yields correlated but not
// independent evidence), capped so a single viral strategy cannot dominate.
func Expansion(users, cap int) int {
	n := int(math.Round(math.Sqrt(float64(users))))
	if n < 1 {
		n = 1
	}
	if n > cap {
		n = cap
	}
	return n
}

// NoiseProfile calibrates the irreducible context overlap of one device
// model: LegalFromAttack is the probability that a legitimate command is
// issued from an attack-looking context (a user opens the window on a rainy
// night — these become the trained model's false negatives), and
// AttackFromLegal the probability that an attack is staged inside a
// legal-looking context (these become its false alarms).
type NoiseProfile struct {
	LegalFromAttack float64
	AttackFromLegal float64
}

// noiseProfiles is calibrated so that the natural-test-split evaluation
// reproduces the Table VI error shape: FNR ≈ 4–7 % (light, the paper's
// fuzziest concept, higher), FPR ≈ 0 except the window model's 5 %.
var noiseProfiles = map[Model]NoiseProfile{
	ModelWindow:  {LegalFromAttack: 0.06, AttackFromLegal: 0.025},
	ModelAircon:  {LegalFromAttack: 0.075, AttackFromLegal: 0},
	ModelLight:   {LegalFromAttack: 0.11, AttackFromLegal: 0},
	ModelCurtain: {LegalFromAttack: 0.0535, AttackFromLegal: 0},
	ModelTV:      {LegalFromAttack: 0.055, AttackFromLegal: 0},
	ModelKitchen: {LegalFromAttack: 0.042, AttackFromLegal: 0},
}

// Noise returns the model's calibrated noise profile.
func (m Model) Noise() NoiseProfile { return noiseProfiles[m] }

// Build constructs the labelled dataset for one device model: positives
// expanded from the corpus strategies of the model's category, negatives
// injected attacks, with the model's calibrated context noise applied.
func Build(m Model, corpus []Strategy, cfg BuildConfig) (*mlearn.Dataset, error) {
	cfg = cfg.withDefaults()
	if cfg.AttackRatio <= 0 || cfg.AttackRatio >= 1 {
		return nil, fmt.Errorf("dataset: attack ratio %v outside (0,1)", cfg.AttackRatio)
	}
	schema, err := m.Schema()
	if err != nil {
		return nil, err
	}
	cat, err := m.Category()
	if err != nil {
		return nil, err
	}
	nPos := cfg.PositiveOverride
	if nPos <= 0 {
		for _, s := range corpus {
			if s.Category == cat && s.Warn == WarnNone {
				nPos += Expansion(s.Users, cfg.MaxPerStrategy)
			}
		}
	}
	if nPos == 0 {
		return nil, fmt.Errorf("dataset: corpus has no strategies for model %s", m)
	}
	nNeg := int(math.Round(float64(nPos) * cfg.AttackRatio / (1 - cfg.AttackRatio)))
	if nNeg < 1 {
		nNeg = 1
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	noise := noiseProfiles[m]
	d := mlearn.NewDataset(schema)
	add := func(label int, fromAttack bool) error {
		var snap sensor.Snapshot
		var err error
		if fromAttack {
			snap, err = AttackScene(m, rng)
		} else {
			snap, err = LegalScene(m, rng)
		}
		if err != nil {
			return err
		}
		x, err := m.Featurize(snap)
		if err != nil {
			return fmt.Errorf("featurize scene: %w", err)
		}
		return d.Add(x, label)
	}
	for i := 0; i < nPos; i++ {
		if err := add(1, rng.Float64() < noise.LegalFromAttack); err != nil {
			return nil, err
		}
	}
	for i := 0; i < nNeg; i++ {
		if err := add(0, rng.Float64() >= noise.AttackFromLegal); err != nil {
			return nil, err
		}
	}
	d.Shuffle(rng)
	return d, nil
}

// BuildAll constructs the dataset of every evaluated model, seeding each
// model's generator independently from cfg.Seed. Models build concurrently
// on cfg.Workers goroutines; because every model's seed is derived from its
// index before the fan-out, the result is bit-identical to a serial build.
func BuildAll(corpus []Strategy, cfg BuildConfig) (map[Model]*mlearn.Dataset, error) {
	models := Models()
	built, err := par.Map(len(models), cfg.Workers, func(i int) (*mlearn.Dataset, error) {
		mc := cfg
		mc.Seed = cfg.Seed + int64(i)*7919
		d, err := Build(models[i], corpus, mc)
		if err != nil {
			return nil, fmt.Errorf("build %s: %w", models[i], err)
		}
		return d, nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[Model]*mlearn.Dataset, len(models))
	for i, m := range models {
		out[m] = built[i]
	}
	return out, nil
}
