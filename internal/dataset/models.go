package dataset

import (
	"fmt"

	"iotsid/internal/instr"
	"iotsid/internal/mlearn"
	"iotsid/internal/sensor"
)

// Model identifies one of the paper's per-device-category decision-tree
// models (Table VI rows).
type Model string

// The six evaluated device models (Table VI). Door locks and alarms are
// excluded by the paper (§V, "Door" / "Alarm" discussion); cameras get the
// warning linkage of Fig 7 instead of a tree.
const (
	ModelWindow  Model = "window"
	ModelAircon  Model = "air_conditioning"
	ModelLight   Model = "light"
	ModelCurtain Model = "curtain"
	ModelTV      Model = "tv_stereo"
	ModelKitchen Model = "kitchen"
)

// Models lists the evaluated device models in Table VI order.
func Models() []Model {
	return []Model{ModelWindow, ModelAircon, ModelLight, ModelCurtain, ModelTV, ModelKitchen}
}

// Title returns the Table VI display name.
func (m Model) Title() string {
	switch m {
	case ModelWindow:
		return "window"
	case ModelAircon:
		return "Air conditioning"
	case ModelLight:
		return "light"
	case ModelCurtain:
		return "Curtains, blinds"
	case ModelTV:
		return "TV, stereo"
	case ModelKitchen:
		return "Kitchen appliances"
	default:
		return string(m)
	}
}

// Category maps the model to its Table I device category.
func (m Model) Category() (instr.Category, error) {
	switch m {
	case ModelWindow:
		return instr.CatWindowDoorLock, nil
	case ModelAircon:
		return instr.CatAirConditioning, nil
	case ModelLight:
		return instr.CatLighting, nil
	case ModelCurtain:
		return instr.CatCurtain, nil
	case ModelTV:
		return instr.CatEntertainment, nil
	case ModelKitchen:
		return instr.CatKitchen, nil
	default:
		return 0, fmt.Errorf("dataset: unknown model %q", m)
	}
}

// ModelForCategory returns the model evaluating a category's sensitive
// control instructions, or false when the paper has none (locks, alarms,
// cameras, vacuums). This sits on the per-judgment hot path, so it is the
// allocation-free inverse of Category rather than a scan over Models().
func ModelForCategory(c instr.Category) (Model, bool) {
	switch c {
	case instr.CatWindowDoorLock:
		return ModelWindow, true
	case instr.CatAirConditioning:
		return ModelAircon, true
	case instr.CatLighting:
		return ModelLight, true
	case instr.CatCurtain:
		return ModelCurtain, true
	case instr.CatEntertainment:
		return ModelTV, true
	case instr.CatKitchen:
		return ModelKitchen, true
	}
	return "", false
}

// Features returns the model's sensor context features. The window model
// uses exactly the nine features of Fig 6, in the paper's weight order.
func (m Model) Features() []sensor.Feature {
	switch m {
	case ModelWindow:
		return []sensor.Feature{
			sensor.FeatSmoke, sensor.FeatGas, sensor.FeatVoiceCmd,
			sensor.FeatDoorLock, sensor.FeatTempIndoor, sensor.FeatAirQuality,
			sensor.FeatWeather, sensor.FeatMotion, sensor.FeatHour,
		}
	case ModelAircon:
		return []sensor.Feature{
			sensor.FeatTempIndoor, sensor.FeatTempOutdoor, sensor.FeatOccupancy,
			sensor.FeatHour, sensor.FeatHumidity, sensor.FeatVoiceCmd,
			sensor.FeatWindowOpen,
		}
	case ModelLight:
		return []sensor.Feature{
			sensor.FeatIlluminance, sensor.FeatMotion, sensor.FeatOccupancy,
			sensor.FeatHour, sensor.FeatVoiceCmd,
		}
	case ModelCurtain:
		return []sensor.Feature{
			sensor.FeatIlluminance, sensor.FeatHour, sensor.FeatOccupancy,
			sensor.FeatWeather, sensor.FeatVoiceCmd, sensor.FeatMotion,
		}
	case ModelTV:
		return []sensor.Feature{
			sensor.FeatOccupancy, sensor.FeatHour, sensor.FeatNoise,
			sensor.FeatVoiceCmd, sensor.FeatMotion,
		}
	case ModelKitchen:
		return []sensor.Feature{
			sensor.FeatOccupancy, sensor.FeatHour, sensor.FeatSmoke,
			sensor.FeatPowerDraw, sensor.FeatVoiceCmd,
		}
	default:
		return nil
	}
}

// boolCats is the encoding domain for boolean features.
var boolCats = []string{"false", "true"}

// Schema builds the model's mlearn schema: booleans and labels become
// categorical attributes, continuous sensors numeric ones.
func (m Model) Schema() (mlearn.Schema, error) {
	feats := m.Features()
	if feats == nil {
		return mlearn.Schema{}, fmt.Errorf("dataset: unknown model %q", m)
	}
	attrs := make([]mlearn.Attribute, 0, len(feats))
	for _, f := range feats {
		d, ok := sensor.Describe(f)
		if !ok {
			return mlearn.Schema{}, fmt.Errorf("dataset: feature %q not in vocabulary", f)
		}
		switch d.Type {
		case sensor.TypeBool:
			attrs = append(attrs, mlearn.Attribute{Name: string(f), Kind: mlearn.Categorical, Categories: boolCats})
		case sensor.TypeLabel:
			attrs = append(attrs, mlearn.Attribute{Name: string(f), Kind: mlearn.Categorical, Categories: d.Labels})
		default:
			attrs = append(attrs, mlearn.Attribute{Name: string(f), Kind: mlearn.Numeric})
		}
	}
	return mlearn.NewSchema(attrs)
}

// featSpec is one precomputed featurisation step: the feature plus the
// descriptor fields the encoder needs, resolved once at package init so the
// hot path never rebuilds the feature list or re-queries the vocabulary.
type featSpec struct {
	feat   sensor.Feature
	typ    sensor.FeatureType
	labels []string
}

// modelSpecs caches the featurisation plan per model.
var modelSpecs = func() map[Model][]featSpec {
	out := make(map[Model][]featSpec, len(Models()))
	for _, m := range Models() {
		feats := m.Features()
		specs := make([]featSpec, len(feats))
		for i, f := range feats {
			d := sensor.MustDescribe(f)
			specs[i] = featSpec{feat: f, typ: d.Type, labels: d.Labels}
		}
		out[m] = specs
	}
	return out
}()

// FeatureWidth returns the model's feature-vector length, or 0 for an
// unknown model.
func (m Model) FeatureWidth() int { return len(modelSpecs[m]) }

// Featurize encodes a sensor snapshot into the model's example vector. This
// exact encoding is used both when building training data and when the
// command determiner judges a live snapshot, so train and inference cannot
// diverge.
func (m Model) Featurize(snap sensor.Snapshot) ([]float64, error) {
	specs, ok := modelSpecs[m]
	if !ok {
		return nil, fmt.Errorf("dataset: unknown model %q", m)
	}
	out := make([]float64, len(specs))
	if err := m.FeaturizeInto(snap, out); err != nil {
		return nil, err
	}
	return out, nil
}

// FeaturizeInto encodes a snapshot into a caller-provided buffer — the
// allocation-free form of Featurize for the inference fast path. buf must
// have exactly the model's FeatureWidth.
//
//iot:hotpath
func (m Model) FeaturizeInto(snap sensor.Snapshot, buf []float64) error {
	specs, ok := modelSpecs[m]
	if !ok {
		//iot:allow hotalloc error path, never taken steady-state; the AllocsPerRun gate proves the allow path is 0-alloc
		return fmt.Errorf("dataset: unknown model %q", m)
	}
	if len(buf) != len(specs) {
		//iot:allow hotalloc error path, never taken steady-state; the AllocsPerRun gate proves the allow path is 0-alloc
		return fmt.Errorf("dataset: feature buffer %d, model %s needs %d", len(buf), m, len(specs))
	}
	for i := range specs {
		s := &specs[i]
		v, ok := snap.Get(s.feat)
		if !ok {
			//iot:allow hotalloc error path, never taken steady-state; the AllocsPerRun gate proves the allow path is 0-alloc
			return fmt.Errorf("dataset: snapshot missing feature %q for model %s", s.feat, m)
		}
		switch s.typ {
		case sensor.TypeBool:
			b, isBool := v.Bool()
			if !isBool {
				//iot:allow hotalloc error path, never taken steady-state; the AllocsPerRun gate proves the allow path is 0-alloc
				return fmt.Errorf("dataset: feature %q not boolean", s.feat)
			}
			if b {
				buf[i] = 1
			} else {
				buf[i] = 0
			}
		case sensor.TypeLabel:
			l, isLabel := v.Label()
			if !isLabel {
				//iot:allow hotalloc error path, never taken steady-state; the AllocsPerRun gate proves the allow path is 0-alloc
				return fmt.Errorf("dataset: feature %q not a label", s.feat)
			}
			idx := -1
			for j, cand := range s.labels {
				if cand == l {
					idx = j
					break
				}
			}
			if idx < 0 {
				//iot:allow hotalloc error path, never taken steady-state; the AllocsPerRun gate proves the allow path is 0-alloc
				return fmt.Errorf("dataset: feature %q label %q outside domain", s.feat, l)
			}
			buf[i] = float64(idx)
		default:
			n, isNum := v.Number()
			if !isNum {
				//iot:allow hotalloc error path, never taken steady-state; the AllocsPerRun gate proves the allow path is 0-alloc
				return fmt.Errorf("dataset: feature %q not numeric", s.feat)
			}
			buf[i] = n
		}
	}
	return nil
}
