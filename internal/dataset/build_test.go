package dataset

import (
	"math"
	"math/rand"
	"testing"

	"iotsid/internal/mlearn"
	"iotsid/internal/mlearn/tree"
)

func TestBuildImbalanceAndDeterminism(t *testing.T) {
	corpus := mustCorpus(t, 1)
	d, err := Build(ModelWindow, corpus, BuildConfig{Seed: 11})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	counts := d.ClassCounts()
	if counts[1] == 0 || counts[0] == 0 {
		t.Fatalf("counts = %v", counts)
	}
	ratio := float64(counts[0]) / float64(d.Len())
	if math.Abs(ratio-0.15) > 0.02 {
		t.Errorf("attack ratio = %v, want ≈0.15", ratio)
	}
	// Deterministic by seed.
	d2, err := Build(ModelWindow, corpus, BuildConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != d2.Len() {
		t.Fatal("non-deterministic size")
	}
	for i := range d.X {
		if d.Y[i] != d2.Y[i] {
			t.Fatal("non-deterministic labels")
		}
		for j := range d.X[i] {
			if d.X[i][j] != d2.X[i][j] {
				t.Fatal("non-deterministic features")
			}
		}
	}
}

func TestBuildErrors(t *testing.T) {
	corpus := mustCorpus(t, 1)
	if _, err := Build(ModelWindow, corpus, BuildConfig{AttackRatio: 1.5}); err == nil {
		t.Error("want ratio error")
	}
	if _, err := Build(Model("fishtank"), corpus, BuildConfig{}); err == nil {
		t.Error("want model error")
	}
	if _, err := Build(ModelWindow, nil, BuildConfig{}); err == nil {
		t.Error("want empty-corpus error")
	}
}

func TestBuildPositiveOverride(t *testing.T) {
	d, err := Build(ModelKitchen, nil, BuildConfig{Seed: 1, PositiveOverride: 100})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := d.ClassCounts()[1]; got != 100 {
		t.Errorf("positives = %d, want 100", got)
	}
}

func TestBuildAllCoversModels(t *testing.T) {
	corpus := mustCorpus(t, 1)
	all, err := BuildAll(corpus, BuildConfig{Seed: 2})
	if err != nil {
		t.Fatalf("BuildAll: %v", err)
	}
	if len(all) != len(Models()) {
		t.Fatalf("BuildAll built %d datasets", len(all))
	}
	for _, m := range Models() {
		d := all[m]
		if d == nil || d.Len() < 300 {
			t.Errorf("%s dataset too small: %v", m, d)
		}
	}
}

// TestTableVIShape is the dataset-level fidelity gate: under the paper's
// protocol (7:3 stratified split, oversampled training, natural test set) a
// gini tree must land in the Table VI band on every model — accuracy ≥ 0.85,
// training ≥ test accuracy, FPR ≤ 0.08, FNR ≤ 0.16 — and the window model's
// feature weights must put the smoke sensor first with the four discrete
// sensors carrying the bulk of the weight (Fig 6).
func TestTableVIShape(t *testing.T) {
	corpus := mustCorpus(t, 1)
	all, err := BuildAll(corpus, BuildConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Models() {
		m := m
		t.Run(string(m), func(t *testing.T) {
			rng := rand.New(rand.NewSource(9))
			train, test, err := all[m].SplitStratified(0.7, rng)
			if err != nil {
				t.Fatal(err)
			}
			bal, err := mlearn.OversampleRandom(train, rng)
			if err != nil {
				t.Fatal(err)
			}
			tr := tree.New(tree.Config{Criterion: tree.Gini, MinSamplesLeaf: 5})
			if err := tr.Fit(bal); err != nil {
				t.Fatal(err)
			}
			trainAcc := mlearn.Evaluate(tr, bal).Accuracy()
			mm := mlearn.Evaluate(tr, test)
			if mm.Accuracy() < 0.85 {
				t.Errorf("test accuracy = %v, below the Table VI band", mm.Accuracy())
			}
			if trainAcc < mm.Accuracy() {
				t.Errorf("train accuracy %v below test accuracy %v", trainAcc, mm.Accuracy())
			}
			if mm.FPR() > 0.08 {
				t.Errorf("FPR = %v, want ≈0 (Table VI)", mm.FPR())
			}
			if mm.FNR() > 0.16 {
				t.Errorf("FNR = %v, too high", mm.FNR())
			}
			if m == ModelWindow {
				weights, err := tr.FeatureWeights()
				if err != nil {
					t.Fatal(err)
				}
				if weights[0].Attr != "smoke" {
					t.Errorf("top window feature = %s, want smoke (Fig 6)", weights[0].Attr)
				}
				discrete := map[string]bool{"smoke": true, "combustible_gas": true, "voice_command": true, "door_lock": true}
				var cluster float64
				for _, w := range weights {
					if discrete[w.Attr] {
						cluster += w.Weight
					}
				}
				if cluster < 0.55 {
					t.Errorf("discrete top-4 cluster weight = %v, want dominant (Fig 6)", cluster)
				}
			}
		})
	}
}

func TestNoiseProfilesCalibrated(t *testing.T) {
	for _, m := range Models() {
		n := m.Noise()
		if n.LegalFromAttack <= 0 || n.LegalFromAttack > 0.2 {
			t.Errorf("%s LegalFromAttack = %v out of calibrated range", m, n.LegalFromAttack)
		}
		if n.AttackFromLegal < 0 || n.AttackFromLegal > 0.1 {
			t.Errorf("%s AttackFromLegal = %v out of calibrated range", m, n.AttackFromLegal)
		}
	}
	// The light concept is the paper's fuzziest — its noise must be the
	// highest so its accuracy lands lowest (Table VI).
	for _, m := range Models() {
		if m != ModelLight && m.Noise().LegalFromAttack >= ModelLight.Noise().LegalFromAttack {
			t.Errorf("%s noise %v not below light's %v", m, m.Noise().LegalFromAttack, ModelLight.Noise().LegalFromAttack)
		}
	}
}
