package dataset

import (
	"math/rand"
	"testing"

	"iotsid/internal/instr"
	"iotsid/internal/mlearn"
	"iotsid/internal/sensor"
)

func TestModelsTableVIOrder(t *testing.T) {
	ms := Models()
	want := []Model{ModelWindow, ModelAircon, ModelLight, ModelCurtain, ModelTV, ModelKitchen}
	if len(ms) != len(want) {
		t.Fatalf("Models() = %v", ms)
	}
	for i := range want {
		if ms[i] != want[i] {
			t.Fatalf("Models() = %v", ms)
		}
	}
}

func TestModelCategoryBijection(t *testing.T) {
	seen := make(map[instr.Category]bool)
	for _, m := range Models() {
		c, err := m.Category()
		if err != nil {
			t.Fatalf("%s.Category: %v", m, err)
		}
		if seen[c] {
			t.Errorf("category %v mapped twice", c)
		}
		seen[c] = true
		back, ok := ModelForCategory(c)
		if !ok || back != m {
			t.Errorf("ModelForCategory(%v) = %v, %v", c, back, ok)
		}
		if m.Title() == "" {
			t.Errorf("%s has no title", m)
		}
	}
	if _, err := Model("fishtank").Category(); err == nil {
		t.Error("want error for unknown model")
	}
	// Categories the paper excludes have no model.
	for _, c := range []instr.Category{instr.CatAlarm, instr.CatCamera, instr.CatVacuum} {
		if _, ok := ModelForCategory(c); ok {
			t.Errorf("category %v should have no model", c)
		}
	}
}

func TestWindowFeaturesMatchFig6(t *testing.T) {
	want := []sensor.Feature{
		sensor.FeatSmoke, sensor.FeatGas, sensor.FeatVoiceCmd,
		sensor.FeatDoorLock, sensor.FeatTempIndoor, sensor.FeatAirQuality,
		sensor.FeatWeather, sensor.FeatMotion, sensor.FeatHour,
	}
	got := ModelWindow.Features()
	if len(got) != 9 {
		t.Fatalf("window features = %v, want the nine of Fig 6", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("feature %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSchemasWellFormed(t *testing.T) {
	for _, m := range Models() {
		s, err := m.Schema()
		if err != nil {
			t.Fatalf("%s.Schema: %v", m, err)
		}
		if s.Len() != len(m.Features()) {
			t.Errorf("%s schema width %d, features %d", m, s.Len(), len(m.Features()))
		}
		// Mixed data: at least one numeric and one categorical attribute
		// per model (the paper's motivation for decision trees).
		var num, cat bool
		for _, a := range s.Attrs {
			switch a.Kind {
			case mlearn.Numeric:
				num = true
			case mlearn.Categorical:
				cat = true
			}
		}
		if !num || !cat {
			t.Errorf("%s schema not mixed: numeric=%v categorical=%v", m, num, cat)
		}
	}
	if _, err := Model("fishtank").Schema(); err == nil {
		t.Error("want error for unknown model")
	}
}

func TestFeaturizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, m := range Models() {
		schema, err := m.Schema()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			for _, gen := range []func(Model, *rand.Rand) (sensor.Snapshot, error){LegalScene, AttackScene} {
				snap, err := gen(m, rng)
				if err != nil {
					t.Fatalf("%s scene: %v", m, err)
				}
				if err := snap.Validate(); err != nil {
					t.Fatalf("%s scene invalid: %v", m, err)
				}
				x, err := m.Featurize(snap)
				if err != nil {
					t.Fatalf("%s featurize: %v", m, err)
				}
				if len(x) != schema.Len() {
					t.Fatalf("%s vector width %d", m, len(x))
				}
				// The vector must be addable to a dataset (validates
				// categorical ranges).
				d := mlearn.NewDataset(schema)
				if err := d.Add(x, 1); err != nil {
					t.Fatalf("%s vector rejected: %v", m, err)
				}
			}
		}
	}
}

func TestFeaturizeErrors(t *testing.T) {
	empty := sensor.NewSnapshot(sceneTime)
	if _, err := ModelWindow.Featurize(empty); err == nil {
		t.Error("want error for missing features")
	}
	if _, err := Model("fishtank").Featurize(empty); err == nil {
		t.Error("want error for unknown model")
	}
	// Wrong value type for a feature.
	bad := sensor.NewSnapshot(sceneTime)
	for _, f := range ModelWindow.Features() {
		bad.Set(f, sensor.Number(1)) // smoke should be bool
	}
	if _, err := ModelWindow.Featurize(bad); err == nil {
		t.Error("want error for mistyped feature")
	}
}

func TestSceneGeneratorsUnknownModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := LegalScene(Model("fishtank"), rng); err == nil {
		t.Error("want error")
	}
	if _, err := AttackScene(Model("fishtank"), rng); err == nil {
		t.Error("want error")
	}
}

func TestFeaturizeIntoMatchesFeaturize(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, m := range Models() {
		buf := make([]float64, m.FeatureWidth())
		for i := 0; i < 50; i++ {
			gen := LegalScene
			if i%2 == 1 {
				gen = AttackScene
			}
			snap, err := gen(m, rng)
			if err != nil {
				t.Fatal(err)
			}
			want, err := m.Featurize(snap)
			if err != nil {
				t.Fatal(err)
			}
			// Dirty the buffer to prove every slot is written.
			for j := range buf {
				buf[j] = -99
			}
			if err := m.FeaturizeInto(snap, buf); err != nil {
				t.Fatalf("%s FeaturizeInto: %v", m, err)
			}
			for j := range want {
				if buf[j] != want[j] {
					t.Fatalf("%s slot %d: into = %v, featurize = %v", m, j, buf[j], want[j])
				}
			}
		}
	}
}

func TestFeaturizeIntoErrors(t *testing.T) {
	snap, err := LegalSceneSeeded(ModelWindow, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ModelWindow.FeaturizeInto(snap, make([]float64, 2)); err == nil {
		t.Error("want width-mismatch error")
	}
	if err := Model("fishtank").FeaturizeInto(snap, nil); err == nil {
		t.Error("want unknown-model error")
	}
	if ModelWindow.FeatureWidth() != len(ModelWindow.Features()) {
		t.Error("FeatureWidth disagrees with Features")
	}
	if Model("fishtank").FeatureWidth() != 0 {
		t.Error("unknown model width should be 0")
	}
}
