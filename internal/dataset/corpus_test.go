package dataset

import (
	"testing"

	"iotsid/internal/automation"
	"iotsid/internal/instr"
)

func mustCorpus(t *testing.T, seed int64) []Strategy {
	t.Helper()
	c, err := Corpus(CorpusConfig{Seed: seed})
	if err != nil {
		t.Fatalf("Corpus: %v", err)
	}
	return c
}

func TestCorpusSizeAndComposition(t *testing.T) {
	c := mustCorpus(t, 1)
	if len(c) != BaseCorpusSize {
		t.Fatalf("corpus size = %d, want %d", len(c), BaseCorpusSize)
	}
	warn := WarnStats(c)
	var warnTotal int
	for _, n := range warn {
		warnTotal += n
	}
	if warnTotal != CameraWarnCount {
		t.Errorf("camera-warning strategies = %d, want %d (Fig 7)", warnTotal, CameraWarnCount)
	}
	// Fig 7 mix: door/window openings dominate, then smoke/fire, water,
	// gas, motion.
	order := []WarnTrigger{WarnDoorWindowOpened, WarnSmokeFire, WarnWaterLeak, WarnGas, WarnMotion}
	for i := 1; i < len(order); i++ {
		if warn[order[i-1]] <= warn[order[i]] {
			t.Errorf("warn mix not ordered: %v=%d <= %v=%d",
				order[i-1], warn[order[i-1]], order[i], warn[order[i]])
		}
	}
	// Every model's category has non-warning strategies to expand.
	for _, m := range Models() {
		cat, err := m.Category()
		if err != nil {
			t.Fatal(err)
		}
		var n int
		for _, s := range c {
			if s.Category == cat && s.Warn == WarnNone {
				n++
			}
		}
		if n == 0 {
			t.Errorf("no strategies for model %s", m)
		}
	}
}

func TestCorpusRulesParseAndTarget(t *testing.T) {
	c := mustCorpus(t, 2)
	parser := automation.NewParser(instr.BuiltinRegistry())
	for _, s := range c[:50] {
		r, err := parser.ParseRule(s.Name, s.RuleText)
		if err != nil {
			t.Fatalf("strategy %d %q: %v", s.ID, s.RuleText, err)
		}
		spec, ok := instr.BuiltinRegistry().Lookup(r.Action.Op)
		if !ok {
			t.Fatalf("strategy %d action %q unknown", s.ID, r.Action.Op)
		}
		if spec.Category != s.Category {
			t.Errorf("strategy %d category %v, action category %v", s.ID, s.Category, spec.Category)
		}
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a := mustCorpus(t, 7)
	b := mustCorpus(t, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("corpus diverges at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestCorpusPopularityZipf(t *testing.T) {
	c := mustCorpus(t, 3)
	counts := UserCounts(c)
	if len(counts) != BaseCorpusSize {
		t.Fatalf("UserCounts len = %d", len(counts))
	}
	for i := 1; i < len(counts); i++ {
		if counts[i-1] < counts[i] {
			t.Fatal("UserCounts not sorted descending")
		}
	}
	if counts[0] < 10000 {
		t.Errorf("head popularity %d suspiciously small", counts[0])
	}
	if counts[len(counts)-1] < 1 {
		t.Error("tail popularity must be at least 1")
	}
	// Heavy tail: the top 10% of strategies carry most users (Fig 5).
	var head, total int
	for i, n := range counts {
		total += n
		if i < len(counts)/10 {
			head += n
		}
	}
	if float64(head)/float64(total) < 0.5 {
		t.Errorf("head share = %v, want heavy tail", float64(head)/float64(total))
	}
}

func TestWarnTriggerString(t *testing.T) {
	names := map[WarnTrigger]string{
		WarnNone: "none", WarnDoorWindowOpened: "door_window_opened",
		WarnSmokeFire: "smoke_fire", WarnWaterLeak: "water_leak",
		WarnGas: "combustible_gas", WarnMotion: "motion",
	}
	for w, want := range names {
		if w.String() != want {
			t.Errorf("%d = %q, want %q", w, w.String(), want)
		}
	}
	if WarnTrigger(99).String() != "warn(99)" {
		t.Error("unknown trigger name")
	}
}

func TestExpansion(t *testing.T) {
	if Expansion(0, 40) != 1 {
		t.Error("zero users should still yield one example")
	}
	if Expansion(100, 40) != 10 {
		t.Errorf("Expansion(100) = %d", Expansion(100, 40))
	}
	if Expansion(1<<20, 40) != 40 {
		t.Error("cap not applied")
	}
}
