package dataset

import (
	"fmt"
	"math/rand"
	"time"

	"iotsid/internal/sensor"
)

// Scene generators: for every device model, LegalScene draws a sensor
// context in which the model's sensitive control instruction is part of a
// legitimate activity scene, and AttackScene draws a context-violating one
// (spoofed sensors, nobody-home commands, replayed voice, physical-
// interaction hazards). These are the positive and negative samples of the
// paper's learning problem.
//
// The generators themselves produce crisply separable classes; the residual
// error rates of Table VI come from Build's calibrated context noise — a
// per-model fraction of legal commands issued from attack-looking contexts
// (and, for the window model, attacks staged inside legal-looking contexts).

// sceneTime anchors generated snapshots; only the hour-of-day feature
// matters to the models.
var sceneTime = time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC)

type sampler struct{ r *rand.Rand }

func (s sampler) b(p float64) bool            { return s.r.Float64() < p }
func (s sampler) f(lo, hi float64) float64    { return lo + s.r.Float64()*(hi-lo) }
func (s sampler) pick(xs ...string) string    { return xs[s.r.Intn(len(xs))] }
func (s sampler) hour(lo, hi float64) float64 { return s.f(lo, hi) }

func (s sampler) set(snap sensor.Snapshot, f sensor.Feature, v sensor.Value) {
	snap.Set(f, v)
}

// LegalScene draws a positive-context snapshot for the model.
func LegalScene(m Model, rng *rand.Rand) (sensor.Snapshot, error) {
	s := sampler{r: rng}
	snap := sensor.NewSnapshot(sceneTime)
	switch m {
	case ModelWindow:
		legalWindow(s, snap)
	case ModelAircon:
		legalAircon(s, snap)
	case ModelLight:
		legalLight(s, snap)
	case ModelCurtain:
		legalCurtain(s, snap)
	case ModelTV:
		legalTV(s, snap)
	case ModelKitchen:
		legalKitchen(s, snap)
	default:
		return sensor.Snapshot{}, fmt.Errorf("dataset: unknown model %q", m)
	}
	return snap, nil
}

// LegalSceneSeeded is a convenience wrapper drawing one legal scene from a
// fresh seeded source.
func LegalSceneSeeded(m Model, seed int64) (sensor.Snapshot, error) {
	return LegalScene(m, rand.New(rand.NewSource(seed)))
}

// AttackSceneSeeded is a convenience wrapper drawing one attack scene from
// a fresh seeded source.
func AttackSceneSeeded(m Model, seed int64) (sensor.Snapshot, error) {
	return AttackScene(m, rand.New(rand.NewSource(seed)))
}

// AttackScene draws a negative-context snapshot for the model.
func AttackScene(m Model, rng *rand.Rand) (sensor.Snapshot, error) {
	s := sampler{r: rng}
	snap := sensor.NewSnapshot(sceneTime)
	switch m {
	case ModelWindow:
		attackWindow(s, snap)
	case ModelAircon:
		attackAircon(s, snap)
	case ModelLight:
		attackLight(s, snap)
	case ModelCurtain:
		attackCurtain(s, snap)
	case ModelTV:
		attackTV(s, snap)
	case ModelKitchen:
		attackKitchen(s, snap)
	default:
		return sensor.Snapshot{}, fmt.Errorf("dataset: unknown model %q", m)
	}
	return snap, nil
}

// --- window (sensitive instruction: window.open) ---

// The window scenes form a boolean evidence cascade — smoke, then gas, then
// voice, then lock — so the trained tree's feature weights reproduce the
// Fig 6 ordering: the four discrete sensors carry most of the weight, with
// air quality, temperature, weather, motion and hour as weak correlates.
// Spoofed-smoke attacks are only separable from genuine hazards by the air
// quality correlate, and imperfectly so — that residue is the window
// model's (and the paper's) non-zero false-alarm rate.
func legalWindow(s sampler, snap sensor.Snapshot) {
	// Weak correlates shared by all legal scenes.
	snap.Set(sensor.FeatTempIndoor, sensor.Number(s.f(16, 30)))
	snap.Set(sensor.FeatWeather, sensor.Label(s.pick(sensor.WeatherSunny, sensor.WeatherSunny, sensor.WeatherCloudy, sensor.WeatherRain)))
	snap.Set(sensor.FeatMotion, sensor.Bool(s.b(0.7)))
	snap.Set(sensor.FeatHour, sensor.Number(s.hour(0, 24)))
	if s.b(0.74) { // hazard ventilation: smoke or gas detected
		smoke := s.b(0.85)
		snap.Set(sensor.FeatSmoke, sensor.Bool(smoke))
		snap.Set(sensor.FeatGas, sensor.Bool(!smoke || s.b(0.1)))
		snap.Set(sensor.FeatAirQuality, sensor.Number(s.f(60, 220)))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(s.b(0.15)))
		snap.Set(sensor.FeatDoorLock, sensor.Label(s.pick(sensor.LockLocked, sensor.LockLocked, sensor.LockUnlocked)))
	} else { // voice-commanded airing inside a locked home
		snap.Set(sensor.FeatSmoke, sensor.Bool(false))
		snap.Set(sensor.FeatGas, sensor.Bool(false))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(true))
		snap.Set(sensor.FeatDoorLock, sensor.Label(sensor.LockLocked))
		snap.Set(sensor.FeatAirQuality, sensor.Number(s.f(40, 150)))
		snap.Set(sensor.FeatHour, sensor.Number(s.hour(6, 23.5)))
	}
}

func attackWindow(s sampler, snap sensor.Snapshot) {
	// Weak correlates shared by all attack scenes.
	snap.Set(sensor.FeatTempIndoor, sensor.Number(s.f(15, 30)))
	snap.Set(sensor.FeatWeather, sensor.Label(s.pick(sensor.WeatherSunny, sensor.WeatherCloudy, sensor.WeatherRain, sensor.WeatherSnow)))
	snap.Set(sensor.FeatHour, sensor.Number(s.hour(0, 24)))
	snap.Set(sensor.FeatAirQuality, sensor.Number(s.f(20, 160)))
	switch {
	case s.b(0.76): // burglary preparation: quiet home, no hazard, no voice
		snap.Set(sensor.FeatSmoke, sensor.Bool(false))
		snap.Set(sensor.FeatGas, sensor.Bool(false))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(false))
		snap.Set(sensor.FeatDoorLock, sensor.Label(s.pick(sensor.LockUnlocked, sensor.LockLocked)))
		snap.Set(sensor.FeatMotion, sensor.Bool(s.b(0.4)))
	case s.b(0.2): // spoofed smoke: the boolean is forged, but the attacker
		// does not control the physical air-quality sensor, which keeps
		// reading clean air — the correlate inconsistency the IDS keys on.
		snap.Set(sensor.FeatSmoke, sensor.Bool(true))
		snap.Set(sensor.FeatGas, sensor.Bool(false))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(false))
		snap.Set(sensor.FeatDoorLock, sensor.Label(s.pick(sensor.LockLocked, sensor.LockUnlocked)))
		snap.Set(sensor.FeatAirQuality, sensor.Number(s.f(25, 70)))
		snap.Set(sensor.FeatMotion, sensor.Bool(s.b(0.3)))
	default: // replayed voice command into an unlocked, still house
		snap.Set(sensor.FeatSmoke, sensor.Bool(false))
		snap.Set(sensor.FeatGas, sensor.Bool(false))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(true))
		snap.Set(sensor.FeatDoorLock, sensor.Label(sensor.LockUnlocked))
		snap.Set(sensor.FeatMotion, sensor.Bool(s.b(0.3)))
	}
}

// --- air conditioning (sensitive instruction: aircon.on / set mode) ---

func legalAircon(s sampler, snap sensor.Snapshot) {
	switch {
	case s.b(0.55): // hot day, people home
		snap.Set(sensor.FeatTempIndoor, sensor.Number(s.f(27, 35)))
		snap.Set(sensor.FeatTempOutdoor, sensor.Number(s.f(28, 40)))
		snap.Set(sensor.FeatOccupancy, sensor.Bool(true))
		snap.Set(sensor.FeatHour, sensor.Number(s.hour(9, 23.5)))
		snap.Set(sensor.FeatHumidity, sensor.Number(s.f(40, 85)))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(s.b(0.35)))
		snap.Set(sensor.FeatWindowOpen, sensor.Bool(s.b(0.05)))
	case s.b(0.55): // voice command while home
		snap.Set(sensor.FeatTempIndoor, sensor.Number(s.f(24, 33)))
		snap.Set(sensor.FeatTempOutdoor, sensor.Number(s.f(20, 38)))
		snap.Set(sensor.FeatOccupancy, sensor.Bool(true))
		snap.Set(sensor.FeatHour, sensor.Number(s.hour(7, 23.5)))
		snap.Set(sensor.FeatHumidity, sensor.Number(s.f(35, 80)))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(true))
		snap.Set(sensor.FeatWindowOpen, sensor.Bool(s.b(0.06)))
	default: // pre-cool before the household returns
		snap.Set(sensor.FeatTempIndoor, sensor.Number(s.f(28, 34)))
		snap.Set(sensor.FeatTempOutdoor, sensor.Number(s.f(29, 41)))
		snap.Set(sensor.FeatOccupancy, sensor.Bool(false))
		snap.Set(sensor.FeatHour, sensor.Number(s.hour(16, 18.5)))
		snap.Set(sensor.FeatHumidity, sensor.Number(s.f(40, 80)))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(false))
		snap.Set(sensor.FeatWindowOpen, sensor.Bool(false))
	}
}

func attackAircon(s sampler, snap sensor.Snapshot) {
	switch {
	case s.b(0.45): // energy-waste attack: cooling an already-cold empty home
		snap.Set(sensor.FeatTempIndoor, sensor.Number(s.f(15, 22)))
		snap.Set(sensor.FeatTempOutdoor, sensor.Number(s.f(-5, 18)))
		snap.Set(sensor.FeatOccupancy, sensor.Bool(false))
		snap.Set(sensor.FeatHour, sensor.Number(s.hour(0, 24)))
		snap.Set(sensor.FeatHumidity, sensor.Number(s.f(30, 70)))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(false))
		snap.Set(sensor.FeatWindowOpen, sensor.Bool(s.b(0.3)))
	case s.b(0.6): // night toggle with nobody home
		snap.Set(sensor.FeatTempIndoor, sensor.Number(s.f(18, 25)))
		snap.Set(sensor.FeatTempOutdoor, sensor.Number(s.f(5, 24)))
		snap.Set(sensor.FeatOccupancy, sensor.Bool(false))
		snap.Set(sensor.FeatHour, sensor.Number(s.hour(0, 6)))
		snap.Set(sensor.FeatHumidity, sensor.Number(s.f(30, 70)))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(s.b(0.1)))
		snap.Set(sensor.FeatWindowOpen, sensor.Bool(s.b(0.15)))
	default: // window-open interaction (Fig 2): cool the street
		snap.Set(sensor.FeatTempIndoor, sensor.Number(s.f(20, 27)))
		snap.Set(sensor.FeatTempOutdoor, sensor.Number(s.f(10, 26)))
		snap.Set(sensor.FeatOccupancy, sensor.Bool(s.b(0.4)))
		snap.Set(sensor.FeatHour, sensor.Number(s.hour(0, 24)))
		snap.Set(sensor.FeatHumidity, sensor.Number(s.f(30, 80)))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(false))
		snap.Set(sensor.FeatWindowOpen, sensor.Bool(true))
	}
}

// --- light (sensitive instruction: light.on) ---

func legalLight(s sampler, snap sensor.Snapshot) {
	switch {
	case s.b(0.5): // dark + someone moving
		snap.Set(sensor.FeatIlluminance, sensor.Number(s.f(0, 140)))
		snap.Set(sensor.FeatMotion, sensor.Bool(true))
		snap.Set(sensor.FeatOccupancy, sensor.Bool(true))
		if s.b(0.7) {
			snap.Set(sensor.FeatHour, sensor.Number(s.hour(17, 24)))
		} else {
			snap.Set(sensor.FeatHour, sensor.Number(s.hour(5, 8)))
		}
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(s.b(0.3)))
	case s.b(0.5): // voice command while home
		snap.Set(sensor.FeatIlluminance, sensor.Number(s.f(0, 400)))
		snap.Set(sensor.FeatMotion, sensor.Bool(s.b(0.8)))
		snap.Set(sensor.FeatOccupancy, sensor.Bool(true))
		snap.Set(sensor.FeatHour, sensor.Number(s.hour(6, 24)))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(true))
	default: // dark gloomy day, people home
		snap.Set(sensor.FeatIlluminance, sensor.Number(s.f(20, 220)))
		snap.Set(sensor.FeatMotion, sensor.Bool(s.b(0.65)))
		snap.Set(sensor.FeatOccupancy, sensor.Bool(true))
		snap.Set(sensor.FeatHour, sensor.Number(s.hour(8, 18)))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(s.b(0.2)))
	}
}

func attackLight(s sampler, snap sensor.Snapshot) {
	switch {
	case s.b(0.55): // casing the house: lights on while away at night
		snap.Set(sensor.FeatIlluminance, sensor.Number(s.f(0, 120)))
		snap.Set(sensor.FeatMotion, sensor.Bool(s.b(0.1)))
		snap.Set(sensor.FeatOccupancy, sensor.Bool(false))
		snap.Set(sensor.FeatHour, sensor.Number(s.hour(0, 5.5)))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(false))
	default: // pointless daylight blast (energy waste / harassment)
		snap.Set(sensor.FeatIlluminance, sensor.Number(s.f(1500, 9000)))
		snap.Set(sensor.FeatMotion, sensor.Bool(s.b(0.3)))
		snap.Set(sensor.FeatOccupancy, sensor.Bool(s.b(0.35)))
		snap.Set(sensor.FeatHour, sensor.Number(s.hour(9, 16)))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(false))
	}
}

// --- curtain (sensitive instruction: curtain.open) ---

func legalCurtain(s sampler, snap sensor.Snapshot) {
	switch {
	case s.b(0.5): // morning open, people home
		snap.Set(sensor.FeatIlluminance, sensor.Number(s.f(150, 2500)))
		snap.Set(sensor.FeatHour, sensor.Number(s.hour(6, 10.5)))
		snap.Set(sensor.FeatOccupancy, sensor.Bool(true))
		snap.Set(sensor.FeatWeather, sensor.Label(s.pick(sensor.WeatherSunny, sensor.WeatherSunny, sensor.WeatherCloudy)))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(s.b(0.25)))
		snap.Set(sensor.FeatMotion, sensor.Bool(s.b(0.85)))
	case s.b(0.55): // voice command
		snap.Set(sensor.FeatIlluminance, sensor.Number(s.f(100, 5000)))
		snap.Set(sensor.FeatHour, sensor.Number(s.hour(7, 21)))
		snap.Set(sensor.FeatOccupancy, sensor.Bool(true))
		snap.Set(sensor.FeatWeather, sensor.Label(s.pick(sensor.WeatherSunny, sensor.WeatherCloudy, sensor.WeatherRain)))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(true))
		snap.Set(sensor.FeatMotion, sensor.Bool(s.b(0.9)))
	default: // daylight harvesting on a bright day
		snap.Set(sensor.FeatIlluminance, sensor.Number(s.f(800, 7000)))
		snap.Set(sensor.FeatHour, sensor.Number(s.hour(9, 17)))
		snap.Set(sensor.FeatOccupancy, sensor.Bool(s.b(0.8)))
		snap.Set(sensor.FeatWeather, sensor.Label(sensor.WeatherSunny))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(s.b(0.15)))
		snap.Set(sensor.FeatMotion, sensor.Bool(s.b(0.7)))
	}
}

func attackCurtain(s sampler, snap sensor.Snapshot) {
	switch {
	case s.b(0.6): // privacy attack: open the curtains at night
		snap.Set(sensor.FeatIlluminance, sensor.Number(s.f(0, 60)))
		snap.Set(sensor.FeatHour, sensor.Number(s.hour(0, 4.5)))
		snap.Set(sensor.FeatOccupancy, sensor.Bool(s.b(0.5)))
		snap.Set(sensor.FeatWeather, sensor.Label(s.pick(sensor.WeatherCloudy, sensor.WeatherRain, sensor.WeatherSnow)))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(false))
		snap.Set(sensor.FeatMotion, sensor.Bool(s.b(0.1)))
	default: // surveillance: open while nobody home
		snap.Set(sensor.FeatIlluminance, sensor.Number(s.f(50, 3000)))
		snap.Set(sensor.FeatHour, sensor.Number(s.hour(9, 17)))
		snap.Set(sensor.FeatOccupancy, sensor.Bool(false))
		snap.Set(sensor.FeatWeather, sensor.Label(s.pick(sensor.WeatherSunny, sensor.WeatherCloudy, sensor.WeatherRain)))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(false))
		snap.Set(sensor.FeatMotion, sensor.Bool(false))
	}
}

// --- TV / stereo (sensitive instruction: tv.on) ---

func legalTV(s sampler, snap sensor.Snapshot) {
	switch {
	case s.b(0.6): // evening viewing
		snap.Set(sensor.FeatOccupancy, sensor.Bool(true))
		snap.Set(sensor.FeatHour, sensor.Number(s.hour(17, 23.8)))
		snap.Set(sensor.FeatNoise, sensor.Number(s.f(35, 60)))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(s.b(0.4)))
		snap.Set(sensor.FeatMotion, sensor.Bool(s.b(0.9)))
	default: // daytime voice command
		snap.Set(sensor.FeatOccupancy, sensor.Bool(true))
		snap.Set(sensor.FeatHour, sensor.Number(s.hour(8, 17)))
		snap.Set(sensor.FeatNoise, sensor.Number(s.f(32, 55)))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(s.b(0.8)))
		snap.Set(sensor.FeatMotion, sensor.Bool(s.b(0.85)))
	}
}

func attackTV(s sampler, snap sensor.Snapshot) {
	switch {
	case s.b(0.6): // scare attack: blast audio at night
		snap.Set(sensor.FeatOccupancy, sensor.Bool(s.b(0.4)))
		snap.Set(sensor.FeatHour, sensor.Number(s.hour(0.5, 5.5)))
		snap.Set(sensor.FeatNoise, sensor.Number(s.f(28, 40)))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(false))
		snap.Set(sensor.FeatMotion, sensor.Bool(s.b(0.1)))
	default: // empty-home switch-on
		snap.Set(sensor.FeatOccupancy, sensor.Bool(false))
		snap.Set(sensor.FeatHour, sensor.Number(s.hour(8, 17)))
		snap.Set(sensor.FeatNoise, sensor.Number(s.f(28, 38)))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(s.b(0.12)))
		snap.Set(sensor.FeatMotion, sensor.Bool(false))
	}
}

// --- kitchen (sensitive instruction: cooker.start / oven.preheat) ---

func legalKitchen(s sampler, snap sensor.Snapshot) {
	meal := s.r.Intn(3)
	var lo, hi float64
	switch meal {
	case 0:
		lo, hi = 6, 9
	case 1:
		lo, hi = 11, 13.5
	default:
		lo, hi = 17, 20.5
	}
	snap.Set(sensor.FeatOccupancy, sensor.Bool(true))
	snap.Set(sensor.FeatHour, sensor.Number(s.hour(lo, hi)))
	snap.Set(sensor.FeatSmoke, sensor.Bool(false))
	snap.Set(sensor.FeatPowerDraw, sensor.Number(s.f(80, 600)))
	snap.Set(sensor.FeatVoiceCmd, sensor.Bool(s.b(0.35)))
}

func attackKitchen(s sampler, snap sensor.Snapshot) {
	switch {
	case s.b(0.5): // fire-risk attack: heat an empty home
		snap.Set(sensor.FeatOccupancy, sensor.Bool(false))
		snap.Set(sensor.FeatHour, sensor.Number(s.hour(9, 16)))
		snap.Set(sensor.FeatSmoke, sensor.Bool(s.b(0.15)))
		snap.Set(sensor.FeatPowerDraw, sensor.Number(s.f(900, 3200)))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(false))
	case s.b(0.6): // night start
		snap.Set(sensor.FeatOccupancy, sensor.Bool(s.b(0.6)))
		snap.Set(sensor.FeatHour, sensor.Number(s.hour(0.5, 5)))
		snap.Set(sensor.FeatSmoke, sensor.Bool(false))
		snap.Set(sensor.FeatPowerDraw, sensor.Number(s.f(80, 500)))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(false))
	default: // start while smoke already detected
		snap.Set(sensor.FeatOccupancy, sensor.Bool(s.b(0.5)))
		snap.Set(sensor.FeatHour, sensor.Number(s.hour(6, 21)))
		snap.Set(sensor.FeatSmoke, sensor.Bool(true))
		snap.Set(sensor.FeatPowerDraw, sensor.Number(s.f(700, 3000)))
		snap.Set(sensor.FeatVoiceCmd, sensor.Bool(false))
	}
}
