package dataset

import "testing"

// TestFeaturizeIntoZeroAllocs gates the encoding half of the inference fast
// path: filling a caller-provided feature buffer from a snapshot must not
// allocate, for every model. FeatureMemory.Judge leans on this via its
// buffer pool.
func TestFeaturizeIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	for _, m := range Models() {
		snap, err := LegalSceneSeeded(m, 3)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]float64, m.FeatureWidth())
		allocs := testing.AllocsPerRun(500, func() {
			if err := m.FeaturizeInto(snap, buf); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: FeaturizeInto allocates %.1f objects/op, want 0", m, allocs)
		}
	}
}
