package mlearn

import (
	"math"
	"testing"
)

func TestStandardizer(t *testing.T) {
	d := NewDataset(testSchema(t))
	for _, row := range [][]float64{{10, 0, 1}, {20, 1, 0}, {30, 0, 1}} {
		if err := d.Add(row, 1); err != nil {
			t.Fatal(err)
		}
	}
	st, err := FitStandardizer(d)
	if err != nil {
		t.Fatalf("FitStandardizer: %v", err)
	}
	z := st.Transform([]float64{20, 1, 0})
	if math.Abs(z[0]) > 1e-12 {
		t.Errorf("mean row should z-score to 0, got %v", z[0])
	}
	// Categorical cells pass through untouched.
	if z[1] != 1 || z[2] != 0 {
		t.Errorf("categorical cells mutated: %v", z)
	}
	// Transform copies.
	in := []float64{10, 0, 1}
	_ = st.Transform(in)
	if in[0] != 10 {
		t.Error("Transform mutated input")
	}
	// z-scored training column has unit variance.
	var ss float64
	for _, row := range d.X {
		zr := st.Transform(row)
		ss += zr[0] * zr[0]
	}
	if math.Abs(ss/3-1) > 1e-9 {
		t.Errorf("variance after z-score = %v", ss/3)
	}
}

func TestStandardizerConstantColumn(t *testing.T) {
	d := NewDataset(testSchema(t))
	for i := 0; i < 3; i++ {
		if err := d.Add([]float64{7, 0, 0}, 1); err != nil {
			t.Fatal(err)
		}
	}
	st, err := FitStandardizer(d)
	if err != nil {
		t.Fatal(err)
	}
	z := st.Transform([]float64{7, 0, 0})
	if z[0] != 0 {
		t.Errorf("constant column should z-score to 0, got %v", z[0])
	}
}

func TestStandardizerEmpty(t *testing.T) {
	if _, err := FitStandardizer(NewDataset(testSchema(t))); err == nil {
		t.Error("want empty error")
	}
}

func TestOneHotEncode(t *testing.T) {
	d := NewDataset(testSchema(t))
	for _, row := range [][]float64{{10, 0, 1}, {20, 1, 0}} {
		if err := d.Add(row, 1); err != nil {
			t.Fatal(err)
		}
	}
	enc, err := FitOneHot(d)
	if err != nil {
		t.Fatalf("FitOneHot: %v", err)
	}
	// 1 numeric + 2 categories + 2 categories = 5 columns.
	if enc.Width() != 5 {
		t.Fatalf("Width = %d", enc.Width())
	}
	v := enc.Encode([]float64{10, 1, 0})
	if len(v) != 5 {
		t.Fatalf("encoded len = %d", len(v))
	}
	// weather=rain -> [0,1]; motion=no -> [1,0].
	if v[1] != 0 || v[2] != 1 || v[3] != 1 || v[4] != 0 {
		t.Errorf("one-hot block = %v", v[1:])
	}
	// Out-of-range category index encodes as all-zeros, not a panic.
	v = enc.Encode([]float64{10, 9, 0})
	if v[1] != 0 || v[2] != 0 {
		t.Errorf("out-of-range category = %v", v[1:3])
	}
}
