package mlearn

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestCrossValidateDeterminism: fold partitions are drawn from the caller's
// generator before the fan-out and fold confusions pool in index order, so
// the parallel result is identical to the serial one — and the caller's
// generator ends in the same state either way.
func TestCrossValidateDeterminism(t *testing.T) {
	d := imbalanced(t, 60, 40, 8)
	factory := func() Classifier { return thresholdClassifier{} }

	rngSerial := rand.New(rand.NewSource(7))
	serial, err := CrossValidateWorkers(factory, d, 5, rngSerial, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		rngPar := rand.New(rand.NewSource(7))
		parallel, err := CrossValidateWorkers(factory, d, 5, rngPar, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("workers=%d: result diverges: %+v vs %+v", workers, serial, parallel)
		}
		if rngSerial.Int63() != rngPar.Int63() {
			t.Errorf("workers=%d: caller generator state diverges after the call", workers)
		}
		rngSerial = rand.New(rand.NewSource(7))
		if _, err := CrossValidateWorkers(factory, d, 5, rngSerial, 1); err != nil {
			t.Fatal(err)
		}
	}
	// The 4-arg CrossValidate stays the serial path.
	a, err := CrossValidate(factory, d, 5, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidateWorkers(factory, d, 5, rand.New(rand.NewSource(7)), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("CrossValidate != CrossValidateWorkers(1): %+v vs %+v", a, b)
	}
}
