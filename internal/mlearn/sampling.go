package mlearn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// OversampleRandom balances the dataset by duplicating minority-class
// examples uniformly at random until every class matches the majority class
// count. This is the paper's chosen fix for its heavily positive-skewed
// automation-strategy corpus (§IV-C-2).
func OversampleRandom(d *Dataset, rng *rand.Rand) (*Dataset, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("mlearn: empty dataset")
	}
	if rng == nil {
		return nil, fmt.Errorf("mlearn: nil rng")
	}
	counts := d.ClassCounts()
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	out := d.Clone()
	byClass := make(map[int][]int)
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	classes := d.Classes()
	for _, c := range classes {
		idx := byClass[c]
		for n := len(idx); n < max; n++ {
			src := idx[rng.Intn(len(idx))]
			row := make([]float64, len(d.X[src]))
			copy(row, d.X[src])
			out.X = append(out.X, row)
			out.Y = append(out.Y, c)
		}
	}
	return out, nil
}

// OversampleSMOTE balances the dataset with SMOTE: each synthetic minority
// example interpolates a random minority example toward one of its k nearest
// minority neighbours. Numeric attributes interpolate linearly; categorical
// attributes copy from one endpoint at random.
func OversampleSMOTE(d *Dataset, k int, rng *rand.Rand) (*Dataset, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("mlearn: empty dataset")
	}
	if rng == nil {
		return nil, fmt.Errorf("mlearn: nil rng")
	}
	if k < 1 {
		return nil, fmt.Errorf("mlearn: SMOTE k must be ≥1, got %d", k)
	}
	counts := d.ClassCounts()
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	out := d.Clone()
	byClass := make(map[int][]int)
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	for _, c := range d.Classes() {
		idx := byClass[c]
		need := max - len(idx)
		if need <= 0 {
			continue
		}
		if len(idx) == 1 {
			// A single example has no neighbours: fall back to duplication.
			for n := 0; n < need; n++ {
				row := make([]float64, len(d.X[idx[0]]))
				copy(row, d.X[idx[0]])
				out.X = append(out.X, row)
				out.Y = append(out.Y, c)
			}
			continue
		}
		kk := k
		if kk > len(idx)-1 {
			kk = len(idx) - 1
		}
		neighbours := nearestWithinClass(d, idx, kk)
		for n := 0; n < need; n++ {
			a := rng.Intn(len(idx))
			b := neighbours[a][rng.Intn(kk)]
			row := synthesize(d, d.X[idx[a]], d.X[b], rng)
			out.X = append(out.X, row)
			out.Y = append(out.Y, c)
		}
	}
	return out, nil
}

// nearestWithinClass computes, for each member of idx, the indices (into the
// full dataset) of its k nearest same-class neighbours under the mixed
// euclidean/hamming distance.
func nearestWithinClass(d *Dataset, idx []int, k int) [][]int {
	out := make([][]int, len(idx))
	for i, a := range idx {
		type cand struct {
			j    int
			dist float64
		}
		cands := make([]cand, 0, len(idx)-1)
		for _, b := range idx {
			if a == b {
				continue
			}
			cands = append(cands, cand{j: b, dist: MixedDistance(d.Schema, d.X[a], d.X[b])})
		}
		sort.Slice(cands, func(x, y int) bool {
			if cands[x].dist != cands[y].dist {
				return cands[x].dist < cands[y].dist
			}
			return cands[x].j < cands[y].j
		})
		nn := make([]int, 0, k)
		for j := 0; j < k && j < len(cands); j++ {
			nn = append(nn, cands[j].j)
		}
		out[i] = nn
	}
	return out
}

func synthesize(d *Dataset, a, b []float64, rng *rand.Rand) []float64 {
	row := make([]float64, len(a))
	gap := rng.Float64()
	for i, attr := range d.Schema.Attrs {
		if attr.Kind == Numeric {
			row[i] = a[i] + gap*(b[i]-a[i])
		} else if rng.Intn(2) == 0 {
			row[i] = a[i]
		} else {
			row[i] = b[i]
		}
	}
	return row
}

// MixedDistance is the euclidean distance over numeric attributes plus a
// unit hamming penalty per differing categorical attribute.
func MixedDistance(s Schema, a, b []float64) float64 {
	var sum float64
	for i, attr := range s.Attrs {
		if attr.Kind == Numeric {
			diff := a[i] - b[i]
			sum += diff * diff
		} else if a[i] != b[i] {
			sum++
		}
	}
	return math.Sqrt(sum)
}
