package mlearn

import (
	"fmt"
	"math"
)

// Standardizer z-scores numeric attributes (categorical cells pass
// through). KNN and the SVM fit one on training data and apply it to every
// query so that large-range features (lux, watts) do not drown the rest.
type Standardizer struct {
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
	s    Schema
}

// FitStandardizer estimates per-attribute mean and standard deviation.
func FitStandardizer(d *Dataset) (*Standardizer, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("mlearn: empty dataset")
	}
	n := d.Schema.Len()
	st := &Standardizer{Mean: make([]float64, n), Std: make([]float64, n), s: d.Schema}
	for j, attr := range d.Schema.Attrs {
		if attr.Kind != Numeric {
			st.Std[j] = 1
			continue
		}
		var sum float64
		for _, row := range d.X {
			sum += row[j]
		}
		mean := sum / float64(d.Len())
		var ss float64
		for _, row := range d.X {
			ss += (row[j] - mean) * (row[j] - mean)
		}
		std := math.Sqrt(ss / float64(d.Len()))
		if std == 0 {
			std = 1
		}
		st.Mean[j] = mean
		st.Std[j] = std
	}
	return st, nil
}

// Transform z-scores one example (copy; the input is not mutated).
func (st *Standardizer) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for j := range x {
		if j < len(st.Mean) && st.s.Attrs[j].Kind == Numeric {
			out[j] = (x[j] - st.Mean[j]) / st.Std[j]
		} else {
			out[j] = x[j]
		}
	}
	return out
}

// OneHot expands categorical attributes into indicator columns and z-scores
// numeric ones; linear models (the SVM baseline) train on the encoded view.
type OneHot struct {
	schema Schema
	std    *Standardizer
	width  int
}

// FitOneHot prepares the encoding for a dataset.
func FitOneHot(d *Dataset) (*OneHot, error) {
	std, err := FitStandardizer(d)
	if err != nil {
		return nil, err
	}
	width := 0
	for _, a := range d.Schema.Attrs {
		if a.Kind == Numeric {
			width++
		} else {
			width += len(a.Categories)
		}
	}
	return &OneHot{schema: d.Schema, std: std, width: width}, nil
}

// Width returns the encoded vector length.
func (o *OneHot) Width() int { return o.width }

// Encode expands one example.
func (o *OneHot) Encode(x []float64) []float64 {
	z := o.std.Transform(x)
	out := make([]float64, 0, o.width)
	for j, a := range o.schema.Attrs {
		if a.Kind == Numeric {
			out = append(out, z[j])
			continue
		}
		oneHot := make([]float64, len(a.Categories))
		idx := int(x[j])
		if idx >= 0 && idx < len(oneHot) {
			oneHot[idx] = 1
		}
		out = append(out, oneHot...)
	}
	return out
}
