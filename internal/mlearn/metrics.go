package mlearn

import "fmt"

// Classifier is the common face of every model in the reproduction.
type Classifier interface {
	// Fit trains on the dataset.
	Fit(d *Dataset) error
	// Predict labels one example vector (same layout as the training
	// schema).
	Predict(x []float64) int
}

// Confusion is the binary confusion matrix of Table V. The positive class
// is label 1 (a legal activity scene); the negative class is label 0 (an
// attack / illegal context).
type Confusion struct {
	TP, TN, FP, FN int
}

// Evaluate runs a trained classifier over a dataset and tallies the
// confusion matrix.
func Evaluate(c Classifier, d *Dataset) Confusion {
	var m Confusion
	for i, x := range d.X {
		m.Observe(d.Y[i], c.Predict(x))
	}
	return m
}

// Observe records one (actual, predicted) pair.
func (m *Confusion) Observe(actual, predicted int) {
	switch {
	case actual == 1 && predicted == 1:
		m.TP++
	case actual == 1 && predicted != 1:
		m.FN++
	case actual != 1 && predicted == 1:
		m.FP++
	default:
		m.TN++
	}
}

// Total returns the number of observations.
func (m Confusion) Total() int { return m.TP + m.TN + m.FP + m.FN }

// Accuracy is equation (1): (TP+TN) / (TP+TN+FP+FN).
func (m Confusion) Accuracy() float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	return float64(m.TP+m.TN) / float64(t)
}

// Recall is equation (2): TP / (TP+FN).
func (m Confusion) Recall() float64 {
	d := m.TP + m.FN
	if d == 0 {
		return 0
	}
	return float64(m.TP) / float64(d)
}

// Precision is equation (3): TP / (TP+FP).
func (m Confusion) Precision() float64 {
	d := m.TP + m.FP
	if d == 0 {
		return 0
	}
	return float64(m.TP) / float64(d)
}

// FPR is equation (4), the false-alarm rate: FP / (FP+TN).
func (m Confusion) FPR() float64 {
	d := m.FP + m.TN
	if d == 0 {
		return 0
	}
	return float64(m.FP) / float64(d)
}

// FNR is equation (5), the miss rate: FN / (TP+FN).
func (m Confusion) FNR() float64 {
	d := m.TP + m.FN
	if d == 0 {
		return 0
	}
	return float64(m.FN) / float64(d)
}

// F1 is the harmonic mean of precision and recall.
func (m Confusion) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the matrix for logs.
func (m Confusion) String() string {
	return fmt.Sprintf("TP=%d TN=%d FP=%d FN=%d acc=%.4f", m.TP, m.TN, m.FP, m.FN, m.Accuracy())
}

// Add merges another confusion matrix (for cross-validation pooling).
func (m Confusion) Add(o Confusion) Confusion {
	return Confusion{TP: m.TP + o.TP, TN: m.TN + o.TN, FP: m.FP + o.FP, FN: m.FN + o.FN}
}
