// Package bayes implements the Naive Bayes baseline (§IV-C): Gaussian
// likelihoods for numeric attributes, Laplace-smoothed frequency tables for
// categorical attributes, and log-space scoring for numeric stability.
package bayes

import (
	"fmt"
	"math"
	"sort"

	"iotsid/internal/mlearn"
)

// NB is a mixed Gaussian/categorical Naive Bayes classifier.
type NB struct {
	schema  mlearn.Schema
	classes []int
	prior   map[int]float64
	// Per class, per numeric attribute: mean and variance.
	mean, vari map[int][]float64
	// Per class, per categorical attribute: Laplace-smoothed log
	// probabilities per category index.
	catLog map[int][][]float64
}

var _ mlearn.Classifier = (*NB)(nil)

// New builds an untrained classifier.
func New() *NB { return &NB{} }

// Fit estimates priors and per-class likelihood parameters.
func (c *NB) Fit(d *mlearn.Dataset) error {
	if d.Len() == 0 {
		return fmt.Errorf("bayes: empty dataset")
	}
	c.schema = d.Schema
	c.classes = d.Classes()
	c.prior = make(map[int]float64, len(c.classes))
	c.mean = make(map[int][]float64, len(c.classes))
	c.vari = make(map[int][]float64, len(c.classes))
	c.catLog = make(map[int][][]float64, len(c.classes))

	byClass := make(map[int][]int)
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	for _, y := range c.classes {
		rows := byClass[y]
		c.prior[y] = math.Log(float64(len(rows)) / float64(d.Len()))
		mean := make([]float64, d.Schema.Len())
		vari := make([]float64, d.Schema.Len())
		catLog := make([][]float64, d.Schema.Len())
		for j, a := range d.Schema.Attrs {
			if a.Kind == mlearn.Numeric {
				var sum float64
				for _, i := range rows {
					sum += d.X[i][j]
				}
				m := sum / float64(len(rows))
				var ss float64
				for _, i := range rows {
					ss += (d.X[i][j] - m) * (d.X[i][j] - m)
				}
				v := ss / float64(len(rows))
				if v < 1e-9 {
					v = 1e-9 // degenerate column: keep the Gaussian proper
				}
				mean[j], vari[j] = m, v
				continue
			}
			counts := make([]float64, len(a.Categories))
			for _, i := range rows {
				counts[int(d.X[i][j])]++
			}
			logs := make([]float64, len(counts))
			denom := float64(len(rows)) + float64(len(counts)) // Laplace
			for k, cnt := range counts {
				logs[k] = math.Log((cnt + 1) / denom)
			}
			catLog[j] = logs
		}
		c.mean[y] = mean
		c.vari[y] = vari
		c.catLog[y] = catLog
	}
	return nil
}

// Predict scores every class in log space and returns the argmax (ties
// break toward the smaller label). An unfitted classifier returns 0.
func (c *NB) Predict(x []float64) int {
	if len(c.classes) == 0 {
		return 0
	}
	best := c.classes[0]
	bestScore := math.Inf(-1)
	classes := append([]int(nil), c.classes...)
	sort.Ints(classes)
	for _, y := range classes {
		score := c.prior[y]
		for j, a := range c.schema.Attrs {
			if a.Kind == mlearn.Numeric {
				m, v := c.mean[y][j], c.vari[y][j]
				diff := x[j] - m
				score += -0.5*math.Log(2*math.Pi*v) - diff*diff/(2*v)
				continue
			}
			idx := int(x[j])
			logs := c.catLog[y][j]
			if idx < 0 || idx >= len(logs) {
				// Unseen category index: worst-case smoothed probability.
				score += math.Log(1 / (float64(len(logs)) + 1))
				continue
			}
			score += logs[idx]
		}
		if score > bestScore {
			best, bestScore = y, score
		}
	}
	return best
}
