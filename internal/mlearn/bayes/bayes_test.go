package bayes

import (
	"math/rand"
	"testing"

	"iotsid/internal/mlearn"
)

func schema(t *testing.T) mlearn.Schema {
	t.Helper()
	s, err := mlearn.NewSchema([]mlearn.Attribute{
		{Name: "temp", Kind: mlearn.Numeric},
		{Name: "weather", Kind: mlearn.Categorical, Categories: []string{"sunny", "rain", "snow"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func gaussians(t *testing.T, n int, seed int64) *mlearn.Dataset {
	t.Helper()
	d := mlearn.NewDataset(schema(t))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			// Positive: warm, mostly sunny.
			w := 0
			if rng.Float64() < 0.2 {
				w = 1
			}
			if err := d.Add([]float64{24 + rng.NormFloat64()*2, float64(w)}, 1); err != nil {
				t.Fatal(err)
			}
		} else {
			// Negative: cold, mostly rain/snow.
			w := 1 + rng.Intn(2)
			if rng.Float64() < 0.2 {
				w = 0
			}
			if err := d.Add([]float64{8 + rng.NormFloat64()*2, float64(w)}, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	return d
}

func TestNBSeparatesGaussians(t *testing.T) {
	train := gaussians(t, 400, 1)
	test := gaussians(t, 200, 2)
	c := New()
	if err := c.Fit(train); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	m := mlearn.Evaluate(c, test)
	if m.Accuracy() < 0.97 {
		t.Errorf("accuracy = %v", m.Accuracy())
	}
}

func TestNBUsesCategoricalEvidence(t *testing.T) {
	// Make temperature uninformative; only weather separates.
	d := mlearn.NewDataset(schema(t))
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		temp := 15 + rng.NormFloat64()
		if i%2 == 0 {
			if err := d.Add([]float64{temp, 0}, 1); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := d.Add([]float64{temp, 1}, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	c := New()
	if err := c.Fit(d); err != nil {
		t.Fatal(err)
	}
	if got := c.Predict([]float64{15, 0}); got != 1 {
		t.Errorf("sunny = %d, want 1", got)
	}
	if got := c.Predict([]float64{15, 1}); got != 0 {
		t.Errorf("rain = %d, want 0", got)
	}
	// Unseen category index degrades gracefully instead of panicking.
	_ = c.Predict([]float64{15, 9})
	_ = c.Predict([]float64{15, -1})
}

func TestNBPriorDominatesWithoutEvidence(t *testing.T) {
	// 90/10 prior, identical likelihoods: prediction follows the prior.
	d := mlearn.NewDataset(schema(t))
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		y := 1
		if i%10 == 0 {
			y = 0
		}
		if err := d.Add([]float64{15 + rng.NormFloat64(), float64(rng.Intn(3))}, y); err != nil {
			t.Fatal(err)
		}
	}
	c := New()
	if err := c.Fit(d); err != nil {
		t.Fatal(err)
	}
	if got := c.Predict([]float64{15, 1}); got != 1 {
		t.Errorf("prior-dominated prediction = %d, want majority class 1", got)
	}
}

func TestNBConstantColumnStable(t *testing.T) {
	d := mlearn.NewDataset(schema(t))
	for i := 0; i < 20; i++ {
		y := i % 2
		if err := d.Add([]float64{42, float64(y)}, y); err != nil {
			t.Fatal(err)
		}
	}
	c := New()
	if err := c.Fit(d); err != nil {
		t.Fatalf("Fit with constant column: %v", err)
	}
	if got := c.Predict([]float64{42, 1}); got != 1 {
		t.Errorf("prediction = %d", got)
	}
}

func TestNBErrorsAndUnfitted(t *testing.T) {
	if err := New().Fit(mlearn.NewDataset(schema(t))); err == nil {
		t.Error("want empty error")
	}
	if got := New().Predict([]float64{1, 0}); got != 0 {
		t.Errorf("unfitted Predict = %d", got)
	}
}
