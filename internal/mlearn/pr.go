package mlearn

import (
	"fmt"
	"sort"
)

// PRPoint is one operating point of a precision-recall curve.
type PRPoint struct {
	Threshold float64 `json:"threshold"`
	Recall    float64 `json:"recall"`
	Precision float64 `json:"precision"`
}

// PR sweeps every distinct score threshold and returns the precision-recall
// curve (by ascending recall) plus average precision (the step-wise
// integral ∑(Rᵢ−Rᵢ₋₁)·Pᵢ). On the paper's heavily positive-skewed data PR
// is the sharper lens than ROC.
func PR(score Scorer, d *Dataset) ([]PRPoint, float64, error) {
	if d.Len() == 0 {
		return nil, 0, fmt.Errorf("mlearn: empty dataset")
	}
	type scored struct {
		s float64
		y int
	}
	rows := make([]scored, d.Len())
	pos := 0
	for i, x := range d.X {
		rows[i] = scored{s: score(x), y: d.Y[i]}
		if d.Y[i] == 1 {
			pos++
		}
	}
	if pos == 0 || pos == d.Len() {
		return nil, 0, fmt.Errorf("mlearn: PR needs both classes (pos=%d of %d)", pos, d.Len())
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].s > rows[j].s })

	var points []PRPoint
	tp, fp := 0, 0
	for i := 0; i < len(rows); {
		s := rows[i].s
		for i < len(rows) && rows[i].s == s {
			if rows[i].y == 1 {
				tp++
			} else {
				fp++
			}
			i++
		}
		points = append(points, PRPoint{
			Threshold: s,
			Recall:    float64(tp) / float64(pos),
			Precision: float64(tp) / float64(tp+fp),
		})
	}
	// Average precision over recall steps.
	var ap, prevRecall float64
	for _, p := range points {
		ap += (p.Recall - prevRecall) * p.Precision
		prevRecall = p.Recall
	}
	return points, ap, nil
}
