package mlearn

import (
	"math"
	"testing"
)

// scoreFirst scores by the first attribute.
func scoreFirst(x []float64) float64 { return x[0] }

func rocDataset(t *testing.T, rows []struct {
	s float64
	y int
}) *Dataset {
	t.Helper()
	d := NewDataset(testSchema(t))
	for _, r := range rows {
		if err := d.Add([]float64{r.s, 0, 0}, r.y); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestROCPerfectSeparation(t *testing.T) {
	d := rocDataset(t, []struct {
		s float64
		y int
	}{
		{10, 1}, {9, 1}, {8, 1}, {3, 0}, {2, 0}, {1, 0},
	})
	points, auc, err := ROC(scoreFirst, d)
	if err != nil {
		t.Fatalf("ROC: %v", err)
	}
	if math.Abs(auc-1) > 1e-12 {
		t.Errorf("AUC = %v, want 1", auc)
	}
	first, last := points[0], points[len(points)-1]
	if first.FPR != 0 || first.TPR != 0 || last.FPR != 1 || last.TPR != 1 {
		t.Errorf("curve endpoints: %+v .. %+v", first, last)
	}
	// Monotone non-decreasing in both axes.
	for i := 1; i < len(points); i++ {
		if points[i].FPR < points[i-1].FPR || points[i].TPR < points[i-1].TPR {
			t.Errorf("curve not monotone at %d", i)
		}
	}
}

func TestROCAntiSeparation(t *testing.T) {
	d := rocDataset(t, []struct {
		s float64
		y int
	}{
		{1, 1}, {2, 1}, {9, 0}, {10, 0},
	})
	_, auc, err := ROC(scoreFirst, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc) > 1e-12 {
		t.Errorf("AUC = %v, want 0 for inverted scores", auc)
	}
}

func TestROCRandomScoresNearHalf(t *testing.T) {
	// Constant score: one tie group, AUC = 0.5 by trapezoid.
	d := rocDataset(t, []struct {
		s float64
		y int
	}{
		{5, 1}, {5, 0}, {5, 1}, {5, 0},
	})
	points, auc, err := ROC(scoreFirst, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 1e-12 {
		t.Errorf("AUC = %v, want 0.5 for ties", auc)
	}
	if len(points) != 2 {
		t.Errorf("points = %d, want origin + single tie group", len(points))
	}
}

func TestROCErrors(t *testing.T) {
	if _, _, err := ROC(scoreFirst, NewDataset(testSchema(t))); err == nil {
		t.Error("want empty error")
	}
	onlyPos := rocDataset(t, []struct {
		s float64
		y int
	}{{1, 1}, {2, 1}})
	if _, _, err := ROC(scoreFirst, onlyPos); err == nil {
		t.Error("want single-class error")
	}
}

func TestProbaScorer(t *testing.T) {
	s := ProbaScorer(func(x []float64) map[int]float64 {
		return map[int]float64{0: 0.3, 1: 0.7}
	})
	if got := s([]float64{1}); got != 0.7 {
		t.Errorf("score = %v", got)
	}
	// Missing positive class scores 0.
	s = ProbaScorer(func(x []float64) map[int]float64 { return map[int]float64{0: 1} })
	if got := s([]float64{1}); got != 0 {
		t.Errorf("score = %v", got)
	}
}

func TestPRPerfectSeparation(t *testing.T) {
	d := rocDataset(t, []struct {
		s float64
		y int
	}{
		{10, 1}, {9, 1}, {8, 1}, {3, 0}, {2, 0}, {1, 0},
	})
	points, ap, err := PR(scoreFirst, d)
	if err != nil {
		t.Fatalf("PR: %v", err)
	}
	if math.Abs(ap-1) > 1e-12 {
		t.Errorf("AP = %v, want 1", ap)
	}
	last := points[len(points)-1]
	if last.Recall != 1 {
		t.Errorf("final recall = %v", last.Recall)
	}
	// Recall is non-decreasing over the sweep.
	for i := 1; i < len(points); i++ {
		if points[i].Recall < points[i-1].Recall {
			t.Error("recall not monotone")
		}
	}
}

func TestPRInvertedScores(t *testing.T) {
	d := rocDataset(t, []struct {
		s float64
		y int
	}{
		{1, 1}, {2, 1}, {9, 0}, {10, 0},
	})
	_, ap, err := PR(scoreFirst, d)
	if err != nil {
		t.Fatal(err)
	}
	// Anti-correlated scores: precision only reaches 0.5 at full recall.
	if ap > 0.51 {
		t.Errorf("AP = %v, want ≤0.5 for inverted scores", ap)
	}
}

func TestPRErrors(t *testing.T) {
	if _, _, err := PR(scoreFirst, NewDataset(testSchema(t))); err == nil {
		t.Error("want empty error")
	}
	onlyPos := rocDataset(t, []struct {
		s float64
		y int
	}{{1, 1}, {2, 1}})
	if _, _, err := PR(scoreFirst, onlyPos); err == nil {
		t.Error("want single-class error")
	}
}
