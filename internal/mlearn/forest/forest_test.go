package forest

import (
	"math"
	"math/rand"
	"testing"

	"iotsid/internal/mlearn"
	"iotsid/internal/mlearn/tree"
)

func schema(t *testing.T) mlearn.Schema {
	t.Helper()
	s, err := mlearn.NewSchema([]mlearn.Attribute{
		{Name: "temp", Kind: mlearn.Numeric},
		{Name: "weather", Kind: mlearn.Categorical, Categories: []string{"sunny", "rain", "snow"}},
		{Name: "hour", Kind: mlearn.Numeric},
		{Name: "noise", Kind: mlearn.Numeric},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// noisy builds a dataset with signal on temp/weather plus label noise.
func noisy(t *testing.T, n int, seed int64, flip float64) *mlearn.Dataset {
	t.Helper()
	d := mlearn.NewDataset(schema(t))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		temp := rng.Float64() * 40
		weather := float64(rng.Intn(3))
		y := 0
		if temp > 20 && weather != 1 {
			y = 1
		}
		if rng.Float64() < flip {
			y = 1 - y
		}
		if err := d.Add([]float64{temp, weather, rng.Float64() * 24, rng.Float64() * 60}, y); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestForestLearnsAndGeneralises(t *testing.T) {
	train := noisy(t, 600, 1, 0.1)
	test := noisy(t, 400, 2, 0)
	f := New(Config{Trees: 31, Seed: 3, MaxFeatures: 3, Tree: tree.Config{MinSamplesLeaf: 3}})
	if err := f.Fit(train); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if f.Size() != 31 {
		t.Errorf("Size = %d", f.Size())
	}
	m := mlearn.Evaluate(f, test)
	if m.Accuracy() < 0.9 {
		t.Errorf("forest accuracy = %v", m.Accuracy())
	}
	// The ensemble should beat or match a lone unpruned tree on noisy
	// training data.
	lone := tree.New(tree.Config{MinSamplesLeaf: 1})
	if err := lone.Fit(train); err != nil {
		t.Fatal(err)
	}
	loneAcc := mlearn.Evaluate(lone, test).Accuracy()
	if m.Accuracy()+0.02 < loneAcc {
		t.Errorf("forest %v well below single tree %v", m.Accuracy(), loneAcc)
	}
}

func TestForestPredictProba(t *testing.T) {
	train := noisy(t, 400, 4, 0.05)
	f := New(Config{Trees: 15, Seed: 5, MaxFeatures: 3})
	if err := f.Fit(train); err != nil {
		t.Fatal(err)
	}
	probs := f.PredictProba([]float64{35, 0, 12, 30})
	var sum float64
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Errorf("probability %v out of range", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
	// Deep-positive example gets high positive probability.
	if probs[1] < 0.7 {
		t.Errorf("P(1) = %v for a clear positive", probs[1])
	}
}

func TestForestDeterministicAndEdgeCases(t *testing.T) {
	train := noisy(t, 200, 6, 0.05)
	a, b := New(Config{Trees: 9, Seed: 7}), New(Config{Trees: 9, Seed: 7})
	if err := a.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(train); err != nil {
		t.Fatal(err)
	}
	probe := noisy(t, 100, 8, 0)
	for i, x := range probe.X {
		if a.Predict(x) != b.Predict(x) {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
	// Unfitted behaviour.
	var empty Forest
	if empty.Predict([]float64{1, 0, 0, 0}) != 0 {
		t.Error("unfitted Predict != 0")
	}
	if empty.PredictProba([]float64{1, 0, 0, 0}) != nil {
		t.Error("unfitted PredictProba != nil")
	}
	// Empty dataset errors.
	if err := New(Config{}).Fit(mlearn.NewDataset(schema(t))); err == nil {
		t.Error("want empty error")
	}
}

func TestForestMaxFeaturesClamped(t *testing.T) {
	train := noisy(t, 200, 9, 0)
	f := New(Config{Trees: 5, Seed: 1, MaxFeatures: 99})
	if err := f.Fit(train); err != nil {
		t.Fatalf("Fit with oversized MaxFeatures: %v", err)
	}
	if acc := mlearn.Evaluate(f, train).Accuracy(); acc < 0.9 {
		t.Errorf("accuracy = %v", acc)
	}
}
