// Package forest implements a random-forest ensemble over the CART trees of
// the reproduction — the natural robustness extension of the paper's
// single-tree feature memory (§VI discusses optimising the model further).
// Each tree trains on a bootstrap resample with a random feature subspace;
// prediction is majority vote, probability the mean of leaf distributions.
package forest

import (
	"fmt"
	"math/rand"

	"iotsid/internal/mlearn"
	"iotsid/internal/mlearn/tree"
	"iotsid/internal/par"
)

// Config tunes the ensemble.
type Config struct {
	// Trees is the ensemble size; default 25.
	Trees int
	// MaxFeatures is the number of attributes each tree may split on;
	// default ceil(sqrt(#attributes)) and never below 2.
	MaxFeatures int
	// Seed drives bootstrap and subspace sampling. Each member tree draws
	// from its own generator seeded Seed+treeIndex, so the ensemble is
	// identical for every worker count.
	Seed int64
	// Workers bounds the per-tree bagging fan-out; 0 means GOMAXPROCS.
	Workers int
	// Tree is the per-tree growth configuration (FeatureMask is owned by
	// the forest and overwritten).
	Tree tree.Config
}

func (c Config) withDefaults() Config {
	if c.Trees <= 0 {
		c.Trees = 25
	}
	return c
}

// Forest is a trained ensemble.
type Forest struct {
	cfg   Config
	trees []*tree.Tree
}

var _ mlearn.Classifier = (*Forest)(nil)

// New builds an untrained forest.
func New(cfg Config) *Forest { return &Forest{cfg: cfg.withDefaults()} }

// Fit trains the ensemble. Member trees bag and grow concurrently on
// cfg.Workers goroutines; tree i draws its bootstrap and feature subspace
// from a generator seeded Seed+i (derived before the fan-out) and lands in
// slot i, so the fitted forest is bit-identical at every worker count.
func (f *Forest) Fit(d *mlearn.Dataset) error {
	if d.Len() == 0 {
		return fmt.Errorf("forest: empty dataset")
	}
	nAttrs := d.Schema.Len()
	maxFeatures := f.cfg.MaxFeatures
	if maxFeatures <= 0 {
		maxFeatures = isqrtCeil(nAttrs)
	}
	if maxFeatures < 2 {
		maxFeatures = 2
	}
	if maxFeatures > nAttrs {
		maxFeatures = nAttrs
	}
	trees, err := par.Map(f.cfg.Trees, f.cfg.Workers, func(i int) (*tree.Tree, error) {
		rng := rand.New(rand.NewSource(f.cfg.Seed + int64(i)))
		// Bootstrap resample.
		idx := make([]int, d.Len())
		for j := range idx {
			idx[j] = rng.Intn(d.Len())
		}
		sample := d.Subset(idx)
		// Random feature subspace.
		mask := make([]bool, nAttrs)
		for _, a := range rng.Perm(nAttrs)[:maxFeatures] {
			mask[a] = true
		}
		cfg := f.cfg.Tree
		cfg.FeatureMask = mask
		t := tree.New(cfg)
		if err := t.Fit(sample); err != nil {
			return nil, fmt.Errorf("forest: tree %d: %w", i, err)
		}
		return t, nil
	})
	if err != nil {
		return err
	}
	f.trees = trees
	return nil
}

// Predict returns the majority vote (ties break toward the smaller class).
// An unfitted forest returns 0.
func (f *Forest) Predict(x []float64) int {
	if len(f.trees) == 0 {
		return 0
	}
	votes := make(map[int]int)
	for _, t := range f.trees {
		votes[t.Predict(x)]++
	}
	best, bestN := 0, -1
	for c := 0; c <= maxKey(votes); c++ {
		if n, ok := votes[c]; ok && n > bestN {
			best, bestN = c, n
		}
	}
	return best
}

// PredictProba averages the member trees' leaf distributions.
func (f *Forest) PredictProba(x []float64) map[int]float64 {
	if len(f.trees) == 0 {
		return nil
	}
	out := make(map[int]float64)
	for _, t := range f.trees {
		for c, p := range t.PredictProba(x) {
			out[c] += p
		}
	}
	for c := range out {
		out[c] /= float64(len(f.trees))
	}
	return out
}

// Size returns the number of trained trees.
func (f *Forest) Size() int { return len(f.trees) }

func isqrtCeil(n int) int {
	for i := 1; ; i++ {
		if i*i >= n {
			return i
		}
	}
}

func maxKey(m map[int]int) int {
	max := 0
	for k := range m {
		if k > max {
			max = k
		}
	}
	return max
}
