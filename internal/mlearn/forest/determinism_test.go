package forest

import (
	"reflect"
	"testing"

	"iotsid/internal/mlearn/tree"
)

// TestForestFitDeterminism: every member tree draws from its own
// pre-derived generator (Seed+treeIndex) and lands in its index slot, so
// the fitted ensemble is identical — tree by tree — at any worker count.
func TestForestFitDeterminism(t *testing.T) {
	train := noisy(t, 400, 11, 0.05)
	fit := func(workers int) *Forest {
		f := New(Config{Trees: 17, Seed: 3, MaxFeatures: 3, Workers: workers,
			Tree: tree.Config{MinSamplesLeaf: 3}})
		if err := f.Fit(train); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return f
	}
	serial := fit(1)
	for _, workers := range []int{2, 8} {
		parallel := fit(workers)
		if len(parallel.trees) != len(serial.trees) {
			t.Fatalf("workers=%d: %d trees, want %d", workers, len(parallel.trees), len(serial.trees))
		}
		for i := range serial.trees {
			if !reflect.DeepEqual(serial.trees[i], parallel.trees[i]) {
				t.Errorf("workers=%d: tree %d diverges from serial fit", workers, i)
			}
		}
	}
	// Predictions agree too (cheap smoke check over a probe set).
	probe := noisy(t, 100, 12, 0)
	parallel := fit(8)
	for i, x := range probe.X {
		if serial.Predict(x) != parallel.Predict(x) {
			t.Fatalf("prediction diverges at probe %d", i)
		}
	}
}
