package mlearn

import (
	"fmt"
	"sort"
)

// ROCPoint is one operating point of a receiver operating characteristic.
type ROCPoint struct {
	Threshold float64 `json:"threshold"`
	FPR       float64 `json:"fpr"`
	TPR       float64 `json:"tpr"`
}

// Scorer produces a positive-class score for one example; classifiers with
// PredictProba adapt to it via ProbaScorer.
type Scorer func(x []float64) float64

// ProbaScorer adapts a probability-producing classifier into a Scorer for
// the positive class (label 1).
func ProbaScorer(proba func(x []float64) map[int]float64) Scorer {
	return func(x []float64) float64 {
		return proba(x)[1]
	}
}

// ROC sweeps every distinct score threshold over a labelled dataset and
// returns the operating points (sorted by ascending FPR) plus the area
// under the curve by trapezoidal rule.
func ROC(score Scorer, d *Dataset) ([]ROCPoint, float64, error) {
	if d.Len() == 0 {
		return nil, 0, fmt.Errorf("mlearn: empty dataset")
	}
	var pos, neg int
	type scored struct {
		s float64
		y int
	}
	rows := make([]scored, d.Len())
	for i, x := range d.X {
		rows[i] = scored{s: score(x), y: d.Y[i]}
		if d.Y[i] == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil, 0, fmt.Errorf("mlearn: ROC needs both classes (pos=%d, neg=%d)", pos, neg)
	}
	// Descending score: lowering the threshold admits rows in this order.
	sort.Slice(rows, func(i, j int) bool { return rows[i].s > rows[j].s })

	points := []ROCPoint{{Threshold: rows[0].s + 1, FPR: 0, TPR: 0}}
	tp, fp := 0, 0
	for i := 0; i < len(rows); {
		// Admit every row tied at this score together.
		s := rows[i].s
		for i < len(rows) && rows[i].s == s {
			if rows[i].y == 1 {
				tp++
			} else {
				fp++
			}
			i++
		}
		points = append(points, ROCPoint{
			Threshold: s,
			FPR:       float64(fp) / float64(neg),
			TPR:       float64(tp) / float64(pos),
		})
	}
	// Trapezoidal AUC.
	var auc float64
	for i := 1; i < len(points); i++ {
		auc += (points[i].FPR - points[i-1].FPR) * (points[i].TPR + points[i-1].TPR) / 2
	}
	return points, auc, nil
}
