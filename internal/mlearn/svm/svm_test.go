package svm

import (
	"math/rand"
	"testing"

	"iotsid/internal/mlearn"
)

func schema(t *testing.T) mlearn.Schema {
	t.Helper()
	s, err := mlearn.NewSchema([]mlearn.Attribute{
		{Name: "temp", Kind: mlearn.Numeric},
		{Name: "lux", Kind: mlearn.Numeric},
		{Name: "weather", Kind: mlearn.Categorical, Categories: []string{"sunny", "rain"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func linearly(t *testing.T, n int, seed int64) *mlearn.Dataset {
	t.Helper()
	d := mlearn.NewDataset(schema(t))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			if err := d.Add([]float64{22 + rng.Float64()*8, 5000 + rng.Float64()*3000, 0}, 1); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := d.Add([]float64{2 + rng.Float64()*8, rng.Float64() * 2000, 1}, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	return d
}

func TestSVMSeparatesLinearData(t *testing.T) {
	train := linearly(t, 300, 1)
	test := linearly(t, 150, 2)
	c := New(Config{Seed: 7})
	if err := c.Fit(train); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	m := mlearn.Evaluate(c, test)
	if m.Accuracy() < 0.98 {
		t.Errorf("accuracy = %v", m.Accuracy())
	}
}

func TestSVMMarginSign(t *testing.T) {
	c := New(Config{Seed: 1})
	if err := c.Fit(linearly(t, 200, 3)); err != nil {
		t.Fatal(err)
	}
	if m := c.Margin([]float64{28, 7000, 0}); m <= 0 {
		t.Errorf("positive-class margin = %v", m)
	}
	if m := c.Margin([]float64{3, 100, 1}); m >= 0 {
		t.Errorf("negative-class margin = %v", m)
	}
}

func TestSVMRejectsNonBinaryLabels(t *testing.T) {
	d := mlearn.NewDataset(schema(t))
	if err := d.Add([]float64{1, 1, 0}, 2); err != nil {
		t.Fatal(err)
	}
	if err := New(Config{}).Fit(d); err == nil {
		t.Error("want label error")
	}
}

func TestSVMEmptyAndUnfitted(t *testing.T) {
	if err := New(Config{}).Fit(mlearn.NewDataset(schema(t))); err == nil {
		t.Error("want empty error")
	}
	if got := New(Config{}).Predict([]float64{1, 1, 0}); got != 0 {
		t.Errorf("unfitted Predict = %d", got)
	}
}

func TestSVMDeterministicGivenSeed(t *testing.T) {
	train := linearly(t, 200, 4)
	probe := linearly(t, 50, 5)
	a, b := New(Config{Seed: 9}), New(Config{Seed: 9})
	if err := a.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(train); err != nil {
		t.Fatal(err)
	}
	for i, x := range probe.X {
		if a.Predict(x) != b.Predict(x) {
			t.Fatalf("divergence at %d", i)
		}
	}
}

func TestSVMConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Lambda <= 0 || cfg.Epochs <= 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}
