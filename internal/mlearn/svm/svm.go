// Package svm implements the linear support-vector-machine baseline
// (§IV-C) with the Pegasos primal sub-gradient solver. Categorical
// attributes are one-hot encoded and numeric attributes z-scored before
// training. The classifier is binary: label 1 is the positive class,
// everything else maps to -1.
package svm

import (
	"fmt"
	"math"
	"math/rand"

	"iotsid/internal/mlearn"
)

// Config tunes the Pegasos solver.
type Config struct {
	Lambda float64 // regularisation strength; default 1e-4
	Epochs int     // passes over the data; default 20
	Seed   int64   // SGD sampling seed
}

func (c Config) withDefaults() Config {
	if c.Lambda <= 0 {
		c.Lambda = 1e-4
	}
	if c.Epochs <= 0 {
		c.Epochs = 20
	}
	return c
}

// SVM is a trained linear max-margin classifier.
type SVM struct {
	cfg Config
	enc *mlearn.OneHot
	w   []float64
	b   float64
}

var _ mlearn.Classifier = (*SVM)(nil)

// New builds an untrained SVM.
func New(cfg Config) *SVM { return &SVM{cfg: cfg.withDefaults()} }

// Fit runs Pegasos SGD over the one-hot encoded dataset.
func (s *SVM) Fit(d *mlearn.Dataset) error {
	if d.Len() == 0 {
		return fmt.Errorf("svm: empty dataset")
	}
	for _, y := range d.Classes() {
		if y != 0 && y != 1 {
			return fmt.Errorf("svm: binary classifier requires labels {0,1}, saw %d", y)
		}
	}
	enc, err := mlearn.FitOneHot(d)
	if err != nil {
		return err
	}
	s.enc = enc
	rows := make([][]float64, d.Len())
	ys := make([]float64, d.Len())
	for i, x := range d.X {
		rows[i] = enc.Encode(x)
		if d.Y[i] == 1 {
			ys[i] = 1
		} else {
			ys[i] = -1
		}
	}
	w := make([]float64, enc.Width())
	var b float64
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	lambda := s.cfg.Lambda
	t := 0
	steps := s.cfg.Epochs * d.Len()
	for step := 0; step < steps; step++ {
		t++
		i := rng.Intn(len(rows))
		eta := 1 / (lambda * float64(t))
		margin := ys[i] * (dot(w, rows[i]) + b)
		// w <- (1 - eta*lambda) w [+ eta*y*x if margin violated]
		scale := 1 - eta*lambda
		for j := range w {
			w[j] *= scale
		}
		if margin < 1 {
			for j := range w {
				w[j] += eta * ys[i] * rows[i][j]
			}
			b += eta * ys[i]
		}
		// Pegasos projection onto the 1/sqrt(lambda) ball.
		norm := math.Sqrt(dot(w, w))
		if bound := 1 / math.Sqrt(lambda); norm > bound {
			f := bound / norm
			for j := range w {
				w[j] *= f
			}
		}
	}
	s.w = w
	s.b = b
	return nil
}

// Predict returns 1 for a non-negative margin, 0 otherwise. An unfitted
// classifier returns 0.
func (s *SVM) Predict(x []float64) int {
	if s.w == nil {
		return 0
	}
	if s.Margin(x) >= 0 {
		return 1
	}
	return 0
}

// Margin returns the signed distance proxy w·x+b for one example.
func (s *SVM) Margin(x []float64) float64 {
	return dot(s.w, s.enc.Encode(x)) + s.b
}

func dot(a, b []float64) float64 {
	var sum float64
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}
