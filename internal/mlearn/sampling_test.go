package mlearn

import (
	"math/rand"
	"testing"
)

func TestOversampleRandomBalances(t *testing.T) {
	d := imbalanced(t, 90, 10, 1)
	out, err := OversampleRandom(d, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("OversampleRandom: %v", err)
	}
	counts := out.ClassCounts()
	if counts[0] != 90 || counts[1] != 90 {
		t.Errorf("counts = %v, want 90/90", counts)
	}
	// Original dataset untouched.
	if d.Len() != 100 {
		t.Errorf("source mutated: len = %d", d.Len())
	}
	// Synthesised rows are valid duplicates of minority rows (cold/rain).
	for i := 100; i < out.Len(); i++ {
		if out.Y[i] != 0 {
			t.Fatalf("appended row %d has label %d", i, out.Y[i])
		}
		if out.X[i][0] > 15 {
			t.Fatalf("appended row %d not a minority copy: %v", i, out.X[i])
		}
	}
}

func TestOversampleRandomErrors(t *testing.T) {
	d := imbalanced(t, 5, 5, 1)
	if _, err := OversampleRandom(d, nil); err == nil {
		t.Error("want nil rng error")
	}
	if _, err := OversampleRandom(NewDataset(testSchema(t)), rand.New(rand.NewSource(1))); err == nil {
		t.Error("want empty error")
	}
}

func TestOversampleSMOTEBalancesAndInterpolates(t *testing.T) {
	d := imbalanced(t, 80, 20, 2)
	out, err := OversampleSMOTE(d, 3, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("OversampleSMOTE: %v", err)
	}
	counts := out.ClassCounts()
	if counts[0] != 80 || counts[1] != 80 {
		t.Errorf("counts = %v", counts)
	}
	// Synthetic minority rows stay inside the minority's numeric envelope
	// (interpolation cannot extrapolate) and keep valid category indices.
	for i := d.Len(); i < out.Len(); i++ {
		x := out.X[i]
		if x[0] < 5 || x[0] > 11 {
			t.Errorf("synthetic temp %v outside minority range [5,11]", x[0])
		}
		for j, a := range out.Schema.Attrs {
			if a.Kind == Categorical {
				idx := int(x[j])
				if float64(idx) != x[j] || idx < 0 || idx >= len(a.Categories) {
					t.Errorf("synthetic categorical cell %d invalid: %v", j, x[j])
				}
			}
		}
	}
}

func TestOversampleSMOTESingleMinorityFallsBack(t *testing.T) {
	d := imbalanced(t, 5, 1, 3)
	out, err := OversampleSMOTE(d, 3, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("OversampleSMOTE: %v", err)
	}
	if got := out.ClassCounts()[0]; got != 5 {
		t.Errorf("minority count = %d", got)
	}
}

func TestOversampleSMOTEErrors(t *testing.T) {
	d := imbalanced(t, 5, 5, 1)
	if _, err := OversampleSMOTE(d, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("want k error")
	}
	if _, err := OversampleSMOTE(d, 1, nil); err == nil {
		t.Error("want nil rng error")
	}
	if _, err := OversampleSMOTE(NewDataset(testSchema(t)), 1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("want empty error")
	}
}

func TestOversampleAlreadyBalancedIsNoOp(t *testing.T) {
	d := imbalanced(t, 10, 10, 4)
	out, err := OversampleRandom(d, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != d.Len() {
		t.Errorf("balanced dataset grew: %d -> %d", d.Len(), out.Len())
	}
	out, err = OversampleSMOTE(d, 2, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != d.Len() {
		t.Errorf("balanced dataset grew under SMOTE: %d -> %d", d.Len(), out.Len())
	}
}
