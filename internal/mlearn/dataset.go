// Package mlearn is the machine-learning substrate of the reproduction: a
// dataset/schema model for mixed numeric + categorical features, stratified
// splitting and k-fold cross-validation (§V: "we divide the data set by 7:3
// ... then use the cross-validation method"), oversampling for the paper's
// extreme class imbalance (§IV-C-2), and the full metric suite of Table V
// (equations 1–5).
package mlearn

import (
	"fmt"
	"math/rand"
	"sort"
)

// AttrKind distinguishes numeric from categorical attributes.
type AttrKind int

// Attribute kinds.
const (
	Numeric AttrKind = iota + 1
	Categorical
)

// String names the kind.
func (k AttrKind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Attribute describes one feature column. Categorical attributes carry their
// closed category list; values in example vectors are indices into it.
type Attribute struct {
	Name       string   `json:"name"`
	Kind       AttrKind `json:"kind"`
	Categories []string `json:"categories,omitempty"`
}

// Schema is the ordered attribute list of a dataset.
type Schema struct {
	Attrs []Attribute `json:"attrs"`
}

// NewSchema validates and builds a schema.
func NewSchema(attrs []Attribute) (Schema, error) {
	seen := make(map[string]bool, len(attrs))
	for i, a := range attrs {
		if a.Name == "" {
			return Schema{}, fmt.Errorf("mlearn: attribute %d has empty name", i)
		}
		if seen[a.Name] {
			return Schema{}, fmt.Errorf("mlearn: duplicate attribute %q", a.Name)
		}
		seen[a.Name] = true
		switch a.Kind {
		case Numeric:
			if len(a.Categories) != 0 {
				return Schema{}, fmt.Errorf("mlearn: numeric attribute %q has categories", a.Name)
			}
		case Categorical:
			if len(a.Categories) < 2 {
				return Schema{}, fmt.Errorf("mlearn: categorical attribute %q needs ≥2 categories", a.Name)
			}
		default:
			return Schema{}, fmt.Errorf("mlearn: attribute %q has invalid kind", a.Name)
		}
	}
	out := make([]Attribute, len(attrs))
	copy(out, attrs)
	return Schema{Attrs: out}, nil
}

// Index returns the position of an attribute by name, or -1.
func (s Schema) Index(name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Len returns the number of attributes.
func (s Schema) Len() int { return len(s.Attrs) }

// Dataset is a labelled example matrix. X[i] is parallel to Schema.Attrs;
// categorical cells hold category indices. Y[i] is the class label — the
// reproduction uses 1 = legal scene (positive), 0 = attack (negative).
type Dataset struct {
	Schema Schema
	X      [][]float64
	Y      []int
}

// NewDataset builds an empty dataset over a schema.
func NewDataset(schema Schema) *Dataset {
	return &Dataset{Schema: schema}
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.X) }

// Add appends one validated example.
func (d *Dataset) Add(x []float64, y int) error {
	if len(x) != d.Schema.Len() {
		return fmt.Errorf("mlearn: example width %d, schema width %d", len(x), d.Schema.Len())
	}
	for i, a := range d.Schema.Attrs {
		if a.Kind == Categorical {
			idx := int(x[i])
			if float64(idx) != x[i] || idx < 0 || idx >= len(a.Categories) {
				return fmt.Errorf("mlearn: attribute %q: category index %v out of range", a.Name, x[i])
			}
		}
	}
	row := make([]float64, len(x))
	copy(row, x)
	d.X = append(d.X, row)
	d.Y = append(d.Y, y)
	return nil
}

// Clone deep-copies the dataset.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{Schema: d.Schema,
		X: make([][]float64, len(d.X)),
		Y: make([]int, len(d.Y)),
	}
	for i, row := range d.X {
		cp := make([]float64, len(row))
		copy(cp, row)
		out.X[i] = cp
	}
	copy(out.Y, d.Y)
	return out
}

// Subset selects rows by index (rows are copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{Schema: d.Schema,
		X: make([][]float64, 0, len(idx)),
		Y: make([]int, 0, len(idx)),
	}
	for _, i := range idx {
		row := make([]float64, len(d.X[i]))
		copy(row, d.X[i])
		out.X = append(out.X, row)
		out.Y = append(out.Y, d.Y[i])
	}
	return out
}

// Classes returns the distinct labels in ascending order.
func (d *Dataset) Classes() []int {
	set := make(map[int]bool)
	for _, y := range d.Y {
		set[y] = true
	}
	out := make([]int, 0, len(set))
	for y := range set {
		out = append(out, y)
	}
	sort.Ints(out)
	return out
}

// ClassCounts tallies examples per label.
func (d *Dataset) ClassCounts() map[int]int {
	out := make(map[int]int)
	for _, y := range d.Y {
		out[y]++
	}
	return out
}

// Shuffle permutes the dataset in place.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(d.X), func(i, j int) {
		d.X[i], d.X[j] = d.X[j], d.X[i]
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	})
}

// SplitStratified splits into train/test with the given train ratio,
// preserving per-class proportions (the paper's 7:3 split).
func (d *Dataset) SplitStratified(trainRatio float64, rng *rand.Rand) (train, test *Dataset, err error) {
	if trainRatio <= 0 || trainRatio >= 1 {
		return nil, nil, fmt.Errorf("mlearn: train ratio %v outside (0,1)", trainRatio)
	}
	if d.Len() == 0 {
		return nil, nil, fmt.Errorf("mlearn: empty dataset")
	}
	if rng == nil {
		return nil, nil, fmt.Errorf("mlearn: nil rng")
	}
	byClass := make(map[int][]int)
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	var trainIdx, testIdx []int
	classes := d.Classes()
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		cut := int(float64(len(idx))*trainRatio + 0.5)
		if cut == 0 && len(idx) > 1 {
			cut = 1
		}
		if cut == len(idx) && len(idx) > 1 {
			cut = len(idx) - 1
		}
		trainIdx = append(trainIdx, idx[:cut]...)
		testIdx = append(testIdx, idx[cut:]...)
	}
	sort.Ints(trainIdx)
	sort.Ints(testIdx)
	return d.Subset(trainIdx), d.Subset(testIdx), nil
}

// KFoldStratified partitions the dataset into k stratified folds and returns
// per-fold (train, test) pairs.
func (d *Dataset) KFoldStratified(k int, rng *rand.Rand) ([][2]*Dataset, error) {
	if k < 2 {
		return nil, fmt.Errorf("mlearn: k must be ≥2, got %d", k)
	}
	if d.Len() < k {
		return nil, fmt.Errorf("mlearn: %d examples cannot fill %d folds", d.Len(), k)
	}
	if rng == nil {
		return nil, fmt.Errorf("mlearn: nil rng")
	}
	folds := make([][]int, k)
	byClass := make(map[int][]int)
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	classes := d.Classes()
	next := 0
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			folds[next%k] = append(folds[next%k], i)
			next++
		}
	}
	out := make([][2]*Dataset, 0, k)
	for f := 0; f < k; f++ {
		var trainIdx []int
		for g := 0; g < k; g++ {
			if g != f {
				trainIdx = append(trainIdx, folds[g]...)
			}
		}
		sort.Ints(trainIdx)
		testIdx := append([]int(nil), folds[f]...)
		sort.Ints(testIdx)
		out = append(out, [2]*Dataset{d.Subset(trainIdx), d.Subset(testIdx)})
	}
	return out, nil
}
