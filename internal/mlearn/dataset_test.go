package mlearn

import (
	"math"
	"math/rand"
	"testing"
)

func testSchema(t *testing.T) Schema {
	t.Helper()
	s, err := NewSchema([]Attribute{
		{Name: "temp", Kind: Numeric},
		{Name: "weather", Kind: Categorical, Categories: []string{"sunny", "rain"}},
		{Name: "motion", Kind: Categorical, Categories: []string{"no", "yes"}},
	})
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

// imbalanced builds a dataset with nPos positives and nNeg negatives that is
// linearly structured: positives are warm/sunny/motion, negatives cold/rain.
func imbalanced(t *testing.T, nPos, nNeg int, seed int64) *Dataset {
	t.Helper()
	d := NewDataset(testSchema(t))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < nPos; i++ {
		if err := d.Add([]float64{22 + rng.Float64()*6, 0, 1}, 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nNeg; i++ {
		if err := d.Add([]float64{5 + rng.Float64()*6, 1, 0}, 0); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestNewSchemaValidation(t *testing.T) {
	cases := []struct {
		name  string
		attrs []Attribute
	}{
		{name: "empty name", attrs: []Attribute{{Name: "", Kind: Numeric}}},
		{name: "duplicate", attrs: []Attribute{{Name: "a", Kind: Numeric}, {Name: "a", Kind: Numeric}}},
		{name: "numeric with categories", attrs: []Attribute{{Name: "a", Kind: Numeric, Categories: []string{"x", "y"}}}},
		{name: "categorical too few", attrs: []Attribute{{Name: "a", Kind: Categorical, Categories: []string{"x"}}}},
		{name: "bad kind", attrs: []Attribute{{Name: "a"}}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewSchema(tt.attrs); err == nil {
				t.Error("want error")
			}
		})
	}
	s := testSchema(t)
	if s.Index("weather") != 1 || s.Index("nope") != -1 {
		t.Error("Index wrong")
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestDatasetAddValidation(t *testing.T) {
	d := NewDataset(testSchema(t))
	if err := d.Add([]float64{1}, 0); err == nil {
		t.Error("want width error")
	}
	if err := d.Add([]float64{20, 5, 0}, 0); err == nil {
		t.Error("want category range error")
	}
	if err := d.Add([]float64{20, 0.5, 0}, 0); err == nil {
		t.Error("want non-integer category error")
	}
	x := []float64{20, 1, 0}
	if err := d.Add(x, 1); err != nil {
		t.Fatalf("Add: %v", err)
	}
	x[0] = 99 // rows are copied
	if d.X[0][0] != 20 {
		t.Error("Add must copy rows")
	}
}

func TestCloneAndSubsetIsolation(t *testing.T) {
	d := imbalanced(t, 5, 5, 1)
	c := d.Clone()
	c.X[0][0] = -999
	c.Y[0] = 7
	if d.X[0][0] == -999 || d.Y[0] == 7 {
		t.Error("Clone shares storage")
	}
	sub := d.Subset([]int{0, 9})
	if sub.Len() != 2 {
		t.Fatalf("Subset len = %d", sub.Len())
	}
	sub.X[0][0] = -1
	if d.X[0][0] == -1 {
		t.Error("Subset shares storage")
	}
}

func TestClassesAndCounts(t *testing.T) {
	d := imbalanced(t, 7, 3, 2)
	classes := d.Classes()
	if len(classes) != 2 || classes[0] != 0 || classes[1] != 1 {
		t.Errorf("Classes = %v", classes)
	}
	counts := d.ClassCounts()
	if counts[1] != 7 || counts[0] != 3 {
		t.Errorf("ClassCounts = %v", counts)
	}
}

func TestSplitStratifiedPreservesProportions(t *testing.T) {
	d := imbalanced(t, 700, 300, 3)
	train, test, err := d.SplitStratified(0.7, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("SplitStratified: %v", err)
	}
	if train.Len()+test.Len() != d.Len() {
		t.Fatalf("split loses rows: %d + %d != %d", train.Len(), test.Len(), d.Len())
	}
	tc, sc := train.ClassCounts(), test.ClassCounts()
	if tc[1] != 490 || tc[0] != 210 {
		t.Errorf("train counts = %v", tc)
	}
	if sc[1] != 210 || sc[0] != 90 {
		t.Errorf("test counts = %v", sc)
	}
}

func TestSplitStratifiedErrors(t *testing.T) {
	d := imbalanced(t, 5, 5, 1)
	rng := rand.New(rand.NewSource(1))
	if _, _, err := d.SplitStratified(0, rng); err == nil {
		t.Error("want ratio error")
	}
	if _, _, err := d.SplitStratified(1, rng); err == nil {
		t.Error("want ratio error")
	}
	if _, _, err := d.SplitStratified(0.5, nil); err == nil {
		t.Error("want nil rng error")
	}
	empty := NewDataset(testSchema(t))
	if _, _, err := empty.SplitStratified(0.5, rng); err == nil {
		t.Error("want empty error")
	}
}

func TestSplitNeverEmptiesAClass(t *testing.T) {
	// Even with 2 examples per class, both splits keep one.
	d := imbalanced(t, 2, 2, 4)
	train, test, err := d.SplitStratified(0.9, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if train.ClassCounts()[0] == 0 || test.ClassCounts()[0] == 0 {
		t.Errorf("class 0 vanished: train %v test %v", train.ClassCounts(), test.ClassCounts())
	}
}

func TestKFoldStratified(t *testing.T) {
	d := imbalanced(t, 60, 40, 5)
	folds, err := d.KFoldStratified(5, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("KFoldStratified: %v", err)
	}
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	totalTest := 0
	for i, f := range folds {
		train, test := f[0], f[1]
		if train.Len()+test.Len() != d.Len() {
			t.Errorf("fold %d loses rows", i)
		}
		totalTest += test.Len()
		// Stratification: each test fold keeps both classes.
		cc := test.ClassCounts()
		if cc[0] == 0 || cc[1] == 0 {
			t.Errorf("fold %d test missing a class: %v", i, cc)
		}
	}
	if totalTest != d.Len() {
		t.Errorf("test folds cover %d rows, want %d", totalTest, d.Len())
	}
	if _, err := d.KFoldStratified(1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("want k error")
	}
	if _, err := d.KFoldStratified(5, nil); err == nil {
		t.Error("want nil rng error")
	}
	tiny := imbalanced(t, 1, 1, 1)
	if _, err := tiny.KFoldStratified(5, rand.New(rand.NewSource(1))); err == nil {
		t.Error("want too-few-examples error")
	}
}

func TestShuffleKeepsPairs(t *testing.T) {
	d := imbalanced(t, 50, 50, 6)
	// Mark each row so we can verify X/Y stay aligned: class 1 rows are warm.
	d.Shuffle(rand.New(rand.NewSource(3)))
	for i, row := range d.X {
		warm := row[0] > 15
		if warm != (d.Y[i] == 1) {
			t.Fatalf("row %d decoupled from its label after shuffle", i)
		}
	}
}

func TestMixedDistance(t *testing.T) {
	s := testSchema(t)
	a := []float64{3, 0, 1}
	b := []float64{0, 1, 1}
	// numeric diff 3 -> 9; categorical: weather differs (+1), motion same.
	want := math.Sqrt(10)
	if got := MixedDistance(s, a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("MixedDistance = %v, want %v", got, want)
	}
	if got := MixedDistance(s, a, a); got != 0 {
		t.Errorf("self distance = %v", got)
	}
}
