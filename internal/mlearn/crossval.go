package mlearn

import (
	"fmt"
	"math"
	"math/rand"

	"iotsid/internal/par"
)

// Factory builds a fresh untrained classifier; cross-validation needs one
// per fold.
type Factory func() Classifier

// CVResult is the outcome of a k-fold cross-validation.
type CVResult struct {
	FoldAccuracies []float64
	Pooled         Confusion
}

// MeanAccuracy averages the per-fold accuracies.
func (r CVResult) MeanAccuracy() float64 {
	if len(r.FoldAccuracies) == 0 {
		return 0
	}
	var sum float64
	for _, a := range r.FoldAccuracies {
		sum += a
	}
	return sum / float64(len(r.FoldAccuracies))
}

// StdAccuracy is the population standard deviation of fold accuracies.
func (r CVResult) StdAccuracy() float64 {
	n := len(r.FoldAccuracies)
	if n == 0 {
		return 0
	}
	mean := r.MeanAccuracy()
	var ss float64
	for _, a := range r.FoldAccuracies {
		ss += (a - mean) * (a - mean)
	}
	return math.Sqrt(ss / float64(n))
}

// CrossValidate runs stratified k-fold cross-validation, training a fresh
// classifier per fold and pooling the test confusion matrices. Folds run
// serially; it is safe for factories whose classifiers share state. Use
// CrossValidateWorkers when the classifiers are independent and fold
// training should fan out.
func CrossValidate(f Factory, d *Dataset, k int, rng *rand.Rand) (CVResult, error) {
	return CrossValidateWorkers(f, d, k, rng, 1)
}

// CrossValidateWorkers is CrossValidate with the fold loop fanned out over
// at most workers goroutines (0 means GOMAXPROCS). The folds themselves are
// drawn from rng before the fan-out and each fold's confusion matrix lands
// in its own index slot, pooled in fold order afterwards — so for any
// deterministic classifier the result is bit-identical to the serial run.
// Factories must build classifiers that do not share mutable state.
func CrossValidateWorkers(f Factory, d *Dataset, k int, rng *rand.Rand, workers int) (CVResult, error) {
	if f == nil {
		return CVResult{}, fmt.Errorf("mlearn: nil factory")
	}
	folds, err := d.KFoldStratified(k, rng)
	if err != nil {
		return CVResult{}, err
	}
	confusions, err := par.Map(len(folds), workers, func(i int) (Confusion, error) {
		c := f()
		if err := c.Fit(folds[i][0]); err != nil {
			return Confusion{}, fmt.Errorf("fold %d fit: %w", i, err)
		}
		return Evaluate(c, folds[i][1]), nil
	})
	if err != nil {
		return CVResult{}, err
	}
	var res CVResult
	for _, m := range confusions {
		res.FoldAccuracies = append(res.FoldAccuracies, m.Accuracy())
		res.Pooled = res.Pooled.Add(m)
	}
	return res, nil
}
