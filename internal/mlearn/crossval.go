package mlearn

import (
	"fmt"
	"math"
	"math/rand"
)

// Factory builds a fresh untrained classifier; cross-validation needs one
// per fold.
type Factory func() Classifier

// CVResult is the outcome of a k-fold cross-validation.
type CVResult struct {
	FoldAccuracies []float64
	Pooled         Confusion
}

// MeanAccuracy averages the per-fold accuracies.
func (r CVResult) MeanAccuracy() float64 {
	if len(r.FoldAccuracies) == 0 {
		return 0
	}
	var sum float64
	for _, a := range r.FoldAccuracies {
		sum += a
	}
	return sum / float64(len(r.FoldAccuracies))
}

// StdAccuracy is the population standard deviation of fold accuracies.
func (r CVResult) StdAccuracy() float64 {
	n := len(r.FoldAccuracies)
	if n == 0 {
		return 0
	}
	mean := r.MeanAccuracy()
	var ss float64
	for _, a := range r.FoldAccuracies {
		ss += (a - mean) * (a - mean)
	}
	return math.Sqrt(ss / float64(n))
}

// CrossValidate runs stratified k-fold cross-validation, training a fresh
// classifier per fold and pooling the test confusion matrices.
func CrossValidate(f Factory, d *Dataset, k int, rng *rand.Rand) (CVResult, error) {
	if f == nil {
		return CVResult{}, fmt.Errorf("mlearn: nil factory")
	}
	folds, err := d.KFoldStratified(k, rng)
	if err != nil {
		return CVResult{}, err
	}
	var res CVResult
	for i, fold := range folds {
		c := f()
		if err := c.Fit(fold[0]); err != nil {
			return CVResult{}, fmt.Errorf("fold %d fit: %w", i, err)
		}
		m := Evaluate(c, fold[1])
		res.FoldAccuracies = append(res.FoldAccuracies, m.Accuracy())
		res.Pooled = res.Pooled.Add(m)
	}
	return res, nil
}
