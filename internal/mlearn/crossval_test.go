package mlearn

import (
	"errors"
	"math/rand"
	"testing"
)

// thresholdClassifier learns nothing; it labels warm rows positive, which is
// exactly the structure of imbalanced().
type thresholdClassifier struct{ fitCalls *int }

func (c thresholdClassifier) Fit(*Dataset) error {
	if c.fitCalls != nil {
		*c.fitCalls++
	}
	return nil
}

func (c thresholdClassifier) Predict(x []float64) int {
	if x[0] > 15 {
		return 1
	}
	return 0
}

type failingClassifier struct{}

func (failingClassifier) Fit(*Dataset) error    { return errors.New("boom") }
func (failingClassifier) Predict([]float64) int { return 0 }

func TestCrossValidate(t *testing.T) {
	d := imbalanced(t, 60, 40, 8)
	var fits int
	res, err := CrossValidate(func() Classifier { return thresholdClassifier{fitCalls: &fits} },
		d, 5, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("CrossValidate: %v", err)
	}
	if fits != 5 {
		t.Errorf("fit called %d times, want 5", fits)
	}
	if len(res.FoldAccuracies) != 5 {
		t.Fatalf("fold accuracies = %v", res.FoldAccuracies)
	}
	if res.MeanAccuracy() != 1 {
		t.Errorf("MeanAccuracy = %v, want 1 on separable data", res.MeanAccuracy())
	}
	if res.StdAccuracy() != 0 {
		t.Errorf("StdAccuracy = %v", res.StdAccuracy())
	}
	if res.Pooled.Total() != d.Len() {
		t.Errorf("pooled total = %d, want %d", res.Pooled.Total(), d.Len())
	}
}

func TestCrossValidateErrors(t *testing.T) {
	d := imbalanced(t, 10, 10, 1)
	rng := rand.New(rand.NewSource(1))
	if _, err := CrossValidate(nil, d, 5, rng); err == nil {
		t.Error("want nil factory error")
	}
	if _, err := CrossValidate(func() Classifier { return failingClassifier{} }, d, 5, rng); err == nil {
		t.Error("want fit error")
	}
	if _, err := CrossValidate(func() Classifier { return thresholdClassifier{} }, d, 1, rng); err == nil {
		t.Error("want k error")
	}
}

func TestCVResultEmpty(t *testing.T) {
	var r CVResult
	if r.MeanAccuracy() != 0 || r.StdAccuracy() != 0 {
		t.Error("empty CVResult metrics should be 0")
	}
}
