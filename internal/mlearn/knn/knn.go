// Package knn implements the k-nearest-neighbour baseline the paper
// examined before choosing the decision tree (§IV-C: "We study the
// classification algorithms in machine learning, such as KNN, support
// vector machine, Naive Bayes, and decision tree"). Numeric attributes are
// z-scored; distance is euclidean over numeric attributes plus a unit
// hamming penalty per differing categorical attribute.
package knn

import (
	"fmt"
	"sort"

	"iotsid/internal/mlearn"
)

// KNN is a lazy k-nearest-neighbour classifier.
type KNN struct {
	k     int
	data  *mlearn.Dataset
	std   *mlearn.Standardizer
	zrows [][]float64
}

var _ mlearn.Classifier = (*KNN)(nil)

// New builds a classifier with the given neighbourhood size.
func New(k int) *KNN { return &KNN{k: k} }

// Fit memorises the (standardised) training set.
func (c *KNN) Fit(d *mlearn.Dataset) error {
	if c.k < 1 {
		return fmt.Errorf("knn: k must be ≥1, got %d", c.k)
	}
	if d.Len() == 0 {
		return fmt.Errorf("knn: empty dataset")
	}
	std, err := mlearn.FitStandardizer(d)
	if err != nil {
		return err
	}
	c.data = d.Clone()
	c.std = std
	c.zrows = make([][]float64, d.Len())
	for i, row := range c.data.X {
		c.zrows[i] = std.Transform(row)
	}
	return nil
}

// Predict votes among the k nearest training examples. Ties break toward
// the smaller class label; an unfitted classifier returns 0.
func (c *KNN) Predict(x []float64) int {
	if c.data == nil {
		return 0
	}
	z := c.std.Transform(x)
	type cand struct {
		dist float64
		y    int
		i    int
	}
	cands := make([]cand, len(c.zrows))
	for i, row := range c.zrows {
		cands[i] = cand{dist: mlearn.MixedDistance(c.data.Schema, z, row), y: c.data.Y[i], i: i}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].dist != cands[b].dist {
			return cands[a].dist < cands[b].dist
		}
		return cands[a].i < cands[b].i
	})
	k := c.k
	if k > len(cands) {
		k = len(cands)
	}
	votes := make(map[int]int)
	for i := 0; i < k; i++ {
		votes[cands[i].y]++
	}
	best, bestN := 0, -1
	classes := make([]int, 0, len(votes))
	for y := range votes {
		classes = append(classes, y)
	}
	sort.Ints(classes)
	for _, y := range classes {
		if votes[y] > bestN {
			best, bestN = y, votes[y]
		}
	}
	return best
}
