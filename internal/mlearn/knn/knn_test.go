package knn

import (
	"math/rand"
	"testing"

	"iotsid/internal/mlearn"
)

func schema(t *testing.T) mlearn.Schema {
	t.Helper()
	s, err := mlearn.NewSchema([]mlearn.Attribute{
		{Name: "temp", Kind: mlearn.Numeric},
		{Name: "lux", Kind: mlearn.Numeric},
		{Name: "weather", Kind: mlearn.Categorical, Categories: []string{"sunny", "rain"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// clusters builds two well-separated clusters; lux has a huge scale to
// exercise standardisation.
func clusters(t *testing.T, n int, seed int64) *mlearn.Dataset {
	t.Helper()
	d := mlearn.NewDataset(schema(t))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			if err := d.Add([]float64{25 + rng.Float64()*3, 8000 + rng.Float64()*500, 0}, 1); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := d.Add([]float64{5 + rng.Float64()*3, 100 + rng.Float64()*500, 1}, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	return d
}

func TestKNNSeparatesClusters(t *testing.T) {
	train := clusters(t, 100, 1)
	test := clusters(t, 60, 2)
	for _, k := range []int{1, 3, 7} {
		c := New(k)
		if err := c.Fit(train); err != nil {
			t.Fatalf("Fit(k=%d): %v", k, err)
		}
		m := mlearn.Evaluate(c, test)
		if m.Accuracy() != 1 {
			t.Errorf("k=%d accuracy = %v", k, m.Accuracy())
		}
	}
}

func TestKNNStandardisationMatters(t *testing.T) {
	// Without z-scoring, lux (range ~8000) would drown temp; the clusters
	// are still separable on lux alone here, so instead verify behaviour
	// on a probe whose lux is ambiguous but temp decisive.
	train := clusters(t, 100, 3)
	c := New(3)
	if err := c.Fit(train); err != nil {
		t.Fatal(err)
	}
	// Warm, sunny probe with borderline lux: must be class 1.
	if got := c.Predict([]float64{26, 4000, 0}); got != 1 {
		t.Errorf("warm probe = %d, want 1", got)
	}
	if got := c.Predict([]float64{6, 4000, 1}); got != 0 {
		t.Errorf("cold probe = %d, want 0", got)
	}
}

func TestKNNErrorsAndEdgeCases(t *testing.T) {
	if err := New(0).Fit(clusters(t, 10, 1)); err == nil {
		t.Error("want k error")
	}
	if err := New(1).Fit(mlearn.NewDataset(schema(t))); err == nil {
		t.Error("want empty error")
	}
	if got := New(3).Predict([]float64{1, 2, 0}); got != 0 {
		t.Errorf("unfitted Predict = %d", got)
	}
	// k larger than the training set still works.
	d := clusters(t, 4, 4)
	c := New(99)
	if err := c.Fit(d); err != nil {
		t.Fatal(err)
	}
	_ = c.Predict([]float64{25, 8000, 0})
}

func TestKNNDoesNotAliasTrainingData(t *testing.T) {
	d := clusters(t, 10, 5)
	c := New(1)
	if err := c.Fit(d); err != nil {
		t.Fatal(err)
	}
	before := c.Predict([]float64{25, 8200, 0})
	// Corrupt the caller's dataset; the classifier must be unaffected.
	for i := range d.X {
		d.X[i][0] = -1000
		d.Y[i] = 0
	}
	after := c.Predict([]float64{25, 8200, 0})
	if before != after {
		t.Error("classifier aliased caller-owned training data")
	}
}

func TestKNNMajorityTieBreak(t *testing.T) {
	// Two equidistant neighbours with different labels at k=2: the smaller
	// class label wins deterministically.
	d := mlearn.NewDataset(schema(t))
	if err := d.Add([]float64{10, 100, 0}, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Add([]float64{30, 100, 0}, 0); err != nil {
		t.Fatal(err)
	}
	c := New(2)
	if err := c.Fit(d); err != nil {
		t.Fatal(err)
	}
	if got := c.Predict([]float64{20, 100, 0}); got != 0 {
		t.Errorf("tie break = %d, want 0", got)
	}
}
