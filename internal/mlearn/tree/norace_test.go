//go:build !race

package tree

const raceEnabled = false
