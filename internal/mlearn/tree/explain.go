package tree

import (
	"fmt"
	"strings"
)

// PathStep is one comparison taken while routing an example to its leaf.
type PathStep struct {
	Attr      string  `json:"attr"`
	Condition string  `json:"condition"`
	Taken     bool    `json:"taken"` // whether the condition held
	Samples   int     `json:"samples"`
	Impurity  float64 `json:"impurity"`
}

// Explain returns the decision path for one example: every split condition
// the example was tested against, whether it held, and the predicted class
// with the leaf's training support. This is the human-readable counterpart
// of the Fig 6 feature weights — *why* the determiner accepted or rejected
// a context.
func (t *Tree) Explain(x []float64) ([]PathStep, int, error) {
	if t.root == nil {
		return nil, 0, fmt.Errorf("tree: not fitted")
	}
	var steps []PathStep
	n := t.root
	for !n.Leaf {
		attr := t.schema.Attrs[n.Attr]
		var cond string
		if n.Numeric {
			cond = fmt.Sprintf("%s <= %.4g", attr.Name, n.Threshold)
		} else {
			cond = fmt.Sprintf("%s == %s", attr.Name, attr.Categories[n.Category])
		}
		taken := goesLeft(x, n.Attr, n.Numeric, n.Threshold, n.Category)
		steps = append(steps, PathStep{
			Attr:      attr.Name,
			Condition: cond,
			Taken:     taken,
			Samples:   n.Samples,
			Impurity:  n.Impurity,
		})
		if taken {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return steps, n.Class, nil
}

// ExplainString renders the decision path compactly, e.g.
// "smoke == false ✓ → voice_command == false ✗ → class 1".
func (t *Tree) ExplainString(x []float64) (string, error) {
	steps, class, err := t.Explain(x)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, s := range steps {
		mark := "✗"
		if s.Taken {
			mark = "✓"
		}
		fmt.Fprintf(&b, "%s %s → ", s.Condition, mark)
	}
	fmt.Fprintf(&b, "class %d", class)
	return b.String(), nil
}
