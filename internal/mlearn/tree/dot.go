package tree

import (
	"fmt"
	"strings"
)

// DOT renders the fitted tree in Graphviz dot format — the interpretability
// companion to the Fig 6 feature weights: the exact rule the feature memory
// enforces, human-readable.
func (t *Tree) DOT(name string) (string, error) {
	if t.root == nil {
		return "", fmt.Errorf("tree: not fitted")
	}
	if name == "" {
		name = "tree"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	id := 0
	t.writeDOT(&b, t.root, &id)
	b.WriteString("}\n")
	return b.String(), nil
}

// writeDOT emits the subtree rooted at n and returns its node id.
func (t *Tree) writeDOT(b *strings.Builder, n *node, id *int) int {
	me := *id
	*id++
	if n.Leaf {
		label := fmt.Sprintf("class %d\\nsamples %d", n.Class, n.Samples)
		fill := "#fde9e9"
		if n.Class == 1 {
			fill = "#e9f5e9"
		}
		fmt.Fprintf(b, "  n%d [label=\"%s\", style=filled, fillcolor=%q];\n", me, label, fill)
		return me
	}
	attr := t.schema.Attrs[n.Attr]
	var cond string
	if n.Numeric {
		cond = fmt.Sprintf("%s <= %.3g", attr.Name, n.Threshold)
	} else {
		cond = fmt.Sprintf("%s == %s", attr.Name, attr.Categories[n.Category])
	}
	fmt.Fprintf(b, "  n%d [label=\"%s\\nsamples %d, impurity %.3f\"];\n", me, cond, n.Samples, n.Impurity)
	left := t.writeDOT(b, n.Left, id)
	right := t.writeDOT(b, n.Right, id)
	fmt.Fprintf(b, "  n%d -> n%d [label=\"yes\"];\n", me, left)
	fmt.Fprintf(b, "  n%d -> n%d [label=\"no\"];\n", me, right)
	return me
}
