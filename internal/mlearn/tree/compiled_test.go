package tree

import (
	"encoding/json"
	"math/rand"
	"testing"

	"iotsid/internal/mlearn"
)

func fittedTree(t *testing.T, n int, seed int64) (*Tree, *mlearn.Dataset) {
	t.Helper()
	s, err := mlearn.NewSchema([]mlearn.Attribute{
		{Name: "temp", Kind: mlearn.Numeric},
		{Name: "weather", Kind: mlearn.Categorical, Categories: []string{"sunny", "rain", "snow"}},
		{Name: "hour", Kind: mlearn.Numeric},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := mlearn.NewDataset(s)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		temp := rng.Float64() * 40
		weather := float64(rng.Intn(3))
		y := 0
		if (temp > 20) != (weather == 1) {
			y = 1
		}
		if err := d.Add([]float64{temp, weather, rng.Float64() * 24}, y); err != nil {
			t.Fatal(err)
		}
	}
	tr := New(Config{MinSamplesLeaf: 2})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	return tr, d
}

// randomProbe draws a feature vector over the fitted schema's domain,
// including out-of-domain categorical values so the compiled categorical
// test is exercised on both branches.
func randomProbe(rng *rand.Rand) []float64 {
	return []float64{
		rng.Float64()*60 - 10,
		float64(rng.Intn(5)), // two values outside the 3-category domain
		rng.Float64() * 30,
	}
}

func TestCompiledMatchesTreeOnRandomProbes(t *testing.T) {
	tr, d := fittedTree(t, 2000, 11)
	c, err := tr.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.Width() != 3 {
		t.Fatalf("Width = %d", c.Width())
	}
	if c.NodeCount() != tr.NodeCount() {
		t.Fatalf("NodeCount = %d, tree has %d", c.NodeCount(), tr.NodeCount())
	}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 20000; i++ {
		x := randomProbe(rng)
		if got, want := c.Predict(x), tr.Predict(x); got != want {
			t.Fatalf("probe %d: compiled = %d, tree = %d (x = %v)", i, got, want, x)
		}
	}
	// Training rows too.
	for i, x := range d.X {
		if got, want := c.Predict(x), tr.Predict(x); got != want {
			t.Fatalf("train row %d: compiled = %d, tree = %d", i, got, want)
		}
	}
}

func TestCompiledSurvivesSerializeRoundTrip(t *testing.T) {
	tr, _ := fittedTree(t, 1500, 21)
	before, err := tr.Compile()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	after, err := back.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if before.NodeCount() != after.NodeCount() {
		t.Fatalf("node count diverged: %d vs %d", before.NodeCount(), after.NodeCount())
	}
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 10000; i++ {
		x := randomProbe(rng)
		if got, want := after.Predict(x), before.Predict(x); got != want {
			t.Fatalf("probe %d: reloaded compiled = %d, original = %d", i, got, want)
		}
	}
}

func TestCompiledBatchForms(t *testing.T) {
	tr, d := fittedTree(t, 500, 31)
	c, err := tr.Compile()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, len(d.X))
	for i, x := range d.X {
		want[i] = tr.Predict(x)
	}
	all := c.PredictAll(d.X)
	if len(all) != len(want) {
		t.Fatalf("PredictAll length = %d", len(all))
	}
	buf := make([]int, len(d.X))
	into, err := c.PredictInto(d.X, buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if all[i] != want[i] || into[i] != want[i] {
			t.Fatalf("row %d: all = %d, into = %d, want %d", i, all[i], into[i], want[i])
		}
	}
	if _, err := c.PredictInto(d.X, make([]int, 3)); err == nil {
		t.Error("want short-buffer error")
	}
}

func TestCompileUnfitted(t *testing.T) {
	if _, err := New(Config{}).Compile(); err == nil {
		t.Error("want unfitted error")
	}
}
