// Package tree implements the CART-style decision tree the paper selects
// for the context feature memory (§IV-C-2: "suitable for learning from
// small sample data sets, is ideal for numerical data and discrete data,
// and can also obtain the weights of feature attributes"). It supports the
// three split criteria the paper names — information gain, gain ratio and
// Gini impurity — binary splits over numeric and categorical attributes,
// reduced-error pruning, per-feature importance weights (Fig 6) and JSON
// serialisation for the feature memory store.
package tree

import (
	"fmt"
	"math"
	"sort"

	"iotsid/internal/mlearn"
)

// Criterion selects the impurity measure used to grow the tree.
type Criterion int

// Split criteria (§IV-C-2).
const (
	Gini Criterion = iota + 1
	Entropy
	GainRatio
)

// String names the criterion.
func (c Criterion) String() string {
	switch c {
	case Gini:
		return "gini"
	case Entropy:
		return "entropy"
	case GainRatio:
		return "gain_ratio"
	default:
		return fmt.Sprintf("criterion(%d)", int(c))
	}
}

// Config tunes tree growth. The zero value is completed by Fit with
// sensible defaults (Gini, unlimited depth, leaf size 1).
type Config struct {
	Criterion           Criterion `json:"criterion"`
	MaxDepth            int       `json:"max_depth"`             // 0 = unlimited
	MinSamplesSplit     int       `json:"min_samples_split"`     // default 2
	MinSamplesLeaf      int       `json:"min_samples_leaf"`      // default 1
	MinImpurityDecrease float64   `json:"min_impurity_decrease"` // default 0
	// FeatureMask, when non-nil, restricts splits to the attributes whose
	// entry is true (random-subspace ensembles use this). Attributes
	// beyond the mask's length are allowed.
	FeatureMask []bool `json:"feature_mask,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.Criterion == 0 {
		c.Criterion = Gini
	}
	if c.MinSamplesSplit < 2 {
		c.MinSamplesSplit = 2
	}
	if c.MinSamplesLeaf < 1 {
		c.MinSamplesLeaf = 1
	}
	return c
}

// node is one tree node. Exported fields make the tree JSON-serialisable.
type node struct {
	Leaf      bool        `json:"leaf"`
	Class     int         `json:"class"`               // majority class (valid on all nodes)
	Attr      int         `json:"attr,omitempty"`      // split attribute index
	Threshold float64     `json:"threshold,omitempty"` // numeric split: x <= Threshold goes left
	Category  int         `json:"category,omitempty"`  // categorical split: x == Category goes left
	Numeric   bool        `json:"numeric,omitempty"`   // split type
	Samples   int         `json:"samples"`
	Impurity  float64     `json:"impurity"`
	Counts    map[int]int `json:"counts,omitempty"` // training class counts at this node
	Left      *node       `json:"left,omitempty"`
	Right     *node       `json:"right,omitempty"`
}

// Tree is a trained decision tree.
type Tree struct {
	cfg         Config
	schema      mlearn.Schema
	root        *node
	importances []float64 // raw impurity decrease per attribute
	nTrain      int
}

var _ mlearn.Classifier = (*Tree)(nil)

// New builds an untrained tree.
func New(cfg Config) *Tree {
	return &Tree{cfg: cfg.withDefaults()}
}

// Config returns the effective (defaulted) configuration.
func (t *Tree) Config() Config { return t.cfg }

// Fit grows the tree on the dataset.
func (t *Tree) Fit(d *mlearn.Dataset) error {
	if d.Len() == 0 {
		return fmt.Errorf("tree: empty dataset")
	}
	t.schema = d.Schema
	t.nTrain = d.Len()
	t.importances = make([]float64, d.Schema.Len())
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	t.root = t.grow(d, idx, 0)
	return nil
}

func (t *Tree) grow(d *mlearn.Dataset, idx []int, depth int) *node {
	counts := classCounts(d, idx)
	n := &node{
		Class:    majority(counts),
		Samples:  len(idx),
		Impurity: impurity(t.cfg.Criterion, counts, len(idx)),
		Counts:   counts,
		Leaf:     true,
	}
	if len(counts) <= 1 ||
		len(idx) < t.cfg.MinSamplesSplit ||
		(t.cfg.MaxDepth > 0 && depth >= t.cfg.MaxDepth) {
		return n
	}
	best, ok := t.bestSplit(d, idx, n.Impurity)
	if !ok || best.gain <= t.cfg.MinImpurityDecrease {
		return n
	}
	left, right := partition(d, idx, best)
	if len(left) < t.cfg.MinSamplesLeaf || len(right) < t.cfg.MinSamplesLeaf {
		return n
	}
	// Importance: impurity decrease weighted by the fraction of training
	// samples reaching this node.
	t.importances[best.attr] += float64(len(idx)) / float64(t.nTrain) * best.gain
	n.Leaf = false
	n.Attr = best.attr
	n.Numeric = best.numeric
	n.Threshold = best.threshold
	n.Category = best.category
	n.Left = t.grow(d, left, depth+1)
	n.Right = t.grow(d, right, depth+1)
	return n
}

type split struct {
	attr      int
	numeric   bool
	threshold float64
	category  int
	gain      float64
}

func (t *Tree) bestSplit(d *mlearn.Dataset, idx []int, parentImp float64) (split, bool) {
	var cands []candidate
	for attr, a := range d.Schema.Attrs {
		if t.cfg.FeatureMask != nil && attr < len(t.cfg.FeatureMask) && !t.cfg.FeatureMask[attr] {
			continue
		}
		if a.Kind == mlearn.Numeric {
			cands = append(cands, t.numericCandidates(d, idx, attr, parentImp)...)
		} else {
			cands = append(cands, t.categoricalCandidates(d, idx, attr, parentImp, len(a.Categories))...)
		}
	}
	return t.selectCandidate(cands)
}

// candidate is one evaluated split point with its raw impurity decrease and
// its criterion-specific score (equal for gini/entropy; gain ÷ split-info
// for gain ratio).
type candidate struct {
	s     split
	raw   float64
	score float64
}

func (t *Tree) numericCandidates(d *mlearn.Dataset, idx []int, attr int, parentImp float64) []candidate {
	sorted := append([]int(nil), idx...)
	sort.Slice(sorted, func(i, j int) bool { return d.X[sorted[i]][attr] < d.X[sorted[j]][attr] })

	total := classCounts(d, idx)
	leftCounts := make(map[int]int, len(total))
	n := len(sorted)
	var cands []candidate
	for i := 0; i < n-1; i++ {
		leftCounts[d.Y[sorted[i]]]++
		cur, next := d.X[sorted[i]][attr], d.X[sorted[i+1]][attr]
		if cur == next {
			continue
		}
		nl := i + 1
		nr := n - nl
		raw, score := t.splitGain(parentImp, leftCounts, total, nl, nr, n)
		if raw > 0 {
			cands = append(cands, candidate{
				s:   split{attr: attr, numeric: true, threshold: (cur + next) / 2},
				raw: raw, score: score,
			})
		}
	}
	return cands
}

func (t *Tree) categoricalCandidates(d *mlearn.Dataset, idx []int, attr int, parentImp float64, nCats int) []candidate {
	total := classCounts(d, idx)
	n := len(idx)
	var cands []candidate
	for cat := 0; cat < nCats; cat++ {
		leftCounts := make(map[int]int)
		nl := 0
		for _, i := range idx {
			if int(d.X[i][attr]) == cat {
				leftCounts[d.Y[i]]++
				nl++
			}
		}
		if nl == 0 || nl == n {
			continue
		}
		raw, score := t.splitGain(parentImp, leftCounts, total, nl, n-nl, n)
		if raw > 0 {
			cands = append(cands, candidate{
				s:   split{attr: attr, numeric: false, category: cat},
				raw: raw, score: score,
			})
		}
	}
	return cands
}

// selectCandidate picks the winning split among all candidates of a node.
// For gain ratio it applies the C4.5 constraint: only candidates whose raw
// information gain is at least the mean gain over every test examined
// compete on the ratio — otherwise near-empty splits with tiny split-info
// dominate and the tree memorises noise.
func (t *Tree) selectCandidate(cands []candidate) (split, bool) {
	if len(cands) == 0 {
		return split{}, false
	}
	eligible := cands
	if t.cfg.Criterion == GainRatio {
		var sum float64
		for _, c := range cands {
			sum += c.raw
		}
		mean := sum / float64(len(cands))
		filtered := cands[:0:0]
		for _, c := range cands {
			if c.raw >= mean-1e-12 {
				filtered = append(filtered, c)
			}
		}
		eligible = filtered
	}
	best := eligible[0]
	for _, c := range eligible[1:] {
		if c.score > best.score {
			best = c
		}
	}
	best.s.gain = best.score
	return best.s, true
}

// splitGain computes the raw impurity decrease of a binary split and its
// criterion-specific score.
func (t *Tree) splitGain(parentImp float64, leftCounts, total map[int]int, nl, nr, n int) (raw, score float64) {
	rightCounts := make(map[int]int, len(total))
	for c, cnt := range total {
		rightCounts[c] = cnt - leftCounts[c]
	}
	li := impurity(t.cfg.Criterion, leftCounts, nl)
	ri := impurity(t.cfg.Criterion, rightCounts, nr)
	raw = parentImp - (float64(nl)*li+float64(nr)*ri)/float64(n)
	score = raw
	if t.cfg.Criterion == GainRatio {
		si := splitInfo(nl, nr, n)
		if si <= 0 {
			return raw, 0
		}
		score = raw / si
	}
	return raw, score
}

func partition(d *mlearn.Dataset, idx []int, s split) (left, right []int) {
	for _, i := range idx {
		if goesLeft(d.X[i], s.attr, s.numeric, s.threshold, s.category) {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return left, right
}

func goesLeft(x []float64, attr int, numeric bool, threshold float64, category int) bool {
	if numeric {
		return x[attr] <= threshold
	}
	return int(x[attr]) == category
}

// Predict labels one example. Calling Predict on an untrained tree returns
// class 0.
func (t *Tree) Predict(x []float64) int {
	if t.root == nil {
		return 0
	}
	return t.leafFor(x).Class
}

// PredictProba returns the training class distribution of the leaf the
// example lands in — the tree's class-probability estimate. An untrained
// tree returns nil.
func (t *Tree) PredictProba(x []float64) map[int]float64 {
	if t.root == nil {
		return nil
	}
	leaf := t.leafFor(x)
	out := make(map[int]float64, len(leaf.Counts))
	if leaf.Samples == 0 || len(leaf.Counts) == 0 {
		out[leaf.Class] = 1
		return out
	}
	for c, n := range leaf.Counts {
		out[c] = float64(n) / float64(leaf.Samples)
	}
	return out
}

func (t *Tree) leafFor(x []float64) *node {
	n := t.root
	for !n.Leaf {
		if goesLeft(x, n.Attr, n.Numeric, n.Threshold, n.Category) {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n
}

// Depth returns the tree depth (a lone leaf has depth 0).
func (t *Tree) Depth() int { return depth(t.root) }

func depth(n *node) int {
	if n == nil || n.Leaf {
		return 0
	}
	l, r := depth(n.Left), depth(n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// NodeCount returns the number of nodes.
func (t *Tree) NodeCount() int { return count(t.root) }

func count(n *node) int {
	if n == nil {
		return 0
	}
	return 1 + count(n.Left) + count(n.Right)
}

// impurity computes the node impurity for the configured criterion;
// gain-ratio grows on entropy. Classes are folded in sorted order so the
// floating-point sum — and therefore near-tie split selection — is
// deterministic across runs (map iteration order is randomised).
func impurity(c Criterion, counts map[int]int, n int) float64 {
	if n == 0 {
		return 0
	}
	classes := make([]int, 0, len(counts))
	for cls := range counts {
		classes = append(classes, cls)
	}
	sort.Ints(classes)
	switch c {
	case Gini:
		g := 1.0
		for _, cls := range classes {
			p := float64(counts[cls]) / float64(n)
			g -= p * p
		}
		return g
	default: // Entropy and GainRatio
		var h float64
		for _, cls := range classes {
			if counts[cls] == 0 {
				continue
			}
			p := float64(counts[cls]) / float64(n)
			h -= p * math.Log2(p)
		}
		return h
	}
}

func splitInfo(nl, nr, n int) float64 {
	var si float64
	for _, k := range []int{nl, nr} {
		if k == 0 {
			continue
		}
		p := float64(k) / float64(n)
		si -= p * math.Log2(p)
	}
	return si
}

func classCounts(d *mlearn.Dataset, idx []int) map[int]int {
	out := make(map[int]int)
	for _, i := range idx {
		out[d.Y[i]]++
	}
	return out
}

func majority(counts map[int]int) int {
	best, bestN := 0, -1
	// Deterministic tie-break: smallest class wins.
	classes := make([]int, 0, len(counts))
	for c := range counts {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	for _, c := range classes {
		if counts[c] > bestN {
			best, bestN = c, counts[c]
		}
	}
	return best
}
