package tree

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"iotsid/internal/mlearn"
)

func schema(t *testing.T) mlearn.Schema {
	t.Helper()
	s, err := mlearn.NewSchema([]mlearn.Attribute{
		{Name: "temp", Kind: mlearn.Numeric},
		{Name: "weather", Kind: mlearn.Categorical, Categories: []string{"sunny", "rain", "snow"}},
		{Name: "hour", Kind: mlearn.Numeric},
	})
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	return s
}

// xorish builds a dataset that needs at least two splits: positive iff
// (temp > 20) XOR (weather == rain).
func xorish(t *testing.T, n int, seed int64) *mlearn.Dataset {
	t.Helper()
	d := mlearn.NewDataset(schema(t))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		temp := rng.Float64() * 40
		weather := float64(rng.Intn(3))
		hour := rng.Float64() * 24
		y := 0
		if (temp > 20) != (weather == 1) {
			y = 1
		}
		if err := d.Add([]float64{temp, weather, hour}, y); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestFitPerfectOnSeparable(t *testing.T) {
	for _, crit := range []Criterion{Gini, Entropy, GainRatio} {
		t.Run(crit.String(), func(t *testing.T) {
			d := xorish(t, 400, 1)
			tr := New(Config{Criterion: crit})
			if err := tr.Fit(d); err != nil {
				t.Fatalf("Fit: %v", err)
			}
			m := mlearn.Evaluate(tr, d)
			if m.Accuracy() != 1 {
				t.Errorf("training accuracy = %v, want 1", m.Accuracy())
			}
			// Generalises to a fresh draw of the same concept.
			test := xorish(t, 400, 2)
			m = mlearn.Evaluate(tr, test)
			if m.Accuracy() < 0.95 {
				t.Errorf("test accuracy = %v", m.Accuracy())
			}
		})
	}
}

func TestFitEmptyErrors(t *testing.T) {
	if err := New(Config{}).Fit(mlearn.NewDataset(schema(t))); err == nil {
		t.Error("want empty error")
	}
}

func TestPredictUnfitted(t *testing.T) {
	if got := New(Config{}).Predict([]float64{1, 0, 0}); got != 0 {
		t.Errorf("unfitted Predict = %d", got)
	}
}

func TestMaxDepthRespected(t *testing.T) {
	d := xorish(t, 400, 3)
	tr := New(Config{MaxDepth: 1})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	if got := tr.Depth(); got > 1 {
		t.Errorf("Depth = %d, want ≤1", got)
	}
	// Depth 1 cannot solve XOR.
	if m := mlearn.Evaluate(tr, d); m.Accuracy() >= 0.95 {
		t.Errorf("stump accuracy %v suspiciously high for XOR", m.Accuracy())
	}
	deep := New(Config{})
	if err := deep.Fit(d); err != nil {
		t.Fatal(err)
	}
	if deep.Depth() < 2 {
		t.Errorf("unbounded tree depth = %d, want ≥2 for XOR", deep.Depth())
	}
}

func TestMinSamplesLeaf(t *testing.T) {
	d := xorish(t, 200, 4)
	tr := New(Config{MinSamplesLeaf: 50})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	// Every leaf holds ≥50 samples; verify via node counts.
	verifyLeafSizes(t, tr.root, 50)
}

func verifyLeafSizes(t *testing.T, n *node, min int) {
	t.Helper()
	if n == nil {
		return
	}
	if n.Leaf {
		if n.Samples < min {
			t.Errorf("leaf with %d samples, want ≥%d", n.Samples, min)
		}
		return
	}
	verifyLeafSizes(t, n.Left, min)
	verifyLeafSizes(t, n.Right, min)
}

func TestPureNodeStops(t *testing.T) {
	d := mlearn.NewDataset(schema(t))
	for i := 0; i < 10; i++ {
		if err := d.Add([]float64{float64(i), 0, 0}, 1); err != nil {
			t.Fatal(err)
		}
	}
	tr := New(Config{})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	if tr.NodeCount() != 1 {
		t.Errorf("pure dataset grew %d nodes", tr.NodeCount())
	}
	if tr.Predict([]float64{99, 2, 12}) != 1 {
		t.Error("pure tree predicts wrong class")
	}
}

func TestCategoricalOnlySplit(t *testing.T) {
	// Positive iff weather == snow; temp/hour are pure noise constants.
	d := mlearn.NewDataset(schema(t))
	for i := 0; i < 60; i++ {
		w := float64(i % 3)
		y := 0
		if w == 2 {
			y = 1
		}
		if err := d.Add([]float64{5, w, 12}, y); err != nil {
			t.Fatal(err)
		}
	}
	tr := New(Config{})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	if m := mlearn.Evaluate(tr, d); m.Accuracy() != 1 {
		t.Errorf("accuracy = %v", m.Accuracy())
	}
	weights, err := tr.FeatureWeights()
	if err != nil {
		t.Fatal(err)
	}
	if weights[0].Attr != "weather" || weights[0].Weight != 1 {
		t.Errorf("weights = %v, want all weight on weather", weights)
	}
}

func TestFeatureWeightsNormalisedAndRanked(t *testing.T) {
	d := xorish(t, 500, 5)
	tr := New(Config{})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	weights, err := tr.FeatureWeights()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, w := range weights {
		if w.Weight < 0 {
			t.Errorf("negative weight %v", w)
		}
		sum += w.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v", sum)
	}
	// temp and weather carry the signal; hour is noise.
	rank := map[string]int{}
	for i, w := range weights {
		rank[w.Attr] = i
	}
	if rank["hour"] < rank["temp"] || rank["hour"] < rank["weather"] {
		t.Errorf("noise attribute outranks signal: %v", weights)
	}
	// Unfitted tree errors.
	if _, err := New(Config{}).FeatureWeights(); err == nil {
		t.Error("want unfitted error")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := xorish(t, 300, 6)
	tr := New(Config{Criterion: Entropy, MaxDepth: 6})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Tree
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	// Identical predictions on a probe grid.
	probe := xorish(t, 200, 7)
	for i, x := range probe.X {
		if tr.Predict(x) != back.Predict(x) {
			t.Fatalf("prediction diverges on row %d", i)
		}
	}
	// Weights survive.
	w1, _ := tr.FeatureWeights()
	w2, _ := back.FeatureWeights()
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Errorf("weights diverge: %v vs %v", w1[i], w2[i])
		}
	}
	if back.Config().Criterion != Entropy {
		t.Error("config lost")
	}
}

func TestJSONErrors(t *testing.T) {
	if _, err := json.Marshal(New(Config{})); err == nil {
		t.Error("want marshal error on unfitted tree")
	}
	var tr Tree
	if err := json.Unmarshal([]byte(`{"config":{},"schema":{"attrs":[]},"root":null}`), &tr); err == nil {
		t.Error("want error for missing root")
	}
	if err := json.Unmarshal([]byte(`not json`), &tr); err == nil {
		t.Error("want syntax error")
	}
	// Corrupt split attribute index.
	bad := `{"config":{},"schema":{"attrs":[{"name":"a","kind":1}]},"importances":[0],
	  "root":{"leaf":false,"attr":5,"numeric":true,
	    "left":{"leaf":true,"class":0,"samples":1},
	    "right":{"leaf":true,"class":1,"samples":1},"samples":2}}`
	if err := json.Unmarshal([]byte(bad), &tr); err == nil {
		t.Error("want validation error for attr out of range")
	}
}

func TestPruneCollapsesNoise(t *testing.T) {
	// Signal: temp > 20. Add label noise so the unpruned tree overfits.
	rng := rand.New(rand.NewSource(8))
	train := mlearn.NewDataset(schema(t))
	val := mlearn.NewDataset(schema(t))
	gen := func(d *mlearn.Dataset, n int, noisy bool) {
		for i := 0; i < n; i++ {
			temp := rng.Float64() * 40
			y := 0
			if temp > 20 {
				y = 1
			}
			if noisy && rng.Float64() < 0.15 {
				y = 1 - y
			}
			if err := d.Add([]float64{temp, float64(rng.Intn(3)), rng.Float64() * 24}, y); err != nil {
				t.Fatal(err)
			}
		}
	}
	gen(train, 400, true)
	gen(val, 200, false)
	tr := New(Config{})
	if err := tr.Fit(train); err != nil {
		t.Fatal(err)
	}
	before := tr.NodeCount()
	accBefore := mlearn.Evaluate(tr, val).Accuracy()
	if err := tr.Prune(val); err != nil {
		t.Fatalf("Prune: %v", err)
	}
	after := tr.NodeCount()
	accAfter := mlearn.Evaluate(tr, val).Accuracy()
	if after >= before {
		t.Errorf("pruning did not shrink the tree: %d -> %d", before, after)
	}
	if accAfter < accBefore {
		t.Errorf("pruning hurt validation accuracy: %v -> %v", accBefore, accAfter)
	}
}

func TestPruneErrors(t *testing.T) {
	tr := New(Config{})
	d := xorish(t, 50, 9)
	if err := tr.Prune(d); err == nil {
		t.Error("want unfitted error")
	}
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := tr.Prune(mlearn.NewDataset(schema(t))); err == nil {
		t.Error("want empty validation error")
	}
	other, _ := mlearn.NewSchema([]mlearn.Attribute{{Name: "x", Kind: mlearn.Numeric}})
	od := mlearn.NewDataset(other)
	if err := od.Add([]float64{1}, 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.Prune(od); err == nil {
		t.Error("want schema mismatch error")
	}
}

func TestDeterministicFit(t *testing.T) {
	d := xorish(t, 300, 10)
	a, b := New(Config{}), New(Config{})
	if err := a.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(d); err != nil {
		t.Fatal(err)
	}
	probe := xorish(t, 100, 11)
	for i, x := range probe.X {
		if a.Predict(x) != b.Predict(x) {
			t.Fatalf("non-deterministic prediction at %d", i)
		}
	}
	if a.NodeCount() != b.NodeCount() {
		t.Error("non-deterministic structure")
	}
}

func TestCriterionString(t *testing.T) {
	if Gini.String() != "gini" || Entropy.String() != "entropy" || GainRatio.String() != "gain_ratio" {
		t.Error("criterion names wrong")
	}
	if Criterion(9).String() != "criterion(9)" {
		t.Error("unknown criterion name")
	}
}

func TestMinImpurityDecrease(t *testing.T) {
	d := xorish(t, 300, 12)
	tr := New(Config{MinImpurityDecrease: 10}) // impossible bar
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	if tr.NodeCount() != 1 {
		t.Errorf("tree grew %d nodes despite impossible gain bar", tr.NodeCount())
	}
}

func TestDOTExport(t *testing.T) {
	d := xorish(t, 200, 13)
	tr := New(Config{MaxDepth: 3})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	dot, err := tr.DOT("window")
	if err != nil {
		t.Fatalf("DOT: %v", err)
	}
	for _, want := range []string{`digraph "window"`, "yes", "no", "class ", "samples"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	// One node line per tree node.
	if got := strings.Count(dot, "  n"); got < tr.NodeCount() {
		t.Errorf("DOT has %d node/edge lines for %d nodes", got, tr.NodeCount())
	}
	// Unfitted tree errors; empty name defaults.
	if _, err := New(Config{}).DOT(""); err == nil {
		t.Error("want unfitted error")
	}
	if dot2, err := tr.DOT(""); err != nil || !strings.Contains(dot2, `digraph "tree"`) {
		t.Errorf("default name: %v", err)
	}
}

func TestExplainPath(t *testing.T) {
	d := xorish(t, 400, 21)
	tr := New(Config{})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		steps, class, err := tr.Explain(d.X[i])
		if err != nil {
			t.Fatalf("Explain: %v", err)
		}
		if class != tr.Predict(d.X[i]) {
			t.Fatalf("Explain class %d != Predict %d", class, tr.Predict(d.X[i]))
		}
		if len(steps) == 0 {
			t.Fatal("no steps on a non-trivial tree")
		}
		for _, s := range steps {
			if s.Condition == "" || s.Attr == "" || s.Samples <= 0 {
				t.Fatalf("malformed step %+v", s)
			}
		}
		str, err := tr.ExplainString(d.X[i])
		if err != nil || !strings.Contains(str, "class ") {
			t.Fatalf("ExplainString = %q, %v", str, err)
		}
	}
	if _, _, err := New(Config{}).Explain(d.X[0]); err == nil {
		t.Error("want unfitted error")
	}
	if _, err := New(Config{}).ExplainString(d.X[0]); err == nil {
		t.Error("want unfitted error")
	}
}
