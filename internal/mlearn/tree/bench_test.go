package tree

import (
	"math/rand"
	"testing"

	"iotsid/internal/mlearn"
)

// benchDataset mirrors xorish without needing a *testing.T.
func benchDataset(b *testing.B, n int, seed int64) *mlearn.Dataset {
	b.Helper()
	s, err := mlearn.NewSchema([]mlearn.Attribute{
		{Name: "temp", Kind: mlearn.Numeric},
		{Name: "weather", Kind: mlearn.Categorical, Categories: []string{"sunny", "rain", "snow"}},
		{Name: "hour", Kind: mlearn.Numeric},
	})
	if err != nil {
		b.Fatal(err)
	}
	d := mlearn.NewDataset(s)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		temp := rng.Float64() * 40
		weather := float64(rng.Intn(3))
		y := 0
		if (temp > 20) != (weather == 1) {
			y = 1
		}
		if err := d.Add([]float64{temp, weather, rng.Float64() * 24}, y); err != nil {
			b.Fatal(err)
		}
	}
	return d
}

func BenchmarkFit(b *testing.B) {
	d := benchDataset(b, 1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New(Config{MinSamplesLeaf: 5})
		if err := tr.Fit(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	d := benchDataset(b, 1000, 1)
	tr := New(Config{MinSamplesLeaf: 5})
	if err := tr.Fit(d); err != nil {
		b.Fatal(err)
	}
	probe := d.X[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Predict(probe)
	}
}

func BenchmarkEvaluate(b *testing.B) {
	train := benchDataset(b, 1000, 1)
	test := benchDataset(b, 500, 2)
	tr := New(Config{MinSamplesLeaf: 5})
	if err := tr.Fit(train); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if acc := mlearn.Evaluate(tr, test).Accuracy(); acc < 0.5 {
			b.Fatal("degenerate")
		}
	}
}

func BenchmarkPredictCompiled(b *testing.B) {
	d := benchDataset(b, 1000, 1)
	tr := New(Config{MinSamplesLeaf: 5})
	if err := tr.Fit(d); err != nil {
		b.Fatal(err)
	}
	c, err := tr.Compile()
	if err != nil {
		b.Fatal(err)
	}
	probe := d.X[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Predict(probe)
	}
}

// benchEvalSet walks every row so the benchmark averages over leaves at
// all depths instead of one hot cached path.
func benchPredictSweep(b *testing.B, predict func(x []float64) int, xs [][]float64) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = predict(xs[i%len(xs)])
	}
}

func BenchmarkPredictSweepTree(b *testing.B) {
	d := benchDataset(b, 5000, 1)
	tr := New(Config{MinSamplesLeaf: 2})
	if err := tr.Fit(d); err != nil {
		b.Fatal(err)
	}
	benchPredictSweep(b, tr.Predict, d.X)
}

func BenchmarkPredictSweepCompiled(b *testing.B) {
	d := benchDataset(b, 5000, 1)
	tr := New(Config{MinSamplesLeaf: 2})
	if err := tr.Fit(d); err != nil {
		b.Fatal(err)
	}
	c, err := tr.Compile()
	if err != nil {
		b.Fatal(err)
	}
	benchPredictSweep(b, c.Predict, d.X)
}

func BenchmarkPredictAllCompiled(b *testing.B) {
	d := benchDataset(b, 5000, 1)
	tr := New(Config{MinSamplesLeaf: 2})
	if err := tr.Fit(d); err != nil {
		b.Fatal(err)
	}
	c, err := tr.Compile()
	if err != nil {
		b.Fatal(err)
	}
	out := make([]int, len(d.X))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.PredictInto(d.X, out); err != nil {
			b.Fatal(err)
		}
	}
}
