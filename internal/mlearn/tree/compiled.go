package tree

import "fmt"

// compiledNode is one node of the flattened tree. Internal nodes carry the
// split test and the slice offsets of their children; leaves are marked by
// attr == leafMarker and carry the predicted class in label. The layout is
// chosen so a predict walk touches one contiguous cache line per hop and
// never follows a heap pointer.
type compiledNode struct {
	threshold float64 // numeric split: x[attr] <= threshold goes left
	attr      int32   // split attribute index, or leafMarker
	category  int32   // categorical split: int(x[attr]) == category goes left
	left      int32   // offset of the left child
	right     int32   // offset of the right child
	label     int32   // predicted class (valid on leaves)
	numeric   bool    // split type
}

const leafMarker = int32(-1)

// Compiled is a trained decision tree flattened into one contiguous node
// slice for allocation-free inference. It predicts identically to the
// *Tree it was compiled from (the property tests assert this) but drops
// everything the hot path does not need: per-node count maps, schema
// strings and child pointers. Compile once, share freely — a Compiled is
// immutable and safe for concurrent use.
type Compiled struct {
	nodes []compiledNode
	width int // attribute count of the source schema
}

// Compile flattens a fitted tree. The nodes are laid out in preorder, so
// the common all-left descent walks forward through memory.
func (t *Tree) Compile() (*Compiled, error) {
	if t.root == nil {
		return nil, fmt.Errorf("tree: cannot compile unfitted tree")
	}
	c := &Compiled{
		nodes: make([]compiledNode, 0, count(t.root)),
		width: t.schema.Len(),
	}
	c.flatten(t.root)
	return c, nil
}

func (c *Compiled) flatten(n *node) int32 {
	idx := int32(len(c.nodes))
	c.nodes = append(c.nodes, compiledNode{attr: leafMarker, label: int32(n.Class)})
	if n.Leaf {
		return idx
	}
	left := c.flatten(n.Left)
	right := c.flatten(n.Right)
	c.nodes[idx] = compiledNode{
		threshold: n.Threshold,
		attr:      int32(n.Attr),
		category:  int32(n.Category),
		left:      left,
		right:     right,
		label:     int32(n.Class),
		numeric:   n.Numeric,
	}
	return idx
}

// Width returns the attribute count of the schema the tree was trained on —
// the length Predict expects of its feature vector.
func (c *Compiled) Width() int { return c.width }

// NodeCount returns the number of flattened nodes.
func (c *Compiled) NodeCount() int { return len(c.nodes) }

// Predict labels one example. It allocates nothing and matches
// Tree.Predict exactly.
//
//iot:hotpath
func (c *Compiled) Predict(x []float64) int {
	nodes := c.nodes
	i := int32(0)
	for {
		n := &nodes[i]
		if n.attr == leafMarker {
			return int(n.label)
		}
		v := x[n.attr]
		if n.numeric {
			if v <= n.threshold {
				i = n.left
			} else {
				i = n.right
			}
		} else {
			if int(v) == int(n.category) {
				i = n.left
			} else {
				i = n.right
			}
		}
	}
}

// PredictInto labels a batch into a caller-provided buffer (the
// allocation-free batch form). out must be at least as long as xs; the
// filled prefix is returned.
//
//iot:hotpath
func (c *Compiled) PredictInto(xs [][]float64, out []int) ([]int, error) {
	if len(out) < len(xs) {
		//iot:allow hotalloc error path, never taken steady-state; the AllocsPerRun gate proves the allow path is 0-alloc
		return nil, fmt.Errorf("tree: predict buffer %d short of batch %d", len(out), len(xs))
	}
	for i, x := range xs {
		out[i] = c.Predict(x)
	}
	return out[:len(xs)], nil
}

// PredictAll labels a batch, allocating the result slice.
func (c *Compiled) PredictAll(xs [][]float64) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = c.Predict(x)
	}
	return out
}
