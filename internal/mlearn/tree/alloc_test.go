package tree

import (
	"math/rand"
	"testing"
)

// TestCompiledPredictZeroAllocs gates the inference fast path: a compiled
// tree walk must not allocate. The framework's instrumented Authorize path
// inherits this bar (internal/core's TestAuthorizeSteadyStateAllocs), so a
// regression here would surface there too — this test pins the blame to the
// tree layer.
func TestCompiledPredictZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	tr, _ := fittedTree(t, 400, 5)
	c, err := tr.Compile()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	probes := make([][]float64, 64)
	for i := range probes {
		probes[i] = randomProbe(rng)
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		if got := c.Predict(probes[i%len(probes)]); got < 0 {
			t.Fatal("negative class")
		}
		i++
	})
	if allocs != 0 {
		t.Errorf("Compiled.Predict allocates %.1f objects/op, want 0", allocs)
	}
}

// TestCompiledPredictIntoZeroAllocs: the batch form with caller-provided
// output must be allocation-free as well.
func TestCompiledPredictIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	tr, _ := fittedTree(t, 400, 5)
	c, err := tr.Compile()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	xs := make([][]float64, 32)
	for i := range xs {
		xs[i] = randomProbe(rng)
	}
	out := make([]int, len(xs))
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := c.PredictInto(xs, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Compiled.PredictInto allocates %.1f objects/op, want 0", allocs)
	}
}
