package tree

import (
	"fmt"

	"iotsid/internal/mlearn"
)

// Prune applies reduced-error pruning against a held-out validation set:
// bottom-up, every internal subtree whose majority-class leaf would make no
// more validation errors than the subtree itself is collapsed. Pruning
// combats the over-fitting the paper's cross-validation is meant to detect
// ("the accuracy of the training set is greater than the accuracy of the
// test set, indicating that cross-validation has successfully avoided ...
// over-fitting").
func (t *Tree) Prune(val *mlearn.Dataset) error {
	if t.root == nil {
		return fmt.Errorf("tree: not fitted")
	}
	if val.Len() == 0 {
		return fmt.Errorf("tree: empty validation set")
	}
	if val.Schema.Len() != t.schema.Len() {
		return fmt.Errorf("tree: validation schema width %d, tree schema width %d",
			val.Schema.Len(), t.schema.Len())
	}
	idx := make([]int, val.Len())
	for i := range idx {
		idx[i] = i
	}
	pruneNode(t.root, val, idx)
	return nil
}

// pruneNode returns the validation error count of the (possibly pruned)
// subtree rooted at n over the given validation rows.
func pruneNode(n *node, val *mlearn.Dataset, idx []int) int {
	leafErr := 0
	for _, i := range idx {
		if val.Y[i] != n.Class {
			leafErr++
		}
	}
	if n.Leaf {
		return leafErr
	}
	var left, right []int
	for _, i := range idx {
		if goesLeft(val.X[i], n.Attr, n.Numeric, n.Threshold, n.Category) {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	subErr := pruneNode(n.Left, val, left) + pruneNode(n.Right, val, right)
	if leafErr <= subErr {
		n.Leaf = true
		n.Left, n.Right = nil, nil
		n.Numeric = false
		n.Attr, n.Category = 0, 0
		n.Threshold = 0
		return leafErr
	}
	return subErr
}
