package tree

import (
	"fmt"
	"sort"
)

// Weight is one entry of the feature weight map of Fig 6.
type Weight struct {
	Attr   string  `json:"attr"`
	Weight float64 `json:"weight"`
}

// FeatureWeights returns the normalised per-attribute importance weights —
// the impurity decrease each attribute contributed while growing the tree,
// scaled to sum to 1. Attributes that never split carry weight 0. Sorted by
// descending weight (ties by name) to match the paper's Fig 6 presentation.
func (t *Tree) FeatureWeights() ([]Weight, error) {
	if t.root == nil {
		return nil, fmt.Errorf("tree: not fitted")
	}
	var total float64
	for _, v := range t.importances {
		total += v
	}
	out := make([]Weight, 0, len(t.importances))
	for i, v := range t.importances {
		w := 0.0
		if total > 0 {
			w = v / total
		}
		out = append(out, Weight{Attr: t.schema.Attrs[i].Name, Weight: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Attr < out[j].Attr
	})
	return out, nil
}
