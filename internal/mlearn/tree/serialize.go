package tree

import (
	"encoding/json"
	"fmt"

	"iotsid/internal/mlearn"
)

// treeJSON is the on-disk form of a trained tree — this is what the
// feature memory persists per device model.
type treeJSON struct {
	Config      Config        `json:"config"`
	Schema      mlearn.Schema `json:"schema"`
	Root        *node         `json:"root"`
	Importances []float64     `json:"importances"`
	NTrain      int           `json:"n_train"`
}

// MarshalJSON serialises a fitted tree.
func (t *Tree) MarshalJSON() ([]byte, error) {
	if t.root == nil {
		return nil, fmt.Errorf("tree: cannot serialise unfitted tree")
	}
	return json.Marshal(treeJSON{
		Config:      t.cfg,
		Schema:      t.schema,
		Root:        t.root,
		Importances: t.importances,
		NTrain:      t.nTrain,
	})
}

// UnmarshalJSON restores a serialised tree.
func (t *Tree) UnmarshalJSON(data []byte) error {
	var raw treeJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.Root == nil {
		return fmt.Errorf("tree: serialised tree has no root")
	}
	if len(raw.Importances) != raw.Schema.Len() {
		return fmt.Errorf("tree: importances width %d, schema width %d",
			len(raw.Importances), raw.Schema.Len())
	}
	if err := validateNode(raw.Root, raw.Schema); err != nil {
		return err
	}
	t.cfg = raw.Config.withDefaults()
	t.schema = raw.Schema
	t.root = raw.Root
	t.importances = raw.Importances
	t.nTrain = raw.NTrain
	return nil
}

func validateNode(n *node, s mlearn.Schema) error {
	if n.Leaf {
		if n.Left != nil || n.Right != nil {
			return fmt.Errorf("tree: leaf with children")
		}
		return nil
	}
	if n.Left == nil || n.Right == nil {
		return fmt.Errorf("tree: internal node missing children")
	}
	if n.Attr < 0 || n.Attr >= s.Len() {
		return fmt.Errorf("tree: split attribute %d outside schema", n.Attr)
	}
	attr := s.Attrs[n.Attr]
	if n.Numeric != (attr.Kind == mlearn.Numeric) {
		return fmt.Errorf("tree: split type mismatch on attribute %q", attr.Name)
	}
	if !n.Numeric && (n.Category < 0 || n.Category >= len(attr.Categories)) {
		return fmt.Errorf("tree: split category %d outside domain of %q", n.Category, attr.Name)
	}
	if err := validateNode(n.Left, s); err != nil {
		return err
	}
	return validateNode(n.Right, s)
}
