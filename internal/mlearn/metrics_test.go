package mlearn

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfusionTableVExample(t *testing.T) {
	m := Confusion{TP: 50, TN: 30, FP: 5, FN: 15}
	if m.Total() != 100 {
		t.Errorf("Total = %d", m.Total())
	}
	if got := m.Accuracy(); math.Abs(got-0.80) > 1e-12 {
		t.Errorf("Accuracy = %v", got) // (50+30)/100, eqn 1
	}
	if got := m.Recall(); math.Abs(got-50.0/65) > 1e-12 {
		t.Errorf("Recall = %v", got) // TP/(TP+FN), eqn 2
	}
	if got := m.Precision(); math.Abs(got-50.0/55) > 1e-12 {
		t.Errorf("Precision = %v", got) // TP/(TP+FP), eqn 3
	}
	if got := m.FPR(); math.Abs(got-5.0/35) > 1e-12 {
		t.Errorf("FPR = %v", got) // FP/(FP+TN), eqn 4
	}
	if got := m.FNR(); math.Abs(got-15.0/65) > 1e-12 {
		t.Errorf("FNR = %v", got) // FN/(TP+FN), eqn 5
	}
}

func TestConfusionZeroDenominators(t *testing.T) {
	var m Confusion
	for _, f := range []func() float64{m.Accuracy, m.Recall, m.Precision, m.FPR, m.FNR, m.F1} {
		if got := f(); got != 0 {
			t.Errorf("zero matrix metric = %v", got)
		}
	}
}

func TestConfusionObserve(t *testing.T) {
	var m Confusion
	m.Observe(1, 1) // TP
	m.Observe(1, 0) // FN
	m.Observe(0, 1) // FP
	m.Observe(0, 0) // TN
	if m.TP != 1 || m.FN != 1 || m.FP != 1 || m.TN != 1 {
		t.Errorf("m = %+v", m)
	}
}

func TestConfusionAdd(t *testing.T) {
	a := Confusion{TP: 1, TN: 2, FP: 3, FN: 4}
	b := Confusion{TP: 10, TN: 20, FP: 30, FN: 40}
	got := a.Add(b)
	if got != (Confusion{TP: 11, TN: 22, FP: 33, FN: 44}) {
		t.Errorf("Add = %+v", got)
	}
}

// Property: the identities the paper's equations imply hold for any matrix —
// Recall + FNR = 1 (when defined) and FPR is bounded by [0,1].
func TestConfusionIdentitiesProperty(t *testing.T) {
	f := func(tp, tn, fp, fn uint8) bool {
		m := Confusion{TP: int(tp), TN: int(tn), FP: int(fp), FN: int(fn)}
		if m.TP+m.FN > 0 {
			if math.Abs(m.Recall()+m.FNR()-1) > 1e-12 {
				return false
			}
		}
		for _, v := range []float64{m.Accuracy(), m.Recall(), m.Precision(), m.FPR(), m.FNR(), m.F1()} {
			if v < 0 || v > 1 {
				return false
			}
		}
		// Accuracy decomposition.
		if m.Total() > 0 {
			want := float64(m.TP+m.TN) / float64(m.Total())
			if math.Abs(m.Accuracy()-want) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

type constClassifier int

func (c constClassifier) Fit(*Dataset) error    { return nil }
func (c constClassifier) Predict([]float64) int { return int(c) }

func TestEvaluate(t *testing.T) {
	d := imbalanced(t, 6, 4, 9)
	m := Evaluate(constClassifier(1), d)
	if m.TP != 6 || m.FP != 4 || m.TN != 0 || m.FN != 0 {
		t.Errorf("always-positive confusion = %+v", m)
	}
	if m.Recall() != 1 || m.FPR() != 1 {
		t.Errorf("always-positive metrics: recall=%v fpr=%v", m.Recall(), m.FPR())
	}
	m = Evaluate(constClassifier(0), d)
	if m.TN != 4 || m.FN != 6 {
		t.Errorf("always-negative confusion = %+v", m)
	}
	if m.String() == "" {
		t.Error("String empty")
	}
}
