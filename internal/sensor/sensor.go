// Package sensor models IoT sensors, their readings, and the uniform
// JSON-normalised snapshot format the paper's sensor data collector emits
// (§IV-B-3: "we process all data into unified data in JSON format").
//
// The package defines a shared feature vocabulary. Every other layer — the
// home simulator, the vendor protocol substrates, the dataset generator and
// the machine-learning schema — speaks in these features, which is what makes
// the "sensor context" of the paper a single coherent object.
package sensor

import "fmt"

// Kind identifies a physical sensor type deployed in the smart home.
type Kind int

// Sensor kinds covered by the paper's device inventory (Table I and Fig 6).
const (
	KindSmoke Kind = iota + 1
	KindCombustibleGas
	KindTemperature
	KindHumidity
	KindAirQuality
	KindMotion
	KindDoorWindowContact
	KindSmartLock
	KindWaterLeak
	KindIlluminance
	KindWeatherStation
	KindVoiceAssistant
	KindClock
	KindOccupancy
	KindPowerMeter
	KindNoise
)

var kindNames = map[Kind]string{
	KindSmoke:             "smoke",
	KindCombustibleGas:    "combustible_gas",
	KindTemperature:       "temperature",
	KindHumidity:          "humidity",
	KindAirQuality:        "air_quality",
	KindMotion:            "motion",
	KindDoorWindowContact: "door_window_contact",
	KindSmartLock:         "smart_lock",
	KindWaterLeak:         "water_leak",
	KindIlluminance:       "illuminance",
	KindWeatherStation:    "weather_station",
	KindVoiceAssistant:    "voice_assistant",
	KindClock:             "clock",
	KindOccupancy:         "occupancy",
	KindPowerMeter:        "power_meter",
	KindNoise:             "noise",
}

// String returns the canonical lower-snake name of the sensor kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Valid reports whether k is a known sensor kind.
func (k Kind) Valid() bool {
	_, ok := kindNames[k]
	return ok
}

// Feature names one dimension of the sensor context. Features are the
// columns of the machine-learning problem and the keys of a Snapshot.
type Feature string

// The feature vocabulary. The window model of Fig 6 uses the first nine;
// the remaining features appear in the context of other device models.
const (
	FeatSmoke       Feature = "smoke"           // bool: smoke alarm tripped
	FeatGas         Feature = "combustible_gas" // bool: gas detector tripped
	FeatVoiceCmd    Feature = "voice_command"   // bool: user voice command present
	FeatDoorLock    Feature = "door_lock"       // label: locked | unlocked
	FeatTempIndoor  Feature = "temperature_in"  // °C, continuous
	FeatAirQuality  Feature = "air_quality"     // AQI, continuous
	FeatWeather     Feature = "outdoor_weather" // label: sunny | cloudy | rain | snow
	FeatMotion      Feature = "motion"          // bool: motion detected
	FeatHour        Feature = "hour_of_day"     // [0,24) fractional hour
	FeatTempOutdoor Feature = "temperature_out" // °C, continuous
	FeatHumidity    Feature = "humidity"        // %RH, continuous
	FeatIlluminance Feature = "illuminance"     // lux, continuous
	FeatWaterLeak   Feature = "water_leak"      // bool: flood sensor tripped
	FeatOccupancy   Feature = "occupancy"       // bool: somebody home
	FeatWindowOpen  Feature = "window_open"     // bool: window contact open
	FeatDoorOpen    Feature = "door_open"       // bool: door contact open
	FeatNoise       Feature = "noise_level"     // dB, continuous
	FeatPowerDraw   Feature = "power_draw"      // W, continuous

	// Temporal features (ROADMAP item 1): derived dimensions the sequence
	// judge discretizes. Gateways that track their own timelines may push
	// them explicitly; otherwise the per-home tracker derives them from
	// event times and the occupancy stream.
	FeatTimeBucket     Feature = "time_bucket"     // label: night | morning | afternoon | evening
	FeatOccupancyDwell Feature = "occupancy_dwell" // s since the occupancy state last changed
	FeatInstrGap       Feature = "instruction_gap" // s since the previous instruction
)

// FeatureType describes how a feature's values behave, mirroring the paper's
// split between "logic-oriented discrete values and data-oriented continuous
// values".
type FeatureType int

// Feature types.
const (
	TypeBool FeatureType = iota + 1
	TypeNumber
	TypeLabel
)

// String names the feature type.
func (t FeatureType) String() string {
	switch t {
	case TypeBool:
		return "bool"
	case TypeNumber:
		return "number"
	case TypeLabel:
		return "label"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Descriptor carries feature metadata: its value type, the sensor kind that
// produces it, its unit, and — for label features — the closed label domain.
type Descriptor struct {
	Feature Feature
	Type    FeatureType
	Source  Kind
	Unit    string
	Labels  []string // label domain, only for TypeLabel
}

// Weather label domain.
const (
	WeatherSunny  = "sunny"
	WeatherCloudy = "cloudy"
	WeatherRain   = "rain"
	WeatherSnow   = "snow"
)

// Door-lock label domain.
const (
	LockLocked   = "locked"
	LockUnlocked = "unlocked"
)

// Time-of-day bucket label domain. The four buckets quantize the
// fractional hour-of-day into the coarse daily phases the sequence judge
// keys on: night [22,6), morning [6,12), afternoon [12,18), evening
// [18,22).
const (
	BucketNight     = "night"
	BucketMorning   = "morning"
	BucketAfternoon = "afternoon"
	BucketEvening   = "evening"
)

// timeBucketLabels is indexed by TimeBucketIndex.
var timeBucketLabels = [4]string{BucketNight, BucketMorning, BucketAfternoon, BucketEvening}

// TimeBucketCount is the number of time-of-day buckets.
const TimeBucketCount = 4

// TimeBucketIndex quantizes a fractional hour-of-day into one of the four
// daily phases (0 night, 1 morning, 2 afternoon, 3 evening). Hours outside
// [0,24) wrap; NaN and infinities land in the night bucket, so hostile
// values stay inside the symbol alphabet instead of corrupting it.
//
//iot:hotpath
func TimeBucketIndex(hour float64) int {
	if hour != hour || hour > 1e9 || hour < -1e9 { // NaN or absurd: clamp
		return 0
	}
	h := hour - 24*float64(int(hour/24))
	if h < 0 {
		h += 24
	}
	switch {
	case h < 6:
		return 0
	case h < 12:
		return 1
	case h < 18:
		return 2
	case h < 22:
		return 3
	default:
		return 0
	}
}

// TimeBucketLabel is the label form of TimeBucketIndex.
func TimeBucketLabel(hour float64) string {
	return timeBucketLabels[TimeBucketIndex(hour)]
}

var vocabulary = []Descriptor{
	{Feature: FeatSmoke, Type: TypeBool, Source: KindSmoke},
	{Feature: FeatGas, Type: TypeBool, Source: KindCombustibleGas},
	{Feature: FeatVoiceCmd, Type: TypeBool, Source: KindVoiceAssistant},
	{Feature: FeatDoorLock, Type: TypeLabel, Source: KindSmartLock, Labels: []string{LockLocked, LockUnlocked}},
	{Feature: FeatTempIndoor, Type: TypeNumber, Source: KindTemperature, Unit: "°C"},
	{Feature: FeatAirQuality, Type: TypeNumber, Source: KindAirQuality, Unit: "AQI"},
	{Feature: FeatWeather, Type: TypeLabel, Source: KindWeatherStation, Labels: []string{WeatherSunny, WeatherCloudy, WeatherRain, WeatherSnow}},
	{Feature: FeatMotion, Type: TypeBool, Source: KindMotion},
	{Feature: FeatHour, Type: TypeNumber, Source: KindClock, Unit: "h"},
	{Feature: FeatTempOutdoor, Type: TypeNumber, Source: KindWeatherStation, Unit: "°C"},
	{Feature: FeatHumidity, Type: TypeNumber, Source: KindHumidity, Unit: "%RH"},
	{Feature: FeatIlluminance, Type: TypeNumber, Source: KindIlluminance, Unit: "lux"},
	{Feature: FeatWaterLeak, Type: TypeBool, Source: KindWaterLeak},
	{Feature: FeatOccupancy, Type: TypeBool, Source: KindOccupancy},
	{Feature: FeatWindowOpen, Type: TypeBool, Source: KindDoorWindowContact},
	{Feature: FeatDoorOpen, Type: TypeBool, Source: KindDoorWindowContact},
	{Feature: FeatNoise, Type: TypeNumber, Source: KindNoise, Unit: "dB"},
	{Feature: FeatPowerDraw, Type: TypeNumber, Source: KindPowerMeter, Unit: "W"},
	{Feature: FeatTimeBucket, Type: TypeLabel, Source: KindClock, Labels: []string{BucketNight, BucketMorning, BucketAfternoon, BucketEvening}},
	{Feature: FeatOccupancyDwell, Type: TypeNumber, Source: KindOccupancy, Unit: "s"},
	{Feature: FeatInstrGap, Type: TypeNumber, Source: KindClock, Unit: "s"},
}

var vocabularyIndex = buildVocabularyIndex()

func buildVocabularyIndex() map[Feature]Descriptor {
	m := make(map[Feature]Descriptor, len(vocabulary))
	for _, d := range vocabulary {
		m[d.Feature] = d
	}
	return m
}

// Vocabulary returns a copy of the full feature vocabulary in canonical
// order.
func Vocabulary() []Descriptor {
	out := make([]Descriptor, len(vocabulary))
	copy(out, vocabulary)
	return out
}

// Describe looks up the descriptor of a feature.
func Describe(f Feature) (Descriptor, bool) {
	d, ok := vocabularyIndex[f]
	return d, ok
}

// MustDescribe looks up a feature descriptor that is known to exist. It is a
// programming error to pass an unknown feature.
func MustDescribe(f Feature) Descriptor {
	d, ok := vocabularyIndex[f]
	if !ok {
		panic(fmt.Sprintf("sensor: unknown feature %q", f))
	}
	return d
}
