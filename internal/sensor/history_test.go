package sensor

import (
	"math"
	"testing"
	"time"
)

func histSnap(at time.Time, temp float64, smoke bool) Snapshot {
	s := NewSnapshot(at)
	s.Set(FeatTempIndoor, Number(temp))
	s.Set(FeatSmoke, Bool(smoke))
	return s
}

func TestHistoryPushAndLatest(t *testing.T) {
	h := NewHistory(8)
	if _, ok := h.Latest(); ok {
		t.Error("empty history has a latest")
	}
	for i := 0; i < 5; i++ {
		if err := h.Push(histSnap(testTime.Add(time.Duration(i)*time.Minute), 20+float64(i), false)); err != nil {
			t.Fatal(err)
		}
	}
	if h.Len() != 5 {
		t.Fatalf("len = %d", h.Len())
	}
	latest, ok := h.Latest()
	if !ok || !latest.At.Equal(testTime.Add(4*time.Minute)) {
		t.Errorf("latest = %v", latest.At)
	}
	// Out-of-order rejection.
	if err := h.Push(histSnap(testTime, 19, false)); err == nil {
		t.Error("want out-of-order error")
	}
	// Equal timestamp is accepted (same tick, fresher values).
	if err := h.Push(histSnap(testTime.Add(4*time.Minute), 30, false)); err != nil {
		t.Errorf("same-time push: %v", err)
	}
}

func TestHistoryRingEviction(t *testing.T) {
	h := NewHistory(4)
	for i := 0; i < 10; i++ {
		if err := h.Push(histSnap(testTime.Add(time.Duration(i)*time.Minute), float64(i), false)); err != nil {
			t.Fatal(err)
		}
	}
	if h.Len() != 4 {
		t.Fatalf("len = %d", h.Len())
	}
	window := h.Window(time.Hour)
	if len(window) != 4 {
		t.Fatalf("window = %d", len(window))
	}
	if n, _ := window[0].Number(FeatTempIndoor); n != 6 {
		t.Errorf("oldest retained = %v, want 6", n)
	}
}

func TestHistoryWindowCutoff(t *testing.T) {
	h := NewHistory(16)
	for i := 0; i < 10; i++ {
		if err := h.Push(histSnap(testTime.Add(time.Duration(i)*time.Minute), float64(i), false)); err != nil {
			t.Fatal(err)
		}
	}
	// Newest is at +9m; a 3m window covers +6..+9.
	window := h.Window(3 * time.Minute)
	if len(window) != 4 {
		t.Fatalf("window = %d", len(window))
	}
	for i := 1; i < len(window); i++ {
		if window[i].At.Before(window[i-1].At) {
			t.Error("window not oldest-first")
		}
	}
	if h2 := NewHistory(4); h2.Window(time.Minute) != nil {
		t.Error("empty window should be nil")
	}
}

func TestAggregateNumeric(t *testing.T) {
	h := NewHistory(16)
	temps := []float64{20, 22, 21, 25}
	for i, x := range temps {
		if err := h.Push(histSnap(testTime.Add(time.Duration(i)*time.Minute), x, false)); err != nil {
			t.Fatal(err)
		}
	}
	agg, ok := h.AggregateNumeric(FeatTempIndoor, time.Hour)
	if !ok {
		t.Fatal("no aggregate")
	}
	if agg.Count != 4 || agg.Min != 20 || agg.Max != 25 || agg.Delta != 5 {
		t.Errorf("agg = %+v", agg)
	}
	if math.Abs(agg.Mean-22) > 1e-12 {
		t.Errorf("mean = %v", agg.Mean)
	}
	// Feature absent from every snapshot.
	if _, ok := h.AggregateNumeric(FeatHumidity, time.Hour); ok {
		t.Error("aggregate over absent feature should fail")
	}
}

func TestTrueFractionAndChangedAt(t *testing.T) {
	h := NewHistory(16)
	pattern := []bool{false, false, true, true, false}
	for i, b := range pattern {
		if err := h.Push(histSnap(testTime.Add(time.Duration(i)*time.Minute), 20, b)); err != nil {
			t.Fatal(err)
		}
	}
	frac, ok := h.TrueFraction(FeatSmoke, time.Hour)
	if !ok || math.Abs(frac-0.4) > 1e-12 {
		t.Errorf("frac = %v, %v", frac, ok)
	}
	if _, ok := h.TrueFraction(FeatMotion, time.Hour); ok {
		t.Error("fraction over absent feature should fail")
	}
	changes := h.ChangedAt(FeatSmoke, time.Hour)
	if len(changes) != 2 {
		t.Fatalf("changes = %v", changes)
	}
	if !changes[0].Equal(testTime.Add(2*time.Minute)) || !changes[1].Equal(testTime.Add(4*time.Minute)) {
		t.Errorf("change times = %v", changes)
	}
}

func TestHistoryCapacityClamp(t *testing.T) {
	h := NewHistory(0)
	if err := h.Push(histSnap(testTime, 20, false)); err != nil {
		t.Fatal(err)
	}
	if err := h.Push(histSnap(testTime.Add(time.Minute), 21, false)); err != nil {
		t.Fatal(err)
	}
	if h.Len() != 2 {
		t.Errorf("len = %d, want clamped capacity 2", h.Len())
	}
}
