package sensor

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		typ  FeatureType
		str  string
	}{
		{name: "bool true", v: Bool(true), typ: TypeBool, str: "true"},
		{name: "bool false", v: Bool(false), typ: TypeBool, str: "false"},
		{name: "number", v: Number(21.5), typ: TypeNumber, str: "21.5"},
		{name: "label", v: Label("rain"), typ: TypeLabel, str: "rain"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Type(); got != tt.typ {
				t.Errorf("Type() = %v, want %v", got, tt.typ)
			}
			if got := tt.v.String(); got != tt.str {
				t.Errorf("String() = %q, want %q", got, tt.str)
			}
			if tt.v.IsZero() {
				t.Error("IsZero() = true for constructed value")
			}
		})
	}
}

func TestValueZero(t *testing.T) {
	var v Value
	if !v.IsZero() {
		t.Fatal("zero Value must report IsZero")
	}
	if got := v.String(); got != "<absent>" {
		t.Errorf("String() = %q", got)
	}
	if _, ok := v.Numeric(); ok {
		t.Error("Numeric() ok for absent value")
	}
}

func TestValueNumericCoercion(t *testing.T) {
	if n, ok := Bool(true).Numeric(); !ok || n != 1 {
		t.Errorf("Bool(true).Numeric() = %v,%v", n, ok)
	}
	if n, ok := Bool(false).Numeric(); !ok || n != 0 {
		t.Errorf("Bool(false).Numeric() = %v,%v", n, ok)
	}
	if n, ok := Number(3.5).Numeric(); !ok || n != 3.5 {
		t.Errorf("Number(3.5).Numeric() = %v,%v", n, ok)
	}
	if _, ok := Label("x").Numeric(); ok {
		t.Error("Label must not coerce to numeric")
	}
}

func TestValueJSONRoundTrip(t *testing.T) {
	for _, v := range []Value{Bool(true), Bool(false), Number(-3.25), Number(0), Label("sunny")} {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back Value
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !back.Equal(v) {
			t.Errorf("round trip %v -> %s -> %v", v, data, back)
		}
	}
}

func TestValueJSONNumberRoundTripProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true // not representable in JSON
		}
		data, err := json.Marshal(Number(x))
		if err != nil {
			return false
		}
		var back Value
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		n, ok := back.Number()
		return ok && n == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromAny(t *testing.T) {
	tests := []struct {
		name string
		in   any
		want Value
		ok   bool
	}{
		{name: "bool", in: true, want: Bool(true), ok: true},
		{name: "float", in: 2.5, want: Number(2.5), ok: true},
		{name: "int", in: 7, want: Number(7), ok: true},
		{name: "int64", in: int64(-2), want: Number(-2), ok: true},
		{name: "json number", in: json.Number("10.5"), want: Number(10.5), ok: true},
		{name: "string", in: "rain", want: Label("rain"), ok: true},
		{name: "nil", in: nil, want: Value{}, ok: true},
		{name: "unsupported", in: []int{1}, ok: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := FromAny(tt.in)
			if tt.ok != (err == nil) {
				t.Fatalf("err = %v, want ok=%v", err, tt.ok)
			}
			if err == nil && !got.Equal(tt.want) {
				t.Errorf("FromAny(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestKindString(t *testing.T) {
	if KindSmoke.String() != "smoke" {
		t.Errorf("KindSmoke = %q", KindSmoke.String())
	}
	if !KindSmoke.Valid() {
		t.Error("KindSmoke should be valid")
	}
	if Kind(999).Valid() {
		t.Error("Kind(999) should be invalid")
	}
	if Kind(999).String() != "kind(999)" {
		t.Errorf("Kind(999) = %q", Kind(999).String())
	}
}

func TestVocabularyCompleteAndConsistent(t *testing.T) {
	vocab := Vocabulary()
	if len(vocab) < 18 {
		t.Fatalf("vocabulary too small: %d", len(vocab))
	}
	seen := make(map[Feature]bool)
	for _, d := range vocab {
		if seen[d.Feature] {
			t.Errorf("duplicate feature %q", d.Feature)
		}
		seen[d.Feature] = true
		if !d.Source.Valid() {
			t.Errorf("feature %q has invalid source kind", d.Feature)
		}
		if d.Type == TypeLabel && len(d.Labels) == 0 {
			t.Errorf("label feature %q without domain", d.Feature)
		}
		if d.Type != TypeLabel && len(d.Labels) != 0 {
			t.Errorf("non-label feature %q with label domain", d.Feature)
		}
		got, ok := Describe(d.Feature)
		if !ok || got.Feature != d.Feature {
			t.Errorf("Describe(%q) mismatch", d.Feature)
		}
	}
	if _, ok := Describe(Feature("nope")); ok {
		t.Error("Describe should fail for unknown feature")
	}
}

func TestMustDescribePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustDescribe should panic for unknown feature")
		}
	}()
	MustDescribe(Feature("nope"))
}
