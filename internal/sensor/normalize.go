package sensor

import (
	"fmt"
	"strings"
	"time"
)

// Converter turns one vendor-encoded raw field into a canonical Value.
type Converter func(raw any) (Value, error)

// FieldMapping binds a vendor payload key to a canonical feature plus the
// converter that decodes the vendor's encoding.
type FieldMapping struct {
	Feature Feature
	Convert Converter
}

// Normalizer rewrites vendor-specific payloads (Xiaomi property maps,
// SmartThings entity states, ...) into the unified Snapshot form. It is the
// "simple processing" stage of the paper's sensor data collector.
type Normalizer struct {
	fields map[string]FieldMapping
}

// NewNormalizer builds a normalizer over a vendor key → mapping table.
func NewNormalizer(fields map[string]FieldMapping) *Normalizer {
	copied := make(map[string]FieldMapping, len(fields))
	for k, v := range fields {
		copied[k] = v
	}
	return &Normalizer{fields: copied}
}

// Normalize converts a raw vendor payload into a snapshot stamped at t.
// Unknown keys are ignored (vendor payloads carry plenty of bookkeeping);
// known keys that fail conversion are an error.
func (n *Normalizer) Normalize(raw map[string]any, t time.Time) (Snapshot, error) {
	snap := NewSnapshot(t)
	for key, val := range raw {
		mapping, ok := n.fields[key]
		if !ok {
			continue
		}
		v, err := mapping.Convert(val)
		if err != nil {
			return Snapshot{}, fmt.Errorf("normalize key %q: %w", key, err)
		}
		if v.IsZero() {
			continue
		}
		snap.Set(mapping.Feature, v)
	}
	return snap, nil
}

// Stock converters for the encodings the two vendor substrates use.

// BoolFrom01 decodes 0/1 (or true/false) into a boolean value.
func BoolFrom01(raw any) (Value, error) {
	switch t := raw.(type) {
	case bool:
		return Bool(t), nil
	case float64:
		return Bool(t != 0), nil
	case int:
		return Bool(t != 0), nil
	case string:
		switch strings.ToLower(t) {
		case "1", "true", "yes", "alarm":
			return Bool(true), nil
		case "0", "false", "no", "normal":
			return Bool(false), nil
		}
		return Value{}, fmt.Errorf("not a boolean string: %q", t)
	default:
		return Value{}, fmt.Errorf("not a boolean: %T", raw)
	}
}

// BoolFromOnOff decodes Home-Assistant-style "on"/"off" (also
// "open"/"closed", "detected"/"clear", "home"/"away") into a boolean value.
func BoolFromOnOff(raw any) (Value, error) {
	s, ok := raw.(string)
	if !ok {
		return BoolFrom01(raw)
	}
	switch strings.ToLower(s) {
	case "on", "open", "detected", "home", "wet", "triggered":
		return Bool(true), nil
	case "off", "closed", "clear", "away", "dry", "idle":
		return Bool(false), nil
	default:
		return Value{}, fmt.Errorf("not an on/off state: %q", s)
	}
}

// NumberIdentity decodes a plain numeric field.
func NumberIdentity(raw any) (Value, error) {
	v, err := FromAny(raw)
	if err != nil {
		return Value{}, err
	}
	if _, ok := v.Number(); !ok {
		return Value{}, fmt.Errorf("not a number: %v", raw)
	}
	return v, nil
}

// NumberScaled decodes a numeric field stored at a fixed scale, e.g. Xiaomi
// reports temperature in centi-degrees; NumberScaled(0.01) recovers °C.
func NumberScaled(scale float64) Converter {
	return func(raw any) (Value, error) {
		v, err := NumberIdentity(raw)
		if err != nil {
			return Value{}, err
		}
		n, _ := v.Number()
		return Number(n * scale), nil
	}
}

// LabelIn decodes a string field constrained to a closed domain.
func LabelIn(domain ...string) Converter {
	return func(raw any) (Value, error) {
		s, ok := raw.(string)
		if !ok {
			return Value{}, fmt.Errorf("not a label: %T", raw)
		}
		s = strings.ToLower(s)
		for _, d := range domain {
			if s == d {
				return Label(s), nil
			}
		}
		return Value{}, fmt.Errorf("label %q outside domain %v", s, domain)
	}
}

// LockStateFromBool decodes a locked boolean (or "locked"/"unlocked"
// string) into the door_lock label domain.
func LockStateFromBool(raw any) (Value, error) {
	if s, ok := raw.(string); ok {
		switch strings.ToLower(s) {
		case LockLocked:
			return Label(LockLocked), nil
		case LockUnlocked:
			return Label(LockUnlocked), nil
		default:
			return Value{}, fmt.Errorf("not a lock state: %q", s)
		}
	}
	v, err := BoolFrom01(raw)
	if err != nil {
		return Value{}, err
	}
	if b, _ := v.Bool(); b {
		return Label(LockLocked), nil
	}
	return Label(LockUnlocked), nil
}
