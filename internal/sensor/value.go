package sensor

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// Value is the tagged union carried by a sensor reading: a boolean (logic-
// oriented discrete value), a float64 (data-oriented continuous value) or a
// label from a closed string domain. The zero Value is "absent".
type Value struct {
	typ FeatureType
	b   bool
	n   float64
	s   string
}

// Bool constructs a boolean value.
func Bool(v bool) Value { return Value{typ: TypeBool, b: v} }

// Number constructs a continuous numeric value.
func Number(v float64) Value { return Value{typ: TypeNumber, n: v} }

// Label constructs a categorical value.
func Label(v string) Value { return Value{typ: TypeLabel, s: v} }

// Type returns the value's feature type; zero for an absent value.
func (v Value) Type() FeatureType { return v.typ }

// IsZero reports whether the value is absent.
func (v Value) IsZero() bool { return v.typ == 0 }

// Bool returns the boolean payload and whether the value holds one.
func (v Value) Bool() (bool, bool) { return v.b, v.typ == TypeBool }

// Number returns the numeric payload and whether the value holds one.
func (v Value) Number() (float64, bool) { return v.n, v.typ == TypeNumber }

// Label returns the label payload and whether the value holds one.
func (v Value) Label() (string, bool) { return v.s, v.typ == TypeLabel }

// Numeric coerces the value into a float64 for machine-learning encoders:
// booleans map to 0/1, numbers pass through. Label values do not coerce and
// return false — categorical features must be handled as categories.
func (v Value) Numeric() (float64, bool) {
	switch v.typ {
	case TypeBool:
		if v.b {
			return 1, true
		}
		return 0, true
	case TypeNumber:
		return v.n, true
	default:
		return 0, false
	}
}

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool { return v == o }

// String renders the value for logs.
func (v Value) String() string {
	switch v.typ {
	case TypeBool:
		return strconv.FormatBool(v.b)
	case TypeNumber:
		return strconv.FormatFloat(v.n, 'g', -1, 64)
	case TypeLabel:
		return v.s
	default:
		return "<absent>"
	}
}

// MarshalJSON encodes the value as its natural JSON type — this is the
// "unified JSON format" of the paper's collector.
func (v Value) MarshalJSON() ([]byte, error) {
	switch v.typ {
	case TypeBool:
		return json.Marshal(v.b)
	case TypeNumber:
		return json.Marshal(v.n)
	case TypeLabel:
		return json.Marshal(v.s)
	default:
		return []byte("null"), nil
	}
}

// UnmarshalJSON decodes a JSON boolean, number or string into the value.
func (v *Value) UnmarshalJSON(data []byte) error {
	var raw any
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	parsed, err := FromAny(raw)
	if err != nil {
		return err
	}
	*v = parsed
	return nil
}

// FromAny converts a dynamically-typed JSON value (bool, float64, string,
// json.Number, nil, or integer types produced by vendor payload decoders)
// into a Value.
func FromAny(raw any) (Value, error) {
	switch t := raw.(type) {
	case nil:
		return Value{}, nil
	case bool:
		return Bool(t), nil
	case float64:
		return Number(t), nil
	case int:
		return Number(float64(t)), nil
	case int64:
		return Number(float64(t)), nil
	case json.Number:
		f, err := t.Float64()
		if err != nil {
			return Value{}, fmt.Errorf("sensor: parse number %q: %w", t.String(), err)
		}
		return Number(f), nil
	case string:
		return Label(t), nil
	default:
		return Value{}, fmt.Errorf("sensor: unsupported raw value type %T", raw)
	}
}
