package sensor

import (
	"testing"
	"time"
)

func TestNormalizerXiaomiStyle(t *testing.T) {
	n := NewNormalizer(map[string]FieldMapping{
		"alarm":       {Feature: FeatSmoke, Convert: BoolFrom01},
		"temperature": {Feature: FeatTempIndoor, Convert: NumberScaled(0.01)},
		"lock_state":  {Feature: FeatDoorLock, Convert: LockStateFromBool},
	})
	raw := map[string]any{
		"alarm":       float64(1),
		"temperature": float64(2250), // centi-degrees
		"lock_state":  float64(1),
		"fw_ver":      "1.4.1_164", // bookkeeping, ignored
	}
	snap, err := n.Normalize(raw, testTime)
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if !snap.Bool(FeatSmoke) {
		t.Error("smoke should be true")
	}
	if temp, _ := snap.Number(FeatTempIndoor); temp != 22.5 {
		t.Errorf("temp = %v, want 22.5", temp)
	}
	if got := snap.LabelOr(FeatDoorLock, ""); got != LockLocked {
		t.Errorf("lock = %q", got)
	}
	if err := snap.Validate(); err != nil {
		t.Errorf("normalized snapshot invalid: %v", err)
	}
}

func TestNormalizerConversionError(t *testing.T) {
	n := NewNormalizer(map[string]FieldMapping{
		"alarm": {Feature: FeatSmoke, Convert: BoolFrom01},
	})
	if _, err := n.Normalize(map[string]any{"alarm": "maybe"}, time.Time{}); err == nil {
		t.Error("want conversion error")
	}
}

func TestBoolFrom01(t *testing.T) {
	tests := []struct {
		in   any
		want bool
		ok   bool
	}{
		{in: true, want: true, ok: true},
		{in: float64(0), want: false, ok: true},
		{in: float64(2), want: true, ok: true},
		{in: 1, want: true, ok: true},
		{in: "1", want: true, ok: true},
		{in: "alarm", want: true, ok: true},
		{in: "normal", want: false, ok: true},
		{in: "??", ok: false},
		{in: []int{}, ok: false},
	}
	for _, tt := range tests {
		v, err := BoolFrom01(tt.in)
		if tt.ok != (err == nil) {
			t.Errorf("BoolFrom01(%v) err = %v", tt.in, err)
			continue
		}
		if err == nil {
			if b, _ := v.Bool(); b != tt.want {
				t.Errorf("BoolFrom01(%v) = %v, want %v", tt.in, b, tt.want)
			}
		}
	}
}

func TestBoolFromOnOff(t *testing.T) {
	truthy := []string{"on", "open", "detected", "home", "wet", "triggered"}
	falsy := []string{"off", "closed", "clear", "away", "dry", "idle"}
	for _, s := range truthy {
		v, err := BoolFromOnOff(s)
		if err != nil {
			t.Errorf("BoolFromOnOff(%q): %v", s, err)
			continue
		}
		if b, _ := v.Bool(); !b {
			t.Errorf("BoolFromOnOff(%q) = false", s)
		}
	}
	for _, s := range falsy {
		v, err := BoolFromOnOff(s)
		if err != nil {
			t.Errorf("BoolFromOnOff(%q): %v", s, err)
			continue
		}
		if b, _ := v.Bool(); b {
			t.Errorf("BoolFromOnOff(%q) = true", s)
		}
	}
	if _, err := BoolFromOnOff("sideways"); err == nil {
		t.Error("want error for unknown state")
	}
	// Falls back to 0/1 decoding for non-strings.
	if v, err := BoolFromOnOff(float64(1)); err != nil {
		t.Errorf("numeric fallback: %v", err)
	} else if b, _ := v.Bool(); !b {
		t.Error("numeric fallback = false")
	}
}

func TestNumberConverters(t *testing.T) {
	if _, err := NumberIdentity("x"); err == nil {
		t.Error("NumberIdentity should reject labels")
	}
	v, err := NumberScaled(0.1)(float64(215))
	if err != nil {
		t.Fatalf("NumberScaled: %v", err)
	}
	if n, _ := v.Number(); n != 21.5 {
		t.Errorf("scaled = %v", n)
	}
	if _, err := NumberScaled(0.1)("x"); err == nil {
		t.Error("NumberScaled should propagate errors")
	}
}

func TestLabelIn(t *testing.T) {
	conv := LabelIn(WeatherSunny, WeatherRain)
	if v, err := conv("RAIN"); err != nil {
		t.Errorf("LabelIn: %v", err)
	} else if l, _ := v.Label(); l != WeatherRain {
		t.Errorf("label = %q", l)
	}
	if _, err := conv("snow"); err == nil {
		t.Error("want domain error")
	}
	if _, err := conv(5); err == nil {
		t.Error("want type error")
	}
}

func TestLockStateFromBool(t *testing.T) {
	cases := map[any]string{
		"locked":   LockLocked,
		"UNLOCKED": LockUnlocked,
		float64(1): LockLocked,
		float64(0): LockUnlocked,
		true:       LockLocked,
	}
	for in, want := range cases {
		v, err := LockStateFromBool(in)
		if err != nil {
			t.Errorf("LockStateFromBool(%v): %v", in, err)
			continue
		}
		if l, _ := v.Label(); l != want {
			t.Errorf("LockStateFromBool(%v) = %q, want %q", in, l, want)
		}
	}
	if _, err := LockStateFromBool("ajar"); err == nil {
		t.Error("want error for unknown lock state")
	}
}
