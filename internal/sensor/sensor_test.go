package sensor

import (
	"math"
	"testing"
)

// TestTimeBucketIndex pins the four daily phases, the boundary hours, the
// wrap-around behavior, and the hostile-input clamp the sequence judge
// relies on (every input must land inside the symbol alphabet).
func TestTimeBucketIndex(t *testing.T) {
	cases := []struct {
		hour float64
		want int
	}{
		{0, 0}, {3, 0}, {5.99, 0}, // night
		{6, 1}, {9, 1}, {11.5, 1}, // morning
		{12, 2}, {15, 2}, {17.9, 2}, // afternoon
		{18, 3}, {20, 3}, {21.9, 3}, // evening
		{22, 0}, {23.5, 0}, // night again
		{24, 0}, {25, 0}, {30, 1}, {47.9, 0}, // wraps past midnight
		{-1, 0}, {-3, 3}, {-14, 1}, // negative hours wrap backwards (-3 → 21, evening)
		{math.NaN(), 0},   // NaN clamps to night
		{math.Inf(1), 0},  // +Inf clamps
		{math.Inf(-1), 0}, // -Inf clamps
		{1e12, 0},         // absurd magnitude clamps
	}
	for _, c := range cases {
		if got := TimeBucketIndex(c.hour); got != c.want {
			t.Errorf("TimeBucketIndex(%v) = %d, want %d", c.hour, got, c.want)
		}
	}
}

// TestTimeBucketLabel: the label form agrees with the index form over a
// full day and only ever emits the four bucket labels.
func TestTimeBucketLabel(t *testing.T) {
	want := map[float64]string{
		2:  BucketNight,
		8:  BucketMorning,
		14: BucketAfternoon,
		19: BucketEvening,
		23: BucketNight,
	}
	for hour, label := range want {
		if got := TimeBucketLabel(hour); got != label {
			t.Errorf("TimeBucketLabel(%v) = %q, want %q", hour, got, label)
		}
	}
	for hour := 0.0; hour < 24; hour += 0.25 {
		got := TimeBucketLabel(hour)
		if got != timeBucketLabels[TimeBucketIndex(hour)] {
			t.Errorf("label/index disagree at hour %v", hour)
		}
	}
}

// TestFeatureTypeString covers every named type and the out-of-range
// fallback.
func TestFeatureTypeString(t *testing.T) {
	cases := map[FeatureType]string{
		TypeBool:       "bool",
		TypeNumber:     "number",
		TypeLabel:      "label",
		FeatureType(9): "type(9)",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("FeatureType(%d).String() = %q, want %q", int(typ), got, want)
		}
	}
}

// TestMustDescribeUnknownPanics: passing a feature outside the vocabulary
// is a programming error and must panic rather than return a zero
// descriptor.
func TestMustDescribeUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustDescribe on an unknown feature did not panic")
		}
	}()
	MustDescribe(Feature("no_such_feature"))
}
