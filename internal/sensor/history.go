package sensor

import (
	"fmt"
	"math"
	"time"
)

// History is a bounded time-series of snapshots with windowed aggregate
// queries — the collector-side buffer a deployment keeps so the framework
// (and the camera warner) can reason about recent sensor behaviour, not
// just the instantaneous context.
type History struct {
	snaps []Snapshot
	head  int
	size  int
	cap   int
}

// NewHistory builds a history retaining at most capacity snapshots
// (minimum 2).
func NewHistory(capacity int) *History {
	if capacity < 2 {
		capacity = 2
	}
	return &History{snaps: make([]Snapshot, capacity), cap: capacity}
}

// Push appends a snapshot; out-of-order snapshots (older than the newest
// retained one) are rejected.
func (h *History) Push(s Snapshot) error {
	if h.size > 0 {
		newest := h.at(h.size - 1)
		if s.At.Before(newest.At) {
			return fmt.Errorf("sensor: history push out of order: %v before %v", s.At, newest.At)
		}
	}
	idx := (h.head + h.size) % h.cap
	if h.size == h.cap {
		h.snaps[h.head] = s
		h.head = (h.head + 1) % h.cap
	} else {
		h.snaps[idx] = s
		h.size++
	}
	return nil
}

// Len returns the number of retained snapshots.
func (h *History) Len() int { return h.size }

// at returns the i-th oldest retained snapshot.
func (h *History) at(i int) Snapshot {
	return h.snaps[(h.head+i)%h.cap]
}

// Latest returns the newest snapshot, or false when empty.
func (h *History) Latest() (Snapshot, bool) {
	if h.size == 0 {
		return Snapshot{}, false
	}
	return h.at(h.size - 1), true
}

// Window returns the retained snapshots within d of the newest one, oldest
// first.
func (h *History) Window(d time.Duration) []Snapshot {
	if h.size == 0 {
		return nil
	}
	cutoff := h.at(h.size - 1).At.Add(-d)
	var out []Snapshot
	for i := 0; i < h.size; i++ {
		s := h.at(i)
		if !s.At.Before(cutoff) {
			out = append(out, s)
		}
	}
	return out
}

// Aggregate summarises one numeric feature over a window.
type Aggregate struct {
	Count int
	Mean  float64
	Min   float64
	Max   float64
	// Delta is newest minus oldest — the trend over the window.
	Delta float64
}

// AggregateNumeric summarises a numeric feature over the last d. Snapshots
// missing the feature are skipped; zero observations yields ok=false.
func (h *History) AggregateNumeric(f Feature, d time.Duration) (Aggregate, bool) {
	var agg Aggregate
	agg.Min = math.Inf(1)
	agg.Max = math.Inf(-1)
	var sum, first, last float64
	for _, s := range h.Window(d) {
		x, ok := s.Number(f)
		if !ok {
			continue
		}
		if agg.Count == 0 {
			first = x
		}
		last = x
		agg.Count++
		sum += x
		agg.Min = math.Min(agg.Min, x)
		agg.Max = math.Max(agg.Max, x)
	}
	if agg.Count == 0 {
		return Aggregate{}, false
	}
	agg.Mean = sum / float64(agg.Count)
	agg.Delta = last - first
	return agg, true
}

// TrueFraction returns the fraction of window snapshots in which a boolean
// feature was true; ok=false when the feature never appeared.
func (h *History) TrueFraction(f Feature, d time.Duration) (float64, bool) {
	var seen, trues int
	for _, s := range h.Window(d) {
		v, ok := s.Get(f)
		if !ok {
			continue
		}
		b, isBool := v.Bool()
		if !isBool {
			continue
		}
		seen++
		if b {
			trues++
		}
	}
	if seen == 0 {
		return 0, false
	}
	return float64(trues) / float64(seen), true
}

// ChangedAt returns the timestamps (oldest first) at which a feature's
// value differed from the previous retained snapshot's.
func (h *History) ChangedAt(f Feature, d time.Duration) []time.Time {
	window := h.Window(d)
	var out []time.Time
	for i := 1; i < len(window); i++ {
		prev, okPrev := window[i-1].Get(f)
		cur, okCur := window[i].Get(f)
		if okPrev && okCur && !cur.Equal(prev) {
			out = append(out, window[i].At)
		}
	}
	return out
}
