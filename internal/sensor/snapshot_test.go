package sensor

import (
	"encoding/json"
	"testing"
	"time"
)

var testTime = time.Date(2021, 3, 14, 15, 9, 26, 0, time.UTC)

func sampleSnapshot() Snapshot {
	s := NewSnapshot(testTime)
	s.Set(FeatSmoke, Bool(false))
	s.Set(FeatTempIndoor, Number(22.5))
	s.Set(FeatWeather, Label(WeatherRain))
	s.Set(FeatDoorLock, Label(LockLocked))
	return s
}

func TestSnapshotAccessors(t *testing.T) {
	s := sampleSnapshot()
	if s.Bool(FeatSmoke) {
		t.Error("smoke should be false")
	}
	if s.Bool(FeatMotion) {
		t.Error("absent boolean should default false")
	}
	if n, ok := s.Number(FeatTempIndoor); !ok || n != 22.5 {
		t.Errorf("temp = %v,%v", n, ok)
	}
	if _, ok := s.Number(FeatHumidity); ok {
		t.Error("absent number should not be ok")
	}
	if got := s.LabelOr(FeatWeather, "sunny"); got != WeatherRain {
		t.Errorf("weather = %q", got)
	}
	if got := s.LabelOr(FeatHour, "def"); got != "def" {
		t.Errorf("LabelOr on number = %q", got)
	}
	if got := s.LabelOr(Feature("nope"), "def"); got != "def" {
		t.Errorf("LabelOr on absent = %q", got)
	}
}

func TestSnapshotCloneIsolation(t *testing.T) {
	s := sampleSnapshot()
	c := s.Clone()
	c.Set(FeatSmoke, Bool(true))
	if s.Bool(FeatSmoke) {
		t.Error("mutating clone leaked into original")
	}
}

func TestSnapshotMerge(t *testing.T) {
	s := sampleSnapshot()
	o := NewSnapshot(testTime.Add(time.Minute))
	o.Set(FeatSmoke, Bool(true))
	o.Set(FeatMotion, Bool(true))

	m := s.Merge(o)
	if !m.Bool(FeatSmoke) {
		t.Error("overlay value should win")
	}
	if !m.Bool(FeatMotion) {
		t.Error("overlay-only value missing")
	}
	if n, ok := m.Number(FeatTempIndoor); !ok || n != 22.5 {
		t.Error("base value lost in merge")
	}
	if !m.At.Equal(testTime.Add(time.Minute)) {
		t.Errorf("merge timestamp = %v", m.At)
	}
	if s.Bool(FeatSmoke) {
		t.Error("merge mutated receiver")
	}
}

func TestSnapshotFeaturesSorted(t *testing.T) {
	s := sampleSnapshot()
	feats := s.Features()
	if len(feats) != 4 {
		t.Fatalf("len = %d", len(feats))
	}
	for i := 1; i < len(feats); i++ {
		if feats[i-1] >= feats[i] {
			t.Errorf("features not sorted: %v", feats)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !back.At.Equal(s.At) {
		t.Errorf("At = %v, want %v", back.At, s.At)
	}
	if len(back.Values) != len(s.Values) {
		t.Fatalf("values len = %d, want %d", len(back.Values), len(s.Values))
	}
	for f, v := range s.Values {
		if got := back.Values[f]; !got.Equal(v) {
			t.Errorf("feature %q = %v, want %v", f, got, v)
		}
	}
}

func TestFromReadingsKeepsNewest(t *testing.T) {
	readings := []Reading{
		{SensorID: "a", Kind: KindTemperature, Feature: FeatTempIndoor, Value: Number(20), At: testTime},
		{SensorID: "a", Kind: KindTemperature, Feature: FeatTempIndoor, Value: Number(25), At: testTime.Add(time.Minute)},
		{SensorID: "a", Kind: KindTemperature, Feature: FeatTempIndoor, Value: Number(19), At: testTime.Add(-time.Minute)},
		{SensorID: "b", Kind: KindSmoke, Feature: FeatSmoke, Value: Bool(true), At: testTime},
	}
	s := FromReadings(readings)
	if n, _ := s.Number(FeatTempIndoor); n != 25 {
		t.Errorf("temp = %v, want newest 25", n)
	}
	if !s.Bool(FeatSmoke) {
		t.Error("smoke reading lost")
	}
	if !s.At.Equal(testTime.Add(time.Minute)) {
		t.Errorf("At = %v", s.At)
	}
}

func TestSnapshotValidate(t *testing.T) {
	t.Run("valid", func(t *testing.T) {
		if err := sampleSnapshot().Validate(); err != nil {
			t.Errorf("Validate() = %v", err)
		}
	})
	t.Run("unknown feature", func(t *testing.T) {
		s := NewSnapshot(testTime)
		s.Set(Feature("bogus"), Bool(true))
		if s.Validate() == nil {
			t.Error("want error for unknown feature")
		}
	})
	t.Run("wrong type", func(t *testing.T) {
		s := NewSnapshot(testTime)
		s.Set(FeatSmoke, Number(1))
		if s.Validate() == nil {
			t.Error("want error for wrong type")
		}
	})
	t.Run("label outside domain", func(t *testing.T) {
		s := NewSnapshot(testTime)
		s.Set(FeatWeather, Label("hail"))
		if s.Validate() == nil {
			t.Error("want error for out-of-domain label")
		}
	})
	t.Run("absent value", func(t *testing.T) {
		s := NewSnapshot(testTime)
		s.Set(FeatSmoke, Value{})
		if s.Validate() == nil {
			t.Error("want error for absent value")
		}
	})
}

// TestSetOnZeroValueSnapshot is the regression test for the nil-map panic:
// Set on a zero-value Snapshot must lazily allocate the value map instead
// of panicking.
func TestSetOnZeroValueSnapshot(t *testing.T) {
	var s Snapshot
	s.Set(FeatSmoke, Bool(true))
	if !s.Bool(FeatSmoke) {
		t.Error("value lost after lazy allocation")
	}
	if len(s.Values) != 1 {
		t.Errorf("values = %v", s.Values)
	}
	// A pointer to a zero-value snapshot works the same way.
	p := &Snapshot{}
	p.Set(FeatMotion, Bool(true))
	if !p.Bool(FeatMotion) {
		t.Error("pointer target lost value")
	}
}
