package sensor

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// Reading is a single timestamped measurement from one physical sensor.
type Reading struct {
	SensorID string    `json:"sensor_id"`
	Kind     Kind      `json:"kind"`
	Feature  Feature   `json:"feature"`
	Value    Value     `json:"value"`
	At       time.Time `json:"at"`
}

// Snapshot is the joint state of every sensor participating in a scene at
// one instant — the paper's "sensor context". Keys are features from the
// shared vocabulary.
type Snapshot struct {
	At     time.Time
	Values map[Feature]Value
}

// NewSnapshot creates an empty snapshot stamped at t.
func NewSnapshot(t time.Time) Snapshot {
	return Snapshot{At: t, Values: make(map[Feature]Value)}
}

// Set stores a feature value, replacing any previous one. The value map is
// allocated lazily, so Set is safe on a zero-value Snapshot.
func (s *Snapshot) Set(f Feature, v Value) {
	if s.Values == nil {
		s.Values = make(map[Feature]Value)
	}
	s.Values[f] = v
}

// Get returns the value of a feature and whether it is present.
func (s Snapshot) Get(f Feature) (Value, bool) {
	v, ok := s.Values[f]
	return v, ok
}

// Bool returns a boolean feature, defaulting to false when absent or not a
// boolean.
func (s Snapshot) Bool(f Feature) bool {
	v, ok := s.Values[f]
	if !ok {
		return false
	}
	b, _ := v.Bool()
	return b
}

// Number returns a numeric feature and whether it was present and numeric.
func (s Snapshot) Number(f Feature) (float64, bool) {
	v, ok := s.Values[f]
	if !ok {
		return 0, false
	}
	return v.Number()
}

// LabelOr returns a label feature, or def when absent or not a label.
func (s Snapshot) LabelOr(f Feature, def string) string {
	v, ok := s.Values[f]
	if !ok {
		return def
	}
	l, ok := v.Label()
	if !ok {
		return def
	}
	return l
}

// Clone deep-copies the snapshot.
func (s Snapshot) Clone() Snapshot {
	out := Snapshot{At: s.At, Values: make(map[Feature]Value, len(s.Values))}
	for k, v := range s.Values {
		out.Values[k] = v
	}
	return out
}

// Merge overlays o onto a copy of s; o's values win on conflict, and the
// later timestamp is kept.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := s.Clone()
	for k, v := range o.Values {
		out.Values[k] = v
	}
	if o.At.After(out.At) {
		out.At = o.At
	}
	return out
}

// Features lists the snapshot's features in deterministic (sorted) order.
func (s Snapshot) Features() []Feature {
	out := make([]Feature, 0, len(s.Values))
	for f := range s.Values {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// snapshotJSON is the wire form of a snapshot: the unified JSON document the
// paper's collector hands to the feature memory.
type snapshotJSON struct {
	At     time.Time        `json:"at"`
	Values map[string]Value `json:"values"`
}

// MarshalJSON encodes the snapshot as {"at": ..., "values": {feature: value}}.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	vals := make(map[string]Value, len(s.Values))
	for k, v := range s.Values {
		vals[string(k)] = v
	}
	return json.Marshal(snapshotJSON{At: s.At, Values: vals})
}

// UnmarshalJSON decodes the wire form produced by MarshalJSON.
func (s *Snapshot) UnmarshalJSON(data []byte) error {
	var raw snapshotJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	s.At = raw.At
	s.Values = make(map[Feature]Value, len(raw.Values))
	for k, v := range raw.Values {
		s.Values[Feature(k)] = v
	}
	return nil
}

// FromReadings folds a set of readings into a snapshot, keeping the newest
// reading per feature. The snapshot is stamped with the newest timestamp.
func FromReadings(readings []Reading) Snapshot {
	snap := NewSnapshot(time.Time{})
	newest := make(map[Feature]time.Time, len(readings))
	for _, r := range readings {
		if prev, ok := newest[r.Feature]; ok && !r.At.After(prev) {
			continue
		}
		newest[r.Feature] = r.At
		snap.Values[r.Feature] = r.Value
		if r.At.After(snap.At) {
			snap.At = r.At
		}
	}
	return snap
}

// Validate checks every value against the vocabulary: the feature must be
// known, the value type must match the descriptor, and labels must come from
// the descriptor's domain.
func (s Snapshot) Validate() error {
	for f, v := range s.Values {
		d, ok := Describe(f)
		if !ok {
			return fmt.Errorf("sensor: unknown feature %q in snapshot", f)
		}
		if v.IsZero() {
			return fmt.Errorf("sensor: absent value for feature %q", f)
		}
		if v.Type() != d.Type {
			return fmt.Errorf("sensor: feature %q has type %s, want %s", f, v.Type(), d.Type)
		}
		if d.Type == TypeLabel {
			lbl, _ := v.Label()
			if !contains(d.Labels, lbl) {
				return fmt.Errorf("sensor: feature %q label %q outside domain %v", f, lbl, d.Labels)
			}
		}
	}
	return nil
}

func contains(set []string, s string) bool {
	for _, e := range set {
		if e == s {
			return true
		}
	}
	return false
}
