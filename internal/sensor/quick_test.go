package sensor

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// randomSnapshot draws a vocabulary-valid snapshot with a random subset of
// features.
func randomSnapshot(rng *rand.Rand) Snapshot {
	s := NewSnapshot(time.Unix(rng.Int63n(1<<30), 0))
	for _, d := range Vocabulary() {
		if rng.Intn(2) == 0 {
			continue
		}
		switch d.Type {
		case TypeBool:
			s.Set(d.Feature, Bool(rng.Intn(2) == 1))
		case TypeNumber:
			s.Set(d.Feature, Number(float64(rng.Intn(1000))/10))
		case TypeLabel:
			s.Set(d.Feature, Label(d.Labels[rng.Intn(len(d.Labels))]))
		}
	}
	return s
}

// TestMergePropertiesQuick checks algebraic properties of Merge: merging
// with an empty snapshot is identity on values; self-merge is idempotent;
// and the overlay's values always win.
func TestMergePropertiesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomSnapshot(rng)
		b := randomSnapshot(rng)

		// Identity.
		empty := NewSnapshot(time.Time{})
		id := a.Merge(empty)
		if len(id.Values) != len(a.Values) {
			return false
		}
		for k, v := range a.Values {
			if !id.Values[k].Equal(v) {
				return false
			}
		}
		// Idempotence.
		self := a.Merge(a)
		if len(self.Values) != len(a.Values) {
			return false
		}
		// Overlay wins; union of keys.
		m := a.Merge(b)
		for k, v := range b.Values {
			if !m.Values[k].Equal(v) {
				return false
			}
		}
		for k, v := range a.Values {
			if _, inB := b.Values[k]; !inB && !m.Values[k].Equal(v) {
				return false
			}
		}
		return len(m.Values) <= len(a.Values)+len(b.Values)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSnapshotJSONQuick round-trips random snapshots through the unified
// JSON form.
func TestSnapshotJSONQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSnapshot(rng)
		data, err := s.MarshalJSON()
		if err != nil {
			return false
		}
		var back Snapshot
		if err := back.UnmarshalJSON(data); err != nil {
			return false
		}
		if len(back.Values) != len(s.Values) {
			return false
		}
		for k, v := range s.Values {
			if !back.Values[k].Equal(v) {
				return false
			}
		}
		return back.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
