package bridge

import (
	"encoding/json"
	"testing"
	"time"

	"iotsid/internal/home"
	"iotsid/internal/miio"
	"iotsid/internal/sensor"
)

func TestEventPumpPushesChanges(t *testing.T) {
	h := newHome(t)
	dev, err := miio.NewDevMode(miio.DevModeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	listener, err := miio.SubscribeDevMode(dev.Addr().String(), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()

	pump, err := NewEventPump(h.Env(), dev)
	if err != nil {
		t.Fatal(err)
	}
	// First tick primes only.
	n, err := pump.Tick()
	if err != nil || n != 0 {
		t.Fatalf("priming tick = %d, %v", n, err)
	}
	// Flip the smoke sensor; the next tick must report it.
	spoof := sensor.NewSnapshot(h.Env().Now())
	spoof.Set(sensor.FeatSmoke, sensor.Bool(true))
	h.Env().Apply(spoof)
	n, err = pump.Tick()
	if err != nil {
		t.Fatalf("Tick: %v", err)
	}
	if n == 0 {
		t.Fatal("no reports pushed for a changed sensor")
	}
	// The smoke report arrives and decodes back to the canonical feature.
	deadline := time.After(2 * time.Second)
	for {
		select {
		case r, ok := <-listener.Reports():
			if !ok {
				t.Fatal("report channel closed")
			}
			var raw map[string]any
			if err := json.Unmarshal(r.Data, &raw); err != nil {
				t.Fatalf("report data: %v", err)
			}
			feat, val, known, err := DecodeReport(r, raw)
			if err != nil {
				t.Fatalf("DecodeReport: %v", err)
			}
			if !known {
				continue
			}
			if feat == sensor.FeatSmoke {
				if b, _ := val.Bool(); !b {
					t.Fatalf("smoke report decoded to %v", val)
				}
				return // success
			}
		case <-deadline:
			t.Fatal("smoke report never arrived")
		}
	}
}

func TestEventPumpQuiescentNoReports(t *testing.T) {
	h := newHome(t)
	dev, err := miio.NewDevMode(miio.DevModeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	pump, err := NewEventPump(h.Env(), dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pump.Tick(); err != nil {
		t.Fatal(err)
	}
	// No environment change between ticks → nothing pushed.
	n, err := pump.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("quiescent tick pushed %d reports", n)
	}
}

func TestEventPumpValidation(t *testing.T) {
	if _, err := NewEventPump(nil, nil); err == nil {
		t.Error("want validation error")
	}
}

func TestDecodeReportUnknownProp(t *testing.T) {
	_, _, known, err := DecodeReport(miio.Report{}, map[string]any{"mystery": 1})
	if err != nil || known {
		t.Errorf("unknown prop: known=%v err=%v", known, err)
	}
	// Known prop with a broken value errors.
	_, _, _, err = DecodeReport(miio.Report{}, map[string]any{"alarm": "maybe"})
	if err == nil {
		t.Error("want decode error")
	}
}

func TestHomeSmokeEventEndToEnd(t *testing.T) {
	// Full loop: environment physics tick → pump → devmode → listener.
	h, err := home.NewStandard(home.EnvConfig{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := miio.NewDevMode(miio.DevModeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	listener, err := miio.SubscribeDevMode(dev.Addr().String(), 256)
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()
	pump, err := NewEventPump(h.Env(), dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pump.Tick(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < 50; i++ {
		h.Env().Step(7 * time.Minute)
		n, err := pump.Tick()
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total == 0 {
		t.Fatal("50 physics ticks produced no sensor reports")
	}
}
