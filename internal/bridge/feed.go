package bridge

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"iotsid/internal/epoch"
	"iotsid/internal/miio"
	"iotsid/internal/smartthings"
)

// DevModeFeed turns the gateway's developer-mode report stream into epoch
// store pushes — the Xiaomi half of event-driven collection. It owns no
// goroutine and no timer: the caller drives it, either per report
// (HandleReport) or by draining a listener's buffered channel (Drain), so
// scheduling stays in the caller's hands and seeded runs stay
// deterministic.
type DevModeFeed struct {
	store  *epoch.Store
	source string
	now    func() time.Time
}

// NewDevModeFeed binds a feed pushing into the named store source. Now
// stamps decoded deltas (it must tick the store's timeline); nil defaults
// to time.Now.
func NewDevModeFeed(store *epoch.Store, source string, now func() time.Time) (*DevModeFeed, error) {
	if store == nil || source == "" {
		return nil, fmt.Errorf("bridge: devmode feed needs a store and a source name")
	}
	if now == nil {
		now = time.Now
	}
	return &DevModeFeed{store: store, source: source, now: now}, nil
}

// HandleReport decodes one report (change or heartbeat) and pushes its
// delta. A heartbeat with an empty payload still pushes an empty delta —
// the store treats it as a liveness refresh.
func (f *DevModeFeed) HandleReport(r miio.Report) error {
	var raw map[string]any
	if err := json.Unmarshal(r.Data, &raw); err != nil {
		return fmt.Errorf("bridge: feed report %s/%s: %w", r.Model, r.SID, err)
	}
	snap, n, err := DecodeReportAll(raw, f.now())
	if err != nil {
		return fmt.Errorf("bridge: feed report %s/%s: %w", r.Model, r.SID, err)
	}
	if n == 0 && r.Cmd != "heartbeat" {
		return nil // change report for properties we don't know: not a liveness signal
	}
	return f.store.Push(f.source, snap)
}

// Drain consumes every report currently buffered on the channel without
// blocking and returns how many were pushed. The first broken report
// aborts the drain with its error; a closed channel just ends it.
func (f *DevModeFeed) Drain(reports <-chan miio.Report) (int, error) {
	pushed := 0
	for {
		select {
		case r, ok := <-reports:
			if !ok {
				return pushed, nil
			}
			if err := f.HandleReport(r); err != nil {
				return pushed, err
			}
			pushed++
		default:
			return pushed, nil
		}
	}
}

// STPoller adapts the poll-only SmartThings surface to the push world:
// each Poll fetches the bridge's entity states once, folds them into a
// canonical snapshot and pushes it as one delta. Like DevModeFeed it owns
// no timer — the caller decides the cadence, which doubles as the source's
// push interval against its FreshFor budget.
type STPoller struct {
	client *smartthings.Client
	store  *epoch.Store
	source string
}

// NewSTPoller binds a poller pushing into the named store source.
func NewSTPoller(client *smartthings.Client, store *epoch.Store, source string) (*STPoller, error) {
	if client == nil || store == nil || source == "" {
		return nil, fmt.Errorf("bridge: st poller needs a client, a store and a source name")
	}
	return &STPoller{client: client, store: store, source: source}, nil
}

// Poll performs one fetch-decode-push round trip and returns how many
// features the pushed delta carried.
func (p *STPoller) Poll(ctx context.Context) (int, error) {
	entities, err := p.client.States(ctx)
	if err != nil {
		return 0, fmt.Errorf("bridge: st poll: %w", err)
	}
	snap, err := STDecodeStates(entities)
	if err != nil {
		return 0, fmt.Errorf("bridge: st poll: %w", err)
	}
	if err := p.store.Push(p.source, snap); err != nil {
		return 0, err
	}
	return len(snap.Values), nil
}
