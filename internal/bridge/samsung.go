package bridge

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"iotsid/internal/home"
	"iotsid/internal/instr"
	"iotsid/internal/sensor"
	"iotsid/internal/smartthings"
)

// stEntity describes one Home-Assistant-style entity served by the bridge:
// its entity ID, the canonical feature it exposes, and the two codec halves.
type stEntity struct {
	id      string
	feature sensor.Feature
	encode  func(v sensor.Value) string
	decode  sensor.Converter
}

func stOnOff(v sensor.Value) string {
	if b, _ := v.Bool(); b {
		return "on"
	}
	return "off"
}

func stNumber(v sensor.Value) string {
	n, _ := v.Number()
	return strconv.FormatFloat(n, 'f', -1, 64)
}

func stLabel(v sensor.Value) string {
	l, _ := v.Label()
	return l
}

func stDecodeNumber(raw any) (sensor.Value, error) {
	s, ok := raw.(string)
	if !ok {
		return sensor.NumberIdentity(raw)
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return sensor.Value{}, fmt.Errorf("bridge: not a numeric state: %q", s)
	}
	return sensor.Number(f), nil
}

func stDecodeLock(raw any) (sensor.Value, error) {
	return sensor.LockStateFromBool(raw)
}

// stEntities is the entity table the SmartThings bridge serves.
var stEntities = []stEntity{
	{id: "binary_sensor.smoke", feature: sensor.FeatSmoke, encode: stOnOff, decode: sensor.BoolFromOnOff},
	{id: "binary_sensor.gas", feature: sensor.FeatGas, encode: stOnOff, decode: sensor.BoolFromOnOff},
	{id: "binary_sensor.voice_command", feature: sensor.FeatVoiceCmd, encode: stOnOff, decode: sensor.BoolFromOnOff},
	{id: "lock.front_door", feature: sensor.FeatDoorLock, encode: stLabel, decode: stDecodeLock},
	{id: "sensor.temperature_indoor", feature: sensor.FeatTempIndoor, encode: stNumber, decode: stDecodeNumber},
	{id: "sensor.temperature_outdoor", feature: sensor.FeatTempOutdoor, encode: stNumber, decode: stDecodeNumber},
	{id: "sensor.air_quality", feature: sensor.FeatAirQuality, encode: stNumber, decode: stDecodeNumber},
	{id: "sensor.weather", feature: sensor.FeatWeather, encode: stLabel,
		decode: sensor.LabelIn(sensor.WeatherSunny, sensor.WeatherCloudy, sensor.WeatherRain, sensor.WeatherSnow)},
	{id: "binary_sensor.motion", feature: sensor.FeatMotion, encode: stOnOff, decode: sensor.BoolFromOnOff},
	{id: "sensor.hour_of_day", feature: sensor.FeatHour, encode: stNumber, decode: stDecodeNumber},
	{id: "sensor.humidity", feature: sensor.FeatHumidity, encode: stNumber, decode: stDecodeNumber},
	{id: "sensor.illuminance", feature: sensor.FeatIlluminance, encode: stNumber, decode: stDecodeNumber},
	{id: "binary_sensor.water_leak", feature: sensor.FeatWaterLeak, encode: stOnOff, decode: sensor.BoolFromOnOff},
	{id: "binary_sensor.occupancy", feature: sensor.FeatOccupancy, encode: stOnOff, decode: sensor.BoolFromOnOff},
	{id: "binary_sensor.window_contact", feature: sensor.FeatWindowOpen, encode: stOnOff, decode: sensor.BoolFromOnOff},
	{id: "binary_sensor.door_contact", feature: sensor.FeatDoorOpen, encode: stOnOff, decode: sensor.BoolFromOnOff},
	{id: "sensor.noise_level", feature: sensor.FeatNoise, encode: stNumber, decode: stDecodeNumber},
	{id: "sensor.power_draw", feature: sensor.FeatPowerDraw, encode: stNumber, decode: stDecodeNumber},
}

// STEntityIDs lists every sensor entity the bridge serves.
func STEntityIDs() []string {
	out := make([]string, len(stEntities))
	for i, e := range stEntities {
		out[i] = e.id
	}
	return out
}

// STFeatureFor resolves the canonical feature of an entity ID.
func STFeatureFor(entityID string) (sensor.Feature, bool) {
	for _, e := range stEntities {
		if e.id == entityID {
			return e.feature, true
		}
	}
	return "", false
}

// STDecodeStates folds a set of bridge entities into a canonical snapshot —
// the collector-side half of the codec.
func STDecodeStates(entities []smartthings.Entity) (sensor.Snapshot, error) {
	snap := sensor.NewSnapshot(latestUpdate(entities))
	for _, ent := range entities {
		var def *stEntity
		for i := range stEntities {
			if stEntities[i].id == ent.EntityID {
				def = &stEntities[i]
				break
			}
		}
		if def == nil {
			continue // actuator entity or foreign integration: skip
		}
		v, err := def.decode(ent.State)
		if err != nil {
			return sensor.Snapshot{}, fmt.Errorf("bridge: entity %s state %q: %w", ent.EntityID, ent.State, err)
		}
		snap.Set(def.feature, v)
	}
	return snap, nil
}

func latestUpdate(entities []smartthings.Entity) time.Time {
	var t time.Time
	for _, e := range entities {
		if e.LastUpdated.After(t) {
			t = e.LastUpdated
		}
	}
	return t
}

// STBackend serves the home through the smartthings REST surface. Service
// calls use the instruction opcode split at the dot: POST
// /api/services/window/open with {"device_id": "window-1"} executes
// window.open on that device.
type STBackend struct {
	home     *home.Home
	registry *instr.Registry

	mu   sync.RWMutex
	gate func(in instr.Instruction, ctx sensor.Snapshot) error
}

var _ smartthings.Backend = (*STBackend)(nil)

// NewSTBackend binds a backend to a home.
func NewSTBackend(h *home.Home, reg *instr.Registry) *STBackend {
	return &STBackend{home: h, registry: reg}
}

// SetGate installs (or clears) the IDS authorisation hook for service
// calls. Safe to call while the bridge is serving.
func (b *STBackend) SetGate(gate func(in instr.Instruction, ctx sensor.Snapshot) error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gate = gate
}

func (b *STBackend) currentGate() func(in instr.Instruction, ctx sensor.Snapshot) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.gate
}

// States implements smartthings.Backend.
func (b *STBackend) States() ([]smartthings.Entity, error) {
	snap := b.home.Env().Snapshot()
	out := make([]smartthings.Entity, 0, len(stEntities)+8)
	for _, def := range stEntities {
		v, ok := snap.Get(def.feature)
		if !ok {
			continue
		}
		out = append(out, smartthings.Entity{
			EntityID:    def.id,
			State:       def.encode(v),
			LastUpdated: snap.At,
		})
	}
	// Actuator entities carry their raw device state as attributes.
	for _, d := range b.home.Devices() {
		out = append(out, smartthings.Entity{
			EntityID:    "device." + d.ID(),
			State:       "available",
			Attributes:  d.State(),
			LastUpdated: snap.At,
		})
	}
	return out, nil
}

// State implements smartthings.Backend.
func (b *STBackend) State(entityID string) (smartthings.Entity, bool, error) {
	all, err := b.States()
	if err != nil {
		return smartthings.Entity{}, false, err
	}
	for _, e := range all {
		if e.EntityID == entityID {
			return e, true, nil
		}
	}
	return smartthings.Entity{}, false, nil
}

// CallService implements smartthings.Backend.
func (b *STBackend) CallService(domain, service string, data map[string]any) ([]smartthings.Entity, error) {
	op := domain + "." + service
	deviceID, _ := data["device_id"].(string)
	if deviceID == "" {
		return nil, fmt.Errorf("bridge: service call needs device_id")
	}
	args := make(map[string]any, len(data))
	for k, v := range data {
		if k != "device_id" {
			args[k] = v
		}
	}
	in, err := b.registry.Build(op, deviceID, instr.OriginUser, args)
	if err != nil {
		return nil, err
	}
	if gate := b.currentGate(); gate != nil {
		if err := gate(in, b.home.Env().Snapshot()); err != nil {
			return nil, err
		}
	}
	if err := b.home.Execute(in); err != nil {
		return nil, err
	}
	ent, ok, err := b.State("device." + deviceID)
	if err != nil || !ok {
		return nil, err
	}
	return []smartthings.Entity{ent}, nil
}
