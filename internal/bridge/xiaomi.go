// Package bridge binds the home simulator to the two vendor protocol
// substrates: it serves the home's sensors and devices through the
// miio-style encrypted UDP gateway (Xiaomi path) and through the Home-
// Assistant-style REST API (SmartThings path), and provides the matching
// normalisation tables the IDS collector uses to turn raw vendor payloads
// back into canonical snapshots.
package bridge

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"iotsid/internal/home"
	"iotsid/internal/instr"
	"iotsid/internal/miio"
	"iotsid/internal/sensor"
)

// xiaomiProp describes one vendor property: its wire name, the canonical
// feature it encodes, the vendor encoding (applied by the simulated
// gateway) and the decoder (used by the collector's normalizer).
type xiaomiProp struct {
	name    string
	feature sensor.Feature
	encode  func(v sensor.Value) any
	decode  sensor.Converter
}

func encodeBool01(v sensor.Value) any {
	if b, _ := v.Bool(); b {
		return 1
	}
	return 0
}

func encodeCenti(v sensor.Value) any {
	n, _ := v.Number()
	return int(math.Round(n * 100))
}

func encodeNumber(v sensor.Value) any {
	n, _ := v.Number()
	return math.Round(n*10) / 10
}

func encodeLabel(v sensor.Value) any {
	l, _ := v.Label()
	return l
}

func encodeLock(v sensor.Value) any {
	if l, _ := v.Label(); l == sensor.LockLocked {
		return 1
	}
	return 0
}

// xiaomiProps is the property table of the simulated gateway — the analogue
// of the instruction/property set extracted from the vendor firmware.
// Temperatures ride the wire in centi-degrees, booleans as 0/1, exactly
// like the physical devices.
var xiaomiProps = []xiaomiProp{
	{name: "alarm", feature: sensor.FeatSmoke, encode: encodeBool01, decode: sensor.BoolFrom01},
	{name: "natgas", feature: sensor.FeatGas, encode: encodeBool01, decode: sensor.BoolFrom01},
	{name: "voice_evt", feature: sensor.FeatVoiceCmd, encode: encodeBool01, decode: sensor.BoolFrom01},
	{name: "lock_state", feature: sensor.FeatDoorLock, encode: encodeLock, decode: sensor.LockStateFromBool},
	{name: "temperature", feature: sensor.FeatTempIndoor, encode: encodeCenti, decode: sensor.NumberScaled(0.01)},
	{name: "outdoor_temperature", feature: sensor.FeatTempOutdoor, encode: encodeCenti, decode: sensor.NumberScaled(0.01)},
	{name: "aqi", feature: sensor.FeatAirQuality, encode: encodeNumber, decode: sensor.NumberIdentity},
	{name: "weather", feature: sensor.FeatWeather, encode: encodeLabel,
		decode: sensor.LabelIn(sensor.WeatherSunny, sensor.WeatherCloudy, sensor.WeatherRain, sensor.WeatherSnow)},
	{name: "motion_status", feature: sensor.FeatMotion, encode: encodeBool01, decode: sensor.BoolFrom01},
	{name: "hour", feature: sensor.FeatHour, encode: encodeNumber, decode: sensor.NumberIdentity},
	{name: "humidity", feature: sensor.FeatHumidity, encode: encodeCenti, decode: sensor.NumberScaled(0.01)},
	{name: "lux", feature: sensor.FeatIlluminance, encode: encodeNumber, decode: sensor.NumberIdentity},
	{name: "wleak", feature: sensor.FeatWaterLeak, encode: encodeBool01, decode: sensor.BoolFrom01},
	{name: "occupied", feature: sensor.FeatOccupancy, encode: encodeBool01, decode: sensor.BoolFrom01},
	{name: "window_status", feature: sensor.FeatWindowOpen, encode: encodeBool01, decode: sensor.BoolFrom01},
	{name: "door_status", feature: sensor.FeatDoorOpen, encode: encodeBool01, decode: sensor.BoolFrom01},
	{name: "noise", feature: sensor.FeatNoise, encode: encodeNumber, decode: sensor.NumberIdentity},
	{name: "load_power", feature: sensor.FeatPowerDraw, encode: encodeNumber, decode: sensor.NumberIdentity},
}

// XiaomiPropNames lists every property the simulated gateway serves, in
// table order.
func XiaomiPropNames() []string {
	out := make([]string, len(xiaomiProps))
	for i, p := range xiaomiProps {
		out[i] = p.name
	}
	return out
}

// XiaomiNormalizer builds the normalizer that decodes a gateway property
// map back into a canonical snapshot.
func XiaomiNormalizer() *sensor.Normalizer {
	fields := make(map[string]sensor.FieldMapping, len(xiaomiProps))
	for _, p := range xiaomiProps {
		fields[p.name] = sensor.FieldMapping{Feature: p.feature, Convert: p.decode}
	}
	return sensor.NewNormalizer(fields)
}

// XiaomiHandler serves the home through the miio RPC surface:
//
//	get_prop      params ["alarm","temperature",...] → [0, 2150, ...]
//	get_device    params ["window-1"]                → device state map
//	execute       params {"op": "...", "device": "...", "args": {...}}
//	miIO.info     → gateway info document
type XiaomiHandler struct {
	home     *home.Home
	registry *instr.Registry

	mu   sync.RWMutex
	gate func(in instr.Instruction, ctx sensor.Snapshot) error
}

var _ miio.Handler = (*XiaomiHandler)(nil)

// NewXiaomiHandler binds a handler to a home.
func NewXiaomiHandler(h *home.Home, reg *instr.Registry) *XiaomiHandler {
	return &XiaomiHandler{home: h, registry: reg}
}

// SetGate installs (or clears) the IDS authorisation hook for control
// instructions. Safe to call while the gateway is serving.
func (x *XiaomiHandler) SetGate(gate func(in instr.Instruction, ctx sensor.Snapshot) error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.gate = gate
}

func (x *XiaomiHandler) currentGate() func(in instr.Instruction, ctx sensor.Snapshot) error {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.gate
}

// Handle implements miio.Handler.
func (x *XiaomiHandler) Handle(method string, params json.RawMessage) (any, error) {
	switch method {
	case "miIO.info":
		return map[string]any{
			"model":  "lumi.gateway.v3",
			"fw_ver": "1.4.1_164",
			"mac":    "0A:0B:0C:0D:0E:0F",
		}, nil
	case "get_prop":
		return x.getProp(params)
	case "get_device":
		return x.getDevice(params)
	case "execute":
		return x.execute(params)
	default:
		return nil, &miio.RPCError{Code: -32601, Message: fmt.Sprintf("method %q not found", method)}
	}
}

func (x *XiaomiHandler) getProp(params json.RawMessage) (any, error) {
	var names []string
	if err := json.Unmarshal(params, &names); err != nil {
		return nil, &miio.RPCError{Code: -32602, Message: "get_prop expects a string array"}
	}
	snap := x.home.Env().Snapshot()
	out := make([]any, 0, len(names))
	for _, name := range names {
		prop, ok := lookupProp(name)
		if !ok {
			return nil, &miio.RPCError{Code: -4, Message: fmt.Sprintf("unknown prop %q", name)}
		}
		v, ok := snap.Get(prop.feature)
		if !ok {
			return nil, &miio.RPCError{Code: -5, Message: fmt.Sprintf("prop %q unavailable", name)}
		}
		out = append(out, prop.encode(v))
	}
	return out, nil
}

func lookupProp(name string) (xiaomiProp, bool) {
	for _, p := range xiaomiProps {
		if p.name == name {
			return p, true
		}
	}
	return xiaomiProp{}, false
}

func (x *XiaomiHandler) getDevice(params json.RawMessage) (any, error) {
	var ids []string
	if err := json.Unmarshal(params, &ids); err != nil || len(ids) != 1 {
		return nil, &miio.RPCError{Code: -32602, Message: "get_device expects [deviceID]"}
	}
	d, ok := x.home.Device(ids[0])
	if !ok {
		return nil, &miio.RPCError{Code: -6, Message: fmt.Sprintf("unknown device %q", ids[0])}
	}
	return d.State(), nil
}

type executeParams struct {
	Op     string         `json:"op"`
	Device string         `json:"device"`
	Args   map[string]any `json:"args,omitempty"`
}

func (x *XiaomiHandler) execute(params json.RawMessage) (any, error) {
	var p executeParams
	if err := json.Unmarshal(params, &p); err != nil {
		return nil, &miio.RPCError{Code: -32602, Message: "execute expects {op, device, args}"}
	}
	in, err := x.registry.Build(p.Op, p.Device, instr.OriginUser, p.Args)
	if err != nil {
		return nil, &miio.RPCError{Code: -7, Message: err.Error()}
	}
	if gate := x.currentGate(); gate != nil {
		if err := gate(in, x.home.Env().Snapshot()); err != nil {
			return nil, &miio.RPCError{Code: -8, Message: err.Error()}
		}
	}
	if err := x.home.Execute(in); err != nil {
		return nil, &miio.RPCError{Code: -9, Message: err.Error()}
	}
	return []string{"ok"}, nil
}
