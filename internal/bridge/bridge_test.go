package bridge

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"iotsid/internal/home"
	"iotsid/internal/instr"
	"iotsid/internal/miio"
	"iotsid/internal/sensor"
	"iotsid/internal/smartthings"
)

var testToken = mustToken("000102030405060708090a0b0c0d0e0f")

func mustToken(s string) miio.Token {
	t, err := miio.ParseToken(s)
	if err != nil {
		panic(err)
	}
	return t
}

func newHome(t *testing.T) *home.Home {
	t.Helper()
	h, err := home.NewStandard(home.EnvConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func startXiaomi(t *testing.T, h *home.Home) (*XiaomiHandler, *miio.Client) {
	t.Helper()
	handler := NewXiaomiHandler(h, instr.BuiltinRegistry())
	gw, err := miio.NewGateway(miio.GatewayConfig{DeviceID: 0x1001, Token: testToken, Handler: handler})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = gw.Close() })
	client, err := miio.Dial(gw.Addr().String(), testToken, miio.WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return handler, client
}

func TestXiaomiGetPropRoundTrip(t *testing.T) {
	h := newHome(t)
	_, client := startXiaomi(t, h)

	names := XiaomiPropNames()
	raw, err := client.Call("get_prop", names)
	if err != nil {
		t.Fatalf("get_prop: %v", err)
	}
	var values []any
	if err := json.Unmarshal(raw, &values); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(values) != len(names) {
		t.Fatalf("got %d values for %d props", len(values), len(names))
	}
	payload := make(map[string]any, len(names))
	for i, n := range names {
		payload[n] = values[i]
	}
	snap, err := XiaomiNormalizer().Normalize(payload, time.Now())
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("normalized snapshot invalid: %v", err)
	}
	// The normalized snapshot must agree with the home's ground truth.
	truth := h.Env().Snapshot()
	for _, f := range truth.Features() {
		want := truth.Values[f]
		got, ok := snap.Get(f)
		if !ok {
			t.Errorf("feature %q lost on the wire", f)
			continue
		}
		if wn, isNum := want.Number(); isNum {
			gn, _ := got.Number()
			if math.Abs(wn-gn) > 0.01 {
				t.Errorf("feature %q = %v, want %v", f, gn, wn)
			}
			continue
		}
		if !got.Equal(want) {
			t.Errorf("feature %q = %v, want %v", f, got, want)
		}
	}
}

func TestXiaomiGetPropErrors(t *testing.T) {
	h := newHome(t)
	_, client := startXiaomi(t, h)
	var rpcErr *miio.RPCError
	if _, err := client.Call("get_prop", []string{"warp_core"}); !errors.As(err, &rpcErr) {
		t.Errorf("unknown prop: %v", err)
	}
	if _, err := client.Call("get_prop", "not-an-array"); !errors.As(err, &rpcErr) {
		t.Errorf("bad params: %v", err)
	}
	if _, err := client.Call("teleport", nil); !errors.As(err, &rpcErr) {
		t.Errorf("unknown method: %v", err)
	}
}

func TestXiaomiInfoAndDevice(t *testing.T) {
	h := newHome(t)
	_, client := startXiaomi(t, h)
	raw, err := client.Call("miIO.info", nil)
	if err != nil {
		t.Fatalf("miIO.info: %v", err)
	}
	var info map[string]any
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatal(err)
	}
	if info["model"] != "lumi.gateway.v3" {
		t.Errorf("info = %v", info)
	}
	raw, err = client.Call("get_device", []string{"window-1"})
	if err != nil {
		t.Fatalf("get_device: %v", err)
	}
	var st map[string]any
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st["status"] != "close" {
		t.Errorf("window state = %v", st)
	}
	var rpcErr *miio.RPCError
	if _, err := client.Call("get_device", []string{"ghost"}); !errors.As(err, &rpcErr) {
		t.Errorf("unknown device: %v", err)
	}
}

func TestXiaomiExecuteAndGate(t *testing.T) {
	h := newHome(t)
	handler, client := startXiaomi(t, h)

	// Ungated execute mutates the home.
	if _, err := client.Call("execute", executeParams{Op: "window.open", Device: "window-1"}); err != nil {
		t.Fatalf("execute: %v", err)
	}
	if !h.Env().Snapshot().Bool(sensor.FeatWindowOpen) {
		t.Fatal("window.open did not reach the home")
	}

	// A gate rejection blocks execution and surfaces on the wire.
	handler.SetGate(func(in instr.Instruction, ctx sensor.Snapshot) error {
		return fmt.Errorf("IDS: %s rejected", in.Op)
	})
	_, err := client.Call("execute", executeParams{Op: "window.close", Device: "window-1"})
	var rpcErr *miio.RPCError
	if !errors.As(err, &rpcErr) {
		t.Fatalf("want gated rpc error, got %v", err)
	}
	if h.Env().Snapshot().Bool(sensor.FeatWindowOpen) != true {
		t.Error("gated instruction executed anyway")
	}

	// Unknown opcodes are rejected before the gate.
	if _, err := client.Call("execute", executeParams{Op: "nope.nope", Device: "window-1"}); !errors.As(err, &rpcErr) {
		t.Errorf("unknown op: %v", err)
	}
}

func startST(t *testing.T, h *home.Home) (*STBackend, *smartthings.Client) {
	t.Helper()
	backend := NewSTBackend(h, instr.BuiltinRegistry())
	srv, err := smartthings.NewServer(smartthings.ServerConfig{Token: "llat-1", Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client, err := smartthings.NewClient(srv.URL(), "llat-1")
	if err != nil {
		t.Fatal(err)
	}
	return backend, client
}

func TestSTStatesRoundTrip(t *testing.T) {
	h := newHome(t)
	_, client := startST(t, h)
	entities, err := client.States(context.Background())
	if err != nil {
		t.Fatalf("States: %v", err)
	}
	// All sensor entities plus the 10 device entities.
	if len(entities) < len(STEntityIDs())+10 {
		t.Fatalf("entities = %d", len(entities))
	}
	snap, err := STDecodeStates(entities)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("decoded snapshot invalid: %v", err)
	}
	truth := h.Env().Snapshot()
	for _, f := range truth.Features() {
		got, ok := snap.Get(f)
		if !ok {
			t.Errorf("feature %q lost", f)
			continue
		}
		want := truth.Values[f]
		if wn, isNum := want.Number(); isNum {
			gn, _ := got.Number()
			if math.Abs(wn-gn) > 0.01 {
				t.Errorf("feature %q = %v, want %v", f, gn, wn)
			}
			continue
		}
		if !got.Equal(want) {
			t.Errorf("feature %q = %v, want %v", f, got, want)
		}
	}
}

func TestSTSingleStateAndFeatureLookup(t *testing.T) {
	h := newHome(t)
	_, client := startST(t, h)
	e, err := client.State(context.Background(), "binary_sensor.smoke")
	if err != nil {
		t.Fatalf("State: %v", err)
	}
	if e.State != "off" {
		t.Errorf("smoke = %q", e.State)
	}
	if f, ok := STFeatureFor("binary_sensor.smoke"); !ok || f != sensor.FeatSmoke {
		t.Errorf("STFeatureFor = %v, %v", f, ok)
	}
	if _, ok := STFeatureFor("sensor.nope"); ok {
		t.Error("unexpected feature hit")
	}
}

func TestSTServiceCallAndGate(t *testing.T) {
	h := newHome(t)
	backend, client := startST(t, h)
	changed, err := client.CallService(context.Background(), "light", "on", map[string]any{"device_id": "light-1"})
	if err != nil {
		t.Fatalf("CallService: %v", err)
	}
	if len(changed) != 1 || changed[0].Attributes["power"] != "on" {
		t.Errorf("changed = %+v", changed)
	}

	backend.SetGate(func(in instr.Instruction, ctx sensor.Snapshot) error {
		return errors.New("IDS: blocked")
	})
	_, err = client.CallService(context.Background(), "light", "off", map[string]any{"device_id": "light-1"})
	var apiErr *smartthings.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want APIError, got %v", err)
	}
	d, _ := h.Device("light-1")
	if d.State()["power"] != "on" {
		t.Error("gated service call executed anyway")
	}

	// Missing device_id.
	if _, err := client.CallService(context.Background(), "light", "on", nil); !errors.As(err, &apiErr) {
		t.Errorf("missing device_id: %v", err)
	}
}

func TestSTDecodeSkipsForeignEntities(t *testing.T) {
	snap, err := STDecodeStates([]smartthings.Entity{
		{EntityID: "binary_sensor.smoke", State: "on"},
		{EntityID: "media_player.spotify", State: "playing"},
	})
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !snap.Bool(sensor.FeatSmoke) {
		t.Error("smoke lost")
	}
	if len(snap.Values) != 1 {
		t.Errorf("values = %v", snap.Values)
	}
}

func TestSTDecodeBadState(t *testing.T) {
	if _, err := STDecodeStates([]smartthings.Entity{
		{EntityID: "sensor.temperature_indoor", State: "warm-ish"},
	}); err == nil {
		t.Error("want decode error")
	}
}
