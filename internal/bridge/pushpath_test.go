package bridge

import (
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"iotsid/internal/epoch"
	"iotsid/internal/miio"
	"iotsid/internal/sensor"
)

// TestEventPumpMidBatchFailureRedelivers is the regression test for the
// pump's baseline handling: when a push fails mid-batch (here: an
// unencodable NaN AQI makes the devmode marshal fail at table position 6),
// the features after the failure point must stay dirty and go out on the
// next tick, and the features already pushed must not be duplicated.
func TestEventPumpMidBatchFailureRedelivers(t *testing.T) {
	h := newHome(t)
	dev, err := miio.NewDevMode(miio.DevModeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dev.Close() }()
	pump, err := NewEventPump(h.Env(), dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pump.Tick(); err != nil { // prime
		t.Fatal(err)
	}
	base := h.Env().Snapshot()
	baseAQI, _ := base.Number(sensor.FeatAirQuality)

	// Three changes: smoke (before the poisoned prop), AQI (poisoned —
	// json.Marshal rejects NaN), window (after the poisoned prop).
	spoof := sensor.NewSnapshot(h.Env().Now())
	spoof.Set(sensor.FeatSmoke, sensor.Bool(!base.Bool(sensor.FeatSmoke)))
	spoof.Set(sensor.FeatAirQuality, sensor.Number(math.NaN()))
	spoof.Set(sensor.FeatWindowOpen, sensor.Bool(!base.Bool(sensor.FeatWindowOpen)))
	h.Env().Apply(spoof)

	pushed, err := pump.Tick()
	if err == nil {
		t.Fatal("NaN AQI encoded without error")
	}
	if !strings.Contains(err.Error(), "aqi") {
		t.Fatalf("error does not name the failing prop: %v", err)
	}
	if pushed != 1 {
		t.Fatalf("pushed %d before the failure, want 1 (smoke only)", pushed)
	}

	// Heal the poisoned value; the retry tick must deliver the AQI and the
	// window change it previously could not, and must NOT re-push smoke.
	heal := sensor.NewSnapshot(h.Env().Now())
	heal.Set(sensor.FeatAirQuality, sensor.Number(baseAQI+7))
	h.Env().Apply(heal)
	pushed, err = pump.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if pushed != 2 {
		t.Fatalf("recovery tick pushed %d, want 2 (aqi + window, no smoke duplicate)", pushed)
	}
	// Quiescent after recovery.
	pushed, err = pump.Tick()
	if err != nil || pushed != 0 {
		t.Fatalf("post-recovery tick = %d, %v, want 0, nil", pushed, err)
	}
}

// TestEventPumpHeartbeat: the keep-alive carries the full property state in
// one multi-prop frame and re-baselines the diff.
func TestEventPumpHeartbeat(t *testing.T) {
	h := newHome(t)
	dev, err := miio.NewDevMode(miio.DevModeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dev.Close() }()
	listener, err := miio.SubscribeDevMode(dev.Addr().String(), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = listener.Close() }()
	pump, err := NewEventPump(h.Env(), dev)
	if err != nil {
		t.Fatal(err)
	}
	n, err := pump.Heartbeat()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(XiaomiPropNames()); n != want {
		t.Fatalf("heartbeat carried %d props, want %d", n, want)
	}
	select {
	case r, ok := <-listener.Reports():
		if !ok {
			t.Fatal("report channel closed")
		}
		if r.Cmd != "heartbeat" {
			t.Fatalf("cmd = %q, want heartbeat", r.Cmd)
		}
		var raw map[string]any
		if err := json.Unmarshal(r.Data, &raw); err != nil {
			t.Fatal(err)
		}
		snap, decoded, err := DecodeReportAll(raw, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if decoded != n {
			t.Fatalf("decoded %d props of %d", decoded, n)
		}
		if len(snap.Values) != n {
			t.Fatalf("snapshot has %d values, want %d", len(snap.Values), n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("heartbeat never arrived")
	}
	// The heartbeat primed the baseline: an immediate tick has nothing new.
	pushed, err := pump.Tick()
	if err != nil || pushed != 0 {
		t.Fatalf("tick after heartbeat = %d, %v, want 0, nil", pushed, err)
	}
}

func TestDecodeReportAll(t *testing.T) {
	at := time.Date(2021, 6, 1, 12, 0, 0, 0, time.UTC)
	snap, n, err := DecodeReportAll(map[string]any{
		"alarm":         1,
		"window_status": float64(0),
		"temperature":   float64(2150),
		"mystery":       "ignored",
	}, at)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("decoded %d props, want 3", n)
	}
	if !snap.At.Equal(at) {
		t.Fatalf("snapshot stamped %v, want %v", snap.At, at)
	}
	if !snap.Bool(sensor.FeatSmoke) {
		t.Error("alarm=1 not decoded to smoke=true")
	}
	if snap.Bool(sensor.FeatWindowOpen) {
		t.Error("window_status=0 decoded to open")
	}
	if temp, ok := snap.Number(sensor.FeatTempIndoor); !ok || temp != 21.5 {
		t.Errorf("temperature = %v, want 21.5", temp)
	}
	// Unknown-only payload: decodes nothing, no error.
	_, n, err = DecodeReportAll(map[string]any{"mystery": 1}, at)
	if err != nil || n != 0 {
		t.Errorf("unknown-only payload: n=%d err=%v", n, err)
	}
	// A broken known value aborts the whole decode.
	if _, _, err := DecodeReportAll(map[string]any{"alarm": "maybe", "natgas": 1}, at); err == nil {
		t.Error("broken value decoded without error")
	}
}

// TestDecodeReportErrorPaths covers the single-prop decoder's failure
// modes prop class by prop class.
func TestDecodeReportErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		raw  map[string]any
	}{
		{"bool from junk string", map[string]any{"alarm": "maybe"}},
		{"number from bool", map[string]any{"aqi": true}},
		{"label outside domain", map[string]any{"weather": "hail"}},
		{"lock from junk", map[string]any{"lock_state": "ajar"}},
		{"scaled number from junk", map[string]any{"temperature": "warm"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, err := DecodeReport(miio.Report{}, tc.raw)
			if err == nil {
				t.Fatalf("DecodeReport(%v) decoded without error", tc.raw)
			}
		})
	}
	// The error path must not mask the unknown-prop path.
	_, _, known, err := DecodeReport(miio.Report{}, map[string]any{})
	if err != nil || known {
		t.Fatalf("empty payload: known=%v err=%v", known, err)
	}
}

func feedStore(t *testing.T, source string) *epoch.Store {
	t.Helper()
	st, err := epoch.NewStore(epoch.Config{},
		epoch.SourceConfig{Name: source, Required: true, FreshFor: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestDevModeFeedHandleReport(t *testing.T) {
	st := feedStore(t, "miio")
	feed, err := NewDevModeFeed(st, "miio", nil)
	if err != nil {
		t.Fatal(err)
	}
	report := func(data string) miio.Report {
		return miio.Report{Cmd: "report", Model: "lumi.sensor_alarm", SID: "alarm-1", Data: json.RawMessage(data)}
	}
	if err := feed.HandleReport(report(`{"alarm":1,"temperature":2150}`)); err != nil {
		t.Fatal(err)
	}
	v := st.View()
	if v.Epoch != 1 || !v.Snap.Bool(sensor.FeatSmoke) {
		t.Fatalf("report not pushed: epoch=%d snap=%v", v.Epoch, v.Snap.Values)
	}
	if temp, _ := v.Snap.Number(sensor.FeatTempIndoor); temp != 21.5 {
		t.Fatalf("temperature = %v, want 21.5", temp)
	}
	// Unknown-prop change report is not a liveness signal: no push.
	if err := feed.HandleReport(report(`{"mystery":1}`)); err != nil {
		t.Fatal(err)
	}
	if st.Epoch() != 1 {
		t.Fatalf("unknown-prop report pushed: epoch %d", st.Epoch())
	}
	// An empty heartbeat IS a liveness signal: epoch bumps, values survive.
	hb := miio.Report{Cmd: "heartbeat", Model: "lumi.gateway.v3", SID: "gateway", Data: json.RawMessage(`{}`)}
	if err := feed.HandleReport(hb); err != nil {
		t.Fatal(err)
	}
	if v := st.View(); v.Epoch != 2 || !v.Snap.Bool(sensor.FeatSmoke) {
		t.Fatalf("heartbeat liveness push: epoch=%d", v.Epoch)
	}
	// Malformed payloads error instead of silently dropping.
	if err := feed.HandleReport(report(`{broken`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	if err := feed.HandleReport(report(`{"alarm":"maybe"}`)); err == nil {
		t.Error("broken value accepted")
	}
}

func TestDevModeFeedValidation(t *testing.T) {
	st := feedStore(t, "miio")
	if _, err := NewDevModeFeed(nil, "miio", nil); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := NewDevModeFeed(st, "", nil); err == nil {
		t.Error("empty source accepted")
	}
}

func TestDevModeFeedDrain(t *testing.T) {
	st := feedStore(t, "miio")
	feed, err := NewDevModeFeed(st, "miio", nil)
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan miio.Report, 8)
	ch <- miio.Report{Cmd: "report", Data: json.RawMessage(`{"alarm":1}`)}
	ch <- miio.Report{Cmd: "report", Data: json.RawMessage(`{"motion_status":1}`)}
	ch <- miio.Report{Cmd: "report", Data: json.RawMessage(`{"alarm":0}`)}
	pushed, err := feed.Drain(ch)
	if err != nil {
		t.Fatal(err)
	}
	if pushed != 3 {
		t.Fatalf("drained %d, want 3", pushed)
	}
	v := st.View()
	if v.Snap.Bool(sensor.FeatSmoke) || !v.Snap.Bool(sensor.FeatMotion) {
		t.Fatalf("drained state wrong: %v", v.Snap.Values)
	}
	// Empty channel drains zero without blocking.
	if pushed, err := feed.Drain(ch); err != nil || pushed != 0 {
		t.Fatalf("empty drain = %d, %v", pushed, err)
	}
	// A broken report aborts the drain with its error.
	ch <- miio.Report{Cmd: "report", Data: json.RawMessage(`{"alarm":"maybe"}`)}
	ch <- miio.Report{Cmd: "report", Data: json.RawMessage(`{"alarm":1}`)}
	if _, err := feed.Drain(ch); err == nil {
		t.Fatal("broken report drained without error")
	}
}

func TestSTPoller(t *testing.T) {
	h := newHome(t)
	_, client := startST(t, h)
	st := feedStore(t, "st")
	poller, err := NewSTPoller(client, st, "st")
	if err != nil {
		t.Fatal(err)
	}
	n, err := poller.Poll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("poll pushed an empty delta")
	}
	v := st.View()
	if v.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", v.Epoch)
	}
	// The pushed delta matches the environment's own snapshot.
	env := h.Env().Snapshot()
	for _, f := range []sensor.Feature{sensor.FeatSmoke, sensor.FeatMotion, sensor.FeatOccupancy} {
		if v.Snap.Bool(f) != env.Bool(f) {
			t.Errorf("feature %s: pushed %v, env %v", f, v.Snap.Bool(f), env.Bool(f))
		}
	}
	if _, err := NewSTPoller(nil, st, "st"); err == nil {
		t.Error("nil client accepted")
	}
	if _, err := NewSTPoller(client, nil, "st"); err == nil {
		t.Error("nil store accepted")
	}
}
