package bridge

import (
	"fmt"
	"time"

	"iotsid/internal/home"
	"iotsid/internal/miio"
	"iotsid/internal/sensor"
)

// EventPump feeds the gateway's developer-mode side channel: on every tick
// it diffs the home's sensor context against the previous tick and pushes
// one report per changed feature, in the vendor's encoding — exactly the
// report stream the paper's collector listened to.
type EventPump struct {
	env    *home.Environment
	dev    *miio.DevMode
	prev   sensor.Snapshot
	primed bool
}

// NewEventPump binds a pump to an environment and a developer-mode channel.
func NewEventPump(env *home.Environment, dev *miio.DevMode) (*EventPump, error) {
	if env == nil || dev == nil {
		return nil, fmt.Errorf("bridge: event pump needs an environment and a devmode channel")
	}
	return &EventPump{env: env, dev: dev}, nil
}

// Tick pushes reports for every feature whose value changed since the last
// tick and returns how many were pushed. The first tick only establishes
// the baseline. The baseline advances per pushed feature, not wholesale: a
// push failure mid-batch leaves the remaining changed features still
// marked dirty, so they are re-pushed on the next tick instead of being
// silently dropped.
func (p *EventPump) Tick() (int, error) {
	snap := p.env.Snapshot()
	if !p.primed {
		p.prev = snap
		p.primed = true
		return 0, nil
	}
	pushed := 0
	for _, prop := range xiaomiProps {
		cur, ok := snap.Get(prop.feature)
		if !ok {
			continue
		}
		old, hadOld := p.prev.Get(prop.feature)
		if hadOld && cur.Equal(old) {
			continue
		}
		data := map[string]any{prop.name: prop.encode(cur)}
		if err := p.dev.Push("lumi.sensor_"+prop.name, string(prop.feature), data); err != nil {
			return pushed, fmt.Errorf("bridge: push %s: %w", prop.name, err)
		}
		p.prev.Set(prop.feature, cur)
		pushed++
	}
	p.prev.At = snap.At
	return pushed, nil
}

// Heartbeat pushes the environment's full property state as one multi-
// property report on the heartbeat command — the gateway's periodic
// keep-alive that lets a freshly subscribed listener (or an epoch store
// recovering from drops) resynchronise without waiting for every sensor to
// change. On success the diff baseline is re-established at the reported
// state.
func (p *EventPump) Heartbeat() (int, error) {
	snap := p.env.Snapshot()
	data := make(map[string]any, len(xiaomiProps))
	count := 0
	for _, prop := range xiaomiProps {
		cur, ok := snap.Get(prop.feature)
		if !ok {
			continue
		}
		data[prop.name] = prop.encode(cur)
		count++
	}
	if count == 0 {
		return 0, nil
	}
	if err := p.dev.Heartbeat("lumi.gateway.v3", "gateway", data); err != nil {
		return 0, fmt.Errorf("bridge: heartbeat: %w", err)
	}
	p.prev = snap
	p.primed = true
	return count, nil
}

// DecodeReport converts one developer-mode report back into a canonical
// (feature, value) pair — the listener-side half of the codec. Reports for
// unknown properties return ok=false.
func DecodeReport(r miio.Report, raw map[string]any) (sensor.Feature, sensor.Value, bool, error) {
	for _, prop := range xiaomiProps {
		v, present := raw[prop.name]
		if !present {
			continue
		}
		val, err := prop.decode(v)
		if err != nil {
			return "", sensor.Value{}, false, fmt.Errorf("bridge: report %s: %w", prop.name, err)
		}
		return prop.feature, val, true, nil
	}
	return "", sensor.Value{}, false, nil
}

// DecodeReportAll decodes every known property in a (possibly multi-
// property, e.g. heartbeat) report payload into a snapshot stamped at.
// Unknown fields are skipped, n counts the decoded properties, and the
// first known property with a broken value aborts the whole decode — a
// partially applied report would leave the context internally
// inconsistent.
func DecodeReportAll(raw map[string]any, at time.Time) (sensor.Snapshot, int, error) {
	snap := sensor.NewSnapshot(at)
	n := 0
	for _, prop := range xiaomiProps {
		v, present := raw[prop.name]
		if !present {
			continue
		}
		val, err := prop.decode(v)
		if err != nil {
			return sensor.Snapshot{}, 0, fmt.Errorf("bridge: report %s: %w", prop.name, err)
		}
		snap.Set(prop.feature, val)
		n++
	}
	return snap, n, nil
}
