package bridge

import (
	"fmt"

	"iotsid/internal/home"
	"iotsid/internal/miio"
	"iotsid/internal/sensor"
)

// EventPump feeds the gateway's developer-mode side channel: on every tick
// it diffs the home's sensor context against the previous tick and pushes
// one report per changed feature, in the vendor's encoding — exactly the
// report stream the paper's collector listened to.
type EventPump struct {
	env    *home.Environment
	dev    *miio.DevMode
	prev   sensor.Snapshot
	primed bool
}

// NewEventPump binds a pump to an environment and a developer-mode channel.
func NewEventPump(env *home.Environment, dev *miio.DevMode) (*EventPump, error) {
	if env == nil || dev == nil {
		return nil, fmt.Errorf("bridge: event pump needs an environment and a devmode channel")
	}
	return &EventPump{env: env, dev: dev}, nil
}

// Tick pushes reports for every feature whose value changed since the last
// tick and returns how many were pushed. The first tick only establishes
// the baseline.
func (p *EventPump) Tick() (int, error) {
	snap := p.env.Snapshot()
	defer func() {
		p.prev = snap
		p.primed = true
	}()
	if !p.primed {
		return 0, nil
	}
	pushed := 0
	for _, prop := range xiaomiProps {
		cur, ok := snap.Get(prop.feature)
		if !ok {
			continue
		}
		old, hadOld := p.prev.Get(prop.feature)
		if hadOld && cur.Equal(old) {
			continue
		}
		data := map[string]any{prop.name: prop.encode(cur)}
		if err := p.dev.Push("lumi.sensor_"+prop.name, string(prop.feature), data); err != nil {
			return pushed, fmt.Errorf("bridge: push %s: %w", prop.name, err)
		}
		pushed++
	}
	return pushed, nil
}

// DecodeReport converts one developer-mode report back into a canonical
// (feature, value) pair — the listener-side half of the codec. Reports for
// unknown properties return ok=false.
func DecodeReport(r miio.Report, raw map[string]any) (sensor.Feature, sensor.Value, bool, error) {
	for _, prop := range xiaomiProps {
		v, present := raw[prop.name]
		if !present {
			continue
		}
		val, err := prop.decode(v)
		if err != nil {
			return "", sensor.Value{}, false, fmt.Errorf("bridge: report %s: %w", prop.name, err)
		}
		return prop.feature, val, true, nil
	}
	return "", sensor.Value{}, false, nil
}
