// Package home simulates the smart home the paper instruments: a physical
// environment (weather, temperatures, air quality, occupancy, hazards), the
// sensor fleet observing it, and the actuating devices of the nine Table I
// categories. The simulator is the stand-in for the paper's physical Xiaomi
// and SmartThings deployments; both vendor substrates serve their state from
// it.
package home

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"iotsid/internal/sensor"
)

// HVACMode is the air-conditioning state machine.
type HVACMode int

// HVAC modes.
const (
	HVACOff HVACMode = iota + 1
	HVACCool
	HVACHeat
)

// Environment is the simulated physical world. All access is mutex-guarded:
// the automation engine, the vendor protocol servers and the physics stepper
// touch it concurrently.
type Environment struct {
	mu  sync.Mutex
	rng *rand.Rand
	now time.Time

	// Weather / outdoor.
	weather     string
	tempOut     float64
	humidity    float64
	illumOut    float64 // daylight lux before windows/curtains
	seasonalMid float64 // seasonal mean outdoor temperature

	// Indoor state.
	tempIn    float64
	aqi       float64
	noise     float64
	powerBase float64

	// Hazards.
	smoke, gas, waterLeak bool
	smokeTTL, gasTTL      int // physics steps until hazard clears
	waterTTL              int

	// People.
	occupied bool
	motion   bool
	voiceCmd bool

	// Device-coupled state (mutated by devices).
	windowOpen  bool
	doorOpen    bool
	doorLocked  bool
	curtainPos  float64 // 0 closed .. 1 open
	lightsOn    int
	tvOn        bool
	cooking     bool
	hvac        HVACMode
	hvacTarget  float64
	vacuumOn    bool
	cameraOn    bool
	alarmArmed  bool
	sirenActive bool
	devicePower float64
}

// EnvConfig seeds the environment.
type EnvConfig struct {
	Start       time.Time
	Seed        int64
	SeasonalMid float64 // mean outdoor temperature, default 15 °C
}

// NewEnvironment builds a home world at the configured start instant.
func NewEnvironment(cfg EnvConfig) *Environment {
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2021, 4, 1, 8, 0, 0, 0, time.UTC)
	}
	if cfg.SeasonalMid == 0 {
		cfg.SeasonalMid = 15
	}
	e := &Environment{
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		now:         cfg.Start,
		weather:     sensor.WeatherSunny,
		seasonalMid: cfg.SeasonalMid,
		tempIn:      21,
		humidity:    50,
		aqi:         40,
		noise:       32,
		powerBase:   80,
		doorLocked:  true,
		curtainPos:  0.5,
		hvac:        HVACOff,
		hvacTarget:  22,
		occupied:    true,
	}
	e.refreshOutdoor()
	return e
}

// Now returns the simulated clock.
func (e *Environment) Now() time.Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now
}

// Step advances simulated time by d and integrates the physics. Call with
// steps of roughly one simulated minute; larger steps coarsen the dynamics
// but stay stable.
func (e *Environment) Step(d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.now = e.now.Add(d)
	dtMin := d.Minutes()

	e.stepWeather(dtMin)
	e.refreshOutdoor()
	e.stepIndoorTemp(dtMin)
	e.stepAir(dtMin)
	e.stepPeople()
	e.stepHazards()
	e.stepAmbience()
}

func (e *Environment) stepWeather(dtMin float64) {
	// Markov weather: chance of a transition scales with elapsed time.
	p := 1 - math.Pow(0.998, dtMin)
	if e.rng.Float64() >= p {
		return
	}
	order := []string{sensor.WeatherSunny, sensor.WeatherCloudy, sensor.WeatherRain, sensor.WeatherSnow}
	idx := 0
	for i, w := range order {
		if w == e.weather {
			idx = i
		}
	}
	// Random walk over the severity ladder; snow only plausible when cold.
	if e.rng.Intn(2) == 0 && idx > 0 {
		idx--
	} else if idx < len(order)-1 {
		idx++
	}
	if order[idx] == sensor.WeatherSnow && e.seasonalMid > 8 {
		idx-- // too warm for snow
	}
	e.weather = order[idx]
}

func (e *Environment) refreshOutdoor() {
	h := hourOf(e.now)
	diurnal := 6 * math.Sin((h-9)/24*2*math.Pi)
	adj := map[string]float64{
		sensor.WeatherSunny:  1.5,
		sensor.WeatherCloudy: 0,
		sensor.WeatherRain:   -3,
		sensor.WeatherSnow:   -9,
	}[e.weather]
	e.tempOut = e.seasonalMid + diurnal + adj + e.rng.Float64()*0.6 - 0.3

	daylight := math.Max(0, math.Sin(math.Pi*(h-6)/14))
	factor := map[string]float64{
		sensor.WeatherSunny:  1.0,
		sensor.WeatherCloudy: 0.45,
		sensor.WeatherRain:   0.25,
		sensor.WeatherSnow:   0.35,
	}[e.weather]
	e.illumOut = daylight * 10000 * factor

	targetRH := map[string]float64{
		sensor.WeatherSunny:  45,
		sensor.WeatherCloudy: 60,
		sensor.WeatherRain:   85,
		sensor.WeatherSnow:   75,
	}[e.weather]
	e.humidity += (targetRH - e.humidity) * 0.1
}

func (e *Environment) stepIndoorTemp(dtMin float64) {
	// Leak toward outdoor; open windows triple the coupling.
	leak := 0.004
	if e.windowOpen || e.doorOpen {
		leak = 0.02
	}
	e.tempIn += (e.tempOut - e.tempIn) * leak * dtMin

	// HVAC pulls toward its target.
	switch e.hvac {
	case HVACCool:
		if e.tempIn > e.hvacTarget {
			e.tempIn -= math.Min(0.08*dtMin, e.tempIn-e.hvacTarget)
		}
	case HVACHeat:
		if e.tempIn < e.hvacTarget {
			e.tempIn += math.Min(0.08*dtMin, e.hvacTarget-e.tempIn)
		}
	}
	if e.cooking {
		e.tempIn += 0.01 * dtMin
	}
}

func (e *Environment) stepAir(dtMin float64) {
	// AQI random walk, pushed up by cooking, flushed by open windows.
	e.aqi += (e.rng.Float64() - 0.5) * 2 * dtMin * 0.3
	if e.cooking {
		e.aqi += 0.8 * dtMin
	}
	if e.windowOpen {
		e.aqi -= 0.6 * dtMin
	}
	e.aqi = clamp(e.aqi, 15, 300)
}

func (e *Environment) stepPeople() {
	h := hourOf(e.now)
	weekday := e.now.Weekday() >= time.Monday && e.now.Weekday() <= time.Friday
	workHours := weekday && h >= 9 && h < 18
	base := !workHours
	// 10 % of steps flip the schedule (errands, days off, visitors).
	if e.rng.Float64() < 0.10 {
		base = !base
	}
	e.occupied = base
	awake := h >= 7 && h < 23
	e.motion = e.occupied && awake && e.rng.Float64() < 0.7
	// A voice command is a transient: only plausible while somebody is home
	// and awake.
	e.voiceCmd = e.occupied && awake && e.rng.Float64() < 0.08
}

func (e *Environment) stepHazards() {
	pSmoke := 0.0004
	if e.cooking {
		pSmoke = 0.02
	}
	if !e.smoke && e.rng.Float64() < pSmoke {
		e.smoke = true
		e.smokeTTL = 4 + e.rng.Intn(8)
	}
	if e.smoke {
		if e.smokeTTL--; e.smokeTTL <= 0 {
			e.smoke = false
		}
	}
	if !e.gas && e.rng.Float64() < 0.0002 {
		e.gas = true
		e.gasTTL = 3 + e.rng.Intn(6)
	}
	if e.gas {
		if e.gasTTL--; e.gasTTL <= 0 {
			e.gas = false
		}
	}
	if !e.waterLeak && e.rng.Float64() < 0.0002 {
		e.waterLeak = true
		e.waterTTL = 10 + e.rng.Intn(20)
	}
	if e.waterLeak {
		if e.waterTTL--; e.waterTTL <= 0 {
			e.waterLeak = false
		}
	}
}

func (e *Environment) stepAmbience() {
	e.noise = 30 + e.rng.Float64()*3
	if e.occupied {
		e.noise += 8
	}
	if e.tvOn {
		e.noise += 14
	}
	if e.vacuumOn {
		e.noise += 20
	}
	if e.sirenActive {
		e.noise += 45
	}
}

func hourOf(t time.Time) float64 {
	return float64(t.Hour()) + float64(t.Minute())/60
}

func clamp(x, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, x))
}

// Snapshot reads the full sensor context at the current instant.
func (e *Environment) Snapshot() sensor.Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snapshotLocked()
}

func (e *Environment) snapshotLocked() sensor.Snapshot {
	s := sensor.NewSnapshot(e.now)
	s.Set(sensor.FeatSmoke, sensor.Bool(e.smoke))
	s.Set(sensor.FeatGas, sensor.Bool(e.gas))
	s.Set(sensor.FeatVoiceCmd, sensor.Bool(e.voiceCmd))
	lock := sensor.LockUnlocked
	if e.doorLocked {
		lock = sensor.LockLocked
	}
	s.Set(sensor.FeatDoorLock, sensor.Label(lock))
	s.Set(sensor.FeatTempIndoor, sensor.Number(round1(e.tempIn)))
	s.Set(sensor.FeatAirQuality, sensor.Number(round1(e.aqi)))
	s.Set(sensor.FeatWeather, sensor.Label(e.weather))
	s.Set(sensor.FeatMotion, sensor.Bool(e.motion))
	s.Set(sensor.FeatHour, sensor.Number(round1(hourOf(e.now))))
	s.Set(sensor.FeatTempOutdoor, sensor.Number(round1(e.tempOut)))
	s.Set(sensor.FeatHumidity, sensor.Number(round1(e.humidity)))
	illumIn := e.illumOut*(0.02+0.28*e.curtainPos) + float64(e.lightsOn)*300
	s.Set(sensor.FeatIlluminance, sensor.Number(round1(illumIn)))
	s.Set(sensor.FeatWaterLeak, sensor.Bool(e.waterLeak))
	s.Set(sensor.FeatOccupancy, sensor.Bool(e.occupied))
	s.Set(sensor.FeatWindowOpen, sensor.Bool(e.windowOpen))
	s.Set(sensor.FeatDoorOpen, sensor.Bool(e.doorOpen))
	s.Set(sensor.FeatNoise, sensor.Number(round1(e.noise)))
	s.Set(sensor.FeatPowerDraw, sensor.Number(round1(e.powerBase+e.devicePower)))
	return s
}

func round1(x float64) float64 { return math.Round(x*10) / 10 }

// Apply overrides environment state from a snapshot — used to stage a
// specific scene (and by attack injectors to spoof sensor values).
func (e *Environment) Apply(s sensor.Snapshot) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if b, ok := s.Get(sensor.FeatSmoke); ok {
		e.smoke, _ = b.Bool()
		if e.smoke {
			e.smokeTTL = 5
		}
	}
	if b, ok := s.Get(sensor.FeatGas); ok {
		e.gas, _ = b.Bool()
		if e.gas {
			e.gasTTL = 5
		}
	}
	if b, ok := s.Get(sensor.FeatVoiceCmd); ok {
		e.voiceCmd, _ = b.Bool()
	}
	if v, ok := s.Get(sensor.FeatDoorLock); ok {
		l, _ := v.Label()
		e.doorLocked = l == sensor.LockLocked
	}
	if n, ok := s.Number(sensor.FeatTempIndoor); ok {
		e.tempIn = n
	}
	if n, ok := s.Number(sensor.FeatTempOutdoor); ok {
		e.tempOut = n
	}
	if n, ok := s.Number(sensor.FeatAirQuality); ok {
		e.aqi = n
	}
	if v, ok := s.Get(sensor.FeatWeather); ok {
		if l, isLabel := v.Label(); isLabel {
			e.weather = l
		}
	}
	if b, ok := s.Get(sensor.FeatMotion); ok {
		e.motion, _ = b.Bool()
	}
	if b, ok := s.Get(sensor.FeatOccupancy); ok {
		e.occupied, _ = b.Bool()
	}
	if b, ok := s.Get(sensor.FeatWaterLeak); ok {
		e.waterLeak, _ = b.Bool()
		if e.waterLeak {
			e.waterTTL = 10
		}
	}
	if b, ok := s.Get(sensor.FeatWindowOpen); ok {
		e.windowOpen, _ = b.Bool()
	}
	if b, ok := s.Get(sensor.FeatDoorOpen); ok {
		e.doorOpen, _ = b.Bool()
	}
	if n, ok := s.Number(sensor.FeatHumidity); ok {
		e.humidity = n
	}
}
