package home

import (
	"fmt"
	"sort"
	"sync"

	"iotsid/internal/instr"
)

// Home ties the environment to a device fleet and routes instructions.
type Home struct {
	env *Environment

	mu      sync.RWMutex
	devices map[string]Device
}

// New builds an empty home around an environment.
func New(env *Environment) *Home {
	return &Home{env: env, devices: make(map[string]Device)}
}

// Env returns the home's environment.
func (h *Home) Env() *Environment { return h.env }

// AddDevice registers a device; duplicate IDs are an error.
func (h *Home) AddDevice(d Device) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if d.ID() == "" {
		return fmt.Errorf("home: device with empty ID")
	}
	if _, dup := h.devices[d.ID()]; dup {
		return fmt.Errorf("home: duplicate device ID %q", d.ID())
	}
	h.devices[d.ID()] = d
	return nil
}

// Device looks a device up by ID.
func (h *Home) Device(id string) (Device, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	d, ok := h.devices[id]
	return d, ok
}

// Devices lists every device sorted by ID.
func (h *Home) Devices() []Device {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]Device, 0, len(h.devices))
	for _, d := range h.devices {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// DeviceByCategory returns the first device of a category (sorted by ID),
// or false if the home has none.
func (h *Home) DeviceByCategory(c instr.Category) (Device, bool) {
	for _, d := range h.Devices() {
		if d.Category() == c {
			return d, true
		}
	}
	return nil, false
}

// Execute routes an instruction to its device.
func (h *Home) Execute(in instr.Instruction) error {
	h.mu.RLock()
	d, ok := h.devices[in.DeviceID]
	h.mu.RUnlock()
	if !ok {
		return fmt.Errorf("home: no device %q", in.DeviceID)
	}
	if err := d.Execute(in); err != nil {
		return fmt.Errorf("execute %s on %s: %w", in.Op, in.DeviceID, err)
	}
	return nil
}

// StandardDeviceIDs lists the IDs NewStandard creates, one per category.
var StandardDeviceIDs = map[instr.Category]string{
	instr.CatAlarm:           "alarm-hub-1",
	instr.CatKitchen:         "cooker-1",
	instr.CatEntertainment:   "tv-1",
	instr.CatAirConditioning: "aircon-1",
	instr.CatCurtain:         "curtain-1",
	instr.CatLighting:        "light-1",
	instr.CatWindowDoorLock:  "window-1",
	instr.CatVacuum:          "vacuum-1",
	instr.CatCamera:          "camera-1",
}

// standardLockID is the second window_door_lock device NewStandard creates.
const standardLockID = "lock-1"

// NewStandard builds the reference deployment: one device per Table I
// category plus a smart lock, all bound to a fresh environment.
func NewStandard(cfg EnvConfig) (*Home, error) {
	env := NewEnvironment(cfg)
	h := New(env)
	devices := []Device{
		NewAlarmHub(StandardDeviceIDs[instr.CatAlarm], env),
		NewCooker(StandardDeviceIDs[instr.CatKitchen], env),
		NewTV(StandardDeviceIDs[instr.CatEntertainment], env),
		NewAirConditioner(StandardDeviceIDs[instr.CatAirConditioning], env),
		NewCurtain(StandardDeviceIDs[instr.CatCurtain], env),
		NewLight(StandardDeviceIDs[instr.CatLighting], env),
		NewWindowActuator(StandardDeviceIDs[instr.CatWindowDoorLock], env),
		NewDoorLock(standardLockID, env),
		NewVacuum(StandardDeviceIDs[instr.CatVacuum], env),
		NewCamera(StandardDeviceIDs[instr.CatCamera], env),
	}
	for _, d := range devices {
		if err := h.AddDevice(d); err != nil {
			return nil, err
		}
	}
	return h, nil
}
