package home

import (
	"fmt"

	"iotsid/internal/instr"
)

// Device is an actuating smart-home appliance. Execute applies a control or
// status instruction; State exposes the device's raw vendor-style state map
// for the protocol substrates to serve.
type Device interface {
	ID() string
	Category() instr.Category
	Execute(in instr.Instruction) error
	State() map[string]any
}

// OpError reports an opcode a device does not implement.
type OpError struct {
	DeviceID string
	Op       string
}

// Error implements error.
func (e *OpError) Error() string {
	return fmt.Sprintf("home: device %q does not implement op %q", e.DeviceID, e.Op)
}

type baseDevice struct {
	id  string
	cat instr.Category
	env *Environment
}

func (d *baseDevice) ID() string               { return d.id }
func (d *baseDevice) Category() instr.Category { return d.cat }

// WindowActuator opens and closes a motorised window.
type WindowActuator struct{ baseDevice }

// NewWindowActuator builds a window actuator bound to the environment.
func NewWindowActuator(id string, env *Environment) *WindowActuator {
	return &WindowActuator{baseDevice{id: id, cat: instr.CatWindowDoorLock, env: env}}
}

// Execute applies window.open / window.close / window.get_state.
func (d *WindowActuator) Execute(in instr.Instruction) error {
	d.env.mu.Lock()
	defer d.env.mu.Unlock()
	switch in.Op {
	case "window.open":
		d.env.windowOpen = true
	case "window.close":
		d.env.windowOpen = false
	case "window.get_state":
		// Status read; no mutation.
	default:
		return &OpError{DeviceID: d.id, Op: in.Op}
	}
	return nil
}

// State reports the window contact.
func (d *WindowActuator) State() map[string]any {
	d.env.mu.Lock()
	defer d.env.mu.Unlock()
	status := "close"
	if d.env.windowOpen {
		status = "open"
	}
	return map[string]any{"status": status}
}

// DoorLock is a smart lock plus door actuator.
type DoorLock struct{ baseDevice }

// NewDoorLock builds a smart lock bound to the environment.
func NewDoorLock(id string, env *Environment) *DoorLock {
	return &DoorLock{baseDevice{id: id, cat: instr.CatWindowDoorLock, env: env}}
}

// Execute applies lock/door control and status ops.
func (d *DoorLock) Execute(in instr.Instruction) error {
	d.env.mu.Lock()
	defer d.env.mu.Unlock()
	switch in.Op {
	case "lock.lock":
		d.env.doorLocked = true
	case "lock.unlock":
		d.env.doorLocked = false
	case "door.open":
		d.env.doorOpen = true
		d.env.doorLocked = false
	case "door.close":
		d.env.doorOpen = false
	case "lock.get_state", "door.get_state":
	default:
		return &OpError{DeviceID: d.id, Op: in.Op}
	}
	return nil
}

// State reports lock and door contact.
func (d *DoorLock) State() map[string]any {
	d.env.mu.Lock()
	defer d.env.mu.Unlock()
	lock := float64(0)
	if d.env.doorLocked {
		lock = 1
	}
	door := "close"
	if d.env.doorOpen {
		door = "open"
	}
	return map[string]any{"lock_state": lock, "door_status": door}
}

// Light is a dimmable smart lamp.
type Light struct {
	baseDevice
	on         bool
	brightness int // 0..100
}

// NewLight builds a lamp bound to the environment.
func NewLight(id string, env *Environment) *Light {
	return &Light{baseDevice: baseDevice{id: id, cat: instr.CatLighting, env: env}, brightness: 100}
}

// Execute applies light control and status ops.
func (d *Light) Execute(in instr.Instruction) error {
	d.env.mu.Lock()
	defer d.env.mu.Unlock()
	switch in.Op {
	case "light.on":
		d.setOn(true)
	case "light.off":
		d.setOn(false)
	case "light.toggle":
		d.setOn(!d.on)
	case "light.set_brightness":
		b, ok := numArg(in.Args, "brightness")
		if !ok || b < 0 || b > 100 {
			return fmt.Errorf("home: light %q: invalid brightness arg", d.id)
		}
		d.brightness = int(b)
	case "light.set_color":
		if _, ok := in.Args["color"]; !ok {
			return fmt.Errorf("home: light %q: missing color arg", d.id)
		}
	case "light.get_state":
	default:
		return &OpError{DeviceID: d.id, Op: in.Op}
	}
	return nil
}

func (d *Light) setOn(on bool) {
	if on == d.on {
		return
	}
	d.on = on
	if on {
		d.env.lightsOn++
		d.env.devicePower += 9
	} else {
		d.env.lightsOn--
		d.env.devicePower -= 9
	}
}

// State reports power and brightness.
func (d *Light) State() map[string]any {
	d.env.mu.Lock()
	defer d.env.mu.Unlock()
	power := "off"
	if d.on {
		power = "on"
	}
	return map[string]any{"power": power, "brightness": float64(d.brightness)}
}

// AirConditioner drives the HVAC.
type AirConditioner struct{ baseDevice }

// NewAirConditioner builds an AC bound to the environment.
func NewAirConditioner(id string, env *Environment) *AirConditioner {
	return &AirConditioner{baseDevice{id: id, cat: instr.CatAirConditioning, env: env}}
}

// Execute applies AC/thermostat control and status ops.
func (d *AirConditioner) Execute(in instr.Instruction) error {
	d.env.mu.Lock()
	defer d.env.mu.Unlock()
	switch in.Op {
	case "aircon.on":
		if d.env.hvac == HVACOff {
			d.env.hvac = HVACCool
			d.env.devicePower += 900
		}
	case "aircon.off":
		if d.env.hvac != HVACOff {
			d.env.hvac = HVACOff
			d.env.devicePower -= 900
		}
	case "aircon.set_cool":
		if d.env.hvac == HVACOff {
			d.env.devicePower += 900
		}
		d.env.hvac = HVACCool
	case "aircon.set_heat":
		if d.env.hvac == HVACOff {
			d.env.devicePower += 900
		}
		d.env.hvac = HVACHeat
	case "aircon.set_temp", "thermostat.set_target":
		t, ok := numArg(in.Args, "target")
		if !ok || t < 10 || t > 32 {
			return fmt.Errorf("home: aircon %q: invalid target arg", d.id)
		}
		d.env.hvacTarget = t
	case "aircon.get_state", "thermostat.get_temp":
	default:
		return &OpError{DeviceID: d.id, Op: in.Op}
	}
	return nil
}

// State reports HVAC mode and target.
func (d *AirConditioner) State() map[string]any {
	d.env.mu.Lock()
	defer d.env.mu.Unlock()
	mode := "off"
	switch d.env.hvac {
	case HVACCool:
		mode = "cool"
	case HVACHeat:
		mode = "heat"
	}
	return map[string]any{"mode": mode, "target": d.env.hvacTarget, "indoor_temp": round1(d.env.tempIn)}
}

// Curtain is a motorised curtain.
type Curtain struct{ baseDevice }

// NewCurtain builds a curtain bound to the environment.
func NewCurtain(id string, env *Environment) *Curtain {
	return &Curtain{baseDevice{id: id, cat: instr.CatCurtain, env: env}}
}

// Execute applies curtain control and status ops.
func (d *Curtain) Execute(in instr.Instruction) error {
	d.env.mu.Lock()
	defer d.env.mu.Unlock()
	switch in.Op {
	case "curtain.open":
		d.env.curtainPos = 1
	case "curtain.close":
		d.env.curtainPos = 0
	case "curtain.set_position":
		p, ok := numArg(in.Args, "position")
		if !ok || p < 0 || p > 100 {
			return fmt.Errorf("home: curtain %q: invalid position arg", d.id)
		}
		d.env.curtainPos = p / 100
	case "blind.tilt":
	case "curtain.get_position":
	default:
		return &OpError{DeviceID: d.id, Op: in.Op}
	}
	return nil
}

// State reports curtain position in percent.
func (d *Curtain) State() map[string]any {
	d.env.mu.Lock()
	defer d.env.mu.Unlock()
	return map[string]any{"position": round1(d.env.curtainPos * 100)}
}

// TV is the entertainment device.
type TV struct {
	baseDevice
	volume  int
	channel int
}

// NewTV builds a TV bound to the environment.
func NewTV(id string, env *Environment) *TV {
	return &TV{baseDevice: baseDevice{id: id, cat: instr.CatEntertainment, env: env}, volume: 30, channel: 1}
}

// Execute applies TV/stereo control and status ops.
func (d *TV) Execute(in instr.Instruction) error {
	d.env.mu.Lock()
	defer d.env.mu.Unlock()
	switch in.Op {
	case "tv.on", "stereo.play":
		if !d.env.tvOn {
			d.env.tvOn = true
			d.env.devicePower += 120
		}
	case "tv.off", "stereo.pause":
		if d.env.tvOn {
			d.env.tvOn = false
			d.env.devicePower -= 120
		}
	case "tv.set_volume", "stereo.set_volume":
		v, ok := numArg(in.Args, "volume")
		if !ok || v < 0 || v > 100 {
			return fmt.Errorf("home: tv %q: invalid volume arg", d.id)
		}
		d.volume = int(v)
	case "tv.set_channel":
		c, ok := numArg(in.Args, "channel")
		if !ok || c < 1 {
			return fmt.Errorf("home: tv %q: invalid channel arg", d.id)
		}
		d.channel = int(c)
	case "tv.get_state", "stereo.get_state":
	default:
		return &OpError{DeviceID: d.id, Op: in.Op}
	}
	return nil
}

// State reports power, volume and channel.
func (d *TV) State() map[string]any {
	d.env.mu.Lock()
	defer d.env.mu.Unlock()
	power := "off"
	if d.env.tvOn {
		power = "on"
	}
	return map[string]any{"power": power, "volume": float64(d.volume), "channel": float64(d.channel)}
}

// Cooker is the kitchen appliance cluster (rice cooker / oven / dishwasher).
type Cooker struct {
	baseDevice
	mode string
}

// NewCooker builds a kitchen appliance bound to the environment.
func NewCooker(id string, env *Environment) *Cooker {
	return &Cooker{baseDevice: baseDevice{id: id, cat: instr.CatKitchen, env: env}, mode: "idle"}
}

// Execute applies kitchen control and status ops.
func (d *Cooker) Execute(in instr.Instruction) error {
	d.env.mu.Lock()
	defer d.env.mu.Unlock()
	switch in.Op {
	case "cooker.start", "oven.preheat", "dishwasher.start":
		if !d.env.cooking {
			d.env.cooking = true
			d.env.devicePower += 1500
		}
		d.mode = "running"
	case "cooker.stop", "oven.off", "dishwasher.stop":
		if d.env.cooking {
			d.env.cooking = false
			d.env.devicePower -= 1500
		}
		d.mode = "idle"
	case "cooker.set_mode":
		m, ok := in.Args["mode"].(string)
		if !ok || m == "" {
			return fmt.Errorf("home: cooker %q: missing mode arg", d.id)
		}
		d.mode = m
	case "fridge.set_temp":
		t, ok := numArg(in.Args, "target")
		if !ok || t < -25 || t > 10 {
			return fmt.Errorf("home: cooker %q: invalid fridge target", d.id)
		}
	case "cooker.get_state", "oven.get_temp", "fridge.get_temp":
	default:
		return &OpError{DeviceID: d.id, Op: in.Op}
	}
	return nil
}

// State reports mode and running flag.
func (d *Cooker) State() map[string]any {
	d.env.mu.Lock()
	defer d.env.mu.Unlock()
	running := float64(0)
	if d.env.cooking {
		running = 1
	}
	return map[string]any{"mode": d.mode, "running": running}
}

// Vacuum is the sweeping robot.
type Vacuum struct{ baseDevice }

// NewVacuum builds a vacuum bound to the environment.
func NewVacuum(id string, env *Environment) *Vacuum {
	return &Vacuum{baseDevice{id: id, cat: instr.CatVacuum, env: env}}
}

// Execute applies vacuum/mower control and status ops.
func (d *Vacuum) Execute(in instr.Instruction) error {
	d.env.mu.Lock()
	defer d.env.mu.Unlock()
	switch in.Op {
	case "vacuum.start", "mower.start":
		if !d.env.vacuumOn {
			d.env.vacuumOn = true
			d.env.devicePower += 60
		}
	case "vacuum.stop", "vacuum.dock", "mower.stop":
		if d.env.vacuumOn {
			d.env.vacuumOn = false
			d.env.devicePower -= 60
		}
	case "vacuum.get_state":
	default:
		return &OpError{DeviceID: d.id, Op: in.Op}
	}
	return nil
}

// State reports running flag.
func (d *Vacuum) State() map[string]any {
	d.env.mu.Lock()
	defer d.env.mu.Unlock()
	state := "docked"
	if d.env.vacuumOn {
		state = "cleaning"
	}
	return map[string]any{"state": state}
}

// Camera is the security camera; it keeps an alert log for the warning
// linkage experiment (Fig 7).
type Camera struct {
	baseDevice
	recording bool
	alerts    []string
}

// NewCamera builds a camera bound to the environment.
func NewCamera(id string, env *Environment) *Camera {
	return &Camera{baseDevice: baseDevice{id: id, cat: instr.CatCamera, env: env}}
}

// Execute applies camera control and status ops.
func (d *Camera) Execute(in instr.Instruction) error {
	d.env.mu.Lock()
	defer d.env.mu.Unlock()
	switch in.Op {
	case "camera.on":
		d.env.cameraOn = true
	case "camera.off":
		d.env.cameraOn = false
	case "camera.record":
		d.recording = true
	case "camera.rotate":
	case "camera.alert_user":
		msg, _ := in.Args["message"].(string)
		if msg == "" {
			msg = "warning"
		}
		d.alerts = append(d.alerts, msg)
	case "camera.get_state", "camera.get_stream":
	default:
		return &OpError{DeviceID: d.id, Op: in.Op}
	}
	return nil
}

// Alerts returns a copy of the pushed warnings.
func (d *Camera) Alerts() []string {
	d.env.mu.Lock()
	defer d.env.mu.Unlock()
	out := make([]string, len(d.alerts))
	copy(out, d.alerts)
	return out
}

// State reports monitoring/recording flags and alert count.
func (d *Camera) State() map[string]any {
	d.env.mu.Lock()
	defer d.env.mu.Unlock()
	power := "off"
	if d.env.cameraOn {
		power = "on"
	}
	rec := float64(0)
	if d.recording {
		rec = 1
	}
	return map[string]any{"power": power, "recording": rec, "alerts": float64(len(d.alerts))}
}

// AlarmHub arms the home and drives the siren.
type AlarmHub struct{ baseDevice }

// NewAlarmHub builds an alarm hub bound to the environment.
func NewAlarmHub(id string, env *Environment) *AlarmHub {
	return &AlarmHub{baseDevice{id: id, cat: instr.CatAlarm, env: env}}
}

// Execute applies alarm control and status ops.
func (d *AlarmHub) Execute(in instr.Instruction) error {
	d.env.mu.Lock()
	defer d.env.mu.Unlock()
	switch in.Op {
	case "alarm.arm":
		d.env.alarmArmed = true
	case "alarm.disarm":
		d.env.alarmArmed = false
		d.env.sirenActive = false
	case "alarm.siren_on":
		d.env.sirenActive = true
	case "alarm.siren_off":
		d.env.sirenActive = false
	case "alarm.test":
	case "alarm.get_state", "alarm.get_smoke", "alarm.get_gas", "alarm.get_water":
	default:
		return &OpError{DeviceID: d.id, Op: in.Op}
	}
	return nil
}

// State reports arm/siren plus the hazard sensors the hub owns.
func (d *AlarmHub) State() map[string]any {
	d.env.mu.Lock()
	defer d.env.mu.Unlock()
	return map[string]any{
		"armed":  boolTo01(d.env.alarmArmed),
		"siren":  boolTo01(d.env.sirenActive),
		"smoke":  boolTo01(d.env.smoke),
		"gas":    boolTo01(d.env.gas),
		"water":  boolTo01(d.env.waterLeak),
		"motion": boolTo01(d.env.motion),
	}
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func numArg(args map[string]any, key string) (float64, bool) {
	v, ok := args[key]
	if !ok {
		return 0, false
	}
	switch t := v.(type) {
	case float64:
		return t, true
	case int:
		return float64(t), true
	case int64:
		return float64(t), true
	default:
		return 0, false
	}
}
