package home

import (
	"testing"
	"time"

	"iotsid/internal/instr"
	"iotsid/internal/sensor"
)

func buildIn(t *testing.T, op, dev string, args map[string]any) instr.Instruction {
	t.Helper()
	in, err := instr.BuiltinRegistry().Build(op, dev, instr.OriginUser, args)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestTVControls(t *testing.T) {
	h := newTestHome(t)
	exec(t, h, "tv.on", "tv-1", nil)
	exec(t, h, "tv.set_volume", "tv-1", map[string]any{"volume": 55})
	exec(t, h, "tv.set_channel", "tv-1", map[string]any{"channel": 7})
	d, _ := h.Device("tv-1")
	st := d.State()
	if st["power"] != "on" || st["volume"].(float64) != 55 || st["channel"].(float64) != 7 {
		t.Errorf("tv state = %v", st)
	}
	// Idempotent power accounting.
	before, _ := h.Env().Snapshot().Number(sensor.FeatPowerDraw)
	exec(t, h, "tv.on", "tv-1", nil)
	after, _ := h.Env().Snapshot().Number(sensor.FeatPowerDraw)
	if before != after {
		t.Error("double tv.on changed power draw")
	}
	exec(t, h, "tv.off", "tv-1", nil)
	// Bad args.
	if err := h.Execute(buildIn(t, "tv.set_volume", "tv-1", map[string]any{"volume": 999})); err == nil {
		t.Error("want volume error")
	}
	if err := h.Execute(buildIn(t, "tv.set_channel", "tv-1", map[string]any{"channel": 0})); err == nil {
		t.Error("want channel error")
	}
	// Stereo aliases drive the same device.
	exec(t, h, "stereo.play", "tv-1", nil)
	if d.State()["power"] != "on" {
		t.Error("stereo.play did not power on")
	}
	exec(t, h, "stereo.pause", "tv-1", nil)
}

func TestCookerModesAndFridge(t *testing.T) {
	h := newTestHome(t)
	exec(t, h, "cooker.set_mode", "cooker-1", map[string]any{"mode": "steam"})
	d, _ := h.Device("cooker-1")
	if d.State()["mode"] != "steam" {
		t.Errorf("mode = %v", d.State()["mode"])
	}
	if err := h.Execute(buildIn(t, "cooker.set_mode", "cooker-1", nil)); err == nil {
		t.Error("want missing mode error")
	}
	exec(t, h, "fridge.set_temp", "cooker-1", map[string]any{"target": 4})
	if err := h.Execute(buildIn(t, "fridge.set_temp", "cooker-1", map[string]any{"target": 50})); err == nil {
		t.Error("want fridge target error")
	}
	// Dishwasher/oven aliases toggle the cooking flag.
	exec(t, h, "dishwasher.start", "cooker-1", nil)
	if d.State()["running"].(float64) != 1 {
		t.Error("dishwasher.start did not run")
	}
	exec(t, h, "oven.off", "cooker-1", nil)
	if d.State()["running"].(float64) != 0 {
		t.Error("oven.off did not stop")
	}
}

func TestVacuumAndMower(t *testing.T) {
	h := newTestHome(t)
	d, _ := h.Device("vacuum-1")
	exec(t, h, "mower.start", "vacuum-1", nil)
	if d.State()["state"] != "cleaning" {
		t.Errorf("state = %v", d.State()["state"])
	}
	before, _ := h.Env().Snapshot().Number(sensor.FeatPowerDraw)
	exec(t, h, "vacuum.start", "vacuum-1", nil) // idempotent
	after, _ := h.Env().Snapshot().Number(sensor.FeatPowerDraw)
	if before != after {
		t.Error("double start changed power")
	}
	exec(t, h, "vacuum.dock", "vacuum-1", nil)
	if d.State()["state"] != "docked" {
		t.Errorf("state = %v", d.State()["state"])
	}
}

func TestCameraAndAlarmControls(t *testing.T) {
	h := newTestHome(t)
	exec(t, h, "camera.on", "camera-1", nil)
	exec(t, h, "camera.record", "camera-1", nil)
	exec(t, h, "camera.rotate", "camera-1", nil)
	d, _ := h.Device("camera-1")
	st := d.State()
	if st["power"] != "on" || st["recording"].(float64) != 1 {
		t.Errorf("camera state = %v", st)
	}
	exec(t, h, "camera.off", "camera-1", nil)

	exec(t, h, "alarm.arm", "alarm-hub-1", nil)
	exec(t, h, "alarm.siren_on", "alarm-hub-1", nil)
	a, _ := h.Device("alarm-hub-1")
	if a.State()["armed"].(float64) != 1 || a.State()["siren"].(float64) != 1 {
		t.Errorf("alarm state = %v", a.State())
	}
	// Siren drives the noise level.
	h.Env().Step(time.Minute)
	if n, _ := h.Env().Snapshot().Number(sensor.FeatNoise); n < 60 {
		t.Errorf("noise with siren = %v", n)
	}
	// Disarm silences the siren too.
	exec(t, h, "alarm.disarm", "alarm-hub-1", nil)
	if a.State()["siren"].(float64) != 0 {
		t.Error("disarm left the siren on")
	}
	exec(t, h, "alarm.test", "alarm-hub-1", nil)
}

func TestCurtainPositionAndLight(t *testing.T) {
	h := newTestHome(t)
	exec(t, h, "curtain.set_position", "curtain-1", map[string]any{"position": 25})
	d, _ := h.Device("curtain-1")
	if d.State()["position"].(float64) != 25 {
		t.Errorf("position = %v", d.State()["position"])
	}
	if err := h.Execute(buildIn(t, "curtain.set_position", "curtain-1", map[string]any{"position": 150})); err == nil {
		t.Error("want position error")
	}
	exec(t, h, "blind.tilt", "curtain-1", nil)
	// light toggle + color.
	exec(t, h, "light.toggle", "light-1", nil)
	l, _ := h.Device("light-1")
	if l.State()["power"] != "on" {
		t.Error("toggle did not turn on")
	}
	exec(t, h, "light.set_color", "light-1", map[string]any{"color": "warm"})
	if err := h.Execute(buildIn(t, "light.set_color", "light-1", nil)); err == nil {
		t.Error("want missing color error")
	}
	exec(t, h, "light.toggle", "light-1", nil)
	if l.State()["power"] != "off" {
		t.Error("toggle did not turn off")
	}
}

func TestWeatherEvolvesAndHazardsOccur(t *testing.T) {
	env := NewEnvironment(EnvConfig{Seed: 77})
	seenWeather := map[string]bool{}
	var sawSmoke, sawLeak bool
	for i := 0; i < 20000; i++ {
		env.Step(5 * time.Minute)
		s := env.Snapshot()
		seenWeather[s.LabelOr(sensor.FeatWeather, "")] = true
		if s.Bool(sensor.FeatSmoke) {
			sawSmoke = true
		}
		if s.Bool(sensor.FeatWaterLeak) {
			sawLeak = true
		}
	}
	if len(seenWeather) < 3 {
		t.Errorf("weather states seen = %v", seenWeather)
	}
	if !sawSmoke || !sawLeak {
		t.Errorf("hazards never occurred: smoke=%v leak=%v", sawSmoke, sawLeak)
	}
	// Physical plausibility after a long run.
	s := env.Snapshot()
	if n, _ := s.Number(sensor.FeatAirQuality); n < 15 || n > 300 {
		t.Errorf("AQI drifted out of bounds: %v", n)
	}
	if n, _ := s.Number(sensor.FeatTempIndoor); n < -30 || n > 60 {
		t.Errorf("indoor temperature implausible: %v", n)
	}
}

func TestSeasonalColdAllowsSnow(t *testing.T) {
	env := NewEnvironment(EnvConfig{Seed: 3, SeasonalMid: -2})
	sawSnow := false
	for i := 0; i < 20000 && !sawSnow; i++ {
		env.Step(5 * time.Minute)
		if env.Snapshot().LabelOr(sensor.FeatWeather, "") == sensor.WeatherSnow {
			sawSnow = true
		}
	}
	if !sawSnow {
		t.Error("cold climate never snowed")
	}
}

func TestDeviceByCategoryMiss(t *testing.T) {
	h := New(NewEnvironment(EnvConfig{}))
	if _, ok := h.DeviceByCategory(instr.CatCamera); ok {
		t.Error("empty home claims a camera")
	}
}
