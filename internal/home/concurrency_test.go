package home

import (
	"sync"
	"testing"
	"time"

	"iotsid/internal/instr"
)

// TestConcurrentStepExecuteSnapshot drives the environment stepper, device
// execution and snapshot readers from separate goroutines — the shape of a
// live deployment (physics loop + protocol servers + collector). Run under
// -race this pins down the environment's locking discipline.
func TestConcurrentStepExecuteSnapshot(t *testing.T) {
	h, err := NewStandard(EnvConfig{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	reg := instr.BuiltinRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Physics loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Env().Step(time.Second)
			}
		}
	}()
	// Device actuation loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ops := []struct{ op, dev string }{
			{"light.on", "light-1"}, {"light.off", "light-1"},
			{"window.open", "window-1"}, {"window.close", "window-1"},
			{"aircon.set_cool", "aircon-1"}, {"aircon.off", "aircon-1"},
		}
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
				in, err := reg.Build(ops[i%len(ops)].op, ops[i%len(ops)].dev, instr.OriginUser, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if err := h.Execute(in); err != nil {
					t.Error(err)
					return
				}
				i++
			}
		}
	}()
	// Snapshot + device-state readers (the collector's view).
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					snap := h.Env().Snapshot()
					if err := snap.Validate(); err != nil {
						t.Errorf("snapshot invalid under concurrency: %v", err)
						return
					}
					for _, d := range h.Devices() {
						_ = d.State()
					}
				}
			}
		}()
	}

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
}
