package home

import (
	"errors"
	"testing"
	"time"

	"iotsid/internal/instr"
	"iotsid/internal/sensor"
)

func newTestHome(t *testing.T) *Home {
	t.Helper()
	h, err := NewStandard(EnvConfig{Seed: 1})
	if err != nil {
		t.Fatalf("NewStandard: %v", err)
	}
	return h
}

func exec(t *testing.T, h *Home, op, deviceID string, args map[string]any) {
	t.Helper()
	in, err := instr.BuiltinRegistry().Build(op, deviceID, instr.OriginUser, args)
	if err != nil {
		t.Fatalf("build %s: %v", op, err)
	}
	if err := h.Execute(in); err != nil {
		t.Fatalf("execute %s: %v", op, err)
	}
}

func TestNewStandardDeployment(t *testing.T) {
	h := newTestHome(t)
	if got := len(h.Devices()); got != 10 {
		t.Fatalf("devices = %d, want 10", got)
	}
	for cat, id := range StandardDeviceIDs {
		d, ok := h.Device(id)
		if !ok {
			t.Errorf("device %q missing", id)
			continue
		}
		if d.Category() != cat {
			t.Errorf("device %q category = %v, want %v", id, d.Category(), cat)
		}
	}
	for _, c := range instr.Categories() {
		if _, ok := h.DeviceByCategory(c); !ok {
			t.Errorf("no device for category %v", c)
		}
	}
}

func TestAddDeviceValidation(t *testing.T) {
	h := New(NewEnvironment(EnvConfig{}))
	if err := h.AddDevice(NewLight("", h.Env())); err == nil {
		t.Error("want error for empty ID")
	}
	if err := h.AddDevice(NewLight("l", h.Env())); err != nil {
		t.Fatalf("AddDevice: %v", err)
	}
	if err := h.AddDevice(NewLight("l", h.Env())); err == nil {
		t.Error("want error for duplicate ID")
	}
}

func TestExecuteRouting(t *testing.T) {
	h := newTestHome(t)
	in, _ := instr.BuiltinRegistry().Build("light.on", "no-such-device", instr.OriginUser, nil)
	if err := h.Execute(in); err == nil {
		t.Error("want error for unknown device")
	}
	// Wrong op for the device surfaces an OpError.
	in, _ = instr.BuiltinRegistry().Build("light.on", "window-1", instr.OriginUser, nil)
	err := h.Execute(in)
	var opErr *OpError
	if !errors.As(err, &opErr) {
		t.Errorf("want OpError, got %v", err)
	}
}

func TestWindowAffectsSnapshotAndPhysics(t *testing.T) {
	h := newTestHome(t)
	if h.Env().Snapshot().Bool(sensor.FeatWindowOpen) {
		t.Fatal("window should start closed")
	}
	exec(t, h, "window.open", "window-1", nil)
	if !h.Env().Snapshot().Bool(sensor.FeatWindowOpen) {
		t.Fatal("window.open not reflected in snapshot")
	}
	exec(t, h, "window.close", "window-1", nil)
	if h.Env().Snapshot().Bool(sensor.FeatWindowOpen) {
		t.Fatal("window.close not reflected")
	}
}

func TestLockAndDoor(t *testing.T) {
	h := newTestHome(t)
	snap := h.Env().Snapshot()
	if snap.LabelOr(sensor.FeatDoorLock, "") != sensor.LockLocked {
		t.Fatal("door should start locked")
	}
	exec(t, h, "lock.unlock", "lock-1", nil)
	exec(t, h, "door.open", "lock-1", nil)
	snap = h.Env().Snapshot()
	if snap.LabelOr(sensor.FeatDoorLock, "") != sensor.LockUnlocked {
		t.Error("unlock not reflected")
	}
	if !snap.Bool(sensor.FeatDoorOpen) {
		t.Error("door open not reflected")
	}
	// door.open on a locked door unlocks it (physical necessity).
	exec(t, h, "door.close", "lock-1", nil)
	exec(t, h, "lock.lock", "lock-1", nil)
	exec(t, h, "door.open", "lock-1", nil)
	if h.Env().Snapshot().LabelOr(sensor.FeatDoorLock, "") != sensor.LockUnlocked {
		t.Error("opening the door must release the lock")
	}
}

func TestLightPowerAndIlluminance(t *testing.T) {
	h := newTestHome(t)
	before, _ := h.Env().Snapshot().Number(sensor.FeatPowerDraw)
	exec(t, h, "light.on", "light-1", nil)
	after, _ := h.Env().Snapshot().Number(sensor.FeatPowerDraw)
	if after <= before {
		t.Errorf("power draw should rise with light on: %v -> %v", before, after)
	}
	// Idempotent: double-on does not double-count.
	exec(t, h, "light.on", "light-1", nil)
	again, _ := h.Env().Snapshot().Number(sensor.FeatPowerDraw)
	if again != after {
		t.Errorf("double light.on changed power: %v -> %v", after, again)
	}
	exec(t, h, "light.off", "light-1", nil)
	off, _ := h.Env().Snapshot().Number(sensor.FeatPowerDraw)
	if off != before {
		t.Errorf("light.off should restore power: %v, want %v", off, before)
	}
}

func TestLightArgsValidation(t *testing.T) {
	h := newTestHome(t)
	in, _ := instr.BuiltinRegistry().Build("light.set_brightness", "light-1", instr.OriginUser, map[string]any{"brightness": 150})
	if err := h.Execute(in); err == nil {
		t.Error("want error for out-of-range brightness")
	}
	in, _ = instr.BuiltinRegistry().Build("light.set_brightness", "light-1", instr.OriginUser, nil)
	if err := h.Execute(in); err == nil {
		t.Error("want error for missing brightness")
	}
	exec(t, h, "light.set_brightness", "light-1", map[string]any{"brightness": 40})
	d, _ := h.Device("light-1")
	if b := d.State()["brightness"].(float64); b != 40 {
		t.Errorf("brightness = %v", b)
	}
}

func TestAirconHeatsAndCools(t *testing.T) {
	h := newTestHome(t)
	env := h.Env()
	exec(t, h, "aircon.set_heat", "aircon-1", nil)
	exec(t, h, "thermostat.set_target", "aircon-1", map[string]any{"target": 26})
	start, _ := env.Snapshot().Number(sensor.FeatTempIndoor)
	for i := 0; i < 60; i++ {
		env.Step(time.Minute)
	}
	warm, _ := env.Snapshot().Number(sensor.FeatTempIndoor)
	if warm <= start {
		t.Errorf("heating did not raise indoor temp: %v -> %v", start, warm)
	}
	exec(t, h, "aircon.set_cool", "aircon-1", nil)
	exec(t, h, "thermostat.set_target", "aircon-1", map[string]any{"target": 18})
	for i := 0; i < 60; i++ {
		env.Step(time.Minute)
	}
	cool, _ := env.Snapshot().Number(sensor.FeatTempIndoor)
	if cool >= warm {
		t.Errorf("cooling did not lower indoor temp: %v -> %v", warm, cool)
	}
	in, _ := instr.BuiltinRegistry().Build("aircon.set_temp", "aircon-1", instr.OriginUser, map[string]any{"target": 99})
	if err := h.Execute(in); err == nil {
		t.Error("want error for silly target")
	}
}

func TestCookingRaisesAQIAndSmokeRisk(t *testing.T) {
	h, err := NewStandard(EnvConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	env := h.Env()
	base, _ := env.Snapshot().Number(sensor.FeatAirQuality)
	exec(t, h, "cooker.start", "cooker-1", nil)
	for i := 0; i < 120; i++ {
		env.Step(time.Minute)
	}
	cookAQI, _ := env.Snapshot().Number(sensor.FeatAirQuality)
	if cookAQI <= base {
		t.Errorf("cooking should raise AQI: %v -> %v", base, cookAQI)
	}
}

func TestCameraAlerts(t *testing.T) {
	h := newTestHome(t)
	exec(t, h, "camera.alert_user", "camera-1", map[string]any{"message": "window opened"})
	exec(t, h, "camera.alert_user", "camera-1", nil)
	d, _ := h.Device("camera-1")
	cam, ok := d.(*Camera)
	if !ok {
		t.Fatal("camera-1 is not a *Camera")
	}
	alerts := cam.Alerts()
	if len(alerts) != 2 || alerts[0] != "window opened" || alerts[1] != "warning" {
		t.Errorf("alerts = %v", alerts)
	}
}

func TestEnvironmentStepAdvancesClock(t *testing.T) {
	env := NewEnvironment(EnvConfig{Seed: 1})
	before := env.Now()
	env.Step(30 * time.Minute)
	if got := env.Now().Sub(before); got != 30*time.Minute {
		t.Errorf("clock advanced %v", got)
	}
}

func TestEnvironmentSnapshotValid(t *testing.T) {
	env := NewEnvironment(EnvConfig{Seed: 9})
	for i := 0; i < 500; i++ {
		env.Step(7 * time.Minute)
		if err := env.Snapshot().Validate(); err != nil {
			t.Fatalf("step %d: invalid snapshot: %v", i, err)
		}
	}
}

func TestEnvironmentApplyOverrides(t *testing.T) {
	env := NewEnvironment(EnvConfig{Seed: 1})
	s := sensor.NewSnapshot(env.Now())
	s.Set(sensor.FeatSmoke, sensor.Bool(true))
	s.Set(sensor.FeatOccupancy, sensor.Bool(false))
	s.Set(sensor.FeatTempIndoor, sensor.Number(30))
	s.Set(sensor.FeatWeather, sensor.Label(sensor.WeatherRain))
	s.Set(sensor.FeatDoorLock, sensor.Label(sensor.LockUnlocked))
	env.Apply(s)
	snap := env.Snapshot()
	if !snap.Bool(sensor.FeatSmoke) {
		t.Error("smoke override lost")
	}
	if snap.Bool(sensor.FeatOccupancy) {
		t.Error("occupancy override lost")
	}
	if n, _ := snap.Number(sensor.FeatTempIndoor); n != 30 {
		t.Errorf("temp = %v", n)
	}
	if snap.LabelOr(sensor.FeatWeather, "") != sensor.WeatherRain {
		t.Error("weather override lost")
	}
	if snap.LabelOr(sensor.FeatDoorLock, "") != sensor.LockUnlocked {
		t.Error("lock override lost")
	}
}

func TestDeviceStatesServeVendorPayloads(t *testing.T) {
	h := newTestHome(t)
	for _, d := range h.Devices() {
		st := d.State()
		if len(st) == 0 {
			t.Errorf("device %q has empty state", d.ID())
		}
	}
	// Alarm hub exposes hazard booleans as 0/1 for the miio substrate.
	d, _ := h.Device("alarm-hub-1")
	st := d.State()
	for _, key := range []string{"armed", "siren", "smoke", "gas", "water", "motion"} {
		if _, ok := st[key].(float64); !ok {
			t.Errorf("alarm state %q not a float64 0/1", key)
		}
	}
}

func TestStatusInstructionsAreNoOps(t *testing.T) {
	h := newTestHome(t)
	before := h.Env().Snapshot()
	for _, pair := range [][2]string{
		{"window.get_state", "window-1"},
		{"lock.get_state", "lock-1"},
		{"light.get_state", "light-1"},
		{"aircon.get_state", "aircon-1"},
		{"curtain.get_position", "curtain-1"},
		{"tv.get_state", "tv-1"},
		{"cooker.get_state", "cooker-1"},
		{"vacuum.get_state", "vacuum-1"},
		{"camera.get_state", "camera-1"},
		{"alarm.get_state", "alarm-hub-1"},
	} {
		exec(t, h, pair[0], pair[1], nil)
	}
	after := h.Env().Snapshot()
	for f, v := range before.Values {
		if !after.Values[f].Equal(v) {
			t.Errorf("status op mutated %q: %v -> %v", f, v, after.Values[f])
		}
	}
}
