package survey

import (
	"fmt"

	"iotsid/internal/instr"
)

// Shares is the percentage breakdown of one instruction class's votes.
type Shares struct {
	High float64 `json:"high"`
	Low  float64 `json:"low"`
	None float64 `json:"none"`
}

// Results aggregates a respondent population into the paper's reported
// statistics.
type Results struct {
	N       int
	Control map[instr.Category]Shares // Table III
	Status  map[instr.Category]Shares
	// ControlWorsePct is the share of users who rate control instructions
	// more threatening than status instructions (Fig 4: 85.29 %).
	ControlWorsePct float64
	// CoveredPct is the share of users whose devices are all covered by
	// the Table I list (Fig 4: 91.18 %).
	CoveredPct float64
}

// Aggregate tallies a population.
func Aggregate(pop []Respondent) (Results, error) {
	if len(pop) == 0 {
		return Results{}, fmt.Errorf("survey: empty population")
	}
	res := Results{
		N:       len(pop),
		Control: make(map[instr.Category]Shares, 9),
		Status:  make(map[instr.Category]Shares, 9),
	}
	n := float64(len(pop))
	var worse, covered int
	for _, c := range instr.Categories() {
		var ch, cl, cn, sh, sl, sn int
		for _, r := range pop {
			switch r.Control[c] {
			case VoteHigh:
				ch++
			case VoteLow:
				cl++
			case VoteNone:
				cn++
			default:
				return Results{}, fmt.Errorf("survey: respondent %d missing control vote for %v", r.ID, c)
			}
			switch r.Status[c] {
			case VoteHigh:
				sh++
			case VoteLow:
				sl++
			case VoteNone:
				sn++
			default:
				return Results{}, fmt.Errorf("survey: respondent %d missing status vote for %v", r.ID, c)
			}
		}
		res.Control[c] = Shares{High: 100 * float64(ch) / n, Low: 100 * float64(cl) / n, None: 100 * float64(cn) / n}
		res.Status[c] = Shares{High: 100 * float64(sh) / n, Low: 100 * float64(sl) / n, None: 100 * float64(sn) / n}
	}
	for _, r := range pop {
		if r.ControlWorse {
			worse++
		}
		if r.Covered {
			covered++
		}
	}
	res.ControlWorsePct = 100 * float64(worse) / n
	res.CoveredPct = 100 * float64(covered) / n
	return res, nil
}

// SensitiveCategories applies the paper's rule: a category's control
// instructions are sensitive when more than half of respondents rate them
// high-threat. Returned in Table I order.
func (r Results) SensitiveCategories() []instr.Category {
	var out []instr.Category
	for _, c := range instr.Categories() {
		if r.Control[c].High > 50 {
			out = append(out, c)
		}
	}
	return out
}

// IsSensitive reports whether a category's control instructions crossed the
// 50 % high-threat threshold.
func (r Results) IsSensitive(c instr.Category) bool {
	return r.Control[c].High > 50
}
