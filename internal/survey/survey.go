// Package survey reproduces the paper's 340-user questionnaire (§IV-A,
// Tables II–III, Fig 4): per device category, users rate control and status
// instructions as high / low / no threat. The aggregate drives the sensitive
// instruction rule — a category's control instructions are *sensitive* when
// more than 50 % of respondents rate them high-threat.
//
// The paper's percentages are all integer multiples of 1/34 (the survey was
// evidently tabulated in 34ths and scaled), so the default profile stores
// exact 34th-based rationals and the simulator reproduces Table III exactly
// under quota allocation, or approximately under stochastic sampling.
package survey

import (
	"fmt"
	"math/rand"
	"sort"

	"iotsid/internal/instr"
)

// Vote is one respondent's threat rating for a class of instructions.
type Vote int

// Votes offered by the questionnaire (Table II).
const (
	VoteHigh Vote = iota + 1
	VoteLow
	VoteNone
)

// String names the vote.
func (v Vote) String() string {
	switch v {
	case VoteHigh:
		return "high"
	case VoteLow:
		return "low"
	case VoteNone:
		return "none"
	default:
		return fmt.Sprintf("vote(%d)", int(v))
	}
}

// Dist is a vote distribution in 34ths: High+Low+None must equal 34.
type Dist struct {
	High, Low, None int
}

// valid reports whether the distribution sums to 34.
func (d Dist) valid() bool {
	return d.High >= 0 && d.Low >= 0 && d.None >= 0 && d.High+d.Low+d.None == 34
}

// Profile calibrates the respondent population: per category, the control-
// and status-instruction vote distributions, plus the two Fig 4 aggregates.
type Profile struct {
	Control map[instr.Category]Dist
	Status  map[instr.Category]Dist
	// ControlWorse34 is the number of 34ths of users who consider control
	// instructions a greater threat than status instructions (Fig 4:
	// 85.29 % = 29/34).
	ControlWorse34 int
	// Covered34 is the number of 34ths of users whose owned/expected
	// devices all appear in the Table I list (Fig 4: 91.18 % = 31/34).
	Covered34 int
}

// DefaultProfile returns the calibration that reproduces Table III and
// Fig 4 exactly.
func DefaultProfile() Profile {
	return Profile{
		Control: map[instr.Category]Dist{
			instr.CatAlarm:           {High: 24, Low: 9, None: 1},  // 70.59 / 26.47 / 2.94
			instr.CatKitchen:         {High: 23, Low: 11, None: 0}, // 67.65 / 32.35 / 0
			instr.CatEntertainment:   {High: 9, Low: 25, None: 0},  // 26.47 / 73.53 / 0
			instr.CatAirConditioning: {High: 18, Low: 15, None: 1}, // 52.94 / 44.12 / 2.94
			instr.CatCurtain:         {High: 19, Low: 14, None: 1}, // 55.88 / 41.18 / 2.94
			instr.CatLighting:        {High: 22, Low: 9, None: 3},  // 64.71 / 26.47 / 8.82
			instr.CatWindowDoorLock:  {High: 32, Low: 2, None: 0},  // 94.12 / 5.88 / 0
			instr.CatVacuum:          {High: 14, Low: 18, None: 2}, // 41.18 / 52.94 / 5.88
			instr.CatCamera:          {High: 32, Low: 2, None: 0},  // 94.12 / 5.88 / 0
		},
		// Status (state-acquisition) instructions are rated less
		// threatening overall (Fig 4 discussion); cameras and locks keep a
		// privacy-driven tail of high votes.
		Status: map[instr.Category]Dist{
			instr.CatAlarm:           {High: 6, Low: 20, None: 8},
			instr.CatKitchen:         {High: 3, Low: 17, None: 14},
			instr.CatEntertainment:   {High: 2, Low: 14, None: 18},
			instr.CatAirConditioning: {High: 4, Low: 18, None: 12},
			instr.CatCurtain:         {High: 5, Low: 17, None: 12},
			instr.CatLighting:        {High: 3, Low: 15, None: 16},
			instr.CatWindowDoorLock:  {High: 15, Low: 15, None: 4},
			instr.CatCamera:          {High: 16, Low: 15, None: 3},
			instr.CatVacuum:          {High: 4, Low: 16, None: 14},
		},
		ControlWorse34: 29, // 85.29 %
		Covered34:      31, // 91.18 %
	}
}

// Validate checks that every category has well-formed distributions.
func (p Profile) Validate() error {
	for _, c := range instr.Categories() {
		d, ok := p.Control[c]
		if !ok {
			return fmt.Errorf("survey: profile missing control dist for %v", c)
		}
		if !d.valid() {
			return fmt.Errorf("survey: control dist for %v does not sum to 34: %+v", c, d)
		}
		d, ok = p.Status[c]
		if !ok {
			return fmt.Errorf("survey: profile missing status dist for %v", c)
		}
		if !d.valid() {
			return fmt.Errorf("survey: status dist for %v does not sum to 34: %+v", c, d)
		}
	}
	if p.ControlWorse34 < 0 || p.ControlWorse34 > 34 {
		return fmt.Errorf("survey: ControlWorse34 out of range: %d", p.ControlWorse34)
	}
	if p.Covered34 < 0 || p.Covered34 > 34 {
		return fmt.Errorf("survey: Covered34 out of range: %d", p.Covered34)
	}
	return nil
}

// Respondent is one simulated questionnaire answer sheet.
type Respondent struct {
	ID           int
	Control      map[instr.Category]Vote
	Status       map[instr.Category]Vote
	ControlWorse bool // thinks control instructions out-threaten status ones
	Covered      bool // all owned/expected devices are in the Table I list
}

// Mode selects how respondents are drawn from the profile.
type Mode int

// Simulation modes.
const (
	// ModeQuota allocates votes deterministically in exact proportion to
	// the profile (largest-remainder), then shuffles assignment across
	// respondents. Reproduces Table III exactly when n is a multiple of 34.
	ModeQuota Mode = iota + 1
	// ModeSample draws each respondent's votes independently from the
	// profile's distributions.
	ModeSample
)

// Simulate draws a population of n respondents from the profile.
func Simulate(p Profile, n int, mode Mode, rng *rand.Rand) ([]Respondent, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("survey: population size must be positive, got %d", n)
	}
	if rng == nil {
		return nil, fmt.Errorf("survey: nil rng")
	}
	out := make([]Respondent, n)
	for i := range out {
		out[i] = Respondent{
			ID:      i + 1,
			Control: make(map[instr.Category]Vote, len(p.Control)),
			Status:  make(map[instr.Category]Vote, len(p.Status)),
		}
	}
	switch mode {
	case ModeQuota:
		simulateQuota(p, out, rng)
	case ModeSample:
		simulateSample(p, out, rng)
	default:
		return nil, fmt.Errorf("survey: unknown mode %d", mode)
	}
	return out, nil
}

func simulateQuota(p Profile, out []Respondent, rng *rand.Rand) {
	n := len(out)
	for _, c := range instr.Categories() {
		assignQuota(out, rng, quotaCounts(p.Control[c], n), func(r *Respondent, v Vote) { r.Control[c] = v })
		assignQuota(out, rng, quotaCounts(p.Status[c], n), func(r *Respondent, v Vote) { r.Status[c] = v })
	}
	worse := quotaCount(p.ControlWorse34, n)
	covered := quotaCount(p.Covered34, n)
	perm := rng.Perm(n)
	for i, idx := range perm {
		out[idx].ControlWorse = i < worse
	}
	perm = rng.Perm(n)
	for i, idx := range perm {
		out[idx].Covered = i < covered
	}
}

// quotaCount converts a 34ths share into a head count by largest remainder.
func quotaCount(share34, n int) int {
	return (share34*n + 17) / 34 // round(share/34 * n)
}

// quotaCounts converts a Dist into exact head counts summing to n.
func quotaCounts(d Dist, n int) [3]int {
	high := d.High * n / 34
	low := d.Low * n / 34
	none := d.None * n / 34
	// Distribute the remainder by largest fractional part.
	type rem struct {
		idx  int
		frac int
	}
	rems := []rem{
		{0, d.High * n % 34},
		{1, d.Low * n % 34},
		{2, d.None * n % 34},
	}
	sort.Slice(rems, func(i, j int) bool {
		if rems[i].frac != rems[j].frac {
			return rems[i].frac > rems[j].frac
		}
		return rems[i].idx < rems[j].idx
	})
	counts := [3]int{high, low, none}
	missing := n - high - low - none
	for i := 0; i < missing; i++ {
		counts[rems[i%3].idx]++
	}
	return counts
}

func assignQuota(out []Respondent, rng *rand.Rand, counts [3]int, set func(*Respondent, Vote)) {
	votes := make([]Vote, 0, len(out))
	for i := 0; i < counts[0]; i++ {
		votes = append(votes, VoteHigh)
	}
	for i := 0; i < counts[1]; i++ {
		votes = append(votes, VoteLow)
	}
	for i := 0; i < counts[2]; i++ {
		votes = append(votes, VoteNone)
	}
	rng.Shuffle(len(votes), func(i, j int) { votes[i], votes[j] = votes[j], votes[i] })
	for i := range out {
		set(&out[i], votes[i])
	}
}

func simulateSample(p Profile, out []Respondent, rng *rand.Rand) {
	draw := func(d Dist) Vote {
		x := rng.Intn(34)
		switch {
		case x < d.High:
			return VoteHigh
		case x < d.High+d.Low:
			return VoteLow
		default:
			return VoteNone
		}
	}
	for i := range out {
		for _, c := range instr.Categories() {
			out[i].Control[c] = draw(p.Control[c])
			out[i].Status[c] = draw(p.Status[c])
		}
		out[i].ControlWorse = rng.Intn(34) < p.ControlWorse34
		out[i].Covered = rng.Intn(34) < p.Covered34
	}
}
