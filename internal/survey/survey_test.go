package survey

import (
	"math"
	"math/rand"
	"testing"

	"iotsid/internal/instr"
)

func mustSimulate(t *testing.T, mode Mode, n int, seed int64) []Respondent {
	t.Helper()
	pop, err := Simulate(DefaultProfile(), n, mode, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	return pop
}

func TestDefaultProfileValid(t *testing.T) {
	if err := DefaultProfile().Validate(); err != nil {
		t.Fatalf("default profile invalid: %v", err)
	}
}

func TestProfileValidation(t *testing.T) {
	t.Run("missing control", func(t *testing.T) {
		p := DefaultProfile()
		delete(p.Control, instr.CatAlarm)
		if p.Validate() == nil {
			t.Error("want error")
		}
	})
	t.Run("bad sum", func(t *testing.T) {
		p := DefaultProfile()
		p.Control[instr.CatAlarm] = Dist{High: 10, Low: 10, None: 10}
		if p.Validate() == nil {
			t.Error("want error")
		}
	})
	t.Run("missing status", func(t *testing.T) {
		p := DefaultProfile()
		delete(p.Status, instr.CatCamera)
		if p.Validate() == nil {
			t.Error("want error")
		}
	})
	t.Run("aggregates out of range", func(t *testing.T) {
		p := DefaultProfile()
		p.ControlWorse34 = 40
		if p.Validate() == nil {
			t.Error("want error")
		}
		p = DefaultProfile()
		p.Covered34 = -1
		if p.Validate() == nil {
			t.Error("want error")
		}
	})
}

func TestSimulateArgErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Simulate(DefaultProfile(), 0, ModeQuota, rng); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := Simulate(DefaultProfile(), 10, ModeQuota, nil); err == nil {
		t.Error("want error for nil rng")
	}
	if _, err := Simulate(DefaultProfile(), 10, Mode(99), rng); err == nil {
		t.Error("want error for bad mode")
	}
	bad := DefaultProfile()
	bad.Control[instr.CatAlarm] = Dist{}
	if _, err := Simulate(bad, 10, ModeQuota, rng); err == nil {
		t.Error("want error for invalid profile")
	}
}

// TestQuotaReproducesTableIII checks the headline calibration: with the
// paper's population size (340 = 10×34) quota mode reproduces Table III to
// reporting precision.
func TestQuotaReproducesTableIII(t *testing.T) {
	pop := mustSimulate(t, ModeQuota, 340, 42)
	res, err := Aggregate(pop)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	want := map[instr.Category]Shares{
		instr.CatAlarm:           {High: 70.59, Low: 26.47, None: 2.94},
		instr.CatKitchen:         {High: 67.65, Low: 32.35, None: 0},
		instr.CatEntertainment:   {High: 26.47, Low: 73.53, None: 0},
		instr.CatAirConditioning: {High: 52.94, Low: 44.12, None: 2.94},
		instr.CatCurtain:         {High: 55.88, Low: 41.18, None: 2.94},
		instr.CatLighting:        {High: 64.71, Low: 26.47, None: 8.82},
		instr.CatWindowDoorLock:  {High: 94.12, Low: 5.88, None: 0},
		instr.CatVacuum:          {High: 41.18, Low: 52.94, None: 5.88},
		instr.CatCamera:          {High: 94.12, Low: 5.88, None: 0},
	}
	for c, w := range want {
		got := res.Control[c]
		if math.Abs(got.High-w.High) > 0.01 || math.Abs(got.Low-w.Low) > 0.01 || math.Abs(got.None-w.None) > 0.01 {
			t.Errorf("%v: got %+v, want %+v", c, got, w)
		}
	}
	if math.Abs(res.ControlWorsePct-85.29) > 0.01 {
		t.Errorf("ControlWorsePct = %.2f, want 85.29", res.ControlWorsePct)
	}
	if math.Abs(res.CoveredPct-91.18) > 0.01 {
		t.Errorf("CoveredPct = %.2f, want 91.18", res.CoveredPct)
	}
}

func TestSensitiveCategoriesMatchPaper(t *testing.T) {
	pop := mustSimulate(t, ModeQuota, 340, 7)
	res, err := Aggregate(pop)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	got := res.SensitiveCategories()
	want := []instr.Category{
		instr.CatAlarm, instr.CatKitchen, instr.CatAirConditioning,
		instr.CatCurtain, instr.CatLighting, instr.CatWindowDoorLock, instr.CatCamera,
	}
	if len(got) != len(want) {
		t.Fatalf("sensitive categories = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sensitive categories = %v, want %v", got, want)
		}
	}
	if res.IsSensitive(instr.CatEntertainment) || res.IsSensitive(instr.CatVacuum) {
		t.Error("TV/vacuum must not be sensitive (Table III)")
	}
}

func TestQuotaDeterministicGivenSeed(t *testing.T) {
	a := mustSimulate(t, ModeQuota, 340, 5)
	b := mustSimulate(t, ModeQuota, 340, 5)
	for i := range a {
		for _, c := range instr.Categories() {
			if a[i].Control[c] != b[i].Control[c] || a[i].Status[c] != b[i].Status[c] {
				t.Fatalf("respondent %d differs between identical seeds", i)
			}
		}
	}
}

func TestQuotaNonMultipleOf34(t *testing.T) {
	// Counts must still sum to n even when 34 does not divide n.
	pop := mustSimulate(t, ModeQuota, 341, 3)
	res, err := Aggregate(pop)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	for _, c := range instr.Categories() {
		s := res.Control[c]
		if math.Abs(s.High+s.Low+s.None-100) > 1e-9 {
			t.Errorf("%v shares sum to %v", c, s.High+s.Low+s.None)
		}
	}
}

func TestSampleModeConvergesToProfile(t *testing.T) {
	pop := mustSimulate(t, ModeSample, 40000, 11)
	res, err := Aggregate(pop)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	p := DefaultProfile()
	for _, c := range instr.Categories() {
		wantHigh := 100 * float64(p.Control[c].High) / 34
		if math.Abs(res.Control[c].High-wantHigh) > 2 {
			t.Errorf("%v sampled high %.2f, want ≈%.2f", c, res.Control[c].High, wantHigh)
		}
	}
	if math.Abs(res.ControlWorsePct-85.29) > 2 {
		t.Errorf("sampled ControlWorsePct %.2f", res.ControlWorsePct)
	}
}

func TestAggregateErrors(t *testing.T) {
	if _, err := Aggregate(nil); err == nil {
		t.Error("want error for empty population")
	}
	// Missing votes are an error.
	pop := mustSimulate(t, ModeQuota, 34, 1)
	delete(pop[0].Control, instr.CatAlarm)
	if _, err := Aggregate(pop); err == nil {
		t.Error("want error for missing control vote")
	}
	pop = mustSimulate(t, ModeQuota, 34, 1)
	delete(pop[0].Status, instr.CatAlarm)
	if _, err := Aggregate(pop); err == nil {
		t.Error("want error for missing status vote")
	}
}

func TestVoteString(t *testing.T) {
	if VoteHigh.String() != "high" || VoteLow.String() != "low" || VoteNone.String() != "none" {
		t.Error("vote names wrong")
	}
	if Vote(9).String() != "vote(9)" {
		t.Error("unknown vote name wrong")
	}
}

func TestQuotaCountsProperty(t *testing.T) {
	// For every calibrated distribution and a range of population sizes,
	// quota counts are non-negative and sum exactly to n.
	p := DefaultProfile()
	for _, c := range instr.Categories() {
		for _, n := range []int{1, 7, 34, 100, 340, 341, 999} {
			counts := quotaCounts(p.Control[c], n)
			sum := counts[0] + counts[1] + counts[2]
			if sum != n {
				t.Errorf("%v n=%d: counts %v sum %d", c, n, counts, sum)
			}
			for _, x := range counts {
				if x < 0 {
					t.Errorf("%v n=%d: negative count %v", c, n, counts)
				}
			}
		}
	}
}
