package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func fixedClock(start time.Time) func() time.Time {
	t := start
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

var t0 = time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC)

func TestAppendAndSelect(t *testing.T) {
	l := NewLog(64, WithClock(fixedClock(t0)))
	l.Append(Event{Kind: KindDecision, DeviceID: "window-1", Op: "window.open", Outcome: "rejected"})
	l.Append(Event{Kind: KindDecision, DeviceID: "window-1", Op: "window.open", Outcome: "allowed"})
	l.Append(Event{Kind: KindWarning, DeviceID: "camera-1", Outcome: "pushed"})

	if l.Len() != 3 || l.Total() != 3 {
		t.Fatalf("len=%d total=%d", l.Len(), l.Total())
	}
	all := l.Select(Query{})
	if len(all) != 3 {
		t.Fatalf("all = %d", len(all))
	}
	// Sequence and time are monotone.
	for i := 1; i < len(all); i++ {
		if all[i].Seq <= all[i-1].Seq || all[i].At.Before(all[i-1].At) {
			t.Errorf("ordering broken at %d", i)
		}
	}
	if got := l.Select(Query{Kind: KindWarning}); len(got) != 1 || got[0].DeviceID != "camera-1" {
		t.Errorf("kind query = %+v", got)
	}
	if got := l.Select(Query{Outcome: "rejected"}); len(got) != 1 {
		t.Errorf("outcome query = %+v", got)
	}
	if got := l.Select(Query{DeviceID: "window-1", Op: "window.open"}); len(got) != 2 {
		t.Errorf("device+op query = %d", len(got))
	}
	counts := l.CountByOutcome(Query{Kind: KindDecision})
	if counts["rejected"] != 1 || counts["allowed"] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestTimeWindowQuery(t *testing.T) {
	l := NewLog(64, WithClock(fixedClock(t0)))
	for i := 0; i < 10; i++ {
		l.Append(Event{Kind: KindAutomation})
	}
	// Events are at t0+1s .. t0+10s.
	got := l.Select(Query{Since: t0.Add(3 * time.Second), Until: t0.Add(7 * time.Second)})
	if len(got) != 5 {
		t.Errorf("window query = %d, want 5", len(got))
	}
	got = l.Select(Query{Limit: 3})
	if len(got) != 3 || got[2].Seq != 10 {
		t.Errorf("limit query = %+v", got)
	}
}

func TestRingEviction(t *testing.T) {
	l := NewLog(16, WithClock(fixedClock(t0))) // minimum capacity
	for i := 0; i < 40; i++ {
		l.Append(Event{Kind: KindProtocol})
	}
	if l.Len() != 16 {
		t.Fatalf("len = %d", l.Len())
	}
	if l.Total() != 40 {
		t.Fatalf("total = %d", l.Total())
	}
	all := l.Select(Query{})
	if all[0].Seq != 25 || all[len(all)-1].Seq != 40 {
		t.Errorf("retained seqs %d..%d, want 25..40", all[0].Seq, all[len(all)-1].Seq)
	}
}

func TestTinyCapacityClamped(t *testing.T) {
	l := NewLog(1)
	for i := 0; i < 20; i++ {
		l.Append(Event{})
	}
	if l.Len() != 16 {
		t.Errorf("len = %d, want clamped capacity 16", l.Len())
	}
}

func TestExportJSONLines(t *testing.T) {
	l := NewLog(64, WithClock(fixedClock(t0)))
	l.Append(Event{Kind: KindDecision, Op: "window.open", Outcome: "rejected",
		Fields: map[string]string{"model": "window"}})
	l.Append(Event{Kind: KindWarning, Outcome: "pushed"})
	var buf bytes.Buffer
	if err := l.Export(&buf, Query{}); err != nil {
		t.Fatalf("Export: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("line 0: %v", err)
	}
	if e.Op != "window.open" || e.Fields["model"] != "window" {
		t.Errorf("event = %+v", e)
	}
}

func TestConcurrentAppendSelect(t *testing.T) {
	l := NewLog(256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Append(Event{Kind: KindProtocol, Outcome: "x"})
				_ = l.Select(Query{Limit: 10})
			}
		}()
	}
	wg.Wait()
	if l.Total() != 1600 {
		t.Errorf("total = %d", l.Total())
	}
	if l.Len() != 256 {
		t.Errorf("len = %d", l.Len())
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindDecision: "decision", KindAutomation: "automation",
		KindWarning: "warning", KindProtocol: "protocol", KindLifecycle: "lifecycle",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d = %q", k, k.String())
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Error("unknown kind name")
	}
}

// TestRingInvariantsQuick checks the ring-buffer invariants under random
// append counts and capacities: Total counts everything ever appended,
// Len is min(cap, total), and retained sequence numbers are the trailing
// window in order.
func TestRingInvariantsQuick(t *testing.T) {
	f := func(capRaw uint8, nRaw uint16) bool {
		capacity := int(capRaw)
		n := int(nRaw) % 2048
		l := NewLog(capacity)
		effectiveCap := capacity
		if effectiveCap < 16 {
			effectiveCap = 16
		}
		for i := 0; i < n; i++ {
			l.Append(Event{Kind: KindProtocol})
		}
		if l.Total() != uint64(n) {
			return false
		}
		wantLen := n
		if wantLen > effectiveCap {
			wantLen = effectiveCap
		}
		if l.Len() != wantLen {
			return false
		}
		events := l.Select(Query{})
		if len(events) != wantLen {
			return false
		}
		for i, e := range events {
			if e.Seq != uint64(n-wantLen+i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
