package trace

import (
	"fmt"
	"testing"
	"time"

	"iotsid/internal/obs"
)

// counterValue reads one unlabeled counter back out of a registry by
// re-registering it (registration is idempotent).
func counterValue(reg *obs.Registry, name, help string) uint64 {
	return reg.NewCounter(name, help).Value()
}

// TestTraceEvictionCounterMatchesObservedDrops drives the bounded ring past
// capacity and checks the counters agree with the log's own accounting:
// appends == Total(), evictions == Total() - Len() == Dropped(). The ring's
// only loss mode is overwriting its oldest event, and before these counters
// that loss was silent.
func TestTraceEvictionCounterMatchesObservedDrops(t *testing.T) {
	clock := time.Unix(1700000000, 0)
	l := NewLog(16, WithClock(func() time.Time { return clock }))
	reg := obs.NewRegistry()
	l.Instrument(reg)
	const n = 57 // capacity 16 → 41 evictions
	for i := 0; i < n; i++ {
		l.Append(Event{Kind: KindDecision, DeviceID: fmt.Sprintf("dev-%d", i), Outcome: "allowed"})
	}
	appends := counterValue(reg, "iotsid_trace_appends_total",
		"Events appended to the bounded audit trace.")
	evictions := counterValue(reg, "iotsid_trace_evictions_total",
		"Oldest audit events overwritten (dropped) by the trace's bounded ring.")
	if appends != uint64(l.Total()) || appends != n {
		t.Fatalf("appends counter %d, Total() %d, want %d", appends, l.Total(), n)
	}
	wantDrops := l.Total() - uint64(l.Len())
	if evictions != wantDrops {
		t.Fatalf("eviction counter %d, want Total-Len = %d", evictions, wantDrops)
	}
	if got := l.Dropped(); got != wantDrops {
		t.Fatalf("Dropped() %d, want %d", got, wantDrops)
	}
	if evictions != n-16 {
		t.Fatalf("eviction counter %d, want %d", evictions, n-16)
	}
}

// TestTraceUninstrumentedAppendIsNoop: a log without Instrument still works
// (the counters are nil-safe no-ops).
func TestTraceUninstrumentedAppendIsNoop(t *testing.T) {
	l := NewLog(16)
	for i := 0; i < 20; i++ {
		l.Append(Event{Kind: KindLifecycle})
	}
	if l.Len() != 16 || l.Total() != 20 || l.Dropped() != 4 {
		t.Fatalf("len %d total %d dropped %d", l.Len(), l.Total(), l.Dropped())
	}
}
