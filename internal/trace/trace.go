// Package trace is the audit-log subsystem: an append-only, bounded store
// of security-relevant events (authorisation decisions, automation firings,
// camera warnings, protocol activity) with time/kind/device queries and
// JSON export. The paper's background cites log-based monitoring of smart
// home platforms ("Fear and Logging in the IoT"); this is the reproduction's
// equivalent — everything the IDS does is reconstructible from the trace.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"iotsid/internal/obs"
)

// Kind classifies events.
type Kind int

// Event kinds.
const (
	KindDecision Kind = iota + 1 // IDS authorisation decision
	KindAutomation
	KindWarning
	KindProtocol
	KindLifecycle
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindDecision:
		return "decision"
	case KindAutomation:
		return "automation"
	case KindWarning:
		return "warning"
	case KindProtocol:
		return "protocol"
	case KindLifecycle:
		return "lifecycle"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one audit record.
type Event struct {
	Seq      uint64            `json:"seq"`
	At       time.Time         `json:"at"`
	Kind     Kind              `json:"kind"`
	DeviceID string            `json:"device_id,omitempty"`
	Op       string            `json:"op,omitempty"`
	Outcome  string            `json:"outcome,omitempty"`
	Detail   string            `json:"detail,omitempty"`
	Fields   map[string]string `json:"fields,omitempty"`
}

// Log is a bounded in-memory audit log. When full, the oldest events are
// evicted (ring-buffer semantics); Seq numbers keep the global order
// auditable across eviction. Safe for concurrent use.
type Log struct {
	mu     sync.RWMutex
	events []Event
	head   int // index of the oldest event when full
	size   int
	next   uint64
	cap    int
	now    func() time.Time

	// appends/evictions make the ring's only loss mode — overwriting the
	// oldest audit event — observable; before these counters an overflowing
	// trace dropped history silently. Nil (no-op) until Instrument is called.
	appends   *obs.Counter
	evictions *obs.Counter
}

// Option customises a Log.
type Option func(*Log)

// WithClock injects the timestamp source (tests, simulated time).
func WithClock(now func() time.Time) Option {
	return func(l *Log) { l.now = now }
}

// NewLog builds a log holding at most capacity events (minimum 16).
func NewLog(capacity int, opts ...Option) *Log {
	if capacity < 16 {
		capacity = 16
	}
	l := &Log{events: make([]Event, capacity), cap: capacity, now: time.Now}
	for _, o := range opts {
		o(l)
	}
	return l
}

// Instrument registers the log's append/eviction counters with reg and
// starts counting. A nil registry is a no-op.
func (l *Log) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	appends := reg.NewCounter("iotsid_trace_appends_total",
		"Events appended to the bounded audit trace.")
	evictions := reg.NewCounter("iotsid_trace_evictions_total",
		"Oldest audit events overwritten (dropped) by the trace's bounded ring.")
	l.mu.Lock()
	defer l.mu.Unlock()
	l.appends = appends
	l.evictions = evictions
}

// Dropped returns how many events the bounded ring has evicted — the audit
// history that is no longer reconstructible from this log.
func (l *Log) Dropped() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.next - uint64(l.size)
}

// Append records one event, stamping sequence and (if zero) time, and
// returns the stored record.
func (l *Log) Append(e Event) Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.next++
	e.Seq = l.next
	if e.At.IsZero() {
		e.At = l.now()
	}
	idx := (l.head + l.size) % l.cap
	evicted := l.size == l.cap
	if evicted {
		// Evict the oldest.
		l.events[l.head] = e
		l.head = (l.head + 1) % l.cap
	} else {
		l.events[idx] = e
		l.size++
	}
	l.appends.Inc()
	if evicted {
		l.evictions.Inc()
	}
	return e
}

// Len returns the number of retained events.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.size
}

// Total returns how many events were ever appended (including evicted).
func (l *Log) Total() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.next
}

// Query filters retained events; zero-valued fields match everything.
type Query struct {
	Kind     Kind
	DeviceID string
	Op       string
	Outcome  string
	Since    time.Time
	Until    time.Time
	// Limit bounds the result count (0 = unlimited); the newest matches
	// win.
	Limit int
}

// matches reports whether an event satisfies the query.
func (q Query) matches(e Event) bool {
	if q.Kind != 0 && e.Kind != q.Kind {
		return false
	}
	if q.DeviceID != "" && e.DeviceID != q.DeviceID {
		return false
	}
	if q.Op != "" && e.Op != q.Op {
		return false
	}
	if q.Outcome != "" && e.Outcome != q.Outcome {
		return false
	}
	if !q.Since.IsZero() && e.At.Before(q.Since) {
		return false
	}
	if !q.Until.IsZero() && e.At.After(q.Until) {
		return false
	}
	return true
}

// Select returns matching events in append order.
func (l *Log) Select(q Query) []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Event
	for i := 0; i < l.size; i++ {
		e := l.events[(l.head+i)%l.cap]
		if q.matches(e) {
			out = append(out, e)
		}
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[len(out)-q.Limit:]
	}
	return out
}

// CountByOutcome tallies matching events per outcome.
func (l *Log) CountByOutcome(q Query) map[string]int {
	out := make(map[string]int)
	for _, e := range l.Select(q) {
		out[e.Outcome]++
	}
	return out
}

// Export writes matching events as JSON lines.
func (l *Log) Export(w io.Writer, q Query) error {
	enc := json.NewEncoder(w)
	for _, e := range l.Select(q) {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("trace: export: %w", err)
		}
	}
	return nil
}
