package cloud

import (
	"encoding/json"
	"fmt"
	"net/http"

	"iotsid/internal/fleet"
	"iotsid/internal/instr"
	"iotsid/internal/sensor"
)

// Fleet endpoints: the multi-tenant face of the cloud. A gateway batches
// many homes' traffic into one round trip; the cloud fans it out across the
// fleet's shards and answers per item, so one tenant's bad request never
// aborts another tenant's instructions. Every item and push is checked
// against the home-to-account bindings (Server.BindHome) first: a session
// may only push context for, and authorize against, homes its account
// owns — otherwise any authenticated user could fabricate another
// tenant's sensor context and walk sensitive instructions past the gate.

// errHomeNotBound rejects an item or push naming a home outside the
// session's account (mirrors handleCommand's device-ownership error).
const errHomeNotBound = "home not bound to this account"

// ownedHomes resolves, per input, whether the session's account owns the
// named home — one lock acquisition for the whole batch.
func (s *Server) ownedHomes(user string, homes func(i int) string, n int) []bool {
	owned := make([]bool, n)
	s.mu.Lock()
	for i := 0; i < n; i++ {
		owned[i] = s.homes[homes(i)] == user
	}
	s.mu.Unlock()
	return owned
}

// FleetBatchItem is one instruction in a fleet batch. Context, when
// present, is pushed as the home's newest sensor snapshot before judging
// ("push before judge" — the gateway ships state and commands together).
type FleetBatchItem struct {
	Home     string           `json:"home"`
	Op       string           `json:"op"`
	DeviceID string           `json:"device_id"`
	Args     map[string]any   `json:"args,omitempty"`
	Context  *sensor.Snapshot `json:"context,omitempty"`
}

type fleetAuthorizeRequest struct {
	Items []FleetBatchItem `json:"items"`
}

// FleetResult mirrors one item: either a decision or a per-item
// error string (unknown home, unknown opcode, judge failure).
type FleetResult struct {
	Allowed   bool   `json:"allowed"`
	Sensitive bool   `json:"sensitive"`
	Model     string `json:"model,omitempty"`
	Reason    string `json:"reason,omitempty"`
	Error     string `json:"error,omitempty"`
}

type fleetAuthorizeResponse struct {
	Results []FleetResult `json:"results"`
}

// maxFleetBatch bounds one request's item count — a fleet batch is a
// decision window's traffic, not a bulk import.
const maxFleetBatch = 65536

func (s *Server) handleFleetAuthorize(w http.ResponseWriter, r *http.Request) {
	user := s.sessionUser(r)
	if user == "" {
		writeJSON(w, http.StatusUnauthorized, errorBody{Error: "login required"})
		return
	}
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	var req fleetAuthorizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid JSON body"})
		return
	}
	if len(req.Items) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "empty batch"})
		return
	}
	if len(req.Items) > maxFleetBatch {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("batch exceeds %d items", maxFleetBatch)})
		return
	}
	results := make([]FleetResult, len(req.Items))
	owned := s.ownedHomes(user, func(i int) string { return req.Items[i].Home }, len(req.Items))
	// Gate ownership and build the instructions first; items that fail
	// get their error recorded in place and the survivors keep their
	// positions via the index map.
	items := make([]fleet.BatchItem, 0, len(req.Items))
	idxs := make([]int, 0, len(req.Items))
	for i, it := range req.Items {
		if !owned[i] {
			results[i] = FleetResult{Error: errHomeNotBound}
			continue
		}
		in, err := s.cfg.Registry.Build(it.Op, it.DeviceID, instr.OriginUser, it.Args)
		if err != nil {
			results[i] = FleetResult{Error: err.Error()}
			continue
		}
		items = append(items, fleet.BatchItem{Home: it.Home, In: in, Context: it.Context})
		idxs = append(idxs, i)
	}
	out, err := s.cfg.Fleet.AuthorizeBatch(r.Context(), items, s.cfg.FleetWorkers)
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	for k, res := range out {
		i := idxs[k]
		if res.Err != "" {
			results[i] = FleetResult{Error: res.Err}
			continue
		}
		results[i] = FleetResult{
			Allowed:   res.Decision.Allowed,
			Sensitive: res.Decision.Sensitive,
			Model:     string(res.Decision.Model),
			Reason:    res.Decision.Reason,
		}
	}
	writeJSON(w, http.StatusOK, fleetAuthorizeResponse{Results: results})
}

// fleetContextPush is one home's snapshot in a context-push batch.
type fleetContextPush struct {
	Home    string          `json:"home"`
	Context sensor.Snapshot `json:"context"`
}

type fleetContextRequest struct {
	Pushes []fleetContextPush `json:"pushes"`
}

// FleetPushError locates one rejected push: the index into the request's
// push array plus the home it named, so a gateway batching thousands of
// pushes can retry or drop exactly the failed ones.
type FleetPushError struct {
	Index int    `json:"index"`
	Home  string `json:"home"`
	Error string `json:"error"`
}

type fleetContextResponse struct {
	Accepted int              `json:"accepted"`
	Errors   []FleetPushError `json:"errors,omitempty"`
}

func (s *Server) handleFleetContext(w http.ResponseWriter, r *http.Request) {
	user := s.sessionUser(r)
	if user == "" {
		writeJSON(w, http.StatusUnauthorized, errorBody{Error: "login required"})
		return
	}
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	var req fleetContextRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid JSON body"})
		return
	}
	if len(req.Pushes) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "empty push batch"})
		return
	}
	if len(req.Pushes) > maxFleetBatch {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("batch exceeds %d pushes", maxFleetBatch)})
		return
	}
	resp := fleetContextResponse{}
	owned := s.ownedHomes(user, func(i int) string { return req.Pushes[i].Home }, len(req.Pushes))
	for i, p := range req.Pushes {
		if !owned[i] {
			resp.Errors = append(resp.Errors, FleetPushError{Index: i, Home: p.Home, Error: errHomeNotBound})
			continue
		}
		if err := s.cfg.Fleet.PushContext(p.Home, p.Context); err != nil {
			resp.Errors = append(resp.Errors, FleetPushError{Index: i, Home: p.Home, Error: err.Error()})
			continue
		}
		resp.Accepted++
	}
	writeJSON(w, http.StatusOK, resp)
}

// FleetAuthorize submits a mixed-home batch and returns the per-item
// results (client side of POST /v1/fleet/authorize).
func (c *Client) FleetAuthorize(items []FleetBatchItem) ([]FleetResult, error) {
	var resp fleetAuthorizeResponse
	if err := c.do(http.MethodPost, "/v1/fleet/authorize", fleetAuthorizeRequest{Items: items}, &resp); err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// FleetItem builds one batch item for FleetAuthorize.
func FleetItem(home, op, deviceID string, ctx *sensor.Snapshot) FleetBatchItem {
	return FleetBatchItem{Home: home, Op: op, DeviceID: deviceID, Context: ctx}
}

// FleetPushContext pushes per-home snapshots (POST /v1/fleet/context).
// Rejected pushes are reported per home in the returned slice; the error
// is reserved for transport/protocol failures, so a partially-accepted
// batch is (accepted, rejections, nil).
func (c *Client) FleetPushContext(pushes map[string]sensor.Snapshot) (int, []FleetPushError, error) {
	req := fleetContextRequest{Pushes: make([]fleetContextPush, 0, len(pushes))}
	for home, snap := range pushes {
		req.Pushes = append(req.Pushes, fleetContextPush{Home: home, Context: snap})
	}
	var resp fleetContextResponse
	if err := c.do(http.MethodPost, "/v1/fleet/context", req, &resp); err != nil {
		return 0, nil, err
	}
	return resp.Accepted, resp.Errors, nil
}

// FleetStats is the fleet summary served at GET /v1/fleet/stats.
type FleetStats struct {
	Homes  int      `json:"homes"`
	Shards int      `json:"shards"`
	Models []string `json:"models"`
	// LowTrustHomes counts homes whose context source currently sits
	// below its trust threshold — the fleet-wide spoofing signal.
	LowTrustHomes int `json:"low_trust_homes"`
	// SeqAnomalies counts sensitive instructions the sequence judge
	// rejected fleet-wide after the static tree allowed them — the
	// temporal-attack (automation chain, stale replay) signal.
	SeqAnomalies uint64 `json:"seq_anomalies"`
}

// FleetStats reads the fleet summary (GET /v1/fleet/stats).
func (c *Client) FleetStats() (FleetStats, error) {
	var resp FleetStats
	if err := c.do(http.MethodGet, "/v1/fleet/stats", nil, &resp); err != nil {
		return FleetStats{}, err
	}
	return resp, nil
}

func (s *Server) handleFleetStats(w http.ResponseWriter, r *http.Request) {
	if s.sessionUser(r) == "" {
		writeJSON(w, http.StatusUnauthorized, errorBody{Error: "login required"})
		return
	}
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	f := s.cfg.Fleet
	resp := FleetStats{
		Homes:         f.HomeCount(),
		Shards:        f.ShardCount(),
		LowTrustHomes: f.LowTrustHomes(),
		SeqAnomalies:  f.SeqAnomalies(),
	}
	for _, m := range f.Registry().Models() {
		resp.Models = append(resp.Models, string(m))
	}
	writeJSON(w, http.StatusOK, resp)
}
