package cloud

import (
	"encoding/json"
	"fmt"
	"net/http"

	"iotsid/internal/fleet"
	"iotsid/internal/instr"
	"iotsid/internal/sensor"
)

// Fleet endpoints: the multi-tenant face of the cloud. A gateway batches
// many homes' traffic into one round trip; the cloud fans it out across the
// fleet's shards and answers per item, so one tenant's bad request never
// aborts another tenant's instructions.

// FleetBatchItem is one instruction in a fleet batch. Context, when
// present, is pushed as the home's newest sensor snapshot before judging
// ("push before judge" — the gateway ships state and commands together).
type FleetBatchItem struct {
	Home     string           `json:"home"`
	Op       string           `json:"op"`
	DeviceID string           `json:"device_id"`
	Args     map[string]any   `json:"args,omitempty"`
	Context  *sensor.Snapshot `json:"context,omitempty"`
}

type fleetAuthorizeRequest struct {
	Items []FleetBatchItem `json:"items"`
}

// FleetResult mirrors one item: either a decision or a per-item
// error string (unknown home, unknown opcode, judge failure).
type FleetResult struct {
	Allowed   bool   `json:"allowed"`
	Sensitive bool   `json:"sensitive"`
	Model     string `json:"model,omitempty"`
	Reason    string `json:"reason,omitempty"`
	Error     string `json:"error,omitempty"`
}

type fleetAuthorizeResponse struct {
	Results []FleetResult `json:"results"`
}

// maxFleetBatch bounds one request's item count — a fleet batch is a
// decision window's traffic, not a bulk import.
const maxFleetBatch = 65536

func (s *Server) handleFleetAuthorize(w http.ResponseWriter, r *http.Request) {
	if s.sessionUser(r) == "" {
		writeJSON(w, http.StatusUnauthorized, errorBody{Error: "login required"})
		return
	}
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	var req fleetAuthorizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid JSON body"})
		return
	}
	if len(req.Items) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "empty batch"})
		return
	}
	if len(req.Items) > maxFleetBatch {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("batch exceeds %d items", maxFleetBatch)})
		return
	}
	results := make([]FleetResult, len(req.Items))
	// Build the instructions first; items that fail to build get their
	// error recorded in place and the survivors keep their positions via
	// the index map.
	items := make([]fleet.BatchItem, 0, len(req.Items))
	idxs := make([]int, 0, len(req.Items))
	for i, it := range req.Items {
		in, err := s.cfg.Registry.Build(it.Op, it.DeviceID, instr.OriginUser, it.Args)
		if err != nil {
			results[i] = FleetResult{Error: err.Error()}
			continue
		}
		items = append(items, fleet.BatchItem{Home: it.Home, In: in, Context: it.Context})
		idxs = append(idxs, i)
	}
	out, err := s.cfg.Fleet.AuthorizeBatch(r.Context(), items, s.cfg.FleetWorkers)
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	for k, res := range out {
		i := idxs[k]
		if res.Err != "" {
			results[i] = FleetResult{Error: res.Err}
			continue
		}
		results[i] = FleetResult{
			Allowed:   res.Decision.Allowed,
			Sensitive: res.Decision.Sensitive,
			Model:     string(res.Decision.Model),
			Reason:    res.Decision.Reason,
		}
	}
	writeJSON(w, http.StatusOK, fleetAuthorizeResponse{Results: results})
}

// fleetContextPush is one home's snapshot in a context-push batch.
type fleetContextPush struct {
	Home    string          `json:"home"`
	Context sensor.Snapshot `json:"context"`
}

type fleetContextRequest struct {
	Pushes []fleetContextPush `json:"pushes"`
}

type fleetContextResponse struct {
	Accepted int      `json:"accepted"`
	Errors   []string `json:"errors,omitempty"`
}

func (s *Server) handleFleetContext(w http.ResponseWriter, r *http.Request) {
	if s.sessionUser(r) == "" {
		writeJSON(w, http.StatusUnauthorized, errorBody{Error: "login required"})
		return
	}
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	var req fleetContextRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid JSON body"})
		return
	}
	if len(req.Pushes) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "empty push batch"})
		return
	}
	if len(req.Pushes) > maxFleetBatch {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("batch exceeds %d pushes", maxFleetBatch)})
		return
	}
	resp := fleetContextResponse{}
	for _, p := range req.Pushes {
		if err := s.cfg.Fleet.PushContext(p.Home, p.Context); err != nil {
			resp.Errors = append(resp.Errors, err.Error())
			continue
		}
		resp.Accepted++
	}
	writeJSON(w, http.StatusOK, resp)
}

// FleetAuthorize submits a mixed-home batch and returns the per-item
// results (client side of POST /v1/fleet/authorize).
func (c *Client) FleetAuthorize(items []FleetBatchItem) ([]FleetResult, error) {
	var resp fleetAuthorizeResponse
	if err := c.do(http.MethodPost, "/v1/fleet/authorize", fleetAuthorizeRequest{Items: items}, &resp); err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// FleetItem builds one batch item for FleetAuthorize.
func FleetItem(home, op, deviceID string, ctx *sensor.Snapshot) FleetBatchItem {
	return FleetBatchItem{Home: home, Op: op, DeviceID: deviceID, Context: ctx}
}

// FleetPushContext pushes per-home snapshots (POST /v1/fleet/context).
func (c *Client) FleetPushContext(pushes map[string]sensor.Snapshot) (int, error) {
	req := fleetContextRequest{Pushes: make([]fleetContextPush, 0, len(pushes))}
	for home, snap := range pushes {
		req.Pushes = append(req.Pushes, fleetContextPush{Home: home, Context: snap})
	}
	var resp fleetContextResponse
	if err := c.do(http.MethodPost, "/v1/fleet/context", req, &resp); err != nil {
		return 0, err
	}
	if len(resp.Errors) > 0 {
		return resp.Accepted, fmt.Errorf("cloud: %d of %d pushes rejected (first: %s)",
			len(resp.Errors), len(req.Pushes), resp.Errors[0])
	}
	return resp.Accepted, nil
}

// FleetStats reads the fleet summary (GET /v1/fleet/stats).
func (c *Client) FleetStats() (homes, shards int, models []string, err error) {
	var resp fleetStatsResponse
	if err := c.do(http.MethodGet, "/v1/fleet/stats", nil, &resp); err != nil {
		return 0, 0, nil, err
	}
	return resp.Homes, resp.Shards, resp.Models, nil
}

type fleetStatsResponse struct {
	Homes  int      `json:"homes"`
	Shards int      `json:"shards"`
	Models []string `json:"models"`
}

func (s *Server) handleFleetStats(w http.ResponseWriter, r *http.Request) {
	if s.sessionUser(r) == "" {
		writeJSON(w, http.StatusUnauthorized, errorBody{Error: "login required"})
		return
	}
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	f := s.cfg.Fleet
	resp := fleetStatsResponse{
		Homes:  f.HomeCount(),
		Shards: f.ShardCount(),
	}
	for _, m := range f.Registry().Models() {
		resp.Models = append(resp.Models, string(m))
	}
	writeJSON(w, http.StatusOK, resp)
}
