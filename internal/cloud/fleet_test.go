package cloud

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"iotsid/internal/core"
	"iotsid/internal/dataset"
	"iotsid/internal/fleet"
	"iotsid/internal/instr"
	"iotsid/internal/sensor"
)

// fleetTrainedMemory caches one trained memory for the fleet tests.
var fleetTrainedMemory *core.FeatureMemory

func fleetMemory(t *testing.T) *core.FeatureMemory {
	t.Helper()
	if fleetTrainedMemory != nil {
		return fleetTrainedMemory
	}
	corpus, err := dataset.Corpus(dataset.CorpusConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fm, err := core.Train(corpus, dataset.BuildConfig{Seed: 42}, core.TrainConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	fleetTrainedMemory = fm
	return fm
}

func fleetForCloudTest(t *testing.T, homes int) *fleet.Fleet {
	t.Helper()
	reg, err := fleet.NewModelRegistry(fleetMemory(t))
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.DefaultDetector()
	if err != nil {
		t.Fatal(err)
	}
	f, err := fleet.New(fleet.Config{Detector: det, Models: reg, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < homes; i++ {
		if _, err := f.AddHome(fleet.HomeConfig{ID: fmt.Sprintf("home-%02d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func startFleetCloud(t *testing.T, homes int) (*Server, *fleet.Fleet) {
	t.Helper()
	fl := fleetForCloudTest(t, homes)
	fwd := &captureForwarder{}
	srv, err := NewServer(Config{
		Users:    map[string]string{"gateway": "s3cret"},
		Registry: instr.BuiltinRegistry(),
		Forward:  fwd.forward,
		Fleet:    fl,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, fl
}

// TestFleetConfigCollectorContextConflict pins the explicit-conflict
// contract: a config wiring both Collector and Context, or TTL-wrapping a
// Collector, is rejected at construction instead of silently resolved.
func TestFleetConfigCollectorContextConflict(t *testing.T) {
	coll := core.CollectorFunc(func(ctx context.Context) (sensor.Snapshot, error) {
		return sensor.Snapshot{}, nil
	})
	src := func(ctx context.Context) (sensor.Snapshot, error) { return sensor.Snapshot{}, nil }
	gate := func(in instr.Instruction, ctx sensor.Snapshot) error { return nil }
	base := Config{
		Users:    map[string]string{"a": "b"},
		Registry: instr.BuiltinRegistry(),
		Forward:  func(in instr.Instruction) error { return nil },
		Gate:     gate,
	}

	both := base
	both.Collector = coll
	both.Context = src
	if _, err := NewServer(both); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("Collector+Context = %v, want mutual-exclusion error", err)
	}

	ttl := base
	ttl.Collector = coll
	ttl.ContextTTL = time.Hour
	if _, err := NewServer(ttl); err == nil || !strings.Contains(err.Error(), "ContextTTL") {
		t.Fatalf("Collector+ContextTTL = %v, want TTL-conflict error", err)
	}

	// Each alone still constructs.
	one := base
	one.Collector = coll
	srv, err := NewServer(one)
	if err != nil {
		t.Fatalf("Collector alone: %v", err)
	}
	_ = srv.Close()
	two := base
	two.Context = src
	two.ContextTTL = time.Hour
	srv, err = NewServer(two)
	if err != nil {
		t.Fatalf("Context+TTL: %v", err)
	}
	_ = srv.Close()
}

func TestFleetEndpointsRequireSession(t *testing.T) {
	srv, _ := startFleetCloud(t, 1)
	c, err := NewClient(srv.URL())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.FleetAuthorize([]FleetBatchItem{FleetItem("home-00", "window.open", "w", nil)}); err == nil {
		t.Fatal("unauthenticated FleetAuthorize succeeded")
	}
	if _, err := c.FleetPushContext(map[string]sensor.Snapshot{"home-00": {}}); err == nil {
		t.Fatal("unauthenticated FleetPushContext succeeded")
	}
	if _, _, _, err := c.FleetStats(); err == nil {
		t.Fatal("unauthenticated FleetStats succeeded")
	}
}

func TestFleetAuthorizeEndpoint(t *testing.T) {
	srv, _ := startFleetCloud(t, 4)
	c := login(t, srv, "gateway", "s3cret")

	legal, err := dataset.LegalScene(dataset.ModelWindow, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	attack, err := dataset.AttackScene(dataset.ModelWindow, rand.New(rand.NewSource(78)))
	if err != nil {
		t.Fatal(err)
	}

	results, err := c.FleetAuthorize([]FleetBatchItem{
		FleetItem("home-00", "window.open", "win-1", &legal),
		FleetItem("home-01", "window.open", "win-1", &attack),
		FleetItem("home-02", "light.get_state", "lamp-1", nil),
		FleetItem("ghost", "window.open", "win-1", &legal),
		FleetItem("home-03", "no.such_op", "x", nil),
	})
	if err != nil {
		t.Fatalf("FleetAuthorize: %v", err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d results, want 5", len(results))
	}
	if !results[0].Allowed || !results[0].Sensitive || results[0].Model != "window" {
		t.Fatalf("legal scene: %+v", results[0])
	}
	if results[1].Allowed || results[1].Error != "" {
		t.Fatalf("attack scene: %+v", results[1])
	}
	if !results[2].Allowed || results[2].Sensitive {
		t.Fatalf("status op: %+v", results[2])
	}
	if results[3].Error == "" || !strings.Contains(results[3].Error, "unknown home") {
		t.Fatalf("ghost home: %+v", results[3])
	}
	if results[4].Error == "" || !strings.Contains(results[4].Error, "unknown opcode") {
		t.Fatalf("bad opcode: %+v", results[4])
	}
}

func TestFleetContextAndStatsEndpoints(t *testing.T) {
	srv, fl := startFleetCloud(t, 3)
	c := login(t, srv, "gateway", "s3cret")

	legal, err := dataset.LegalScene(dataset.ModelWindow, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	accepted, err := c.FleetPushContext(map[string]sensor.Snapshot{
		"home-00": legal,
		"home-01": legal,
	})
	if err != nil || accepted != 2 {
		t.Fatalf("FleetPushContext = %d, %v; want 2 accepted", accepted, err)
	}
	// A push batch with an unknown home reports the rejection but still
	// lands the valid pushes.
	accepted, err = c.FleetPushContext(map[string]sensor.Snapshot{
		"home-02": legal,
		"ghost":   legal,
	})
	if err == nil || accepted != 1 {
		t.Fatalf("mixed push batch = %d, %v; want 1 accepted + error", accepted, err)
	}

	// The pushed context now judges a sensitive op without inline context.
	results, err := c.FleetAuthorize([]FleetBatchItem{
		FleetItem("home-00", "window.open", "win-1", nil),
	})
	if err != nil || len(results) != 1 || !results[0].Allowed {
		t.Fatalf("authorize after push = %+v, %v; want allow", results, err)
	}

	homes, shards, models, err := c.FleetStats()
	if err != nil {
		t.Fatalf("FleetStats: %v", err)
	}
	if homes != fl.HomeCount() || shards != fl.ShardCount() || len(models) != fl.Registry().Len() {
		t.Fatalf("stats = %d homes / %d shards / %d models, want %d/%d/%d",
			homes, shards, len(models), fl.HomeCount(), fl.ShardCount(), fl.Registry().Len())
	}
}

func TestFleetEndpointMethodsAndBodies(t *testing.T) {
	srv, _ := startFleetCloud(t, 1)
	c := login(t, srv, "gateway", "s3cret")

	for _, tc := range []struct {
		method, path string
		body         any
		wantStatus   int
	}{
		{http.MethodGet, "/v1/fleet/authorize", nil, http.StatusMethodNotAllowed},
		{http.MethodGet, "/v1/fleet/context", nil, http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/fleet/stats", nil, http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/fleet/authorize", fleetAuthorizeRequest{}, http.StatusBadRequest},
		{http.MethodPost, "/v1/fleet/context", fleetContextRequest{}, http.StatusBadRequest},
	} {
		err := c.do(tc.method, tc.path, tc.body, nil)
		apiErr, ok := err.(*APIError)
		if !ok || apiErr.StatusCode != tc.wantStatus {
			t.Errorf("%s %s = %v, want HTTP %d", tc.method, tc.path, err, tc.wantStatus)
		}
	}
}

// TestFleetEndpointsAbsentWithoutFleet pins that a fleet-less cloud does
// not mount the endpoints at all.
func TestFleetEndpointsAbsentWithoutFleet(t *testing.T) {
	srv, _ := startCloud(t, nil)
	c := login(t, srv, "alice", "s3cret")
	err := c.do(http.MethodGet, "/v1/fleet/stats", nil, nil)
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("fleet route on fleet-less cloud = %v, want 404", err)
	}
}
