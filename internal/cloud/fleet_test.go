package cloud

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"iotsid/internal/core"
	"iotsid/internal/dataset"
	"iotsid/internal/fleet"
	"iotsid/internal/instr"
	"iotsid/internal/sensor"
)

// fleetTrainedMemory caches one trained memory for the fleet tests.
var fleetTrainedMemory *core.FeatureMemory

func fleetMemory(t *testing.T) *core.FeatureMemory {
	t.Helper()
	if fleetTrainedMemory != nil {
		return fleetTrainedMemory
	}
	corpus, err := dataset.Corpus(dataset.CorpusConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fm, err := core.Train(corpus, dataset.BuildConfig{Seed: 42}, core.TrainConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	fleetTrainedMemory = fm
	return fm
}

func fleetForCloudTest(t *testing.T, homes int) *fleet.Fleet {
	t.Helper()
	reg, err := fleet.NewModelRegistry(fleetMemory(t))
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.DefaultDetector()
	if err != nil {
		t.Fatal(err)
	}
	f, err := fleet.New(fleet.Config{Detector: det, Models: reg, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < homes; i++ {
		if _, err := f.AddHome(fleet.HomeConfig{ID: fmt.Sprintf("home-%02d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func startFleetCloud(t *testing.T, homes int) (*Server, *fleet.Fleet) {
	t.Helper()
	fl := fleetForCloudTest(t, homes)
	fwd := &captureForwarder{}
	srv, err := NewServer(Config{
		Users:    map[string]string{"gateway": "s3cret"},
		Registry: instr.BuiltinRegistry(),
		Forward:  fwd.forward,
		Fleet:    fl,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	for _, id := range fl.HomeIDs() {
		if err := srv.BindHome(id, "gateway"); err != nil {
			t.Fatalf("BindHome(%q): %v", id, err)
		}
	}
	return srv, fl
}

// TestFleetConfigCollectorContextConflict pins the explicit-conflict
// contract: a config wiring both Collector and Context, or TTL-wrapping a
// Collector, is rejected at construction instead of silently resolved.
func TestFleetConfigCollectorContextConflict(t *testing.T) {
	coll := core.CollectorFunc(func(ctx context.Context) (sensor.Snapshot, error) {
		return sensor.Snapshot{}, nil
	})
	src := func(ctx context.Context) (sensor.Snapshot, error) { return sensor.Snapshot{}, nil }
	gate := func(in instr.Instruction, ctx sensor.Snapshot) error { return nil }
	base := Config{
		Users:    map[string]string{"a": "b"},
		Registry: instr.BuiltinRegistry(),
		Forward:  func(in instr.Instruction) error { return nil },
		Gate:     gate,
	}

	both := base
	both.Collector = coll
	both.Context = src
	if _, err := NewServer(both); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("Collector+Context = %v, want mutual-exclusion error", err)
	}

	ttl := base
	ttl.Collector = coll
	ttl.ContextTTL = time.Hour
	if _, err := NewServer(ttl); err == nil || !strings.Contains(err.Error(), "ContextTTL") {
		t.Fatalf("Collector+ContextTTL = %v, want TTL-conflict error", err)
	}

	// Each alone still constructs.
	one := base
	one.Collector = coll
	srv, err := NewServer(one)
	if err != nil {
		t.Fatalf("Collector alone: %v", err)
	}
	_ = srv.Close()
	two := base
	two.Context = src
	two.ContextTTL = time.Hour
	srv, err = NewServer(two)
	if err != nil {
		t.Fatalf("Context+TTL: %v", err)
	}
	_ = srv.Close()
}

func TestFleetEndpointsRequireSession(t *testing.T) {
	srv, _ := startFleetCloud(t, 1)
	c, err := NewClient(srv.URL())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.FleetAuthorize([]FleetBatchItem{FleetItem("home-00", "window.open", "w", nil)}); err == nil {
		t.Fatal("unauthenticated FleetAuthorize succeeded")
	}
	if _, _, err := c.FleetPushContext(map[string]sensor.Snapshot{"home-00": {}}); err == nil {
		t.Fatal("unauthenticated FleetPushContext succeeded")
	}
	if _, err := c.FleetStats(); err == nil {
		t.Fatal("unauthenticated FleetStats succeeded")
	}
}

func TestFleetAuthorizeEndpoint(t *testing.T) {
	srv, _ := startFleetCloud(t, 4)
	c := login(t, srv, "gateway", "s3cret")
	// "ghost" is bound to the account but never registered with the fleet,
	// so it exercises the fleet-level unknown-home error; "intruders-home"
	// is neither bound nor registered and must be rejected at the binding
	// gate before the fleet ever sees it.
	if err := srv.BindHome("ghost", "gateway"); err != nil {
		t.Fatal(err)
	}

	legal, err := dataset.LegalScene(dataset.ModelWindow, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	attack, err := dataset.AttackScene(dataset.ModelWindow, rand.New(rand.NewSource(78)))
	if err != nil {
		t.Fatal(err)
	}

	results, err := c.FleetAuthorize([]FleetBatchItem{
		FleetItem("home-00", "window.open", "win-1", &legal),
		FleetItem("home-01", "window.open", "win-1", &attack),
		FleetItem("home-02", "light.get_state", "lamp-1", nil),
		FleetItem("ghost", "window.open", "win-1", &legal),
		FleetItem("home-03", "no.such_op", "x", nil),
		FleetItem("intruders-home", "window.open", "win-1", &legal),
	})
	if err != nil {
		t.Fatalf("FleetAuthorize: %v", err)
	}
	if len(results) != 6 {
		t.Fatalf("got %d results, want 6", len(results))
	}
	if !results[0].Allowed || !results[0].Sensitive || results[0].Model != "window" {
		t.Fatalf("legal scene: %+v", results[0])
	}
	if results[1].Allowed || results[1].Error != "" {
		t.Fatalf("attack scene: %+v", results[1])
	}
	if !results[2].Allowed || results[2].Sensitive {
		t.Fatalf("status op: %+v", results[2])
	}
	if results[3].Error == "" || !strings.Contains(results[3].Error, "unknown home") {
		t.Fatalf("ghost home: %+v", results[3])
	}
	if results[4].Error == "" || !strings.Contains(results[4].Error, "unknown opcode") {
		t.Fatalf("bad opcode: %+v", results[4])
	}
	if results[5].Error != errHomeNotBound || results[5].Allowed {
		t.Fatalf("unbound home: %+v, want %q", results[5], errHomeNotBound)
	}
}

func TestFleetContextAndStatsEndpoints(t *testing.T) {
	srv, fl := startFleetCloud(t, 3)
	c := login(t, srv, "gateway", "s3cret")

	legal, err := dataset.LegalScene(dataset.ModelWindow, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	accepted, rejected, err := c.FleetPushContext(map[string]sensor.Snapshot{
		"home-00": legal,
		"home-01": legal,
	})
	if err != nil || accepted != 2 || len(rejected) != 0 {
		t.Fatalf("FleetPushContext = %d, %v, %v; want 2 accepted", accepted, rejected, err)
	}
	// A push batch with a bad home still lands the valid pushes and
	// reports the rejection structurally — the gateway learns which home
	// (and which index) failed without parsing message text.
	if err := srv.BindHome("ghost", "gateway"); err != nil {
		t.Fatal(err)
	}
	accepted, rejected, err = c.FleetPushContext(map[string]sensor.Snapshot{
		"home-02": legal,
		"ghost":   legal,
	})
	if err != nil || accepted != 1 || len(rejected) != 1 {
		t.Fatalf("mixed push batch = %d, %v, %v; want 1 accepted + 1 rejection", accepted, rejected, err)
	}
	if rejected[0].Home != "ghost" || !strings.Contains(rejected[0].Error, "unknown home") {
		t.Fatalf("rejection = %+v, want ghost/unknown-home", rejected[0])
	}
	if rejected[0].Index < 0 || rejected[0].Index > 1 {
		t.Fatalf("rejection index = %d, want a valid push index", rejected[0].Index)
	}

	// The pushed context now judges a sensitive op without inline context.
	results, err := c.FleetAuthorize([]FleetBatchItem{
		FleetItem("home-00", "window.open", "win-1", nil),
	})
	if err != nil || len(results) != 1 || !results[0].Allowed {
		t.Fatalf("authorize after push = %+v, %v; want allow", results, err)
	}

	stats, err := c.FleetStats()
	if err != nil {
		t.Fatalf("FleetStats: %v", err)
	}
	if stats.Homes != fl.HomeCount() || stats.Shards != fl.ShardCount() || len(stats.Models) != fl.Registry().Len() {
		t.Fatalf("stats = %d homes / %d shards / %d models, want %d/%d/%d",
			stats.Homes, stats.Shards, len(stats.Models), fl.HomeCount(), fl.ShardCount(), fl.Registry().Len())
	}
	if stats.LowTrustHomes != 0 {
		t.Fatalf("stats.LowTrustHomes = %d, want 0 on a trust-less fleet", stats.LowTrustHomes)
	}
}

func TestFleetEndpointMethodsAndBodies(t *testing.T) {
	srv, _ := startFleetCloud(t, 1)
	c := login(t, srv, "gateway", "s3cret")

	for _, tc := range []struct {
		method, path string
		body         any
		wantStatus   int
	}{
		{http.MethodGet, "/v1/fleet/authorize", nil, http.StatusMethodNotAllowed},
		{http.MethodGet, "/v1/fleet/context", nil, http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/fleet/stats", nil, http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/fleet/authorize", fleetAuthorizeRequest{}, http.StatusBadRequest},
		{http.MethodPost, "/v1/fleet/context", fleetContextRequest{}, http.StatusBadRequest},
	} {
		err := c.do(tc.method, tc.path, tc.body, nil)
		apiErr, ok := err.(*APIError)
		if !ok || apiErr.StatusCode != tc.wantStatus {
			t.Errorf("%s %s = %v, want HTTP %d", tc.method, tc.path, err, tc.wantStatus)
		}
	}
}

// TestFleetHomeOwnershipIsolation pins the tenant boundary: a session can
// only push context for, and authorize against, homes bound to its own
// account — another authenticated account pushing fabricated context for a
// victim's home, then authorizing sensitive instructions against it, is
// rejected at the binding gate (the fleet analogue of handleCommand's
// device-ownership check).
func TestFleetHomeOwnershipIsolation(t *testing.T) {
	fl := fleetForCloudTest(t, 1)
	srv, err := NewServer(Config{
		Users:    map[string]string{"victim": "s3cret", "intruder": "s3cret"},
		Registry: instr.BuiltinRegistry(),
		Forward:  func(in instr.Instruction) error { return nil },
		Fleet:    fl,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	if err := srv.BindHome("home-00", "victim"); err != nil {
		t.Fatal(err)
	}
	// A home cannot be re-bound to a different account.
	if err := srv.BindHome("home-00", "intruder"); err == nil {
		t.Fatal("BindHome rebound a home to another account")
	}
	if err := srv.BindHome("home-00", "nobody"); err == nil {
		t.Fatal("BindHome accepted an unknown user")
	}

	legal, err := dataset.LegalScene(dataset.ModelWindow, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}

	// The intruder's session cannot fabricate the victim's context.
	intruder := login(t, srv, "intruder", "s3cret")
	accepted, rejected, err := intruder.FleetPushContext(map[string]sensor.Snapshot{"home-00": legal})
	if err != nil || accepted != 0 || len(rejected) != 1 || rejected[0].Error != errHomeNotBound {
		t.Fatalf("intruder push = %d, %+v, %v; want 0 accepted + not-bound rejection", accepted, rejected, err)
	}
	// Nor authorize against it — with or without inline context.
	for _, snap := range []*sensor.Snapshot{&legal, nil} {
		results, err := intruder.FleetAuthorize([]FleetBatchItem{
			FleetItem("home-00", "window.open", "win-1", snap),
		})
		if err != nil || len(results) != 1 {
			t.Fatalf("intruder authorize = %+v, %v", results, err)
		}
		if results[0].Error != errHomeNotBound || results[0].Allowed {
			t.Fatalf("intruder authorize result = %+v, want %q", results[0], errHomeNotBound)
		}
	}

	// The owner's session still works end to end.
	victim := login(t, srv, "victim", "s3cret")
	results, err := victim.FleetAuthorize([]FleetBatchItem{
		FleetItem("home-00", "window.open", "win-1", &legal),
	})
	if err != nil || len(results) != 1 || results[0].Error != "" || !results[0].Allowed {
		t.Fatalf("owner authorize = %+v, %v; want allow", results, err)
	}
}

// TestFleetEndpointsAbsentWithoutFleet pins that a fleet-less cloud does
// not mount the endpoints at all.
func TestFleetEndpointsAbsentWithoutFleet(t *testing.T) {
	srv, _ := startCloud(t, nil)
	c := login(t, srv, "alice", "s3cret")
	err := c.do(http.MethodGet, "/v1/fleet/stats", nil, nil)
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("fleet route on fleet-less cloud = %v, want 404", err)
	}
}
