// Package cloud implements the IoT cloud of the platform architecture
// (Fig 1): when the mobile app and the device are not on the same LAN, the
// app "sends the instructions to control the device to the IoT cloud; then
// the cloud performs the command verification and forwarding". The cloud
// authenticates users, checks device ownership, runs the IDS gate, forwards
// verified instructions to the device layer, and keeps a command history.
package cloud

import (
	"context"
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"iotsid/internal/core"
	"iotsid/internal/fleet"
	"iotsid/internal/instr"
	"iotsid/internal/obs"
	"iotsid/internal/resilience"
	"iotsid/internal/sensor"
	"iotsid/internal/trust"
)

// Forwarder carries a verified instruction to the device layer — in a real
// deployment the cloud-to-gateway tunnel, here typically home.Execute or a
// miio execute call.
type Forwarder func(in instr.Instruction) error

// Gate authorises an instruction against a sensor context before
// forwarding; a non-nil error rejects it. This is the IDS hook.
type Gate func(in instr.Instruction, ctx sensor.Snapshot) error

// ContextSource supplies the sensor context the gate judges against. The
// context carries the request's deadline and cancellation.
type ContextSource func(ctx context.Context) (sensor.Snapshot, error)

// HistoryEntry records one command submission.
type HistoryEntry struct {
	User     string    `json:"user"`
	Op       string    `json:"op"`
	DeviceID string    `json:"device_id"`
	Outcome  string    `json:"outcome"` // forwarded | rejected | failed
	Detail   string    `json:"detail,omitempty"`
	At       time.Time `json:"at"`
}

// Outcome values for history entries.
const (
	OutcomeForwarded = "forwarded"
	OutcomeRejected  = "rejected"
	OutcomeFailed    = "failed"
)

// Config wires a cloud instance.
type Config struct {
	// Addr is the TCP listen address; ":0" picks a free port.
	Addr string
	// Users maps account name → secret.
	Users map[string]string
	// Registry validates opcodes.
	Registry *instr.Registry
	// Forward delivers verified instructions.
	Forward Forwarder
	// Gate is the optional IDS hook.
	Gate Gate
	// Context supplies the snapshot the gate judges against; required
	// when Gate is set (unless Collector is set instead).
	Context ContextSource
	// Collector, when non-nil, supplies the gate's context instead of
	// Context — wire an event-driven core.EpochCollector here. It is
	// mutually exclusive with Context and with ContextTTL: an epoch read
	// is already a pointer dereference, caching it would only add
	// staleness, so a config asking for both is rejected rather than
	// silently resolved.
	Collector core.Collector
	// ContextTTL, when positive, caches the gate's sensor context for
	// that long and single-flights concurrent collections, so a burst of
	// commands shares one collector round trip instead of issuing one
	// each. Zero keeps every command collecting fresh context. Only valid
	// with Context (not Collector).
	ContextTTL time.Duration
	// Fleet, when non-nil, mounts the multi-tenant endpoints:
	// POST /v1/fleet/authorize (batch authorization across homes),
	// POST /v1/fleet/context (per-home context pushes), and
	// GET /v1/fleet/stats. All three require a session, and authorize
	// items / context pushes additionally require the named home to be
	// bound to the session's account via BindHome — the tenant analogue
	// of the device-ownership check in /v1/command.
	Fleet *fleet.Fleet
	// FleetWorkers bounds the per-request shard fan-out of
	// /v1/fleet/authorize; 0 means GOMAXPROCS.
	FleetWorkers int
	// ContextTimeout bounds each command's context collection (default 10s)
	// — a hung gateway turns into a 503, not a wedged handler.
	ContextTimeout time.Duration
	// Health, when non-nil, is reported at /healthz: 200 while every
	// required sensor source is serving (fresh or within its staleness
	// budget), 503 otherwise. Wire it to the same resilience.Registry the
	// context collector updates.
	Health *resilience.Registry
	// Trust, when non-nil, adds sensor-trust rows to /healthz and degrades
	// it (503) while any required source sits below its trust threshold —
	// availability and truthfulness are reported through the same probe.
	// Wire it to the engine the gate's collector observes into.
	Trust *trust.Engine
	// Metrics, when non-nil, is served as Prometheus text at GET /metrics
	// (unauthenticated, like /healthz). The cloud's internal context cache
	// (ContextTTL) registers its hit/miss/coalesced/stale counters here too.
	Metrics *obs.Registry
	// Pprof mounts net/http/pprof's profiling handlers under /debug/pprof/.
	// The endpoints expose stack traces and heap contents — enable only on
	// operator-facing listeners.
	Pprof bool
	// Now stamps history entries; defaults to time.Now.
	Now func() time.Time
	// MaxLoginFailures locks an account after this many consecutive bad
	// logins (default 5).
	MaxLoginFailures int
	// LockoutWindow is how long a locked account stays locked (default 5
	// minutes).
	LockoutWindow time.Duration
}

// Server is a running cloud instance.
type Server struct {
	cfg  Config
	ln   net.Listener
	http *http.Server
	wg   sync.WaitGroup

	mu       sync.Mutex
	sessions map[string]string // session token → user
	devices  map[string]string // device ID → owning user
	homes    map[string]string // fleet home ID → owning account
	history  []HistoryEntry
	failures map[string]int       // user → consecutive failed logins
	lockedAt map[string]time.Time // user → lockout start
}

// NewServer validates the configuration, binds, and serves.
func NewServer(cfg Config) (*Server, error) {
	if len(cfg.Users) == 0 {
		return nil, fmt.Errorf("cloud: server needs at least one user account")
	}
	if cfg.Registry == nil {
		return nil, fmt.Errorf("cloud: server needs an instruction registry")
	}
	if cfg.Forward == nil {
		return nil, fmt.Errorf("cloud: server needs a forwarder")
	}
	if cfg.Gate != nil && cfg.Context == nil && cfg.Collector == nil {
		return nil, fmt.Errorf("cloud: a gate needs a context source or a collector")
	}
	// Collector and Context are two answers to the same question; a config
	// supplying both is ambiguous and a config TTL-wrapping a collector is
	// asking to re-cache an epoch read. Both used to resolve silently
	// (Collector won); now they are explicit errors.
	if cfg.Collector != nil && cfg.Context != nil {
		return nil, fmt.Errorf("cloud: Collector and Context are mutually exclusive — wire the gate's context through one of them")
	}
	if cfg.Collector != nil && cfg.ContextTTL > 0 {
		return nil, fmt.Errorf("cloud: ContextTTL only applies to Context; a Collector (epoch read) must not be TTL-cached")
	}
	if cfg.Collector != nil {
		cfg.Context = cfg.Collector.Collect
	}
	if cfg.Context != nil && cfg.ContextTTL > 0 {
		cached, err := core.NewCachedCollector(core.CollectorFunc(cfg.Context), cfg.ContextTTL)
		if err != nil {
			return nil, err
		}
		cached.Instrument(cfg.Metrics) // nil registry is a no-op
		cfg.Context = cached.Collect
	}
	if cfg.ContextTimeout <= 0 {
		cfg.ContextTimeout = 10 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.MaxLoginFailures <= 0 {
		cfg.MaxLoginFailures = 5
	}
	if cfg.LockoutWindow <= 0 {
		cfg.LockoutWindow = 5 * time.Minute
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("cloud: listen: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		sessions: make(map[string]string),
		devices:  make(map[string]string),
		homes:    make(map[string]string),
		failures: make(map[string]int),
		lockedAt: make(map[string]time.Time),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/login", s.handleLogin)
	mux.HandleFunc("/v1/devices", s.handleDevices)
	mux.HandleFunc("/v1/command", s.handleCommand)
	mux.HandleFunc("/v1/history", s.handleHistory)
	mux.HandleFunc("/healthz", s.handleHealthz)
	if cfg.Fleet != nil {
		mux.HandleFunc("/v1/fleet/authorize", s.handleFleetAuthorize)
		mux.HandleFunc("/v1/fleet/context", s.handleFleetContext)
		mux.HandleFunc("/v1/fleet/stats", s.handleFleetStats)
	}
	if cfg.Metrics != nil {
		mux.Handle("/metrics", cfg.Metrics.Handler())
	}
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.http = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = s.http.Serve(ln)
	}()
	return s, nil
}

// URL returns the cloud's base URL.
func (s *Server) URL() string { return "http://" + s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error {
	err := s.http.Close()
	s.wg.Wait()
	return err
}

// BindDevice registers a device as owned by a user (provisioning — in the
// vendor world this is the pairing flow).
func (s *Server) BindDevice(deviceID, user string) error {
	if _, ok := s.cfg.Users[user]; !ok {
		return fmt.Errorf("cloud: unknown user %q", user)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if owner, bound := s.devices[deviceID]; bound && owner != user {
		return fmt.Errorf("cloud: device %q already bound to another account", deviceID)
	}
	s.devices[deviceID] = user
	return nil
}

// BindHome registers a fleet home as owned by an account (tenant
// provisioning — the fleet analogue of BindDevice). The fleet endpoints
// reject authorize items and context pushes naming homes the session's
// account does not own, so a home must be bound before any gateway can
// speak for it; rebinding to the same account is idempotent.
func (s *Server) BindHome(homeID, user string) error {
	if _, ok := s.cfg.Users[user]; !ok {
		return fmt.Errorf("cloud: unknown user %q", user)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if owner, bound := s.homes[homeID]; bound && owner != user {
		return fmt.Errorf("cloud: home %q already bound to another account", homeID)
	}
	s.homes[homeID] = user
	return nil
}

// History returns a copy of the command log.
func (s *Server) History() []HistoryEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]HistoryEntry, len(s.history))
	copy(out, s.history)
	return out
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type loginRequest struct {
	User   string `json:"user"`
	Secret string `json:"secret"`
}

type loginResponse struct {
	Session string `json:"session"`
}

func (s *Server) handleLogin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	var req loginRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid JSON body"})
		return
	}
	// Brute-force lockout: too many consecutive failures freeze the
	// account for the lockout window.
	s.mu.Lock()
	if lockedAt, locked := s.lockedAt[req.User]; locked {
		if s.cfg.Now().Sub(lockedAt) < s.cfg.LockoutWindow {
			s.mu.Unlock()
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "account locked: too many failed logins"})
			return
		}
		delete(s.lockedAt, req.User)
		s.failures[req.User] = 0
	}
	s.mu.Unlock()

	secret, ok := s.cfg.Users[req.User]
	if !ok || subtle.ConstantTimeCompare([]byte(secret), []byte(req.Secret)) != 1 {
		s.mu.Lock()
		if ok { // only known accounts accumulate lockout state
			s.failures[req.User]++
			if s.failures[req.User] >= s.cfg.MaxLoginFailures {
				s.lockedAt[req.User] = s.cfg.Now()
			}
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusUnauthorized, errorBody{Error: "bad credentials"})
		return
	}
	s.mu.Lock()
	s.failures[req.User] = 0
	s.mu.Unlock()
	token, err := newToken()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "token generation failed"})
		return
	}
	s.mu.Lock()
	s.sessions[token] = req.User
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, loginResponse{Session: token})
}

func newToken() (string, error) {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(buf[:]), nil
}

// sessionUser authenticates a request, returning the user or "".
func (s *Server) sessionUser(r *http.Request) string {
	auth := r.Header.Get("Authorization")
	const prefix = "Session "
	if !strings.HasPrefix(auth, prefix) {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[strings.TrimPrefix(auth, prefix)]
}

func (s *Server) handleDevices(w http.ResponseWriter, r *http.Request) {
	user := s.sessionUser(r)
	if user == "" {
		writeJSON(w, http.StatusUnauthorized, errorBody{Error: "login required"})
		return
	}
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	s.mu.Lock()
	var ids []string
	for id, owner := range s.devices {
		if owner == user {
			ids = append(ids, id)
		}
	}
	s.mu.Unlock()
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	writeJSON(w, http.StatusOK, ids)
}

type commandRequest struct {
	Op       string         `json:"op"`
	DeviceID string         `json:"device_id"`
	Args     map[string]any `json:"args,omitempty"`
}

type commandResponse struct {
	Outcome string `json:"outcome"`
	Detail  string `json:"detail,omitempty"`
}

func (s *Server) handleCommand(w http.ResponseWriter, r *http.Request) {
	user := s.sessionUser(r)
	if user == "" {
		writeJSON(w, http.StatusUnauthorized, errorBody{Error: "login required"})
		return
	}
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	var req commandRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid JSON body"})
		return
	}
	// Verification step 1: the opcode must exist.
	in, err := s.cfg.Registry.Build(req.Op, req.DeviceID, instr.OriginUser, req.Args)
	if err != nil {
		s.record(user, req, OutcomeRejected, err.Error())
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	// Verification step 2: the device must be bound to this account.
	s.mu.Lock()
	owner := s.devices[req.DeviceID]
	s.mu.Unlock()
	if owner != user {
		s.record(user, req, OutcomeRejected, "device not bound to this account")
		writeJSON(w, http.StatusForbidden, errorBody{Error: "device not bound to this account"})
		return
	}
	// Verification step 3: the IDS gate. Collection is bounded by the
	// request context plus ContextTimeout; an unavailable context is 503 —
	// never a silent pass — and an open breaker additionally tells the
	// client when to come back via Retry-After.
	if s.cfg.Gate != nil {
		collectCtx, cancel := context.WithTimeout(r.Context(), s.cfg.ContextTimeout)
		ctx, err := s.cfg.Context(collectCtx)
		cancel()
		if err != nil {
			s.record(user, req, OutcomeFailed, "context unavailable: "+err.Error())
			var open *resilience.OpenError
			if errors.As(err, &open) {
				secs := int(open.RetryAfter / time.Second)
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
			}
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "sensor context unavailable"})
			return
		}
		if err := s.cfg.Gate(in, ctx); err != nil {
			s.record(user, req, OutcomeRejected, err.Error())
			writeJSON(w, http.StatusForbidden, errorBody{Error: err.Error()})
			return
		}
	}
	// Forward.
	if err := s.cfg.Forward(in); err != nil {
		s.record(user, req, OutcomeFailed, err.Error())
		writeJSON(w, http.StatusBadGateway, errorBody{Error: err.Error()})
		return
	}
	s.record(user, req, OutcomeForwarded, "")
	writeJSON(w, http.StatusOK, commandResponse{Outcome: OutcomeForwarded})
}

func (s *Server) record(user string, req commandRequest, outcome, detail string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.history = append(s.history, HistoryEntry{
		User: user, Op: req.Op, DeviceID: req.DeviceID,
		Outcome: outcome, Detail: detail, At: s.cfg.Now(),
	})
}

// healthzBody is the /healthz response document.
type healthzBody struct {
	Status  string                    `json:"status"` // ok | degraded
	Sources []resilience.SourceHealth `json:"sources,omitempty"`
	Trust   []trust.SourceTrust       `json:"trust,omitempty"`
}

// handleHealthz reports per-source collection health and sensor trust:
// 200 "ok" while every required sensor source is serving AND at or above
// its trust threshold, 503 "degraded" otherwise. The endpoint is
// unauthenticated, as load balancers expect.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	body := healthzBody{Status: "ok"}
	status := http.StatusOK
	if s.cfg.Health != nil {
		body.Sources = s.cfg.Health.Snapshot()
		if !s.cfg.Health.Healthy() {
			body.Status = "degraded"
			status = http.StatusServiceUnavailable
		}
	}
	if s.cfg.Trust != nil {
		body.Trust = s.cfg.Trust.Report()
		if s.cfg.Trust.LowTrustRequired() {
			body.Status = "degraded"
			status = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, status, body)
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	user := s.sessionUser(r)
	if user == "" {
		writeJSON(w, http.StatusUnauthorized, errorBody{Error: "login required"})
		return
	}
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	s.mu.Lock()
	var out []HistoryEntry
	for _, e := range s.history {
		if e.User == user {
			out = append(out, e)
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}
