package cloud

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"iotsid/internal/instr"
	"iotsid/internal/sensor"
)

type captureForwarder struct {
	mu   sync.Mutex
	got  []instr.Instruction
	fail bool
}

func (f *captureForwarder) forward(in instr.Instruction) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return errors.New("device offline")
	}
	f.got = append(f.got, in)
	return nil
}

func (f *captureForwarder) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.got)
}

func startCloud(t *testing.T, gate Gate) (*Server, *captureForwarder) {
	t.Helper()
	fwd := &captureForwarder{}
	cfg := Config{
		Users:    map[string]string{"alice": "s3cret", "bob": "hunter2"},
		Registry: instr.BuiltinRegistry(),
		Forward:  fwd.forward,
	}
	if gate != nil {
		cfg.Gate = gate
		cfg.Context = func(context.Context) (sensor.Snapshot, error) {
			s := sensor.NewSnapshot(sensorZero())
			s.Set(sensor.FeatSmoke, sensor.Bool(false))
			return s, nil
		}
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	if err := srv.BindDevice("window-1", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := srv.BindDevice("light-1", "alice"); err != nil {
		t.Fatal(err)
	}
	return srv, fwd
}

func login(t *testing.T, srv *Server, user, secret string) *Client {
	t.Helper()
	c, err := NewClient(srv.URL())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Login(user, secret); err != nil {
		t.Fatalf("Login: %v", err)
	}
	return c
}

func TestLoginAndCommandFlow(t *testing.T) {
	srv, fwd := startCloud(t, nil)
	c := login(t, srv, "alice", "s3cret")

	devices, err := c.Devices()
	if err != nil {
		t.Fatalf("Devices: %v", err)
	}
	if len(devices) != 2 || devices[0] != "light-1" || devices[1] != "window-1" {
		t.Errorf("devices = %v", devices)
	}

	if err := c.Command("window.open", "window-1", nil); err != nil {
		t.Fatalf("Command: %v", err)
	}
	if fwd.count() != 1 {
		t.Fatalf("forwarded = %d", fwd.count())
	}
	hist, err := c.History()
	if err != nil {
		t.Fatalf("History: %v", err)
	}
	if len(hist) != 1 || hist[0].Outcome != OutcomeForwarded || hist[0].Op != "window.open" {
		t.Errorf("history = %+v", hist)
	}
}

func TestLoginFailures(t *testing.T) {
	srv, _ := startCloud(t, nil)
	c, err := NewClient(srv.URL())
	if err != nil {
		t.Fatal(err)
	}
	var apiErr *APIError
	if err := c.Login("alice", "wrong"); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusUnauthorized {
		t.Errorf("bad secret: %v", err)
	}
	if err := c.Login("mallory", "x"); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusUnauthorized {
		t.Errorf("unknown user: %v", err)
	}
	// Unauthenticated command.
	if err := c.Command("window.open", "window-1", nil); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthenticated command: %v", err)
	}
}

func TestCommandVerification(t *testing.T) {
	srv, fwd := startCloud(t, nil)
	alice := login(t, srv, "alice", "s3cret")
	bob := login(t, srv, "bob", "hunter2")
	var apiErr *APIError

	// Unknown opcode rejected.
	if err := alice.Command("warp.engage", "window-1", nil); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown op: %v", err)
	}
	// Bob does not own alice's window.
	if err := bob.Command("window.open", "window-1", nil); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusForbidden {
		t.Errorf("foreign device: %v", err)
	}
	// Unbound device rejected.
	if err := alice.Command("vacuum.start", "vacuum-1", nil); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusForbidden {
		t.Errorf("unbound device: %v", err)
	}
	if fwd.count() != 0 {
		t.Errorf("rejected commands forwarded: %d", fwd.count())
	}
	// Rejections are in the history.
	hist, err := alice.History()
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 {
		t.Fatalf("alice history = %+v", hist)
	}
	for _, h := range hist {
		if h.Outcome != OutcomeRejected {
			t.Errorf("entry = %+v", h)
		}
	}
}

func TestCloudGateBlocks(t *testing.T) {
	gate := func(in instr.Instruction, ctx sensor.Snapshot) error {
		if in.Op == "window.open" {
			return fmt.Errorf("ids: context illegal")
		}
		return nil
	}
	srv, fwd := startCloud(t, gate)
	c := login(t, srv, "alice", "s3cret")
	var apiErr *APIError
	if err := c.Command("window.open", "window-1", nil); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusForbidden {
		t.Fatalf("gated command: %v", err)
	}
	if fwd.count() != 0 {
		t.Error("gated command forwarded")
	}
	if err := c.Command("light.on", "light-1", nil); err != nil {
		t.Fatalf("allowed command: %v", err)
	}
	if fwd.count() != 1 {
		t.Error("allowed command not forwarded")
	}
}

func TestCloudGateContextUnavailable(t *testing.T) {
	fwd := &captureForwarder{}
	srv, err := NewServer(Config{
		Users:    map[string]string{"alice": "s3cret"},
		Registry: instr.BuiltinRegistry(),
		Forward:  fwd.forward,
		Gate:     func(instr.Instruction, sensor.Snapshot) error { return nil },
		Context:  func(context.Context) (sensor.Snapshot, error) { return sensor.Snapshot{}, errors.New("collector down") },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.BindDevice("window-1", "alice"); err != nil {
		t.Fatal(err)
	}
	c := login(t, srv, "alice", "s3cret")
	var apiErr *APIError
	if err := c.Command("window.open", "window-1", nil); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("context-down command: %v", err)
	}
	if fwd.count() != 0 {
		t.Error("command forwarded without context")
	}
}

func TestForwarderFailureRecorded(t *testing.T) {
	srv, fwd := startCloud(t, nil)
	fwd.fail = true
	c := login(t, srv, "alice", "s3cret")
	var apiErr *APIError
	if err := c.Command("window.open", "window-1", nil); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadGateway {
		t.Fatalf("failed forward: %v", err)
	}
	hist, err := c.History()
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1 || hist[0].Outcome != OutcomeFailed {
		t.Errorf("history = %+v", hist)
	}
}

func TestBindDeviceRules(t *testing.T) {
	srv, _ := startCloud(t, nil)
	if err := srv.BindDevice("x", "nobody"); err == nil {
		t.Error("want unknown-user error")
	}
	if err := srv.BindDevice("window-1", "bob"); err == nil {
		t.Error("want already-bound error")
	}
	// Re-binding to the same owner is idempotent.
	if err := srv.BindDevice("window-1", "alice"); err != nil {
		t.Errorf("idempotent rebind: %v", err)
	}
}

func TestServerConfigValidation(t *testing.T) {
	reg := instr.BuiltinRegistry()
	fwd := func(instr.Instruction) error { return nil }
	cases := []Config{
		{Registry: reg, Forward: fwd},                       // no users
		{Users: map[string]string{"a": "b"}, Forward: fwd},  // no registry
		{Users: map[string]string{"a": "b"}, Registry: reg}, // no forwarder
		{Users: map[string]string{"a": "b"}, Registry: reg, Forward: fwd, // gate without context
			Gate: func(instr.Instruction, sensor.Snapshot) error { return nil }},
	}
	for i, cfg := range cases {
		if _, err := NewServer(cfg); err == nil {
			t.Errorf("case %d: want config error", i)
		}
	}
}

func TestClientValidation(t *testing.T) {
	if _, err := NewClient("://bad"); err == nil {
		t.Error("want URL error")
	}
	c, err := NewClient("http://127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Login("a", "b"); err == nil {
		t.Error("want connection error")
	}
}

func TestHistoryIsolatedPerUser(t *testing.T) {
	srv, _ := startCloud(t, nil)
	alice := login(t, srv, "alice", "s3cret")
	bob := login(t, srv, "bob", "hunter2")
	if err := alice.Command("light.on", "light-1", nil); err != nil {
		t.Fatal(err)
	}
	bobHist, err := bob.History()
	if err != nil {
		t.Fatal(err)
	}
	if len(bobHist) != 0 {
		t.Errorf("bob sees alice's history: %+v", bobHist)
	}
	// Server-side full history has it.
	if len(srv.History()) != 1 {
		t.Errorf("server history = %+v", srv.History())
	}
}

func sensorZero() time.Time { return time.Time{} }

func TestLoginLockout(t *testing.T) {
	now := time.Unix(5000, 0)
	fwd := &captureForwarder{}
	srv, err := NewServer(Config{
		Users:            map[string]string{"alice": "s3cret"},
		Registry:         instr.BuiltinRegistry(),
		Forward:          fwd.forward,
		Now:              func() time.Time { return now },
		MaxLoginFailures: 3,
		LockoutWindow:    time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := NewClient(srv.URL())
	if err != nil {
		t.Fatal(err)
	}
	var apiErr *APIError
	// Three failures trip the lockout.
	for i := 0; i < 3; i++ {
		if err := c.Login("alice", "wrong"); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusUnauthorized {
			t.Fatalf("failure %d: %v", i, err)
		}
	}
	// Even the correct secret is rejected while locked.
	if err := c.Login("alice", "s3cret"); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("locked login: %v", err)
	}
	// After the window the account thaws.
	now = now.Add(2 * time.Minute)
	if err := c.Login("alice", "s3cret"); err != nil {
		t.Fatalf("post-lockout login: %v", err)
	}
	// A successful login resets the failure counter.
	if err := c.Login("alice", "wrong"); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusUnauthorized {
		t.Fatalf("single failure after reset: %v", err)
	}
	if err := c.Login("alice", "s3cret"); err != nil {
		t.Fatalf("login after single failure: %v", err)
	}
	// Unknown users never accumulate lockout state (no user enumeration
	// via 429s).
	for i := 0; i < 10; i++ {
		if err := c.Login("ghost", "x"); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusUnauthorized {
			t.Fatalf("ghost login %d: %v", i, err)
		}
	}
}

// TestCachedContextSharesCollections proves ContextTTL makes a burst of
// commands share one collector round trip instead of one each.
func TestCachedContextSharesCollections(t *testing.T) {
	fwd := &captureForwarder{}
	var mu sync.Mutex
	collects := 0
	cfg := Config{
		Users:    map[string]string{"alice": "s3cret"},
		Registry: instr.BuiltinRegistry(),
		Forward:  fwd.forward,
		Gate:     func(in instr.Instruction, ctx sensor.Snapshot) error { return nil },
		Context: func(context.Context) (sensor.Snapshot, error) {
			mu.Lock()
			collects++
			mu.Unlock()
			s := sensor.NewSnapshot(sensorZero())
			s.Set(sensor.FeatSmoke, sensor.Bool(false))
			return s, nil
		},
		ContextTTL: time.Minute,
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	if err := srv.BindDevice("window-1", "alice"); err != nil {
		t.Fatal(err)
	}
	c := login(t, srv, "alice", "s3cret")
	for i := 0; i < 8; i++ {
		if err := c.Command("window.open", "window-1", nil); err != nil {
			t.Fatalf("Command %d: %v", i, err)
		}
	}
	mu.Lock()
	got := collects
	mu.Unlock()
	if got != 1 {
		t.Errorf("context collected %d times for 8 commands, want 1", got)
	}
	if fwd.count() != 8 {
		t.Errorf("forwarded = %d", fwd.count())
	}
}
