package cloud

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// APIError is an error response from the cloud.
type APIError struct {
	StatusCode int
	Message    string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("cloud: HTTP %d: %s", e.StatusCode, e.Message)
}

// Client is the mobile-app side of the cloud control path.
type Client struct {
	baseURL string
	session string
	http    *http.Client
}

// NewClient builds an unauthenticated client.
func NewClient(baseURL string) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("cloud: invalid base URL %q", baseURL)
	}
	return &Client{
		baseURL: u.Scheme + "://" + u.Host,
		http:    &http.Client{Timeout: 5 * time.Second},
	}, nil
}

// Login authenticates and stores the session token.
func (c *Client) Login(user, secret string) error {
	var resp loginResponse
	if err := c.do(http.MethodPost, "/v1/login", loginRequest{User: user, Secret: secret}, &resp); err != nil {
		return err
	}
	if resp.Session == "" {
		return fmt.Errorf("cloud: empty session token")
	}
	c.session = resp.Session
	return nil
}

// Devices lists the devices bound to the logged-in account.
func (c *Client) Devices() ([]string, error) {
	var out []string
	if err := c.do(http.MethodGet, "/v1/devices", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Command submits one control instruction through the cloud path.
func (c *Client) Command(op, deviceID string, args map[string]any) error {
	var resp commandResponse
	return c.do(http.MethodPost, "/v1/command",
		commandRequest{Op: op, DeviceID: deviceID, Args: args}, &resp)
}

// History fetches the account's command log.
func (c *Client) History() ([]HistoryEntry, error) {
	var out []HistoryEntry
	if err := c.do(http.MethodGet, "/v1/history", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *Client) do(method, path string, body, out any) error {
	var reader io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("cloud: marshal body: %w", err)
		}
		reader = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.baseURL+path, reader)
	if err != nil {
		return fmt.Errorf("cloud: build request: %w", err)
	}
	if c.session != "" {
		req.Header.Set("Authorization", "Session "+c.session)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("cloud: %s %s: %w", method, path, err)
	}
	defer func() { _ = resp.Body.Close() }() // best-effort: read errors surface via the decoder
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		msg := resp.Status
		if err := json.NewDecoder(resp.Body).Decode(&eb); err == nil && eb.Error != "" {
			msg = eb.Error
		}
		return &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("cloud: decode response: %w", err)
	}
	return nil
}
