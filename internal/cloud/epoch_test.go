package cloud

import (
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"iotsid/internal/core"
	"iotsid/internal/epoch"
	"iotsid/internal/instr"
	"iotsid/internal/sensor"
)

// TestCloudGateEpochCollector wires the gate's context through an
// event-driven collector: before any push the gate has no context (503),
// after a push commands judge against the published view, and the gate
// sees state changes as soon as they are pushed — no TTL window.
func TestCloudGateEpochCollector(t *testing.T) {
	st, err := epoch.NewStore(epoch.Config{},
		epoch.SourceConfig{Name: "sim", Required: true, FreshFor: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	coll, err := core.NewEpochCollector(core.EpochCollectorConfig{}, st)
	if err != nil {
		t.Fatal(err)
	}
	fwd := &captureForwarder{}
	gate := func(in instr.Instruction, ctx sensor.Snapshot) error {
		if ctx.Bool(sensor.FeatSmoke) {
			return fmt.Errorf("ids: smoke present, %s rejected", in.Op)
		}
		return nil
	}
	srv, err := NewServer(Config{
		Users:     map[string]string{"alice": "s3cret"},
		Registry:  instr.BuiltinRegistry(),
		Forward:   fwd.forward,
		Gate:      gate,
		Collector: coll,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	if err := srv.BindDevice("window-1", "alice"); err != nil {
		t.Fatal(err)
	}
	c := login(t, srv, "alice", "s3cret")

	// Nothing pushed yet: the gate has no context to judge against.
	var apiErr *APIError
	if err := c.Command("window.open", "window-1", nil); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-push command: %v", err)
	}

	// Push a smoke-free context: the command judges and forwards.
	clear := sensor.Snapshot{}
	clear.Set(sensor.FeatSmoke, sensor.Bool(false))
	if err := st.Push("sim", clear); err != nil {
		t.Fatal(err)
	}
	if err := c.Command("window.open", "window-1", nil); err != nil {
		t.Fatalf("post-push command: %v", err)
	}
	if fwd.count() != 1 {
		t.Fatalf("forwarded = %d, want 1", fwd.count())
	}

	// Push smoke: the very next command sees it — no cache staleness.
	smoke := sensor.Snapshot{}
	smoke.Set(sensor.FeatSmoke, sensor.Bool(true))
	if err := st.Push("sim", smoke); err != nil {
		t.Fatal(err)
	}
	if err := c.Command("window.open", "window-1", nil); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusForbidden {
		t.Fatalf("smoke-context command: %v", err)
	}
	if fwd.count() != 1 {
		t.Error("gated command forwarded")
	}
}
