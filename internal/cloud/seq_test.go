package cloud

import (
	"math/rand"
	"testing"
	"time"

	"iotsid/internal/dataset"
	"iotsid/internal/fleet"
	"iotsid/internal/seq"
)

// TestFleetStatsSeqAnomalies: a same-tick automation chain against a
// sequence-armed home is rejected through the public batch endpoint, and
// the rejection is visible in /v1/fleet/stats as seq_anomalies — fed
// entirely through the cloud API (push-with-judge items, JSON round
// trip).
func TestFleetStatsSeqAnomalies(t *testing.T) {
	srv, fl := startFleetCloud(t, 1)
	set, err := seq.Train(seq.TrainConfig{Seed: 7, Models: []dataset.Model{dataset.ModelWindow}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.AddHome(fleet.HomeConfig{ID: "chained", Sequence: set}); err != nil {
		t.Fatal(err)
	}
	if err := srv.BindHome("chained", "gateway"); err != nil {
		t.Fatal(err)
	}
	c := login(t, srv, "gateway", "s3cret")

	stats, err := c.FleetStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SeqAnomalies != 0 {
		t.Fatalf("SeqAnomalies before attack = %d, want 0", stats.SeqAnomalies)
	}

	// Benign warmup: a coherent daytime stream, every decision allowed.
	for i, e := range seq.LegalTrace(rand.New(rand.NewSource(404)), 8, 9, 12) {
		snap := e.WindowScene()
		op := "window.get_state"
		if e.Sensitive {
			op = "window.open"
		}
		res, err := c.FleetAuthorize([]FleetBatchItem{{Home: "chained", Op: op, DeviceID: "w", Context: &snap}})
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Error != "" || !res[0].Allowed {
			t.Fatalf("benign event %d: %+v", i, res[0])
		}
	}

	// Same-tick chain: three status reads and the sensitive tail, one
	// timestamp. The tree allows every scene; the sequence judge refuses
	// the tail.
	at := time.Date(2021, 4, 1, 11, 0, 0, 0, time.UTC)
	burst := seq.TraceEvent{At: at, Hour: 11, Voice: true, Occupied: true}
	items := make([]FleetBatchItem, 0, 4)
	for i := 0; i < 3; i++ {
		snap := burst.WindowScene()
		items = append(items, FleetBatchItem{Home: "chained", Op: "window.get_state", DeviceID: "w", Context: &snap})
	}
	tail := burst
	tail.Sensitive = true
	tailSnap := tail.WindowScene()
	items = append(items, FleetBatchItem{Home: "chained", Op: "window.open", DeviceID: "w", Context: &tailSnap})
	res, err := c.FleetAuthorize(items)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if res[i].Error != "" || !res[i].Allowed {
			t.Fatalf("chain filler %d: %+v", i, res[i])
		}
	}
	if res[3].Error != "" || res[3].Allowed {
		t.Fatalf("chain tail must be sequence-rejected, got %+v", res[3])
	}

	stats, err = c.FleetStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SeqAnomalies != 1 {
		t.Fatalf("SeqAnomalies after attack = %d, want 1", stats.SeqAnomalies)
	}
}
