package cloud

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"iotsid/internal/core"
	"iotsid/internal/dataset"
	"iotsid/internal/instr"
	"iotsid/internal/obs"
	"iotsid/internal/resilience"
	"iotsid/internal/sensor"
)

// TestMetricsEndpointExposition is the end-to-end observability check: a
// cloud wired the way cmd/iotsidd wires it (framework + multi-source
// collector + context cache sharing one registry) serves a valid Prometheus
// exposition on GET /metrics covering every instrumented subsystem —
// authorization decisions, per-source collector provenance, breaker
// transitions, cache results, and worker-pool utilization.
func TestMetricsEndpointExposition(t *testing.T) {
	// The pool metrics register on the process-default registry, so the
	// endpoint must serve that registry to cover them — same as production.
	reg := obs.Default()

	corpus, err := dataset.Corpus(dataset.CorpusConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fm, err := core.Train(corpus, dataset.BuildConfig{Seed: 42}, core.TrainConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.DefaultDetector()
	if err != nil {
		t.Fatal(err)
	}
	scene, err := dataset.LegalScene(dataset.ModelWindow, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}

	// One healthy required source, one flapping optional source guarded by
	// a breaker (threshold 1, so the first failure trips it) and a retry
	// policy — every resilience series gets traffic.
	auxCalls := 0
	aux := core.CollectorFunc(func(ctx context.Context) (sensor.Snapshot, error) {
		auxCalls++
		return sensor.Snapshot{}, errors.New("aux gateway down")
	})
	sim := core.CollectorFunc(func(ctx context.Context) (sensor.Snapshot, error) {
		return scene, nil
	})
	noSleep := func(ctx context.Context, d time.Duration) error { return nil }
	breaker := resilience.NewBreaker(resilience.BreakerConfig{
		Name: "aux", FailureThreshold: 1, OpenTimeout: time.Hour,
		OnStateChange: core.BreakerTransitionHook(reg, "aux"),
	})
	multi, err := core.NewMultiCollector(
		core.MultiConfig{Metrics: reg},
		core.Source{Name: "sim", Collector: sim, Required: true},
		core.Source{Name: "aux", Collector: aux, Breaker: breaker,
			Retry: &resilience.Policy{MaxAttempts: 2, Sleep: noSleep}},
	)
	if err != nil {
		t.Fatal(err)
	}
	f, err := core.New(core.Config{Detector: det, Collector: multi, Memory: fm, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}

	fwd := &captureForwarder{}
	srv, err := NewServer(Config{
		Users:      map[string]string{"alice": "s3cret"},
		Registry:   instr.BuiltinRegistry(),
		Forward:    fwd.forward,
		Gate:       f.Gate,
		Context:    multi.Collect,
		ContextTTL: time.Minute,
		Metrics:    reg,
		Pprof:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	if err := srv.BindDevice("window-1", "alice"); err != nil {
		t.Fatal(err)
	}
	c := login(t, srv, "alice", "s3cret")
	// Two commands: the first collect is a cache miss, the second a hit.
	for i := 0; i < 2; i++ {
		if err := c.Command("window.open", "window-1", nil); err != nil {
			t.Fatalf("command %d: %v", i, err)
		}
	}

	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// Structural validity: every non-comment line is `name[{labels}] value`
	// with a parseable float value.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
	}

	// Coverage: one series from each instrumented subsystem.
	for _, series := range []string{
		`iotsid_authz_decisions_total{outcome="`,                      // authorization
		"iotsid_authz_latency_seconds_bucket",                         // latency histogram
		`iotsid_collector_source_collects_total{source="sim",state="`, // provenance
		`iotsid_collector_retry_attempts_total{source="aux"}`,         // retries
		`iotsid_breaker_transitions_total{name="aux",to="open"} 1`,    // breaker
		`iotsid_cache_collects_total{result="miss"}`,                  // context cache
		`iotsid_cache_collects_total{result="hit"}`,                   // cache fast path
		"iotsid_par_runs_total",                                       // worker pool
		"iotsid_par_workers_busy",                                     // pool gauge
	} {
		if !strings.Contains(body, series) {
			t.Errorf("exposition missing %q", series)
		}
	}
	if auxCalls == 0 {
		t.Fatal("aux source was never collected; the resilience series are vacuous")
	}

	// The breaker tripped on the first command; the second command must
	// have been short-circuited without touching aux (cache hit anyway).
	if got := breaker.State(); got != resilience.StateOpen {
		t.Fatalf("breaker state %v, want open", got)
	}

	// pprof is mounted on the same mux.
	pp, err := http.Get(srv.URL() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ status %d", pp.StatusCode)
	}
}

// TestMetricsEndpointMethodsAndAbsence: POST is rejected, and a server
// without a registry does not expose the endpoint at all.
func TestMetricsEndpointMethodsAndAbsence(t *testing.T) {
	reg := obs.NewRegistry()
	fwd := &captureForwarder{}
	srv, err := NewServer(Config{
		Users:    map[string]string{"alice": "s3cret"},
		Registry: instr.BuiltinRegistry(),
		Forward:  fwd.forward,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	resp, err := http.Post(srv.URL()+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics status %d, want 405", resp.StatusCode)
	}

	bare, err := NewServer(Config{
		Users:    map[string]string{"alice": "s3cret"},
		Registry: instr.BuiltinRegistry(),
		Forward:  fwd.forward,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = bare.Close() })
	resp, err = http.Get(bare.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /metrics without a registry: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(bare.URL() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /debug/pprof/ without Pprof: status %d, want 404", resp.StatusCode)
	}
}
