package cloud

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"iotsid/internal/dataset"
	"iotsid/internal/fleet"
	"iotsid/internal/instr"
	"iotsid/internal/sensor"
	"iotsid/internal/trust"
)

func trustEngineForCloud(t *testing.T, source string) *trust.Engine {
	t.Helper()
	e, err := trust.NewEngine(trust.Config{Threshold: 0.5, Decay: 0.7},
		trust.SourceConfig{Name: source, Required: true})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func corruptCloudScene(t *testing.T, at time.Time) sensor.Snapshot {
	t.Helper()
	s, err := dataset.LegalScene(dataset.ModelWindow, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	s.At = at
	s.Set(sensor.FeatAirQuality, sensor.Number(-1))
	return s
}

// TestHealthzTrustDegrade: /healthz reports the trust rows and flips to
// 503 while a required source sits below its trust threshold — the
// load-balancer probe sees spoofing, not just silence.
func TestHealthzTrustDegrade(t *testing.T) {
	eng := trustEngineForCloud(t, "gw")
	srv, err := NewServer(Config{
		Users:    map[string]string{"a": "b"},
		Registry: instr.BuiltinRegistry(),
		Forward:  func(in instr.Instruction) error { return nil },
		Trust:    eng,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	get := func() (int, healthzBody) {
		t.Helper()
		resp, err := http.Get(srv.URL() + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body healthzBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	code, body := get()
	if code != http.StatusOK || body.Status != "ok" {
		t.Fatalf("pristine healthz = %d %q", code, body.Status)
	}
	if len(body.Trust) != 1 || body.Trust[0].Name != "gw" || body.Trust[0].Score != 1 {
		t.Fatalf("pristine trust rows = %+v", body.Trust)
	}

	at := time.Unix(1_600_000_000, 0)
	for i := 0; i < 2; i++ {
		at = at.Add(time.Second)
		eng.Observe("gw", corruptCloudScene(t, at), at)
	}
	code, body = get()
	if code != http.StatusServiceUnavailable || body.Status != "degraded" {
		t.Fatalf("spoofed healthz = %d %q, want 503 degraded", code, body.Status)
	}
	if len(body.Trust) != 1 || !body.Trust[0].LowTrust || body.Trust[0].Score >= 0.5 {
		t.Fatalf("spoofed trust rows = %+v", body.Trust)
	}
}

// TestFleetStatsLowTrustHomes: a spoofed home's collapse is visible in
// /v1/fleet/stats as low_trust_homes, fed entirely through the public
// push endpoint.
func TestFleetStatsLowTrustHomes(t *testing.T) {
	srv, fl := startFleetCloud(t, 2)
	if _, err := fl.AddHome(fleet.HomeConfig{ID: "spoofed", Trust: trustEngineForCloud(t, "push")}); err != nil {
		t.Fatal(err)
	}
	if err := srv.BindHome("spoofed", "gateway"); err != nil {
		t.Fatal(err)
	}
	c := login(t, srv, "gateway", "s3cret")

	stats, err := c.FleetStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.LowTrustHomes != 0 {
		t.Fatalf("LowTrustHomes before attack = %d, want 0", stats.LowTrustHomes)
	}

	at := time.Unix(1_600_000_000, 0)
	for i := 0; i < 2; i++ {
		at = at.Add(time.Second)
		if _, _, err := c.FleetPushContext(map[string]sensor.Snapshot{
			"spoofed": corruptCloudScene(t, at),
		}); err != nil {
			t.Fatal(err)
		}
	}
	stats, err = c.FleetStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.LowTrustHomes != 1 {
		t.Fatalf("LowTrustHomes after attack = %d, want 1", stats.LowTrustHomes)
	}
}
