package cloud

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"testing"
	"time"

	"iotsid/internal/instr"
	"iotsid/internal/resilience"
	"iotsid/internal/sensor"
)

// rawLogin logs in over plain HTTP and returns the session token, for
// tests that need to inspect raw responses and headers.
func rawLogin(t *testing.T, base, user, secret string) string {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"user": user, "secret": secret})
	resp, err := http.Post(base+"/v1/login", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("login status = %d", resp.StatusCode)
	}
	var out loginResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Session
}

// rawCommand posts a command with the session and returns the raw response.
func rawCommand(t *testing.T, base, session, op, device string) *http.Response {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"op": op, "device_id": device})
	req, err := http.NewRequest(http.MethodPost, base+"/v1/command", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Session "+session)
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestHealthzReflectsRegistry: /healthz is 200 "ok" while every required
// source serves, 503 "degraded" once one goes missing, and lists the
// per-source states either way.
func TestHealthzReflectsRegistry(t *testing.T) {
	health := resilience.NewRegistry()
	health.Register("miio", true)
	health.Register("st", false)
	at := time.Unix(9000, 0)
	health.Report("miio", "fresh", "closed", at, nil)
	health.Report("st", "missing", "open", at, fmt.Errorf("down"))

	fwd := &captureForwarder{}
	srv, err := NewServer(Config{
		Users:    map[string]string{"alice": "s3cret"},
		Registry: instr.BuiltinRegistry(),
		Forward:  fwd.forward,
		Health:   health,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func() (int, healthzBody) {
		t.Helper()
		resp, err := http.Get(srv.URL() + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body healthzBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	// Required source fresh, optional missing: still ok.
	status, body := get()
	if status != http.StatusOK || body.Status != "ok" {
		t.Fatalf("healthy = %d %q", status, body.Status)
	}
	if len(body.Sources) != 2 || body.Sources[0].Name != "miio" || body.Sources[1].State != "missing" {
		t.Fatalf("sources = %+v", body.Sources)
	}

	// Required source missing: degraded.
	health.Report("miio", "missing", "open", at, fmt.Errorf("udp timeout"))
	status, body = get()
	if status != http.StatusServiceUnavailable || body.Status != "degraded" {
		t.Fatalf("degraded = %d %q", status, body.Status)
	}

	// Bounded staleness on a required source is still serving: ok.
	health.Report("miio", "stale", "open", at, fmt.Errorf("udp timeout"))
	if status, _ := get(); status != http.StatusOK {
		t.Fatalf("stale required source = %d, want 200", status)
	}

	// The endpoint is GET-only and unauthenticated.
	resp, err := http.Post(srv.URL()+"/healthz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz = %d", resp.StatusCode)
	}
}

// TestHealthzWithoutRegistry: a server with no registry stays plain-ok.
func TestHealthzWithoutRegistry(t *testing.T) {
	srv, _ := startCloud(t, nil)
	resp, err := http.Get(srv.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
}

// TestCommandRetryAfterWhenBreakerOpen: a breaker-open context failure is a
// 503 carrying Retry-After with the breaker's remaining wait — clients know
// exactly when to come back.
func TestCommandRetryAfterWhenBreakerOpen(t *testing.T) {
	fwd := &captureForwarder{}
	open := &resilience.OpenError{Name: "miio", RetryAfter: 17 * time.Second}
	srv, err := NewServer(Config{
		Users:    map[string]string{"alice": "s3cret"},
		Registry: instr.BuiltinRegistry(),
		Forward:  fwd.forward,
		Gate:     func(instr.Instruction, sensor.Snapshot) error { return nil },
		Context: func(context.Context) (sensor.Snapshot, error) {
			// What MultiCollector's strict path returns while the breaker
			// guarding a required source is open.
			return sensor.Snapshot{}, fmt.Errorf("core: required source(s) miio unavailable: %w", open)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.BindDevice("window-1", "alice"); err != nil {
		t.Fatal(err)
	}
	session := rawLogin(t, srv.URL(), "alice", "s3cret")
	resp := rawCommand(t, srv.URL(), session, "window.open", "window-1")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != strconv.Itoa(17) {
		t.Errorf("Retry-After = %q, want 17", got)
	}
	if fwd.count() != 0 {
		t.Error("command forwarded without context")
	}

	// A sub-second RetryAfter still advertises at least one second.
	open.RetryAfter = 200 * time.Millisecond
	resp = rawCommand(t, srv.URL(), session, "window.open", "window-1")
	defer resp.Body.Close()
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want floor of 1", got)
	}
}

// TestCommandContextTimeout: a hung collector is cut off by ContextTimeout
// and surfaces as a 503 — the handler never wedges.
func TestCommandContextTimeout(t *testing.T) {
	fwd := &captureForwarder{}
	srv, err := NewServer(Config{
		Users:    map[string]string{"alice": "s3cret"},
		Registry: instr.BuiltinRegistry(),
		Forward:  fwd.forward,
		Gate:     func(instr.Instruction, sensor.Snapshot) error { return nil },
		Context: func(ctx context.Context) (sensor.Snapshot, error) {
			<-ctx.Done() // the hung gateway: only the deadline releases it
			return sensor.Snapshot{}, ctx.Err()
		},
		ContextTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.BindDevice("window-1", "alice"); err != nil {
		t.Fatal(err)
	}
	session := rawLogin(t, srv.URL(), "alice", "s3cret")
	start := time.Now()
	resp := rawCommand(t, srv.URL(), session, "window.open", "window-1")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("handler took %v despite a 50ms collection timeout", elapsed)
	}
	if fwd.count() != 0 {
		t.Error("command forwarded without context")
	}
}
