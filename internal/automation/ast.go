// Package automation implements the Trigger-Action platform of §II-C: users
// write rules that connect sensor events ("Trigger") to device instructions
// ("Action"), in the style of IFTTT / Home Assistant automations. Rules are
// written in a small DSL:
//
//	WHEN occupancy == true AND hour_of_day >= 18 THEN light.on @ light-1
//	WHEN smoke == true THEN window.open @ window-1 WITH reason = "ventilate"
//
// Conditions are boolean expressions over the shared sensor feature
// vocabulary; actions are opcodes from the instruction registry addressed to
// a device.
package automation

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"iotsid/internal/sensor"
)

// Expr is a boolean expression over a sensor snapshot.
type Expr interface {
	// Eval evaluates the expression; it errors on type mismatches and
	// unknown features so broken rules surface instead of silently never
	// firing.
	Eval(s sensor.Snapshot) (bool, error)
	// String renders the expression in DSL syntax.
	String() string
}

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota + 1
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

var cmpNames = map[CmpOp]string{
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
}

// String renders the operator.
func (o CmpOp) String() string {
	if s, ok := cmpNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Compare tests one feature against a literal.
type Compare struct {
	Feature sensor.Feature
	Op      CmpOp
	Value   sensor.Value
}

// Eval implements Expr.
func (c *Compare) Eval(s sensor.Snapshot) (bool, error) {
	got, ok := s.Get(c.Feature)
	if !ok {
		return false, fmt.Errorf("automation: feature %q absent from snapshot", c.Feature)
	}
	if got.Type() != c.Value.Type() {
		return false, fmt.Errorf("automation: feature %q is %s, literal is %s",
			c.Feature, got.Type(), c.Value.Type())
	}
	switch c.Value.Type() {
	case sensor.TypeBool, sensor.TypeLabel:
		eq := got.Equal(c.Value)
		switch c.Op {
		case OpEq:
			return eq, nil
		case OpNe:
			return !eq, nil
		default:
			return false, fmt.Errorf("automation: operator %s invalid for %s feature %q",
				c.Op, got.Type(), c.Feature)
		}
	case sensor.TypeNumber:
		a, _ := got.Number()
		b, _ := c.Value.Number()
		switch c.Op {
		case OpEq:
			return a == b, nil
		case OpNe:
			return a != b, nil
		case OpLt:
			return a < b, nil
		case OpLe:
			return a <= b, nil
		case OpGt:
			return a > b, nil
		case OpGe:
			return a >= b, nil
		}
	}
	return false, fmt.Errorf("automation: unsupported comparison on %q", c.Feature)
}

// String implements Expr.
func (c *Compare) String() string {
	lit := c.Value.String()
	if c.Value.Type() == sensor.TypeLabel {
		lit = strconv.Quote(lit)
	}
	return fmt.Sprintf("%s %s %s", c.Feature, c.Op, lit)
}

// And is a conjunction.
type And struct{ L, R Expr }

// Eval implements Expr with short-circuiting.
func (a *And) Eval(s sensor.Snapshot) (bool, error) {
	l, err := a.L.Eval(s)
	if err != nil {
		return false, err
	}
	if !l {
		return false, nil
	}
	return a.R.Eval(s)
}

// String implements Expr.
func (a *And) String() string { return fmt.Sprintf("%s AND %s", a.L, a.R) }

// Or is a disjunction.
type Or struct{ L, R Expr }

// Eval implements Expr with short-circuiting.
func (o *Or) Eval(s sensor.Snapshot) (bool, error) {
	l, err := o.L.Eval(s)
	if err != nil {
		return false, err
	}
	if l {
		return true, nil
	}
	return o.R.Eval(s)
}

// String implements Expr.
func (o *Or) String() string { return fmt.Sprintf("(%s OR %s)", o.L, o.R) }

// Not negates a sub-expression.
type Not struct{ E Expr }

// Eval implements Expr.
func (n *Not) Eval(s sensor.Snapshot) (bool, error) {
	v, err := n.E.Eval(s)
	if err != nil {
		return false, err
	}
	return !v, nil
}

// String implements Expr.
func (n *Not) String() string { return fmt.Sprintf("NOT (%s)", n.E) }

// Action is the THEN half of a rule.
type Action struct {
	Op       string
	DeviceID string
	Args     map[string]any
}

// String renders the action in DSL syntax.
func (a Action) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s @ %s", a.Op, a.DeviceID)
	if len(a.Args) > 0 {
		b.WriteString(" WITH ")
		first := true
		for _, k := range sortedKeys(a.Args) {
			if !first {
				b.WriteString(", ")
			}
			first = false
			switch v := a.Args[k].(type) {
			case string:
				fmt.Fprintf(&b, "%s = %q", k, v)
			default:
				fmt.Fprintf(&b, "%s = %v", k, v)
			}
		}
	}
	return b.String()
}

// Rule is one automation strategy: a trigger condition plus an action.
// Dwell, when non-zero, requires the condition to hold continuously for
// that long before the action fires (the DSL's FOR clause, mirroring Home
// Assistant's `for:` and IFTTT's sustained triggers).
type Rule struct {
	Name      string
	Condition Expr
	Dwell     time.Duration
	Action    Action
}

// String renders the full rule in DSL syntax.
func (r Rule) String() string {
	if r.Dwell > 0 {
		return fmt.Sprintf("WHEN %s FOR %s THEN %s", r.Condition, r.Dwell, r.Action)
	}
	return fmt.Sprintf("WHEN %s THEN %s", r.Condition, r.Action)
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j-1] > keys[j]; j-- {
			keys[j-1], keys[j] = keys[j], keys[j-1]
		}
	}
	return keys
}
