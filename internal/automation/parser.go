package automation

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"iotsid/internal/instr"
	"iotsid/internal/sensor"
)

// Parser turns DSL rule text into validated Rules. Feature names are checked
// against the sensor vocabulary and opcodes against the instruction
// registry, so a parsed rule is guaranteed executable.
type Parser struct {
	registry *instr.Registry
}

// NewParser builds a parser validating opcodes against reg.
func NewParser(reg *instr.Registry) *Parser {
	return &Parser{registry: reg}
}

type parseState struct {
	toks []token
	i    int
	reg  *instr.Registry
}

func (p *parseState) cur() token { return p.toks[p.i] }
func (p *parseState) advance()   { p.i++ }
func (p *parseState) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parseState) expect(kind tokenKind, text string) (token, error) {
	t := p.cur()
	if t.kind != kind || (text != "" && t.text != text) {
		want := text
		if want == "" {
			want = kind.String()
		}
		return token{}, fmt.Errorf("automation: expected %s at %d, got %q", want, t.pos, t.text)
	}
	p.advance()
	return t, nil
}

// ParseRule parses one rule line:
//
//	WHEN <expr> THEN <op> @ <deviceID> [WITH k = v {, k = v}]
func (p *Parser) ParseRule(name, src string) (Rule, error) {
	toks, err := lex(src)
	if err != nil {
		return Rule{}, err
	}
	st := &parseState{toks: toks, reg: p.registry}
	if _, err := st.expect(tokKeyword, "WHEN"); err != nil {
		return Rule{}, err
	}
	cond, err := st.parseOr()
	if err != nil {
		return Rule{}, err
	}
	var dwell time.Duration
	if st.at(tokKeyword, "FOR") {
		st.advance()
		dwell, err = st.parseDuration()
		if err != nil {
			return Rule{}, err
		}
	}
	if _, err := st.expect(tokKeyword, "THEN"); err != nil {
		return Rule{}, err
	}
	action, err := st.parseAction()
	if err != nil {
		return Rule{}, err
	}
	if _, err := st.expect(tokEOF, ""); err != nil {
		return Rule{}, fmt.Errorf("automation: trailing input: %w", err)
	}
	return Rule{Name: name, Condition: cond, Dwell: dwell, Action: action}, nil
}

// parseDuration reads a Go-style duration literal after FOR. The lexer
// splits "5m30s" into a number and an identifier (or a single identifier
// when the text starts with a letter), so stitch tokens back together
// until THEN.
func (st *parseState) parseDuration() (time.Duration, error) {
	var text strings.Builder
	start := st.cur().pos
	for st.cur().kind == tokNumber || st.cur().kind == tokIdent {
		text.WriteString(st.cur().text)
		st.advance()
	}
	if text.Len() == 0 {
		return 0, fmt.Errorf("automation: expected duration after FOR at %d", start)
	}
	d, err := time.ParseDuration(text.String())
	if err != nil {
		return 0, fmt.Errorf("automation: bad duration %q at %d: %v", text.String(), start, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("automation: negative duration %q at %d", text.String(), start)
	}
	return d, nil
}

// ParseExpr parses a bare condition expression (used by tests and by the
// camera-warning linkage configuration).
func (p *Parser) ParseExpr(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	st := &parseState{toks: toks, reg: p.registry}
	e, err := st.parseOr()
	if err != nil {
		return nil, err
	}
	if _, err := st.expect(tokEOF, ""); err != nil {
		return nil, fmt.Errorf("automation: trailing input: %w", err)
	}
	return e, nil
}

func (st *parseState) parseOr() (Expr, error) {
	l, err := st.parseAnd()
	if err != nil {
		return nil, err
	}
	for st.at(tokKeyword, "OR") {
		st.advance()
		r, err := st.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Or{L: l, R: r}
	}
	return l, nil
}

func (st *parseState) parseAnd() (Expr, error) {
	l, err := st.parseUnary()
	if err != nil {
		return nil, err
	}
	for st.at(tokKeyword, "AND") {
		st.advance()
		r, err := st.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &And{L: l, R: r}
	}
	return l, nil
}

func (st *parseState) parseUnary() (Expr, error) {
	if st.at(tokKeyword, "NOT") {
		st.advance()
		e, err := st.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Not{E: e}, nil
	}
	if st.at(tokOperator, "(") {
		st.advance()
		e, err := st.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := st.expect(tokOperator, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return st.parseCompare()
}

func (st *parseState) parseCompare() (Expr, error) {
	identTok, err := st.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	feat := sensor.Feature(identTok.text)
	desc, known := sensor.Describe(feat)
	if !known {
		return nil, fmt.Errorf("automation: unknown feature %q at %d", identTok.text, identTok.pos)
	}
	opTok := st.cur()
	if opTok.kind != tokOperator {
		return nil, fmt.Errorf("automation: expected comparison operator at %d, got %q", opTok.pos, opTok.text)
	}
	var op CmpOp
	switch opTok.text {
	case "==", "=":
		op = OpEq
	case "!=":
		op = OpNe
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	default:
		return nil, fmt.Errorf("automation: bad comparison operator %q at %d", opTok.text, opTok.pos)
	}
	st.advance()
	val, err := st.parseLiteral(desc)
	if err != nil {
		return nil, err
	}
	cmp := &Compare{Feature: feat, Op: op, Value: val}
	// Reject ordered comparisons on unordered types at parse time.
	if val.Type() != sensor.TypeNumber && op != OpEq && op != OpNe {
		return nil, fmt.Errorf("automation: operator %s invalid for %s feature %q",
			op, val.Type(), feat)
	}
	return cmp, nil
}

func (st *parseState) parseLiteral(desc sensor.Descriptor) (sensor.Value, error) {
	t := st.cur()
	switch {
	case t.kind == tokKeyword && (t.text == "TRUE" || t.text == "FALSE"):
		st.advance()
		return sensor.Bool(t.text == "TRUE"), nil
	case t.kind == tokNumber:
		st.advance()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return sensor.Value{}, fmt.Errorf("automation: bad number %q at %d", t.text, t.pos)
		}
		return sensor.Number(f), nil
	case t.kind == tokString || t.kind == tokIdent:
		st.advance()
		// Validate against the feature's label domain when known.
		if desc.Type == sensor.TypeLabel {
			for _, l := range desc.Labels {
				if l == t.text {
					return sensor.Label(t.text), nil
				}
			}
			return sensor.Value{}, fmt.Errorf("automation: label %q outside domain of %q", t.text, desc.Feature)
		}
		return sensor.Label(t.text), nil
	default:
		return sensor.Value{}, fmt.Errorf("automation: expected literal at %d, got %q", t.pos, t.text)
	}
}

func (st *parseState) parseAction() (Action, error) {
	opTok, err := st.expect(tokIdent, "")
	if err != nil {
		return Action{}, err
	}
	if st.reg != nil {
		if _, ok := st.reg.Lookup(opTok.text); !ok {
			return Action{}, fmt.Errorf("automation: unknown opcode %q at %d", opTok.text, opTok.pos)
		}
	}
	if _, err := st.expect(tokOperator, "@"); err != nil {
		return Action{}, err
	}
	devTok, err := st.expect(tokIdent, "")
	if err != nil {
		return Action{}, err
	}
	action := Action{Op: opTok.text, DeviceID: devTok.text}
	if st.at(tokKeyword, "WITH") {
		st.advance()
		action.Args = make(map[string]any)
		for {
			keyTok, err := st.expect(tokIdent, "")
			if err != nil {
				return Action{}, err
			}
			if _, err := st.expect(tokOperator, "="); err != nil {
				return Action{}, err
			}
			valTok := st.cur()
			switch valTok.kind {
			case tokNumber:
				f, err := strconv.ParseFloat(valTok.text, 64)
				if err != nil {
					return Action{}, fmt.Errorf("automation: bad arg number %q", valTok.text)
				}
				action.Args[keyTok.text] = f
			case tokString, tokIdent:
				action.Args[keyTok.text] = valTok.text
			case tokKeyword:
				switch valTok.text {
				case "TRUE":
					action.Args[keyTok.text] = true
				case "FALSE":
					action.Args[keyTok.text] = false
				default:
					return Action{}, fmt.Errorf("automation: bad arg value %q", valTok.text)
				}
			default:
				return Action{}, fmt.Errorf("automation: bad arg value %q", valTok.text)
			}
			st.advance()
			if !st.at(tokOperator, ",") {
				break
			}
			st.advance()
		}
	}
	return action, nil
}
