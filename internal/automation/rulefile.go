package automation

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// LoadRules reads a rule file and registers every rule with the engine.
// The format is line-oriented:
//
//	# comment
//	evening lights: WHEN occupancy == TRUE AND hour_of_day >= 18 THEN light.on @ light-1
//	slow vent:      WHEN smoke == TRUE FOR 2m THEN window.open @ window-1
//
// Everything before the first colon is the rule name; blank lines and
// #-comments are skipped. Returns how many rules were added; the first
// malformed line aborts with its line number.
func LoadRules(r io.Reader, e *Engine) (int, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 64*1024), 64*1024)
	line := 0
	added := 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		name, rule, ok := strings.Cut(text, ":")
		if !ok {
			return added, fmt.Errorf("automation: line %d: missing \"name:\" prefix", line)
		}
		name = strings.TrimSpace(name)
		if err := e.AddRuleText(name, strings.TrimSpace(rule)); err != nil {
			return added, fmt.Errorf("automation: line %d (%q): %w", line, name, err)
		}
		added++
	}
	if err := scanner.Err(); err != nil {
		return added, fmt.Errorf("automation: read rules: %w", err)
	}
	return added, nil
}
