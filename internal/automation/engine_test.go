package automation

import (
	"errors"
	"strings"
	"testing"
	"time"

	"iotsid/internal/instr"
	"iotsid/internal/sensor"
)

func boolSnap(smoke, occupied bool) sensor.Snapshot {
	return snap(map[sensor.Feature]sensor.Value{
		sensor.FeatSmoke:     sensor.Bool(smoke),
		sensor.FeatOccupancy: sensor.Bool(occupied),
	})
}

func TestEngineRisingEdgeSemantics(t *testing.T) {
	var executed []string
	e := NewEngine(instr.BuiltinRegistry(), func(in instr.Instruction) error {
		executed = append(executed, in.Op)
		return nil
	})
	if err := e.AddRuleText("vent", `WHEN smoke == TRUE THEN window.open @ window-1`); err != nil {
		t.Fatalf("AddRuleText: %v", err)
	}

	// false -> nothing.
	if ev := e.Evaluate(boolSnap(false, true)); len(ev) != 0 {
		t.Fatalf("events on false condition: %v", ev)
	}
	// rising edge -> fires once.
	ev := e.Evaluate(boolSnap(true, true))
	if len(ev) != 1 || !ev[0].Allowed || ev[0].Op != "window.open" {
		t.Fatalf("rising edge events = %+v", ev)
	}
	// still true -> no refire.
	if ev := e.Evaluate(boolSnap(true, true)); len(ev) != 0 {
		t.Fatalf("level refire: %v", ev)
	}
	// falling then rising again -> fires again.
	e.Evaluate(boolSnap(false, true))
	if ev := e.Evaluate(boolSnap(true, true)); len(ev) != 1 {
		t.Fatalf("second rising edge events = %v", ev)
	}
	if len(executed) != 2 {
		t.Errorf("executed %v, want 2 dispatches", executed)
	}
	if got := len(e.Events()); got != 2 {
		t.Errorf("event log len = %d", got)
	}
}

func TestEngineInterceptorBlocks(t *testing.T) {
	var executed int
	e := NewEngine(instr.BuiltinRegistry(), func(in instr.Instruction) error {
		executed++
		return nil
	})
	if err := e.AddRuleText("vent", `WHEN smoke == TRUE THEN window.open @ window-1`); err != nil {
		t.Fatal(err)
	}
	e.SetInterceptor(func(in instr.Instruction, ctx sensor.Snapshot) (bool, string) {
		if !ctx.Bool(sensor.FeatOccupancy) {
			return false, "nobody home: window.open rejected"
		}
		return true, "context legal"
	})

	ev := e.Evaluate(boolSnap(true, false))
	if len(ev) != 1 || ev[0].Allowed {
		t.Fatalf("interceptor should block: %+v", ev)
	}
	if ev[0].Reason == "" {
		t.Error("blocked event should carry a reason")
	}
	if executed != 0 {
		t.Error("blocked instruction must not execute")
	}

	e.ResetEdges()
	ev = e.Evaluate(boolSnap(true, true))
	if len(ev) != 1 || !ev[0].Allowed {
		t.Fatalf("interceptor should allow: %+v", ev)
	}
	if executed != 1 {
		t.Error("allowed instruction must execute")
	}
}

func TestEngineBrokenRuleIsIsolated(t *testing.T) {
	e := NewEngine(instr.BuiltinRegistry(), func(in instr.Instruction) error { return nil })
	// water_leak is absent from the snapshots below -> eval error.
	if err := e.AddRuleText("broken", `WHEN water_leak == TRUE THEN alarm.siren_on @ alarm-hub-1`); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRuleText("good", `WHEN smoke == TRUE THEN window.open @ window-1`); err != nil {
		t.Fatal(err)
	}
	ev := e.Evaluate(boolSnap(true, true))
	if len(ev) != 2 {
		t.Fatalf("events = %+v", ev)
	}
	var sawErr, sawGood bool
	for _, x := range ev {
		if x.Rule == "broken" && x.Err != "" {
			sawErr = true
		}
		if x.Rule == "good" && x.Allowed {
			sawGood = true
		}
	}
	if !sawErr || !sawGood {
		t.Errorf("broken rule must error, good rule must fire: %+v", ev)
	}
}

func TestEngineExecutorErrorRecorded(t *testing.T) {
	e := NewEngine(instr.BuiltinRegistry(), func(in instr.Instruction) error {
		return errors.New("device offline")
	})
	if err := e.AddRuleText("vent", `WHEN smoke == TRUE THEN window.open @ window-1`); err != nil {
		t.Fatal(err)
	}
	ev := e.Evaluate(boolSnap(true, true))
	if len(ev) != 1 || ev[0].Err != "device offline" || !ev[0].Allowed {
		t.Fatalf("events = %+v", ev)
	}
}

func TestAddRuleValidation(t *testing.T) {
	e := NewEngine(instr.BuiltinRegistry(), nil)
	if err := e.AddRule(Rule{Name: "", Condition: &Compare{}}); err == nil {
		t.Error("want error for empty name")
	}
	if err := e.AddRule(Rule{Name: "x"}); err == nil {
		t.Error("want error for nil condition")
	}
	cond, _ := testParser().ParseExpr(`smoke == TRUE`)
	if err := e.AddRule(Rule{Name: "x", Condition: cond, Action: Action{Op: "warp.engage", DeviceID: "d"}}); err == nil {
		t.Error("want error for unknown opcode")
	}
	good := Rule{Name: "x", Condition: cond, Action: Action{Op: "light.on", DeviceID: "light-1"}}
	if err := e.AddRule(good); err != nil {
		t.Fatalf("AddRule: %v", err)
	}
	if err := e.AddRule(good); err == nil {
		t.Error("want error for duplicate name")
	}
	if got := len(e.Rules()); got != 1 {
		t.Errorf("rules = %d", got)
	}
}

func TestAddRuleTextParseError(t *testing.T) {
	e := NewEngine(instr.BuiltinRegistry(), nil)
	if err := e.AddRuleText("bad", `WHEN nonsense THEN light.on @ l`); err == nil {
		t.Error("want parse error")
	}
}

func TestLoadRules(t *testing.T) {
	src := `
# benign household automations
evening lights: WHEN occupancy == TRUE AND hour_of_day >= 18 THEN light.on @ light-1

slow vent: WHEN smoke == TRUE FOR 2m THEN window.open @ window-1
`
	e := NewEngine(instr.BuiltinRegistry(), nil)
	n, err := LoadRules(strings.NewReader(src), e)
	if err != nil {
		t.Fatalf("LoadRules: %v", err)
	}
	if n != 2 || len(e.Rules()) != 2 {
		t.Fatalf("added = %d, rules = %d", n, len(e.Rules()))
	}
	if e.Rules()[1].Dwell != 2*time.Minute {
		t.Errorf("dwell = %v", e.Rules()[1].Dwell)
	}
}

func TestLoadRulesErrors(t *testing.T) {
	e := NewEngine(instr.BuiltinRegistry(), nil)
	// Missing colon.
	if _, err := LoadRules(strings.NewReader("no colon here"), e); err == nil {
		t.Error("want format error")
	}
	// Parse error carries the line number and rule name.
	src := "a: WHEN smoke == TRUE THEN light.on @ l\nb: WHEN nonsense THEN light.on @ l\n"
	n, err := LoadRules(strings.NewReader(src), NewEngine(instr.BuiltinRegistry(), nil))
	if err == nil || n != 1 {
		t.Errorf("n = %d, err = %v", n, err)
	}
	if err != nil && !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error missing line number: %v", err)
	}
}
