package automation

import "testing"

// FuzzParseRule drives the DSL parser with arbitrary text: it must return
// errors for garbage and never panic, and anything it accepts must render
// to text that re-parses.
func FuzzParseRule(f *testing.F) {
	f.Add(`WHEN smoke == TRUE THEN window.open @ window-1`)
	f.Add(`WHEN occupancy == TRUE AND hour_of_day >= 18 FOR 5m THEN light.on @ light-1 WITH brightness = 60`)
	f.Add(`WHEN (smoke == TRUE OR combustible_gas == TRUE) AND NOT occupancy == FALSE THEN alarm.siren_on @ alarm-hub-1`)
	f.Add(``)
	f.Add(`WHEN`)
	f.Fuzz(func(t *testing.T, src string) {
		p := testParser()
		r, err := p.ParseRule("fuzz", src)
		if err != nil {
			return
		}
		// Accepted rules must round-trip through their rendered form.
		r2, err := p.ParseRule("fuzz", r.String())
		if err != nil {
			t.Fatalf("accepted rule %q renders to unparseable %q: %v", src, r.String(), err)
		}
		if r2.Dwell != r.Dwell || r2.Action.Op != r.Action.Op || r2.Action.DeviceID != r.Action.DeviceID {
			t.Fatalf("round trip changed rule: %q vs %q", r.String(), r2.String())
		}
	})
}
