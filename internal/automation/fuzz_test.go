package automation

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParserNeverPanics throws random byte soup and near-miss rule text at
// the parser: it must return errors, never panic.
func TestParserNeverPanics(t *testing.T) {
	p := testParser()
	f := func(src string) bool {
		_, _ = p.ParseRule("fuzz", src)
		_, _ = p.ParseExpr(src)
		return true // reaching here means no panic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestParserNearMissMutations mutates a valid rule at random positions; the
// parser must either accept (if the mutation stays valid) or error, never
// panic, and accepted rules must evaluate without panicking.
func TestParserNearMissMutations(t *testing.T) {
	const base = `WHEN occupancy == TRUE AND hour_of_day >= 18 THEN light.on @ light-1 WITH brightness = 40`
	rng := rand.New(rand.NewSource(42))
	alphabet := `abcdefgWHENTHO0123456789_.@="()<>!,- `
	s := eveningSnap()
	for i := 0; i < 3000; i++ {
		mutated := []byte(base)
		for k := 0; k < 1+rng.Intn(3); k++ {
			pos := rng.Intn(len(mutated))
			mutated[pos] = alphabet[rng.Intn(len(alphabet))]
		}
		r, err := testParser().ParseRule("m", string(mutated))
		if err != nil {
			continue
		}
		_, _ = r.Condition.Eval(s)
	}
}

// TestParserDeepNesting guards the recursive-descent parser against stack
// abuse from deeply nested input.
func TestParserDeepNesting(t *testing.T) {
	depth := 10000
	src := strings.Repeat("(", depth) + "smoke == TRUE" + strings.Repeat(")", depth)
	e, err := testParser().ParseExpr(src)
	if err != nil {
		// Rejecting is fine too; panicking is not.
		return
	}
	ok, err := e.Eval(eveningSnap())
	if err != nil || ok {
		t.Errorf("deep nest eval = %v, %v", ok, err)
	}
}
