package automation

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies DSL tokens.
type tokenKind int

const (
	tokEOF      tokenKind = iota + 1
	tokIdent              // feature names, opcodes, device IDs, bare words
	tokNumber             // 42, 3.5, -1
	tokString             // "quoted"
	tokKeyword            // WHEN THEN WITH AND OR NOT TRUE FALSE
	tokOperator           // == != <= >= < > = @ , ( )
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "EOF"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokKeyword:
		return "keyword"
	case tokOperator:
		return "operator"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"WHEN": true, "THEN": true, "WITH": true, "FOR": true,
	"AND": true, "OR": true, "NOT": true,
	"TRUE": true, "FALSE": true,
}

// lex tokenises one rule line.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '(' || c == ')' || c == ',' || c == '@':
			toks = append(toks, token{kind: tokOperator, text: string(c), pos: i})
			i++
		case c == '"':
			j := i + 1
			for j < n && src[j] != '"' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("automation: unterminated string at %d", i)
			}
			toks = append(toks, token{kind: tokString, text: src[i+1 : j], pos: i})
			i = j + 1
		case c == '=' || c == '!' || c == '<' || c == '>':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{kind: tokOperator, text: src[i : i+2], pos: i})
				i += 2
			} else if c == '<' || c == '>' || c == '=' {
				toks = append(toks, token{kind: tokOperator, text: string(c), pos: i})
				i++
			} else {
				return nil, fmt.Errorf("automation: stray '!' at %d", i)
			}
		case c == '-' || c >= '0' && c <= '9':
			j := i
			if c == '-' {
				j++
			}
			dot := false
			for j < n && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' && !dot) {
				if src[j] == '.' {
					dot = true
				}
				j++
			}
			if j == i || (c == '-' && j == i+1) {
				return nil, fmt.Errorf("automation: malformed number at %d", i)
			}
			toks = append(toks, token{kind: tokNumber, text: src[i:j], pos: i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(src[j])) {
				j++
			}
			word := src[i:j]
			if keywords[strings.ToUpper(word)] {
				toks = append(toks, token{kind: tokKeyword, text: strings.ToUpper(word), pos: i})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: i})
			}
			i = j
		default:
			return nil, fmt.Errorf("automation: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.' || r == '-'
}
