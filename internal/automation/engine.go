package automation

import (
	"fmt"
	"sync"
	"time"

	"iotsid/internal/instr"
	"iotsid/internal/sensor"
)

// Executor carries a triggered action to the device layer.
type Executor func(instr.Instruction) error

// Interceptor sits between trigger and execution — this is where the paper's
// IDS hooks in. It sees the instruction together with the sensor context in
// which it fired and decides whether it may run.
type Interceptor func(in instr.Instruction, ctx sensor.Snapshot) (allow bool, reason string)

// Event records one trigger firing and its outcome.
type Event struct {
	Rule     string    `json:"rule"`
	Op       string    `json:"op"`
	DeviceID string    `json:"device_id"`
	Allowed  bool      `json:"allowed"`
	Reason   string    `json:"reason,omitempty"`
	Err      string    `json:"err,omitempty"`
	At       time.Time `json:"at"`
}

// Engine evaluates the rule set against successive sensor snapshots and
// dispatches triggers. A plain rule fires when its condition goes
// false→true between consecutive snapshots (level-triggered rules would
// re-fire every evaluation); a FOR rule fires once its condition has held
// continuously for its dwell, once per continuous-true episode.
type Engine struct {
	registry *instr.Registry

	mu        sync.Mutex
	rules     []Rule
	ruleNames map[string]bool
	lastState map[string]bool
	condSince map[string]time.Time
	firedHold map[string]bool
	exec      Executor
	intercept Interceptor
	events    []Event
}

// NewEngine builds an engine dispatching through exec. The interceptor is
// optional; without one every trigger is executed.
func NewEngine(reg *instr.Registry, exec Executor) *Engine {
	return &Engine{
		registry:  reg,
		ruleNames: make(map[string]bool),
		lastState: make(map[string]bool),
		condSince: make(map[string]time.Time),
		firedHold: make(map[string]bool),
		exec:      exec,
	}
}

// SetInterceptor installs (or clears) the execution gate.
func (e *Engine) SetInterceptor(i Interceptor) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.intercept = i
}

// AddRule registers a validated rule. Rule names must be unique and
// non-empty.
func (e *Engine) AddRule(r Rule) error {
	if r.Name == "" {
		return fmt.Errorf("automation: rule with empty name")
	}
	if r.Condition == nil {
		return fmt.Errorf("automation: rule %q has no condition", r.Name)
	}
	if e.registry != nil {
		if _, ok := e.registry.Lookup(r.Action.Op); !ok {
			return fmt.Errorf("automation: rule %q uses unknown opcode %q", r.Name, r.Action.Op)
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ruleNames[r.Name] {
		return fmt.Errorf("automation: duplicate rule name %q", r.Name)
	}
	e.ruleNames[r.Name] = true
	e.rules = append(e.rules, r)
	return nil
}

// AddRuleText parses and registers a DSL rule.
func (e *Engine) AddRuleText(name, src string) error {
	r, err := NewParser(e.registry).ParseRule(name, src)
	if err != nil {
		return err
	}
	return e.AddRule(r)
}

// Rules returns a copy of the registered rules.
func (e *Engine) Rules() []Rule {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Rule, len(e.rules))
	copy(out, e.rules)
	return out
}

// Evaluate runs every rule against the snapshot and dispatches triggers:
// plain rules fire on the rising edge of their condition; FOR rules fire
// once their condition has held continuously for the dwell, once per
// continuous-true episode. It returns the events produced by this
// evaluation. A rule whose condition errors is skipped and reported as an
// event with Err set — one broken rule must not take the platform down.
func (e *Engine) Evaluate(snap sensor.Snapshot) []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	var fired []Event
	for _, r := range e.rules {
		state, err := r.Condition.Eval(snap)
		if err != nil {
			ev := Event{Rule: r.Name, Op: r.Action.Op, DeviceID: r.Action.DeviceID,
				Err: err.Error(), At: snap.At}
			fired = append(fired, ev)
			e.events = append(e.events, ev)
			continue
		}
		was := e.lastState[r.Name]
		e.lastState[r.Name] = state
		if !state {
			delete(e.condSince, r.Name)
			delete(e.firedHold, r.Name)
			continue
		}
		if r.Dwell <= 0 {
			if was {
				continue // no rising edge
			}
			ev := e.dispatchLocked(r, snap)
			fired = append(fired, ev)
			e.events = append(e.events, ev)
			continue
		}
		// Dwell rule: start (or continue) the hold timer.
		if !was {
			e.condSince[r.Name] = snap.At
		}
		since, ok := e.condSince[r.Name]
		if !ok {
			e.condSince[r.Name] = snap.At
			since = snap.At
		}
		if e.firedHold[r.Name] || snap.At.Sub(since) < r.Dwell {
			continue
		}
		e.firedHold[r.Name] = true
		ev := e.dispatchLocked(r, snap)
		fired = append(fired, ev)
		e.events = append(e.events, ev)
	}
	return fired
}

func (e *Engine) dispatchLocked(r Rule, snap sensor.Snapshot) Event {
	ev := Event{Rule: r.Name, Op: r.Action.Op, DeviceID: r.Action.DeviceID, At: snap.At}
	var in instr.Instruction
	var err error
	if e.registry != nil {
		in, err = e.registry.Build(r.Action.Op, r.Action.DeviceID, instr.OriginAutomation, r.Action.Args)
		if err != nil {
			ev.Err = err.Error()
			return ev
		}
	} else {
		in = instr.Instruction{Op: r.Action.Op, DeviceID: r.Action.DeviceID,
			Args: r.Action.Args, Origin: instr.OriginAutomation}
	}
	if e.intercept != nil {
		allow, reason := e.intercept(in, snap)
		ev.Reason = reason
		if !allow {
			ev.Allowed = false
			return ev
		}
	}
	ev.Allowed = true
	if e.exec != nil {
		if err := e.exec(in); err != nil {
			ev.Err = err.Error()
		}
	}
	return ev
}

// Events returns a copy of the full event log.
func (e *Engine) Events() []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Event, len(e.events))
	copy(out, e.events)
	return out
}

// ResetEdges clears the edge-detection and dwell state so every currently-
// true rule can fire again on the next evaluation.
func (e *Engine) ResetEdges() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lastState = make(map[string]bool)
	e.condSince = make(map[string]time.Time)
	e.firedHold = make(map[string]bool)
}
