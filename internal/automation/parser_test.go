package automation

import (
	"strings"
	"testing"
	"time"

	"iotsid/internal/instr"
	"iotsid/internal/sensor"
)

func testParser() *Parser { return NewParser(instr.BuiltinRegistry()) }

func snap(vals map[sensor.Feature]sensor.Value) sensor.Snapshot {
	s := sensor.NewSnapshot(time.Date(2021, 4, 1, 19, 0, 0, 0, time.UTC))
	for f, v := range vals {
		s.Set(f, v)
	}
	return s
}

func eveningSnap() sensor.Snapshot {
	return snap(map[sensor.Feature]sensor.Value{
		sensor.FeatOccupancy:  sensor.Bool(true),
		sensor.FeatHour:       sensor.Number(19),
		sensor.FeatSmoke:      sensor.Bool(false),
		sensor.FeatWeather:    sensor.Label(sensor.WeatherRain),
		sensor.FeatTempIndoor: sensor.Number(22),
		sensor.FeatDoorLock:   sensor.Label(sensor.LockLocked),
	})
}

func TestParseRuleRoundTrip(t *testing.T) {
	src := `WHEN occupancy == TRUE AND hour_of_day >= 18 THEN light.on @ light-1`
	r, err := testParser().ParseRule("evening", src)
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if r.Name != "evening" || r.Action.Op != "light.on" || r.Action.DeviceID != "light-1" {
		t.Errorf("rule = %+v", r)
	}
	ok, err := r.Condition.Eval(eveningSnap())
	if err != nil || !ok {
		t.Errorf("Eval = %v, %v; want true", ok, err)
	}
	// Rendered form re-parses to the same semantics.
	r2, err := testParser().ParseRule("evening", r.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", r.String(), err)
	}
	ok2, err := r2.Condition.Eval(eveningSnap())
	if err != nil || ok2 != ok {
		t.Errorf("re-parsed rule diverges: %v, %v", ok2, err)
	}
}

func TestParseRuleWithArgs(t *testing.T) {
	src := `WHEN temperature_in > 28 THEN aircon.set_temp @ aircon-1 WITH target = 24, mode = "eco", fast = TRUE`
	r, err := testParser().ParseRule("cool", src)
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if r.Action.Args["target"] != 24.0 {
		t.Errorf("target = %v", r.Action.Args["target"])
	}
	if r.Action.Args["mode"] != "eco" {
		t.Errorf("mode = %v", r.Action.Args["mode"])
	}
	if r.Action.Args["fast"] != true {
		t.Errorf("fast = %v", r.Action.Args["fast"])
	}
}

func TestParseExprOperatorsAndPrecedence(t *testing.T) {
	s := eveningSnap()
	tests := []struct {
		src  string
		want bool
	}{
		{`hour_of_day > 18`, true},
		{`hour_of_day >= 19`, true},
		{`hour_of_day < 19`, false},
		{`hour_of_day <= 19`, true},
		{`hour_of_day == 19`, true},
		{`hour_of_day != 19`, false},
		{`smoke == FALSE`, true},
		{`NOT smoke == TRUE`, true},
		{`outdoor_weather == "rain"`, true},
		{`outdoor_weather != "snow"`, true},
		{`door_lock == locked`, true},
		// AND binds tighter than OR.
		{`smoke == TRUE AND occupancy == TRUE OR hour_of_day > 18`, true},
		{`smoke == TRUE OR occupancy == TRUE AND hour_of_day > 18`, true},
		{`(smoke == TRUE OR occupancy == TRUE) AND hour_of_day < 5`, false},
		{`NOT (smoke == TRUE OR water_leak == TRUE)`, false}, // water_leak absent -> error path below
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			e, err := testParser().ParseExpr(tt.src)
			if err != nil {
				t.Fatalf("ParseExpr: %v", err)
			}
			got, err := e.Eval(s)
			if strings.Contains(tt.src, "water_leak") {
				if err == nil {
					t.Fatal("want error for absent feature")
				}
				return
			}
			if err != nil {
				t.Fatalf("Eval: %v", err)
			}
			if got != tt.want {
				t.Errorf("Eval(%q) = %v, want %v", tt.src, got, tt.want)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,                       // empty
		`WHEN THEN light.on @ l`, // missing condition
		`WHEN bogus_feature == TRUE THEN light.on @ l`, // unknown feature
		`WHEN smoke == TRUE THEN warp.engage @ l`,      // unknown opcode
		`WHEN smoke == TRUE THEN light.on light-1`,     // missing @
		`WHEN smoke > TRUE THEN light.on @ l`,          // ordered op on bool
		`WHEN door_lock >= locked THEN light.on @ l`,   // ordered op on label
		`WHEN door_lock == ajar THEN light.on @ l`,     // label outside domain
		`WHEN smoke == TRUE THEN light.on @ l trailing`,
		`WHEN smoke == TRUE THEN light.on @ l WITH x`, // malformed args
		`WHEN (smoke == TRUE THEN light.on @ l`,       // unbalanced paren
		`WHEN smoke ~ TRUE THEN light.on @ l`,         // bad char
		`WHEN smoke == "unterminated THEN light.on @ l`,
	}
	for _, src := range bad {
		if _, err := testParser().ParseRule("r", src); err == nil {
			t.Errorf("ParseRule(%q) succeeded, want error", src)
		}
	}
}

func TestEvalTypeMismatch(t *testing.T) {
	e, err := testParser().ParseExpr(`temperature_in == 22`)
	if err != nil {
		t.Fatal(err)
	}
	s := snap(map[sensor.Feature]sensor.Value{sensor.FeatTempIndoor: sensor.Bool(true)})
	if _, err := e.Eval(s); err == nil {
		t.Error("want type-mismatch error")
	}
}

func TestLexNumbersAndStrings(t *testing.T) {
	toks, err := lex(`x >= -3.5 AND y == "hi there"`)
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	var kinds []tokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []tokenKind{tokIdent, tokOperator, tokNumber, tokKeyword, tokIdent, tokOperator, tokString, tokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	if toks[2].text != "-3.5" {
		t.Errorf("number token = %q", toks[2].text)
	}
	if toks[6].text != "hi there" {
		t.Errorf("string token = %q", toks[6].text)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`a ! b`, `a == "open`, `#`, `x == -`} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) succeeded, want error", src)
		}
	}
}
