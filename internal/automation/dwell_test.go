package automation

import (
	"testing"
	"time"

	"iotsid/internal/instr"
	"iotsid/internal/sensor"
)

func dwellSnap(smoke bool, at time.Time) sensor.Snapshot {
	s := sensor.NewSnapshot(at)
	s.Set(sensor.FeatSmoke, sensor.Bool(smoke))
	return s
}

func TestParseForClause(t *testing.T) {
	tests := []struct {
		src  string
		want time.Duration
	}{
		{`WHEN smoke == TRUE FOR 5m THEN window.open @ window-1`, 5 * time.Minute},
		{`WHEN smoke == TRUE FOR 30s THEN window.open @ window-1`, 30 * time.Second},
		{`WHEN smoke == TRUE FOR 1h30m THEN window.open @ window-1`, 90 * time.Minute},
		{`WHEN smoke == TRUE THEN window.open @ window-1`, 0},
	}
	for _, tt := range tests {
		r, err := testParser().ParseRule("r", tt.src)
		if err != nil {
			t.Fatalf("ParseRule(%q): %v", tt.src, err)
		}
		if r.Dwell != tt.want {
			t.Errorf("dwell(%q) = %v, want %v", tt.src, r.Dwell, tt.want)
		}
		// Rendered form re-parses with the same dwell.
		r2, err := testParser().ParseRule("r", r.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", r.String(), err)
		}
		if r2.Dwell != tt.want {
			t.Errorf("re-parsed dwell = %v, want %v", r2.Dwell, tt.want)
		}
	}
}

func TestParseForClauseErrors(t *testing.T) {
	bad := []string{
		`WHEN smoke == TRUE FOR THEN window.open @ window-1`,        // missing duration
		`WHEN smoke == TRUE FOR banana THEN window.open @ window-1`, // unparseable
		`WHEN smoke == TRUE FOR -5m THEN window.open @ window-1`,    // negative (lexed as number -5 then ident m)
	}
	for _, src := range bad {
		if _, err := testParser().ParseRule("r", src); err == nil {
			t.Errorf("ParseRule(%q) succeeded, want error", src)
		}
	}
}

func TestDwellFiresAfterHold(t *testing.T) {
	var executed int
	e := NewEngine(instr.BuiltinRegistry(), func(in instr.Instruction) error {
		executed++
		return nil
	})
	if err := e.AddRuleText("slow vent", `WHEN smoke == TRUE FOR 5m THEN window.open @ window-1`); err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2021, 4, 1, 12, 0, 0, 0, time.UTC)

	// Condition goes true at t0: no fire yet.
	if ev := e.Evaluate(dwellSnap(true, t0)); len(ev) != 0 {
		t.Fatalf("fired immediately: %v", ev)
	}
	// Still true at +3m: below the dwell.
	if ev := e.Evaluate(dwellSnap(true, t0.Add(3*time.Minute))); len(ev) != 0 {
		t.Fatalf("fired below dwell: %v", ev)
	}
	// +5m: fires exactly once.
	ev := e.Evaluate(dwellSnap(true, t0.Add(5*time.Minute)))
	if len(ev) != 1 || !ev[0].Allowed {
		t.Fatalf("dwell fire = %v", ev)
	}
	// +10m, still true: no refire within the same episode.
	if ev := e.Evaluate(dwellSnap(true, t0.Add(10*time.Minute))); len(ev) != 0 {
		t.Fatalf("refired in same episode: %v", ev)
	}
	if executed != 1 {
		t.Errorf("executed = %d", executed)
	}
}

func TestDwellResetOnConditionDrop(t *testing.T) {
	e := NewEngine(instr.BuiltinRegistry(), nil)
	if err := e.AddRuleText("slow vent", `WHEN smoke == TRUE FOR 5m THEN window.open @ window-1`); err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2021, 4, 1, 12, 0, 0, 0, time.UTC)
	e.Evaluate(dwellSnap(true, t0))
	e.Evaluate(dwellSnap(true, t0.Add(4*time.Minute)))
	// Condition drops: the hold resets.
	e.Evaluate(dwellSnap(false, t0.Add(4*time.Minute+30*time.Second)))
	// True again: the old 4 minutes do not count.
	if ev := e.Evaluate(dwellSnap(true, t0.Add(5*time.Minute))); len(ev) != 0 {
		t.Fatalf("hold survived a false reading: %v", ev)
	}
	if ev := e.Evaluate(dwellSnap(true, t0.Add(9*time.Minute))); len(ev) != 0 {
		t.Fatalf("fired before fresh dwell elapsed: %v", ev)
	}
	ev := e.Evaluate(dwellSnap(true, t0.Add(10*time.Minute)))
	if len(ev) != 1 {
		t.Fatalf("fresh dwell did not fire: %v", ev)
	}
	// A new episode after another drop fires again.
	e.Evaluate(dwellSnap(false, t0.Add(11*time.Minute)))
	e.Evaluate(dwellSnap(true, t0.Add(12*time.Minute)))
	ev = e.Evaluate(dwellSnap(true, t0.Add(17*time.Minute)))
	if len(ev) != 1 {
		t.Fatalf("second episode did not fire: %v", ev)
	}
}

func TestDwellResetEdges(t *testing.T) {
	e := NewEngine(instr.BuiltinRegistry(), nil)
	if err := e.AddRuleText("slow vent", `WHEN smoke == TRUE FOR 5m THEN window.open @ window-1`); err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2021, 4, 1, 12, 0, 0, 0, time.UTC)
	e.Evaluate(dwellSnap(true, t0))
	e.Evaluate(dwellSnap(true, t0.Add(5*time.Minute))) // fires
	e.ResetEdges()
	// After a reset the dwell clock restarts from the next true reading.
	if ev := e.Evaluate(dwellSnap(true, t0.Add(6*time.Minute))); len(ev) != 0 {
		t.Fatalf("fired straight after reset: %v", ev)
	}
	ev := e.Evaluate(dwellSnap(true, t0.Add(11*time.Minute)))
	if len(ev) != 1 {
		t.Fatalf("post-reset dwell did not fire: %v", ev)
	}
}
