package automation

import (
	"fmt"
	"testing"

	"iotsid/internal/instr"
)

func BenchmarkParseRule(b *testing.B) {
	p := NewParser(instr.BuiltinRegistry())
	src := `WHEN occupancy == TRUE AND hour_of_day >= 18 AND illuminance < 150 FOR 5m THEN light.on @ light-1 WITH brightness = 60`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.ParseRule("bench", src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateHundredRules(b *testing.B) {
	e := NewEngine(instr.BuiltinRegistry(), func(instr.Instruction) error { return nil })
	for i := 0; i < 100; i++ {
		src := fmt.Sprintf(`WHEN occupancy == TRUE AND hour_of_day >= %d THEN light.on @ light-1`, i%24)
		if err := e.AddRuleText(fmt.Sprintf("r%d", i), src); err != nil {
			b.Fatal(err)
		}
	}
	snap := eveningSnap()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Evaluate(snap)
		e.ResetEdges()
	}
}
