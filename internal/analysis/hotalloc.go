package analysis

import (
	"go/ast"
	"go/types"
)

// hotpathTag marks a function whose steady-state path must not allocate.
const hotpathTag = "//iot:hotpath"

// HotAlloc is the static twin of the AllocsPerRun gates: inside functions
// annotated //iot:hotpath it forbids the four allocation sources that
// have historically crept into the fast path — fmt calls (every variadic
// ...any argument boxes), string concatenation with + (non-constant),
// conversions of non-pointer-shaped concrete values to interface{}/any,
// and function literals (a capturing closure escapes and allocates; even
// a non-capturing one costs an escape-analysis gamble the hot path must
// not take). Error paths that genuinely never run steady-state carry
// //iot:allow hotalloc suppressions with the reason spelled out.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid fmt calls, string building, interface boxing and closures in //iot:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
	return nil
}

// isHotpath reports whether the function's doc comment carries the
// //iot:hotpath directive.
func isHotpath(fd *ast.FuncDecl) bool { return hasDirective(fd, hotpathTag) }

func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, name, n)
		case *ast.BinaryExpr:
			checkHotConcat(pass, name, n)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocates in hot path %s", name)
			return false // the literal's own body is cold by definition
		}
		return true
	})
}

// checkHotCall flags fmt calls, explicit conversions to interface types
// and implicit boxing of call arguments into interface{} parameters.
func checkHotCall(pass *Pass, fn string, call *ast.CallExpr) {
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		// Explicit conversion T(x).
		if isBoxing(tv.Type, argType(pass.Info, call.Args)) {
			pass.Reportf(call.Pos(), "conversion to %s allocates in hot path %s", tv.Type, fn)
		}
		return
	}
	if obj := pass.FuncObj(call.Fun); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s allocates in hot path %s", obj.Name(), fn)
		return
	}
	sig, ok := typeOf(pass.Info, call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i, call.Ellipsis.IsValid())
		if pt == nil {
			continue
		}
		at := typeOf(pass.Info, arg)
		if isEmptyInterface(pt) && isBoxing(pt, at) {
			pass.Reportf(arg.Pos(), "argument boxes %s into interface{} in hot path %s", at, fn)
		}
	}
}

// checkHotConcat flags non-constant string concatenation.
func checkHotConcat(pass *Pass, fn string, e *ast.BinaryExpr) {
	if isHotConcat(pass.Info, e) {
		pass.Reportf(e.Pos(), "string concatenation allocates in hot path %s", fn)
	}
}

// isHotConcat reports whether e is a non-constant string concatenation.
func isHotConcat(info *types.Info, e *ast.BinaryExpr) bool {
	if e.Op.String() != "+" {
		return false
	}
	tv, ok := info.Types[e]
	if !ok || tv.Value != nil { // constant-folded concatenation is free
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// argType returns the sole conversion operand's type, if there is one.
func argType(info *types.Info, args []ast.Expr) types.Type {
	if len(args) != 1 {
		return nil
	}
	return typeOf(info, args[0])
}

// paramTypeAt resolves the parameter type an argument lands in,
// unwrapping the variadic tail. hasEllipsis marks f(xs...) calls, where
// the final slice passes through without boxing.
func paramTypeAt(sig *types.Signature, i int, hasEllipsis bool) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if hasEllipsis {
			return nil
		}
		s, ok := sig.Params().At(n - 1).Type().(*types.Slice)
		if !ok {
			return nil
		}
		return s.Elem()
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

func isEmptyInterface(t types.Type) bool {
	i, ok := t.Underlying().(*types.Interface)
	return ok && i.Empty()
}

// isBoxing reports whether converting from into to allocates: to must be
// an interface and from a concrete type that is not pointer-shaped
// (pointers, channels, maps, funcs and unsafe.Pointer fit in the
// interface word without an allocation).
func isBoxing(to, from types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	if _, ok := to.Underlying().(*types.Interface); !ok {
		return false
	}
	switch u := from.Underlying().(type) {
	case *types.Interface:
		return false // interface-to-interface carries the existing box
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.UntypedNil
	default:
		return true
	}
}
