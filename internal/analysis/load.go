package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
	Module     *struct{ Dir string }
}

// Package is one parsed, type-checked target package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Src holds raw file bytes keyed by absolute path, for the
	// suppression scanner's trailing-vs-standalone comment test.
	Src map[string][]byte
	// ModDir is the module root that diagnostics are reported relative to.
	ModDir string
}

// Load discovers patterns with `go list -deps -export -json` run in dir,
// parses every target package's non-test sources and type-checks them
// against the export data the go command reports for their dependencies.
// Packages come back sorted by import path.
func Load(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(metas))
	var targets []*listPkg
	for _, m := range metas {
		if m.Error != nil {
			return nil, fmt.Errorf("analysis: go list: package %s: %s", m.ImportPath, m.Error.Err)
		}
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
		if !m.DepOnly {
			targets = append(targets, m)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		modDir := dir
		if t.Module != nil && t.Module.Dir != "" {
			modDir = t.Module.Dir
		}
		pkg, err := checkPackage(fset, imp, t, modDir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// goList runs the go command and decodes its JSON package stream.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var metas []*listPkg
	for {
		var m listPkg
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		metas = append(metas, &m)
	}
	return metas, nil
}

// exportImporter builds a go/types importer that resolves every import
// from the export data files `go list -export` reported. The gc importer
// caches loaded packages, so one importer serves the whole run.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// checkPackage parses and type-checks one target package.
func checkPackage(fset *token.FileSet, imp types.Importer, meta *listPkg, modDir string) (*Package, error) {
	files, src, err := parseDir(fset, meta.Dir, meta.GoFiles)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	conf := types.Config{Importer: imp, FakeImportC: true}
	tpkg, err := conf.Check(meta.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", meta.ImportPath, err)
	}
	return &Package{
		Path:   meta.ImportPath,
		Fset:   fset,
		Files:  files,
		Pkg:    tpkg,
		Info:   info,
		Src:    src,
		ModDir: modDir,
	}, nil
}

// parseDir parses the named files under dir with comments retained.
func parseDir(fset *token.FileSet, dir string, names []string) ([]*ast.File, map[string][]byte, error) {
	files := make([]*ast.File, 0, len(names))
	src := make(map[string][]byte, len(names))
	for _, name := range names {
		full := filepath.Join(dir, name)
		b, err := os.ReadFile(full)
		if err != nil {
			return nil, nil, fmt.Errorf("analysis: %w", err)
		}
		f, err := parser.ParseFile(fset, full, b, parser.ParseComments)
		if err != nil {
			return nil, nil, fmt.Errorf("analysis: parse %s: %w", full, err)
		}
		files = append(files, f)
		src[full] = b
	}
	return files, src, nil
}

// newInfo allocates the full set of type-information maps the analyzers
// consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// LoadDir parses and type-checks a single directory of Go files outside
// any module context — the self-test harness uses it to check testdata
// fixture packages under a synthetic import path whose segments place the
// fixture in the scope under test (e.g. "iotsid/internal/dataset/fix").
// Imports are resolved by asking the go command for export data for
// exactly the paths the fixture files mention.
func LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	files, src, err := parseDir(fset, dir, names)
	if err != nil {
		return nil, err
	}
	imports := make(map[string]bool)
	for _, f := range files {
		for _, spec := range f.Imports {
			p := strings.Trim(spec.Path.Value, `"`)
			if p != "unsafe" {
				imports[p] = true
			}
		}
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		paths := make([]string, 0, len(imports))
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		metas, err := goList(dir, paths)
		if err != nil {
			return nil, err
		}
		for _, m := range metas {
			if m.Error != nil {
				return nil, fmt.Errorf("analysis: go list: package %s: %s", m.ImportPath, m.Error.Err)
			}
			if m.Export != "" {
				exports[m.ImportPath] = m.Export
			}
		}
	}
	info := newInfo()
	conf := types.Config{Importer: exportImporter(fset, exports), FakeImportC: true}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", importPath, err)
	}
	return &Package{
		Path:   importPath,
		Fset:   fset,
		Files:  files,
		Pkg:    tpkg,
		Info:   info,
		Src:    src,
		ModDir: dir,
	}, nil
}
