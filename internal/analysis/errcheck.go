package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheck reports error-returning calls in internal/ code whose result is
// silently dropped: bare expression statements, `go` statements and
// deferred calls. An explicit blank assignment (`_ = f()`) is the
// sanctioned way to document a deliberate discard, so it is not flagged —
// the analyzer's job is to make every discard visible in the diff, not to
// forbid discarding.
//
// Writers whose error contract makes checking meaningless are excluded:
// strings.Builder and bytes.Buffer never return a non-nil error,
// hash.Hash.Write is documented to never fail, and bufio.Writer latches
// its first error so correctness lives in the Flush check (Flush itself
// stays flagged when dropped). fmt.Fprint* into those writer types is
// excluded for the same reason.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "report dropped error results in internal/ code",
	Run:  runErrCheck,
}

func runErrCheck(pass *Pass) error {
	if !inInternal(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					reportDropped(pass, call, "unchecked error from")
				}
			case *ast.GoStmt:
				reportDropped(pass, n.Call, "dropped error from go statement calling")
			case *ast.DeferStmt:
				reportDropped(pass, n.Call, "dropped error from deferred call to")
			}
			return true
		})
	}
	return nil
}

// reportDropped flags the call when any of its results is an error.
func reportDropped(pass *Pass, call *ast.CallExpr, what string) {
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	if !returnsError(pass, call) || infallibleWrite(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "%s %s: handle it or assign to _ deliberately", what, callName(call))
}

// infallibleWrite reports whether the call's dropped error is dead by
// contract: Write* methods on strings.Builder / bytes.Buffer (never fail),
// bufio.Writer (sticky error, surfaced by Flush) and hash.Hash (documented
// to never fail), plus fmt.Fprint* aimed at one of those writers.
func infallibleWrite(pass *Pass, call *ast.CallExpr) bool {
	if obj := pass.FuncObj(call.Fun); obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "fmt" && strings.HasPrefix(obj.Name(), "Fprint") {
		return len(call.Args) > 0 && infallibleWriterType(typeOf(pass.Info, call.Args[0]))
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, "Write") {
		return false
	}
	return infallibleWriterType(typeOf(pass.Info, sel.X))
}

// infallibleWriterType matches the receiver types of the exclusion set.
func infallibleWriterType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer", "bufio.Writer", "hash.Hash":
		return true
	}
	return false
}

func returnsError(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// callName renders a readable name for the called expression, flattening
// selector chains so `defer resp.Body.Close()` reads back as written.
func callName(call *ast.CallExpr) string {
	if name := chainName(call.Fun); name != "" {
		return name
	}
	return "call"
}

func chainName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := chainName(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
		return e.Sel.Name
	}
	return ""
}
