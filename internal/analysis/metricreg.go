package analysis

import (
	"go/ast"
	"go/constant"
	"regexp"
	"strings"
)

// MetricReg keeps the observability layer off the fast path and the metric
// namespace coherent. Two rules:
//
//  1. no obs registrations or vec lookups inside //iot:hotpath or
//     //iot:failclosed functions — Registry.New* takes the registry lock
//     and allocates, CounterVec.With/GaugeVec.With builds a label key;
//     series must be pre-registered at construction time and captured;
//  2. every Registry.New* name argument must be a compile-time constant
//     matching the DESIGN §9 grammar iotsid_<subsystem>_<what>[_<unit>]:
//     lowercase snake_case with the iotsid_ prefix, counters ending in
//     _total, histograms in _seconds or _bytes.
var MetricReg = &Analyzer{
	Name: "metricreg",
	Doc:  "no obs registration/lookup in hotpath/failclosed functions; metric names must be constant and match the iotsid_* grammar",
	Run:  runMetricReg,
}

// metricNameRE is the DESIGN §9 naming grammar: at least two underscore
// segments after the iotsid_ prefix.
var metricNameRE = regexp.MustCompile(`^iotsid_[a-z0-9]+(_[a-z0-9]+)+$`)

// obsRegistryCtors are the registration entry points; the key is the
// method name, the value the required name suffix ("" = none).
var obsRegistryCtors = map[string]string{
	"NewCounter":    "_total",
	"NewCounterVec": "_total",
	"NewGauge":      "",
	"NewGaugeVec":   "",
	"NewHistogram":  "", // suffix checked specially: _seconds or _bytes
}

// obsHotBanned are the obs methods banned inside annotated functions:
// all registrations plus the vec lookups.
func obsHotBanned(name string) bool {
	if _, ok := obsRegistryCtors[name]; ok {
		return true
	}
	return name == "With"
}

func runMetricReg(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			hot := isHotpath(fd) || hasDirective(fd, failclosedTag)
			checkMetricCalls(pass, fd, hot)
		}
	}
	return nil
}

func checkMetricCalls(pass *Pass, fd *ast.FuncDecl, hot bool) {
	name := funcDisplayName(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := pass.FuncObj(call.Fun)
		if obj == nil || obj.Pkg() == nil || !pathHasSegs(obj.Pkg().Path(), "internal/obs") {
			return true
		}
		m := obj.Name()
		if hot && obsHotBanned(m) {
			kind := "registration"
			if m == "With" {
				kind = "vec lookup"
			}
			pass.Reportf(call.Pos(), "obs %s %s inside %s: pre-register series at construction time", kind, m, name)
		}
		if _, ok := obsRegistryCtors[m]; ok && len(call.Args) > 0 {
			checkMetricName(pass, m, call.Args[0])
		}
		return true
	})
}

// checkMetricName enforces the constant-name grammar on one registration.
func checkMetricName(pass *Pass, method string, arg ast.Expr) {
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(), "metric name passed to %s must be a compile-time constant string", method)
		return
	}
	name := constant.StringVal(tv.Value)
	if !metricNameRE.MatchString(name) {
		pass.Reportf(arg.Pos(), "metric name %q does not match the iotsid_<subsystem>_<what> grammar (DESIGN §9)", name)
		return
	}
	switch method {
	case "NewCounter", "NewCounterVec":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(arg.Pos(), "counter name %q must end in _total (DESIGN §9)", name)
		}
	case "NewHistogram":
		if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") {
			pass.Reportf(arg.Pos(), "histogram name %q must end in _seconds or _bytes (DESIGN §9)", name)
		}
	}
}
