package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// allowTag is the line-suppression marker: //iot:allow <analyzer> <reason>.
const allowTag = "//iot:allow"

// Config describes one engine run.
type Config struct {
	// Dir is where `go list` runs; "" means the current directory.
	Dir string
	// Patterns are go package patterns; empty means ./...
	Patterns []string
	// Analyzers to run; empty means All().
	Analyzers []*Analyzer
	// Allowlist maps an analyzer name to module-relative directory
	// prefixes whose files it must skip. DefaultAllowlist covers the
	// vendor-I/O packages.
	Allowlist map[string][]string
}

// DefaultAllowlist exempts the vendor-I/O client code — real sockets with
// real read deadlines — from the wall-clock analyzers. Everything else
// (errcheck, ctxrule, hotalloc) still applies there.
func DefaultAllowlist() map[string][]string {
	return map[string][]string{
		"nodeterm": {"internal/miio", "internal/smartthings"},
		"sleepban": {"internal/miio", "internal/smartthings"},
	}
}

// Result is one engine run's outcome.
type Result struct {
	// Diagnostics are the active findings, sorted.
	Diagnostics []Diagnostic
	// Suppressed are findings silenced by an //iot:allow comment, sorted;
	// kept so callers can audit what the tree tolerates.
	Suppressed []Diagnostic
	// Allowlisted are findings dropped by Config.Allowlist, sorted.
	Allowlisted []Diagnostic
	// UnusedAllows are well-formed //iot:allow comments that matched no
	// finding during this run — stale suppressions. Only meaningful when
	// the run included every analyzer; the -unused-allows audit mode
	// enforces that.
	UnusedAllows []Diagnostic
}

// Run loads the requested packages and applies every analyzer.
func Run(cfg Config) (*Result, error) {
	pkgs, err := Load(cfg.Dir, cfg.Patterns)
	if err != nil {
		return nil, err
	}
	analyzers := cfg.Analyzers
	if len(analyzers) == 0 {
		analyzers = All()
	}
	prog := NewProgram(pkgs)
	res := &Result{}
	for _, pkg := range pkgs {
		diags, err := runPackage(prog, pkg, analyzers)
		if err != nil {
			return nil, err
		}
		res.merge(splitSuppressed(pkg, diags, cfg.Allowlist))
	}
	res.sort()
	return res, nil
}

// RunPackage applies the analyzers to one loaded package and returns the
// raw findings — including any malformed //iot:allow diagnostics — before
// suppression or allowlist filtering. The self-test harness calls this
// directly; the interprocedural analyzers see a single-package Program.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return runPackage(NewProgram([]*Package{pkg}), pkg, analyzers)
}

func runPackage(prog *Program, pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	rel := func(abs string) string { return relPath(pkg.ModDir, abs) }
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Path:     pkg.Path,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			Prog:     prog,
			relFile:  rel,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	diags = append(diags, malformedAllows(pkg)...)
	return diags, nil
}

// relPath makes abs relative to root, falling back to the absolute path
// when it escapes the module (it never should).
func relPath(root, abs string) string {
	r, err := filepath.Rel(root, abs)
	if err != nil {
		return abs
	}
	return filepath.ToSlash(r)
}

// merge folds one package's filtered findings into the result.
func (r *Result) merge(active, suppressed, allowlisted, unused []Diagnostic) {
	r.Diagnostics = append(r.Diagnostics, active...)
	r.Suppressed = append(r.Suppressed, suppressed...)
	r.Allowlisted = append(r.Allowlisted, allowlisted...)
	r.UnusedAllows = append(r.UnusedAllows, unused...)
}

func (r *Result) sort() {
	sortDiags(r.Diagnostics)
	sortDiags(r.Suppressed)
	sortDiags(r.Allowlisted)
	sortDiags(r.UnusedAllows)
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool { return ds[i].less(ds[j]) })
}

// SortDiagnostics orders a merged diagnostic list the way the engine
// orders each Result list (file, line, column, analyzer, message), so
// drivers that splice lists together keep byte-stable output.
func SortDiagnostics(ds []Diagnostic) { sortDiags(ds) }

// suppression is one parsed //iot:allow comment.
type suppression struct {
	analyzer string
	// line is the comment's own line; standalone comments also cover the
	// following line.
	line       int
	col        int
	standalone bool
	// used flips when a finding matches — the -unused-allows audit reports
	// the survivors.
	used bool
}

// splitSuppressed partitions raw findings into active, //iot:allow'd and
// allowlisted, plus an audit list of allow comments that matched nothing.
func splitSuppressed(pkg *Package, diags []Diagnostic, allowlist map[string][]string) (active, suppressed, allowlisted, unused []Diagnostic) {
	sups := scanSuppressions(pkg)
	for _, d := range diags {
		// Check the allow comments first even for allowlisted findings so
		// a suppression shadowed by the engine allowlist still counts as
		// used rather than showing up as stale.
		byAllow := suppressedBy(d, sups[d.File])
		switch {
		case underAllowlist(d, allowlist):
			allowlisted = append(allowlisted, d)
		case byAllow:
			suppressed = append(suppressed, d)
		default:
			active = append(active, d)
		}
	}
	for file, fileSups := range sups {
		for _, s := range fileSups {
			if s.used {
				continue
			}
			unused = append(unused, Diagnostic{
				File:     file,
				Line:     s.line,
				Col:      s.col,
				Analyzer: "iotlint",
				Message:  fmt.Sprintf("unused //iot:allow %s: no %s finding on this line", s.analyzer, s.analyzer),
			})
		}
	}
	return active, suppressed, allowlisted, unused
}

func suppressedBy(d Diagnostic, sups []*suppression) bool {
	hit := false
	for _, s := range sups {
		if s.analyzer != d.Analyzer {
			continue
		}
		if d.Line == s.line || (s.standalone && d.Line == s.line+1) {
			s.used = true
			hit = true
		}
	}
	return hit
}

// underAllowlist reports whether the diagnostic's file sits under a
// directory prefix allowlisted for its analyzer.
func underAllowlist(d Diagnostic, allowlist map[string][]string) bool {
	for _, prefix := range allowlist[d.Analyzer] {
		prefix = filepath.ToSlash(prefix)
		if d.File == prefix || strings.HasPrefix(d.File, prefix+"/") {
			return true
		}
	}
	return false
}

// scanSuppressions collects well-formed //iot:allow comments per
// module-relative file.
func scanSuppressions(pkg *Package) map[string][]*suppression {
	out := make(map[string][]*suppression)
	eachAllow(pkg, func(file string, pos token.Position, fields []string, standalone bool) {
		if len(fields) < 2 {
			return // malformedAllows reports these
		}
		out[file] = append(out[file], &suppression{
			analyzer:   fields[0],
			line:       pos.Line,
			col:        pos.Column,
			standalone: standalone,
		})
	})
	return out
}

// malformedAllows reports //iot:allow comments missing the mandatory
// analyzer name or reason — a suppression with no recorded justification
// is itself a finding.
func malformedAllows(pkg *Package) []Diagnostic {
	var out []Diagnostic
	eachAllow(pkg, func(file string, pos token.Position, fields []string, standalone bool) {
		if len(fields) >= 2 {
			return
		}
		out = append(out, Diagnostic{
			File:     file,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: "iotlint",
			Message:  "malformed //iot:allow: want \"//iot:allow <analyzer> <reason>\" with a non-empty reason",
		})
	})
	return out
}

// eachAllow walks every comment in the package and invokes fn for each
// //iot:allow marker with its position, whitespace-split payload and
// whether the comment stands alone on its line. A comment must START with
// the tag to count (prose that merely mentions //iot:allow stays inert),
// but one comment may chain several markers —
// "//iot:allow a r1 //iot:allow b r2" yields two suppressions, each
// positioned at its own tag.
func eachAllow(pkg *Package, fn func(file string, pos token.Position, fields []string, standalone bool)) {
	for _, f := range pkg.Files {
		abs := pkg.Fset.Position(f.Pos()).Filename
		file := relPath(pkg.ModDir, abs)
		src := pkg.Src[abs]
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				rest, ok := strings.CutPrefix(text, allowTag)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				standalone := standaloneComment(pkg, src, c)
				offs := []int{0}
				for i := len(allowTag); ; {
					j := strings.Index(text[i:], allowTag)
					if j < 0 {
						break
					}
					offs = append(offs, i+j)
					i += j + len(allowTag)
				}
				for k, off := range offs {
					end := len(text)
					if k+1 < len(offs) {
						end = offs[k+1]
					}
					payload := text[off+len(allowTag) : end]
					pos := pkg.Fset.Position(c.Pos() + token.Pos(off))
					fn(file, pos, strings.Fields(payload), standalone)
				}
			}
		}
	}
}

// standaloneComment reports whether nothing but whitespace precedes the
// comment on its line — a standalone comment suppresses the line below,
// while a trailing comment suppresses only its own.
func standaloneComment(pkg *Package, src []byte, c *ast.Comment) bool {
	tf := pkg.Fset.File(c.Pos())
	if tf == nil || src == nil {
		return false
	}
	start := tf.Offset(tf.LineStart(pkg.Fset.Position(c.Pos()).Line))
	end := tf.Offset(c.Pos())
	if start < 0 || end > len(src) || start > end {
		return false
	}
	return strings.TrimSpace(string(src[start:end])) == ""
}

// WriteText renders findings in the human `file:line:col: analyzer:
// message` form, one per line.
func WriteText(w io.Writer, ds []Diagnostic) error {
	for _, d := range ds {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders findings as an indented JSON array (an empty slice
// renders as []), byte-stable for golden comparison.
func WriteJSON(w io.Writer, ds []Diagnostic) error {
	if ds == nil {
		ds = []Diagnostic{}
	}
	b, err := json.MarshalIndent(ds, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
