package analysis

import (
	"go/ast"
	"go/types"
)

// CowPub enforces the copy-on-write publication discipline every lock-free
// read path in this tree depends on (epoch views, the fleet model
// registry, per-home context views, trust cells): a value shared through
// a sync/atomic.Pointer is immutable once published. Two rules:
//
//  1. a value obtained from Pointer.Load() or Pointer.Swap() is someone
//     else's published copy — writing through it (field, index, or
//     pointer-dereference assignment) is flagged anywhere in the function,
//     including through one level of aliasing;
//  2. after Pointer.Store(v) / CompareAndSwap(_, v) publishes a local, any
//     write through that local on a CFG path after the store is flagged —
//     mutate first, publish last.
var CowPub = &Analyzer{
	Name: "cowpub",
	Doc:  "values published through atomic.Pointer must not be written after Load or Store",
	Run:  runCowPub,
}

func runCowPub(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCowPub(pass, fd)
		}
	}
	return nil
}

func checkCowPub(pass *Pass, fd *ast.FuncDecl) {
	name := funcDisplayName(fd)
	loaded := loadedVars(pass.Info, fd.Body)

	// Rule 1: writes through loaded (or loaded-aliased) values, anywhere.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			base := writeThroughBase(lhs)
			if base == nil {
				continue
			}
			if v, ok := varOfIdent(pass.Info, base); ok && loaded[v] {
				pass.Reportf(lhs.Pos(), "write through %s mutates a value published via atomic.Pointer in %s (copy before writing)", base.Name, name)
			}
		}
		return true
	})

	// Rule 2: writes after the publishing store.
	checkAfterStore(pass, fd, name)
}

// loadedVars collects variables bound from Pointer.Load()/Swap() results,
// plus one level of plain-identifier aliases.
func loadedVars(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	collect := func(aliasPass bool) {
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := varOfIdent(info, id)
				if !ok {
					continue
				}
				if aliasPass {
					if src, ok := as.Rhs[i].(*ast.Ident); ok {
						if sv, ok := varOfIdent(info, src); ok && out[sv] {
							out[v] = true
						}
					}
					continue
				}
				if call, ok := as.Rhs[i].(*ast.CallExpr); ok {
					switch atomicPtrMethod(info, call) {
					case "Load", "Swap":
						out[v] = true
					}
				}
			}
			return true
		})
	}
	collect(false)
	collect(true)
	return out
}

// checkAfterStore walks the CFG forward from every Store/CompareAndSwap of
// a local and flags writes through that local downstream.
func checkAfterStore(pass *Pass, fd *ast.FuncDecl, name string) {
	cfg := buildCFG(fd.Body)
	for _, blk := range cfg.blocks {
		for i, s := range blk.stmts {
			v := publishedVarIn(pass.Info, s)
			if v == nil {
				continue
			}
			// Same block, after the store.
			for _, later := range blk.stmts[i+1:] {
				flagWritesThrough(pass, later, v, name)
			}
			// Every reachable successor block.
			seen := map[*cfgBlock]bool{blk: true}
			var visit func(*cfgBlock)
			visit = func(b *cfgBlock) {
				for _, succ := range b.succs {
					if seen[succ] {
						continue
					}
					seen[succ] = true
					for _, s := range succ.stmts {
						flagWritesThrough(pass, s, v, name)
					}
					visit(succ)
				}
			}
			visit(blk)
		}
	}
}

// publishedVarIn matches p.Store(v) / p.Store(&v) / p.CompareAndSwap(_, v)
// statements and returns the published local.
func publishedVarIn(info *types.Info, s ast.Stmt) *types.Var {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil
	}
	var arg ast.Expr
	switch atomicPtrMethod(info, call) {
	case "Store":
		if len(call.Args) == 1 {
			arg = call.Args[0]
		}
	case "CompareAndSwap":
		if len(call.Args) == 2 {
			arg = call.Args[1]
		}
	}
	if arg == nil {
		return nil
	}
	if u, ok := arg.(*ast.UnaryExpr); ok {
		arg = u.X // Store(&local)
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := varOfIdent(info, id); ok {
		return v
	}
	return nil
}

func flagWritesThrough(pass *Pass, s ast.Stmt, v *types.Var, fn string) {
	ast.Inspect(s, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			base := writeThroughBase(lhs)
			if base == nil {
				continue
			}
			if bv, ok := varOfIdent(pass.Info, base); ok && bv == v {
				pass.Reportf(lhs.Pos(), "write to %s after it was published via atomic.Pointer in %s (mutate before Store)", base.Name, fn)
			}
		}
		return true
	})
}

// writeThroughBase unwraps a selector/index/deref chain to its root
// identifier; a bare identifier target (rebinding) returns nil — only
// writes through the value count.
func writeThroughBase(lhs ast.Expr) *ast.Ident {
	through := false
	for {
		switch e := lhs.(type) {
		case *ast.SelectorExpr:
			through = true
			lhs = e.X
		case *ast.IndexExpr:
			through = true
			lhs = e.X
		case *ast.StarExpr:
			through = true
			lhs = e.X
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.Ident:
			if through {
				return e
			}
			return nil
		default:
			return nil
		}
	}
}

func varOfIdent(info *types.Info, id *ast.Ident) (*types.Var, bool) {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v, true
	}
	v, ok := info.Uses[id].(*types.Var)
	return v, ok
}

// atomicPtrMethod returns the method name when call is a method on
// sync/atomic's Pointer[T] ("Load", "Store", "Swap", "CompareAndSwap"),
// else "".
func atomicPtrMethod(info *types.Info, call *ast.CallExpr) string {
	obj := funcObjIn(info, call.Fun)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return ""
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Pointer" {
		return ""
	}
	return obj.Name()
}
