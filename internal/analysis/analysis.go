// Package analysis is iotsid's stdlib-only static-analysis engine. It
// machine-enforces the invariants the earlier PRs established by
// convention and runtime gate: bit-identical training/eval at any worker
// count (no wall clock or global rand in deterministic packages), a
// zero-allocation authorization fast path (no fmt / string building /
// interface boxing in //iot:hotpath functions), injectable sleeps,
// context hygiene, and checked errors in library code.
//
// The engine deliberately uses nothing outside the standard library:
// package discovery runs `go list -deps -export -json` through os/exec,
// parsing is go/parser, and type information comes from go/types with the
// gc export-data importer fed by the paths `go list -export` reports. The
// module's require block stays empty.
//
// Findings are suppressed line-by-line with
//
//	//iot:allow <analyzer> <reason>
//
// where the reason is mandatory — a bare //iot:allow is itself a
// diagnostic. A trailing comment suppresses its own line; a standalone
// comment line suppresses the line below it. Engine-level allowlists
// (Config.Allowlist) exempt whole directories from specific analyzers —
// the vendor-I/O files under internal/miio and internal/smartthings,
// where wall-clock deadlines on sockets are legitimate, are the canonical
// entry.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Diagnostic is one finding. File is relative to the module root so output
// is byte-identical regardless of where the checkout lives.
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the human one-liner form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// less orders diagnostics by file, line, column, analyzer, message — the
// total order that makes iotlint output deterministic.
func (d Diagnostic) less(o Diagnostic) bool {
	if d.File != o.File {
		return d.File < o.File
	}
	if d.Line != o.Line {
		return d.Line < o.Line
	}
	if d.Col != o.Col {
		return d.Col < o.Col
	}
	if d.Analyzer != o.Analyzer {
		return d.Analyzer < o.Analyzer
	}
	return d.Message < o.Message
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	// Name is the identifier used in output and //iot:allow comments.
	Name string
	// Doc is the one-line description shown by `iotlint -analyzers`.
	Doc string
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass is the per-(analyzer, package) view handed to Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	// Path is the package import path ("iotsid/internal/eval").
	Path string
	Fset *token.FileSet
	// Files are the parsed non-test sources. Test files are out of scope
	// for every analyzer, so the loader never parses them.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Prog is the whole-run function index for the interprocedural
	// analyzers. For single-package harness runs it covers that package
	// alone.
	Prog *Program

	// relFile maps fset absolute filenames to module-relative paths.
	relFile func(string) string
	report  func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		File:     p.relFile(position.Filename),
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// FuncObj resolves a call or identifier use to the *types.Func it names,
// or nil when it is not a direct function reference.
func (p *Pass) FuncObj(e ast.Expr) *types.Func { return funcObjIn(p.Info, e) }

// funcObjIn is FuncObj against an explicit type info table, for analyzers
// that follow the call graph into other packages.
func funcObjIn(info *types.Info, e ast.Expr) *types.Func {
	switch e := e.(type) {
	case *ast.Ident:
		f, _ := info.Uses[e].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[e.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgFunc reports whether obj is the package-level function pkgPath.name
// (methods have a receiver and never match).
func isPkgFunc(obj *types.Func, pkgPath, name string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if obj.Pkg().Path() != pkgPath || obj.Name() != name {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// pathHasSegs reports whether the contiguous segment sequence seg (e.g.
// "internal/dataset") occurs at segment boundaries anywhere in the import
// path. Matching segments rather than string prefixes keeps the scope
// rules module-name-agnostic: "iotsid/internal/dataset",
// "fixture/internal/dataset" and a bare "internal/dataset" all match.
func pathHasSegs(path, seg string) bool {
	ps := strings.Split(path, "/")
	ss := strings.Split(seg, "/")
	if len(ss) == 0 || len(ss) > len(ps) {
		return false
	}
	for i := 0; i+len(ss) <= len(ps); i++ {
		match := true
		for j := range ss {
			if ps[i+j] != ss[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// deterministicScopes are the packages whose outputs must be bit-identical
// at any worker count (DESIGN §5): the dataset builder, every learner, the
// evaluation sweeps, the worker pool, the survey synthesis, the home
// simulator, the sensor-trust engine (its scores feed the spoofing
// campaign digests) and the sequence judge (its tables and traces feed the
// chain-campaign digests).
var deterministicScopes = []string{
	"internal/dataset",
	"internal/mlearn",
	"internal/eval",
	"internal/par",
	"internal/survey",
	"internal/home",
	"internal/trust",
	"internal/seq",
}

// inDeterministicScope reports whether the import path falls under a
// deterministic package root.
func inDeterministicScope(path string) bool {
	for _, s := range deterministicScopes {
		if pathHasSegs(path, s) {
			return true
		}
	}
	return false
}

// inInternal reports whether the import path is library code under an
// internal/ tree.
func inInternal(path string) bool { return pathHasSegs(path, "internal") }

// inCmd reports whether the import path is a main-package tree under cmd/.
func inCmd(path string) bool { return pathHasSegs(path, "cmd") }

// errorType is the universe error interface, for errcheck result matching.
var errorType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is exactly the built-in error type.
func isErrorType(t types.Type) bool { return t != nil && types.Identical(t, errorType) }
