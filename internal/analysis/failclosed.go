package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FailClosed machine-checks the paper's central safety contract: a
// function annotated //iot:failclosed must have no control-flow path on
// which a degraded condition — a non-nil error, a missing or low-trust
// required source, a sequence anomaly — reaches a return that carries an
// allow decision. Degraded edges are found by classifying branch
// conditions (err != nil, len(MissingRequired()) > 0, !TrustedIdx(i),
// v.Anomalous, ...), then every return reachable from such an edge must
// be provably deny: a Decision literal without Allowed: true, a variable
// all of whose assignments (or the last assignment on the path) are deny,
// a delegation to another //iot:failclosed function, a false bool, or a
// non-nil error. Branches proven non-sensitive (IsSensitive == false) are
// exempt — the paper only fails closed on sensitive instructions.
//
// Independently, every rejection reason written inside a fail-closed
// function must be an interned package-level string — a const or
// package-level var, never a fresh literal, fmt.Sprintf, or concatenation
// — so the steady state stays allocation-free and dashboards see stable
// strings.
var FailClosed = &Analyzer{
	Name: "failclosed",
	Doc:  "degraded branches in //iot:failclosed functions must reach only deny returns with interned reasons",
	Run:  runFailClosed,
}

func runFailClosed(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd, failclosedTag) {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fc := &fcCheck{
				pass:     pass,
				fd:       fd,
				sig:      obj.Type().(*types.Signature),
				name:     funcDisplayName(fd),
				reported: make(map[string]bool),
			}
			fc.checkReasons()
			fc.checkDegradedPaths()
		}
	}
	return nil
}

// fcCheck is the per-function state for one fail-closed verification.
type fcCheck struct {
	pass *Pass
	fd   *ast.FuncDecl
	sig  *types.Signature
	name string
	// reported dedupes findings reachable from several degraded edges.
	reported map[string]bool
}

func (fc *fcCheck) reportf(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d:%s", pos, msg)
	if fc.reported[key] {
		return
	}
	fc.reported[key] = true
	fc.pass.Reportf(pos, "%s", msg)
}

// ---------------------------------------------------------------------------
// Condition classification

// cflags describes what a branch condition implies about its two edges:
// degT/degF mark the true/false edge as entering a degraded state, and
// exT/exF mark it as exempt (proven non-sensitive, so fail-open is
// allowed by the contract).
type cflags struct {
	degT, degF bool
	exT, exF   bool
}

func (c cflags) not() cflags { return cflags{c.degF, c.degT, c.exF, c.exT} }

// degradedAtomNames are identifiers/selectors/calls whose truth means the
// context is untrustworthy.
var degradedAtomNames = map[string]bool{
	"Anomalous": true, "LowTrust": true, "Missing": true, "Degraded": true,
	"LowTrustRequired": true,
	"anomalous":        true, "lowTrust": true, "degraded": true, "missing": true,
}

// healthyAtomNames are names whose truth means the source is trusted — the
// FALSE edge is the degraded one.
var healthyAtomNames = map[string]bool{
	"TrustedIdx": true, "Trusted": true,
}

// sensitiveAtomNames gate the contract itself: their false edge is exempt.
var sensitiveAtomNames = map[string]bool{
	"IsSensitive": true, "Sensitive": true,
}

// classifyCond maps a branch condition to its edge flags.
func classifyCond(info *types.Info, e ast.Expr) cflags {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return classifyCond(info, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return classifyCond(info, e.X).not()
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			a, b := classifyCond(info, e.X), classifyCond(info, e.Y)
			// True edge: both held. False edge is ambiguous; treating it
			// as degraded when either side would be over-approximates
			// toward walking more paths.
			return cflags{degT: a.degT || b.degT, degF: a.degF || b.degF, exT: a.exT || b.exT}
		case token.LOR:
			a, b := classifyCond(info, e.X), classifyCond(info, e.Y)
			return cflags{degT: a.degT && b.degT, degF: a.degF || b.degF, exF: a.exF || b.exF}
		case token.NEQ, token.EQL:
			return classifyCompare(info, e)
		case token.GTR:
			if lenOfDegradedList(info, e.X) && isZeroLit(info, e.Y) {
				return cflags{degT: true}
			}
		}
	case *ast.CallExpr:
		return classifyName(calleeSimpleName(e))
	case *ast.SelectorExpr:
		return classifyName(e.Sel.Name)
	case *ast.Ident:
		return classifyName(e.Name)
	}
	return cflags{}
}

func classifyName(name string) cflags {
	switch {
	case degradedAtomNames[name]:
		return cflags{degT: true}
	case healthyAtomNames[name]:
		return cflags{degF: true}
	case sensitiveAtomNames[name]:
		return cflags{exF: true}
	}
	return cflags{}
}

// classifyCompare handles x ==/!= nil on errors and len(...) ==/!= 0 on
// the degraded-source lists.
func classifyCompare(info *types.Info, e *ast.BinaryExpr) cflags {
	x, y := e.X, e.Y
	if isNilIdent(x) {
		x, y = y, x
	}
	if isNilIdent(y) && isErrorType(typeOf(info, x)) {
		if e.Op == token.NEQ {
			return cflags{degT: true}
		}
		return cflags{degF: true}
	}
	if lenOfDegradedList(info, x) && isZeroLit(info, y) {
		if e.Op == token.NEQ {
			return cflags{degT: true}
		}
		return cflags{degF: true}
	}
	return cflags{}
}

// lenOfDegradedList matches len(v.MissingRequired()) / len(v.LowTrustRequired()).
func lenOfDegradedList(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "len" {
		return false
	}
	inner, ok := call.Args[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	name := calleeSimpleName(inner)
	return name == "MissingRequired" || name == "LowTrustRequired"
}

// calleeSimpleName returns the bare called name ("TrustedIdx" for
// h.trust.TrustedIdx(i)).
func calleeSimpleName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func isZeroLit(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	v, ok := constant.Int64Val(tv.Value)
	return ok && v == 0
}

// ---------------------------------------------------------------------------
// Degraded-path walk

// checkDegradedPaths builds the CFG, finds every degraded edge, and walks
// forward from it verifying each reachable return.
func (fc *fcCheck) checkDegradedPaths() {
	cfg := buildCFG(fc.fd.Body)
	for _, blk := range cfg.blocks {
		if blk.cond == nil || len(blk.succs) < 2 {
			continue
		}
		c := classifyCond(fc.pass.Info, blk.cond)
		visited := make(map[string]bool)
		if c.degT && !c.exT {
			fc.walk(blk.succs[0], map[*types.Var]bool{}, visited)
		}
		if c.degF && !c.exF {
			fc.walk(blk.succs[1], map[*types.Var]bool{}, visited)
		}
	}
}

// walk explores one degraded region. sanitized tracks variables that were
// reassigned to a provably-deny value on this path.
func (fc *fcCheck) walk(blk *cfgBlock, sanitized map[*types.Var]bool, visited map[string]bool) {
	key := visitKey(blk, sanitized)
	if visited[key] {
		return
	}
	visited[key] = true

	// Copy so sibling paths don't see this path's sanitizations.
	san := make(map[*types.Var]bool, len(sanitized))
	for v := range sanitized {
		san[v] = true
	}
	for _, s := range blk.stmts {
		fc.updateSanitized(s, san)
	}
	if blk.ret != nil {
		fc.checkReturn(blk.ret, san)
		return
	}
	if blk.cond != nil && len(blk.succs) >= 2 {
		c := classifyCond(fc.pass.Info, blk.cond)
		if !c.exT {
			fc.walk(blk.succs[0], san, visited)
		}
		if !c.exF {
			fc.walk(blk.succs[1], san, visited)
		}
		return
	}
	for _, succ := range blk.succs {
		fc.walk(succ, san, visited)
	}
}

func visitKey(blk *cfgBlock, sanitized map[*types.Var]bool) string {
	names := make([]string, 0, len(sanitized))
	for v := range sanitized {
		names = append(names, fmt.Sprintf("%s@%d", v.Name(), v.Pos()))
	}
	sort.Strings(names)
	return fmt.Sprintf("%p|%s", blk, strings.Join(names, ","))
}

// updateSanitized tracks per-path variable state: an assignment to a
// deny-safe value sanitizes the variable, any other assignment taints it.
func (fc *fcCheck) updateSanitized(s ast.Stmt, san map[*types.Var]bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for i, lhs := range s.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			v := fc.varOf(id)
			if v == nil {
				continue
			}
			var rhs ast.Expr
			if len(s.Rhs) == len(s.Lhs) {
				rhs = s.Rhs[i]
			}
			if rhs != nil && fc.denySafeExpr(rhs, san, 0) {
				san[v] = true
			} else {
				delete(san, v)
			}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				v := fc.varOf(name)
				if v == nil {
					continue
				}
				if len(vs.Values) == 0 {
					san[v] = true // zero value denies
				} else if i < len(vs.Values) && fc.denySafeExpr(vs.Values[i], san, 0) {
					san[v] = true
				} else {
					delete(san, v)
				}
			}
		}
	}
}

func (fc *fcCheck) varOf(id *ast.Ident) *types.Var {
	if v, ok := fc.pass.Info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := fc.pass.Info.Uses[id].(*types.Var)
	return v
}

// ---------------------------------------------------------------------------
// Return verification

// checkReturn verifies one return statement reached on a degraded path.
func (fc *fcCheck) checkReturn(ret *ast.ReturnStmt, san map[*types.Var]bool) {
	res := fc.sig.Results()
	if len(ret.Results) == 0 {
		if res.Len() > 0 {
			fc.reportf(ret.Pos(), "degraded path in fail-closed %s reaches a naked return; spell the deny result explicitly", fc.name)
		}
		return
	}
	if len(ret.Results) != res.Len() {
		// return f(...) forwarding a result tuple.
		if call, ok := ret.Results[0].(*ast.CallExpr); ok && fc.isFailClosedCall(call) {
			return
		}
		fc.reportf(ret.Pos(), "degraded path in fail-closed %s delegates to a function not annotated //iot:failclosed", fc.name)
		return
	}
	for i := 0; i < res.Len(); i++ {
		if isDecisionType(res.At(i).Type()) {
			fc.checkDecisionResult(ret.Results[i], san)
			return
		}
	}
	for i := 0; i < res.Len(); i++ {
		if isBoolType(res.At(i).Type()) {
			fc.checkBoolResult(ret.Results[i], san)
			return
		}
	}
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			if isNilIdent(ret.Results[i]) {
				fc.reportf(ret.Results[i].Pos(), "degraded path in fail-closed %s returns a nil error", fc.name)
			}
			return
		}
	}
}

// checkDecisionResult requires the returned decision value to be provably
// deny on this path.
func (fc *fcCheck) checkDecisionResult(e ast.Expr, san map[*types.Var]bool) {
	if fc.denySafeExpr(e, san, 0) {
		return
	}
	fc.reportf(e.Pos(), "degraded path in fail-closed %s may return an allow decision (%s is not provably deny)", fc.name, exprLabel(e))
}

func (fc *fcCheck) checkBoolResult(e ast.Expr, san map[*types.Var]bool) {
	if fc.denySafeExpr(e, san, 0) {
		return
	}
	fc.reportf(e.Pos(), "degraded path in fail-closed %s may return true (%s is not provably false)", fc.name, exprLabel(e))
}

// denySafeExpr reports whether e is provably a deny value: a false bool, a
// Decision composite without Allowed: true, a sanitized or always-deny
// variable, or a call into another fail-closed function.
func (fc *fcCheck) denySafeExpr(e ast.Expr, san map[*types.Var]bool, depth int) bool {
	if depth > 4 {
		return false
	}
	info := fc.pass.Info
	switch e := e.(type) {
	case *ast.ParenExpr:
		return fc.denySafeExpr(e.X, san, depth)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return fc.denySafeExpr(e.X, san, depth)
		}
	case *ast.CompositeLit:
		t := typeOf(info, e)
		if t == nil {
			return false
		}
		if isDecisionType(t) {
			return !compositeAllows(info, e, t)
		}
		return false
	case *ast.Ident:
		if e.Name == "nil" {
			return true // nil *Decision denies by absence
		}
		if tv, ok := info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Bool {
			return !constant.BoolVal(tv.Value)
		}
		v := fc.varOf(e)
		if v == nil {
			return false
		}
		if san[v] {
			return true
		}
		return fc.allAssignmentsDeny(v, depth)
	case *ast.CallExpr:
		return fc.isFailClosedCall(e)
	}
	return false
}

// compositeAllows reports whether the Decision literal sets Allowed to
// anything that could be true.
func compositeAllows(info *types.Info, cl *ast.CompositeLit, t types.Type) bool {
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return true
	}
	for i, el := range cl.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Allowed" {
				return !isFalseConst(info, kv.Value)
			}
			continue
		}
		// Positional literal: match the field index.
		if i < st.NumFields() && st.Field(i).Name() == "Allowed" {
			return !isFalseConst(info, el)
		}
	}
	return false // Allowed omitted: zero value denies
}

func isFalseConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil && tv.Value.Kind() == constant.Bool && !constant.BoolVal(tv.Value)
}

// allAssignmentsDeny is the flow-insensitive fallback for a returned
// variable the path never re-assigned: every assignment in the whole
// function must be deny-safe.
func (fc *fcCheck) allAssignmentsDeny(v *types.Var, depth int) bool {
	safe := true
	seen := false
	ast.Inspect(fc.fd.Body, func(n ast.Node) bool {
		if !safe {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || fc.varOf(id) != v {
					continue
				}
				seen = true
				if len(n.Rhs) != len(n.Lhs) {
					// Tuple assignment: only a fail-closed call is safe.
					call, ok := n.Rhs[0].(*ast.CallExpr)
					if !ok || !fc.isFailClosedCall(call) {
						safe = false
					}
					continue
				}
				if !fc.denySafeExpr(n.Rhs[i], nil, depth+1) {
					safe = false
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if fc.varOf(name) != v {
					continue
				}
				seen = true
				if len(n.Values) == 0 {
					continue // zero value denies
				}
				if i >= len(n.Values) || !fc.denySafeExpr(n.Values[i], nil, depth+1) {
					safe = false
				}
			}
		case *ast.RangeStmt:
			for _, lhs := range []ast.Expr{n.Key, n.Value} {
				if id, ok := lhs.(*ast.Ident); ok && fc.varOf(id) == v {
					safe = false
				}
			}
		}
		return true
	})
	return safe && seen
}

// isFailClosedCall reports whether the call's target is itself annotated
// //iot:failclosed — delegation keeps the contract compositional.
func (fc *fcCheck) isFailClosedCall(call *ast.CallExpr) bool {
	obj := funcObjIn(fc.pass.Info, call.Fun)
	if obj == nil {
		return false
	}
	pf := fc.pass.Prog.FuncOf(obj)
	return pf != nil && pf.FailClosed
}

// isDecisionType matches the authorization result shape: a struct carrying
// a bool field named Allowed.
func isDecisionType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "Allowed" {
			return isBoolType(st.Field(i).Type())
		}
	}
	return false
}

func isBoolType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

func exprLabel(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.CallExpr:
		if n := calleeSimpleName(e); n != "" {
			return n + "(...)"
		}
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return "value"
}

// ---------------------------------------------------------------------------
// Interned-reason discipline

// checkReasons verifies every Reason written anywhere in the function —
// composite-literal fields and field assignments — resolves to an interned
// string: a constant, or a package-level var.
func (fc *fcCheck) checkReasons() {
	info := fc.pass.Info
	ast.Inspect(fc.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			t := typeOf(info, n)
			if t == nil || !isDecisionType(t) {
				return true
			}
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Reason" {
					fc.checkReasonValue(kv.Value)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Reason" || i >= len(n.Rhs) {
					continue
				}
				if t := typeOf(info, sel.X); t != nil && isDecisionType(t) {
					fc.checkReasonValue(n.Rhs[i])
				}
			}
		}
		return true
	})
}

func (fc *fcCheck) checkReasonValue(v ast.Expr) {
	if how := fc.reasonUnsafe(v, 0); how != "" {
		fc.reportf(v.Pos(), "rejection reason in fail-closed %s must be an interned package-level string, not %s", fc.name, how)
	}
}

// reasonUnsafe returns why the expression mints a fresh reason string, or
// "" when it is interned: a constant, a package-level var, a struct-field
// read (reading a field never creates a string; the discipline travels
// with the write site), or a local whose every assignment is itself
// interned — the reason-selection pattern `reason := reasonA; ...;
// reason = reasonB`.
func (fc *fcCheck) reasonUnsafe(v ast.Expr, depth int) string {
	if depth > 4 {
		return "a value of unprovable origin"
	}
	info := fc.pass.Info
	switch v := v.(type) {
	case *ast.ParenExpr:
		return fc.reasonUnsafe(v.X, depth)
	case *ast.BasicLit:
		if v.Kind == token.STRING && (v.Value == `""` || v.Value == "``") {
			return "" // zero value, nothing to intern
		}
		return "a fresh string literal"
	case *ast.Ident:
		return fc.reasonObjUnsafe(v, depth)
	case *ast.SelectorExpr:
		return fc.reasonObjUnsafe(v.Sel, depth)
	case *ast.CallExpr:
		obj := funcObjIn(info, v.Fun)
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			return "a fmt." + obj.Name() + " call"
		}
		return "a function call"
	case *ast.BinaryExpr:
		return "string concatenation"
	}
	return "a computed value"
}

// reasonObjUnsafe resolves an identifier/selector to its object and judges
// its provenance.
func (fc *fcCheck) reasonObjUnsafe(id *ast.Ident, depth int) string {
	obj := fc.pass.Info.Uses[id]
	if obj == nil {
		obj = fc.pass.Info.Defs[id]
	}
	switch obj := obj.(type) {
	case *types.Const:
		return ""
	case *types.Var:
		if obj.IsField() {
			return ""
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return ""
		}
		if fc.localAlwaysInterned(obj, depth) {
			return ""
		}
		return "a locally computed string"
	}
	return "a computed value"
}

// localAlwaysInterned reports whether every assignment to the local var in
// this function is itself an interned reason.
func (fc *fcCheck) localAlwaysInterned(v *types.Var, depth int) bool {
	safe := true
	seen := false
	ast.Inspect(fc.fd.Body, func(n ast.Node) bool {
		if !safe {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || fc.varOf(id) != v {
					continue
				}
				seen = true
				if len(n.Rhs) != len(n.Lhs) || fc.reasonUnsafe(n.Rhs[i], depth+1) != "" {
					safe = false
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if fc.varOf(name) != v {
					continue
				}
				seen = true
				if len(n.Values) == 0 {
					continue
				}
				if i >= len(n.Values) || fc.reasonUnsafe(n.Values[i], depth+1) != "" {
					safe = false
				}
			}
		case *ast.RangeStmt:
			for _, lhs := range []ast.Expr{n.Key, n.Value} {
				if id, ok := lhs.(*ast.Ident); ok && fc.varOf(id) == v {
					safe = false
				}
			}
		}
		return true
	})
	return safe && seen
}
