package analysis

import (
	"go/ast"
	"go/token"
)

// This file is a compact intra-function control-flow graph: just enough
// structure for the failclosed analyzer to follow every path from a
// degraded branch to the returns it can reach, and for cowpub to answer
// "is this write reachable after that atomic publish". Blocks hold
// statements in source order; a block ends either in a two-way branch
// (cond + true/false successors), a multi-way branch (switch/select), a
// return, or a fall-through edge.

// cfgBlock is one straight-line run of statements.
type cfgBlock struct {
	stmts []ast.Stmt
	// cond, when non-nil, is the branch condition: succs[0] is the true
	// edge, succs[1] the false edge.
	cond ast.Expr
	// succs are the successor blocks. Without cond: zero (terminal) or
	// more fall-through/dispatch edges.
	succs []*cfgBlock
	// ret is set when the block ends in a return statement (also the last
	// element of stmts).
	ret *ast.ReturnStmt
}

// funcCFG is one function body's graph.
type funcCFG struct {
	entry  *cfgBlock
	blocks []*cfgBlock
}

type cfgBuilder struct {
	blocks []*cfgBlock
	// breaks/conts are the innermost-last break and continue targets.
	breaks []*cfgBlock
	conts  []*cfgBlock
	// labels maps a label name to its loop's break/continue targets.
	labels map[string][2]*cfgBlock
	// fallNext is the next case-clause block a fallthrough jumps to.
	fallNext *cfgBlock
	// pendingLabel/pendingMarker carry a label across to the next pushLoop
	// so labeled break/continue resolve to the labeled loop's targets.
	pendingLabel  string
	pendingMarker int
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{labels: make(map[string][2]*cfgBlock)}
	entry := b.new()
	end := b.stmtList(entry, body.List)
	_ = end
	return &funcCFG{entry: entry, blocks: b.blocks}
}

func (b *cfgBuilder) new() *cfgBlock {
	blk := &cfgBlock{}
	b.blocks = append(b.blocks, blk)
	return blk
}

// link adds an unconditional edge unless the source already terminated.
func link(from, to *cfgBlock) {
	if from == nil || from.ret != nil {
		return
	}
	from.succs = append(from.succs, to)
}

// stmtList threads the statements through cur, returning the block control
// falls out of (nil when every path terminated).
func (b *cfgBuilder) stmtList(cur *cfgBlock, stmts []ast.Stmt) *cfgBlock {
	for _, s := range stmts {
		cur = b.stmt(cur, s)
		if cur == nil {
			// Remaining statements are unreachable; still give them a
			// block so analyzers scanning all blocks see them.
			cur = b.new()
		}
	}
	return cur
}

// stmt adds one statement, returning the continuation block (nil when the
// statement terminates the path).
func (b *cfgBuilder) stmt(cur *cfgBlock, s ast.Stmt) *cfgBlock {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		cur.stmts = append(cur.stmts, s)
		cur.ret = s
		return nil

	case *ast.BlockStmt:
		return b.stmtList(cur, s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.stmts = append(cur.stmts, s.Init)
		}
		cur.cond = s.Cond
		then := b.new()
		after := b.new()
		if s.Else != nil {
			els := b.new()
			cur.succs = []*cfgBlock{then, els}
			link(b.stmt(els, s.Else), after)
		} else {
			cur.succs = []*cfgBlock{then, after}
		}
		link(b.stmtList(then, s.Body.List), after)
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur.stmts = append(cur.stmts, s.Init)
		}
		head := b.new()
		link(cur, head)
		body := b.new()
		post := b.new()
		after := b.new()
		head.cond = s.Cond // nil cond still branches: break exits exist
		head.succs = []*cfgBlock{body, after}
		b.pushLoop(after, post)
		end := b.stmtList(body, s.Body.List)
		b.popLoop()
		link(end, post)
		if s.Post != nil {
			post.stmts = append(post.stmts, s.Post)
		}
		link(post, head)
		return after

	case *ast.RangeStmt:
		head := b.new()
		link(cur, head)
		if s.Key != nil || s.Value != nil {
			head.stmts = append(head.stmts, s) // the range assignment itself
		}
		body := b.new()
		after := b.new()
		head.succs = []*cfgBlock{body, after}
		b.pushLoop(after, head)
		end := b.stmtList(body, s.Body.List)
		b.popLoop()
		link(end, head)
		return after

	case *ast.SwitchStmt:
		return b.switchStmt(cur, s.Init, s.Tag, s.Body.List)

	case *ast.TypeSwitchStmt:
		return b.switchStmt(cur, s.Init, nil, append([]ast.Stmt{s.Assign}[1:], s.Body.List...))

	case *ast.SelectStmt:
		after := b.new()
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.new()
			cur.succs = append(cur.succs, blk)
			if cc.Comm != nil {
				blk.stmts = append(blk.stmts, cc.Comm)
			}
			b.breaks = append(b.breaks, after)
			link(b.stmtList(blk, cc.Body), after)
			b.breaks = b.breaks[:len(b.breaks)-1]
		}
		if len(s.Body.List) == 0 {
			return nil // empty select blocks forever
		}
		return after

	case *ast.LabeledStmt:
		// Pre-register the label so labeled break/continue resolve; the
		// loop targets are patched by the loop handlers via b.labels.
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			after := b.stmtLabeledLoop(cur, s.Label.Name, inner)
			return after
		default:
			return b.stmt(cur, s.Stmt)
		}

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			cur.stmts = append(cur.stmts, s)
			link(cur, b.branchTarget(s, true))
			return nil
		case token.CONTINUE:
			cur.stmts = append(cur.stmts, s)
			link(cur, b.branchTarget(s, false))
			return nil
		case token.FALLTHROUGH:
			link(cur, b.fallNext)
			return nil
		default: // goto: treat as terminal (none in this tree)
			cur.stmts = append(cur.stmts, s)
			return nil
		}

	case *ast.ExprStmt:
		cur.stmts = append(cur.stmts, s)
		if isPanicCall(s.X) {
			return nil
		}
		return cur

	default:
		cur.stmts = append(cur.stmts, s)
		return cur
	}
}

// switchStmt lowers switch / type-switch bodies. clauses may be prefixed
// with the type-switch assign statement.
func (b *cfgBuilder) switchStmt(cur *cfgBlock, init ast.Stmt, tag ast.Expr, clauses []ast.Stmt) *cfgBlock {
	if init != nil {
		cur.stmts = append(cur.stmts, init)
	}
	after := b.new()
	var caseBlocks []*cfgBlock
	var caseClauses []*ast.CaseClause
	hasDefault := false
	for _, raw := range clauses {
		cc, ok := raw.(*ast.CaseClause)
		if !ok {
			cur.stmts = append(cur.stmts, raw) // type-switch assign
			continue
		}
		blk := b.new()
		cur.succs = append(cur.succs, blk)
		caseBlocks = append(caseBlocks, blk)
		caseClauses = append(caseClauses, cc)
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		cur.succs = append(cur.succs, after)
	}
	for i, cc := range caseClauses {
		savedFall := b.fallNext
		if i+1 < len(caseBlocks) {
			b.fallNext = caseBlocks[i+1]
		} else {
			b.fallNext = after
		}
		b.breaks = append(b.breaks, after)
		link(b.stmtList(caseBlocks[i], cc.Body), after)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.fallNext = savedFall
	}
	return after
}

// stmtLabeledLoop lowers a labeled for/range so labeled break/continue
// resolve to the right targets.
func (b *cfgBuilder) stmtLabeledLoop(cur *cfgBlock, label string, loop ast.Stmt) *cfgBlock {
	// Build the loop through the normal path, but record its targets
	// under the label first: the loop handlers push them innermost-last,
	// so capture by observing the stacks around the call.
	marker := len(b.breaks)
	var after *cfgBlock
	b.pendingLabel = label
	b.pendingMarker = marker
	after = b.stmt(cur, loop)
	delete(b.labels, label)
	b.pendingLabel = ""
	return after
}

// pushLoop enters a loop scope.
func (b *cfgBuilder) pushLoop(brk, cont *cfgBlock) {
	b.breaks = append(b.breaks, brk)
	b.conts = append(b.conts, cont)
	if b.pendingLabel != "" && len(b.breaks)-1 == b.pendingMarker {
		b.labels[b.pendingLabel] = [2]*cfgBlock{brk, cont}
		b.pendingLabel = ""
	}
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.conts = b.conts[:len(b.conts)-1]
}

// branchTarget resolves break/continue, labeled or not. An unresolvable
// target (break outside any loop — impossible in well-typed code) falls
// back to terminal by returning nil, which link ignores.
func (b *cfgBuilder) branchTarget(s *ast.BranchStmt, isBreak bool) *cfgBlock {
	if s.Label != nil {
		if t, ok := b.labels[s.Label.Name]; ok {
			if isBreak {
				return t[0]
			}
			return t[1]
		}
		return nil
	}
	if isBreak {
		if n := len(b.breaks); n > 0 {
			return b.breaks[n-1]
		}
		return nil
	}
	if n := len(b.conts); n > 0 {
		return b.conts[n-1]
	}
	return nil
}

// isPanicCall reports whether the expression is a direct call to the
// builtin panic — a terminating statement for path purposes.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic" && id.Obj == nil
}
