package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// failclosedTag marks a function on the authorization path whose degraded
// branches (error, missing context, low trust, sequence anomaly) must
// never reach a return carrying an allow decision, and whose rejection
// reasons must be interned package-level strings.
const failclosedTag = "//iot:failclosed"

// Program is the whole-run view the interprocedural analyzers consult: an
// index from a function's fully qualified name to its declaration, built
// over every package the engine loaded. Separate packages are type-checked
// against export data, so the same function is represented by distinct
// *types.Func objects on its defining side and its importing side — the
// index therefore keys by types.Func.FullName(), which both sides render
// identically.
type Program struct {
	fns map[string]*ProgFunc
	// hotCache memoizes hotcall's transitive cleanliness verdicts: the
	// reason a function is dirty, or "" when clean.
	hotCache map[*ProgFunc]string
}

// ProgFunc is one declared function or method with the package context
// needed to analyze its body.
type ProgFunc struct {
	Pkg  *Package
	Decl *ast.FuncDecl
	// Hotpath and FailClosed record the function's contract annotations.
	Hotpath    bool
	FailClosed bool
}

// NewProgram indexes every function declaration in the given packages.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		fns:      make(map[string]*ProgFunc),
		hotCache: make(map[*ProgFunc]string),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				p.fns[obj.FullName()] = &ProgFunc{
					Pkg:        pkg,
					Decl:       fd,
					Hotpath:    hasDirective(fd, hotpathTag),
					FailClosed: hasDirective(fd, failclosedTag),
				}
			}
		}
	}
	return p
}

// FuncOf resolves a *types.Func (from either a defining or an importing
// package's type info) to its declaration, or nil when the function's
// source is outside the loaded program (stdlib, export-data-only deps).
func (p *Program) FuncOf(obj *types.Func) *ProgFunc {
	if obj == nil {
		return nil
	}
	if o := obj.Origin(); o != nil {
		obj = o
	}
	return p.fns[obj.FullName()]
}

// hasDirective reports whether the function's doc comment carries the
// given //iot: directive as a whole comment line.
func hasDirective(fd *ast.FuncDecl, tag string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == tag || strings.HasPrefix(c.Text, tag+" ") {
			return true
		}
	}
	return false
}

// funcDisplayName renders a short human name for a declared function —
// "Authorize" for functions, "Framework.Authorize" for methods.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
