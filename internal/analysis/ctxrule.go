package analysis

import (
	"go/ast"
	"go/types"
)

// CtxRule enforces context hygiene everywhere: a context.Context parameter
// must come first in any signature (function, method, literal or
// interface method), a Context must never be stored in a struct field,
// and context.Background()/context.TODO() are forbidden outside cmd/
// binaries — library code receives its context from the caller so
// cancellation and deadlines actually propagate. Test files are outside
// every analyzer's scope.
var CtxRule = &Analyzer{
	Name: "ctxrule",
	Doc:  "context.Context first parameter only, never a struct field, no Background/TODO outside cmd/",
	Run:  runCtxRule,
}

func runCtxRule(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncType:
				checkCtxParams(pass, n)
			case *ast.StructType:
				checkCtxFields(pass, n)
			case *ast.Ident:
				checkCtxFresh(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCtxParams reports context.Context parameters at any position but
// the first.
func checkCtxParams(pass *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, field := range ft.Params.List {
		width := len(field.Names)
		if width == 0 {
			width = 1
		}
		if isContextType(pass, field.Type) && pos != 0 {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter")
		}
		pos += width
	}
}

// checkCtxFields reports struct fields of type context.Context; contexts
// are call-scoped, not object state.
func checkCtxFields(pass *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if isContextType(pass, field.Type) {
			pass.Reportf(field.Pos(), "context.Context stored in struct field: pass it per call instead")
		}
	}
}

// checkCtxFresh reports context.Background/TODO in library code. Binaries
// — anything under cmd/ and the example mains — are exempt: a process
// entry point is exactly where a root context is born.
func checkCtxFresh(pass *Pass, id *ast.Ident) {
	if inCmd(pass.Path) || pass.Pkg.Name() == "main" {
		return
	}
	obj, ok := pass.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	switch {
	case isPkgFunc(obj, "context", "Background"):
		pass.Reportf(id.Pos(), "context.Background in library code: accept a ctx from the caller")
	case isPkgFunc(obj, "context", "TODO"):
		pass.Reportf(id.Pos(), "context.TODO in library code: accept a ctx from the caller")
	}
}

// isContextType reports whether the type expression denotes
// context.Context.
func isContextType(pass *Pass, e ast.Expr) bool {
	t := typeOf(pass.Info, e)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
