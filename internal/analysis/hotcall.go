package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// HotCall is the interprocedural half of the hot-path discipline. hotalloc
// checks what an //iot:hotpath function does directly; hotcall checks what
// it reaches: every callee must itself be hotpath-clean — no fmt, no
// interface boxing, no closure, no string building, and no hidden map /
// slice / make / append / new allocation — propagated transitively through
// the typed call graph with a bounded depth. A callee that is itself
// annotated //iot:hotpath is skipped here (it is checked at its own
// declaration), and callees whose source is outside the loaded program
// (stdlib, export-data deps) are assumed clean. Dynamic dispatch through
// interfaces or function values is out of scope — the runtime
// AllocsPerRun gates remain the backstop there. hotcall also flags the
// allocation forms hotalloc leaves to it inside the annotated body itself:
// map/slice composite literals and the make/append/new builtins.
var HotCall = &Analyzer{
	Name: "hotcall",
	Doc:  "forbid calls to non-hotpath-clean functions and map/slice/make/append/new allocation in //iot:hotpath functions",
	Run:  runHotCall,
}

// maxHotDepth bounds the transitive scan. Verdicts are memoized per
// function, so the bound only matters on pathologically deep chains, where
// the scan conservatively assumes clean rather than walking forever.
const maxHotDepth = 16

func runHotCall(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkHotCalls(pass, fd)
		}
	}
	return nil
}

func checkHotCalls(pass *Pass, fd *ast.FuncDecl) {
	name := funcDisplayName(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // hotalloc owns the closure finding; its body is cold
		case *ast.CompositeLit:
			if why := compositeDirt(pass.Info, n); why != "" {
				pass.Reportf(n.Pos(), "%s allocates in hot path %s", why, name)
				return false
			}
		case *ast.CallExpr:
			checkHotCallee(pass, name, n)
		}
		return true
	})
}

// checkHotCallee classifies one call inside an annotated body: builtin
// allocators are flagged directly, resolvable callees are scanned
// transitively.
func checkHotCallee(pass *Pass, fn string, call *ast.CallExpr) {
	if b := builtinDirt(pass.Info, call); b != "" {
		pass.Reportf(call.Pos(), "%s allocates in hot path %s", b, fn)
		return
	}
	obj := pass.FuncObj(call.Fun)
	if obj == nil {
		return // conversion or dynamic call: hotalloc / runtime gates cover these
	}
	if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		return // hotalloc flags direct fmt calls
	}
	callee := pass.Prog.FuncOf(obj)
	if callee == nil || callee.Hotpath || callee.Decl.Body == nil {
		return
	}
	if why := pass.Prog.hotDirt(callee, 1); why != "" {
		pass.Reportf(call.Pos(), "hot path %s calls %s: not hotpath-clean (%s)", fn, shortFuncName(obj), why)
	}
}

// hotDirt returns why fn is not hotpath-clean ("" when it is), scanning
// its body and, transitively, every resolvable callee. Verdicts are
// memoized on the Program; recursion is broken by tentatively treating an
// in-progress function as clean.
func (p *Program) hotDirt(fn *ProgFunc, depth int) string {
	if depth > maxHotDepth {
		return ""
	}
	if why, ok := p.hotCache[fn]; ok {
		return why
	}
	p.hotCache[fn] = "" // cycle guard
	why := p.scanDirt(fn, depth)
	p.hotCache[fn] = why
	return why
}

// scanDirt walks one function body for the first hotpath violation.
func (p *Program) scanDirt(fn *ProgFunc, depth int) string {
	info := fn.Pkg.Info
	var why string
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			why = "declares a closure"
			return false
		case *ast.CompositeLit:
			if w := compositeDirt(info, n); w != "" {
				why = "builds a " + w
				return false
			}
		case *ast.BinaryExpr:
			if isHotConcat(info, n) {
				why = "concatenates strings"
				return false
			}
		case *ast.CallExpr:
			if w := p.callDirt(info, n, depth); w != "" {
				why = w
				return false
			}
		}
		return true
	})
	return why
}

// callDirt classifies one call expression inside a scanned (non-annotated)
// body.
func (p *Program) callDirt(info *types.Info, call *ast.CallExpr, depth int) string {
	if b := builtinDirt(info, call); b != "" {
		return b + " allocates"
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if isBoxing(tv.Type, argType(info, call.Args)) {
			return fmt.Sprintf("converts to %s", tv.Type)
		}
		return ""
	}
	obj := funcObjIn(info, call.Fun)
	if obj == nil {
		return ""
	}
	if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		return "calls fmt." + obj.Name()
	}
	if sig, ok := typeOf(info, call.Fun).(*types.Signature); ok {
		for i, arg := range call.Args {
			pt := paramTypeAt(sig, i, call.Ellipsis.IsValid())
			if pt != nil && isEmptyInterface(pt) && isBoxing(pt, typeOf(info, arg)) {
				return "boxes into interface{}"
			}
		}
	}
	callee := p.FuncOf(obj)
	if callee == nil || callee.Hotpath || callee.Decl.Body == nil {
		return ""
	}
	if w := p.hotDirt(callee, depth+1); w != "" {
		return fmt.Sprintf("calls %s: %s", shortFuncName(obj), w)
	}
	return ""
}

// compositeDirt names the composite-literal forms that always allocate.
// Struct and array literals are value-shaped and stay off the heap unless
// they escape, which the runtime gates catch; map and slice literals
// always allocate.
func compositeDirt(info *types.Info, cl *ast.CompositeLit) string {
	t := typeOf(info, cl)
	if t == nil {
		return ""
	}
	switch t.Underlying().(type) {
	case *types.Map:
		return "map literal"
	case *types.Slice:
		return "slice literal"
	}
	return ""
}

// builtinDirt names the allocating builtins.
func builtinDirt(info *types.Info, call *ast.CallExpr) string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := info.Uses[id].(*types.Builtin); !ok {
		return ""
	}
	switch id.Name {
	case "make", "append", "new":
		return id.Name
	}
	return ""
}

// shortFuncName renders "pkg.Func" or "Recv.Method" for messages.
func shortFuncName(obj *types.Func) string {
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + obj.Name()
		}
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}
