// Command app is the fixture binary: a root context and an unchecked
// fmt.Println are both legal outside internal/.
package main

import (
	"context"
	"fmt"

	"fixture/internal/svc"
)

func main() {
	ctx := context.Background()
	fmt.Println(svc.Ping(ctx))
}
