// Package obs mirrors the engine's metrics-registry shape so the fixture
// can seed a metricreg violation through a real internal/obs call.
package obs

// Registry registers fixture series.
type Registry struct{}

// NewCounter registers a counter and returns its series index.
func (r *Registry) NewCounter(name string) int {
	_ = name
	return 0
}
