// Package miio matches the driver's vendor-I/O allowlist: the raw sleep
// below must not surface as a finding.
package miio

import "time"

// Settle would violate sleepban anywhere else.
func Settle() { time.Sleep(time.Millisecond) }
