// Package hot seeds the fixture's hotalloc violation.
package hot

import "fmt"

// Render formats in an annotated hot path.
//
//iot:hotpath
func Render(n int) string { return fmt.Sprintf("%d", n) }

// Sum folds through a closure in an annotated hot path.
//
//iot:hotpath
func Sum(xs []int) int {
	add := func(a, b int) int { return a + b }
	total := 0
	for _, x := range xs {
		total = add(total, x)
	}
	return total
}
