// Package hot seeds the fixture's hotalloc violation.
package hot

import "fmt"

// Render formats in an annotated hot path.
//
//iot:hotpath
func Render(n int) string { return fmt.Sprintf("%d", n) }
