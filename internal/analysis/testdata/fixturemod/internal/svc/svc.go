// Package svc seeds the fixture's sleepban, errcheck and ctxrule
// violations, plus one suppression the driver must honor.
package svc

import (
	"context"
	"errors"
	"time"
)

// Ping is the clean path the fixture binary calls.
func Ping(ctx context.Context) string {
	_ = ctx
	return "pong"
}

// Wait seeds the sleepban violation.
func Wait() { time.Sleep(time.Millisecond) }

func touch() error { return errors.New("boom") }

// Fire seeds the errcheck violation.
func Fire() {
	touch()
}

// Root seeds the ctxrule violation.
func Root() context.Context { return context.Background() }

// Allowed exercises the suppression grammar end to end.
func Allowed() {
	//iot:allow sleepban fixture exercises suppression through the driver
	time.Sleep(time.Millisecond)
}

// Stale carries an //iot:allow that suppresses nothing, feeding the
// driver's -unused-allows audit mode.
func Stale() int {
	//iot:allow sleepban nothing sleeps on this line any more
	return 0
}
