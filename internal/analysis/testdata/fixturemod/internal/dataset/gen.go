// Package dataset sits in nodeterm's deterministic scope.
package dataset

import "time"

// Stamp seeds the fixture's nodeterm violation.
func Stamp() time.Time { return time.Now() }
