// Package flow seeds the fixture's flow-aware violations: one each for
// hotcall, failclosed, cowpub and metricreg.
package flow

import (
	"sync/atomic"

	"fixture/internal/obs"
)

// Decision mirrors the engine's decision shape for the failclosed rule.
type Decision struct {
	Allowed bool
	Reason  string
}

// buildIndex allocates freely; legal on its own, dirty for a hot path.
func buildIndex(keys []string) map[string]int {
	m := make(map[string]int, len(keys))
	for i, k := range keys {
		m[k] = i
	}
	return m
}

// Lookup seeds the hotcall violation: an annotated hot path calling an
// allocating helper.
//
//iot:hotpath
func Lookup(keys []string, k string) int {
	return buildIndex(keys)[k]
}

// Gate seeds the failclosed violation: the error branch falls through to
// an allow.
//
//iot:failclosed
func Gate(check func() error) (Decision, error) {
	err := check()
	if err != nil {
		return Decision{Allowed: true}, nil
	}
	return Decision{Allowed: false}, nil
}

// config is the published-value type for the cowpub rule.
type config struct{ limit int }

var current atomic.Pointer[config]

// Publish seeds the cowpub violation: mutating the value after Store.
func Publish(limit int) {
	c := &config{}
	current.Store(c)
	c.limit = limit
}

// Register seeds the metricreg violation: a series name outside the
// iotsid_* grammar.
func Register(r *obs.Registry) int {
	return r.NewCounter("fixture_requests")
}
