// Package fix seeds cowpub violations: mutating a value shared through
// an atomic.Pointer, on both sides of the publication — next to the
// sanctioned copy-on-write shapes.
package fix

import "sync/atomic"

type view struct {
	n    int
	tags []string
}

var current atomic.Pointer[view]

// PublishThenWrite mutates after Store.
func PublishThenWrite(n int) {
	v := &view{}
	current.Store(v)
	v.n = n // want "write to v after it was published via atomic.Pointer"
}

// WriteLoaded mutates a loaded snapshot readers may share.
func WriteLoaded(n int) {
	v := current.Load()
	v.n = n // want "write through v mutates a value published via atomic.Pointer"
}

// WriteLoadedField mutates deeper state behind a loaded pointer.
func WriteLoadedField(tag string) {
	v := current.Load()
	v.tags[0] = tag // want "write through v mutates a value published via atomic.Pointer"
}

// CopyFirst is the sanctioned pattern: copy, mutate the copy, re-publish.
func CopyFirst(n int) {
	old := current.Load()
	next := *old
	next.n = n
	current.Store(&next)
}

// PrepareThenPublish mutates before Store — legal.
func PrepareThenPublish(n int) {
	v := &view{}
	v.n = n
	current.Store(v)
}

// Waived exercises the suppression grammar.
func Waived(n int) {
	v := &view{}
	current.Store(v)
	v.n = n //iot:allow cowpub fixture exercises suppression
}

// Swapped: Swap's result is someone else's published copy.
func Swapped(n int) {
	old := current.Swap(&view{})
	old.n = n // want "write through old mutates a value published via atomic.Pointer"
}

// Aliased: one level of aliasing does not launder a loaded pointer.
func Aliased(n int) {
	v := current.Load()
	w := v
	w.n = n // want "write through w mutates a value published via atomic.Pointer"
}

// DerefWrite: assignment through the dereference is the same mutation.
func DerefWrite(v2 view) {
	v := current.Load()
	*v = v2 // want "write through v mutates a value published via atomic.Pointer"
}

// CASPublished: CompareAndSwap publishes its new-value argument.
func CASPublished(old *view, n int) {
	next := &view{}
	current.CompareAndSwap(old, next)
	next.n = n // want "write to next after it was published via atomic.Pointer"
}

// Rebound: rebinding the identifier itself is not a write through the
// published value (and republishing the rebound pointer is legal).
func Rebound() {
	v := current.Load()
	v = &view{}
	current.Store(v)
}
