// Package fix mirrors the obs registry shape (its import path sits under
// internal/obs, so the analyzer treats these as real registrations) and
// seeds metricreg violations: off-grammar and non-constant names, and
// registration/lookup inside annotated functions.
package fix

// Counter is a registered series handle.
type Counter struct{ n uint64 }

// Registry registers series.
type Registry struct{}

// NewCounter registers a counter.
func (r *Registry) NewCounter(name string) *Counter {
	_ = name
	return &Counter{}
}

// NewHistogram registers a histogram.
func (r *Registry) NewHistogram(name string) *Counter {
	_ = name
	return &Counter{}
}

// CounterVec is a labeled family.
type CounterVec struct{}

// With resolves one label combination.
func (v *CounterVec) With(label string) *Counter {
	_ = label
	return &Counter{}
}

const good = "iotsid_core_decisions_total"

func dynamicName() string { return "iotsid_x_total" }

// Setup registers series at construction time: the right place, but the
// names still have to obey the grammar.
func Setup(r *Registry) {
	r.NewCounter(good)
	r.NewCounter("core_decisions_total")  // want "does not match the iotsid_"
	r.NewCounter("iotsid_core_decisions") // want "must end in _total"
	r.NewHistogram("iotsid_core_latency") // want "must end in _seconds or _bytes"
	r.NewCounter(dynamicName())           // want "must be a compile-time constant string"
}

// Hot registers and looks up inside a hot path.
//
//iot:hotpath
func Hot(r *Registry, v *CounterVec) {
	r.NewCounter(good) // want "obs registration NewCounter inside Hot"
	v.With("home")     // want "obs vec lookup With inside Hot"
}

// Gate registers inside a fail-closed function.
//
//iot:failclosed
func Gate(r *Registry) bool {
	r.NewCounter(good) // want "obs registration NewCounter inside Gate"
	return false
}

// NewGauge registers a gauge (no suffix requirement).
func (r *Registry) NewGauge(name string) *Counter {
	_ = name
	return &Counter{}
}

// SetupCold: gauges and vec lookups are legal outside annotated
// functions when the names obey the grammar.
func SetupCold(r *Registry, v *CounterVec) {
	r.NewGauge("iotsid_fleet_homes")
	v.With("home")
}
