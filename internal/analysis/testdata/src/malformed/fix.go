// Package fix carries //iot:allow comments that violate the suppression
// grammar: a missing reason and a missing analyzer. Both must surface as
// iotlint diagnostics, and neither suppresses the finding below it.
package fix

import "time"

func reasonless() {
	//iot:allow sleepban
	time.Sleep(time.Millisecond)
}

func bare() {
	//iot:allow
	time.Sleep(time.Millisecond)
}

func wellFormed() {
	//iot:allow sleepban a reason that satisfies the grammar
	time.Sleep(time.Millisecond)
}
