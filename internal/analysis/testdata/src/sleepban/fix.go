// Package fix seeds sleepban violations; the harness checks it under an
// internal/ import path.
package fix

import "time"

func waitabit() {
	time.Sleep(time.Millisecond) // want "raw time.Sleep"
}

// sleeper stores the raw sleep, which smuggles it past a call-site-only
// check.
var sleeper = time.Sleep // want "raw time.Sleep"

func allowed() {
	//iot:allow sleepban fixture demonstrates suppression
	time.Sleep(time.Millisecond)
}
