// Package fix carries violations of every scoped analyzer but no want
// comments: checked under a non-internal, non-deterministic import path,
// all of them must stay silent.
package fix

import (
	"errors"
	"math/rand"
	"time"
)

func fail() error { return errors.New("boom") }

func outOfScope() time.Time {
	time.Sleep(time.Millisecond)
	fail()
	_ = rand.Intn(6)
	return time.Now()
}
