// Package fix seeds ctxrule violations: a stored context, misplaced
// parameters and fresh root contexts in library code.
package fix

import "context"

type store struct {
	name string
	ctx  context.Context // want "context.Context stored in struct field"
}

func bad(name string, ctx context.Context) error { // want "context.Context must be the first parameter"
	_ = name
	_ = ctx
	return nil
}

func good(ctx context.Context, name string) error {
	_ = ctx
	_ = name
	return nil
}

type api interface {
	Fetch(id int, ctx context.Context) error // want "context.Context must be the first parameter"
}

var _ = func(n int, ctx context.Context) { _ = n; _ = ctx } // want "context.Context must be the first parameter"

func fresh() context.Context {
	return context.Background() // want "context.Background in library code"
}

func todo() context.Context {
	return context.TODO() // want "context.TODO in library code"
}

func allowed() context.Context {
	//iot:allow ctxrule fixture demonstrates suppression
	return context.Background()
}

var _ = store{}
var _ = bad
var _ = good
var _ api
