// Package fix seeds hotcall violations: allocation reached through the
// call graph rather than performed directly, plus the builtin/composite
// forms hotalloc leaves to hotcall inside annotated bodies.
package fix

import "fmt"

// index allocates a map — legal on its own, dirty for a hot path.
func index(keys []string) map[string]int {
	m := make(map[string]int, len(keys))
	for i, k := range keys {
		m[k] = i
	}
	return m
}

// render reaches fmt through one more hop.
func render(n int) string { return describe(n) }

func describe(n int) string { return fmt.Sprintf("%d", n) }

// leaf is hotpath-clean: arithmetic only.
func leaf(a, b int) int { return a + b }

//iot:hotpath
func Hot(keys []string, k string) int {
	total := index(keys)[k]   // want "hot path Hot calls fix.index: not hotpath-clean \\(make allocates\\)"
	_ = render(total)         // want "hot path Hot calls fix.render: not hotpath-clean \\(calls fix.describe: calls fmt.Sprintf\\)"
	xs := make([]int, 0, 4)   // want "make allocates in hot path Hot"
	xs = append(xs, total)    // want "append allocates in hot path Hot"
	m := map[string]int{k: 1} // want "map literal allocates in hot path Hot"
	_ = m
	return leaf(total, len(xs))
}

// HotNested is annotated itself, so calling it from another hot path is
// legal — it is judged at its own declaration, and leaf is clean.
//
//iot:hotpath
func HotNested(a, b int) int { return leaf(a, b) }

//iot:hotpath
func HotCaller(a, b int) int { return HotNested(a, b) }

//iot:hotpath
func HotAllowed(keys []string, k string) int {
	//iot:allow hotcall fixture exercises suppression
	return index(keys)[k]
}

// Each helper carries exactly one of the dirt varieties the transitive
// scan classifies.

func boxes(n int) any { return any(n) }

func sink(v any) {}

func boxArg(n int) { sink(n) }

func closes() func() int {
	f := func() int { return 1 }
	return f
}

func concats(a, b string) string { return a + b }

func sliced() []int { return []int{1, 2} }

// box carries a dirty method so the diagnostic names a receiver type.
type box struct{}

func (box) dirty() []int { return []int{1} }

//iot:hotpath
func HotMethod(b box) {
	_ = b.dirty() // want "calls box.dirty: not hotpath-clean \\(builds a slice literal\\)"
}

//iot:hotpath
func HotVarieties(a, b string, n int) {
	_ = boxes(n)      // want "calls fix.boxes: not hotpath-clean \\(converts to"
	boxArg(n)         // want "calls fix.boxArg: not hotpath-clean \\(boxes into interface"
	_ = closes()      // want "calls fix.closes: not hotpath-clean \\(declares a closure\\)"
	_ = concats(a, b) // want "calls fix.concats: not hotpath-clean \\(concatenates strings\\)"
	_ = sliced()      // want "calls fix.sliced: not hotpath-clean \\(builds a slice literal\\)"
}
