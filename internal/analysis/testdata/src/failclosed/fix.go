// Package fix seeds failclosed violations: degraded branches that escape
// to an allow, a success tuple with no error, delegation to an
// unannotated helper, and a reason string minted on the fly — next to the
// sanctioned shapes (zero-value locals, interned reason selection,
// fail-closed delegation).
package fix

import (
	"errors"
	"fmt"
)

// Decision mirrors the engine's decision shape.
type Decision struct {
	Allowed     bool
	Reason      string
	Explanation string
}

const (
	reasonDegraded = "fix: context degraded, fail closed"
	reasonStale    = "fix: context stale, fail closed"
)

var errDegraded = errors.New("fix: degraded")

// GateAllow: the error branch escapes to an allow.
//
//iot:failclosed
func GateAllow(check func() error) (Decision, error) {
	if err := check(); err != nil {
		return Decision{Allowed: true}, nil // want "may return an allow decision"
	}
	return Decision{Allowed: true}, nil
}

// TrustGate: the low-trust edge may answer true.
//
//iot:failclosed
func TrustGate(lowTrust bool) bool {
	if lowTrust {
		return lowTrust // want "may return true"
	}
	return true
}

// Collect: a degraded branch reports success with a nil error.
//
//iot:failclosed
func Collect(missing bool) ([]byte, error) {
	if missing {
		return nil, nil // want "returns a nil error"
	}
	return []byte{1}, nil
}

func helper() (Decision, error) { return Decision{}, nil }

// Delegate forwards the degraded tuple to an unannotated helper.
//
//iot:failclosed
func Delegate(anomalous bool) (Decision, error) {
	if anomalous {
		return helper() // want "delegates to a function not annotated"
	}
	return Decision{}, nil
}

// Reasons mints a rejection reason on the fly.
//
//iot:failclosed
func Reasons(missing bool, detail string) Decision {
	if missing {
		return Decision{
			Allowed: false,
			Reason:  "degraded: " + detail, // want "interned package-level string, not string concatenation"
		}
	}
	return Decision{Allowed: false, Reason: reasonDegraded}
}

// deny is the annotated helper DelegateOK forwards to.
//
//iot:failclosed
func deny() (Decision, error) {
	return Decision{Allowed: false, Reason: reasonDegraded}, errDegraded
}

// DelegateOK: forwarding to a fail-closed helper is compositional.
//
//iot:failclosed
func DelegateOK(anomalous bool) (Decision, error) {
	if anomalous {
		return deny()
	}
	return Decision{}, nil
}

// Zeroed returns a zero-value local: provably deny.
//
//iot:failclosed
func Zeroed(missing bool) (Decision, error) {
	if missing {
		var dec Decision
		return dec, errDegraded
	}
	return Decision{Allowed: true}, nil
}

// Selector chooses among interned reasons through a local.
//
//iot:failclosed
func Selector(missing bool) Decision {
	reason := reasonDegraded
	if missing {
		reason = reasonStale
		return Decision{Allowed: false, Reason: reason}
	}
	return Decision{Allowed: false, Reason: reason}
}

// Waived exercises the suppression grammar.
//
//iot:failclosed
func Waived(missing bool) (Decision, error) {
	if missing {
		//iot:allow failclosed fixture exercises suppression
		return Decision{Allowed: true}, nil
	}
	return Decision{}, nil
}

// The condition vocabulary: provenance lists, verdict flags, trust
// sources and the sensitivity gate.

type prov struct{}

func (prov) MissingRequired() []string  { return nil }
func (prov) LowTrustRequired() []string { return nil }

type verdict struct{ Anomalous bool }

type source struct{}

func (source) Trusted(name string) bool { return true }

type inst struct{}

func (inst) IsSensitive() bool { return true }

// MissingGate: a non-empty missing-required list is a degraded edge.
//
//iot:failclosed
func MissingGate(p prov) (Decision, error) {
	if len(p.MissingRequired()) > 0 {
		return Decision{Allowed: true}, nil // want "may return an allow decision"
	}
	return Decision{}, nil
}

// AnomalyGate: selector atom, OR over two degraded atoms.
//
//iot:failclosed
func AnomalyGate(v verdict, lowTrust bool) (Decision, error) {
	if v.Anomalous || lowTrust {
		return Decision{Allowed: true}, nil // want "may return an allow decision"
	}
	return Decision{}, nil
}

// NotTrusted: negating a healthy atom flips the degraded state onto the
// true edge.
//
//iot:failclosed
func NotTrusted(s source) bool {
	if !s.Trusted("x") {
		return true // want "may return true"
	}
	return false
}

// ExemptGate: a degraded state proven non-sensitive may fail open — the
// contract only covers sensitive instructions.
//
//iot:failclosed
func ExemptGate(in inst, missing bool) (Decision, error) {
	if missing && !in.IsSensitive() {
		return Decision{Allowed: true}, nil
	}
	if missing {
		return Decision{}, errDegraded
	}
	return Decision{Allowed: true}, nil
}

// EqNilGate: err == nil puts the degraded state on the false edge.
//
//iot:failclosed
func EqNilGate(check func() error) (Decision, error) {
	if err := check(); err == nil {
		return Decision{Allowed: true}, nil
	} else {
		return Decision{}, err
	}
}

// Accumulated: every assignment to the returned local denies, so the
// degraded return is provably deny even though the first assignment
// happened before the branch.
//
//iot:failclosed
func Accumulated(missing bool) (Decision, error) {
	dec := Decision{Allowed: false, Reason: reasonDegraded}
	if missing {
		dec = Decision{Reason: reasonStale}
		return dec, errDegraded
	}
	return dec, nil
}

// LiteralReason mints the reason inline.
//
//iot:failclosed
func LiteralReason(missing bool) Decision {
	if missing {
		return Decision{Allowed: false, Reason: "made up on the spot"} // want "not a fresh string literal"
	}
	return Decision{Allowed: false, Reason: reasonDegraded}
}

// AssignedReason covers the field-assignment form with an unprovable
// local.
//
//iot:failclosed
func AssignedReason(missing bool, detail string) Decision {
	dec := Decision{Allowed: false}
	dec.Reason = detail // want "not a locally computed string"
	if missing {
		return dec
	}
	return dec
}

// FmtReason names the offending fmt helper.
//
//iot:failclosed
func FmtReason(missing bool, op string) Decision {
	if missing {
		return Decision{Allowed: false, Reason: fmt.Sprintf("deny %s", op)} // want "not a fmt.Sprintf call"
	}
	return Decision{Allowed: false, Reason: reasonDegraded}
}

func pick() string { return "x" }

// CallReason: an opaque call may mint; a parenthesized constant may not.
//
//iot:failclosed
func CallReason(missing bool) Decision {
	if missing {
		return Decision{Allowed: false, Reason: pick()} // want "not a function call"
	}
	return Decision{Allowed: false, Reason: (reasonDegraded)}
}

func mk() Decision { return Decision{} }

// CallResult: a call into an unannotated constructor is not provably
// deny.
//
//iot:failclosed
func CallResult(missing bool) (Decision, error) {
	if missing {
		return mk(), errDegraded // want "may return an allow decision"
	}
	return Decision{}, nil
}

// NeqZero: the != 0 spelling of the list check.
//
//iot:failclosed
func NeqZero(p prov) (Decision, error) {
	if len(p.LowTrustRequired()) != 0 {
		return Decision{Allowed: true}, nil // want "may return an allow decision"
	}
	return Decision{}, nil
}

// BoolDeny: a constant false answer on the degraded edge is safe.
//
//iot:failclosed
func BoolDeny(missing bool) bool {
	if missing {
		return false
	}
	return true
}

// Naked: named results hide what the degraded path answers.
//
//iot:failclosed
func Naked(missing bool) (dec Decision, err error) {
	if missing {
		return // want "reaches a naked return"
	}
	return Decision{}, nil
}

// Nested: the walk follows branches and loops beyond the degraded edge.
//
//iot:failclosed
func Nested(missing, extra bool) (Decision, error) {
	if missing {
		if extra {
			return Decision{Allowed: true}, nil // want "may return an allow decision"
		}
		for i := 0; i < 2; i++ {
			_ = i
		}
		return Decision{}, errDegraded
	}
	return Decision{}, nil
}
