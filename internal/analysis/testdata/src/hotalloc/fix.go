// Package fix seeds hotalloc violations inside annotated functions and
// proves unannotated functions stay out of scope.
package fix

import "fmt"

//iot:hotpath
func Hot(op string, n int) string {
	s := fmt.Sprintf("%s:%d", op, n) // want "fmt.Sprintf allocates in hot path Hot"
	s = s + op                       // want "string concatenation allocates in hot path Hot"
	sink(n)                          // want "boxes int into interface"
	_ = any(n)                       // want "conversion to .* allocates in hot path Hot"
	return s
}

//iot:hotpath
func HotClosure(xs []int) int {
	total := 0
	visit := func(x int) { total += x } // want "closure allocates in hot path HotClosure"
	for _, x := range xs {
		visit(x)
	}
	return total
}

func sink(v any) {}

// HotOK allocates nothing: pointer-shaped values cross into interfaces
// without boxing, and constant concatenation folds at compile time.
//
//iot:hotpath
func HotOK(xs []int) int {
	const greeting = "hello" + " world"
	total := 0
	for _, x := range xs {
		total += x
	}
	sink(&total)
	return total
}

//iot:hotpath
func HotAllowed(op string) string {
	//iot:allow hotalloc error path in fixture, demonstrates suppression
	return fmt.Sprintf("%s!", op)
}

// Cold is unannotated, so the same calls are legal here.
func Cold(op string) string {
	return fmt.Sprintf("%s!", op)
}
