// Package fix seeds errcheck violations and exercises every exclusion:
// blank assignment, infallible writers and fmt.Fprint* into them.
package fix

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"strings"
)

func fail() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

func clean() int { return 1 }

func drop() {
	fail()    // want "unchecked error from fail"
	pair()    // want "unchecked error from pair"
	go fail() // want "dropped error from go statement"
	clean()   // no error result: no diagnostic
	_ = fail()
	if err := fail(); err != nil {
		_ = err
	}
	defer fail() // want "dropped error from deferred call"
}

func builders() string {
	var b strings.Builder
	var buf bytes.Buffer
	h := sha256.New()
	b.WriteString("ok")
	buf.WriteByte('x')
	h.Write([]byte("ok"))
	fmt.Fprintf(&b, "%d", 1)
	fmt.Fprintln(&buf, "x")
	return b.String() + buf.String()
}

func allowed() {
	//iot:allow errcheck fixture demonstrates suppression
	fail()
}

// The http.Response shape: Close hangs off a field, two selectors deep.
type body struct{}

func (body) Close() error { return errors.New("boom") }

type response struct{ Body body }

func fetch() response { return response{} }

func request() {
	resp := fetch()
	defer resp.Body.Close() // want "dropped error from deferred call to resp.Body.Close"
	other := fetch()
	defer func() { _ = other.Body.Close() }() // sanctioned wrapped form
}

func getf() func() error { return fail }

func indirect() {
	getf()() // want "unchecked error from call"
}
