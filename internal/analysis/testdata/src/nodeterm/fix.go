// Package fix seeds nodeterm violations; the harness checks it under a
// deterministic-scope import path.
package fix

import (
	"math/rand"
	"time"
)

func clock() time.Time {
	return time.Now() // want "time.Now in deterministic package"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock"
}

func draw() int {
	return rand.Intn(6) // want "global math/rand.Intn"
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand.Shuffle"
}

// defaultClock stores the wall clock, which is as nondeterministic as
// calling it.
var defaultClock = time.Now // want "time.Now in deterministic package"

// seeded is the sanctioned pattern: a constructor-built *rand.Rand.
func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

func allowed() time.Time {
	//iot:allow nodeterm fixture demonstrates a standalone suppression
	return time.Now()
}

func allowedTrailing() int {
	return rand.Int() //iot:allow nodeterm fixture demonstrates a trailing suppression
}
