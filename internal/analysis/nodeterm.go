package analysis

import (
	"go/ast"
	"go/types"
)

// NoDeterm forbids wall-clock and global-rand dependencies in the
// deterministic packages (DESIGN §5): time.Now, time.Since (which reads
// the wall clock implicitly) and the top-level math/rand convenience
// functions that draw from the shared global source. Seeded *rand.Rand
// values stay legal — they are exactly how those packages are supposed to
// get randomness — as do the rand.New/NewSource constructors that build
// them. Both references and calls are flagged: storing time.Now into a
// clock field is as nondeterministic as calling it.
var NoDeterm = &Analyzer{
	Name: "nodeterm",
	Doc:  "forbid time.Now/time.Since and global math/rand functions in deterministic packages",
	Run:  runNoDeterm,
}

// globalRandBanned is the denylist of math/rand (and math/rand/v2)
// package-level functions that consult the process-global source.
// Constructors (New, NewSource, NewZipf, NewPCG, NewChaCha8) are not
// listed: they are the sanctioned path to seeded determinism.
var globalRandBanned = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint": true, "Uint32": true, "Uint32N": true, "Uint64": true,
	"Uint64N": true, "UintN": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Seed": true, "Read": true, "Text": true,
}

func runNoDeterm(pass *Pass) error {
	if !inDeterministicScope(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := pass.Info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			switch {
			case isPkgFunc(obj, "time", "Now"):
				pass.Reportf(id.Pos(), "time.Now in deterministic package %s: inject a clock instead", pass.Path)
			case isPkgFunc(obj, "time", "Since"):
				pass.Reportf(id.Pos(), "time.Since reads the wall clock; deterministic package %s must difference injected times", pass.Path)
			case isGlobalRand(obj):
				pass.Reportf(id.Pos(), "global math/rand.%s in deterministic package %s: use a seeded *rand.Rand", obj.Name(), pass.Path)
			}
			return true
		})
	}
	return nil
}

// isGlobalRand reports whether obj is a banned package-level function of
// math/rand or math/rand/v2.
func isGlobalRand(obj *types.Func) bool {
	if obj.Pkg() == nil || !globalRandBanned[obj.Name()] {
		return false
	}
	p := obj.Pkg().Path()
	if p != "math/rand" && p != "math/rand/v2" {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
