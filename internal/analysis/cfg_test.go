package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFor parses a single function body (no type information needed —
// the CFG is purely syntactic) and builds its graph.
func buildFor(t *testing.T, body string) *funcCFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return buildCFG(f.Decls[0].(*ast.FuncDecl).Body)
}

// reachableRets counts return statements reachable from the entry block.
func reachableRets(g *funcCFG) int {
	seen := map[*cfgBlock]bool{}
	rets := 0
	var visit func(*cfgBlock)
	visit = func(b *cfgBlock) {
		if seen[b] {
			return
		}
		seen[b] = true
		if b.ret != nil {
			rets++
		}
		for _, s := range b.succs {
			visit(s)
		}
	}
	visit(g.entry)
	return rets
}

// totalRets counts return statements across every block, reachable or not.
func totalRets(g *funcCFG) int {
	rets := 0
	for _, b := range g.blocks {
		if b.ret != nil {
			rets++
		}
	}
	return rets
}

// TestCFGIfElse: both arms return; the join block exists but holds no
// return.
func TestCFGIfElse(t *testing.T) {
	g := buildFor(t, `
	if true {
		return
	} else {
		return
	}`)
	if g.entry.cond == nil || len(g.entry.succs) != 2 {
		t.Fatalf("if entry: cond=%v succs=%d", g.entry.cond, len(g.entry.succs))
	}
	if got := reachableRets(g); got != 2 {
		t.Errorf("reachable returns = %d, want 2", got)
	}
}

// TestCFGSwitchFallthrough: a fallthrough chains case 1 into case 2; with
// a default that returns, the statement after the switch is unreachable.
func TestCFGSwitchFallthrough(t *testing.T) {
	g := buildFor(t, `
	switch n := 1; n {
	case 1:
		fallthrough
	case 2:
		return
	default:
		return
	}
	return`)
	if got := reachableRets(g); got != 2 {
		t.Errorf("reachable returns = %d, want 2 (case 2 via fallthrough, default)", got)
	}
	if got := totalRets(g); got != 3 {
		t.Errorf("total returns = %d, want 3 (the post-switch return is dead)", got)
	}
}

// TestCFGSwitchNoDefault: without a default the dispatch block keeps a
// fall-through edge past every case.
func TestCFGSwitchNoDefault(t *testing.T) {
	g := buildFor(t, `
	switch 1 {
	case 1:
		return
	}
	return`)
	if got := reachableRets(g); got != 2 {
		t.Errorf("reachable returns = %d, want 2", got)
	}
}

// TestCFGTypeSwitch: clauses dispatch like a value switch.
func TestCFGTypeSwitch(t *testing.T) {
	g := buildFor(t, `
	var v interface{}
	switch v.(type) {
	case int:
		return
	default:
		return
	}`)
	if got := reachableRets(g); got != 2 {
		t.Errorf("reachable returns = %d, want 2", got)
	}
}

// TestCFGLabeledLoops: labeled continue and labeled break resolve to the
// outer loop's targets, keeping the final return reachable.
func TestCFGLabeledLoops(t *testing.T) {
	g := buildFor(t, `
outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if j == i {
				continue outer
			}
			break outer
		}
	}
	return`)
	if got := reachableRets(g); got != 1 {
		t.Errorf("reachable returns = %d, want 1", got)
	}
}

// TestCFGRangeBreakContinue: unlabeled break/continue in a range loop.
func TestCFGRangeBreakContinue(t *testing.T) {
	g := buildFor(t, `
	xs := []int{1}
	for _, x := range xs {
		if x > 0 {
			continue
		}
		break
	}
	return`)
	if got := reachableRets(g); got != 1 {
		t.Errorf("reachable returns = %d, want 1", got)
	}
}

// TestCFGSelect: each comm clause is a dispatch edge; an empty select
// blocks forever, so everything after it is dead.
func TestCFGSelect(t *testing.T) {
	g := buildFor(t, `
	ch := make(chan int)
	select {
	case <-ch:
		return
	case v := <-ch:
		_ = v
	}
	return`)
	if got := reachableRets(g); got != 2 {
		t.Errorf("reachable returns = %d, want 2", got)
	}

	g = buildFor(t, `
	select {}
	return`)
	if got := reachableRets(g); got != 0 {
		t.Errorf("reachable returns after empty select = %d, want 0", got)
	}
	if got := totalRets(g); got != 1 {
		t.Errorf("total returns = %d, want 1", got)
	}
}

// TestCFGPanicAndGoto: panic terminates a path; goto is conservatively
// terminal, so the labeled return below it is dead.
func TestCFGPanicAndGoto(t *testing.T) {
	g := buildFor(t, `
	if true {
		panic("x")
	}
	goto done
done:
	return`)
	if got := reachableRets(g); got != 0 {
		t.Errorf("reachable returns = %d, want 0", got)
	}
	if got := totalRets(g); got != 1 {
		t.Errorf("total returns = %d, want 1", got)
	}
}

// TestCFGInfiniteFor: for {} with no break never reaches the after block,
// but break gets there.
func TestCFGInfiniteFor(t *testing.T) {
	g := buildFor(t, `
	for {
		break
	}
	return`)
	if got := reachableRets(g); got != 1 {
		t.Errorf("reachable returns = %d, want 1", got)
	}
}
