package analysis

// All returns the full analyzer suite in stable (alphabetical) order.
func All() []*Analyzer {
	return []*Analyzer{CowPub, CtxRule, ErrCheck, FailClosed, HotAlloc, HotCall, MetricReg, NoDeterm, SleepBan}
}

// ByName resolves one analyzer, or nil when unknown.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
