package analysis

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// loadSrc writes one source file into a temp dir and loads it as a
// package under the given synthetic import path.
func loadSrc(t *testing.T, src, importPath string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fix.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, importPath)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// TestMalformedAllow: a reason-less or analyzer-less //iot:allow is itself
// a diagnostic and suppresses nothing; a well-formed one suppresses the
// line below.
func TestMalformedAllow(t *testing.T) {
	pkg, err := LoadDir("testdata/src/malformed", "iotsid/internal/svc/fix")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunPackage(pkg, []*Analyzer{SleepBan})
	if err != nil {
		t.Fatal(err)
	}
	active, suppressed, _, _ := splitSuppressed(pkg, diags, nil)

	var malformed, sleeps int
	for _, d := range active {
		switch d.Analyzer {
		case "iotlint":
			malformed++
			if !strings.Contains(d.Message, "malformed //iot:allow") {
				t.Errorf("unexpected iotlint message: %s", d.Message)
			}
		case "sleepban":
			sleeps++
		}
	}
	if malformed != 2 {
		t.Errorf("want 2 malformed-allow diagnostics, got %d", malformed)
	}
	if sleeps != 2 {
		t.Errorf("want 2 active sleepban findings under malformed allows, got %d", sleeps)
	}
	if len(suppressed) != 1 || suppressed[0].Analyzer != "sleepban" {
		t.Errorf("want exactly the well-formed allow to suppress one finding, got %v", suppressed)
	}
}

// TestRunFixtureModule drives the full engine (go list, type-check,
// suppression, allowlist) over the fixture module.
func TestRunFixtureModule(t *testing.T) {
	res, err := Run(Config{
		Dir:       "testdata/fixturemod",
		Allowlist: DefaultAllowlist(),
	})
	if err != nil {
		t.Fatal(err)
	}
	perAnalyzer := map[string]int{}
	for _, d := range res.Diagnostics {
		perAnalyzer[d.Analyzer]++
	}
	for _, a := range All() {
		want := 1
		if a.Name == "hotalloc" {
			want = 2 // the fixture seeds both a fmt call and a closure
		}
		if perAnalyzer[a.Name] != want {
			t.Errorf("analyzer %s: want exactly %d fixture findings, got %d", a.Name, want, perAnalyzer[a.Name])
		}
	}
	if len(res.Suppressed) != 1 || res.Suppressed[0].Analyzer != "sleepban" {
		t.Errorf("want one suppressed sleepban finding, got %v", res.Suppressed)
	}
	if len(res.Allowlisted) != 1 || res.Allowlisted[0].File != "internal/miio/io.go" {
		t.Errorf("want one allowlisted miio finding, got %v", res.Allowlisted)
	}
	for i := 1; i < len(res.Diagnostics); i++ {
		if res.Diagnostics[i].less(res.Diagnostics[i-1]) {
			t.Errorf("diagnostics out of order at %d: %v after %v", i, res.Diagnostics[i], res.Diagnostics[i-1])
		}
	}
}

// TestRunRepeatable: two engine runs over the same tree render
// byte-identical text and JSON.
func TestRunRepeatable(t *testing.T) {
	render := func() (string, string) {
		res, err := Run(Config{Dir: "testdata/fixturemod", Allowlist: DefaultAllowlist()})
		if err != nil {
			t.Fatal(err)
		}
		var txt, js bytes.Buffer
		if err := WriteText(&txt, res.Diagnostics); err != nil {
			t.Fatal(err)
		}
		if err := WriteJSON(&js, res.Diagnostics); err != nil {
			t.Fatal(err)
		}
		return txt.String(), js.String()
	}
	t1, j1 := render()
	t2, j2 := render()
	if t1 != t2 {
		t.Errorf("text output drifted between runs:\n%s\nvs\n%s", t1, t2)
	}
	if j1 != j2 {
		t.Errorf("JSON output drifted between runs:\n%s\nvs\n%s", j1, j2)
	}
	if !strings.HasPrefix(t1, "internal/dataset/gen.go:") {
		t.Errorf("unexpected first text line:\n%s", t1)
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var b bytes.Buffer
	if err := WriteJSON(&b, nil); err != nil {
		t.Fatal(err)
	}
	if b.String() != "[]\n" {
		t.Errorf("empty diagnostics must render as []\\n, got %q", b.String())
	}
}

func TestUnderAllowlist(t *testing.T) {
	al := DefaultAllowlist()
	cases := []struct {
		file, analyzer string
		want           bool
	}{
		{"internal/miio/client.go", "sleepban", true},
		{"internal/miio/client.go", "nodeterm", true},
		{"internal/miio/client.go", "errcheck", false},
		{"internal/miio2/client.go", "sleepban", false},
		{"internal/smartthings/server.go", "nodeterm", true},
		{"internal/core/framework.go", "sleepban", false},
	}
	for _, c := range cases {
		d := Diagnostic{File: c.file, Analyzer: c.analyzer}
		if got := underAllowlist(d, al); got != c.want {
			t.Errorf("underAllowlist(%s, %s) = %v, want %v", c.file, c.analyzer, got, c.want)
		}
	}
}

func TestDiagnosticOrderAndString(t *testing.T) {
	ds := []Diagnostic{
		{File: "b.go", Line: 1, Col: 1, Analyzer: "x", Message: "m"},
		{File: "a.go", Line: 2, Col: 1, Analyzer: "x", Message: "m"},
		{File: "a.go", Line: 1, Col: 2, Analyzer: "x", Message: "m"},
		{File: "a.go", Line: 1, Col: 1, Analyzer: "y", Message: "m"},
		{File: "a.go", Line: 1, Col: 1, Analyzer: "x", Message: "n"},
		{File: "a.go", Line: 1, Col: 1, Analyzer: "x", Message: "m"},
	}
	sortDiags(ds)
	want := []string{
		"a.go:1:1: x: m",
		"a.go:1:1: x: n",
		"a.go:1:1: y: m",
		"a.go:1:2: x: m",
		"a.go:2:1: x: m",
		"b.go:1:1: x: m",
	}
	for i, w := range want {
		if ds[i].String() != w {
			t.Errorf("position %d: got %s, want %s", i, ds[i].String(), w)
		}
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir("testdata/src/does-not-exist", "x"); err == nil {
		t.Error("missing dir must error")
	}
	if _, err := LoadDir("testdata", "x"); err == nil {
		t.Error("dir with no Go files must error")
	}
}

func TestLoadBadPattern(t *testing.T) {
	if _, err := Load("testdata/fixturemod", []string{"./nonexistent/..."}); err == nil {
		t.Error("bad pattern must error")
	}
}

// TestChainedAllowsOneComment: one trailing comment carrying two markers
// suppresses findings from both analyzers on its line, and neither marker
// reads as unused.
func TestChainedAllowsOneComment(t *testing.T) {
	src := `// Package fix seeds two analyzers on one line.
package fix

//iot:hotpath
func Hot(a, b string) []string {
	xs := append(make([]string, 0, 2), a+b) //iot:allow hotcall chained fixture //iot:allow hotalloc chained fixture
	return xs
}
`
	pkg := loadSrc(t, src, "iotsid/internal/core/fix")
	diags, err := RunPackage(pkg, []*Analyzer{HotAlloc, HotCall})
	if err != nil {
		t.Fatal(err)
	}
	active, suppressed, _, unused := splitSuppressed(pkg, diags, nil)
	if len(active) != 0 {
		t.Errorf("chained allows must clear the line, got active %v", active)
	}
	per := map[string]int{}
	for _, d := range suppressed {
		per[d.Analyzer]++
	}
	if per["hotcall"] != 2 || per["hotalloc"] != 1 {
		t.Errorf("want 2 hotcall + 1 hotalloc suppressed, got %v", per)
	}
	if len(unused) != 0 {
		t.Errorf("both chained markers matched findings, got unused %v", unused)
	}
}

// TestSuppressionCRLF: a trailing allow still suppresses when the file
// uses CRLF line endings (the payload must not swallow the \r).
func TestSuppressionCRLF(t *testing.T) {
	src := "// Package fix is the CRLF fixture.\r\n" +
		"package fix\r\n" +
		"\r\n" +
		"//iot:hotpath\r\n" +
		"func Hot(a, b string) string {\r\n" +
		"\ts := a + b //iot:allow hotalloc crlf trailing allow\r\n" +
		"\tu := b + a\r\n" +
		"\t_ = u\r\n" +
		"\treturn s\r\n" +
		"}\r\n"
	pkg := loadSrc(t, src, "iotsid/internal/core/fix")
	diags, err := RunPackage(pkg, []*Analyzer{HotAlloc})
	if err != nil {
		t.Fatal(err)
	}
	active, suppressed, _, unused := splitSuppressed(pkg, diags, nil)
	if len(active) != 1 || active[0].Line != 7 {
		t.Errorf("want the unsuppressed concat on line 7 active, got %v", active)
	}
	if len(suppressed) != 1 || suppressed[0].Line != 6 {
		t.Errorf("want the line-6 concat suppressed, got %v", suppressed)
	}
	if len(unused) != 0 {
		t.Errorf("the CRLF allow matched a finding, got unused %v", unused)
	}
}

// TestAllowPlacementScope: a standalone allow covers exactly the next
// line, a trailing allow exactly its own — one line further and the
// marker is unused.
func TestAllowPlacementScope(t *testing.T) {
	src := `// Package fix pins allow placement semantics.
package fix

//iot:hotpath
func Hot(a, b string) string {
	//iot:allow hotalloc standalone allow covers the next line only
	s := a + b
	u := b + a //iot:allow hotalloc trailing allow covers its own line
	v := a + a
	_, _ = s, u
	return v
}

//iot:hotpath
func Stale(a string) string {
	//iot:allow hotalloc two lines above the violation, suppresses nothing

	return a + a
}
`
	pkg := loadSrc(t, src, "iotsid/internal/core/fix")
	diags, err := RunPackage(pkg, []*Analyzer{HotAlloc})
	if err != nil {
		t.Fatal(err)
	}
	active, suppressed, _, unused := splitSuppressed(pkg, diags, nil)
	if len(active) != 2 {
		t.Errorf("want the line-9 and line-18 concats active, got %v", active)
	}
	if len(suppressed) != 2 {
		t.Errorf("want the standalone and trailing allows to suppress one finding each, got %v", suppressed)
	}
	if len(unused) != 1 || unused[0].Line != 16 {
		t.Errorf("want exactly the line-16 allow unused, got %v", unused)
	}
	if len(unused) == 1 && !strings.Contains(unused[0].Message, "unused //iot:allow hotalloc") {
		t.Errorf("unused-allow message: %s", unused[0].Message)
	}
}

// TestMalformedAllowSortStable: malformed-allow diagnostics occupy a
// deterministic slot in the (file, line, col, analyzer) order, byte-equal
// across runs.
func TestMalformedAllowSortStable(t *testing.T) {
	runOnce := func() []Diagnostic {
		pkg, err := LoadDir("testdata/src/malformed", "iotsid/internal/svc/fix")
		if err != nil {
			t.Fatal(err)
		}
		diags, err := RunPackage(pkg, []*Analyzer{SleepBan})
		if err != nil {
			t.Fatal(err)
		}
		active, _, _, _ := splitSuppressed(pkg, diags, nil)
		SortDiagnostics(active)
		return active
	}
	first, second := runOnce(), runOnce()
	if !reflect.DeepEqual(first, second) {
		t.Errorf("diagnostic order not stable across runs:\n%v\n%v", first, second)
	}
	for i := 1; i < len(first); i++ {
		if first[i].less(first[i-1]) {
			t.Errorf("diagnostics out of order at %d: %v after %v", i, first[i], first[i-1])
		}
	}
	// The malformed markers sit above the sleeps they fail to suppress, so
	// the sorted stream interleaves iotlint and sleepban by line.
	var kinds []string
	for _, d := range first {
		kinds = append(kinds, d.Analyzer)
	}
	want := []string{"iotlint", "sleepban", "iotlint", "sleepban"}
	if !reflect.DeepEqual(kinds, want) {
		t.Errorf("analyzer interleaving = %v, want %v", kinds, want)
	}
}
