package analysis

import "testing"

// The analyzer self-tests drive the // want harness over seeded fixture
// packages. The synthetic import paths place each fixture in the scope
// its analyzer watches.

func TestNoDetermWant(t *testing.T) {
	RunWant(t, "testdata/src/nodeterm", "iotsid/internal/dataset/fix", NoDeterm)
}

func TestHotAllocWant(t *testing.T) {
	RunWant(t, "testdata/src/hotalloc", "iotsid/internal/core/fix", HotAlloc)
}

func TestSleepBanWant(t *testing.T) {
	RunWant(t, "testdata/src/sleepban", "iotsid/internal/svc/fix", SleepBan)
}

func TestCtxRuleWant(t *testing.T) {
	RunWant(t, "testdata/src/ctxrule", "iotsid/internal/api/fix", CtxRule)
}

func TestErrCheckWant(t *testing.T) {
	RunWant(t, "testdata/src/errcheck", "iotsid/internal/store/fix", ErrCheck)
}

func TestHotCallWant(t *testing.T) {
	RunWant(t, "testdata/src/hotcall", "iotsid/internal/core/fix", HotCall)
}

func TestFailClosedWant(t *testing.T) {
	RunWant(t, "testdata/src/failclosed", "iotsid/internal/core/fix", FailClosed)
}

func TestCowPubWant(t *testing.T) {
	RunWant(t, "testdata/src/cowpub", "iotsid/internal/epoch/fix", CowPub)
}

func TestMetricRegWant(t *testing.T) {
	RunWant(t, "testdata/src/metricreg", "iotsid/internal/obs/fix", MetricReg)
}

// TestScopeSilence: the same violation classes outside internal/ and the
// deterministic scopes produce nothing — no wants, no diagnostics.
func TestScopeSilence(t *testing.T) {
	RunWant(t, "testdata/src/scope", "example.com/tools/fix", All()...)
}

// TestHotAllocOutOfDeterministicScope: hotalloc is annotation-scoped, not
// path-scoped — it fires under any import path.
func TestHotAllocAnyPath(t *testing.T) {
	RunWant(t, "testdata/src/hotalloc", "example.com/tools/fix", HotAlloc)
}

func TestAllStableOrder(t *testing.T) {
	all := All()
	if len(all) != 9 {
		t.Fatalf("expected 9 analyzers, got %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatalf("All() not sorted: %s before %s", all[i-1].Name, all[i].Name)
		}
	}
	for _, a := range all {
		if ByName(a.Name) != a {
			t.Fatalf("ByName(%q) did not resolve", a.Name)
		}
		if a.Doc == "" {
			t.Fatalf("analyzer %s has no doc", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Fatal("ByName(nope) should be nil")
	}
}

func TestPathScopes(t *testing.T) {
	cases := []struct {
		path          string
		det, internal bool
	}{
		{"iotsid/internal/dataset", true, true},
		{"iotsid/internal/mlearn/tree", true, true},
		{"fixture/internal/eval", true, true},
		{"internal/par", true, true},
		{"iotsid/internal/core", false, true},
		{"iotsid/internal/datasetx", false, true},
		{"iotsid/cmd/iotlint", false, false},
		{"example.com/tools", false, false},
	}
	for _, c := range cases {
		if got := inDeterministicScope(c.path); got != c.det {
			t.Errorf("inDeterministicScope(%q) = %v, want %v", c.path, got, c.det)
		}
		if got := inInternal(c.path); got != c.internal {
			t.Errorf("inInternal(%q) = %v, want %v", c.path, got, c.internal)
		}
	}
	if !inCmd("iotsid/cmd/iotlint") || inCmd("iotsid/internal/core") {
		t.Error("inCmd misclassified")
	}
}
