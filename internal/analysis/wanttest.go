package analysis

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// This file is the stdlib-only stand-in for golang.org/x/tools'
// analysistest: fixture packages under testdata/ carry
//
//	// want "regexp" ["regexp" ...]
//
// comments, and RunWant asserts that the diagnostics the analyzers emit
// on each line match those expectations exactly — every want must be
// matched by a diagnostic and every diagnostic by a want. Suppressed
// (//iot:allow) findings must NOT carry a want: the harness runs the same
// suppression pass as the engine, so fixtures double as tests of the
// suppression grammar.

// wantTag introduces an expectation comment.
const wantTag = "// want "

// wantRE extracts the quoted regexps from a want comment.
var wantRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// want is one expectation at a file line.
type want struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// RunWant loads the fixture directory under the synthetic import path
// (whose segments select the analyzer scopes, e.g.
// "iotsid/internal/dataset/fix"), runs the analyzers, and diffs the
// findings against the fixture's want comments.
func RunWant(t *testing.T, dir, importPath string, analyzers ...*Analyzer) {
	t.Helper()
	pkg, err := LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	diags, err := RunPackage(pkg, analyzers)
	if err != nil {
		t.Fatalf("run analyzers on %s: %v", dir, err)
	}
	active, _, _, _ := splitSuppressed(pkg, diags, nil)

	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatalf("parse want comments in %s: %v", dir, err)
	}
	for _, d := range active {
		if !matchWant(wants[lineKey{d.File, d.Line}], d.Message) {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matched want %s", key.file, key.line, w.raw)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

// collectWants parses every want comment in the fixture package.
func collectWants(pkg *Package) (map[lineKey][]*want, error) {
	out := make(map[lineKey][]*want)
	for _, f := range pkg.Files {
		abs := pkg.Fset.Position(f.Pos()).Filename
		file := relPath(pkg.ModDir, abs)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, wantTag)
				if idx < 0 {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				raws := wantRE.FindAllString(c.Text[idx+len(wantTag):], -1)
				if len(raws) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment with no quoted regexp", file, line)
				}
				for _, raw := range raws {
					pat, err := strconv.Unquote(raw)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: unquote %s: %w", file, line, raw, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: compile %s: %w", file, line, raw, err)
					}
					out[lineKey{file, line}] = append(out[lineKey{file, line}], &want{re: re, raw: raw})
				}
			}
		}
	}
	return out, nil
}

// matchWant consumes the first unmatched want whose regexp matches msg.
func matchWant(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
