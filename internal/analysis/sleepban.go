package analysis

import (
	"go/ast"
	"go/types"
)

// SleepBan forbids raw time.Sleep in internal/ library code. Waits must go
// through the resilience layer's injectable sleep (Policy.Sleep /
// Policy.sleep's timer+context select) so tests and the fault campaign can
// run them on a synthetic clock and a shutdown can interrupt them. Both
// calls and stored references are flagged.
var SleepBan = &Analyzer{
	Name: "sleepban",
	Doc:  "forbid raw time.Sleep in internal/ code; waits go through the injectable resilience sleep",
	Run:  runSleepBan,
}

func runSleepBan(pass *Pass) error {
	if !inInternal(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := pass.Info.Uses[id].(*types.Func)
			if ok && isPkgFunc(obj, "time", "Sleep") {
				pass.Reportf(id.Pos(), "raw time.Sleep in %s: use the resilience layer's injectable sleep", pass.Path)
			}
			return true
		})
	}
	return nil
}
