package fleet

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"iotsid/internal/core"
	"iotsid/internal/dataset"
	"iotsid/internal/seq"
)

// trainedSeqSet caches one trained sequence set across the test binary.
var trainedSeqSet *seq.Set

func seqSetForTest(t testing.TB) *seq.Set {
	t.Helper()
	if trainedSeqSet != nil {
		return trainedSeqSet
	}
	set, err := seq.Train(seq.TrainConfig{Seed: 7, Models: []dataset.Model{dataset.ModelWindow}})
	if err != nil {
		t.Fatal(err)
	}
	trainedSeqSet = set
	return set
}

// pushAndAuthorize publishes the event's scene and judges its instruction
// for one home.
func pushAndAuthorize(t testing.TB, f *Fleet, home string, e seq.TraceEvent) core.Decision {
	t.Helper()
	if err := f.PushContext(home, e.WindowScene()); err != nil {
		t.Fatal(err)
	}
	op := "window.get_state"
	if e.Sensitive {
		op = "window.open"
	}
	dec, err := f.Authorize(context.Background(), home, buildInstr(t, op, "window-1"))
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

// TestFleetSequenceCombinedVerdict exercises the per-home fail-closed
// combination: an armed home's benign stream flows, its same-tick chain
// is sequence-rejected, and an unarmed home in the same fleet is
// completely unaffected (histories and verdicts are per-home).
func TestFleetSequenceCombinedVerdict(t *testing.T) {
	f := fleetForTest(t, Config{Shards: 4})
	mustAddHome(t, f, HomeConfig{ID: "armed", Sequence: seqSetForTest(t)})
	mustAddHome(t, f, HomeConfig{ID: "plain"})

	trace := seq.LegalTrace(rand.New(rand.NewSource(3301)), 12, 8, 13)
	for i, e := range trace {
		if dec := pushAndAuthorize(t, f, "armed", e); !dec.Allowed {
			t.Fatalf("armed home benign event %d rejected: %s", i, dec.Reason)
		}
	}
	if got := f.SeqAnomalies(); got != 0 {
		t.Fatalf("benign stream tripped %d sequence anomalies", got)
	}

	// Same-tick chain on the armed home: fillers admitted, the sensitive
	// tail refused with the interned reason.
	last := trace[len(trace)-1]
	burst := seq.TraceEvent{At: last.At.Add(40 * time.Second), Hour: last.Hour, Voice: true, Occupied: last.Occupied}
	for i := 0; i < 3; i++ {
		if dec := pushAndAuthorize(t, f, "armed", burst); !dec.Allowed {
			t.Fatalf("chain filler %d rejected: %s", i, dec.Reason)
		}
	}
	burst.Sensitive = true
	dec := pushAndAuthorize(t, f, "armed", burst)
	if dec.Allowed {
		t.Fatal("armed home must sequence-reject the same-tick sensitive tail")
	}
	if dec.Reason != reasonSeqAnomaly {
		t.Fatalf("rejection reason = %q, want interned sequence reason", dec.Reason)
	}
	if got := f.SeqAnomalies(); got != 1 {
		t.Fatalf("SeqAnomalies = %d, want 1", got)
	}

	// The unarmed home replays the exact same burst and is allowed — no
	// sequence set, no sequence verdict.
	for i := 0; i < 3; i++ {
		burst.Sensitive = false
		if dec := pushAndAuthorize(t, f, "plain", burst); !dec.Allowed {
			t.Fatalf("plain home filler %d rejected: %s", i, dec.Reason)
		}
	}
	burst.Sensitive = true
	if dec := pushAndAuthorize(t, f, "plain", burst); !dec.Allowed {
		t.Fatalf("plain home must stay tree-only, got rejection: %s", dec.Reason)
	}
	if got := f.SeqAnomalies(); got != 1 {
		t.Fatalf("SeqAnomalies moved to %d on the unarmed home", got)
	}
}

// TestFleetAuthorizeSequenceSteadyStateAllocs pins the fleet's 0-alloc
// criterion with the sequence judge armed, on both steady states: the
// allow path (zero-At scene, per-authorize clock advance keeps the gap in
// profile) and the fail-closed path (frozen scene time, every follow-up
// same-tick).
func TestFleetAuthorizeSequenceSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	clock := time.Date(2021, 4, 1, 10, 0, 0, 0, time.UTC)
	f := fleetForTest(t, Config{Shards: 4, Now: func() time.Time {
		clock = clock.Add(time.Minute)
		return clock
	}})
	mustAddHome(t, f, HomeConfig{ID: "allow", Sequence: seqSetForTest(t)})
	mustAddHome(t, f, HomeConfig{ID: "closed", Sequence: seqSetForTest(t)})
	ctx := context.Background()
	in := buildInstr(t, "window.open", "window-1")

	// Allow path: the pushed scene's zero At makes the sequence judge
	// stamp events off the fleet clock, which advances one minute per
	// authorize — a steady in-profile sensitive stream.
	e := seq.TraceEvent{Hour: 10, Voice: true, Occupied: true, Sensitive: true}
	scene := e.WindowScene()
	scene.At = time.Time{}
	if err := f.PushContext("allow", scene); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		dec, err := f.Authorize(ctx, "allow", in)
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Allowed {
			t.Fatalf("warmup %d rejected: %s", i, dec.Reason)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if dec, err := f.Authorize(ctx, "allow", in); err != nil || !dec.Allowed {
			t.Fatalf("allow path broke: %+v, %v", dec, err)
		}
	})
	if allocs != 0 {
		t.Errorf("sequence-judged fleet allow path allocates %.1f objects/op, want 0", allocs)
	}

	// Fail-closed path: the scene keeps its fixed event time, so every
	// authorize after the first is same-tick and sequence-rejected.
	frozen := seq.TraceEvent{At: clock, Hour: 10, Voice: true, Occupied: true, Sensitive: true}
	if err := f.PushContext("closed", frozen.WindowScene()); err != nil {
		t.Fatal(err)
	}
	if dec, err := f.Authorize(ctx, "closed", in); err != nil || !dec.Allowed {
		t.Fatalf("cold-start authorize: %+v, %v", dec, err)
	}
	for i := 0; i < 50; i++ {
		dec, err := f.Authorize(ctx, "closed", in)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Allowed || dec.Reason != reasonSeqAnomaly {
			t.Fatalf("warmup %d: want sequence rejection, got %+v", i, dec)
		}
	}
	allocs = testing.AllocsPerRun(200, func() {
		if dec, err := f.Authorize(ctx, "closed", in); err != nil || dec.Allowed {
			t.Fatalf("fail-closed path broke: %+v, %v", dec, err)
		}
	})
	if allocs != 0 {
		t.Errorf("sequence fail-closed fleet path allocates %.1f objects/op, want 0", allocs)
	}
}

// TestFleetSeqPushAuthorizeRace hammers one sequence-armed home with
// concurrent context pushes and authorizations (sensitive and not) — the
// tracker mutex and the view pointer must keep the combined path sound
// under -race; no decision may error.
func TestFleetSeqPushAuthorizeRace(t *testing.T) {
	f := fleetForTest(t, Config{Shards: 2})
	mustAddHome(t, f, HomeConfig{ID: "h", Sequence: seqSetForTest(t)})
	base := seq.TraceEvent{At: time.Date(2021, 4, 1, 9, 0, 0, 0, time.UTC), Hour: 9, Voice: true, Occupied: true, Sensitive: true}
	if err := f.PushContext("h", base.WindowScene()); err != nil {
		t.Fatal(err)
	}
	const iters = 1500
	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		e := base
		for i := 0; i < iters; i++ {
			e.At = e.At.Add(time.Second)
			e.Hour += 1.0 / 3600
			if err := f.PushContext("h", e.WindowScene()); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	open := buildInstr(t, "window.open", "window-1")
	get := buildInstr(t, "window.get_state", "window-1")
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := f.Authorize(ctx, "h", open); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := f.Authorize(ctx, "h", get); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	h, _ := f.Home("h")
	if h.Decisions() != 2*iters {
		t.Fatalf("decisions = %d, want %d", h.Decisions(), 2*iters)
	}
}
