package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"iotsid/internal/core"
	"iotsid/internal/dataset"
	"iotsid/internal/instr"
	"iotsid/internal/obs"
	"iotsid/internal/resilience"
	"iotsid/internal/sensor"
)

// trainedMemory caches one trained memory across the test binary.
var trainedMemory *core.FeatureMemory

func memoryForTest(t testing.TB) *core.FeatureMemory {
	t.Helper()
	if trainedMemory != nil {
		return trainedMemory
	}
	corpus, err := dataset.Corpus(dataset.CorpusConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fm, err := core.Train(corpus, dataset.BuildConfig{Seed: 42}, core.TrainConfig{Seed: 9})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	trainedMemory = fm
	return fm
}

func registryForTest(t testing.TB) *ModelRegistry {
	t.Helper()
	r, err := NewModelRegistry(memoryForTest(t))
	if err != nil {
		t.Fatalf("NewModelRegistry: %v", err)
	}
	return r
}

func detectorForTest(t testing.TB) *core.Detector {
	t.Helper()
	d, err := core.DefaultDetector()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func fleetForTest(t testing.TB, cfg Config) *Fleet {
	t.Helper()
	if cfg.Detector == nil {
		cfg.Detector = detectorForTest(t)
	}
	if cfg.Models == nil {
		cfg.Models = registryForTest(t)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

func buildInstr(t testing.TB, op, device string) instr.Instruction {
	t.Helper()
	in, err := instr.BuiltinRegistry().Build(op, device, instr.OriginUser, nil)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func legalCtx(t testing.TB, m dataset.Model) sensor.Snapshot {
	t.Helper()
	snap, err := dataset.LegalScene(m, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func attackCtx(t testing.TB, m dataset.Model) sensor.Snapshot {
	t.Helper()
	snap, err := dataset.AttackScene(m, rand.New(rand.NewSource(78)))
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func mustAddHome(t testing.TB, f *Fleet, cfg HomeConfig) *Home {
	t.Helper()
	h, err := f.AddHome(cfg)
	if err != nil {
		t.Fatalf("AddHome(%q): %v", cfg.ID, err)
	}
	return h
}

func TestNewFleetValidation(t *testing.T) {
	reg := registryForTest(t)
	det := detectorForTest(t)
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"nil detector", Config{Models: reg}, "needs a detector"},
		{"nil models", Config{Detector: det}, "needs a model registry"},
		{"negative shards", Config{Detector: det, Models: reg, Shards: -3}, "shard count"},
		{"huge shards", Config{Detector: det, Models: reg, Shards: 1 << 17}, "shard count"},
		{"negative log cap", Config{Detector: det, Models: reg, HomeLogCapacity: -1}, "log capacity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("New = %v, want error containing %q", err, tc.want)
			}
		})
	}
	f := fleetForTest(t, Config{})
	if got := f.ShardCount(); got != 16 {
		t.Fatalf("default ShardCount = %d, want 16", got)
	}
}

func TestNewModelRegistryValidation(t *testing.T) {
	if _, err := NewModelRegistry(nil); err == nil {
		t.Fatal("NewModelRegistry(nil) succeeded, want error")
	}
}

func TestFleetPushAuthorize(t *testing.T) {
	f := fleetForTest(t, Config{Shards: 4})
	mustAddHome(t, f, HomeConfig{ID: "home-1"})
	open := buildInstr(t, "window.open", "win-1")

	if err := f.PushContext("home-1", legalCtx(t, dataset.ModelWindow)); err != nil {
		t.Fatalf("PushContext: %v", err)
	}
	dec, err := f.Authorize(context.Background(), "home-1", open)
	if err != nil {
		t.Fatalf("Authorize: %v", err)
	}
	if !dec.Allowed || !dec.Sensitive || dec.Model != dataset.ModelWindow {
		t.Fatalf("legal scene: got %+v, want allowed sensitive window decision", dec)
	}

	if err := f.PushContext("home-1", attackCtx(t, dataset.ModelWindow)); err != nil {
		t.Fatalf("PushContext: %v", err)
	}
	dec, err = f.Authorize(context.Background(), "home-1", open)
	if err != nil {
		t.Fatalf("Authorize: %v", err)
	}
	if dec.Allowed {
		t.Fatalf("attack scene: got %+v, want rejection", dec)
	}
	if dec.Explanation == "" {
		t.Fatal("rejection carries no explanation")
	}

	h, _ := f.Home("home-1")
	if h.Pushes() != 2 || h.Decisions() != 2 {
		t.Fatalf("home counters = %d pushes / %d decisions, want 2/2", h.Pushes(), h.Decisions())
	}
}

func TestFleetNonSensitiveWithoutContext(t *testing.T) {
	f := fleetForTest(t, Config{})
	mustAddHome(t, f, HomeConfig{ID: "h"})
	dec, err := f.Authorize(context.Background(), "h", buildInstr(t, "light.get_state", "lamp-1"))
	if err != nil {
		t.Fatalf("Authorize: %v", err)
	}
	if !dec.Allowed || dec.Sensitive {
		t.Fatalf("status op without context: got %+v, want non-sensitive allow", dec)
	}
}

func TestFleetFailClosedNoContext(t *testing.T) {
	f := fleetForTest(t, Config{})
	mustAddHome(t, f, HomeConfig{ID: "h"})
	dec, err := f.Authorize(context.Background(), "h", buildInstr(t, "window.open", "win-1"))
	if err != nil {
		t.Fatalf("Authorize: %v", err)
	}
	if dec.Allowed || !dec.Sensitive || dec.Reason != reasonNoContext {
		t.Fatalf("sensitive op without context: got %+v, want fail-closed rejection", dec)
	}
}

func TestFleetFailClosedStaleContext(t *testing.T) {
	now := time.Unix(1000, 0)
	f := fleetForTest(t, Config{
		FreshFor: time.Minute,
		Now:      func() time.Time { return now },
	})
	mustAddHome(t, f, HomeConfig{ID: "h"})
	if err := f.PushContext("h", legalCtx(t, dataset.ModelWindow)); err != nil {
		t.Fatal(err)
	}
	open := buildInstr(t, "window.open", "win-1")

	now = now.Add(59 * time.Second)
	dec, err := f.Authorize(context.Background(), "h", open)
	if err != nil {
		t.Fatalf("Authorize (fresh): %v", err)
	}
	if !dec.Allowed {
		t.Fatalf("within budget: got %+v, want allow", dec)
	}

	now = now.Add(2 * time.Minute)
	dec, err = f.Authorize(context.Background(), "h", open)
	if err != nil {
		t.Fatalf("Authorize (stale): %v", err)
	}
	if dec.Allowed || dec.Reason != reasonStaleCtx {
		t.Fatalf("beyond budget: got %+v, want stale fail-closed rejection", dec)
	}

	// Non-sensitive instructions still judge on the stale view.
	dec, err = f.Authorize(context.Background(), "h", buildInstr(t, "light.get_state", "lamp-1"))
	if err != nil {
		t.Fatalf("Authorize (non-sensitive, stale): %v", err)
	}
	if !dec.Allowed {
		t.Fatalf("non-sensitive on stale view: got %+v, want allow", dec)
	}
}

func TestFleetHomeFreshnessOverride(t *testing.T) {
	now := time.Unix(1000, 0)
	f := fleetForTest(t, Config{
		FreshFor: time.Minute,
		Now:      func() time.Time { return now },
	})
	mustAddHome(t, f, HomeConfig{ID: "patient", FreshFor: time.Hour})
	if err := f.PushContext("patient", legalCtx(t, dataset.ModelWindow)); err != nil {
		t.Fatal(err)
	}
	now = now.Add(30 * time.Minute)
	dec, err := f.Authorize(context.Background(), "patient", buildInstr(t, "window.open", "w"))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Allowed {
		t.Fatalf("per-home FreshFor override ignored: %+v", dec)
	}
}

func TestFleetUnknownHome(t *testing.T) {
	f := fleetForTest(t, Config{})
	if _, err := f.Authorize(context.Background(), "ghost", buildInstr(t, "window.open", "w")); err == nil {
		t.Fatal("Authorize on unknown home succeeded")
	}
	if err := f.PushContext("ghost", sensor.Snapshot{}); err == nil {
		t.Fatal("PushContext on unknown home succeeded")
	}
}

func TestFleetAuthorizeCancelledContext(t *testing.T) {
	f := fleetForTest(t, Config{})
	mustAddHome(t, f, HomeConfig{ID: "h"})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.Authorize(ctx, "h", buildInstr(t, "light.get_state", "l")); !errors.Is(err, context.Canceled) {
		t.Fatalf("Authorize with cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := f.AuthorizeBatch(ctx, []BatchItem{{Home: "h", In: buildInstr(t, "light.get_state", "l")}}, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("AuthorizeBatch with cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestFleetHomeLifecycle(t *testing.T) {
	f := fleetForTest(t, Config{})
	mustAddHome(t, f, HomeConfig{ID: "h"})
	if _, err := f.AddHome(HomeConfig{ID: "h"}); err == nil {
		t.Fatal("duplicate AddHome succeeded")
	}
	if _, err := f.AddHome(HomeConfig{}); err == nil {
		t.Fatal("empty-ID AddHome succeeded")
	}
	if f.HomeCount() != 1 {
		t.Fatalf("HomeCount = %d, want 1", f.HomeCount())
	}
	if !f.RemoveHome("h") {
		t.Fatal("RemoveHome returned false for registered home")
	}
	if f.RemoveHome("h") {
		t.Fatal("RemoveHome returned true for deregistered home")
	}
	if f.HomeCount() != 0 {
		t.Fatalf("HomeCount after removal = %d, want 0", f.HomeCount())
	}
}

func TestFleetHomeIDsSortedAcrossShards(t *testing.T) {
	f := fleetForTest(t, Config{Shards: 8})
	want := make([]string, 0, 40)
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("home-%03d", i)
		mustAddHome(t, f, HomeConfig{ID: id})
		want = append(want, id)
	}
	got := f.HomeIDs()
	if len(got) != len(want) {
		t.Fatalf("HomeIDs len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("HomeIDs[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestFleetHomeLogRing(t *testing.T) {
	f := fleetForTest(t, Config{HomeLogCapacity: 4})
	h := mustAddHome(t, f, HomeConfig{ID: "h"})
	if err := f.PushContext("h", legalCtx(t, dataset.ModelWindow)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := f.Authorize(context.Background(), "h", buildInstr(t, "window.open", fmt.Sprintf("w-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	log := h.Log()
	if len(log) != 4 {
		t.Fatalf("ring log retained %d entries, want 4", len(log))
	}
	if log[0].Seq != 7 || log[3].Seq != 10 {
		t.Fatalf("ring log kept seqs %d..%d, want 7..10", log[0].Seq, log[3].Seq)
	}
	if log[3].DeviceID != "w-9" {
		t.Fatalf("newest entry device = %q, want w-9", log[3].DeviceID)
	}
	recent := h.LogRecent(2)
	if len(recent) != 2 || recent[1].Seq != 10 {
		t.Fatalf("LogRecent(2) = %+v, want newest two", recent)
	}
	if got := h.LogRecent(-1); len(got) != 0 {
		t.Fatalf("LogRecent(-1) = %+v, want empty", got)
	}
}

func TestFleetLogCapacityOne(t *testing.T) {
	f := fleetForTest(t, Config{HomeLogCapacity: 1})
	h := mustAddHome(t, f, HomeConfig{ID: "h"})
	if err := f.PushContext("h", legalCtx(t, dataset.ModelWindow)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Authorize(context.Background(), "h", buildInstr(t, "window.open", "w")); err != nil {
		t.Fatal(err)
	}
	if got := h.Log(); len(got) != 1 {
		t.Fatalf("capacity-1 log retained %d, want 1", len(got))
	}
}

func TestFleetPullCollectorFallback(t *testing.T) {
	f := fleetForTest(t, Config{})
	calls := 0
	coll := core.CollectorFunc(func(ctx context.Context) (sensor.Snapshot, error) {
		calls++
		return legalCtx(t, dataset.ModelWindow), nil
	})
	mustAddHome(t, f, HomeConfig{ID: "pull", Collector: coll})
	dec, err := f.Authorize(context.Background(), "pull", buildInstr(t, "window.open", "w"))
	if err != nil {
		t.Fatalf("Authorize: %v", err)
	}
	if !dec.Allowed || calls != 1 {
		t.Fatalf("pull fallback: dec=%+v calls=%d, want allow after 1 pull", dec, calls)
	}
	// The pulled snapshot is now the home's published view: the next
	// authorize must not pull again.
	if _, err := f.Authorize(context.Background(), "pull", buildInstr(t, "window.open", "w")); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("second authorize pulled again (calls=%d), want cached view", calls)
	}
}

func TestFleetPullCollectorFailure(t *testing.T) {
	f := fleetForTest(t, Config{})
	boom := errors.New("gateway down")
	coll := core.CollectorFunc(func(ctx context.Context) (sensor.Snapshot, error) {
		return sensor.Snapshot{}, boom
	})
	h := mustAddHome(t, f, HomeConfig{ID: "down", Collector: coll})
	// A failed pull is the same epistemic state as no context: a sensitive
	// instruction gets the uniform fail-closed decision (not an error), so
	// degraded traffic lands in the ring log like any other rejection.
	dec, err := f.Authorize(context.Background(), "down", buildInstr(t, "window.open", "w"))
	if err != nil {
		t.Fatalf("Authorize: %v", err)
	}
	if dec.Allowed || !dec.Sensitive || dec.Reason != reasonPullFailed {
		t.Fatalf("sensitive with failing collector = %+v, want pull-failure fail-closed rejection", dec)
	}
	if got := h.Log(); len(got) != 1 || got[0].Decision.Reason != reasonPullFailed {
		t.Fatalf("ring log after degraded rejection = %+v, want the fail-closed decision recorded", got)
	}
	// Non-sensitive traffic survives the dead gateway.
	dec, err = f.Authorize(context.Background(), "down", buildInstr(t, "light.get_state", "l"))
	if err != nil || !dec.Allowed {
		t.Fatalf("non-sensitive with failing collector = %+v, %v; want allow", dec, err)
	}
}

func TestFleetPullCollectorBreaker(t *testing.T) {
	f := fleetForTest(t, Config{})
	boom := errors.New("gateway down")
	calls := 0
	coll := core.CollectorFunc(func(ctx context.Context) (sensor.Snapshot, error) {
		calls++
		return sensor.Snapshot{}, boom
	})
	br := resilience.NewBreaker(resilience.BreakerConfig{FailureThreshold: 2, OpenTimeout: time.Hour})
	mustAddHome(t, f, HomeConfig{ID: "flap", Collector: coll, Breaker: br})
	open := buildInstr(t, "window.open", "w")
	for i := 0; i < 5; i++ {
		dec, err := f.Authorize(context.Background(), "flap", open)
		if err != nil {
			t.Fatalf("Authorize %d: %v", i, err)
		}
		if dec.Allowed || dec.Reason != reasonPullFailed {
			t.Fatalf("Authorize %d with dead collector = %+v, want fail-closed rejection", i, dec)
		}
	}
	if calls != 2 {
		t.Fatalf("collector called %d times behind tripped breaker, want 2", calls)
	}
}

func TestFleetBatchTenantIsolation(t *testing.T) {
	f := fleetForTest(t, Config{Shards: 4})
	mustAddHome(t, f, HomeConfig{ID: "a"})
	mustAddHome(t, f, HomeConfig{ID: "b"})
	legal := legalCtx(t, dataset.ModelWindow)
	attack := attackCtx(t, dataset.ModelWindow)
	items := []BatchItem{
		{Home: "a", In: buildInstr(t, "window.open", "w"), Context: &legal},
		{Home: "ghost", In: buildInstr(t, "window.open", "w")},
		{Home: "b", In: buildInstr(t, "window.open", "w"), Context: &attack},
		{Home: "b", In: buildInstr(t, "light.get_state", "l")},
	}
	out, err := f.AuthorizeBatch(context.Background(), items, 2)
	if err != nil {
		t.Fatalf("AuthorizeBatch: %v", err)
	}
	if len(out) != 4 {
		t.Fatalf("batch returned %d results, want 4", len(out))
	}
	if !out[0].Decision.Allowed || out[0].Err != "" {
		t.Fatalf("item 0 (legal): %+v", out[0])
	}
	if out[1].Err == "" || !strings.Contains(out[1].Err, "unknown home") {
		t.Fatalf("item 1 (ghost) should carry a per-item error, got %+v", out[1])
	}
	if out[2].Decision.Allowed || out[2].Err != "" {
		t.Fatalf("item 2 (attack): %+v", out[2])
	}
	if !out[3].Decision.Allowed {
		t.Fatalf("item 3 (status): %+v", out[3])
	}
	if out, err := f.AuthorizeBatch(context.Background(), nil, 2); err != nil || out != nil {
		t.Fatalf("empty batch = %v, %v; want nil, nil", out, err)
	}
}

func TestFleetSharedModelRegistry(t *testing.T) {
	fm := memoryForTest(t)
	reg := registryForTest(t)
	f := fleetForTest(t, Config{Models: reg, Shards: 8})
	for i := 0; i < 500; i++ {
		mustAddHome(t, f, HomeConfig{ID: fmt.Sprintf("home-%03d", i)})
	}
	// The registry holds exactly one compiled tree per device model no
	// matter how many homes share it.
	if got, want := f.Registry().Len(), len(fm.Models()); got != want {
		t.Fatalf("registry holds %d models for 500 homes, want %d", got, want)
	}
	if got := len(f.Registry().Models()); got != f.Registry().Len() {
		t.Fatalf("Models() lists %d, Len() says %d", got, f.Registry().Len())
	}
	for _, m := range fm.Models() {
		memEntry, ok := fm.Entry(m)
		if !ok {
			t.Fatalf("memory lost entry for %s", m)
		}
		regEntry, ok := f.Registry().Entry(m)
		if !ok {
			t.Fatalf("registry missing entry for %s", m)
		}
		if memEntry != regEntry {
			t.Fatalf("registry cloned the %s entry instead of sharing it", m)
		}
		if memEntry.Compiled() != regEntry.Compiled() {
			t.Fatalf("registry compiled tree for %s is not the shared one", m)
		}
	}
}

func TestModelRegistrySwap(t *testing.T) {
	reg := registryForTest(t)
	if err := reg.Swap(dataset.ModelWindow, nil); err == nil {
		t.Fatal("Swap(nil) succeeded")
	}
	e, _ := reg.Entry(dataset.ModelTV)
	if err := reg.Swap(dataset.ModelWindow, e); err != nil {
		t.Fatalf("Swap: %v", err)
	}
	got, ok := reg.Entry(dataset.ModelWindow)
	if !ok || got != e {
		t.Fatal("Swap did not publish the new entry")
	}
	if _, err := reg.Judge(dataset.Model("toaster"), sensor.Snapshot{}); err == nil {
		t.Fatal("Judge on unknown model succeeded")
	}
	if _, _, err := reg.JudgeExplain(dataset.Model("toaster"), sensor.Snapshot{}); err == nil {
		t.Fatal("JudgeExplain on unknown model succeeded")
	}
}

func TestFleetMetrics(t *testing.T) {
	mreg := obs.NewRegistry()
	f := fleetForTest(t, Config{
		Shards:             2,
		Metrics:            mreg,
		TenantMetricsLimit: 1,
	})
	mustAddHome(t, f, HomeConfig{ID: "first"})
	mustAddHome(t, f, HomeConfig{ID: "second"}) // past the tenant cap
	if err := f.PushContext("first", legalCtx(t, dataset.ModelWindow)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Authorize(context.Background(), "first", buildInstr(t, "window.open", "w")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Authorize(context.Background(), "second", buildInstr(t, "window.open", "w")); err != nil {
		t.Fatal(err)
	}
	legal := legalCtx(t, dataset.ModelWindow)
	if _, err := f.AuthorizeBatch(context.Background(), []BatchItem{
		{Home: "first", In: buildInstr(t, "window.open", "w"), Context: &legal},
	}, 1); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	if err := mreg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		metricHomes + " 2",
		metricPushes + " 2", // one explicit push + one batch-carried push
		metricBatches + " 1",
		metricBatchItems + " 1",
		`home="first"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, `home="second"`) {
		t.Error("tenant cap leaked a series for the second home")
	}
	if !strings.Contains(text, `outcome="allow"`) || !strings.Contains(text, `outcome="fail_closed"`) {
		t.Errorf("decision outcomes not labeled:\n%s", text)
	}
}

// TestFleetDuplicateAddHomeKeepsTenantSlot pins AddHome's ordering: a
// registration rejected as a duplicate must not consume one of the capped
// per-tenant metric slots or register labeled series.
func TestFleetDuplicateAddHomeKeepsTenantSlot(t *testing.T) {
	mreg := obs.NewRegistry()
	f := fleetForTest(t, Config{Metrics: mreg, TenantMetricsLimit: 2})
	mustAddHome(t, f, HomeConfig{ID: "first"})
	if _, err := f.AddHome(HomeConfig{ID: "first"}); err == nil {
		t.Fatal("duplicate AddHome succeeded")
	}
	h := mustAddHome(t, f, HomeConfig{ID: "second"})
	if h.tenant[outcomeAllow] == nil {
		t.Fatal("second home got no tenant cells: the rejected duplicate burned a capped slot")
	}
}

func TestFleetWithoutMetricsIsNilSafe(t *testing.T) {
	f := fleetForTest(t, Config{})
	mustAddHome(t, f, HomeConfig{ID: "h"})
	if err := f.PushContext("h", legalCtx(t, dataset.ModelWindow)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Authorize(context.Background(), "h", buildInstr(t, "window.open", "w")); err != nil {
		t.Fatal(err)
	}
}

func TestJumpHashProperties(t *testing.T) {
	// Uniform-ish spread over shards.
	counts := make([]int, 16)
	for i := 0; i < 16000; i++ {
		counts[jumpHash(fnv64a(fmt.Sprintf("home-%d", i)), 16)]++
	}
	for s, c := range counts {
		if c < 500 || c > 1500 {
			t.Fatalf("shard %d got %d of 16000 keys — spread far from uniform", s, c)
		}
	}
	// Minimal movement: growing 16 → 17 shards must move roughly 1/17 of
	// keys; anything near a full reshuffle means the hash is broken.
	moved := 0
	for i := 0; i < 16000; i++ {
		k := fnv64a(fmt.Sprintf("home-%d", i))
		if jumpHash(k, 16) != jumpHash(k, 17) {
			moved++
		}
	}
	if moved > 16000/17*3 {
		t.Fatalf("%d of 16000 keys moved when shards grew 16→17, want ~%d", moved, 16000/17)
	}
}
