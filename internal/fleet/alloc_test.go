package fleet

import (
	"context"
	"testing"

	"iotsid/internal/dataset"
	"iotsid/internal/obs"
)

// TestFleetAuthorizeSteadyStateAllocs is the fleet's perf contract: once a
// home has pushed fresh context, a per-home Authorize is a shard-map
// lookup, an atomic view load, the shared registry's pooled judge, a ring
// append, and counter increments — zero heap allocations, with metrics and
// the per-tenant series enabled.
func TestFleetAuthorizeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	f := fleetForTest(t, Config{
		Shards:             8,
		Metrics:            obs.NewRegistry(),
		TenantMetricsLimit: 4,
	})
	mustAddHome(t, f, HomeConfig{ID: "home-1"})
	if err := f.PushContext("home-1", legalCtx(t, dataset.ModelWindow)); err != nil {
		t.Fatal(err)
	}
	in := buildInstr(t, "window.open", "win-1")
	ctx := context.Background()

	// Warm: intern reasons, fill the feature-buffer pool.
	for i := 0; i < 3; i++ {
		if _, err := f.Authorize(ctx, "home-1", in); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		dec, err := f.Authorize(ctx, "home-1", in)
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Allowed {
			t.Fatalf("steady-state authorize rejected: %+v", dec)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state fleet Authorize allocates %.1f/op, want 0", allocs)
	}
}

// TestFleetFailClosedSteadyStateAllocs pins the degraded no-context path
// (interned static reason, no collector) to zero allocations too — an
// attacker spamming a cold home must not be able to allocate on our side.
func TestFleetFailClosedSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	f := fleetForTest(t, Config{Metrics: obs.NewRegistry()})
	mustAddHome(t, f, HomeConfig{ID: "cold"})
	in := buildInstr(t, "window.open", "win-1")
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := f.Authorize(ctx, "cold", in); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		dec, err := f.Authorize(ctx, "cold", in)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Allowed {
			t.Fatalf("cold home allowed a sensitive op: %+v", dec)
		}
	})
	if allocs != 0 {
		t.Fatalf("fail-closed fleet Authorize allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkFleetAuthorize measures the steady-state per-home hot path.
func BenchmarkFleetAuthorize(b *testing.B) {
	f := fleetForTest(b, Config{Shards: 16, Metrics: obs.NewRegistry()})
	mustAddHome(b, f, HomeConfig{ID: "home-1"})
	if err := f.PushContext("home-1", legalCtx(b, dataset.ModelWindow)); err != nil {
		b.Fatal(err)
	}
	in := buildInstr(b, "window.open", "win-1")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Authorize(ctx, "home-1", in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetAuthorizeBatch measures the fleet-wide batch path at a
// realistic mixed-home fan-out.
func BenchmarkFleetAuthorizeBatch(b *testing.B) {
	const homes = 256
	f := fleetForTest(b, Config{Shards: 16, Metrics: obs.NewRegistry()})
	items := make([]BatchItem, homes)
	in := buildInstr(b, "window.open", "win-1")
	snap := legalCtx(b, dataset.ModelWindow)
	for i := 0; i < homes; i++ {
		id := homeID(i)
		mustAddHome(b, f, HomeConfig{ID: id})
		if err := f.PushContext(id, snap); err != nil {
			b.Fatal(err)
		}
		items[i] = BatchItem{Home: id, In: in}
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.AuthorizeBatch(ctx, items, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func homeID(i int) string {
	return "home-" + string(rune('a'+i/26%26)) + string(rune('a'+i%26)) + "x"
}
