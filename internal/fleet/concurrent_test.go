package fleet

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"iotsid/internal/dataset"
)

// TestFleetConcurrentPushAuthorize exercises the fleet's synchronisation
// story under the race detector: per-home context pushes racing
// fleet-wide batch authorizes racing single-home authorizes and model
// hot-swaps. Decisions under a racing push may legitimately land on either
// side of the swap; the test asserts absence of data races and of spurious
// errors, not specific outcomes.
func TestFleetConcurrentPushAuthorize(t *testing.T) {
	const homes = 32
	f := fleetForTest(t, Config{Shards: 4, FreshFor: 0})
	ids := make([]string, homes)
	legal := legalCtx(t, dataset.ModelWindow)
	attack := attackCtx(t, dataset.ModelWindow)
	for i := range ids {
		ids[i] = fmt.Sprintf("home-%02d", i)
		mustAddHome(t, f, HomeConfig{ID: ids[i]})
		if err := f.PushContext(ids[i], legal); err != nil {
			t.Fatal(err)
		}
	}
	open := buildInstr(t, "window.open", "w")
	status := buildInstr(t, "light.get_state", "l")

	var wg sync.WaitGroup
	// Pushers: every home flips between legal and attack context.
	for i := 0; i < homes; i++ {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				snap := legal
				if r%2 == 1 {
					snap = attack
				}
				if err := f.PushContext(id, snap); err != nil {
					t.Errorf("PushContext(%s): %v", id, err)
					return
				}
			}
		}(ids[i])
	}
	// Batch authorizers: fleet-wide sweeps.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			items := make([]BatchItem, homes)
			for i := range items {
				items[i] = BatchItem{Home: ids[i], In: open}
			}
			for r := 0; r < 20; r++ {
				out, err := f.AuthorizeBatch(context.Background(), items, 4)
				if err != nil {
					t.Errorf("AuthorizeBatch: %v", err)
					return
				}
				for i, res := range out {
					if res.Err != "" {
						t.Errorf("batch item %d: %s", i, res.Err)
						return
					}
				}
			}
		}()
	}
	// Single-home authorizers.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 100; r++ {
				id := ids[(g*31+r)%homes]
				if _, err := f.Authorize(context.Background(), id, status); err != nil {
					t.Errorf("Authorize(%s): %v", id, err)
					return
				}
			}
		}(g)
	}
	// Model hot-swapper: republish the window entry while readers judge.
	wg.Add(1)
	go func() {
		defer wg.Done()
		e, _ := f.Registry().Entry(dataset.ModelWindow)
		for r := 0; r < 25; r++ {
			if err := f.Registry().Swap(dataset.ModelWindow, e); err != nil {
				t.Errorf("Swap: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}
