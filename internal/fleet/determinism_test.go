package fleet

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"iotsid/internal/dataset"
	"iotsid/internal/instr"
	"iotsid/internal/sensor"
)

// modelOps maps each evaluated device model to one sensitive control op
// (the load mix the generator also uses).
var modelOps = map[dataset.Model]struct{ op, device string }{
	dataset.ModelWindow:  {"window.open", "win-1"},
	dataset.ModelAircon:  {"aircon.on", "ac-1"},
	dataset.ModelLight:   {"light.on", "lamp-1"},
	dataset.ModelCurtain: {"curtain.open", "cur-1"},
	dataset.ModelTV:      {"tv.on", "tv-1"},
	dataset.ModelKitchen: {"cooker.start", "rc-1"},
}

// seededBatches builds a deterministic multi-home instruction stream:
// steps × homes batch items with per-home rngs, mixing sensitive control
// ops under legal/attack scenes with status reads. The stream depends only
// on (seed, homes, steps) — never on fleet topology.
func seededBatches(t testing.TB, seed int64, homes, steps int) [][]BatchItem {
	t.Helper()
	models := dataset.Models()
	reg := instr.BuiltinRegistry()
	out := make([][]BatchItem, steps)
	rngs := make([]*rand.Rand, homes)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(seed + 9973*int64(i)))
	}
	for s := 0; s < steps; s++ {
		batch := make([]BatchItem, 0, homes)
		for i := 0; i < homes; i++ {
			rng := rngs[i]
			home := fmt.Sprintf("home-%04d", i)
			if rng.Float64() < 0.7 {
				m := models[rng.Intn(len(models))]
				spec := modelOps[m]
				in, err := reg.Build(spec.op, spec.device, instr.OriginUser, nil)
				if err != nil {
					t.Fatal(err)
				}
				var snap sensor.Snapshot
				if rng.Float64() < 0.3 {
					snap, err = dataset.AttackScene(m, rng)
				} else {
					snap, err = dataset.LegalScene(m, rng)
				}
				if err != nil {
					t.Fatal(err)
				}
				batch = append(batch, BatchItem{Home: home, In: in, Context: &snap})
			} else {
				in, err := reg.Build("light.get_state", "lamp-1", instr.OriginUser, nil)
				if err != nil {
					t.Fatal(err)
				}
				batch = append(batch, BatchItem{Home: home, In: in})
			}
		}
		out[s] = batch
	}
	return out
}

// runStream drives the batches through a fresh fleet with the given
// topology and flattens every decision into a comparable string stream.
func runStream(t testing.TB, shards, workers, homes int, batches [][]BatchItem) []string {
	t.Helper()
	f := fleetForTest(t, Config{Shards: shards})
	for i := 0; i < homes; i++ {
		mustAddHome(t, f, HomeConfig{ID: fmt.Sprintf("home-%04d", i)})
	}
	var stream []string
	for _, batch := range batches {
		out, err := f.AuthorizeBatch(context.Background(), batch, workers)
		if err != nil {
			t.Fatalf("AuthorizeBatch: %v", err)
		}
		for i, r := range out {
			stream = append(stream, fmt.Sprintf("%s %s allowed=%t sensitive=%t model=%s err=%q",
				batch[i].Home, batch[i].In.Op,
				r.Decision.Allowed, r.Decision.Sensitive, r.Decision.Model, r.Err))
		}
	}
	return stream
}

// TestShardRebalanceDeterminism is the fleet's determinism contract: the
// same seeded request stream produces a bit-identical decision stream at
// shard counts 1, 4, and 16 — resharding moves homes between locks, never
// between answers.
func TestShardRebalanceDeterminism(t *testing.T) {
	const homes, steps = 60, 5
	batches := seededBatches(t, 1234, homes, steps)
	base := runStream(t, 1, 4, homes, batches)
	if len(base) != homes*steps {
		t.Fatalf("stream carries %d decisions, want %d", len(base), homes*steps)
	}
	for _, shards := range []int{4, 16} {
		got := runStream(t, shards, 4, homes, batches)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("shards=%d diverges at decision %d:\n  1 shard : %s\n  %d shards: %s",
					shards, i, base[i], shards, got[i])
			}
		}
	}
}

// TestWorkerCountDeterminism pins the other half of the contract: batch
// fan-out width never changes the decisions.
func TestWorkerCountDeterminism(t *testing.T) {
	const homes, steps = 40, 4
	batches := seededBatches(t, 777, homes, steps)
	base := runStream(t, 8, 1, homes, batches)
	for _, workers := range []int{2, 8, 32} {
		got := runStream(t, 8, workers, homes, batches)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d diverges at decision %d:\n  1 worker : %s\n  %d workers: %s",
					workers, i, base[i], workers, got[i])
			}
		}
	}
}
