//go:build race

package fleet

// raceEnabled lets allocation-count tests stand down under the race
// detector, whose instrumentation changes allocation behaviour.
const raceEnabled = true
