package fleet

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"iotsid/internal/core"
	"iotsid/internal/instr"
	"iotsid/internal/obs"
	"iotsid/internal/par"
	"iotsid/internal/resilience"
	"iotsid/internal/sensor"
	"iotsid/internal/seq"
	"iotsid/internal/trust"
)

// Fail-closed reasons are fixed strings so the degraded path stays cheap
// and the decision stream deterministic.
const (
	reasonNoContext  = "sensitive instruction rejected (fail closed): home has pushed no sensor context"
	reasonStaleCtx   = "sensitive instruction rejected (fail closed): home sensor context is beyond its freshness budget"
	reasonPullFailed = "sensitive instruction rejected (fail closed): home context pull failed and no fresh pushed context"
	reasonLowTrust   = "sensitive instruction rejected (fail closed): home context source below trust threshold"
	reasonSeqAnomaly = "sensitive instruction rejected (fail closed): instruction sequence outside trained temporal profile"
)

// Config wires a fleet.
type Config struct {
	// Detector is the shared sensitive-command detector (sensitivity is a
	// property of the instruction set, not of any one home).
	Detector *core.Detector
	// Models is the shared compiled-tree registry. Every home judges
	// against the same per-device-model trees.
	Models *ModelRegistry
	// Shards is the number of per-home state shards (default 16). Homes
	// are placed by a jump consistent hash of their ID, so growing the
	// shard count moves the minimum number of homes.
	Shards int
	// HomeLogCapacity bounds each home's ring decision log (default 64
	// entries — the per-tenant audit tail, not the fleet archive).
	HomeLogCapacity int
	// FreshFor is the default per-home context freshness budget: a pushed
	// snapshot older than this fails sensitive instructions closed. Zero
	// means pushes never expire (the load generator pushes fresh context
	// with every sensitive instruction). Overridable per home.
	FreshFor time.Duration
	// Metrics, when non-nil, instruments the fleet: decisions by shard and
	// outcome, context pushes, batch sizes, and (capped) per-tenant
	// decision counters. Series are pre-registered so the hot path stays
	// allocation-free.
	Metrics *obs.Registry
	// TenantMetricsLimit caps how many homes get their own labeled
	// decision series (registered at AddHome, first come first served).
	// Zero disables per-tenant series: an unbounded home label would make
	// the exposition scale with the fleet.
	TenantMetricsLimit int
	// Now is the staleness clock; defaults to time.Now. Injectable so
	// freshness tests are deterministic.
	Now func() time.Time
}

// Fleet is a sharded multi-tenant authorization service: per-home state
// spread over consistent-hash shards, one shared judger over the shared
// model registry.
type Fleet struct {
	shards   []shard
	detector *core.Detector
	judger   *core.Judger
	models   *ModelRegistry
	metrics  *fleetMetrics
	now      func() time.Time

	logCap     int
	freshFor   time.Duration
	tenantCap  int
	homeCount  atomic.Int64
	tenantSeen atomic.Int64
	seqAnoms   atomic.Uint64
}

// shard owns a disjoint subset of the fleet's homes. The RWMutex guards
// only the home map (membership); per-home state has its own
// synchronisation, so two homes in one shard still authorize concurrently.
type shard struct {
	mu    sync.RWMutex
	homes map[string]*Home
	_     [24]byte // keep neighbouring shard locks off one cache line
}

// New assembles a fleet.
func New(cfg Config) (*Fleet, error) {
	if cfg.Detector == nil {
		return nil, fmt.Errorf("fleet: config needs a detector")
	}
	if cfg.Models == nil {
		return nil, fmt.Errorf("fleet: config needs a model registry")
	}
	if cfg.Shards == 0 {
		cfg.Shards = 16
	}
	if cfg.Shards < 0 || cfg.Shards > 1<<16 {
		return nil, fmt.Errorf("fleet: shard count %d outside [1, 65536]", cfg.Shards)
	}
	if cfg.HomeLogCapacity == 0 {
		cfg.HomeLogCapacity = 64
	}
	if cfg.HomeLogCapacity < 0 {
		return nil, fmt.Errorf("fleet: negative home log capacity %d", cfg.HomeLogCapacity)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	j, err := core.NewJudger(cfg.Detector, cfg.Models)
	if err != nil {
		return nil, err
	}
	f := &Fleet{
		shards:    make([]shard, cfg.Shards),
		detector:  cfg.Detector,
		judger:    j,
		models:    cfg.Models,
		metrics:   newFleetMetrics(cfg.Metrics, cfg.Shards),
		now:       cfg.Now,
		logCap:    cfg.HomeLogCapacity,
		freshFor:  cfg.FreshFor,
		tenantCap: cfg.TenantMetricsLimit,
	}
	for i := range f.shards {
		f.shards[i].homes = make(map[string]*Home)
	}
	return f, nil
}

// Registry exposes the shared compiled-model registry.
func (f *Fleet) Registry() *ModelRegistry { return f.models }

// ShardCount reports the configured shard count.
func (f *Fleet) ShardCount() int { return len(f.shards) }

// HomeCount reports the number of registered homes.
func (f *Fleet) HomeCount() int { return int(f.homeCount.Load()) }

// HomeConfig registers one tenant.
type HomeConfig struct {
	// ID is the tenant key; it selects the shard and must be unique.
	ID string
	// Collector, when non-nil, is the pull fallback: if the home's pushed
	// context is missing or stale, the fleet collects through it (guarded
	// by Breaker when set) instead of failing closed immediately.
	Collector core.Collector
	// Breaker guards Collector against a flapping gateway; optional.
	Breaker *resilience.Breaker
	// FreshFor overrides the fleet's default context freshness budget for
	// this home; zero inherits the fleet default.
	FreshFor time.Duration
	// Trust, when non-nil, arms the sensor-trust gate for this home: every
	// context push is reported into the engine as TrustSource, and while
	// that source's score sits below the engine's threshold, sensitive
	// instructions fail closed with an interned reason (one atomic flag
	// load on the hot path). Engines are per-home — tenants must not share
	// behavioral baselines.
	Trust *trust.Engine
	// TrustSource names the engine source the home's pushes observe as;
	// empty defaults to the engine's sole source (an error if the engine
	// declares several).
	TrustSource string
	// Sequence, when non-nil, arms the temporal sequence judge for this
	// home: judged decisions fold into a bounded per-home history ring and
	// a sensitive instruction must pass both the compiled tree and the
	// sequence judge (fail closed on anomaly). Tables are read-only and
	// safely shared across homes; the history ring is per-home.
	Sequence *seq.Set
}

// Home is one tenant's state: the latest pushed sensor context behind an
// atomic pointer, a bounded ring decision log, and the optional pull path.
type Home struct {
	id        string
	shardIdx  uint32
	freshFor  time.Duration
	view      atomic.Pointer[homeView]
	log       homeLog
	collector core.Collector
	breaker   *resilience.Breaker

	// trust, when non-nil, scores this home's pushed context; trustIdx is
	// trustSource's index in the engine, resolved once at AddHome.
	trust       *trust.Engine
	trustIdx    int
	trustSource string

	// seqSet, when non-nil, is this home's sequence judge (shared trained
	// tables, per-home history ring).
	seqSet   *seq.Set
	seqTrack seq.Tracker

	pushes    atomic.Uint64
	decisions atomic.Uint64
	tenant    [outcomeCount]*obs.Counter // nil cells when not individually instrumented
}

// homeView is one immutable published context: the snapshot plus the
// receive stamp the freshness budget is differenced against.
type homeView struct {
	snap sensor.Snapshot
	at   time.Time
}

// ID returns the home's tenant key.
func (h *Home) ID() string { return h.id }

// Pushes reports how many context pushes the home has accepted.
func (h *Home) Pushes() uint64 { return h.pushes.Load() }

// Decisions reports how many instructions the home has had judged.
func (h *Home) Decisions() uint64 { return h.decisions.Load() }

// TrustScore reports the home's context-source trust score; ok is false
// when the home has no trust engine wired.
func (h *Home) TrustScore() (float64, bool) {
	if h.trust == nil {
		return 0, false
	}
	return h.trust.ScoreIdx(h.trustIdx), true
}

// LowTrust reports whether the home's context source sits below its trust
// threshold (always false without an engine).
func (h *Home) LowTrust() bool {
	return h.trust != nil && !h.trust.TrustedIdx(h.trustIdx)
}

// AddHome registers a tenant and returns its handle.
func (f *Fleet) AddHome(cfg HomeConfig) (*Home, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("fleet: home needs an ID")
	}
	if cfg.FreshFor == 0 {
		cfg.FreshFor = f.freshFor
	}
	si := f.shardIndex(cfg.ID)
	h := &Home{
		id:        cfg.ID,
		shardIdx:  si,
		freshFor:  cfg.FreshFor,
		collector: cfg.Collector,
		breaker:   cfg.Breaker,
		seqSet:    cfg.Sequence,
	}
	if cfg.Trust != nil {
		src := cfg.TrustSource
		if src == "" {
			if cfg.Trust.Len() != 1 {
				return nil, fmt.Errorf("fleet: home %q: trust engine declares %d sources, name one via TrustSource", cfg.ID, cfg.Trust.Len())
			}
			src = cfg.Trust.Sources()[0]
		}
		idx, ok := cfg.Trust.Index(src)
		if !ok {
			return nil, fmt.Errorf("fleet: home %q: trust engine does not declare source %q", cfg.ID, src)
		}
		h.trust = cfg.Trust
		h.trustIdx = idx
		h.trustSource = src
	}
	h.log.buf = make([]core.LogEntry, f.logCap)
	s := &f.shards[si]
	s.mu.Lock()
	if _, dup := s.homes[cfg.ID]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("fleet: home %q already registered", cfg.ID)
	}
	// Claim a tenant-metrics slot only after the duplicate check — a
	// rejected registration must not burn one of the capped slots or leave
	// an orphan labeled series in the registry. Resolving the cells under
	// the shard lock publishes them before the home is visible to readers.
	if f.metrics != nil && f.tenantCap > 0 && f.tenantSeen.Load() < int64(f.tenantCap) {
		if f.tenantSeen.Add(1) <= int64(f.tenantCap) {
			h.tenant = f.metrics.tenantCells(cfg.ID)
		}
	}
	s.homes[cfg.ID] = h
	s.mu.Unlock()
	f.metrics.observeHomes(f.homeCount.Add(1))
	return h, nil
}

// RemoveHome deregisters a tenant; its in-flight authorizations complete
// against the handle they already hold.
func (f *Fleet) RemoveHome(id string) bool {
	s := &f.shards[f.shardIndex(id)]
	s.mu.Lock()
	_, ok := s.homes[id]
	if ok {
		delete(s.homes, id)
	}
	s.mu.Unlock()
	if ok {
		f.metrics.observeHomes(f.homeCount.Add(-1))
	}
	return ok
}

// Home looks a tenant up.
func (f *Fleet) Home(id string) (*Home, bool) {
	s := &f.shards[f.shardIndex(id)]
	s.mu.RLock()
	h, ok := s.homes[id]
	s.mu.RUnlock()
	return h, ok
}

// HomeIDs lists the registered tenants, sorted (a full-fleet walk — for
// reports and tests, not the hot path).
func (f *Fleet) HomeIDs() []string {
	out := make([]string, 0, f.homeCount.Load())
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.RLock()
		for id := range s.homes {
			out = append(out, id)
		}
		s.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// LowTrustHomes counts registered homes whose context source currently
// sits below its trust threshold (a full-fleet walk — for the stats
// endpoint and reports, not the hot path).
func (f *Fleet) LowTrustHomes() int {
	n := 0
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.RLock()
		for _, h := range s.homes {
			if h.LowTrust() {
				n++
			}
		}
		s.mu.RUnlock()
	}
	return n
}

// shardIndex places a home ID by jump consistent hash (Lamping & Veach)
// over an FNV-64a of the ID: deterministic, allocation-free, and minimal
// movement when the shard count changes.
//
//iot:hotpath
func (f *Fleet) shardIndex(id string) uint32 {
	return jumpHash(fnv64a(id), len(f.shards))
}

// fnv64a hashes a home ID without allocating.
//
//iot:hotpath
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// jumpHash is the jump consistent hash of Lamping & Veach ("A Fast,
// Minimal Memory, Consistent Hash Algorithm"): maps key uniformly onto
// [0, buckets) and relocates only ~1/buckets of keys when buckets grows.
//
//iot:hotpath
func jumpHash(key uint64, buckets int) uint32 {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return uint32(b)
}

// PushContext publishes a home's latest sensor context. This is the
// event-driven write path: one immutable view behind an atomic pointer,
// stamped with the fleet clock so freshness budgets difference receive
// times, not device times.
func (f *Fleet) PushContext(id string, snap sensor.Snapshot) error {
	h, ok := f.Home(id)
	if !ok {
		return fmt.Errorf("fleet: unknown home %q", id)
	}
	f.push(h, snap)
	return nil
}

// push stores the view on a known home handle.
//
//iot:hotpath
func (f *Fleet) push(h *Home, snap sensor.Snapshot) {
	now := f.now()
	if h.trust != nil {
		// Score on the device's event time when it carries one (the
		// behavioral fingerprint cares about the sensor's own timeline);
		// fall back to receive time for unstamped pushes.
		at := snap.At
		if at.IsZero() {
			at = now
		}
		h.trust.Observe(h.trustSource, snap, at) //iot:allow hotcall per-push trust scoring holds a lock by design; the authorize fast path never calls it
	}
	v := &homeView{snap: snap, at: now}
	h.view.Store(v)
	h.pushes.Add(1)
	f.metrics.observePush()
}

// Authorize judges one instruction for one home — the fleet's per-home hot
// path. Steady state (home known, context pushed within budget) is: shard
// read-lock map lookup, one atomic view load, the shared judger's
// zero-allocation judge, a ring-log append and two counter increments.
//
//iot:hotpath
//iot:failclosed
func (f *Fleet) Authorize(ctx context.Context, homeID string, in instr.Instruction) (core.Decision, error) {
	if err := ctx.Err(); err != nil {
		return core.Decision{}, err
	}
	h, ok := f.Home(homeID)
	if !ok {
		//iot:allow hotalloc error path, never taken steady-state; the AllocsPerRun gate proves the allow path is 0-alloc
		return core.Decision{}, fmt.Errorf("fleet: unknown home %q", homeID)
	}
	return f.authorizeHome(ctx, h, in)
}

// authorizeHome judges against the home's published view, falling into the
// degraded path when the view is missing or beyond its freshness budget.
//
//iot:hotpath
//iot:failclosed
func (f *Fleet) authorizeHome(ctx context.Context, h *Home, in instr.Instruction) (core.Decision, error) {
	v := h.view.Load()
	if v == nil || (h.freshFor > 0 && f.now().Sub(v.at) > h.freshFor) {
		return f.authorizeDegraded(ctx, h, in, v)
	}
	if h.trust != nil && !h.trust.TrustedIdx(h.trustIdx) {
		// Fresh but not believable: a spoofed feed that keeps pushing is
		// the one degraded shape freshness budgets cannot see. Same
		// contract as the other degraded paths — sensitive fails closed
		// with an interned reason, non-sensitive still judges.
		if f.detector.IsSensitive(in) {
			dec := core.Decision{Allowed: false, Sensitive: true, Reason: reasonLowTrust}
			f.observe(h, in, dec, outcomeFailClosed)
			return dec, nil
		}
		return f.judgeNonSensitive(h, in, v)
	}
	return f.judgeAndLog(h, in, v.snap)
}

// judgeAndLog runs the shared judger and records the decision in the
// home's ring log, the shard decision counters, and the per-tenant cells.
//
//iot:hotpath
//iot:failclosed
func (f *Fleet) judgeAndLog(h *Home, in instr.Instruction, snap sensor.Snapshot) (core.Decision, error) {
	dec, err := f.judger.Judge(in, snap)
	if err != nil {
		return core.Decision{}, err
	}
	if h.seqSet != nil {
		// Combined verdict, fail closed: the sequence judge can only
		// revoke an allow. The tracker write is a fixed ring slot under the
		// home's sequence mutex — no allocation.
		at := snap.At
		if at.IsZero() {
			at = f.now()
		}
		if v := h.seqSet.ObserveJudge(&h.seqTrack, dec.Model, dec.Sensitive, dec.Allowed, snap, at); v.Anomalous {
			dec = core.Decision{Allowed: false, Sensitive: true, Model: dec.Model, Reason: reasonSeqAnomaly}
			f.seqAnoms.Add(1)
			f.metrics.observeSeqAnomaly()
		}
	}
	f.observe(h, in, dec, outcomeOf(dec))
	return dec, nil
}

// SeqAnomalies reports how many sensitive instructions the sequence judge
// rejected fleet-wide after the static tree allowed them.
func (f *Fleet) SeqAnomalies() uint64 { return f.seqAnoms.Load() }

// observe is the shared decision bookkeeping tail.
//
//iot:hotpath
func (f *Fleet) observe(h *Home, in instr.Instruction, dec core.Decision, outcome int) {
	h.decisions.Add(1)
	h.log.append(in, dec)
	f.metrics.observeDecision(h.shardIdx, outcome)
	if c := h.tenant[outcome]; c != nil {
		c.Inc()
	}
}

// authorizeDegraded is the cold path: no pushed context, or a stale one.
// With a pull collector wired the fleet falls back to polling (behind the
// home's breaker); a failed pull is the same epistemic state as no
// context at all, so every degraded shape converges on one contract:
// sensitive instructions fail closed with an interned reason (recorded in
// the ring log and the fail_closed counters like any other decision),
// non-sensitive instructions are still judged on whatever the home last
// pushed — the same bounded-staleness / fail-closed trade the single-home
// framework makes.
//
//iot:failclosed
func (f *Fleet) authorizeDegraded(ctx context.Context, h *Home, in instr.Instruction, v *homeView) (core.Decision, error) {
	reason := reasonNoContext
	if v != nil {
		reason = reasonStaleCtx
	}
	if h.collector != nil {
		snap, err := f.collectPull(ctx, h)
		if err == nil {
			return f.judgeAndLog(h, in, snap)
		}
		reason = reasonPullFailed
	}
	if !f.detector.IsSensitive(in) {
		return f.judgeNonSensitive(h, in, v)
	}
	dec := core.Decision{Allowed: false, Sensitive: true, Reason: reason}
	f.observe(h, in, dec, outcomeFailClosed)
	return dec, nil
}

// judgeNonSensitive judges a non-sensitive instruction on the last pushed
// view (possibly stale, possibly absent — the judger allows non-sensitive
// instructions without consulting features).
func (f *Fleet) judgeNonSensitive(h *Home, in instr.Instruction, v *homeView) (core.Decision, error) {
	var snap sensor.Snapshot
	if v != nil {
		snap = v.snap
	}
	return f.judgeAndLog(h, in, snap)
}

// collectPull polls the home's collector, guarded by its breaker.
func (f *Fleet) collectPull(ctx context.Context, h *Home) (sensor.Snapshot, error) {
	if h.breaker != nil {
		if err := h.breaker.Allow(); err != nil {
			return sensor.Snapshot{}, err
		}
	}
	snap, err := h.collector.Collect(ctx)
	if h.breaker != nil {
		h.breaker.Record(err)
	}
	if err != nil {
		return sensor.Snapshot{}, err
	}
	f.push(h, snap)
	return snap, nil
}

// BatchItem is one instruction in a fleet batch, optionally carrying the
// home's newest context ("push before judge" — the device gateway pattern
// of one round trip per decision window).
type BatchItem struct {
	Home    string
	In      instr.Instruction
	Context *sensor.Snapshot
}

// BatchResult is one item's outcome. Err is per-item so one tenant's bad
// request (unknown home, unjudgeable instruction) cannot abort another
// tenant's traffic — batch-level errors are reserved for cancellation.
type BatchResult struct {
	Decision core.Decision
	Err      string
}

// AuthorizeBatch judges a mixed-home batch, fanned out across shards on at
// most workers goroutines (Workers-resolved: 0 means GOMAXPROCS). Within a
// shard, items run in input order, so each home's context pushes and
// judgments serialise exactly as submitted; results land at their input
// index. Decisions depend only on item content and order, never on the
// shard/worker schedule, so seeded batch streams are bit-identical at any
// shard or worker count.
//
//iot:failclosed
func (f *Fleet) AuthorizeBatch(ctx context.Context, items []BatchItem, workers int) ([]BatchResult, error) {
	if len(items) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f.metrics.observeBatch(len(items))
	out := make([]BatchResult, len(items))
	buckets := make([][]int, len(f.shards))
	for i := range items {
		si := f.shardIndex(items[i].Home)
		buckets[si] = append(buckets[si], i)
	}
	active := make([]int, 0, len(buckets))
	for si := range buckets {
		if len(buckets[si]) > 0 {
			active = append(active, si)
		}
	}
	err := par.Do(len(active), workers, func(k int) error {
		for _, idx := range buckets[active[k]] {
			if err := ctx.Err(); err != nil {
				return err
			}
			it := &items[idx]
			h, ok := f.Home(it.Home)
			if !ok {
				out[idx] = BatchResult{Err: "unknown home " + it.Home}
				continue
			}
			if it.Context != nil {
				f.push(h, *it.Context)
			}
			dec, err := f.authorizeHome(ctx, h, it.In)
			if err != nil {
				out[idx] = BatchResult{Err: err.Error()}
				continue
			}
			out[idx] = BatchResult{Decision: dec}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// homeLog is a per-home bounded ring of decisions — the tenant's audit
// tail. Appends take the home's own mutex only, so logging never couples
// tenants; a zero capacity disables retention entirely.
type homeLog struct {
	mu   sync.Mutex
	buf  []core.LogEntry
	next uint64
}

// append records one decision (no-op at zero capacity).
//
//iot:hotpath
func (l *homeLog) append(in instr.Instruction, dec core.Decision) {
	if len(l.buf) == 0 {
		return
	}
	l.mu.Lock()
	l.next++
	l.buf[(l.next-1)%uint64(len(l.buf))] = core.LogEntry{
		Seq: l.next, Op: in.Op, DeviceID: in.DeviceID, Decision: dec,
	}
	l.mu.Unlock()
}

// snapshot copies the retained entries, oldest first.
func (l *homeLog) snapshot() []core.LogEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	retained := uint64(len(l.buf))
	if n < retained {
		retained = n
	}
	out := make([]core.LogEntry, 0, retained)
	for j := n - retained; j < n; j++ {
		out = append(out, l.buf[j%uint64(len(l.buf))])
	}
	return out
}

// Log returns a copy of the home's retained decisions, oldest first.
func (h *Home) Log() []core.LogEntry { return h.log.snapshot() }

// LogRecent returns the newest n retained decisions, oldest first.
func (h *Home) LogRecent(n int) []core.LogEntry {
	all := h.log.snapshot()
	if n < 0 {
		n = 0
	}
	if n > len(all) {
		n = len(all)
	}
	return all[len(all)-n:]
}
