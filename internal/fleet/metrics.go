package fleet

import (
	"strconv"

	"iotsid/internal/core"
	"iotsid/internal/obs"
)

// Metric names the fleet layer owns. Label cardinality follows the repo's
// pre-registration rule: the shard label is bounded by the configured shard
// count, and the per-tenant family is capped by Config.TenantMetricsLimit —
// an unbounded home-ID label would make the exposition scale with the
// fleet, so tenant series are an explicit opt-in, registered at AddHome
// time (never on the hot path).
const (
	metricHomes         = "iotsid_fleet_homes"
	metricPushes        = "iotsid_fleet_context_pushes_total"
	metricDecisions     = "iotsid_fleet_decisions_total"
	metricBatches       = "iotsid_fleet_batches_total"
	metricBatchItems    = "iotsid_fleet_batch_items_total"
	metricTenantDecided = "iotsid_fleet_tenant_decisions_total"
	metricSeqAnomalies  = "iotsid_fleet_seq_anomalies_total"
)

// Decision outcome indices for the pre-registered counter cells (same
// vocabulary as the core framework metrics).
const (
	outcomeAllow = iota
	outcomeReject
	outcomeFailClosed
	outcomeCount
)

var outcomeNames = [outcomeCount]string{"allow", "reject", "fail_closed"}

// fleetMetrics holds the fleet's pre-registered series: one
// (shard, outcome) counter cell per shard so the hot path counts itself
// with a single atomic add and zero lookups. A nil *fleetMetrics disables
// instrumentation; every method is nil-receiver safe.
type fleetMetrics struct {
	homes        *obs.Gauge
	pushes       *obs.Counter
	decisions    [][outcomeCount]*obs.Counter // [shard][outcome]
	batches      *obs.Counter
	batchItems   *obs.Counter
	tenants      *obs.CounterVec
	seqAnomalies *obs.Counter
}

// newFleetMetrics pre-registers the fleet series for a given shard count.
func newFleetMetrics(reg *obs.Registry, shards int) *fleetMetrics {
	if reg == nil {
		return nil
	}
	m := &fleetMetrics{
		homes: reg.NewGauge(metricHomes,
			"Homes currently registered with the fleet."),
		pushes: reg.NewCounter(metricPushes,
			"Per-home sensor context pushes accepted by the fleet."),
		batches: reg.NewCounter(metricBatches,
			"Fleet AuthorizeBatch invocations."),
		batchItems: reg.NewCounter(metricBatchItems,
			"Instructions carried by fleet AuthorizeBatch invocations."),
		tenants: reg.NewCounterVec(metricTenantDecided,
			"Authorization decisions by home and outcome (registered for the first TenantMetricsLimit homes only — the label is capped, not fleet-wide).",
			"home", "outcome"),
		seqAnomalies: reg.NewCounter(metricSeqAnomalies,
			"Sensitive instructions rejected fleet-wide by the sequence judge after the static tree allowed them."),
	}
	vec := reg.NewCounterVec(metricDecisions,
		"Authorization decisions by fleet shard and outcome (allow, reject, fail_closed).",
		"shard", "outcome")
	m.decisions = make([][outcomeCount]*obs.Counter, shards)
	for s := 0; s < shards; s++ {
		label := strconv.Itoa(s)
		for o := 0; o < outcomeCount; o++ {
			m.decisions[s][o] = vec.With(label, outcomeNames[o])
		}
	}
	return m
}

// tenantCells pre-resolves one home's (outcome) counter cells; called at
// AddHome time for the first TenantMetricsLimit homes.
func (m *fleetMetrics) tenantCells(home string) [outcomeCount]*obs.Counter {
	var cells [outcomeCount]*obs.Counter
	if m == nil {
		return cells
	}
	for o := 0; o < outcomeCount; o++ {
		cells[o] = m.tenants.With(home, outcomeNames[o])
	}
	return cells
}

// outcomeOf maps a judged decision onto the counter row.
func outcomeOf(dec core.Decision) int {
	if dec.Allowed {
		return outcomeAllow
	}
	return outcomeReject
}

// observeDecision counts one judged decision on its shard row.
//
//iot:hotpath
func (m *fleetMetrics) observeDecision(shard uint32, outcome int) {
	if m == nil {
		return
	}
	m.decisions[shard][outcome].Inc()
}

// observePush counts one accepted context push.
//
//iot:hotpath
func (m *fleetMetrics) observePush() {
	if m == nil {
		return
	}
	m.pushes.Inc()
}

// observeSeqAnomaly counts one sequence-judge rejection.
//
//iot:hotpath
func (m *fleetMetrics) observeSeqAnomaly() {
	if m == nil {
		return
	}
	m.seqAnomalies.Inc()
}

// observeBatch counts one batch and its item load.
func (m *fleetMetrics) observeBatch(items int) {
	if m == nil {
		return
	}
	m.batches.Inc()
	m.batchItems.Add(uint64(items))
}

// observeHomes tracks the registered-home gauge.
func (m *fleetMetrics) observeHomes(n int64) {
	if m == nil {
		return
	}
	m.homes.Set(n)
}
