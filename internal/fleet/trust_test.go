package fleet

import (
	"context"
	"strings"
	"testing"
	"time"

	"iotsid/internal/dataset"
	"iotsid/internal/obs"
	"iotsid/internal/sensor"
	"iotsid/internal/trust"
)

// trustEngine builds a single-source per-home engine tuned so two
// invariant violations cross the threshold.
func trustEngine(t testing.TB) *trust.Engine {
	t.Helper()
	e, err := trust.NewEngine(trust.Config{Threshold: 0.5, Decay: 0.7},
		trust.SourceConfig{Name: "push", Required: true})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// corruptCtx is the legal window scene with a physically impossible aqi —
// every push fires the aqi_range invariant.
func corruptCtx(t testing.TB, at time.Time) sensor.Snapshot {
	t.Helper()
	s := legalCtx(t, dataset.ModelWindow).Clone()
	s.At = at
	s.Set(sensor.FeatAirQuality, sensor.Number(-1))
	return s
}

// TestFleetTrustFailClosed is the fleet tentpole gate: a spoofed home
// keeps pushing fresh, well-typed, physically impossible context; its
// trust collapses and sensitive instructions fail closed with the
// interned low-trust reason while an untouched neighbour home and the
// spoofed home's own non-sensitive traffic keep working.
func TestFleetTrustFailClosed(t *testing.T) {
	f := fleetForTest(t, Config{Shards: 4})
	spoofed := mustAddHome(t, f, HomeConfig{ID: "spoofed", Trust: trustEngine(t)})
	mustAddHome(t, f, HomeConfig{ID: "honest"})
	ctx := context.Background()
	open := buildInstr(t, "window.open", "win-1")
	clean := legalCtx(t, dataset.ModelWindow)

	for _, id := range []string{"spoofed", "honest"} {
		if err := f.PushContext(id, clean); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := f.Authorize(ctx, "spoofed", open)
	if err != nil || !dec.Allowed {
		t.Fatalf("clean push on trust-armed home: dec=%+v err=%v", dec, err)
	}
	if score, ok := spoofed.TrustScore(); !ok || score != 1 {
		t.Fatalf("TrustScore after clean push = %v, %v", score, ok)
	}
	if got := f.LowTrustHomes(); got != 0 {
		t.Fatalf("LowTrustHomes after clean pushes = %d, want 0", got)
	}

	// The attack: two impossible pushes, both fresh by every clock.
	at := clean.At
	for i := 0; i < 2; i++ {
		at = at.Add(time.Second)
		if err := f.PushContext("spoofed", corruptCtx(t, at)); err != nil {
			t.Fatal(err)
		}
	}
	if !spoofed.LowTrust() {
		score, _ := spoofed.TrustScore()
		t.Fatalf("spoofed home still trusted at score %v", score)
	}

	dec, err = f.Authorize(ctx, "spoofed", open)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Allowed {
		t.Fatal("sensitive instruction allowed on a low-trust home")
	}
	if dec.Reason != reasonLowTrust {
		t.Fatalf("reason = %q, want the interned low-trust reason", dec.Reason)
	}

	// Non-sensitive traffic on the spoofed home still judges...
	dec, err = f.Authorize(ctx, "spoofed", buildInstr(t, "light.get_state", "lamp-1"))
	if err != nil || !dec.Allowed {
		t.Fatalf("non-sensitive on low-trust home: dec=%+v err=%v", dec, err)
	}
	// ...and the honest neighbour is untouched by its tenant's collapse.
	dec, err = f.Authorize(ctx, "honest", open)
	if err != nil || !dec.Allowed {
		t.Fatalf("honest home after neighbour collapse: dec=%+v err=%v", dec, err)
	}
	if got := f.LowTrustHomes(); got != 1 {
		t.Fatalf("LowTrustHomes = %d, want 1", got)
	}
	if _, ok := (&Home{}).TrustScore(); ok {
		t.Fatal("TrustScore on an engine-less home reported ok")
	}
}

// TestFleetTrustValidation: AddHome must resolve the trust source up
// front — authorization paths never validate.
func TestFleetTrustValidation(t *testing.T) {
	f := fleetForTest(t, Config{})
	if _, err := f.AddHome(HomeConfig{ID: "h1", Trust: trustEngine(t), TrustSource: "nope"}); err == nil ||
		!strings.Contains(err.Error(), "does not declare") {
		t.Fatalf("unknown TrustSource accepted: %v", err)
	}
	two, err := trust.NewEngine(trust.Config{},
		trust.SourceConfig{Name: "a"}, trust.SourceConfig{Name: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddHome(HomeConfig{ID: "h2", Trust: two}); err == nil ||
		!strings.Contains(err.Error(), "TrustSource") {
		t.Fatalf("ambiguous default TrustSource accepted: %v", err)
	}
	h, err := f.AddHome(HomeConfig{ID: "h3", Trust: two, TrustSource: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if h.trustSource != "b" {
		t.Fatalf("trustSource = %q, want b", h.trustSource)
	}
}

// TestFleetTrustSteadyStateAllocs extends the fleet alloc gate with the
// per-home trust check armed: still zero allocations per Authorize.
func TestFleetTrustSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	f := fleetForTest(t, Config{
		Shards:             8,
		Metrics:            obs.NewRegistry(),
		TenantMetricsLimit: 4,
	})
	mustAddHome(t, f, HomeConfig{ID: "home-1", Trust: trustEngine(t)})
	if err := f.PushContext("home-1", legalCtx(t, dataset.ModelWindow)); err != nil {
		t.Fatal(err)
	}
	in := buildInstr(t, "window.open", "win-1")
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := f.Authorize(ctx, "home-1", in); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		dec, err := f.Authorize(ctx, "home-1", in)
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Allowed {
			t.Fatalf("steady-state authorize rejected: %+v", dec)
		}
	})
	if allocs != 0 {
		t.Fatalf("trust-armed fleet Authorize allocates %.1f/op, want 0", allocs)
	}
}

// TestFleetTrustFailClosedAllocs pins the low-trust rejection itself to
// zero allocations: a spoofed feed hammering sensitive ops must not
// allocate on our side either.
func TestFleetTrustFailClosedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	f := fleetForTest(t, Config{Metrics: obs.NewRegistry()})
	mustAddHome(t, f, HomeConfig{ID: "spoofed", Trust: trustEngine(t)})
	clean := legalCtx(t, dataset.ModelWindow)
	if err := f.PushContext("spoofed", clean); err != nil {
		t.Fatal(err)
	}
	at := clean.At
	for i := 0; i < 2; i++ {
		at = at.Add(time.Second)
		if err := f.PushContext("spoofed", corruptCtx(t, at)); err != nil {
			t.Fatal(err)
		}
	}
	in := buildInstr(t, "window.open", "win-1")
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := f.Authorize(ctx, "spoofed", in); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		dec, err := f.Authorize(ctx, "spoofed", in)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Allowed || dec.Reason != reasonLowTrust {
			t.Fatalf("low-trust home decision: %+v", dec)
		}
	})
	if allocs != 0 {
		t.Fatalf("low-trust fail-closed Authorize allocates %.1f/op, want 0", allocs)
	}
}
