// Package fleet scales the single-home detection framework of internal/core
// to a multi-tenant deployment: one server fronting a large population of
// smart homes. Three properties drive the design.
//
// Sharded per-home state: every home's mutable state (its pushed sensor
// context, its ring decision log, its optional pull collector and breaker)
// lives in exactly one shard, selected by a jump consistent hash of the
// home ID. Cross-home traffic therefore never contends on one mutex, and
// the steady-state authorization path holds no lock at all beyond the
// shard's read lock for the home lookup.
//
// Shared compiled models: the trained trees are per *device model*, not per
// home (every home with a window actuator judges against the same window
// tree), so the fleet holds exactly one compiled tree per model in a
// copy-on-write ModelRegistry regardless of home count. Hot-swapping a
// retrained model is one atomic pointer store; readers never block.
//
// Deterministic batching: AuthorizeBatch fans a mixed-home batch out across
// shards via internal/par while preserving input order per item and
// per-home instruction order, so a seeded request stream produces
// bit-identical decision streams at any shard or worker count.
package fleet

import (
	"fmt"
	"sync"
	"sync/atomic"

	"iotsid/internal/core"
	"iotsid/internal/dataset"
	"iotsid/internal/sensor"
)

// ModelRegistry is the fleet's per-device-model compiled-tree store, shared
// copy-on-write across every tenant. Reads are one atomic pointer load plus
// a map lookup — no lock, no allocation — so a million homes judging
// concurrently never serialise on the registry. Writers (model hot-swaps)
// clone the map under a mutex and publish the clone atomically.
type ModelRegistry struct {
	mu      sync.Mutex
	entries atomic.Pointer[map[dataset.Model]*core.Entry]
}

var _ core.ModelStore = (*ModelRegistry)(nil)

// NewModelRegistry seeds the registry from a trained feature memory. The
// entries are shared, not copied: the registry and the memory hand out the
// same compiled trees, which is the point — one tree per device model
// serves the whole fleet.
func NewModelRegistry(fm *core.FeatureMemory) (*ModelRegistry, error) {
	if fm == nil {
		return nil, fmt.Errorf("fleet: model registry needs a trained feature memory")
	}
	m := make(map[dataset.Model]*core.Entry)
	for _, model := range fm.Models() {
		if e, ok := fm.Entry(model); ok {
			m[model] = e
		}
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("fleet: feature memory holds no trained models")
	}
	r := &ModelRegistry{}
	r.entries.Store(&m)
	return r, nil
}

// Entry returns the shared compiled entry for a device model.
func (r *ModelRegistry) Entry(m dataset.Model) (*core.Entry, bool) {
	e, ok := (*r.entries.Load())[m]
	return e, ok
}

// Len reports how many device models the registry holds — by construction
// independent of how many homes share it.
func (r *ModelRegistry) Len() int {
	return len(*r.entries.Load())
}

// Models lists the held device models in Table VI order.
func (r *ModelRegistry) Models() []dataset.Model {
	cur := *r.entries.Load()
	out := make([]dataset.Model, 0, len(cur))
	for _, m := range dataset.Models() {
		if _, ok := cur[m]; ok {
			out = append(out, m)
		}
	}
	return out
}

// Swap publishes a new entry for one device model — the hot-swap path a
// future per-home personalization layer recompiles through. The entry must
// already be compiled (stored once through a FeatureMemory); in-flight
// judgments keep using the old tree until the atomic store lands, then
// every tenant sees the new one.
func (r *ModelRegistry) Swap(m dataset.Model, e *core.Entry) error {
	if e == nil || e.Compiled() == nil {
		return fmt.Errorf("fleet: swap for %s needs a compiled entry", m)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := *r.entries.Load()
	next := make(map[dataset.Model]*core.Entry, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[m] = e
	r.entries.Store(&next)
	return nil
}

// Judge implements core.ModelStore on the shared entry — the fleet-wide
// zero-allocation inference path.
//
//iot:hotpath
func (r *ModelRegistry) Judge(m dataset.Model, ctx sensor.Snapshot) (bool, error) {
	e, ok := (*r.entries.Load())[m]
	if !ok {
		//iot:allow hotalloc error path, never taken steady-state; the AllocsPerRun gate proves the allow path is 0-alloc
		return false, fmt.Errorf("fleet: no compiled model for %s", m)
	}
	return e.JudgeSnapshot(m, ctx)
}

// JudgeExplain implements core.ModelStore with the explaining walk.
func (r *ModelRegistry) JudgeExplain(m dataset.Model, ctx sensor.Snapshot) (bool, string, error) {
	e, ok := (*r.entries.Load())[m]
	if !ok {
		return false, "", fmt.Errorf("fleet: no compiled model for %s", m)
	}
	return e.ExplainSnapshot(m, ctx)
}
