package smartthings

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// memBackend is a simple in-memory entity store.
type memBackend struct {
	mu       sync.Mutex
	entities map[string]Entity
	failAll  bool
}

func newMemBackend() *memBackend {
	now := time.Date(2021, 4, 1, 12, 0, 0, 0, time.UTC)
	return &memBackend{entities: map[string]Entity{
		"binary_sensor.smoke": {EntityID: "binary_sensor.smoke", State: "off", LastUpdated: now},
		"sensor.temperature":  {EntityID: "sensor.temperature", State: "21.5", Attributes: map[string]any{"unit_of_measurement": "°C"}, LastUpdated: now},
		"light.living_room":   {EntityID: "light.living_room", State: "off", LastUpdated: now},
	}}
}

func (b *memBackend) States() ([]Entity, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failAll {
		return nil, errors.New("backend down")
	}
	out := make([]Entity, 0, len(b.entities))
	for _, e := range b.entities {
		out = append(out, e)
	}
	return out, nil
}

func (b *memBackend) State(id string) (Entity, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failAll {
		return Entity{}, false, errors.New("backend down")
	}
	e, ok := b.entities[id]
	return e, ok, nil
}

func (b *memBackend) CallService(domain, service string, data map[string]any) ([]Entity, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	id, _ := data["entity_id"].(string)
	e, ok := b.entities[id]
	if !ok {
		return nil, fmt.Errorf("unknown entity %q", id)
	}
	switch domain + "." + service {
	case "light.turn_on":
		e.State = "on"
	case "light.turn_off":
		e.State = "off"
	default:
		return nil, fmt.Errorf("unknown service %s.%s", domain, service)
	}
	b.entities[id] = e
	return []Entity{e}, nil
}

const testTokenStr = "llat-test-token"

func startServer(t *testing.T) (*Server, *memBackend) {
	t.Helper()
	backend := newMemBackend()
	srv, err := NewServer(ServerConfig{Token: testTokenStr, Backend: backend})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, backend
}

func newClient(t *testing.T, srv *Server, token string) *Client {
	t.Helper()
	c, err := NewClient(srv.URL(), token)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return c
}

func TestPingAndStates(t *testing.T) {
	srv, _ := startServer(t)
	c := newClient(t, srv, testTokenStr)
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	states, err := c.States(context.Background())
	if err != nil {
		t.Fatalf("States: %v", err)
	}
	if len(states) != 3 {
		t.Errorf("states = %d", len(states))
	}
}

func TestStateByID(t *testing.T) {
	srv, _ := startServer(t)
	c := newClient(t, srv, testTokenStr)
	e, err := c.State(context.Background(), "sensor.temperature")
	if err != nil {
		t.Fatalf("State: %v", err)
	}
	if e.State != "21.5" || e.Attributes["unit_of_measurement"] != "°C" {
		t.Errorf("entity = %+v", e)
	}
	_, err = c.State(context.Background(), "sensor.nope")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Errorf("want 404, got %v", err)
	}
}

func TestCallService(t *testing.T) {
	srv, backend := startServer(t)
	c := newClient(t, srv, testTokenStr)
	changed, err := c.CallService(context.Background(), "light", "turn_on", map[string]any{"entity_id": "light.living_room"})
	if err != nil {
		t.Fatalf("CallService: %v", err)
	}
	if len(changed) != 1 || changed[0].State != "on" {
		t.Errorf("changed = %+v", changed)
	}
	e, _, _ := backend.State("light.living_room")
	if e.State != "on" {
		t.Error("service call did not reach the backend")
	}
	// Unknown service surfaces as a 400.
	_, err = c.CallService(context.Background(), "light", "explode", map[string]any{"entity_id": "light.living_room"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Errorf("want 400, got %v", err)
	}
}

func TestAuthRequired(t *testing.T) {
	srv, _ := startServer(t)
	for _, token := range []string{"wrong", ""} {
		c, err := NewClient(srv.URL(), "x")
		if err != nil {
			t.Fatal(err)
		}
		c.token = token
		err = c.Ping(context.Background())
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusUnauthorized {
			t.Errorf("token %q: want 401, got %v", token, err)
		}
	}
	// No Authorization header at all.
	resp, err := http.Get(srv.URL() + "/api/states")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("no-auth status = %d", resp.StatusCode)
	}
}

func TestMethodChecks(t *testing.T) {
	srv, _ := startServer(t)
	req, _ := http.NewRequest(http.MethodPost, srv.URL()+"/api/states", nil)
	req.Header.Set("Authorization", "Bearer "+testTokenStr)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /api/states = %d", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodGet, srv.URL()+"/api/services/light/turn_on", nil)
	req.Header.Set("Authorization", "Bearer "+testTokenStr)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET service = %d", resp2.StatusCode)
	}
}

func TestBackendErrorSurfaces(t *testing.T) {
	srv, backend := startServer(t)
	backend.mu.Lock()
	backend.failAll = true
	backend.mu.Unlock()
	c := newClient(t, srv, testTokenStr)
	_, err := c.States(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusInternalServerError {
		t.Errorf("want 500, got %v", err)
	}
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{Token: "t"}); err == nil {
		t.Error("want backend error")
	}
	if _, err := NewServer(ServerConfig{Backend: newMemBackend()}); err == nil {
		t.Error("want token error")
	}
	if _, err := NewServer(ServerConfig{Token: "t", Backend: newMemBackend(), Addr: "999.999.999.999:0"}); err == nil {
		t.Error("want listen error")
	}
}

func TestClientValidation(t *testing.T) {
	if _, err := NewClient("://bad", "t"); err == nil {
		t.Error("want URL error")
	}
	if _, err := NewClient("http://localhost:1", ""); err == nil {
		t.Error("want token error")
	}
	c, err := NewClient("http://127.0.0.1:1", "t")
	if err != nil {
		t.Fatal(err)
	}
	c.http.Timeout = 200 * time.Millisecond
	if err := c.Ping(context.Background()); err == nil {
		t.Error("want connection error")
	}
}

func TestBadServicePath(t *testing.T) {
	srv, _ := startServer(t)
	req, _ := http.NewRequest(http.MethodPost, srv.URL()+"/api/services/light", nil)
	req.Header.Set("Authorization", "Bearer "+testTokenStr)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("malformed service path = %d", resp.StatusCode)
	}
}
