package smartthings

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// APIError is an error response from the bridge.
type APIError struct {
	StatusCode int
	Message    string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("smartthings: HTTP %d: %s", e.StatusCode, e.Message)
}

// Client talks to the bridge with a long-lived access token, exactly as the
// paper's collector queries its Home Assistant deployment.
type Client struct {
	baseURL string
	token   string
	http    *http.Client
}

// NewClient builds a client for the bridge at baseURL.
func NewClient(baseURL, token string) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("smartthings: invalid base URL %q", baseURL)
	}
	if token == "" {
		return nil, fmt.Errorf("smartthings: empty access token")
	}
	return &Client{
		baseURL: u.Scheme + "://" + u.Host,
		token:   token,
		http:    &http.Client{Timeout: 5 * time.Second},
	}, nil
}

// Ping checks the API is up and the token valid.
func (c *Client) Ping() error {
	var out map[string]string
	return c.do(http.MethodGet, "/api/", nil, &out)
}

// States fetches every entity state.
func (c *Client) States() ([]Entity, error) {
	var out []Entity
	if err := c.do(http.MethodGet, "/api/states", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// State fetches one entity state.
func (c *Client) State(entityID string) (Entity, error) {
	var out Entity
	if err := c.do(http.MethodGet, "/api/states/"+url.PathEscape(entityID), nil, &out); err != nil {
		return Entity{}, err
	}
	return out, nil
}

// CallService invokes `domain.service` with a data payload and returns the
// entities it changed.
func (c *Client) CallService(domain, service string, data map[string]any) ([]Entity, error) {
	var out []Entity
	path := "/api/services/" + url.PathEscape(domain) + "/" + url.PathEscape(service)
	if err := c.do(http.MethodPost, path, data, &out); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *Client) do(method, path string, body any, out any) error {
	var reader io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("smartthings: marshal body: %w", err)
		}
		reader = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.baseURL+path, reader)
	if err != nil {
		return fmt.Errorf("smartthings: build request: %w", err)
	}
	req.Header.Set("Authorization", "Bearer "+c.token)
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("smartthings: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var apiErr apiError
		msg := resp.Status
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err == nil && apiErr.Message != "" {
			msg = apiErr.Message
		}
		return &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("smartthings: decode response: %w", err)
	}
	return nil
}
