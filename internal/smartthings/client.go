package smartthings

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"iotsid/internal/resilience"
)

// APIError is an error response from the bridge.
type APIError struct {
	StatusCode int
	Message    string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("smartthings: HTTP %d: %s", e.StatusCode, e.Message)
}

// ClientOption customises a client.
type ClientOption func(*Client)

// WithTimeout sets the per-request HTTP timeout (default 5s).
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.http.Timeout = d }
}

// WithRetry retries idempotent GETs under the shared resilience policy when
// they fail with a transient network error or a 5xx. Non-GET requests and
// 4xx responses are never retried.
func WithRetry(p resilience.Policy) ClientOption {
	return func(c *Client) { c.retry = &p }
}

// Client talks to the bridge with a long-lived access token, exactly as the
// paper's collector queries its Home Assistant deployment.
type Client struct {
	baseURL string
	token   string
	http    *http.Client
	retry   *resilience.Policy
}

// NewClient builds a client for the bridge at baseURL.
func NewClient(baseURL, token string, opts ...ClientOption) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("smartthings: invalid base URL %q", baseURL)
	}
	if token == "" {
		return nil, fmt.Errorf("smartthings: empty access token")
	}
	c := &Client{
		baseURL: u.Scheme + "://" + u.Host,
		token:   token,
		http:    &http.Client{Timeout: 5 * time.Second},
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Ping checks the API is up and the token valid.
func (c *Client) Ping(ctx context.Context) error {
	var out map[string]string
	return c.do(ctx, http.MethodGet, "/api/", nil, &out)
}

// States fetches every entity state.
func (c *Client) States(ctx context.Context) ([]Entity, error) {
	var out []Entity
	if err := c.do(ctx, http.MethodGet, "/api/states", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// State fetches one entity state.
func (c *Client) State(ctx context.Context, entityID string) (Entity, error) {
	var out Entity
	if err := c.do(ctx, http.MethodGet, "/api/states/"+url.PathEscape(entityID), nil, &out); err != nil {
		return Entity{}, err
	}
	return out, nil
}

// CallService invokes `domain.service` with a data payload and returns the
// entities it changed.
func (c *Client) CallService(ctx context.Context, domain, service string, data map[string]any) ([]Entity, error) {
	var out []Entity
	path := "/api/services/" + url.PathEscape(domain) + "/" + url.PathEscape(service)
	if err := c.do(ctx, http.MethodPost, path, data, &out); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *Client) do(ctx context.Context, method, path string, body any, out any) error {
	var payload []byte
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("smartthings: marshal body: %w", err)
		}
		payload = data
	}
	// Only idempotent GETs retry; a replayed POST could actuate a device
	// twice.
	if c.retry != nil && method == http.MethodGet {
		return c.retry.Do(ctx, func(ctx context.Context) error {
			return c.doOnce(ctx, method, path, payload, out)
		})
	}
	return c.doOnce(ctx, method, path, payload, out)
}

// doOnce performs one HTTP round trip. Failures that retrying cannot fix
// (4xx) are marked Permanent; transport errors and 5xx stay transient.
func (c *Client) doOnce(ctx context.Context, method, path string, payload []byte, out any) error {
	var reader io.Reader
	if payload != nil {
		reader = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, reader)
	if err != nil {
		return resilience.Permanent(fmt.Errorf("smartthings: build request: %w", err))
	}
	req.Header.Set("Authorization", "Bearer "+c.token)
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("smartthings: %s %s: %w", method, path, err)
	}
	defer func() { _ = resp.Body.Close() }() // best-effort: read errors surface via the decoder
	if resp.StatusCode != http.StatusOK {
		var apiErr apiError
		msg := resp.Status
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err == nil && apiErr.Message != "" {
			msg = apiErr.Message
		}
		callErr := &APIError{StatusCode: resp.StatusCode, Message: msg}
		if resp.StatusCode >= 500 {
			return callErr
		}
		return resilience.Permanent(callErr)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("smartthings: decode response: %w", err)
	}
	return nil
}
