package smartthings

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"iotsid/internal/resilience"
)

// flakyBridge is an httptest server that answers the first `failures`
// requests per path-class with a 500, then recovers — the transient vendor
// outage the GET retry policy exists for.
type flakyBridge struct {
	srv      *httptest.Server
	gets     atomic.Int64
	posts    atomic.Int64
	failures int64
}

func startFlakyBridge(t *testing.T, failures int64) *flakyBridge {
	t.Helper()
	b := &flakyBridge{failures: failures}
	b.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var n int64
		if r.Method == http.MethodGet {
			n = b.gets.Add(1)
		} else {
			n = b.posts.Add(1)
		}
		if n <= b.failures {
			w.WriteHeader(http.StatusInternalServerError)
			_ = json.NewEncoder(w).Encode(map[string]string{"message": "backend hiccup"})
			return
		}
		switch {
		case r.Method == http.MethodGet:
			_ = json.NewEncoder(w).Encode(map[string]string{"message": "API running."})
		default:
			_ = json.NewEncoder(w).Encode([]Entity{})
		}
	}))
	t.Cleanup(b.srv.Close)
	return b
}

func noSleep(ctx context.Context, d time.Duration) error { return nil }

// TestRetryRecoversTransient5xx: two 500s then success — the GET retry
// policy absorbs the outage inside one Ping call.
func TestRetryRecoversTransient5xx(t *testing.T) {
	b := startFlakyBridge(t, 2)
	c, err := NewClient(b.srv.URL, "tok", WithRetry(resilience.Policy{MaxAttempts: 3, Seed: 3, Sleep: noSleep}))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("Ping through transient 5xx: %v", err)
	}
	if got := b.gets.Load(); got != 3 {
		t.Errorf("GET attempts = %d, want 3", got)
	}
}

// TestRetryExhaustionSurfacesAPIError: a persistent 5xx surfaces as the
// *APIError after the attempts run out.
func TestRetryExhaustionSurfacesAPIError(t *testing.T) {
	b := startFlakyBridge(t, 1_000)
	c, err := NewClient(b.srv.URL, "tok", WithRetry(resilience.Policy{MaxAttempts: 3, Seed: 3, Sleep: noSleep}))
	if err != nil {
		t.Fatal(err)
	}
	err = c.Ping(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusInternalServerError {
		t.Fatalf("err = %v, want wrapped 500 APIError", err)
	}
	if got := b.gets.Load(); got != 3 {
		t.Errorf("GET attempts = %d, want 3", got)
	}
}

// TestPostNeverRetried: a replayed POST could actuate a device twice, so
// CallService gets exactly one attempt even under a retry policy.
func TestPostNeverRetried(t *testing.T) {
	b := startFlakyBridge(t, 1_000)
	c, err := NewClient(b.srv.URL, "tok", WithRetry(resilience.Policy{MaxAttempts: 5, Seed: 3, Sleep: noSleep}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CallService(context.Background(), "window", "open", nil); err == nil {
		t.Fatal("want 5xx failure")
	}
	if got := b.posts.Load(); got != 1 {
		t.Errorf("POST attempts = %d, want exactly 1", got)
	}
}

// Test4xxIsPermanent: a 4xx is the caller's fault — retrying cannot fix it,
// so one attempt suffices even on a GET.
func Test4xxIsPermanent(t *testing.T) {
	var gets atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gets.Add(1)
		w.WriteHeader(http.StatusUnauthorized)
		_ = json.NewEncoder(w).Encode(map[string]string{"message": "bad token"})
	}))
	defer srv.Close()
	c, err := NewClient(srv.URL, "tok", WithRetry(resilience.Policy{MaxAttempts: 5, Seed: 3, Sleep: noSleep}))
	if err != nil {
		t.Fatal(err)
	}
	err = c.Ping(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusUnauthorized {
		t.Fatalf("err = %v, want 401 APIError", err)
	}
	if !resilience.IsPermanent(err) {
		t.Error("4xx must be marked permanent")
	}
	if got := gets.Load(); got != 1 {
		t.Errorf("GET attempts = %d, want 1 (no retry on 4xx)", got)
	}
}

// TestWithTimeout: the configurable HTTP timeout replaces the old
// hard-coded 5s — a hung bridge fails the call at the configured bound.
func TestWithTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	c, err := NewClient(srv.URL, "tok", WithTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := c.Ping(context.Background()); err == nil {
		t.Fatal("want timeout failure")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("call ran %v despite a 50ms timeout", elapsed)
	}
}

// TestContextCancelsRetryLoop: cancelling the caller's context stops the
// retry loop rather than burning the remaining attempts.
func TestContextCancelsRetryLoop(t *testing.T) {
	b := startFlakyBridge(t, 1_000)
	c, err := NewClient(b.srv.URL, "tok",
		WithRetry(resilience.Policy{MaxAttempts: 100, BaseDelay: 10 * time.Millisecond, Seed: 3}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := c.Ping(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("retry loop ran %v past the 60ms deadline", elapsed)
	}
	if got := b.gets.Load(); got >= 100 {
		t.Errorf("retry loop burned every attempt (%d) despite cancellation", got)
	}
}
