// Package smartthings implements the Home-Assistant-style REST bridge the
// paper uses to collect Samsung SmartThings sensor data (§IV-B-2: a lab
// Home Assistant deployment exposing state APIs guarded by a long-lived
// access token). The server mirrors the relevant API surface — entity
// states under /api/states and service calls under /api/services — and is
// backed by the home simulator; the client is what the IDS collector uses.
package smartthings

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Entity is one Home-Assistant-style entity state document.
type Entity struct {
	EntityID    string         `json:"entity_id"`
	State       string         `json:"state"`
	Attributes  map[string]any `json:"attributes,omitempty"`
	LastUpdated time.Time      `json:"last_updated"`
}

// Backend supplies entity states and executes service calls; the bridge
// itself is stateless.
type Backend interface {
	// States lists every entity.
	States() ([]Entity, error)
	// State fetches one entity; ok=false when unknown.
	State(entityID string) (Entity, bool, error)
	// CallService executes `domain.service` with a payload, returning the
	// entities it changed.
	CallService(domain, service string, data map[string]any) ([]Entity, error)
}

// ServerConfig configures the bridge.
type ServerConfig struct {
	// Addr is the TCP listen address; ":0" picks a free port.
	Addr string
	// Token is the long-lived access token clients must present.
	Token string
	// Backend serves the data.
	Backend Backend
}

// Server is the running bridge.
type Server struct {
	cfg  ServerConfig
	ln   net.Listener
	http *http.Server
	wg   sync.WaitGroup
}

// NewServer binds and starts serving.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Backend == nil {
		return nil, fmt.Errorf("smartthings: server needs a backend")
	}
	if cfg.Token == "" {
		return nil, fmt.Errorf("smartthings: server needs an access token")
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("smartthings: listen: %w", err)
	}
	s := &Server{cfg: cfg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/api/", s.handleAPI)
	s.http = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = s.http.Serve(ln)
	}()
	return s, nil
}

// URL returns the base URL of the bridge.
func (s *Server) URL() string {
	return "http://" + s.ln.Addr().String()
}

// Close stops the server and waits for the serve loop.
func (s *Server) Close() error {
	err := s.http.Close()
	s.wg.Wait()
	return err
}

type apiError struct {
	Message string `json:"message"`
}

func (s *Server) handleAPI(w http.ResponseWriter, r *http.Request) {
	if !s.authorized(r) {
		writeJSON(w, http.StatusUnauthorized, apiError{Message: "401: Unauthorized"})
		return
	}
	path := strings.TrimPrefix(r.URL.Path, "/api")
	switch {
	case path == "/" || path == "":
		if r.Method != http.MethodGet {
			writeJSON(w, http.StatusMethodNotAllowed, apiError{Message: "method not allowed"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"message": "API running."})
	case path == "/states":
		if r.Method != http.MethodGet {
			writeJSON(w, http.StatusMethodNotAllowed, apiError{Message: "method not allowed"})
			return
		}
		states, err := s.cfg.Backend.States()
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, apiError{Message: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, states)
	case strings.HasPrefix(path, "/states/"):
		if r.Method != http.MethodGet {
			writeJSON(w, http.StatusMethodNotAllowed, apiError{Message: "method not allowed"})
			return
		}
		id := strings.TrimPrefix(path, "/states/")
		entity, ok, err := s.cfg.Backend.State(id)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, apiError{Message: err.Error()})
			return
		}
		if !ok {
			writeJSON(w, http.StatusNotFound, apiError{Message: "Entity not found."})
			return
		}
		writeJSON(w, http.StatusOK, entity)
	case strings.HasPrefix(path, "/services/"):
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, apiError{Message: "method not allowed"})
			return
		}
		parts := strings.Split(strings.TrimPrefix(path, "/services/"), "/")
		if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
			writeJSON(w, http.StatusNotFound, apiError{Message: "service path must be /api/services/<domain>/<service>"})
			return
		}
		var data map[string]any
		if r.Body != nil {
			if err := json.NewDecoder(r.Body).Decode(&data); err != nil && err.Error() != "EOF" {
				writeJSON(w, http.StatusBadRequest, apiError{Message: "invalid JSON body"})
				return
			}
		}
		changed, err := s.cfg.Backend.CallService(parts[0], parts[1], data)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Message: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, changed)
	default:
		writeJSON(w, http.StatusNotFound, apiError{Message: "not found"})
	}
}

func (s *Server) authorized(r *http.Request) bool {
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if !strings.HasPrefix(auth, prefix) {
		return false
	}
	return strings.TrimPrefix(auth, prefix) == s.cfg.Token
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
